// Earthquake detection with local similarity (the paper's Algorithm 2 and
// Figure 10 scenario): generate a record containing two moving vehicles, an
// earthquake, and a persistent vibration; compute the local-similarity map
// with the hybrid engine; detect and classify the events; and render a
// coarse ASCII picture of the map.
//
// Run with: go run ./examples/eqdetect
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/haee"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "dassa-eqdetect")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A 6-minute-analogue record: 64 channels, 50 Hz, eight 3-second files.
	cfg := dasgen.Config{
		Channels: 64, SampleRate: 50, FileSeconds: 3, NumFiles: 8,
		Seed: 42, DType: dasf.Float32,
	}
	events := dasgen.Fig10Events(cfg)
	if _, err := dasgen.Generate(dir, cfg, events); err != nil {
		log.Fatal(err)
	}
	fmt.Println("planted events:")
	for _, ev := range events {
		fmt.Printf("  %s\n", ev.Describe())
	}

	cat, err := dass.ScanDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	vcaPath := filepath.Join(dir, "record.vca.dasf")
	if _, err := dass.CreateVCA(vcaPath, cat.Entries()); err != nil {
		log.Fatal(err)
	}
	v, err := dass.OpenView(vcaPath)
	if err != nil {
		log.Fatal(err)
	}

	// Algorithm 2 over the whole record with the hybrid engine.
	params := detect.LocalSimiParams{M: 12, K: 1, L: 4, Stride: 10}
	eng := haee.New(haee.Config{Nodes: 2, CoresPerNode: 4, Mode: haee.Hybrid})
	rep, err := eng.RunPoints(v, haee.PointsWorkload{Spec: params.Spec(), UDF: params.UDF()}, "")
	if err != nil {
		log.Fatal(err)
	}
	sim := rep.Output

	// ASCII rendering: channels down, time across, darker = more similar.
	const rows, cols = 16, 72
	shades := []byte(" .:-=+*#%@")
	fmt.Printf("\nlocal-similarity map (%d×%d, downsampled):\n", sim.Channels, sim.Samples)
	for r := 0; r < rows; r++ {
		line := make([]byte, cols)
		for c := 0; c < cols; c++ {
			chLo := r * sim.Channels / rows
			chHi := (r + 1) * sim.Channels / rows
			tLo := c * sim.Samples / cols
			tHi := (c + 1) * sim.Samples / cols
			var sum float64
			var n int
			for ch := chLo; ch < chHi; ch++ {
				for t := tLo; t < tHi; t++ {
					sum += sim.At(ch, t)
					n++
				}
			}
			v := sum / float64(n)
			idx := int(v * float64(len(shades)))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			if idx < 0 {
				idx = 0
			}
			line[c] = shades[idx]
		}
		fmt.Printf("ch%4d |%s|\n", r*sim.Channels/rows, line)
	}

	// Detection + classification against the planted truth.
	regions := detect.FindEventsBanded(sim, 1.5, sim.Channels/8)
	totalSec := cfg.FileSeconds * float64(cfg.NumFiles)
	secPerIdx := totalSec / float64(sim.Samples)
	fmt.Printf("\ndetected %d events:\n", len(regions))
	for _, r := range regions {
		span := r.ChHi - r.ChLo
		dur := float64(r.THi-r.TLo) * secPerIdx
		class := "vehicle"
		switch {
		case span > sim.Channels/2:
			class = "earthquake"
		case dur > 0.6*totalSec:
			class = "vibration"
		}
		fmt.Printf("  %-10s t=[%5.1fs,%5.1fs) channels=[%2d,%2d) peak=%.3f\n",
			class, float64(r.TLo)*secPerIdx, float64(r.THi)*secPerIdx, r.ChLo, r.ChHi, r.Peak)
	}
	if len(regions) == 0 {
		log.Fatal("no events detected — detection failed")
	}
}
