// Traffic-noise interferometry (the paper's Algorithm 3): turn ambient
// noise recorded on a fiber into empirical Green's functions by
// cross-correlating every channel against a master channel after
// detrending, zero-phase lowpass filtering, and resampling.
//
// The synthetic record carries a coherent noise wave propagating along the
// fiber at a known speed, so the recovered correlation peaks move linearly
// with channel offset — the travel-time structure geophysicists invert for
// subsurface velocity.
//
// Run with: go run ./examples/interferometry
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/haee"
)

const (
	channels = 32
	rate     = 100.0
	seconds  = 40.0
	// The coherent noise wavefield moves at speedChPerSec channels/second,
	// i.e. neighboring channels see the same noise delayCh samples apart.
	speedChPerSec = 25.0
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "dassa-interf")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build the propagating-noise record directly: channel c records
	// src(t - c/speed) plus local noise.
	nt := int(rate * seconds)
	delaySamples := rate / speedChPerSec // samples of delay per channel
	src := make([]float64, nt+channels*int(delaySamples)+64)
	rng := rand.New(rand.NewSource(99))
	prev := 0.0
	for i := range src {
		prev = 0.85*prev + rng.NormFloat64()
		src[i] = prev
	}
	raw := dasf.NewArray2D(channels, nt)
	for c := 0; c < channels; c++ {
		off := int(float64(c) * delaySamples)
		for t := 0; t < nt; t++ {
			local := 0.3 * rng.NormFloat64()
			raw.Set(c, t, src[t+len(src)-nt-off]+local)
		}
	}
	path := filepath.Join(dir, "ambient_170620100545.dasf")
	meta := dasf.Meta{
		dasf.KeySamplingFrequency: dasf.I(int64(rate)),
		dasf.KeyTimeStamp:         dasf.S("170620100545"),
	}
	if err := dasf.WriteData(path, meta, nil, raw, dasf.Float64); err != nil {
		log.Fatal(err)
	}

	v, err := dass.OpenView(path)
	if err != nil {
		log.Fatal(err)
	}
	params := detect.InterferometryParams{
		Rate:          rate,
		FilterOrder:   4,
		CutoffHz:      20,
		ResampleP:     1,
		ResampleQ:     2,
		MasterChannel: 0,
		MaxLag:        60,
	}
	parts := params.Workload(nt)
	eng := haee.New(haee.Config{Nodes: 2, CoresPerNode: 4, Mode: haee.Hybrid})
	rep, err := eng.RunRows(v, haee.RowsWorkload{
		Spec:    arrayudf.Spec{},
		RowLen:  parts.RowLen,
		Prepare: parts.Prepare,
		UDF:     parts.UDF,
	}, "")
	if err != nil {
		log.Fatal(err)
	}
	corr := rep.Output

	// Expected peak lag for channel c at the resampled (÷2) rate.
	fmt.Printf("channel  peak-lag  expected  corr-peak\n")
	half := corr.Samples / 2
	maxErr := 0
	for c := 0; c < channels; c += 4 {
		row := corr.Row(c)
		best, bestI := math.Inf(-1), 0
		for i, v := range row {
			if v > best {
				best, bestI = v, i
			}
		}
		got := bestI - half
		want := int(math.Round(float64(c) * delaySamples / 2)) // ÷2 resampling
		if d := got - want; d > maxErr || -d > maxErr {
			if d < 0 {
				d = -d
			}
			maxErr = d
		}
		fmt.Printf("%7d %9d %9d %10.3f\n", c, got, want, best)
	}
	fmt.Printf("\nmax peak-lag error: %d samples — the moveout is linear in channel offset,\n", maxErr)
	fmt.Println("which is the empirical Green's function structure interferometry recovers.")
	if maxErr > 3 {
		log.Fatal("moveout recovery failed")
	}
}
