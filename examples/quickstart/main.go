// Quickstart: the end-to-end DASSA workflow through the high-level facade
// (internal/core) — the API a downstream user starts with.
//
//  1. Generate a small synthetic DAS acquisition (stand-in for a real
//     instrument writing one file per minute).
//  2. Open it as a dataset and search by timestamp (das_search semantics).
//  3. Merge the matches into a virtually concatenated array — metadata only.
//  4. Run a custom stencil UDF (three-point moving average, the paper's
//     introductory example) and a built-in analysis (local similarity)
//     with the hybrid execution engine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"dassa/internal/arrayudf"
	"dassa/internal/core"
	"dassa/internal/dasf"
	"dassa/internal/dasgen"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "dassa-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Generate: 32 channels, 50 Hz, six 2-second files, with the
	// Figure 10 event mix planted.
	cfg := dasgen.Config{
		Channels: 32, SampleRate: 50, FileSeconds: 2, NumFiles: 6,
		Seed: 7, DType: dasf.Float32,
	}
	if _, err := dasgen.Generate(dir, cfg, dasgen.Fig10Events(cfg)); err != nil {
		log.Fatal(err)
	}

	// 2. Open + search: the first 4 files from the start timestamp.
	ds, err := core.OpenDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d files at %.0f Hz\n", ds.Len(), ds.SampleRate())
	matches := ds.Search(ds.Files()[0].Timestamp, 4)
	fmt.Printf("search found %d files\n", len(matches))

	// 3. Merge virtually — no data is copied.
	v, err := ds.Merge(matches)
	if err != nil {
		log.Fatal(err)
	}
	nch, nt := v.Shape()
	fmt.Printf("VCA view: %d channels × %d samples across %d member files\n",
		nch, nt, v.NumMembers())

	// 4a. A custom UDF: the paper's three-point moving average.
	fw := core.New(core.Config{Nodes: 2, CoresPerNode: 2})
	smoothed, rep, err := fw.Apply(v, 0, 1, func(s *arrayudf.Stencil) float64 {
		return (s.At(-1, 0) + s.At(0, 0) + s.At(1, 0)) / 3
	}, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smoothed array: %d×%d (read %s, compute %s)\n",
		smoothed.Channels, smoothed.Samples, rep.Phases.Read, rep.Phases.Compute)
	fmt.Printf("I/O trace: %d opens, %d read calls, %.2f MB\n",
		rep.ReadTrace.Opens, rep.ReadTrace.Reads, float64(rep.ReadTrace.BytesRead)/1e6)

	// 4b. A built-in analysis: local-similarity event detection.
	whole, err := ds.MergeAll()
	if err != nil {
		log.Fatal(err)
	}
	_, events, _, err := fw.LocalSimilarity(whole, core.DefaultLocalSimi(ds.SampleRate()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local similarity detected %d event region(s)\n", len(events))
	for _, e := range events {
		fmt.Printf("  t=[%d,%d) channels=[%d,%d) peak=%.3f\n", e.TLo, e.THi, e.ChLo, e.ChHi, e.Peak)
	}
	fmt.Println("quickstart OK")
}
