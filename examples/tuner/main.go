// Tuner: the paper's future-work item "automatically select system
// settings, such as the number of nodes" (§VIII), demonstrated. A small
// synthetic dataset calibrates the per-channel compute cost; the tuner
// then predicts read and compute time for every candidate machine layout
// at paper scale (11648 channels × 2880 files ≈ 1.9 TB on a Cori-like
// system) and picks the fastest that fits the node memory budget.
//
// Run with: go run ./examples/tuner
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/detect"
	"dassa/internal/haee"
	"dassa/internal/pfs"
)

func main() {
	log.SetFlags(0)

	// Calibrate: measure the interferometry UDF's per-channel cost on a
	// small real record.
	cfg := dasgen.Config{
		Channels: 16, SampleRate: 100, FileSeconds: 8, NumFiles: 1,
		Seed: 17, DType: dasf.Float64,
	}
	data, err := dasgen.GenerateFileArray(cfg, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	params := detect.InterferometryParams{
		Rate: cfg.SampleRate, FilterOrder: 3, CutoffHz: 12,
		ResampleP: 1, ResampleQ: 2, MasterChannel: 0, MaxLag: 64,
	}
	master, err := params.Preprocess(data.Row(0))
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	for ch := 0; ch < data.Channels; ch++ {
		series, err := params.Preprocess(data.Row(ch))
		if err != nil {
			log.Fatal(err)
		}
		_ = series
		_ = master
	}
	unit := time.Since(t0) / time.Duration(data.Channels)
	fmt.Printf("calibrated per-channel compute cost: %v\n", unit.Round(time.Microsecond))

	// Tune for a paper-scale run under a 128 GB node budget.
	in := haee.TunerInput{
		TotalBytes:      2880 * 700e6,
		Channels:        11648,
		Files:           2880,
		UnitCost:        unit,
		SharedBytes:     64 << 20,
		NodeMemoryBytes: 128 << 30,
		MaxNodes:        2048,
		CoresPerNode:    8,
		Model:           pfs.CoriLike(),
	}
	best, candidates, err := haee.SuggestLayout(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-6s %-7s %14s %14s %14s %10s\n", "nodes", "mode", "read", "compute", "total", "feasible")
	for _, c := range candidates {
		marker := " "
		if c == best {
			marker = "*"
		}
		fmt.Printf("%s%-5d %-7s %14v %14v %14v %10v\n",
			marker, c.Nodes, c.Mode, c.ReadTime.Round(time.Millisecond),
			c.ComputeTime.Round(time.Millisecond), c.Total().Round(time.Millisecond), c.Feasible)
	}
	fmt.Printf("\nsuggested layout: %d nodes × %d cores, %s mode (predicted %v end to end)\n",
		best.Nodes, best.CoresPerNode, best.Mode, best.Total().Round(time.Millisecond))
	if best.Mode != haee.Hybrid {
		os.Exit(1)
	}
}
