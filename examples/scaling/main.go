// Scaling: run the interferometry workload on the hybrid engine across
// several machine layouts and show what changes — I/O request counts,
// per-node memory, and the read-method comparison from §IV-B. This is the
// interactive version of the Figure 8/11 benches.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/haee"
	"dassa/internal/mpi"
	"dassa/internal/pfs"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "dassa-scaling")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := dasgen.Config{
		Channels: 64, SampleRate: 50, FileSeconds: 2, NumFiles: 12,
		Seed: 5, DType: dasf.Float32,
	}
	if _, err := dasgen.Generate(dir, cfg, nil); err != nil {
		log.Fatal(err)
	}
	cat, err := dass.ScanDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	vcaPath := filepath.Join(dir, "all.vca.dasf")
	if _, err := dass.CreateVCA(vcaPath, cat.Entries()); err != nil {
		log.Fatal(err)
	}
	v, err := dass.OpenView(vcaPath)
	if err != nil {
		log.Fatal(err)
	}
	_, nt := v.Shape()

	// Part 1: read methods under growing rank counts.
	model := pfs.CoriLike()
	fmt.Println("read methods (measured op counts + Cori-model projection):")
	fmt.Printf("%6s %-24s %8s %8s %8s %14s\n", "ranks", "method", "opens", "reads", "bcasts", "projected")
	for _, p := range []int{2, 4, 8} {
		for _, m := range []struct {
			name string
			read func(c *mpi.Comm, v *dass.View) (dass.Block, pfs.Trace)
		}{
			{"collective-per-file", dass.ReadCollectivePerFile},
			{"communication-avoiding", dass.ReadCommAvoiding},
		} {
			var tr pfs.Trace
			if _, err := mpi.Run(p, func(c *mpi.Comm) {
				_, t := m.read(c, v)
				if c.Rank() == 0 {
					tr = t
				}
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%6d %-24s %8d %8d %8d %14v\n",
				p, m.name, tr.Opens, tr.Reads, tr.Broadcasts,
				model.Project(tr).Total().Round(time.Microsecond))
		}
	}

	// Part 2: engine layouts for the interferometry workload.
	params := detect.InterferometryParams{
		Rate: cfg.SampleRate, FilterOrder: 3, CutoffHz: cfg.SampleRate / 8,
		ResampleP: 1, ResampleQ: 2, MasterChannel: 0, MaxLag: 40,
	}
	parts := params.Workload(nt)
	wl := haee.RowsWorkload{
		Spec: arrayudf.Spec{}, RowLen: parts.RowLen,
		Prepare: parts.Prepare, UDF: parts.UDF,
	}
	fmt.Println("\nengine layouts (same total cores, different process models):")
	fmt.Printf("%6s %6s %-7s %8s %8s %14s\n", "nodes", "cores", "mode", "opens", "reads", "mem/node")
	for _, layout := range []struct {
		nodes, cores int
		mode         haee.Mode
	}{
		{2, 4, haee.PureMPI},
		{2, 4, haee.Hybrid},
		{4, 2, haee.PureMPI},
		{4, 2, haee.Hybrid},
	} {
		eng := haee.New(haee.Config{Nodes: layout.nodes, CoresPerNode: layout.cores, Mode: layout.mode})
		rep, err := eng.RunRows(v, wl, "")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %6d %-7s %8d %8d %11.2f MB\n",
			layout.nodes, layout.cores, layout.mode,
			rep.ReadTrace.Opens, rep.ReadTrace.Reads, float64(rep.MemPerNode)/1e6)
	}
	fmt.Println("\nhybrid always issues fewer I/O requests and holds one master-channel")
	fmt.Println("copy per node instead of one per core — the paper's Figure 8 argument.")
}
