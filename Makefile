# Convenience targets mirroring the CI jobs (.github/workflows/ci.yml).
# Everything here is plain go-tool invocations; nothing needs the network
# except the pinned static-analysis installs in `make lint-extra`.

GO ?= go
FUZZTIME ?= 30s

# Build identity stamped into the binaries (internal/obs.BuildVersion /
# BuildCommit): /status reports it and every trace's root span carries it,
# so a scraped trace names the exact build that produced it.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
LDFLAGS := -X dassa/internal/obs.BuildVersion=$(VERSION) -X dassa/internal/obs.BuildCommit=$(COMMIT)

.PHONY: all build install test race lint lint-extra fuzz bench

all: build lint test

build:
	$(GO) build -ldflags "$(LDFLAGS)" ./...

# Stamped binaries into GOBIN (or GOPATH/bin).
install:
	$(GO) install -ldflags "$(LDFLAGS)" ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Project-invariant analyzers (cmd/dassalint) + their self-tests. The
# suite lints _test.go files too via per-package test variants; add
# -tests=false for the narrow pre-variant behavior, -json for machine-
# readable findings.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dassalint ./...
	$(GO) test ./internal/lint/... -count=1

# Third-party analyzers, pinned to match CI (needs module downloads).
lint-extra:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@2024.1.1
	staticcheck ./...
	$(GO) install golang.org/x/vuln/cmd/govulncheck@v1.1.3
	govulncheck ./...

# The fuzz targets, FUZZTIME each (CI runs 30s smokes; the scheduled
# fuzz-soak workflow runs minutes-long sessions with a cached corpus).
# -fuzzminimizetime is capped: minimizing multi-KB interesting inputs
# would otherwise consume the whole budget.
fuzz:
	$(GO) test ./internal/dasf -run='^$$' -fuzz='^FuzzOpenCorruptIndex$$' -fuzztime=$(FUZZTIME) -fuzzminimizetime=2s
	$(GO) test ./internal/dasf -run='^$$' -fuzz='^FuzzOpenChunkedDeflate$$' -fuzztime=$(FUZZTIME) -fuzzminimizetime=2s
	$(GO) test ./internal/dasf -run='^$$' -fuzz='^FuzzOpenAppendedVCA$$' -fuzztime=$(FUZZTIME) -fuzzminimizetime=2s
	$(GO) test ./internal/dass -run='^$$' -fuzz='^FuzzIndexCache$$' -fuzztime=$(FUZZTIME) -fuzzminimizetime=2s
	$(GO) test ./internal/dass -run='^$$' -fuzz='^FuzzSearchRegex$$' -fuzztime=$(FUZZTIME) -fuzzminimizetime=2s
	$(GO) test ./internal/lint -run='^$$' -fuzz='^FuzzFindingsJSON$$' -fuzztime=$(FUZZTIME) -fuzzminimizetime=2s
	$(GO) test ./internal/daslib -run='^$$' -fuzz='^FuzzRFFTRoundTrip$$' -fuzztime=$(FUZZTIME) -fuzzminimizetime=2s

bench:
	$(GO) test -bench=. -benchmem ./...
