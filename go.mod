module dassa

go 1.22
