// Package dassa's root benchmark suite: one testing.B benchmark per table
// and figure of the paper's evaluation section, each delegating to the
// corresponding experiment runner in internal/bench. Run with
//
//	go test -bench=. -benchmem
//
// The printed experiment tables go to the bench's working directory output;
// the benchmark numbers measure the end-to-end cost of regenerating each
// artifact at laptop scale.
package dassa

import (
	"io"
	"path/filepath"
	"testing"

	"dassa/internal/bench"
)

// benchOptions returns a small but non-trivial configuration with output
// suppressed (the tables are printed by the das_bench command; here only
// timing matters).
func benchOptions(b *testing.B) bench.Options {
	b.Helper()
	o := bench.Defaults()
	o.DataDir = filepath.Join(b.TempDir(), "data")
	o.Channels = 48
	o.Files = 12
	o.SampleRate = 50
	o.FileSeconds = 2
	o.Ranks = 4
	o.Nodes = 4
	o.CoresPerNode = 4
	o.Out = io.Discard
	return o
}

func BenchmarkTable1RCAvsVCA(b *testing.B) {
	o := benchOptions(b)
	if _, err := bench.EnsureDataset(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable1(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2DasLibSemantics(b *testing.B) {
	o := benchOptions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable2(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelsPlannedVsAlloc(b *testing.B) {
	o := benchOptions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunKernels(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6SearchMerge(b *testing.B) {
	o := benchOptions(b)
	if _, err := bench.EnsureDataset(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig6(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ReadMethods(b *testing.B) {
	o := benchOptions(b)
	if _, err := bench.EnsureDataset(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig7(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8HybridVsMPI(b *testing.B) {
	o := benchOptions(b)
	if _, err := bench.EnsureDataset(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig8(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9VsMatlab(b *testing.B) {
	o := benchOptions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig9(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10LocalSimilarity(b *testing.B) {
	o := benchOptions(b)
	if _, err := bench.EnsureDataset(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig10(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Scaling(b *testing.B) {
	o := benchOptions(b)
	if _, err := bench.EnsureDataset(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig11(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterDetect(b *testing.B) {
	o := benchOptions(b)
	if _, err := bench.EnsureDataset(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunCluster(o); err != nil {
			b.Fatal(err)
		}
	}
}
