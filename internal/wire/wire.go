// Package wire is the cluster's framing layer: length-prefixed binary
// frames over a byte stream, carrying the coordinator↔worker protocol —
// shard requests with absolute deadlines, shard results (JSON header +
// raw float64 payload), cancel frames that poison in-flight shards,
// heartbeats, and a handshake. The decoder is hardened the way the DASF
// parsers are: truncated, oversized, or garbage input errors out; it never
// panics and never allocates more than a bounded chunk ahead of the bytes
// actually read (FuzzWireDecode enforces both).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Protocol constants. Version is checked on both sides of the handshake;
// a frame with the wrong magic or version is a hard decode error — there
// is no cross-version negotiation at this scale, just a clean refusal.
const (
	magic0  = 0xDA
	magic1  = 0x55
	Version = 1

	// headerLen is the fixed frame prefix: magic(2) version(1) type(1)
	// length(4, big endian).
	headerLen = 8

	// MaxPayload caps one frame's payload. Shard results dominate: a
	// 64 MiB frame carries an 8M-cell float64 block, far above any shard
	// the coordinator cuts. The decoder rejects larger lengths before
	// allocating anything.
	MaxPayload = 64 << 20

	// readChunk bounds how far ahead of the received bytes the decoder
	// allocates: a frame that declares a huge length but delivers ten
	// bytes costs one chunk, not the declared length.
	readChunk = 1 << 20
)

// Type identifies a frame's payload.
type Type uint8

const (
	// TypeHello opens a connection (coordinator → worker).
	TypeHello Type = 1 + iota
	// TypeWelcome acknowledges a Hello (worker → coordinator).
	TypeWelcome
	// TypeShardRequest dispatches one shard (coordinator → worker).
	TypeShardRequest
	// TypeShardResult returns a computed shard (worker → coordinator).
	TypeShardResult
	// TypeShardError reports a failed or cancelled shard (worker →
	// coordinator).
	TypeShardError
	// TypeCancel poisons every in-flight shard of one request id
	// (coordinator → worker).
	TypeCancel
	// TypeHeartbeat is the worker's liveness beacon (worker → coordinator).
	TypeHeartbeat
	// TypeGoodbye announces an orderly close from either side.
	TypeGoodbye

	typeMax = TypeGoodbye
)

func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeWelcome:
		return "welcome"
	case TypeShardRequest:
		return "shard-request"
	case TypeShardResult:
		return "shard-result"
	case TypeShardError:
		return "shard-error"
	case TypeCancel:
		return "cancel"
	case TypeHeartbeat:
		return "heartbeat"
	case TypeGoodbye:
		return "goodbye"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Decode errors. ErrTooLarge and ErrBadFrame classify malformed input;
// io errors (including io.ErrUnexpectedEOF for truncation) pass through.
var (
	ErrBadFrame = errors.New("wire: malformed frame")
	ErrTooLarge = errors.New("wire: frame exceeds MaxPayload")
)

// Frame is one decoded protocol unit.
type Frame struct {
	Type    Type
	Payload []byte
}

// bytesIn / bytesOut count every byte that crossed the wire layer,
// process-wide — the cluster metrics expose them as counters.
var bytesIn, bytesOut atomic.Int64

// BytesIn returns the total bytes read off connections by this process.
func BytesIn() int64 { return bytesIn.Load() }

// BytesOut returns the total bytes written to connections by this process.
func BytesOut() int64 { return bytesOut.Load() }

// AppendFrame encodes f onto buf and returns the extended slice.
func AppendFrame(buf []byte, f Frame) []byte {
	var hdr [headerLen]byte
	hdr[0], hdr[1] = magic0, magic1
	hdr[2] = Version
	hdr[3] = byte(f.Type)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(f.Payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, f.Payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(f.Payload))
	}
	buf := AppendFrame(make([]byte, 0, headerLen+len(f.Payload)), f)
	n, err := w.Write(buf)
	bytesOut.Add(int64(n))
	return err
}

// ReadFrame decodes one frame from r. A short stream yields io.EOF (clean
// close on a frame boundary) or io.ErrUnexpectedEOF (mid-frame truncation);
// corrupt headers yield ErrBadFrame / ErrTooLarge. The payload is
// allocated in bounded chunks, so a hostile length field costs at most one
// chunk beyond the bytes actually delivered.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	n, err := io.ReadFull(r, hdr[:])
	bytesIn.Add(int64(n))
	if err != nil {
		if err == io.EOF && n == 0 {
			return Frame{}, io.EOF
		}
		if err == io.EOF {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return Frame{}, fmt.Errorf("%w: bad magic %02x%02x", ErrBadFrame, hdr[0], hdr[1])
	}
	if hdr[2] != Version {
		return Frame{}, fmt.Errorf("%w: version %d (want %d)", ErrBadFrame, hdr[2], Version)
	}
	t := Type(hdr[3])
	if t == 0 || t > typeMax {
		return Frame{}, fmt.Errorf("%w: unknown type %d", ErrBadFrame, hdr[3])
	}
	length := binary.BigEndian.Uint32(hdr[4:])
	if length > MaxPayload {
		return Frame{}, fmt.Errorf("%w: declared %d bytes", ErrTooLarge, length)
	}
	payload := make([]byte, 0, min(int(length), readChunk))
	for len(payload) < int(length) {
		chunk := min(int(length)-len(payload), readChunk)
		start := len(payload)
		payload = append(payload, make([]byte, chunk)...)
		n, err := io.ReadFull(r, payload[start:])
		bytesIn.Add(int64(n))
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
	}
	return Frame{Type: t, Payload: payload}, nil
}

// VersionError reports a handshake peer announcing an incompatible
// protocol version. Versions are single majors; there is no negotiation —
// a mismatch is a clean, typed refusal.
type VersionError struct {
	Mine, Peer int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: peer protocol version %d incompatible with %d", e.Peer, e.Mine)
}

// versionMismatches counts handshakes rejected for a version mismatch,
// process-wide — dassa_wire_version_mismatch_total exposes it.
var versionMismatches atomic.Int64

// VersionMismatches returns how many handshakes this process refused for
// an incompatible peer version.
func VersionMismatches() int64 { return versionMismatches.Load() }

// CheckVersion validates a handshake peer's announced protocol version
// (Hello.Version / Welcome.Version) against ours, counting rejections.
func CheckVersion(peer int) error {
	if peer != Version {
		versionMismatches.Add(1)
		return &VersionError{Mine: Version, Peer: peer}
	}
	return nil
}

// FileSpec names one physical member file of a shard's view — exactly a
// VCA member: the worker reconstructs the virtual array from these and
// reads the file bytes itself (the cluster assumes the DAS archive is on a
// filesystem every worker can reach, the paper's parallel-FS model).
type FileSpec struct {
	Path        string `json:"path"`
	NumChannels int    `json:"num_channels"`
	NumSamples  int    `json:"num_samples"`
	Timestamp   int64  `json:"timestamp"`
}

// Hello opens a connection.
type Hello struct {
	From    string `json:"from"`
	Version int    `json:"version"`
}

// Welcome acknowledges a Hello.
type Welcome struct {
	Worker  string `json:"worker"`
	Version int    `json:"version"`
}

// ShardRequest dispatches one shard of a partitioned analysis. Coordinates
// are absolute over the file set's channel × concatenated-time axes. The
// deadline travels as an absolute wall-clock instant so the worker enforces
// the same budget the coordinator's context carries — the wire half of the
// PR 6 cancellation model.
type ShardRequest struct {
	ID    uint64 `json:"id"`
	Shard int    `json:"shard"`
	// DeadlineUnixNano is the request's absolute deadline (0 = none).
	DeadlineUnixNano int64      `json:"deadline_unix_nano,omitempty"`
	Op               string     `json:"op"` // read | localsimi | stalta
	Files            []FileSpec `json:"files"`
	// ChLo/ChHi are the shard's core channel rows; Halo extends the read
	// below/above by the stencil's ghost reach so shard borders compute
	// exactly (the worker trims halo rows before replying).
	ChLo int     `json:"ch_lo"`
	ChHi int     `json:"ch_hi"`
	Halo int     `json:"halo,omitempty"`
	T0   int     `json:"t0"`
	T1   int     `json:"t1"`
	Rate float64 `json:"rate,omitempty"`
	// Detection parameters (op-dependent; zero values use worker defaults).
	M      int `json:"m,omitempty"`
	K      int `json:"k,omitempty"`
	L      int `json:"l,omitempty"`
	Stride int `json:"stride,omitempty"`
	STA    int `json:"sta,omitempty"`
	LTA    int `json:"lta,omitempty"`
	// TraceID/ParentSpan propagate request tracing across the process
	// boundary: the worker records its shard spans under ParentSpan and
	// ships them back in ShardResult.Spans. Both are omitempty, so frames
	// decode cleanly against peers that predate tracing.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan uint64 `json:"parent_span,string,omitempty"`
}

// Gap mirrors dass.Gap on the wire: one NaN-masked rectangle, channels in
// absolute file-set coordinates, samples relative to the request window.
type Gap struct {
	Member int    `json:"member"`
	File   string `json:"file"`
	ChLo   int    `json:"ch_lo"`
	ChHi   int    `json:"ch_hi"`
	TLo    int    `json:"t_lo"`
	THi    int    `json:"t_hi"`
}

// Trace carries the shard's physical-I/O accounting back for the
// coordinator's merged pfs.Trace.
type Trace struct {
	Opens     int64 `json:"opens"`
	Reads     int64 `json:"reads"`
	BytesRead int64 `json:"bytes_read"`
	Retries   int64 `json:"retries,omitempty"`
	Faults    int64 `json:"faults,omitempty"`
	SlowReads int64 `json:"slow,omitempty"`
	Masked    int64 `json:"masked,omitempty"`
}

// SpanAttr is one key/value annotation on a wire Span.
type SpanAttr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Span mirrors one completed trace span on the wire: the worker's locally
// recorded fragment of a request trace, shipped home in ShardResult.Spans
// so the coordinator can reassemble one cross-process tree. Span IDs ride
// as JSON strings (like the trace package's export) so no consumer rounds
// them through float64.
type Span struct {
	SpanID        uint64     `json:"span_id,string"`
	Parent        uint64     `json:"parent,string,omitempty"`
	Name          string     `json:"name"`
	Process       string     `json:"process,omitempty"`
	StartUnixNano int64      `json:"start_unix_nano"`
	DurNS         int64      `json:"dur_ns"`
	Status        string     `json:"status,omitempty"`
	Attrs         []SpanAttr `json:"attrs,omitempty"`
}

// ShardResult is a completed shard: a JSON header followed by the raw
// row-major float64 block (channels × samples, little endian).
type ShardResult struct {
	ID       uint64 `json:"id"`
	Shard    int    `json:"shard"`
	Channels int    `json:"channels"`
	Samples  int    `json:"samples"`
	Gaps     []Gap  `json:"gaps,omitempty"`
	Trace    Trace  `json:"trace"`
	WallNS   int64  `json:"wall_ns"`
	// Spans is the worker's trace fragment (omitempty: absent both for
	// untraced requests and for peers that predate tracing).
	Spans []Span `json:"spans,omitempty"`
}

// ShardError reports a shard the worker could not complete. Cancelled
// distinguishes a poisoned shard (the coordinator asked for the stop) from
// a genuine failure worth re-dispatching.
type ShardError struct {
	ID        uint64 `json:"id"`
	Shard     int    `json:"shard"`
	Msg       string `json:"msg"`
	Cancelled bool   `json:"cancelled,omitempty"`
}

// Cancel poisons every in-flight shard of one request.
type Cancel struct {
	ID uint64 `json:"id"`
}

// Heartbeat is the worker's periodic liveness beacon.
type Heartbeat struct {
	UnixNano int64 `json:"unix_nano"`
	InFlight int   `json:"in_flight"`
}

// Encode marshals a JSON envelope into a frame of the given type.
func Encode(t Type, v any) (Frame, error) {
	p, err := json.Marshal(v)
	if err != nil {
		return Frame{}, fmt.Errorf("wire: encode %s: %w", t, err)
	}
	return Frame{Type: t, Payload: p}, nil
}

// DecodeInto unmarshals a JSON envelope frame.
func DecodeInto(f Frame, v any) error {
	if err := json.Unmarshal(f.Payload, v); err != nil {
		return fmt.Errorf("%w: %s payload: %w", ErrBadFrame, f.Type, err)
	}
	return nil
}

// EncodeResult builds a ShardResult frame: 4-byte header length, JSON
// header, then data as little-endian float64s.
func EncodeResult(res ShardResult, data []float64) (Frame, error) {
	if res.Channels*res.Samples != len(data) {
		return Frame{}, fmt.Errorf("wire: result shape %d×%d != %d values",
			res.Channels, res.Samples, len(data))
	}
	hdr, err := json.Marshal(res)
	if err != nil {
		return Frame{}, fmt.Errorf("wire: encode result: %w", err)
	}
	payload := make([]byte, 4+len(hdr)+8*len(data))
	binary.BigEndian.PutUint32(payload, uint32(len(hdr)))
	copy(payload[4:], hdr)
	off := 4 + len(hdr)
	for _, v := range data {
		binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
		off += 8
	}
	if len(payload) > MaxPayload {
		return Frame{}, fmt.Errorf("%w: result %d bytes", ErrTooLarge, len(payload))
	}
	return Frame{Type: TypeShardResult, Payload: payload}, nil
}

// DecodeResult parses a ShardResult frame. Every length is validated
// against the payload actually present before any allocation sized by it.
func DecodeResult(f Frame) (ShardResult, []float64, error) {
	var res ShardResult
	if f.Type != TypeShardResult {
		return res, nil, fmt.Errorf("%w: %s is not a shard result", ErrBadFrame, f.Type)
	}
	if len(f.Payload) < 4 {
		return res, nil, fmt.Errorf("%w: short result payload", ErrBadFrame)
	}
	hdrLen := int(binary.BigEndian.Uint32(f.Payload))
	if hdrLen < 0 || hdrLen > len(f.Payload)-4 {
		return res, nil, fmt.Errorf("%w: result header %d bytes of %d", ErrBadFrame, hdrLen, len(f.Payload))
	}
	if err := json.Unmarshal(f.Payload[4:4+hdrLen], &res); err != nil {
		return res, nil, fmt.Errorf("%w: result header: %w", ErrBadFrame, err)
	}
	raw := f.Payload[4+hdrLen:]
	if res.Channels < 0 || res.Samples < 0 || res.Channels*res.Samples*8 != len(raw) {
		return res, nil, fmt.Errorf("%w: result declares %d×%d cells, carries %d bytes",
			ErrBadFrame, res.Channels, res.Samples, len(raw))
	}
	data := make([]float64, res.Channels*res.Samples)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return res, data, nil
}
