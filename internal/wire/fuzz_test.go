package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzWireDecode feeds arbitrary bytes to the frame decoder and, when a
// frame survives, to the envelope decoders behind it. The contract under
// fuzz: errors are fine, panics are not, and a hostile length field must
// not make the decoder allocate unboundedly ahead of the bytes actually
// present (enforced here by the chunked reader + testing's OOM watchdog).
func FuzzWireDecode(f *testing.F) {
	// Valid frames of each envelope kind seed the corpus so mutation
	// explores the JSON and result-blob paths, not just the header.
	hello, _ := Encode(TypeHello, Hello{From: "coord", Version: Version})
	f.Add(AppendFrame(nil, hello))
	req, _ := Encode(TypeShardRequest, ShardRequest{
		ID: 1, Shard: 0, Op: "localsimi",
		Files: []FileSpec{{Path: "a.dasf", NumChannels: 4, NumSamples: 8, Timestamp: 170728224510}},
		ChLo:  0, ChHi: 4, T0: 0, T1: 8, Rate: 50, M: 2, K: 1, L: 1, Stride: 2,
	})
	f.Add(AppendFrame(nil, req))
	res, _ := EncodeResult(ShardResult{ID: 1, Channels: 2, Samples: 2,
		Gaps: []Gap{{File: "a.dasf", ChHi: 1, THi: 2}}}, []float64{1, 2, math.NaN(), 4})
	f.Add(AppendFrame(nil, res))
	// Trace-bearing seeds: the omitempty trace fields must mutate like any
	// other envelope content without ever panicking a pre-trace decoder.
	treq, _ := Encode(TypeShardRequest, ShardRequest{
		ID: 2, Shard: 1, Op: "read", ChLo: 0, ChHi: 2, T0: 0, T1: 4,
		TraceID: "4be1a7c0ffee4be1a7c0ffee4be1a7c0", ParentSpan: 0xdeadbeef,
	})
	f.Add(AppendFrame(nil, treq))
	tres, _ := EncodeResult(ShardResult{ID: 2, Shard: 1, Channels: 1, Samples: 2,
		Spans: []Span{{SpanID: 7, Parent: 3, Name: "worker.shard", Process: "w1",
			StartUnixNano: 1700000000, DurNS: 42, Status: "error",
			Attrs: []SpanAttr{{K: "shard", V: "1"}}}}}, []float64{1, 2})
	f.Add(AppendFrame(nil, tres))
	cancel, _ := Encode(TypeCancel, Cancel{ID: 9})
	f.Add(AppendFrame(nil, cancel))
	f.Add([]byte{magic0, magic1, Version, byte(TypeHeartbeat), 0, 0, 0, 0})
	// Hostile header: plausible prefix, enormous declared length.
	f.Add([]byte{magic0, magic1, Version, byte(TypeShardResult), 0x03, 0xff, 0xff, 0xff, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := ReadFrame(r)
			if err != nil {
				return
			}
			switch fr.Type {
			case TypeShardResult:
				res, vals, err := DecodeResult(fr)
				if err == nil && res.Channels*res.Samples != len(vals) {
					t.Fatalf("decoded result shape %d×%d != %d values",
						res.Channels, res.Samples, len(vals))
				}
			case TypeShardRequest:
				var v ShardRequest
				_ = DecodeInto(fr, &v)
			case TypeHello:
				var v Hello
				_ = DecodeInto(fr, &v)
			case TypeHeartbeat:
				var v Heartbeat
				_ = DecodeInto(fr, &v)
			case TypeCancel:
				var v Cancel
				_ = DecodeInto(fr, &v)
			case TypeShardError:
				var v ShardError
				_ = DecodeInto(fr, &v)
			}
		}
	})
}
