package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dassa/internal/faults"
)

// Send-side errors.
var (
	// ErrQueueFull reports that the connection's bounded send queue is at
	// capacity: the peer is not draining fast enough and the caller must
	// decide (drop, retry, fail the shard) rather than buffer without bound.
	ErrQueueFull = errors.New("wire: send queue full")
	// ErrConnClosed reports a send or receive on a closed connection.
	ErrConnClosed = errors.New("wire: connection closed")
)

// DefaultSendQueue bounds a connection's outgoing frame queue. Shard
// results are large and heartbeats are tiny; 64 outstanding frames is far
// beyond a healthy conn's depth while still bounding a stalled peer's cost.
const DefaultSendQueue = 64

// FaultConfig injects wire-level chaos into a connection, reusing the
// storage fault injector's deterministic (seed, label) schedule: the label
// plays the role a file path plays for storage faults. A transient fault
// drops the frame (the bytes never leave); a corrupt fault writes a
// partial frame and then severs the connection — the two failure shapes a
// real network shows (loss, and a peer dying mid-message). ReadDelay
// becomes a send delay.
type FaultConfig struct {
	Injector *faults.Injector
	Label    string
}

// Conn wraps a net.Conn with the frame codec and a bounded, asynchronous
// send queue: Send never blocks on the network (it fails fast with
// ErrQueueFull instead), and one writer goroutine preserves frame order.
// Recv reads synchronously on the caller's goroutine. Safe for concurrent
// Send from many goroutines; Recv must be called from one.
type Conn struct {
	nc    net.Conn
	sendq chan Frame

	mu     sync.Mutex
	closed bool

	writerDone chan struct{}
	// writeErr records the first writer failure; later Sends surface it.
	writeErr error
	werrMu   sync.Mutex

	fault FaultConfig
}

// NewConn wraps nc. queue ≤ 0 uses DefaultSendQueue. The returned Conn owns
// nc: Close closes it and reaps the writer goroutine.
func NewConn(nc net.Conn, queue int) *Conn {
	if queue <= 0 {
		queue = DefaultSendQueue
	}
	c := &Conn{
		nc:         nc,
		sendq:      make(chan Frame, queue),
		writerDone: make(chan struct{}),
	}
	go c.writer()
	return c
}

// SetFaults installs wire-level fault injection (chaos tests only).
// Must be called before any Send.
func (c *Conn) SetFaults(fc FaultConfig) *Conn {
	c.fault = fc
	return c
}

// RemoteAddr exposes the peer address for logs.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// writer drains the send queue in order until the queue closes or a write
// fails. After a failure it keeps draining (discarding) so senders never
// block, and records the error for Send to surface.
func (c *Conn) writer() {
	defer close(c.writerDone)
	for f := range c.sendq {
		if c.failed() != nil {
			continue // drain-and-discard after first failure
		}
		if err := c.writeFrame(f); err != nil {
			c.werrMu.Lock()
			c.writeErr = err
			c.werrMu.Unlock()
		}
	}
}

// writeFrame performs one physical frame write, applying injected faults.
func (c *Conn) writeFrame(f Frame) error {
	if in := c.fault.Injector; in != nil {
		if d := in.ReadDelay(c.fault.Label); d > 0 {
			time.Sleep(d)
		}
		switch err := in.ReadFault(c.fault.Label); {
		case errors.Is(err, faults.ErrTransient):
			return nil // frame dropped on the floor
		case err != nil:
			// Permanent fault: partial write, then sever the connection —
			// the peer sees a truncated frame and a dead socket.
			buf := AppendFrame(nil, f)
			half := len(buf) / 2
			n, _ := c.nc.Write(buf[:half])
			bytesOut.Add(int64(n))
			_ = c.nc.Close()
			return fmt.Errorf("wire: injected partial write: %w", err)
		}
	}
	return WriteFrame(c.nc, f)
}

func (c *Conn) failed() error {
	c.werrMu.Lock()
	defer c.werrMu.Unlock()
	return c.writeErr
}

// Send enqueues one frame. It fails fast: ErrQueueFull when the bounded
// queue is at capacity, ErrConnClosed after Close, or the writer's first
// network error once one has happened.
func (c *Conn) Send(f Frame) error {
	if err := c.failed(); err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrConnClosed
	}
	// Enqueue under the lock so Close cannot close the channel between the
	// check and the send.
	select {
	case c.sendq <- f:
		c.mu.Unlock()
		return nil
	default:
		c.mu.Unlock()
		return ErrQueueFull
	}
}

// SendEnvelope JSON-encodes v and enqueues it as a frame of type t.
func (c *Conn) SendEnvelope(t Type, v any) error {
	f, err := Encode(t, v)
	if err != nil {
		return err
	}
	return c.Send(f)
}

// Recv reads the next frame. It blocks until a frame arrives, the peer
// closes (io.EOF), or the connection errors.
func (c *Conn) Recv() (Frame, error) {
	return ReadFrame(c.nc)
}

// SetReadDeadline bounds the next Recv (handshakes, heartbeat staleness).
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// Close shuts the connection down: the send queue stops accepting, the
// writer drains what was already queued, and the socket closes. Idempotent.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.sendq)
	c.mu.Unlock()
	<-c.writerDone
	return c.nc.Close()
}

// Abort severs the socket without draining the send queue — for reaping a
// peer declared dead: pending frames to a corpse are not worth writing.
func (c *Conn) Abort() {
	_ = c.nc.Close() // unblocks Recv and fails the writer
	_ = c.Close()
}
