package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"dassa/internal/faults"
	"dassa/internal/testutil/leakcheck"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Type: TypeHello, Payload: []byte(`{"from":"coord","version":1}`)},
		{Type: TypeHeartbeat, Payload: nil},
		{Type: TypeCancel, Payload: []byte(`{"id":7}`)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write %s: %v", f.Type, err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.Type, err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip: got %v %q, want %v %q", got.Type, got.Payload, want.Type, want.Payload)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"bad magic":   {0x00, 0x00, 1, 1, 0, 0, 0, 0},
		"bad version": {magic0, magic1, 99, 1, 0, 0, 0, 0},
		"bad type":    {magic0, magic1, Version, 0, 0, 0, 0, 0},
		"type high":   {magic0, magic1, Version, 200, 0, 0, 0, 0},
		"oversized":   {magic0, magic1, Version, 1, 0xff, 0xff, 0xff, 0xff},
	}
	for name, b := range cases {
		if _, err := ReadFrame(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: decode accepted %x", name, b)
		}
	}
	// Truncated payload: header declares 100 bytes, stream has 3.
	hdr := []byte{magic0, magic1, Version, byte(TypeHello), 0, 0, 0, 100, 'a', 'b', 'c'}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated payload: want ErrUnexpectedEOF, got %v", err)
	}
	// Truncated header.
	if _, err := ReadFrame(bytes.NewReader(hdr[:4])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated header: want ErrUnexpectedEOF, got %v", err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	data := []float64{1, 2.5, math.NaN(), -4}
	res := ShardResult{
		ID: 3, Shard: 1, Channels: 2, Samples: 2,
		Gaps:  []Gap{{Member: 0, File: "a.dasf", ChLo: 1, ChHi: 2, TLo: 0, THi: 2}},
		Trace: Trace{Opens: 2, Reads: 4, BytesRead: 64},
	}
	f, err := EncodeResult(res, data)
	if err != nil {
		t.Fatal(err)
	}
	got, gotData, err := DecodeResult(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 3 || got.Shard != 1 || got.Channels != 2 || got.Samples != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Gaps) != 1 || got.Gaps[0].File != "a.dasf" {
		t.Fatalf("gaps mismatch: %+v", got.Gaps)
	}
	for i := range data {
		same := gotData[i] == data[i] || (math.IsNaN(gotData[i]) && math.IsNaN(data[i]))
		if !same {
			t.Fatalf("data[%d]: got %v want %v", i, gotData[i], data[i])
		}
	}
}

func TestEncodeResultShapeMismatch(t *testing.T) {
	if _, err := EncodeResult(ShardResult{Channels: 2, Samples: 3}, make([]float64, 5)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestDecodeResultRejectsCorruptHeader(t *testing.T) {
	f, err := EncodeResult(ShardResult{ID: 1, Channels: 1, Samples: 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Header length pointing past the payload.
	bad := Frame{Type: TypeShardResult, Payload: append([]byte{0xff, 0xff, 0xff, 0xff}, f.Payload[4:]...)}
	if _, _, err := DecodeResult(bad); err == nil {
		t.Fatal("oversized header length accepted")
	}
	// Data length not matching the declared shape.
	short := Frame{Type: TypeShardResult, Payload: f.Payload[:len(f.Payload)-8]}
	if _, _, err := DecodeResult(short); err == nil {
		t.Fatal("short data block accepted")
	}
}

// pipeConns returns a connected Conn pair over an in-memory duplex pipe.
func pipeConns(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewConn(a, 8), NewConn(b, 8)
	t.Cleanup(func() { ca.Abort(); cb.Abort() })
	return ca, cb
}

func TestConnSendRecv(t *testing.T) {
	leakcheck.Check(t)
	ca, cb := pipeConns(t)
	if err := ca.SendEnvelope(TypeCancel, Cancel{ID: 42}); err != nil {
		t.Fatal(err)
	}
	f, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var c Cancel
	if err := DecodeInto(f, &c); err != nil || c.ID != 42 {
		t.Fatalf("got %+v, %v", c, err)
	}
}

func TestConnQueueBound(t *testing.T) {
	leakcheck.Check(t)
	// net.Pipe is fully synchronous: with no reader, every write blocks, so
	// the queue fills deterministically.
	a, b := net.Pipe()
	ca := NewConn(a, 2)
	defer func() { ca.Abort(); b.Close() }()
	var full bool
	for i := 0; i < 10; i++ {
		if err := ca.Send(Frame{Type: TypeHeartbeat}); errors.Is(err, ErrQueueFull) {
			full = true
			break
		}
	}
	if !full {
		t.Fatal("bounded queue never reported ErrQueueFull")
	}
}

func TestConnSendAfterClose(t *testing.T) {
	leakcheck.Check(t)
	a, b := net.Pipe()
	drained := make(chan struct{})
	defer func() { <-drained }() // declared first: joins after b.Close severs the pipe
	defer b.Close()
	ca := NewConn(a, 2)
	go func() { // drain so Close's queue flush can finish
		defer close(drained)
		for {
			if _, err := ReadFrame(b); err != nil {
				return
			}
		}
	}()
	if err := ca.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ca.Send(Frame{Type: TypeHeartbeat}); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("send after close: want ErrConnClosed, got %v", err)
	}
	if err := ca.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestConnFaultInjection(t *testing.T) {
	leakcheck.Check(t)
	// A transient fault drops exactly the first frame on this label (streak
	// length 1 at probability 1 with max 1), so the receiver sees only the
	// second send.
	inj := faults.New(faults.Config{Seed: 7, TransientProb: 1, MaxTransient: 1})
	a, b := net.Pipe()
	ca := NewConn(a, 8).SetFaults(FaultConfig{Injector: inj, Label: "conn0"})
	cb := NewConn(b, 8)
	defer func() { ca.Abort(); cb.Abort() }()

	if err := ca.SendEnvelope(TypeCancel, Cancel{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ca.SendEnvelope(TypeCancel, Cancel{ID: 2}); err != nil {
		t.Fatal(err)
	}
	_ = cb.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var c Cancel
	if err := DecodeInto(f, &c); err != nil || c.ID != 2 {
		t.Fatalf("dropped frame not dropped: got %+v %v", c, err)
	}
	if inj.Counters().Transient != 1 {
		t.Fatalf("injector counted %d transients, want 1", inj.Counters().Transient)
	}
}

func TestConnPartialWriteSeversConn(t *testing.T) {
	leakcheck.Check(t)
	inj := faults.New(faults.Config{Seed: 1, Corrupt: []string{"conn1"}})
	a, b := net.Pipe()
	ca := NewConn(a, 8).SetFaults(FaultConfig{Injector: inj, Label: "conn1"})
	cb := NewConn(b, 8)
	defer func() { ca.Abort(); cb.Abort() }()

	if err := ca.SendEnvelope(TypeCancel, Cancel{ID: 1}); err != nil {
		t.Fatal(err)
	}
	_ = cb.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := cb.Recv(); err == nil {
		t.Fatal("peer decoded a frame across an injected partial write")
	}
	// The sender's side observed the failure too: later sends surface it.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := ca.Send(Frame{Type: TypeHeartbeat}); err != nil && !errors.Is(err, ErrQueueFull) {
			return // writer recorded the injected failure
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("sender never surfaced the injected write failure")
}
