package wire

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestCheckVersion(t *testing.T) {
	before := VersionMismatches()
	if err := CheckVersion(Version); err != nil {
		t.Fatalf("matching version rejected: %v", err)
	}
	if got := VersionMismatches(); got != before {
		t.Fatalf("counter moved on a clean handshake: %d → %d", before, got)
	}
	err := CheckVersion(Version + 1)
	if err == nil {
		t.Fatal("mismatched version accepted")
	}
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("error is not a *VersionError: %T", err)
	}
	if ve.Mine != Version || ve.Peer != Version+1 {
		t.Fatalf("VersionError fields wrong: %+v", ve)
	}
	if got := VersionMismatches(); got != before+1 {
		t.Fatalf("mismatch counter = %d, want %d", got, before+1)
	}
}

// TestTraceFieldsBackCompat pins the cross-version story for the trace
// additions: a pre-trace peer's frames (no trace_id/parent_span/spans
// keys) decode into today's structs with zero values, and today's frames
// decode into a pre-trace struct shape with the new keys ignored. Both
// directions ride on omitempty + JSON's unknown-field tolerance; this
// test keeps that from regressing into required fields.
func TestTraceFieldsBackCompat(t *testing.T) {
	// Old → new: the exact header an old worker/coordinator emits.
	oldReq := []byte(`{"id":7,"shard":2,"op":"read","files":[{"path":"a.dasf","num_channels":4,"num_samples":8,"timestamp":1}],"ch_lo":0,"ch_hi":4,"t0":0,"t1":8}`)
	var req ShardRequest
	if err := DecodeInto(Frame{Type: TypeShardRequest, Payload: oldReq}, &req); err != nil {
		t.Fatalf("old request corpus rejected: %v", err)
	}
	if req.TraceID != "" || req.ParentSpan != 0 {
		t.Fatalf("trace fields not zero on an old frame: %q %d", req.TraceID, req.ParentSpan)
	}

	// New → old: a trace-bearing request decoded by a struct predating the
	// fields (stand-in for the old build's ShardRequest).
	newReq, err := json.Marshal(ShardRequest{ID: 7, Op: "read", ChLo: 0, ChHi: 4,
		TraceID: "4be1a7c0ffee4be1a7c0ffee4be1a7c0", ParentSpan: 12345678901234567890})
	if err != nil {
		t.Fatal(err)
	}
	var oldShape struct {
		ID   uint64 `json:"id"`
		Op   string `json:"op"`
		ChHi int    `json:"ch_hi"`
	}
	if err := json.Unmarshal(newReq, &oldShape); err != nil {
		t.Fatalf("old decoder rejects a trace-bearing request: %v", err)
	}
	if oldShape.ID != 7 || oldShape.ChHi != 4 {
		t.Fatalf("old decoder misread a trace-bearing request: %+v", oldShape)
	}

	// ParentSpan uses json ",string": above 2^53 it must round-trip exactly.
	var back ShardRequest
	if err := json.Unmarshal(newReq, &back); err != nil {
		t.Fatal(err)
	}
	if back.ParentSpan != 12345678901234567890 {
		t.Fatalf("parent span lost precision: %d", back.ParentSpan)
	}

	// Results: spans ride the JSON header through EncodeResult/DecodeResult.
	frame, err := EncodeResult(ShardResult{ID: 7, Shard: 2, Channels: 1, Samples: 2,
		Spans: []Span{{SpanID: 9, Parent: 3, Name: "worker.shard", Process: "w1", DurNS: 5,
			Attrs: []SpanAttr{{K: "op", V: "read"}}}}}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	res, data, err := DecodeResult(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2 || len(res.Spans) != 1 || res.Spans[0].Name != "worker.shard" {
		t.Fatalf("spans did not survive the result round-trip: %+v", res.Spans)
	}
	// And an old result header (no spans key) still decodes.
	var oldRes ShardResult
	oldHdr := []byte(`{"id":7,"shard":2,"channels":1,"samples":2,"trace":{"opens":1,"reads":1,"bytes_read":16}}`)
	if err := json.Unmarshal(oldHdr, &oldRes); err != nil {
		t.Fatalf("old result corpus rejected: %v", err)
	}
	if oldRes.Spans != nil {
		t.Fatalf("spans not nil on an old result: %+v", oldRes.Spans)
	}
}
