// Package leakcheck asserts that a test leaks no goroutines. A cancelled
// read that strands a rank goroutine in Recv, or an abandoned collector
// still draining a channel, passes every functional assertion and then
// poisons whichever test runs next — so cancellation tests register this
// check FIRST (its Cleanup then runs LAST, after the test's own servers and
// injectors are torn down) and fail loudly if anything is still running.
//
//	func TestCancelMidRead(t *testing.T) {
//		leakcheck.Check(t)
//		// ... test body ...
//	}
//
// The check snapshots the goroutines alive when Check is called and, at
// cleanup, waits a grace period for anything newer to finish. Goroutines
// that are part of normal runtime/stdlib operation (see ignored) are
// exempt; everything else still alive is reported with its full stack.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// grace is how long cleanup waits for stragglers before declaring a leak.
// Legitimate teardown (an http server draining, a rank unwinding through a
// poison cascade) finishes in milliseconds; a stranded goroutine never does.
const grace = 5 * time.Second

// ignored lists stack substrings of goroutines that are not leaks: test
// machinery, runtime helpers, and stdlib background loops whose lifecycle
// the test does not own.
var ignored = []string{
	"testing.Main(",
	"testing.(*T).Run(",
	"testing.runFuzzTests(",
	"testing.runTests(",
	"runtime.goexit",
	"created by runtime.gc",
	"runtime.MHeap_Scavenger",
	"signal.signal_recv",
	"os/signal.loop",
	"runtime/pprof.",
	// Keep-alive HTTP machinery: httptest.Server.Close reaps its conns, but
	// the client side's idle pool unwinds asynchronously.
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.(*Transport).dialConn",
	"net/http.setRequestCancel",
}

// Check registers a leaked-goroutine assertion on t. Call it before
// anything else in the test so its cleanup runs after all others.
// Extra stack substrings to exempt can be passed for tests that
// deliberately own long-lived goroutines.
func Check(t testing.TB, allow ...string) {
	t.Helper()
	base := goroutineIDs(snapshot())
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, stack := range stacks(snapshot()) {
				if base[id] || exempt(stack, allow) {
					continue
				}
				leaked = append(leaked, stack)
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("leakcheck: %d goroutine(s) leaked after %v grace:\n\n%s",
			len(leaked), grace, strings.Join(leaked, "\n\n"))
	})
}

// snapshot captures all goroutine stacks, growing the buffer until the
// dump fits.
func snapshot() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, len(buf)*2)
	}
}

// stacks splits an all-goroutine dump into per-goroutine stanzas keyed by
// goroutine ID.
func stacks(dump string) map[string]string {
	out := map[string]string{}
	for _, stanza := range strings.Split(dump, "\n\n") {
		stanza = strings.TrimSpace(stanza)
		if stanza == "" {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(stanza, "goroutine %d ", &id); err != nil {
			continue
		}
		out[fmt.Sprint(id)] = stanza
	}
	return out
}

// goroutineIDs reduces a dump to the set of live goroutine IDs.
func goroutineIDs(dump string) map[string]bool {
	out := map[string]bool{}
	for id := range stacks(dump) {
		out[id] = true
	}
	return out
}

// exempt reports whether a stack matches the built-in or caller-supplied
// exemption lists.
func exempt(stack string, allow []string) bool {
	for _, s := range ignored {
		if strings.Contains(stack, s) {
			return true
		}
	}
	for _, s := range allow {
		if strings.Contains(stack, s) {
			return true
		}
	}
	return false
}
