package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCleanPasses: a goroutine that finishes before cleanup is not a leak.
func TestCleanPasses(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(done)
	}()
	<-done
}

// TestDetectsStranded drives the detection machinery directly (not through
// Check, which would fail this very test): a goroutine parked on a channel
// nobody closes must show up in the diff, and must disappear once released.
func TestDetectsStranded(t *testing.T) {
	base := goroutineIDs(snapshot())
	block := make(chan struct{})
	go func() { <-block }()
	time.Sleep(10 * time.Millisecond)

	var leaked []string
	for id, stack := range stacks(snapshot()) {
		if base[id] || exempt(stack, nil) {
			continue
		}
		leaked = append(leaked, stack)
	}
	if len(leaked) != 1 {
		t.Fatalf("got %d leaked goroutines, want exactly the stranded one:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}
	if !strings.Contains(leaked[0], "leakcheck.TestDetectsStranded") {
		t.Fatalf("leak not attributed to this test:\n%s", leaked[0])
	}

	close(block)
	deadline := time.Now().Add(2 * time.Second)
	for {
		still := 0
		for id, stack := range stacks(snapshot()) {
			if !base[id] && !exempt(stack, nil) {
				still++
			}
		}
		if still == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("released goroutine still reported as leaked")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAllowExempts: a caller-supplied substring excuses a matching stack.
func TestAllowExempts(t *testing.T) {
	base := goroutineIDs(snapshot())
	block := make(chan struct{})
	defer close(block)
	go parkForTest(block)
	time.Sleep(10 * time.Millisecond)

	for id, stack := range stacks(snapshot()) {
		if base[id] {
			continue
		}
		if strings.Contains(stack, "parkForTest") && !exempt(stack, []string{"parkForTest"}) {
			t.Fatal("allow list did not exempt the parked goroutine")
		}
	}
}

func parkForTest(ch chan struct{}) { <-ch }
