package detect

import (
	"math"
	"math/rand"
	"testing"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/dasgen"
)

func TestSTALTAValidation(t *testing.T) {
	if err := (STALTAParams{STASamples: 10, LTASamples: 100}).Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []STALTAParams{
		{STASamples: 0, LTASamples: 10},
		{STASamples: 10, LTASamples: 10},
		{STASamples: 20, LTASamples: 10},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v should be invalid", bad)
		}
	}
}

func TestSTALTARatioTriggersOnBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 2000
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.1 * rng.NormFloat64()
	}
	// A strong burst at samples 1200..1260.
	for i := 1200; i < 1260; i++ {
		x[i] += 3 * math.Sin(2*math.Pi*float64(i)/20)
	}
	p := STALTAParams{STASamples: 20, LTASamples: 400}
	ratios := p.Ratio(x)
	// Quiet section stays near 1, burst onset spikes high.
	for i := 600; i < 1100; i++ {
		if ratios[i] > 4 {
			t.Fatalf("quiet section triggered at %d: %g", i, ratios[i])
		}
	}
	peak := 0.0
	for i := 1200; i < 1280; i++ {
		peak = math.Max(peak, ratios[i])
	}
	if peak < 8 {
		t.Errorf("burst peak ratio = %g, want ≫ 1", peak)
	}
}

func TestSTALTARatioMatchesUDF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 500
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	p := STALTAParams{STASamples: 8, LTASamples: 64, Stride: 3}
	fast := p.Ratio(x)
	data := dasf.NewArray2D(1, n)
	copy(data.Row(0), x)
	blk := arrayudf.Block{Data: data, ChLo: 0, ChHi: 1}
	udf := p.UDF()
	for i := range fast {
		s := blk.Stencil(0, i*3)
		want := udf(s)
		if d := math.Abs(fast[i] - want); d > 1e-9*(1+want) {
			t.Fatalf("prefix-sum ratio[%d] = %g, UDF = %g", i, fast[i], want)
		}
	}
}

// TestSTALTAVsLocalSimilarityFalseTriggers reproduces the reason ref [18]
// (and therefore the paper) prefers local similarity on dense arrays:
// on a record whose "events" are incoherent single-channel noise bursts,
// STA/LTA fires while local similarity stays quiet; on a coherent
// earthquake both fire.
func TestSTALTAVsLocalSimilarityFalseTriggers(t *testing.T) {
	cfg := dasgen.Config{
		Channels: 16, SampleRate: 50, FileSeconds: 20, NumFiles: 1,
		Seed: 8, NoiseAmp: 0.3,
	}
	quiet, err := dasgen.GenerateFileArray(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Single-channel incoherent bursts (instrument glitches / local noise):
	// strong energy on channel 7 only.
	rng := rand.New(rand.NewSource(10))
	for b := 0; b < 5; b++ {
		start := 100 + b*150
		for i := start; i < start+30; i++ {
			quiet.Set(7, i, quiet.At(7, i)+4*rng.NormFloat64())
		}
	}
	blk := arrayudf.Block{Data: quiet, ChLo: 0, ChHi: cfg.Channels}

	stalta := STALTAParams{STASamples: 15, LTASamples: 200}
	ratios := stalta.Ratio(quiet.Row(7))
	if MaxRatio(ratios) < 5 {
		t.Fatalf("STA/LTA should fire on the bursts: max ratio %g", MaxRatio(ratios))
	}

	simi := LocalSimiParams{M: 15, K: 1, L: 3}
	udf := simi.UDF()
	// At the burst times, the burst channel's local similarity stays low
	// (its neighbors don't carry the burst).
	for b := 0; b < 5; b++ {
		at := 100 + b*150 + 15
		if got := udf(blk.Stencil(7, at)); got > 0.75 {
			t.Errorf("local similarity fired on an incoherent burst: %g at %d", got, at)
		}
	}

	// A coherent earthquake: both methods respond.
	eqCfg := cfg
	eq := dasgen.Earthquake{OriginSec: 10, EpicenterChannel: 8, PVel: 200, SVel: 60, Amp: 8, FreqHz: 6, DurSec: 1}
	shaken, err := dasgen.GenerateFileArray(eqCfg, []dasgen.Event{eq}, 0)
	if err != nil {
		t.Fatal(err)
	}
	blk2 := arrayudf.Block{Data: shaken, ChLo: 0, ChHi: cfg.Channels}
	arrival := int(10.1 * cfg.SampleRate)
	if got := udf(blk2.Stencil(8, arrival)); got < 0.9 {
		t.Errorf("local similarity missed the earthquake: %g", got)
	}
	if got := MaxRatio(stalta.Ratio(shaken.Row(8))); got < 5 {
		t.Errorf("STA/LTA missed the earthquake: %g", got)
	}
}

func TestTriggerRate(t *testing.T) {
	r := []float64{1, 2, 6, 1, 9}
	if got := TriggerRate(r, 5); got != 0.4 {
		t.Errorf("TriggerRate = %g, want 0.4", got)
	}
	if TriggerRate(nil, 5) != 0 {
		t.Error("empty rate should be 0")
	}
	if MaxRatio(nil) != 0 {
		t.Error("empty max should be 0")
	}
}
