package detect

import (
	"math"
	"path/filepath"
	"testing"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/dass"
	"dassa/internal/mpi"
)

// TestScalarUDFThroughEngine runs Algorithm 3 exactly as printed (one
// spectral-similarity scalar per channel) through the distributed Apply
// engine with a per-rank PrepareMaster, checking against a direct serial
// computation.
func TestScalarUDFThroughEngine(t *testing.T) {
	dir := t.TempDir()
	cfg := dasgen.Config{
		Channels: 10, SampleRate: 50, FileSeconds: 4, NumFiles: 2,
		Seed: 14, DType: dasf.Float64,
	}
	if _, err := dasgen.Generate(dir, cfg, dasgen.Fig10Events(cfg)); err != nil {
		t.Fatal(err)
	}
	cat, err := dass.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	vca := filepath.Join(dir, "v.dasf")
	if _, err := dass.CreateVCA(vca, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	v, err := dass.OpenView(vca)
	if err != nil {
		t.Fatal(err)
	}
	params := InterferometryParams{
		Rate: cfg.SampleRate, FilterOrder: 3, CutoffHz: 8,
		ResampleP: 1, ResampleQ: 2, MasterChannel: 2,
	}

	// Serial reference.
	master, _, err := params.PrepareMaster(v)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, cfg.Channels)
	blk := arrayudf.Block{Data: full, ChLo: 0, ChHi: cfg.Channels}
	serialUDF := params.ScalarUDF(master)
	for ch := 0; ch < cfg.Channels; ch++ {
		want[ch] = serialUDF(blk.Stencil(ch, 0))
	}

	// Distributed: each rank prepares its own master (as pure MPI would).
	nch, _ := v.Shape()
	var got *dasf.Array2D
	_, err = mpi.Run(3, func(c *mpi.Comm) {
		m, _, err := params.PrepareMaster(v)
		if err != nil {
			panic(err)
		}
		res := arrayudf.ApplyRows(c, v, arrayudf.Spec{}, 1, func(s *arrayudf.Stencil) []float64 {
			return []float64{params.ScalarUDF(m)(s)}
		})
		if out := arrayudf.Gather(c, nch, res); out != nil {
			got = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < cfg.Channels; ch++ {
		if d := math.Abs(got.At(ch, 0) - want[ch]); d > 1e-9 {
			t.Errorf("channel %d: engine %g vs serial %g", ch, got.At(ch, 0), want[ch])
		}
	}
	// The master channel's self-similarity is exactly 1, and every channel
	// lands in (0, 1].
	if d := math.Abs(want[2] - 1); d > 1e-9 {
		t.Errorf("master self-similarity = %g", want[2])
	}
	for ch, v := range want {
		if v <= 0 || v > 1+1e-9 {
			t.Errorf("channel %d similarity %g out of range", ch, v)
		}
	}
}
