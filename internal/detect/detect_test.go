package detect

import (
	"math"
	"path/filepath"
	"testing"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/daslib"
	"dassa/internal/dass"
	"dassa/internal/mpi"
)

func TestLocalSimiParamsValidate(t *testing.T) {
	good := LocalSimiParams{M: 10, K: 1, L: 5}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []LocalSimiParams{
		{M: 0, K: 1, L: 1}, {M: 5, K: 0, L: 1}, {M: 5, K: 1, L: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v should be invalid", bad)
		}
	}
	if got := good.Spec().GhostChannels; got != 1 {
		t.Errorf("Spec ghost = %d, want K", got)
	}
}

func TestLocalSimiRangeAndCoherence(t *testing.T) {
	// On an array where neighbors carry the same signal, similarity ≈ 1; on
	// independent noise it is well below 1.
	const nch, nt = 8, 400
	coherent := dasf.NewArray2D(nch, nt)
	for c := 0; c < nch; c++ {
		for tt := 0; tt < nt; tt++ {
			coherent.Set(c, tt, math.Sin(2*math.Pi*float64(tt)/25))
		}
	}
	p := LocalSimiParams{M: 20, K: 1, L: 5}
	udf := p.UDF()
	blk := arrayudf.Block{Data: coherent, ChLo: 0, ChHi: nch}
	s := blk.Stencil(4, 200)
	if got := udf(s); got < 0.999 {
		t.Errorf("coherent similarity = %g, want ≈1", got)
	}
	// Independent pseudo-noise channels.
	noise := dasf.NewArray2D(nch, nt)
	state := uint64(12345)
	rnd := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(int64(state>>11))/float64(1<<52) - 1
	}
	for i := range noise.Data {
		noise.Data[i] = rnd()
	}
	blk2 := arrayudf.Block{Data: noise, ChLo: 0, ChHi: nch}
	s2 := blk2.Stencil(4, 200)
	if got := udf(s2); got > 0.8 {
		t.Errorf("noise similarity = %g, want well below 1", got)
	}
}

// runLocalSimi executes Algorithm 2 over a generated record and returns the
// similarity map.
func runLocalSimi(t *testing.T, cfg dasgen.Config, events []dasgen.Event, p LocalSimiParams, ranks int) *dasf.Array2D {
	t.Helper()
	dir := t.TempDir()
	if _, err := dasgen.Generate(dir, cfg, events); err != nil {
		t.Fatal(err)
	}
	cat, err := dass.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	vca := filepath.Join(dir, "v.dasf")
	if _, err := dass.CreateVCA(vca, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	v, err := dass.OpenView(vca)
	if err != nil {
		t.Fatal(err)
	}
	nch, _ := v.Shape()
	var sim *dasf.Array2D
	_, err = mpi.Run(ranks, func(c *mpi.Comm) {
		res := arrayudf.Apply(c, v, p.Spec(), p.UDF())
		if out := arrayudf.Gather(c, nch, res); out != nil {
			sim = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestLocalSimiDetectsEarthquake(t *testing.T) {
	cfg := dasgen.Config{
		Channels: 48, SampleRate: 50, FileSeconds: 4, NumFiles: 3,
		Seed: 21, NoiseAmp: 1,
	}
	quakeAt := 6.0 // seconds
	events := []dasgen.Event{dasgen.Earthquake{
		OriginSec: quakeAt, EpicenterChannel: 24, PVel: 240, SVel: 80,
		Amp: 10, FreqHz: 6, DurSec: 1.5,
	}}
	p := LocalSimiParams{M: 12, K: 1, L: 4, Stride: 10}
	sim := runLocalSimi(t, cfg, events, p, 3)

	regions := FindEvents(sim, 2)
	if len(regions) == 0 {
		t.Fatal("no events detected")
	}
	// Some region must cover the quake time (output index = sample/stride).
	quakeIdx := int(quakeAt * cfg.SampleRate / float64(p.Stride))
	found := false
	for _, r := range regions {
		if r.TLo <= quakeIdx+10 && r.THi >= quakeIdx-2 {
			found = true
			// An earthquake spans most of the array.
			if span := r.ChHi - r.ChLo; span < cfg.Channels/3 {
				t.Errorf("earthquake channel span = %d, want wide", span)
			}
		}
	}
	if !found {
		t.Errorf("no detected region covers the earthquake at index %d (regions: %+v)", quakeIdx, regions)
	}
}

func TestInterferometryParamsValidate(t *testing.T) {
	good := InterferometryParams{Rate: 100, FilterOrder: 4, CutoffHz: 10, ResampleP: 1, ResampleQ: 2}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bads := []InterferometryParams{
		{Rate: 0, FilterOrder: 4, CutoffHz: 10, ResampleP: 1, ResampleQ: 2},
		{Rate: 100, FilterOrder: 0, CutoffHz: 10, ResampleP: 1, ResampleQ: 2},
		{Rate: 100, FilterOrder: 4, CutoffHz: 60, ResampleP: 1, ResampleQ: 2}, // ≥ Nyquist
		{Rate: 100, FilterOrder: 4, CutoffHz: 10, ResampleP: 0, ResampleQ: 2},
		{Rate: 100, FilterOrder: 4, CutoffHz: 10, ResampleP: 1, ResampleQ: 2, MasterChannel: -1},
		{Rate: 100, FilterOrder: 4, CutoffHz: 10, ResampleP: 1, ResampleQ: 2, MaxLag: -5},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestPreprocessShapes(t *testing.T) {
	p := InterferometryParams{Rate: 100, FilterOrder: 4, CutoffHz: 10, ResampleP: 1, ResampleQ: 4}
	x := make([]float64, 400)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*5*float64(i)/100) + 0.01*float64(i)
	}
	y, err := p.Preprocess(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 100 {
		t.Fatalf("preprocessed length = %d, want 100", len(y))
	}
	if got := p.resampledLen(400); got != 100 {
		t.Errorf("resampledLen = %d", got)
	}
	// RowLen: full correlation 2·100-1, or trimmed.
	if got := p.RowLen(400); got != 199 {
		t.Errorf("RowLen = %d, want 199", got)
	}
	p.MaxLag = 30
	if got := p.RowLen(400); got != 61 {
		t.Errorf("trimmed RowLen = %d, want 61", got)
	}
}

func TestTrimLags(t *testing.T) {
	// na=nb=5: full length 9, zero lag at index 4.
	corr := []float64{0, 1, 2, 3, 9, 3, 2, 1, 0}
	got := TrimLags(corr, 5, 5, 5)
	want := []float64{2, 3, 9, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TrimLags[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// rowLen larger than input: zero-padded copy.
	got = TrimLags([]float64{1, 2}, 2, 1, 4)
	if len(got) != 4 || got[0] != 1 || got[3] != 0 {
		t.Errorf("padded TrimLags = %v", got)
	}
}

func TestInterferometryRecoversLag(t *testing.T) {
	// Two channels carrying the same noise shifted by a known delay: the
	// interferometry row must peak at that lag. This is the physics the
	// pipeline exists for (empirical Green's function travel time).
	const nch, nt = 4, 2048
	const shift = 12 // samples at the resampled (÷2) rate → 24 raw samples
	raw := dasf.NewArray2D(nch, nt)
	state := uint64(7)
	rnd := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(int64(state>>11))/float64(1<<52) - 1
	}
	src := make([]float64, nt+64)
	prev := 0.0
	for i := range src {
		prev = 0.9*prev + rnd() // red noise within the filter band
		src[i] = prev
	}
	for tt := 0; tt < nt; tt++ {
		raw.Set(0, tt, src[tt])                // master
		raw.Set(1, tt, src[tt])                // zero lag
		raw.Set(2, tt, srcAt(src, tt-2*shift)) // delayed
		raw.Set(3, tt, srcAt(src, tt+2*shift)) // advanced
	}
	p := InterferometryParams{
		Rate: 100, FilterOrder: 4, CutoffHz: 20,
		ResampleP: 1, ResampleQ: 2, MasterChannel: 0, MaxLag: 40,
	}
	master, err := p.Preprocess(raw.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	rowLen := p.RowLen(nt)
	peakLag := func(ch int) int {
		series, err := p.Preprocess(raw.Row(ch))
		if err != nil {
			t.Fatal(err)
		}
		corr := TrimLags(xcorrRef(series, master), len(series), len(master), rowLen)
		best, bestI := math.Inf(-1), 0
		for i, v := range corr {
			if v > best {
				best, bestI = v, i
			}
		}
		return bestI - rowLen/2
	}
	// Convention: XCorr(channel, master) peaks at +shift when the channel
	// is DELAYED relative to the master (the wave arrived there later).
	if lag := peakLag(1); lag != 0 {
		t.Errorf("identical channel peak lag = %d, want 0", lag)
	}
	if lag := peakLag(2); abs(lag-shift) > 1 {
		t.Errorf("delayed channel peak lag = %d, want ≈ %d", lag, shift)
	}
	if lag := peakLag(3); abs(lag-(-shift)) > 1 {
		t.Errorf("advanced channel peak lag = %d, want ≈ %d", lag, -shift)
	}
}

func srcAt(src []float64, i int) float64 {
	if i < 0 {
		return 0
	}
	if i >= len(src) {
		return 0
	}
	return src[i]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// xcorrRef delegates to daslib via the same path the workload uses.
func xcorrRef(a, b []float64) []float64 {
	return daslib.XCorrNormalized(a, b)
}

func TestScalarUDFSelfIsOne(t *testing.T) {
	const nch, nt = 3, 512
	raw := dasf.NewArray2D(nch, nt)
	for c := 0; c < nch; c++ {
		for tt := 0; tt < nt; tt++ {
			raw.Set(c, tt, math.Sin(2*math.Pi*float64(tt)/20)+float64(c)*0.001*float64(tt%7))
		}
	}
	p := InterferometryParams{
		Rate: 100, FilterOrder: 4, CutoffHz: 15,
		ResampleP: 1, ResampleQ: 2, MasterChannel: 0,
	}
	// Master prepared from the same array.
	masterSeries, err := p.Preprocess(raw.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	master := &Master{Series: masterSeries, Spectrum: daslib.FFTReal(masterSeries)}
	blk := arrayudf.Block{Data: raw, ChLo: 0, ChHi: nch}
	udf := p.ScalarUDF(master)
	if got := udf(blk.Stencil(0, 0)); math.Abs(got-1) > 1e-9 {
		t.Errorf("master vs itself = %g, want 1", got)
	}
	// Other channels: in (0, 1].
	for c := 1; c < nch; c++ {
		got := udf(blk.Stencil(c, 0))
		if got <= 0 || got > 1+1e-9 {
			t.Errorf("channel %d scalar similarity = %g out of range", c, got)
		}
	}
}

func TestFindEventsEmptyAndFlat(t *testing.T) {
	if got := FindEvents(dasf.NewArray2D(0, 0), 2); got != nil {
		t.Error("empty map should yield no events")
	}
	flat := dasf.NewArray2D(4, 100)
	for i := range flat.Data {
		flat.Data[i] = 0.5
	}
	if got := FindEvents(flat, 2); len(got) != 0 {
		t.Errorf("flat map yielded %d events", len(got))
	}
}

func TestFindEventsLocatesHotInterval(t *testing.T) {
	sim := dasf.NewArray2D(10, 200)
	for i := range sim.Data {
		sim.Data[i] = 0.2
	}
	// Hot block: channels 3..6, times 80..100.
	for c := 3; c <= 6; c++ {
		for tt := 80; tt < 100; tt++ {
			sim.Set(c, tt, 0.95)
		}
	}
	regions := FindEvents(sim, 2)
	if len(regions) != 1 {
		t.Fatalf("found %d regions, want 1", len(regions))
	}
	r := regions[0]
	if r.TLo < 75 || r.TLo > 85 || r.THi < 95 || r.THi > 105 {
		t.Errorf("region time [%d,%d), want ≈[80,100)", r.TLo, r.THi)
	}
	if r.ChLo > 3 || r.ChHi < 7 {
		t.Errorf("region channels [%d,%d), want to cover [3,7)", r.ChLo, r.ChHi)
	}
	if r.Peak < 0.4 {
		t.Errorf("region peak = %g", r.Peak)
	}
}
