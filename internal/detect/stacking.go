package detect

import (
	"context"
	"fmt"

	"dassa/internal/arrayudf"
	"dassa/internal/daslib"
	"dassa/internal/dass"
	"dassa/internal/pfs"
)

// The production ambient-noise workflow (Dou et al. 2017, the paper's
// ref [16]) does not correlate a whole recording at once: it splits the
// record into windows, cross-correlates each window against the master,
// and stacks the per-window correlations so uncorrelated noise averages
// out while the coherent travel-time structure accumulates. The paper's
// §IV notes exactly this: "during the stacking operation of the DAS data
// analysis pipeline, a 3D data array with a striping size as the third
// dimension may be produced" — the (channel × lag × window) intermediate
// this file materializes per channel before reducing over windows.

// StackingParams extends InterferometryParams with the windowing scheme.
type StackingParams struct {
	InterferometryParams
	// WindowSamples is the raw-sample length of one correlation window.
	WindowSamples int
	// OverlapSamples shifts successive windows by WindowSamples−Overlap.
	OverlapSamples int
}

// Validate checks the windowing on top of the base parameters.
func (p StackingParams) Validate() error {
	if err := p.InterferometryParams.Validate(); err != nil {
		return err
	}
	if p.WindowSamples < 8 {
		return fmt.Errorf("detect: stacking window %d too short", p.WindowSamples)
	}
	if p.OverlapSamples < 0 || p.OverlapSamples >= p.WindowSamples {
		return fmt.Errorf("detect: overlap %d must be in [0, window %d)", p.OverlapSamples, p.WindowSamples)
	}
	return nil
}

// NumWindows returns how many windows fit in nt raw samples.
func (p StackingParams) NumWindows(nt int) int {
	hop := p.WindowSamples - p.OverlapSamples
	if nt < p.WindowSamples {
		return 0
	}
	return (nt-p.WindowSamples)/hop + 1
}

// StackedRowLen returns the output lag-axis length.
func (p StackingParams) StackedRowLen() int {
	return p.InterferometryParams.RowLen(p.WindowSamples)
}

// PrepareStackedMaster preprocesses the master channel per window and
// returns the per-window series plus the per-window prepared correlation
// spectra — every worker needs all of them, so in pure MPI this payload
// (windows × resampled length) replicates per core, amplifying the
// Figure 8 memory argument.
type StackedMaster struct {
	Windows [][]float64
	// Corrs[w] is the reusable time-reversed padded spectrum of Windows[w];
	// nil entries (hand-built masters) fall back to pairwise correlation.
	Corrs []*daslib.XCorrMaster
}

// Bytes estimates the payload size.
func (m *StackedMaster) Bytes() int64 {
	var n int64
	for _, w := range m.Windows {
		n += int64(len(w)) * 8
	}
	for _, c := range m.Corrs {
		if c != nil {
			n += int64(c.Len()) * 16
		}
	}
	return n
}

// prepareStackedMaster builds the per-window master series from the raw
// master row.
func (p StackingParams) prepareStackedMaster(raw []float64) (*StackedMaster, error) {
	nw := p.NumWindows(len(raw))
	if nw == 0 {
		return nil, fmt.Errorf("detect: record (%d samples) shorter than one window (%d)", len(raw), p.WindowSamples)
	}
	hop := p.WindowSamples - p.OverlapSamples
	m := &StackedMaster{Windows: make([][]float64, nw), Corrs: make([]*daslib.XCorrMaster, nw)}
	for w := 0; w < nw; w++ {
		series, err := p.Preprocess(raw[w*hop : w*hop+p.WindowSamples])
		if err != nil {
			return nil, err
		}
		m.Windows[w] = series
		m.Corrs[w] = daslib.PrepareXCorrMaster(series, len(series))
	}
	return m, nil
}

// PrepareStackedMasterFromView reads the master channel from the view and
// builds the per-window payload — the rank-level Prepare step for engine
// runs.
func (p StackingParams) PrepareStackedMasterFromView(v *dass.View) (*StackedMaster, pfs.Trace, error) {
	nch, nt := v.Shape()
	if p.MasterChannel >= nch {
		return nil, pfs.Trace{}, fmt.Errorf("detect: master channel %d outside view (%d channels)", p.MasterChannel, nch)
	}
	sub, err := v.Subset(p.MasterChannel, p.MasterChannel+1, 0, nt)
	if err != nil {
		return nil, pfs.Trace{}, err
	}
	raw, tr, _, err := sub.ReadPolicy(p.FailPolicy)
	if err != nil {
		return nil, tr, err
	}
	m, err := p.prepareStackedMaster(raw.Row(0))
	return m, tr, err
}

// StackedUDF returns the per-channel row UDF: window the channel, correlate
// each window with the matching master window, stack by averaging. The
// (lag × window) intermediate lives only inside one evaluation — the 3D
// array never materializes globally, which is the memory point of doing
// stacking inside the UDF.
func (p StackingParams) StackedUDF(master *StackedMaster) func(s *arrayudf.Stencil) []float64 {
	return p.StackedUDFContext(context.Background(), master)
}

// StackedUDFContext is StackedUDF bound to a context: cancellation is
// checked at window boundaries, the stacking engine's natural tile — one
// window is one filter+FFT correlation, heavy enough that per-window checks
// cost nothing and a cancelled run stops within one window's work. The
// panic unwinds through the thread team and mpi.Run as the context's error.
//
// A thin allocating shim over StackedUDFIntoContext.
func (p StackingParams) StackedUDFContext(ctx context.Context, master *StackedMaster) func(s *arrayudf.Stencil) []float64 {
	rowLen := p.StackedRowLen()
	into := p.StackedUDFIntoContext(ctx, master)
	return func(s *arrayudf.Stencil) []float64 {
		stack := make([]float64, rowLen)
		into(s, stack, nil)
		return stack
	}
}

// StackedUDFIntoContext is the destination-passing form the engine runs:
// the stacked correlation is accumulated straight into dst (length
// StackedRowLen) and every per-window intermediate — preprocessed series,
// raw correlation, trimmed row — is borrowed from the scratch arena, so
// stacking W windows costs zero allocations after warm-up instead of 3·W
// slices per channel.
func (p StackingParams) StackedUDFIntoContext(ctx context.Context, master *StackedMaster) func(s *arrayudf.Stencil, dst []float64, scr *daslib.Scratch) {
	hop := p.WindowSamples - p.OverlapSamples
	resLen := p.resampledLen(p.WindowSamples)
	return func(s *arrayudf.Stencil, dst []float64, scr *daslib.Scratch) {
		raw := s.Row(0)
		clear(dst)
		nw := min(p.NumWindows(len(raw)), len(master.Windows))
		if nw == 0 {
			return
		}
		series := scr.Float(resLen)
		trimmed := scr.Float(len(dst))
		for w := 0; w < nw; w++ {
			if err := ctx.Err(); err != nil {
				panic(fmt.Errorf("detect: stacked correlate: %w", err))
			}
			if err := p.PreprocessInto(series, raw[w*hop:w*hop+p.WindowSamples], scr); err != nil {
				panic(fmt.Errorf("detect: stacked preprocess: %w", err))
			}
			mw := master.Windows[w]
			corr := scr.Float(daslib.XCorrLen(len(series), len(mw)))
			if w < len(master.Corrs) && master.Corrs[w] != nil {
				master.Corrs[w].XCorrNormalizedInto(corr, series, scr)
			} else {
				daslib.XCorrNormalizedInto(corr, series, mw, scr)
			}
			TrimLagsInto(trimmed, corr, len(series), len(mw))
			scr.ReleaseFloat(corr)
			for i, v := range trimmed {
				dst[i] += v
			}
		}
		scr.ReleaseFloat(trimmed)
		scr.ReleaseFloat(series)
		inv := 1 / float64(nw)
		for i := range dst {
			dst[i] *= inv
		}
	}
}
