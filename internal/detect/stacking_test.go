package detect

import (
	"math"
	"math/rand"
	"testing"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
)

func stackingParams() StackingParams {
	return StackingParams{
		InterferometryParams: InterferometryParams{
			Rate: 100, FilterOrder: 3, CutoffHz: 20,
			ResampleP: 1, ResampleQ: 2, MasterChannel: 0, MaxLag: 30,
		},
		WindowSamples:  256,
		OverlapSamples: 64,
	}
}

func TestStackingValidation(t *testing.T) {
	good := stackingParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.WindowSamples = 4
	if err := bad.Validate(); err == nil {
		t.Error("tiny window should fail")
	}
	bad = good
	bad.OverlapSamples = 256
	if err := bad.Validate(); err == nil {
		t.Error("overlap ≥ window should fail")
	}
	bad = good
	bad.Rate = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad base params should fail")
	}
}

func TestNumWindows(t *testing.T) {
	p := stackingParams() // window 256, hop 192
	cases := map[int]int{255: 0, 256: 1, 447: 1, 448: 2, 640: 3, 2048: 10}
	for nt, want := range cases {
		if got := p.NumWindows(nt); got != want {
			t.Errorf("NumWindows(%d) = %d, want %d", nt, got, want)
		}
	}
}

// TestStackingSuppressesIncoherentNoise is the physics of stacking: a
// channel carrying the master's signal plus strong independent noise shows
// a cleaner correlation peak after stacking many windows than any single
// window gives.
func TestStackingSuppressesIncoherentNoise(t *testing.T) {
	p := stackingParams()
	const nt = 256 * 24
	rng := rand.New(rand.NewSource(3))
	master := make([]float64, nt)
	prev := 0.0
	for i := range master {
		prev = 0.8*prev + rng.NormFloat64()
		master[i] = prev
	}
	const shift = 8 // raw samples → 4 resampled lags
	noisy := make([]float64, nt)
	for i := range noisy {
		src := 0.0
		if i >= shift {
			src = master[i-shift]
		}
		noisy[i] = src + 2.5*rng.NormFloat64() // SNR well below 1
	}

	sm, err := p.prepareStackedMaster(master)
	if err != nil {
		t.Fatal(err)
	}
	data := dasf.NewArray2D(2, nt)
	copy(data.Row(0), master)
	copy(data.Row(1), noisy)
	blk := arrayudf.Block{Data: data, ChLo: 0, ChHi: 2}
	udf := p.StackedUDF(sm)

	stacked := udf(blk.Stencil(1, 0))
	rowLen := p.StackedRowLen()
	if len(stacked) != rowLen {
		t.Fatalf("row length %d, want %d", len(stacked), rowLen)
	}
	// The peak must sit at the planted lag (+shift/2 after ÷2 resampling).
	best, bestI := math.Inf(-1), 0
	for i, v := range stacked {
		if v > best {
			best, bestI = v, i
		}
	}
	wantLag := shift / 2
	if got := bestI - rowLen/2; got < wantLag-1 || got > wantLag+1 {
		t.Errorf("stacked peak at lag %d, want ≈%d", got, wantLag)
	}
	// Stacked peak-to-background contrast beats a single window's.
	single := StackingParams{
		InterferometryParams: p.InterferometryParams,
		WindowSamples:        p.WindowSamples,
		OverlapSamples:       p.OverlapSamples,
	}
	smOne := &StackedMaster{Windows: sm.Windows[:1]}
	oneWin := single.StackedUDF(smOne)(blk.Stencil(1, 0))
	contrast := func(row []float64, peakI int) float64 {
		var bg float64
		var n int
		for i, v := range row {
			if i < peakI-3 || i > peakI+3 {
				bg += v * v
				n++
			}
		}
		return row[peakI] / math.Sqrt(bg/float64(n))
	}
	cStack := contrast(stacked, bestI)
	bestOne, bestOneI := math.Inf(-1), 0
	for i, v := range oneWin {
		if v > bestOne {
			bestOne, bestOneI = v, i
		}
	}
	cOne := contrast(oneWin, bestOneI)
	if cStack <= cOne {
		t.Errorf("stacking contrast %.2f should beat single-window %.2f", cStack, cOne)
	}
	// The master's own stacked correlation peaks at zero lag with value ≈1.
	self := udf(blk.Stencil(0, 0))
	if d := math.Abs(self[rowLen/2] - 1); d > 1e-6 {
		t.Errorf("stacked self correlation = %g", self[rowLen/2])
	}
}

func TestStackedMasterBytes(t *testing.T) {
	p := stackingParams()
	raw := make([]float64, 256*4)
	sm, err := p.prepareStackedMaster(raw)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Bytes() <= 0 {
		t.Error("Bytes should be positive")
	}
	if _, err := p.prepareStackedMaster(make([]float64, 10)); err == nil {
		t.Error("record shorter than a window should fail")
	}
}
