// Package detect implements the paper's two case studies (§V.C) as
// ArrayUDF user-defined functions: earthquake detection via local
// similarity (Algorithm 2) and traffic-noise interferometry (Algorithm 3),
// plus small utilities to verify detections against planted events.
package detect

import (
	"fmt"
	"math"
	"sync"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/daslib"
	"dassa/internal/dass"
	"dassa/internal/mpi"
	"dassa/internal/pfs"
)

// LocalSimiParams configures Algorithm 2. Windows have width 2M+1 samples;
// the two compared channels sit ±K channels away; 2L+1 window positions are
// scanned on each neighbor.
type LocalSimiParams struct {
	M int // half window width
	K int // channel offset to the neighbors
	L int // half lag-scan extent
	// Stride evaluates the similarity every Stride samples (0/1 = all).
	Stride int
}

// Validate checks the parameters.
func (p LocalSimiParams) Validate() error {
	if p.M < 1 || p.K < 1 || p.L < 0 {
		return fmt.Errorf("detect: LocalSimiParams need M≥1, K≥1, L≥0: %+v", p)
	}
	return nil
}

// Spec returns the ArrayUDF spec for these parameters: the stencil reaches
// K channels away, so blocks carry K ghost channels.
func (p LocalSimiParams) Spec() arrayudf.Spec {
	return arrayudf.Spec{GhostChannels: p.K, TimeStride: p.Stride}
}

// UDF returns Algorithm 2 as a PointUDF: the local similarity of the
// current cell's window against the best-aligned windows of its ±K channel
// neighbors. NaN-masked gaps (degraded reads) are skipped, not correlated:
// a cell whose own window is masked scores 0, and masked neighbor windows
// contribute nothing — so gaps can never manufacture a detection.
//
// UDF is a thin shim over UDFScratch with a nil (allocate-fresh) arena.
func (p LocalSimiParams) UDF() arrayudf.PointUDF {
	udf := p.UDFScratch()
	return func(s *arrayudf.Stencil) float64 { return udf(s, nil) }
}

// UDFScratch is UDF with the three comparison windows borrowed from a
// per-thread scratch arena — the fig10 hot path evaluates this once per
// cell per lag, so the arena removes three window allocations per lag
// scan.
func (p LocalSimiParams) UDFScratch() func(s *arrayudf.Stencil, scr *daslib.Scratch) float64 {
	width := 2*p.M + 1
	return func(s *arrayudf.Stencil, scr *daslib.Scratch) float64 {
		w := scr.Float(width)
		s.WindowInto(w, -p.M, p.M, 0)
		if hasNaN(w) {
			scr.ReleaseFloat(w)
			return 0
		}
		w1 := scr.Float(width)
		w2 := scr.Float(width)
		var cPlus, cMinus float64
		for l := -p.L; l <= p.L; l++ {
			s.WindowInto(w1, l-p.M, l+p.M, +p.K)
			s.WindowInto(w2, l-p.M, l+p.M, -p.K)
			if !hasNaN(w1) {
				cPlus = math.Max(cPlus, daslib.AbsCorr(w, w1))
			}
			if !hasNaN(w2) {
				cMinus = math.Max(cMinus, daslib.AbsCorr(w, w2))
			}
		}
		scr.ReleaseFloat(w2)
		scr.ReleaseFloat(w1)
		scr.ReleaseFloat(w)
		return (cPlus + cMinus) / 2
	}
}

// hasNaN reports whether w contains a NaN gap marker.
func hasNaN(w []float64) bool {
	for _, v := range w {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// zeroGaps replaces NaN gap markers with zero (silence), so filters and
// correlations over partially masked rows stay finite. Clean rows are
// returned unchanged — fault-free runs take the exact same numeric path.
func zeroGaps(x []float64) []float64 {
	if !hasNaN(x) {
		return x
	}
	out := make([]float64, len(x))
	for i, v := range x {
		if math.IsNaN(v) {
			out[i] = 0
		} else {
			out[i] = v
		}
	}
	return out
}

// InterferometryParams configures Algorithm 3: the ambient-noise
// interferometry pipeline that turns raw DAS data into noise correlations
// against a master channel.
type InterferometryParams struct {
	// Rate is the input sampling rate in Hz.
	Rate float64
	// FilterOrder and CutoffHz define the Butterworth lowpass
	// Das_butter(n, fc) applied with Das_filtfilt.
	FilterOrder int
	CutoffHz    float64
	// ResampleP/ResampleQ change the rate by P/Q after filtering
	// (Das_resample).
	ResampleP, ResampleQ int
	// MasterChannel is the view-relative channel every channel is
	// correlated against.
	MasterChannel int
	// MaxLag limits the correlation output to ±MaxLag samples (at the
	// resampled rate). Zero keeps the full correlation.
	MaxLag int
	// FailPolicy governs reads performed by the workload itself (the master
	// channel): under dass.FailDegrade a master whose member file stays bad
	// is zero-filled over the gap instead of aborting the run.
	FailPolicy dass.FailPolicy
}

// Validate checks the parameters.
func (p InterferometryParams) Validate() error {
	if p.Rate <= 0 || p.FilterOrder < 1 || p.CutoffHz <= 0 || p.CutoffHz >= p.Rate/2 {
		return fmt.Errorf("detect: bad filter config %+v", p)
	}
	if p.ResampleP < 1 || p.ResampleQ < 1 {
		return fmt.Errorf("detect: bad resample factors %d/%d", p.ResampleP, p.ResampleQ)
	}
	if p.MasterChannel < 0 {
		return fmt.Errorf("detect: negative master channel")
	}
	if p.MaxLag < 0 {
		return fmt.Errorf("detect: negative MaxLag")
	}
	return nil
}

// preprocessor is the filter design of Preprocess, built once per
// parameter set: Butter runs a polynomial root expansion and FilterPlan a
// companion-matrix solve, neither of which belongs in the per-channel
// loop. InterferometryParams is a comparable value type, so it keys the
// cache directly.
type preprocessor struct {
	fp *daslib.FilterPlan
}

var prepCache = struct {
	sync.RWMutex
	m map[InterferometryParams]*preprocessor
}{m: map[InterferometryParams]*preprocessor{}}

func (p InterferometryParams) preprocessor() (*preprocessor, error) {
	prepCache.RLock()
	pp, ok := prepCache.m[p]
	prepCache.RUnlock()
	if ok {
		return pp, nil
	}
	b, a, err := daslib.Butter(p.FilterOrder, daslib.Lowpass, p.CutoffHz/(p.Rate/2))
	if err != nil {
		return nil, err
	}
	fp, err := daslib.NewFilterPlan(b, a)
	if err != nil {
		return nil, err
	}
	pp = &preprocessor{fp: fp}
	prepCache.Lock()
	if have, ok := prepCache.m[p]; ok {
		pp = have
	} else {
		prepCache.m[p] = pp
	}
	prepCache.Unlock()
	return pp, nil
}

// Preprocess is the per-channel front half of Algorithm 3: detrend,
// zero-phase lowpass, resample. It is applied identically to the master
// channel and to every analyzed channel. NaN gap markers from degraded
// reads are treated as silence (zero) so the filters stay finite; clean
// input passes through bit-identically.
//
// Preprocess is a thin allocating shim over PreprocessInto.
func (p InterferometryParams) Preprocess(x []float64) ([]float64, error) {
	pp, err := p.preprocessor()
	if err != nil {
		return nil, err
	}
	out := make([]float64, p.resampledLen(len(x)))
	s := daslib.GetScratch()
	err = pp.preprocessInto(out, x, p, s)
	daslib.PutScratch(s)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// preprocessInto runs the chain into dst (length p.resampledLen(len(x))),
// borrowing every intermediate from s: the working copy is detrended and
// filtered in place, then resampled into dst.
func (pp *preprocessor) preprocessInto(dst, x []float64, p InterferometryParams, s *daslib.Scratch) error {
	w := s.Float(len(x))
	for i, v := range x {
		if math.IsNaN(v) {
			w[i] = 0
		} else {
			w[i] = v
		}
	}
	daslib.DetrendInPlace(w)
	if err := pp.fp.FiltFiltInto(w, w, s); err != nil {
		return err
	}
	err := daslib.ResampleInto(dst, w, p.ResampleP, p.ResampleQ, s)
	s.ReleaseFloat(w)
	return err
}

// PreprocessInto is Preprocess writing into dst (length
// p.resampledLen(len(x))), with all intermediates borrowed from s.
func (p InterferometryParams) PreprocessInto(dst, x []float64, s *daslib.Scratch) error {
	pp, err := p.preprocessor()
	if err != nil {
		return err
	}
	return pp.preprocessInto(dst, x, p, s)
}

// resampledLen returns the output length of Preprocess for input length n.
func (p InterferometryParams) resampledLen(n int) int {
	g := 1
	for a, b := p.ResampleP, p.ResampleQ; b != 0; a, b = b, a%b {
		g = b
	}
	pp, qq := p.ResampleP/g, p.ResampleQ/g
	return (n*pp + qq - 1) / qq
}

// RowLen returns the correlation row length for an input time extent nt.
func (p InterferometryParams) RowLen(nt int) int {
	m := p.resampledLen(nt)
	full := 2*m - 1
	if p.MaxLag > 0 && 2*p.MaxLag+1 < full {
		return 2*p.MaxLag + 1
	}
	return full
}

// Master holds the shared, per-node payload of the interferometry
// workload: the preprocessed master channel, its spectrum (Mfft in
// Algorithm 3), and the prepared correlation master — the time-reversed,
// padded spectrum every channel's cross-correlation reuses instead of
// re-transforming the master per channel. In pure MPI every rank holds its
// own copy — the memory pressure Figure 8 demonstrates.
type Master struct {
	Series   []float64
	Spectrum []complex128
	Corr     *daslib.XCorrMaster
}

// Bytes estimates the payload's memory footprint.
func (m *Master) Bytes() int64 {
	b := int64(len(m.Series))*8 + int64(len(m.Spectrum))*16
	if m.Corr != nil {
		b += int64(m.Corr.Len()) * 16
	}
	return b
}

// PrepareMaster loads and preprocesses the master channel from the view.
// Every calling rank performs its own read — one per core in pure MPI, one
// per node in hybrid mode — which is exactly the paper's I/O-call argument.
func (p InterferometryParams) PrepareMaster(v *dass.View) (*Master, pfs.Trace, error) {
	nch, nt := v.Shape()
	if p.MasterChannel >= nch {
		return nil, pfs.Trace{}, fmt.Errorf("detect: master channel %d outside view (%d channels)", p.MasterChannel, nch)
	}
	sub, err := v.Subset(p.MasterChannel, p.MasterChannel+1, 0, nt)
	if err != nil {
		return nil, pfs.Trace{}, err
	}
	raw, tr, _, err := sub.ReadPolicy(p.FailPolicy)
	if err != nil {
		return nil, tr, err
	}
	series, err := p.Preprocess(raw.Row(0))
	if err != nil {
		return nil, tr, err
	}
	return &Master{
		Series:   series,
		Spectrum: daslib.FFTReal(series),
		Corr:     daslib.PrepareXCorrMaster(series, len(series)),
	}, tr, nil
}

// Workload assembles Algorithm 3 as a HAEE rows-workload returning, per
// channel, the time-domain noise correlation with the master channel
// (lags ordered negative→positive, trimmed to ±MaxLag). The engine runs
// UDFInto — preprocess into scratch, correlate against the master's
// prepared spectrum, trim into the engine-owned row; UDF is the allocating
// fallback for legacy callers.
func (p InterferometryParams) Workload(nt int) RowsWorkloadParts {
	rowLen := p.RowLen(nt)
	resLen := p.resampledLen(nt)
	udfInto := func(s *arrayudf.Stencil, shared any, dst []float64, scr *daslib.Scratch) {
		master := shared.(*Master)
		series := scr.Float(resLen)
		if err := p.PreprocessInto(series, s.Row(0), scr); err != nil {
			panic(fmt.Errorf("detect: preprocess: %w", err))
		}
		corr := scr.Float(daslib.XCorrLen(len(series), len(master.Series)))
		if master.Corr != nil {
			master.Corr.XCorrNormalizedInto(corr, series, scr)
		} else {
			daslib.XCorrNormalizedInto(corr, series, master.Series, scr)
		}
		TrimLagsInto(dst, corr, len(series), len(master.Series))
		scr.ReleaseFloat(corr)
		scr.ReleaseFloat(series)
	}
	return RowsWorkloadParts{
		RowLen: rowLen,
		Prepare: func(c *mpi.Comm, v *dass.View) (any, int64, pfs.Trace) {
			m, tr, err := p.PrepareMaster(v)
			if err != nil {
				panic(fmt.Errorf("detect: prepare master: %w", err))
			}
			return m, m.Bytes(), tr
		},
		UDF: func(s *arrayudf.Stencil, shared any) []float64 {
			dst := make([]float64, rowLen)
			udfInto(s, shared, dst, nil)
			return dst
		},
		UDFInto: udfInto,
	}
}

// ScalarUDF is Algorithm 3 exactly as printed: the absolute spectral
// correlation of the channel against the master, one value per channel.
func (p InterferometryParams) ScalarUDF(master *Master) arrayudf.PointUDF {
	return func(s *arrayudf.Stencil) float64 {
		series, err := p.Preprocess(s.Row(0))
		if err != nil {
			panic(fmt.Errorf("detect: preprocess: %w", err))
		}
		wfft := daslib.FFTReal(series)
		n := min(len(wfft), len(master.Spectrum))
		return daslib.AbsCorrComplex(wfft[:n], master.Spectrum[:n])
	}
}

// RowsWorkloadParts carries the pieces detect hands to haee.RowsWorkload
// without importing haee (which would be a cycle: haee → arrayudf ← detect).
type RowsWorkloadParts struct {
	RowLen  int
	Prepare func(c *mpi.Comm, v *dass.View) (any, int64, pfs.Trace)
	UDF     func(s *arrayudf.Stencil, shared any) []float64
	UDFInto func(s *arrayudf.Stencil, shared any, dst []float64, scr *daslib.Scratch)
}

// TrimLags cuts a full cross-correlation (length na+nb-1, zero lag at index
// nb-1) down to rowLen samples centered on zero lag — a thin allocating
// shim over TrimLagsInto.
func TrimLags(corr []float64, na, nb, rowLen int) []float64 {
	out := make([]float64, rowLen)
	TrimLagsInto(out, corr, na, nb)
	return out
}

// TrimLagsInto is TrimLags writing the len(dst) samples centered on zero
// lag into dst.
func TrimLagsInto(dst, corr []float64, na, nb int) {
	rowLen := len(dst)
	if len(corr) <= rowLen {
		n := copy(dst, corr)
		clear(dst[n:])
		return
	}
	zero := nb - 1
	half := rowLen / 2
	lo := zero - half
	if lo < 0 {
		lo = 0
	}
	if lo+rowLen > len(corr) {
		lo = len(corr) - rowLen
	}
	copy(dst, corr[lo:lo+rowLen])
}

// Region is a detected event: a time interval (in output sample indices)
// with elevated similarity, plus the channel span where it was strongest.
type Region struct {
	TLo, THi   int
	ChLo, ChHi int
	Peak       float64
}

// FindEvents scans a similarity map (channels × time) for intervals whose
// per-column mean similarity rises above the map's background by thresh
// standard deviations. It is used to verify that planted events (Fig. 10's
// vehicles and earthquake) are actually recovered.
func FindEvents(sim *dasf.Array2D, thresh float64) []Region {
	nt := sim.Samples
	if nt == 0 || sim.Channels == 0 {
		return nil
	}
	col := make([]float64, nt)
	for t := 0; t < nt; t++ {
		var s float64
		for c := 0; c < sim.Channels; c++ {
			s += sim.At(c, t)
		}
		col[t] = s / float64(sim.Channels)
	}
	var mean, sd float64
	for _, v := range col {
		mean += v
	}
	mean /= float64(nt)
	for _, v := range col {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(nt))
	cut := mean + thresh*sd
	var out []Region
	inEvent := false
	var cur Region
	for t := 0; t <= nt; t++ {
		hot := t < nt && col[t] > cut
		switch {
		case hot && !inEvent:
			inEvent = true
			cur = Region{TLo: t, Peak: col[t]}
		case hot && inEvent:
			cur.Peak = math.Max(cur.Peak, col[t])
		case !hot && inEvent:
			inEvent = false
			cur.THi = t
			cur.ChLo, cur.ChHi = hotChannels(sim, cur.TLo, cur.THi)
			out = append(out, cur)
		}
	}
	return out
}

// FindEventsBanded splits the channel axis into bands of bandWidth
// channels, runs the FindEvents scan inside each band, and merges
// detections that overlap in both time and channel span. Localized events
// — a vehicle covering a few percent of the fiber, a persistent vibration
// on a short segment — stand out inside their band even though they barely
// move the whole-array column mean that FindEvents uses.
func FindEventsBanded(sim *dasf.Array2D, thresh float64, bandWidth int) []Region {
	if sim.Channels == 0 || sim.Samples == 0 {
		return nil
	}
	if bandWidth <= 0 || bandWidth > sim.Channels {
		bandWidth = sim.Channels
	}
	var all []Region
	for lo := 0; lo < sim.Channels; lo += bandWidth {
		hi := min(lo+bandWidth, sim.Channels)
		band := &dasf.Array2D{
			Channels: hi - lo,
			Samples:  sim.Samples,
			Data:     sim.Data[lo*sim.Samples : hi*sim.Samples],
		}
		for _, r := range FindEvents(band, thresh) {
			r.ChLo += lo
			r.ChHi += lo
			all = append(all, r)
		}
	}
	// Allow one band of slack when merging: FindEvents refines each band's
	// channel span, which can leave gaps between a wide event's per-band
	// detections.
	return mergeRegions(all, bandWidth)
}

// mergeRegions coalesces regions that overlap in time and whose channel
// spans are within chSlack of touching, repeating until a fixed point (an
// earthquake detected in every band merges into one wide region).
func mergeRegions(regions []Region, chSlack int) []Region {
	merged := true
	for merged {
		merged = false
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				a, b := regions[i], regions[j]
				timeOverlap := a.TLo < b.THi && b.TLo < a.THi
				chTouch := a.ChLo <= b.ChHi+chSlack && b.ChLo <= a.ChHi+chSlack
				if !timeOverlap || !chTouch {
					continue
				}
				regions[i] = Region{
					TLo:  min(a.TLo, b.TLo),
					THi:  max(a.THi, b.THi),
					ChLo: min(a.ChLo, b.ChLo),
					ChHi: max(a.ChHi, b.ChHi),
					Peak: math.Max(a.Peak, b.Peak),
				}
				regions = append(regions[:j], regions[j+1:]...)
				merged = true
				j--
			}
		}
	}
	return regions
}

// hotChannels returns the channel span whose mean similarity inside
// [tLo,tHi) exceeds the per-channel median, i.e. where the event lives.
func hotChannels(sim *dasf.Array2D, tLo, tHi int) (lo, hi int) {
	nch := sim.Channels
	means := make([]float64, nch)
	for c := 0; c < nch; c++ {
		var s float64
		row := sim.Row(c)
		for t := tLo; t < tHi; t++ {
			s += row[t]
		}
		means[c] = s / float64(tHi-tLo)
	}
	var mean float64
	for _, v := range means {
		mean += v
	}
	mean /= float64(nch)
	lo, hi = nch, 0
	for c, v := range means {
		if v > mean {
			if c < lo {
				lo = c
			}
			if c+1 > hi {
				hi = c + 1
			}
		}
	}
	if lo >= hi {
		return 0, nch
	}
	return lo, hi
}
