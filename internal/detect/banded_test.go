package detect

import (
	"testing"

	"dassa/internal/dasf"
)

// simWithBlocks builds a similarity map with a flat background and the
// given hot rectangles.
func simWithBlocks(nch, nt int, blocks []Region) *dasf.Array2D {
	sim := dasf.NewArray2D(nch, nt)
	for i := range sim.Data {
		sim.Data[i] = 0.25
	}
	for _, b := range blocks {
		for c := b.ChLo; c < b.ChHi; c++ {
			for t := b.TLo; t < b.THi; t++ {
				sim.Set(c, t, 0.95)
			}
		}
	}
	return sim
}

func TestFindEventsBandedLocalizedEvent(t *testing.T) {
	// A vehicle-like event on 4 of 64 channels: invisible to the global
	// column mean, obvious inside its band.
	blocks := []Region{{TLo: 100, THi: 130, ChLo: 40, ChHi: 44}}
	sim := simWithBlocks(64, 400, blocks)
	if got := FindEvents(sim, 3); len(got) != 0 {
		// (Not a hard requirement, but the premise of the banded variant.)
		t.Logf("global scan already found %d regions", len(got))
	}
	got := FindEventsBanded(sim, 2, 8)
	if len(got) != 1 {
		t.Fatalf("banded scan found %d regions, want 1: %+v", len(got), got)
	}
	r := got[0]
	if r.TLo > 102 || r.THi < 128 {
		t.Errorf("time range [%d,%d), want ≈[100,130)", r.TLo, r.THi)
	}
	if r.ChLo > 40 || r.ChHi < 44 || r.ChHi-r.ChLo > 16 {
		t.Errorf("channel range [%d,%d), want ≈[40,44)", r.ChLo, r.ChHi)
	}
}

func TestFindEventsBandedMergesWideEvent(t *testing.T) {
	// An earthquake-like event across all channels must merge into one
	// region, not one per band.
	blocks := []Region{{TLo: 200, THi: 240, ChLo: 0, ChHi: 64}}
	sim := simWithBlocks(64, 400, blocks)
	got := FindEventsBanded(sim, 2, 8)
	if len(got) != 1 {
		t.Fatalf("wide event split into %d regions", len(got))
	}
	if got[0].ChLo != 0 || got[0].ChHi != 64 {
		t.Errorf("merged channel span [%d,%d), want [0,64)", got[0].ChLo, got[0].ChHi)
	}
}

func TestFindEventsBandedSeparatesDistinctEvents(t *testing.T) {
	blocks := []Region{
		{TLo: 50, THi: 80, ChLo: 4, ChHi: 8},     // vehicle 1
		{TLo: 250, THi: 280, ChLo: 50, ChHi: 54}, // vehicle 2
	}
	sim := simWithBlocks(64, 400, blocks)
	got := FindEventsBanded(sim, 2, 8)
	if len(got) != 2 {
		t.Fatalf("found %d regions, want 2: %+v", len(got), got)
	}
}

func TestFindEventsBandedDegenerate(t *testing.T) {
	if got := FindEventsBanded(dasf.NewArray2D(0, 0), 2, 8); got != nil {
		t.Error("empty map should yield nil")
	}
	// bandWidth larger than the array falls back to a single band.
	sim := simWithBlocks(8, 100, []Region{{TLo: 40, THi: 60, ChLo: 0, ChHi: 8}})
	if got := FindEventsBanded(sim, 2, 1000); len(got) != 1 {
		t.Errorf("oversized band width found %d regions", len(got))
	}
	// Zero band width also falls back.
	if got := FindEventsBanded(sim, 2, 0); len(got) != 1 {
		t.Errorf("zero band width found %d regions", len(got))
	}
}

func TestMergeRegionsFixedPoint(t *testing.T) {
	// A chain of touching regions collapses into one.
	regions := []Region{
		{TLo: 0, THi: 10, ChLo: 0, ChHi: 8, Peak: 0.5},
		{TLo: 5, THi: 15, ChLo: 8, ChHi: 16, Peak: 0.7},
		{TLo: 9, THi: 20, ChLo: 16, ChHi: 24, Peak: 0.6},
	}
	got := mergeRegions(regions, 0)
	if len(got) != 1 {
		t.Fatalf("chain merged into %d regions", len(got))
	}
	r := got[0]
	if r.TLo != 0 || r.THi != 20 || r.ChLo != 0 || r.ChHi != 24 || r.Peak != 0.7 {
		t.Errorf("merged region %+v", r)
	}
	// Disjoint regions stay apart.
	regions = []Region{
		{TLo: 0, THi: 10, ChLo: 0, ChHi: 8},
		{TLo: 50, THi: 60, ChLo: 0, ChHi: 8},
	}
	if got := mergeRegions(regions, 0); len(got) != 2 {
		t.Errorf("disjoint regions merged to %d", len(got))
	}
}
