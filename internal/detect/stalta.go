package detect

import (
	"fmt"
	"math"

	"dassa/internal/arrayudf"
	"dassa/internal/daslib"
)

// STA/LTA (short-term average over long-term average) is the classical
// single-channel seismic trigger that the local-similarity method (Li et
// al. 2018, the paper's ref [18]) was designed to beat on large-N arrays:
// it fires on any energy burst, coherent or not, so it false-triggers on
// local noise that local similarity rejects. Implementing it gives the
// repository the comparison baseline for the detection case study.

// STALTAParams configures the trigger.
type STALTAParams struct {
	// STASamples and LTASamples are the short and long window lengths;
	// STA < LTA.
	STASamples int
	LTASamples int
	// Stride evaluates the ratio every Stride samples (0/1 = all).
	Stride int
}

// Validate checks the parameters.
func (p STALTAParams) Validate() error {
	if p.STASamples < 1 || p.LTASamples <= p.STASamples {
		return fmt.Errorf("detect: STA/LTA needs 1 ≤ STA < LTA, got %d/%d", p.STASamples, p.LTASamples)
	}
	return nil
}

// Spec returns the ArrayUDF spec: STA/LTA is single-channel, so no ghost
// zones are needed — which is also why it cannot use spatial coherence.
func (p STALTAParams) Spec() arrayudf.Spec {
	return arrayudf.Spec{TimeStride: p.Stride}
}

// UDF returns the trigger as a PointUDF: the ratio of mean squared
// amplitude in the trailing short window to the trailing long window.
// NaN-masked gaps count as silence, so a degraded span cannot trigger.
//
// UDF is a thin shim over UDFScratch with a nil (allocate-fresh) arena.
func (p STALTAParams) UDF() arrayudf.PointUDF {
	udf := p.UDFScratch()
	return func(s *arrayudf.Stencil) float64 { return udf(s, nil) }
}

// UDFScratch is UDF with the two windows borrowed from a per-thread
// scratch arena.
func (p STALTAParams) UDFScratch() func(s *arrayudf.Stencil, scr *daslib.Scratch) float64 {
	return func(s *arrayudf.Stencil, scr *daslib.Scratch) float64 {
		sta := meanSquareWindow(s, scr, p.STASamples)
		lta := meanSquareWindow(s, scr, p.LTASamples)
		if lta <= 0 {
			return 0
		}
		return sta / lta
	}
}

// meanSquareWindow computes the mean squared amplitude of the trailing
// n-sample window, skipping NaN gap markers — numerically identical to
// zeroing them (adding 0.0 is exact) without materializing a cleaned copy.
func meanSquareWindow(s *arrayudf.Stencil, scr *daslib.Scratch, n int) float64 {
	w := scr.Float(n)
	s.WindowInto(w, -(n - 1), 0, 0)
	var sum float64
	for _, v := range w {
		if !math.IsNaN(v) {
			sum += v * v
		}
	}
	scr.ReleaseFloat(w)
	return sum / float64(n)
}

func meanSquare(w []float64) float64 {
	var s float64
	for _, v := range w {
		s += v * v
	}
	return s / float64(len(w))
}

// Ratio computes the STA/LTA series for one channel directly (serial
// helper for tests and small jobs): out[i] is the ratio at sample
// i·stride.
func (p STALTAParams) Ratio(x []float64) []float64 {
	stride := p.Stride
	if stride <= 0 {
		stride = 1
	}
	n := (len(x) + stride - 1) / stride
	out := make([]float64, n)
	// Prefix sums of squares make each evaluation O(1).
	prefix := make([]float64, len(x)+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v*v
	}
	// window matches the Stencil's clamping semantics: indices outside the
	// series replicate the nearest edge sample.
	window := func(lo, hi int) float64 {
		if len(x) == 0 {
			return 0
		}
		count := float64(hi - lo + 1)
		var s float64
		if lo < 0 {
			s += float64(-lo) * x[0] * x[0]
			lo = 0
		}
		if hi >= len(x) {
			s += float64(hi-len(x)+1) * x[len(x)-1] * x[len(x)-1]
			hi = len(x) - 1
		}
		if hi >= lo {
			s += prefix[hi+1] - prefix[lo]
		}
		return s / count
	}
	for i := 0; i < n; i++ {
		t := i * stride
		sta := window(t-p.STASamples+1, t)
		lta := window(t-p.LTASamples+1, t)
		if lta <= 0 {
			out[i] = 0
			continue
		}
		out[i] = sta / lta
	}
	return out
}

// TriggerRate returns the fraction of evaluated points whose ratio exceeds
// thresh — the false-trigger metric the comparison bench reports.
func TriggerRate(ratios []float64, thresh float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	hits := 0
	for _, v := range ratios {
		if v > thresh {
			hits++
		}
	}
	return float64(hits) / float64(len(ratios))
}

// MaxRatio returns the series maximum (detection strength at the event).
func MaxRatio(ratios []float64) float64 {
	best := math.Inf(-1)
	for _, v := range ratios {
		if v > best {
			best = v
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}
