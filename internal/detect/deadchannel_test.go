package detect

import (
	"math"
	"testing"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/dasgen"
)

// TestPipelinesSurviveDeadChannels: real arrays always contain all-zero
// channels; neither analysis may emit NaN or Inf for them or their
// neighbors.
func TestPipelinesSurviveDeadChannels(t *testing.T) {
	cfg := dasgen.Config{
		Channels: 12, SampleRate: 50, FileSeconds: 10, NumFiles: 1,
		Seed: 19, DeadChannels: []int{0, 5, 6},
	}
	data, err := dasgen.GenerateFileArray(cfg, dasgen.Fig10Events(cfg), 0)
	if err != nil {
		t.Fatal(err)
	}
	blk := arrayudf.Block{Data: data, ChLo: 0, ChHi: cfg.Channels}

	// Local similarity over every channel including dead ones.
	simi := LocalSimiParams{M: 10, K: 1, L: 3}
	udf := simi.UDF()
	for ch := 0; ch < cfg.Channels; ch++ {
		for _, tt := range []int{0, 100, 250, 499} {
			got := udf(blk.Stencil(ch, tt))
			if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 || got > 1+1e-9 {
				t.Fatalf("local similarity (%d,%d) = %g", ch, tt, got)
			}
		}
	}

	// Interferometry with a LIVE master: dead channels correlate to ~0.
	p := InterferometryParams{
		Rate: cfg.SampleRate, FilterOrder: 3, CutoffHz: 8,
		ResampleP: 1, ResampleQ: 2, MasterChannel: 3, MaxLag: 20,
	}
	master, err := p.Preprocess(data.Row(3))
	if err != nil {
		t.Fatal(err)
	}
	rowLen := p.RowLen(data.Samples)
	for ch := 0; ch < cfg.Channels; ch++ {
		series, err := p.Preprocess(data.Row(ch))
		if err != nil {
			t.Fatalf("channel %d preprocess: %v", ch, err)
		}
		corr := TrimLags(xcorrFinite(t, series, master), len(series), len(master), rowLen)
		for i, v := range corr {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("channel %d lag %d is %g", ch, i, v)
			}
		}
	}

	// Interferometry with a DEAD master must error or stay finite, never
	// NaN — the ScalarUDF path returns 0 for zero-energy inputs.
	pd := p
	pd.MasterChannel = 5
	deadMaster, err := pd.Preprocess(data.Row(5))
	if err != nil {
		t.Fatal(err)
	}
	m := &Master{Series: deadMaster}
	sUDF := pd.ScalarUDF(&Master{Series: deadMaster, Spectrum: nil})
	_ = m
	got := sUDF(blk.Stencil(2, 0))
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("dead-master scalar similarity = %g", got)
	}
}

// xcorrFinite runs the workload's correlation and fails the test on
// non-finite energy normalization instead of silently passing NaNs on.
func xcorrFinite(t *testing.T, a, b []float64) []float64 {
	t.Helper()
	out := xcorrRef(a, b)
	for _, v := range out {
		if math.IsNaN(v) {
			t.Fatal("xcorr produced NaN")
		}
	}
	return out
}

// TestFindEventsOnDeadArray: an all-dead similarity map yields no events
// and no panics.
func TestFindEventsOnDeadArray(t *testing.T) {
	sim := dasf.NewArray2D(8, 100) // all zeros
	if got := FindEvents(sim, 1.5); len(got) != 0 {
		t.Errorf("dead map produced %d events", len(got))
	}
	if got := FindEventsBanded(sim, 1.5, 4); len(got) != 0 {
		t.Errorf("banded dead map produced %d events", len(got))
	}
}
