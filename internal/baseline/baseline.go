// Package baseline reimplements the geophysicists' MATLAB analysis pipeline
// the way it actually executes, to serve as the comparison system of the
// paper's Figure 9. The pipeline computes the same interferometry result as
// DASSA but with MATLAB's execution structure:
//
//   - the per-channel loop is interpreted M-code and therefore serial — only
//     the vectorized kernels inside an iteration can use MATLAB's implicit
//     multithreading, and for one channel's worth of samples that threading
//     gains almost nothing (Amdahl at kernel granularity);
//   - every toolbox call pays an interpreter dispatch overhead.
//
// DASSA instead parallelizes the whole pipeline across channels (HAEE), so
// its speedup scales with cores. The CallOverhead constant is the only
// simulated quantity; it is configurable, defaults to a conservative 20µs
// per toolbox call, and can be set to zero to measure pure structure.
package baseline

import (
	"fmt"
	"math"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/daslib"
	"dassa/internal/detect"
	"dassa/internal/omp"
)

// Pipeline is a MATLAB-style interferometry run.
type Pipeline struct {
	Params detect.InterferometryParams
	// Threads models maxNumCompThreads: the parallel width available to
	// vectorized kernels. The channel loop itself remains serial.
	Threads int
	// CallOverhead is the interpreter dispatch cost charged per toolbox
	// call (detrend, butter, filtfilt, resample, fft, xcorr).
	CallOverhead time.Duration
}

// Stats reports where the time went.
type Stats struct {
	Compute      time.Duration
	KernelCalls  int64
	OverheadTime time.Duration
}

// New returns a pipeline with the default MATLAB-like settings.
func New(params detect.InterferometryParams, threads int) Pipeline {
	return Pipeline{Params: params, Threads: threads, CallOverhead: 20 * time.Microsecond}
}

// Run executes the pipeline over data (channels × time) and returns the
// per-channel noise correlations against the master channel — the same
// output DASSA's HAEE produces for the same parameters.
func (pl Pipeline) Run(data *dasf.Array2D) (*dasf.Array2D, Stats, error) {
	if err := pl.Params.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if pl.Params.MasterChannel >= data.Channels {
		return nil, Stats{}, fmt.Errorf("baseline: master channel %d outside array (%d channels)",
			pl.Params.MasterChannel, data.Channels)
	}
	var st Stats
	start := time.Now()
	charge := func(calls int64) {
		st.KernelCalls += calls
		st.OverheadTime += time.Duration(calls) * pl.CallOverhead
		// The dispatch overhead is real time in MATLAB; spin it here so the
		// measured wall clock reflects it. time.Sleep would under-run for
		// sub-millisecond amounts, so busy-wait the (tiny) interval.
		if pl.CallOverhead > 0 {
			deadline := time.Now().Add(time.Duration(calls) * pl.CallOverhead)
			for time.Now().Before(deadline) {
			}
		}
	}

	p := pl.Params
	// Master channel: preprocessed once (detrend, butter, filtfilt,
	// resample, fft → 5 toolbox calls).
	master, err := p.Preprocess(data.Row(p.MasterChannel))
	if err != nil {
		return nil, st, err
	}
	charge(5)

	rowLen := p.RowLen(data.Samples)
	out := dasf.NewArray2D(data.Channels, rowLen)
	// team parallelizes *inside* one channel's correlation kernel only —
	// MATLAB's implicit threading. The channel loop is the interpreted part
	// and stays serial.
	team := omp.NewTeam(pl.Threads)
	for ch := 0; ch < data.Channels; ch++ {
		series, err := p.Preprocess(data.Row(ch))
		if err != nil {
			return nil, st, err
		}
		charge(4) // detrend, butter+filtfilt, resample

		corr := xcorrKernel(team, series, master)
		charge(2) // fft-based xcorr ≈ 2 vectorized calls
		copy(out.Row(ch), detect.TrimLags(corr, len(series), len(master), rowLen))
	}
	st.Compute = time.Since(start)
	return out, st, nil
}

// xcorrKernel is the one kernel MATLAB's implicit threading can help with:
// the normalized cross-correlation. For a single channel the FFTs are small
// and the threaded section is only the elementwise multiply, so the gain is
// marginal — which is the point.
func xcorrKernel(team *omp.Team, a, b []float64) []float64 {
	n := len(a) + len(b) - 1
	m := daslib.NextPow2(n)
	fa := daslib.FFTReal(padded(a, m))
	rb := make([]float64, m)
	for i, v := range b {
		rb[len(b)-1-i] = v
	}
	fb := daslib.FFTReal(rb)
	// Elementwise product — the vectorized, implicitly-threaded part.
	team.For(m, func(i int) { fa[i] *= fb[i] })
	prod := daslib.IFFTReal(fa)
	out := prod[:n]
	var ea, eb float64
	for _, v := range a {
		ea += v * v
	}
	for _, v := range b {
		eb += v * v
	}
	if ea > 0 && eb > 0 {
		norm := 1 / math.Sqrt(ea*eb)
		for i := range out {
			out[i] *= norm
		}
	}
	return out
}

func padded(x []float64, m int) []float64 {
	out := make([]float64, m)
	copy(out, x)
	return out
}
