package baseline

import (
	"math"
	"testing"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/detect"
)

func testData(t *testing.T, channels int) (*dasf.Array2D, detect.InterferometryParams) {
	t.Helper()
	cfg := dasgen.Config{
		Channels: channels, SampleRate: 50, FileSeconds: 8, NumFiles: 1,
		Seed: 13, DType: dasf.Float64,
	}
	a, err := dasgen.GenerateFileArray(cfg, dasgen.Fig10Events(cfg), 0)
	if err != nil {
		t.Fatal(err)
	}
	params := detect.InterferometryParams{
		Rate: cfg.SampleRate, FilterOrder: 3, CutoffHz: 8,
		ResampleP: 1, ResampleQ: 2, MasterChannel: 0, MaxLag: 30,
	}
	return a, params
}

func TestPipelineValidation(t *testing.T) {
	a, params := testData(t, 4)
	params.MasterChannel = 99
	pl := New(params, 2)
	if _, _, err := pl.Run(a); err == nil {
		t.Error("out-of-range master channel should fail")
	}
	bad := params
	bad.Rate = 0
	if _, _, err := New(bad, 2).Run(a); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestPipelineOutputShape(t *testing.T) {
	a, params := testData(t, 6)
	pl := New(params, 2)
	pl.CallOverhead = 0
	out, st, err := pl.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if out.Channels != 6 || out.Samples != params.RowLen(a.Samples) {
		t.Fatalf("output shape %d×%d", out.Channels, out.Samples)
	}
	if st.Compute <= 0 {
		t.Error("compute time not recorded")
	}
	if st.KernelCalls == 0 {
		t.Error("kernel calls not counted")
	}
	// Master self-correlation peak at zero lag ≈ 1.
	zero := out.Samples / 2
	if d := math.Abs(out.At(0, zero) - 1); d > 1e-6 {
		t.Errorf("self correlation = %g", out.At(0, zero))
	}
}

func TestBaselineMatchesDASSAResult(t *testing.T) {
	// Same math, different execution structure: results must agree with the
	// detect workload's UDF output.
	a, params := testData(t, 5)
	pl := New(params, 1)
	pl.CallOverhead = 0
	got, _, err := pl.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	// Direct computation via detect's pieces.
	master, err := params.Preprocess(a.Row(params.MasterChannel))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < a.Channels; c++ {
		series, err := params.Preprocess(a.Row(c))
		if err != nil {
			t.Fatal(err)
		}
		corr := detect.TrimLags(xcorr(series, master), len(series), len(master), got.Samples)
		for i := range corr {
			if d := math.Abs(got.At(c, i) - corr[i]); d > 1e-9 {
				t.Fatalf("channel %d lag %d differs by %g", c, i, d)
			}
		}
	}
}

func TestOverheadCharged(t *testing.T) {
	a, params := testData(t, 4)
	pl := New(params, 1)
	pl.CallOverhead = 200 * time.Microsecond
	_, st, err := pl.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	wantMin := time.Duration(st.KernelCalls) * pl.CallOverhead
	if st.Compute < wantMin {
		t.Errorf("compute %v below charged overhead %v", st.Compute, wantMin)
	}
	if st.OverheadTime != wantMin {
		t.Errorf("overhead accounting %v, want %v", st.OverheadTime, wantMin)
	}
}

// xcorr is a local copy of the normalized FFT cross-correlation used for
// verification (identical formula to daslib.XCorrNormalized).
func xcorr(a, b []float64) []float64 {
	n := len(a) + len(b) - 1
	out := make([]float64, n)
	var ea, eb float64
	for _, v := range a {
		ea += v * v
	}
	for _, v := range b {
		eb += v * v
	}
	for i := range out {
		l := i - (len(b) - 1)
		var s float64
		for j := 0; j < len(a); j++ {
			k := j - l
			if k >= 0 && k < len(b) {
				s += a[j] * b[k]
			}
		}
		out[i] = s / math.Sqrt(ea*eb)
	}
	return out
}
