package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/dass"
	"dassa/internal/obs"
	"dassa/internal/obs/trace"
	"dassa/internal/pfs"
	"dassa/internal/wire"
)

// Config sizes a Coordinator. Zero values choose sane defaults.
type Config struct {
	// Workers are the dassw addresses (host:port) to dial. At least one is
	// required.
	Workers []string
	// ShardsPerWorker sets the default shard count as a multiple of the
	// healthy worker count (default 2 — enough to overlap I/O and compute
	// without fragmenting small windows).
	ShardsPerWorker int
	// MaxAttempts bounds how many workers a shard is offered to before the
	// coordinator gives up on it (default 3).
	MaxAttempts int
	// HeartbeatEvery is the liveness beacon period workers are expected to
	// honor (default 1s); DeadAfter is the silence threshold after which a
	// connection is declared dead (default 3 × HeartbeatEvery).
	HeartbeatEvery time.Duration
	DeadAfter      time.Duration
	// DialTimeout bounds each connection attempt (default 5s);
	// RedialBackoff is the pause between attempts to a dead worker
	// (default 1s).
	DialTimeout   time.Duration
	RedialBackoff time.Duration
	// ShardTimeout, when positive, bounds one dispatch attempt: a shard
	// whose reply does not arrive in time is re-dispatched (its eventual
	// stale reply is discarded). Zero trusts the request deadline and the
	// link's heartbeat-based death detection — the right default, since a
	// healthy link with a slow shard is progress, not failure. Set it in
	// chaos configurations where frames can vanish without killing the
	// connection.
	ShardTimeout time.Duration
	// FailPolicy decides what a shard that exhausts MaxAttempts does to
	// the run: dass.FailAbort (default) kills it, dass.FailDegrade
	// NaN-masks the shard and records it in the QualityReport — exactly
	// like a failed local rank.
	FailPolicy dass.FailPolicy
	// Log receives structured coordinator events (default discard).
	Log *slog.Logger
	// Registry, when non-nil, receives cluster metrics (worker gauge,
	// shard outcome counters, per-worker latency, wire bytes).
	Registry *obs.Registry
	// Faults, when its Injector is non-nil, injects wire-layer failures on
	// every coordinator connection — for chaos tests.
	Faults wire.FaultConfig
}

func (c Config) withDefaults() Config {
	if c.ShardsPerWorker <= 0 {
		c.ShardsPerWorker = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * c.HeartbeatEvery
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = time.Second
	}
	c.Log = obs.OrNop(c.Log)
	return c
}

// Coordinator partitions requests into channel shards, dispatches them to
// workers, and merges partial results through the same quality accounting
// the in-process engine uses. It keeps one managed connection per
// configured worker, redialing dead ones in the background.
type Coordinator struct {
	cfg    Config
	links  []*workerLink
	nextID atomic.Uint64
	m      *metrics

	closed   chan struct{}
	closing  atomic.Bool
	managers sync.WaitGroup

	// rr cycles shard placement across healthy links.
	rr atomic.Uint64

	mu      sync.Mutex
	pending map[pendKey]*pendEntry
}

type pendKey struct {
	id    uint64
	shard int
}

type pendEntry struct {
	ch   chan shardReply
	link *workerLink
}

type shardReply struct {
	res       wire.ShardResult
	data      []float64
	worker    string
	err       error
	cancelled bool
}

// NewCoordinator starts managed connections to every configured worker and
// returns immediately; dialing happens in the background. Close releases
// everything.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses configured")
	}
	co := &Coordinator{
		cfg:     cfg,
		closed:  make(chan struct{}),
		pending: map[pendKey]*pendEntry{},
	}
	for _, addr := range cfg.Workers {
		co.links = append(co.links, &workerLink{addr: addr, co: co})
	}
	co.m = newMetrics(cfg.Registry, co)
	for _, l := range co.links {
		co.managers.Add(1)
		go func(l *workerLink) {
			defer co.managers.Done()
			l.manage()
		}(l)
	}
	return co, nil
}

// Close severs every worker connection and stops the redial loops.
func (co *Coordinator) Close() {
	if !co.closing.CompareAndSwap(false, true) {
		return
	}
	close(co.closed)
	for _, l := range co.links {
		l.abort()
	}
	co.managers.Wait()
}

// healthyCount returns how many workers currently have a live connection.
func (co *Coordinator) healthyCount() int {
	n := 0
	for _, l := range co.links {
		if l.isAlive() {
			n++
		}
	}
	return n
}

// Healthy reports whether at least one worker is alive.
func (co *Coordinator) Healthy() bool { return co.healthyCount() > 0 }

// HealthyWorkers returns how many workers currently have a live
// connection (readiness probes report it).
func (co *Coordinator) HealthyWorkers() int { return co.healthyCount() }

// Workers returns the configured worker addresses.
func (co *Coordinator) Workers() []string { return co.cfg.Workers }

// pickLink returns a healthy link, preferring one different from avoid.
// Nil means no worker is alive.
func (co *Coordinator) pickLink(avoid *workerLink) *workerLink {
	n := len(co.links)
	start := int(co.rr.Add(1)) % n
	var fallback *workerLink
	for i := 0; i < n; i++ {
		l := co.links[(start+i)%n]
		if !l.isAlive() {
			continue
		}
		if l != avoid {
			return l
		}
		fallback = l
	}
	return fallback
}

// waitHealthy blocks until a worker is alive, the grace period ends, or
// ctx is cancelled.
func (co *Coordinator) waitHealthy(ctx context.Context, grace time.Duration) bool {
	deadline := time.Now().Add(grace)
	for {
		if co.healthyCount() > 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-ctx.Done():
			return false
		case <-co.closed:
			return false
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// register adds a pending shard wait; the returned channel receives exactly
// one reply (buffered, so routing never blocks).
func (co *Coordinator) register(k pendKey, l *workerLink) chan shardReply {
	ch := make(chan shardReply, 1)
	co.mu.Lock()
	co.pending[k] = &pendEntry{ch: ch, link: l}
	co.mu.Unlock()
	return ch
}

func (co *Coordinator) unregister(k pendKey) {
	co.mu.Lock()
	delete(co.pending, k)
	co.mu.Unlock()
}

// route delivers a worker's reply to the waiting shard, if any.
func (co *Coordinator) route(k pendKey, r shardReply) {
	co.mu.Lock()
	e := co.pending[k]
	delete(co.pending, k)
	co.mu.Unlock()
	if e != nil {
		e.ch <- r
	} else {
		co.cfg.Log.Debug("cluster: stale reply dropped", "id", k.id, "shard", k.shard, "err", r.err)
	}
}

// failLink fails every pending shard assigned to l — the link died.
func (co *Coordinator) failLink(l *workerLink, err error) {
	co.mu.Lock()
	var keys []pendKey
	var chans []chan shardReply
	for k, e := range co.pending {
		if e.link == l {
			keys = append(keys, k)
			chans = append(chans, e.ch)
		}
	}
	for _, k := range keys {
		delete(co.pending, k)
	}
	co.mu.Unlock()
	for _, ch := range chans {
		ch <- shardReply{err: err, worker: l.addr}
	}
}

// workerLink is one managed worker connection: dial, handshake, read loop,
// redial on death.
type workerLink struct {
	addr string
	co   *Coordinator

	mu    sync.Mutex
	conn  *wire.Conn
	alive bool
	name  string // from the Welcome handshake
}

func (l *workerLink) isAlive() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.alive
}

// current returns the live conn, or nil.
func (l *workerLink) current() *wire.Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.alive {
		return nil
	}
	return l.conn
}

func (l *workerLink) abort() {
	l.mu.Lock()
	c := l.conn
	l.alive = false
	l.mu.Unlock()
	if c != nil {
		c.Abort()
	}
}

// manage dials, serves, and redials the worker until the coordinator
// closes. Liveness rides on read deadlines: the worker heartbeats every
// HeartbeatEvery, so a DeadAfter silence means the worker (or the path to
// it) is gone.
func (l *workerLink) manage() {
	cfg := l.co.cfg
	for {
		select {
		case <-l.co.closed:
			return
		default:
		}
		conn, err := l.dial()
		if err != nil {
			cfg.Log.Debug("cluster: dial failed", "worker", l.addr, "err", err)
			select {
			case <-l.co.closed:
				return
			case <-time.After(cfg.RedialBackoff):
			}
			continue
		}
		l.serve(conn)
		l.co.failLink(l, fmt.Errorf("cluster: worker %s connection lost", l.addr))
		select {
		case <-l.co.closed:
			return
		case <-time.After(cfg.RedialBackoff):
		}
	}
}

// dial connects and completes the Hello/Welcome handshake.
func (l *workerLink) dial() (*wire.Conn, error) {
	cfg := l.co.cfg
	nc, err := net.DialTimeout("tcp", l.addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn := wire.NewConn(nc, wire.DefaultSendQueue)
	if cfg.Faults.Injector != nil {
		fc := cfg.Faults
		if fc.Label == "" {
			fc.Label = l.addr
		}
		conn = conn.SetFaults(fc)
	}
	fail := func(err error) (*wire.Conn, error) {
		conn.Abort()
		return nil, err
	}
	if err := conn.SendEnvelope(wire.TypeHello, wire.Hello{From: "coordinator", Version: wire.Version}); err != nil {
		return fail(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(cfg.DialTimeout))
	f, err := conn.Recv()
	if err != nil {
		return fail(fmt.Errorf("cluster: handshake read: %w", err))
	}
	var w wire.Welcome
	if f.Type != wire.TypeWelcome || wire.DecodeInto(f, &w) != nil {
		return fail(fmt.Errorf("cluster: %s: bad welcome", l.addr))
	}
	if err := wire.CheckVersion(w.Version); err != nil {
		return fail(fmt.Errorf("cluster: %s: %w", l.addr, err))
	}
	l.mu.Lock()
	l.conn, l.alive, l.name = conn, true, w.Worker
	l.mu.Unlock()
	cfg.Log.Info("cluster: worker connected", "worker", l.addr, "name", w.Worker)
	return conn, nil
}

// serve routes incoming frames until the connection dies.
func (l *workerLink) serve(conn *wire.Conn) {
	cfg := l.co.cfg
	defer func() {
		l.mu.Lock()
		l.alive = false
		l.mu.Unlock()
		conn.Abort()
		cfg.Log.Warn("cluster: worker disconnected", "worker", l.addr)
	}()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(cfg.DeadAfter))
		f, err := conn.Recv()
		if err != nil {
			return
		}
		switch f.Type {
		case wire.TypeHeartbeat:
			// The read deadline reset above is the liveness bookkeeping.
		case wire.TypeShardResult:
			res, data, err := wire.DecodeResult(f)
			if err != nil {
				cfg.Log.Warn("cluster: undecodable result", "worker", l.addr, "err", err)
				continue
			}
			l.co.route(pendKey{res.ID, res.Shard}, shardReply{res: res, data: data, worker: l.addr})
		case wire.TypeShardError:
			var se wire.ShardError
			if err := wire.DecodeInto(f, &se); err != nil {
				continue
			}
			l.co.route(pendKey{se.ID, se.Shard}, shardReply{
				err:       fmt.Errorf("cluster: worker %s: %s", l.addr, se.Msg),
				cancelled: se.Cancelled,
				worker:    l.addr,
			})
		case wire.TypeGoodbye:
			return
		default:
			cfg.Log.Warn("cluster: unexpected frame", "worker", l.addr, "type", f.Type.String())
		}
	}
}

// shard is one channel slice of a request, in window-relative coordinates.
type shard struct {
	idx    int
	lo, hi int // window-relative channel range
}

// outcome is the terminal fate of one shard.
type outcome struct {
	sh           shard
	res          wire.ShardResult
	data         []float64
	worker       string
	err          error
	cancelled    bool
	redispatches int
}

// Run executes a distributed request: partition into shards, dispatch,
// gather, merge. Cancellation of ctx poisons remote shards via cancel
// frames; worker death re-dispatches or (under FailDegrade) masks. When
// ctx carries a request trace, the whole run — dispatches, redispatches,
// degrade decisions, and the workers' shipped-back fragments — lands in
// it as one cross-process span tree.
func (co *Coordinator) Run(ctx context.Context, req Request) (*Result, error) {
	ctx, sp := trace.Start(ctx, "cluster.run")
	if sp != nil {
		sp.SetAttr("op", string(req.Op))
	}
	res, err := co.run(ctx, req)
	if sp != nil && res != nil {
		sp.SetAttrInt("shards", int64(res.Shards))
		sp.SetAttrInt("workers", int64(res.Workers))
		sp.SetAttrInt("redispatched", int64(res.Redispatched))
		sp.SetAttrInt("degraded_shards", int64(res.DegradedShards))
	}
	sp.EndErr(err)
	return res, err
}

func (co *Coordinator) run(ctx context.Context, req Request) (*Result, error) {
	start := time.Now()
	if req.View == nil {
		return nil, fmt.Errorf("cluster: request has no view")
	}
	switch req.Op {
	case OpRead, OpLocalSimi, OpSTALTA:
	default:
		return nil, fmt.Errorf("cluster: unknown op %q", req.Op)
	}
	files, err := filesOf(req.View)
	if err != nil {
		return nil, err
	}
	if !co.waitHealthy(ctx, co.cfg.DialTimeout) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, ErrNoWorkers
	}

	winChLo, winChHi, winT0, winT1 := req.View.Window()
	width := winChHi - winChLo
	nshards := req.Shards
	if nshards <= 0 {
		nshards = co.cfg.ShardsPerWorker * max(co.healthyCount(), 1)
	}
	nshards = min(max(nshards, 1), width)

	id := co.nextID.Add(1)
	halo := req.halo()
	wantSamples := req.outSamples(winT1 - winT0)

	outcomes := make([]outcome, nshards)
	var wg sync.WaitGroup
	for i := 0; i < nshards; i++ {
		lo, hi := dass.Partition(width, nshards, i)
		sh := shard{idx: i, lo: lo, hi: hi}
		wg.Add(1)
		go func() {
			defer wg.Done()
			outcomes[sh.idx] = co.runShard(ctx, id, req, files, sh, winChLo, winT0, winT1, halo)
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Tally and merge.
	res := &Result{Shards: nshards}
	var tr pfs.Trace
	var gaps []dass.Gap
	out := dasf.NewArray2D(width, wantSamples)
	workers := map[string]bool{}
	ok := 0
	for _, oc := range outcomes {
		res.Redispatched += oc.redispatches
		if oc.err == nil && oc.res.Samples != wantSamples {
			oc.err = fmt.Errorf("cluster: shard %d returned %d samples, want %d",
				oc.sh.idx, oc.res.Samples, wantSamples)
		}
		if oc.err != nil {
			if oc.cancelled && ctx.Err() == nil {
				// A worker reported cancellation we didn't ask for — its
				// deadline fired. Treat as a lost shard.
				co.m.outcome("cancelled")
			}
			if co.cfg.FailPolicy == dass.FailAbort {
				co.m.outcome("failed")
				return nil, fmt.Errorf("cluster: shard %d/%d lost after %d attempts: %w",
					oc.sh.idx, nshards, co.cfg.MaxAttempts, oc.err)
			}
			// Degrade: NaN-mask the shard and account the loss exactly
			// like a failed local rank. The decision is itself a span, so
			// the trace shows which shard was masked and why.
			co.m.outcome("degraded")
			_, gsp := trace.Start(ctx, "cluster.degrade")
			if gsp != nil {
				gsp.SetAttrInt("shard", int64(oc.sh.idx))
				gsp.SetAttr("error", oc.err.Error())
				gsp.SetStatus("degraded")
			}
			gsp.End()
			res.DegradedShards++
			nan := math.NaN()
			for c := oc.sh.lo; c < oc.sh.hi; c++ {
				row := out.Row(c)
				for t := range row {
					row[t] = nan
				}
			}
			shGaps := dass.ShardGaps(req.View, oc.sh.lo, oc.sh.hi)
			for _, g := range shGaps {
				tr.MaskedSamples += g.Samples()
			}
			gaps = append(gaps, shGaps...)
			continue
		}
		co.m.outcome("done")
		ok++
		workers[oc.worker] = true
		for c := 0; c < oc.res.Channels; c++ {
			copy(out.Row(oc.sh.lo+c), oc.data[c*oc.res.Samples:(c+1)*oc.res.Samples])
		}
		t := oc.res.Trace
		tr.Opens += t.Opens
		tr.Reads += t.Reads
		tr.BytesRead += t.BytesRead
		tr.Retries += t.Retries
		tr.Faults += t.Faults
		tr.SlowReads += t.SlowReads
		tr.MaskedSamples += t.Masked
		// Worker gaps arrive in absolute channels; the quality report
		// wants window-relative.
		for _, g := range oc.res.Gaps {
			lo := max(g.ChLo-winChLo, 0)
			hi := min(g.ChHi-winChLo, width)
			if lo >= hi {
				continue
			}
			gaps = append(gaps, dass.Gap{
				Member: g.Member, File: g.File,
				ChLo: lo, ChHi: hi, TLo: g.TLo, THi: g.THi,
			})
		}
	}
	if ok == 0 {
		return nil, fmt.Errorf("%w: %d/%d shards failed", ErrAllShardsLost, nshards, nshards)
	}
	tr.Processes = len(workers)
	res.Data = out
	res.Workers = len(workers)
	res.Trace = tr
	res.Quality = dass.BuildQuality(req.View, gaps, tr)
	res.Wall = time.Since(start)
	return res, nil
}

// runShard drives one shard to a terminal outcome: dispatch, wait, and on
// worker failure re-dispatch to a healthy peer up to MaxAttempts times.
func (co *Coordinator) runShard(ctx context.Context, id uint64, req Request, files []wire.FileSpec, sh shard, winChLo, winT0, winT1, halo int) outcome {
	oc := outcome{sh: sh}
	var last *workerLink
	for attempt := 0; attempt < co.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			oc.err, oc.cancelled = err, true
			return oc
		}
		l := co.pickLink(last)
		if l == nil {
			if !co.waitHealthy(ctx, co.cfg.RedialBackoff+co.cfg.DialTimeout) {
				oc.err = ErrNoWorkers
				if ctx.Err() != nil {
					oc.err, oc.cancelled = ctx.Err(), true
				}
				return oc
			}
			l = co.pickLink(last)
			if l == nil {
				oc.err = ErrNoWorkers
				return oc
			}
		}
		if attempt > 0 {
			oc.redispatches++
			co.m.outcome("retried")
			co.cfg.Log.Info("cluster: re-dispatching shard",
				"id", id, "shard", sh.idx, "attempt", attempt+1, "worker", l.addr,
				"trace_id", trace.IDFrom(ctx))
		}
		last = l
		reply, sent := co.attemptShard(ctx, id, req, files, sh, winChLo, winT0, winT1, halo, attempt, l)
		if !sent {
			continue // link raced to death; try another
		}
		if reply.err == nil {
			// Clear any earlier attempt's failure — the shard made it.
			oc.res, oc.data, oc.worker, oc.err = reply.res, reply.data, reply.worker, nil
			return oc
		}
		if reply.cancelled && ctx.Err() != nil {
			oc.err, oc.cancelled = ctx.Err(), true
			return oc
		}
		co.cfg.Log.Debug("cluster: shard attempt failed",
			"id", id, "shard", sh.idx, "attempt", attempt, "err", reply.err)
		oc.err = reply.err
	}
	return oc
}

// attemptShard runs one dispatch attempt under its own trace span: the
// span carries worker/shard/attempt, a redispatch marker on attempts
// after the first, and — on success — the worker's shipped-back span
// fragment grafted under it.
func (co *Coordinator) attemptShard(ctx context.Context, id uint64, req Request, files []wire.FileSpec, sh shard, winChLo, winT0, winT1, halo, attempt int, l *workerLink) (reply shardReply, sent bool) {
	dctx, dsp := trace.Start(ctx, "cluster.dispatch")
	defer func() {
		if !sent {
			dsp.SetStatus("error")
			dsp.SetAttr("error", "link died before send")
		}
		dsp.EndErr(reply.err)
	}()
	if dsp != nil {
		dsp.SetAttrInt("shard", int64(sh.idx))
		dsp.SetAttrInt("attempt", int64(attempt+1))
		dsp.SetAttr("worker", l.addr)
		if attempt > 0 {
			dsp.SetAttr("redispatch", "true")
		}
	}
	reply, sent = co.dispatch(dctx, id, req, files, sh, winChLo, winT0, winT1, halo, l)
	if sent && reply.err == nil {
		trace.Merge(dctx, fromWireSpans(reply.res.Spans))
	}
	return reply, sent
}

// dispatch sends one shard request on l and waits for its reply, the
// context, or the link's death. sent=false means the frame never left.
func (co *Coordinator) dispatch(ctx context.Context, id uint64, req Request, files []wire.FileSpec, sh shard, winChLo, winT0, winT1, halo int, l *workerLink) (shardReply, bool) {
	conn := l.current()
	if conn == nil {
		return shardReply{}, false
	}
	wreq := wire.ShardRequest{
		ID: id, Shard: sh.idx, Op: string(req.Op), Files: files,
		ChLo: winChLo + sh.lo, ChHi: winChLo + sh.hi, Halo: halo,
		T0: winT0, T1: winT1, Rate: req.Rate,
		M: req.LocalSimi.M, K: req.LocalSimi.K, L: req.LocalSimi.L,
		STA: req.STALTA.STASamples, LTA: req.STALTA.LTASamples,
	}
	switch req.Op {
	case OpLocalSimi:
		wreq.Stride = req.LocalSimi.Stride
	case OpSTALTA:
		wreq.Stride = req.STALTA.Stride
	}
	if dl, ok := ctx.Deadline(); ok {
		wreq.DeadlineUnixNano = dl.UnixNano()
	}
	// Propagate the request trace: the worker parents its fragment under
	// this attempt's dispatch span (the context's current span).
	wreq.TraceID = string(trace.IDFrom(ctx))
	wreq.ParentSpan = trace.SpanFrom(ctx)
	k := pendKey{id, sh.idx}
	ch := co.register(k, l)
	t0 := time.Now()
	if err := conn.SendEnvelope(wire.TypeShardRequest, wreq); err != nil {
		co.unregister(k)
		return shardReply{}, false
	}
	co.m.dispatched()
	var timeout <-chan time.Time
	if co.cfg.ShardTimeout > 0 {
		tm := time.NewTimer(co.cfg.ShardTimeout)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case r := <-ch:
		co.m.observeLatency(l.addr, time.Since(t0))
		return r, true
	case <-timeout:
		co.unregister(k)
		// No cancel frame here: Cancel is request-scoped and would poison
		// this request's other shards legitimately running on the same
		// worker. The stale reply, if it ever lands, routes to nothing.
		return shardReply{
			err:    fmt.Errorf("cluster: shard %d reply timed out on %s", sh.idx, l.addr),
			worker: l.addr,
		}, true
	case <-ctx.Done():
		co.unregister(k)
		// Poison the remote shard: best-effort cancel frame. The worker
		// also holds the absolute deadline, so even a lost cancel frame
		// only delays the stop until the deadline.
		if c := l.current(); c != nil {
			_ = c.SendEnvelope(wire.TypeCancel, wire.Cancel{ID: id})
		}
		return shardReply{err: ctx.Err(), cancelled: true, worker: l.addr}, true
	case <-co.closed:
		co.unregister(k)
		return shardReply{err: fmt.Errorf("cluster: coordinator closed"), worker: l.addr}, true
	}
}
