// Package cluster is DASSA's multi-process execution subsystem: a
// Coordinator that partitions a view's channel range into shards and
// dispatches them over the wire protocol to registered workers (cmd/dassw),
// and the Worker that serves those shards by running the existing
// dasf/dass/arrayudf pipeline over its assigned slice.
//
// The design keeps the single-process engine as the zero-config default and
// mirrors its failure semantics across processes: a worker that dies
// mid-shard gets its shard re-dispatched to a healthy peer, and when no
// peer can take it the coordinator — under dass.FailDegrade — NaN-masks the
// shard and records the loss in the QualityReport exactly like a failed
// local rank. Cancellation crosses the wire both proactively (cancel
// frames poison in-flight shards) and passively (request envelopes carry
// the absolute deadline, so a worker enforces the same budget the
// coordinator's context does).
package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/pfs"
	"dassa/internal/wire"
)

// Op names a distributed operation. The worker maps each onto the existing
// in-process pipeline.
type Op string

const (
	// OpRead assembles the raw channel × time window.
	OpRead Op = "read"
	// OpLocalSimi computes the local-similarity detection map (Algorithm 2).
	OpLocalSimi Op = "localsimi"
	// OpSTALTA computes the STA/LTA trigger map.
	OpSTALTA Op = "stalta"
)

// Errors the coordinator surfaces to callers deciding between distributed
// and local execution.
var (
	// ErrNoWorkers reports that no registered worker is currently alive.
	// Callers typically fall back to the in-process engine.
	ErrNoWorkers = errors.New("cluster: no healthy workers")
	// ErrAllShardsLost reports that every shard of a request failed even
	// after re-dispatch — a fully-NaN result would be worse than letting
	// the caller fall back or fail loudly.
	ErrAllShardsLost = errors.New("cluster: all shards lost")
)

// Request is one distributed analysis over a view.
type Request struct {
	// View is the channel × time window to analyze. Its member files must
	// be reachable by every worker (shared-filesystem model).
	View *dass.View
	Op   Op
	// Rate is the sampling frequency detection parameters are scaled from.
	Rate float64
	// LocalSimi / STALTA parameterize the matching op.
	LocalSimi detect.LocalSimiParams
	STALTA    detect.STALTAParams
	// Shards overrides the shard count (0 = 2 shards per healthy worker,
	// clamped to the channel width).
	Shards int
}

// halo returns the stencil's channel reach — how far a shard's read must
// extend past its core rows so border channels compute exactly.
func (r Request) halo() int {
	if r.Op == OpLocalSimi {
		return r.LocalSimi.Spec().GhostChannels
	}
	return 0
}

// outSamples returns the op's output time extent for an input extent nt.
func (r Request) outSamples(nt int) int {
	switch r.Op {
	case OpLocalSimi:
		return r.LocalSimi.Spec().OutSamples(nt)
	case OpSTALTA:
		return r.STALTA.Spec().OutSamples(nt)
	default:
		return nt
	}
}

// Result is a completed distributed run, shaped like the in-process
// engine's report so callers can treat both paths uniformly.
type Result struct {
	// Data is the merged output array (channels × output samples).
	Data *dasf.Array2D
	// Quality accounts for shards and members lost under FailDegrade
	// (always non-nil; Quality.Degraded() reports actual loss).
	Quality *dass.QualityReport
	// Trace sums the workers' physical I/O.
	Trace pfs.Trace
	// Shards, Redispatched and DegradedShards describe the run's failover
	// activity; Workers is how many workers contributed results.
	Shards         int
	Redispatched   int
	DegradedShards int
	Workers        int
	// Wall is the end-to-end coordinator-side duration.
	Wall time.Duration
}

// Degraded reports whether the run completed with data loss.
func (r *Result) Degraded() bool { return r.Quality.Degraded() }

// filesOf flattens a view's physical members into wire specs with absolute
// paths (workers run in their own working directories).
func filesOf(v *dass.View) ([]wire.FileSpec, error) {
	info := v.Info()
	abs := func(p string) (string, error) {
		a, err := filepath.Abs(p)
		if err != nil {
			return "", fmt.Errorf("cluster: resolve %s: %w", p, err)
		}
		return a, nil
	}
	if info.Kind != dasf.KindVCA {
		p, err := abs(info.Path)
		if err != nil {
			return nil, err
		}
		return []wire.FileSpec{{
			Path: p, NumChannels: info.NumChannels, NumSamples: info.NumSamples,
		}}, nil
	}
	specs := make([]wire.FileSpec, len(info.Members))
	for i, m := range info.Members {
		p, err := abs(m.Name)
		if err != nil {
			return nil, err
		}
		specs[i] = wire.FileSpec{
			Path: p, NumChannels: m.NumChannels, NumSamples: m.NumSamples,
			Timestamp: m.Timestamp,
		}
	}
	return specs, nil
}

// viewOf rebuilds the full-extent view a request's file specs describe —
// the worker-side inverse of filesOf. Single files map to a plain view;
// several become an in-memory VCA, exactly like dass.ViewOver.
func viewOf(files []wire.FileSpec) (*dass.View, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("cluster: request names no files")
	}
	if len(files) == 1 {
		return dass.NewView(dasf.Info{
			Path: files[0].Path, Kind: dasf.KindData,
			NumChannels: files[0].NumChannels, NumSamples: files[0].NumSamples,
		})
	}
	members := make([]dasf.Member, len(files))
	total := 0
	for i, f := range files {
		if f.NumChannels != files[0].NumChannels {
			return nil, fmt.Errorf("cluster: member %s has %d channels, series has %d",
				f.Path, f.NumChannels, files[0].NumChannels)
		}
		members[i] = dasf.Member{
			Name: f.Path, NumChannels: f.NumChannels,
			NumSamples: f.NumSamples, Timestamp: f.Timestamp,
		}
		total += f.NumSamples
	}
	return dass.NewView(dasf.Info{
		Path:        fmt.Sprintf("<cluster view of %d files>", len(files)),
		Kind:        dasf.KindVCA,
		NumChannels: files[0].NumChannels, NumSamples: total,
		Members: members,
	})
}
