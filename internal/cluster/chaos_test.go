package cluster

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/dass"
	"dassa/internal/faults"
	"dassa/internal/testutil/leakcheck"
	"dassa/internal/wire"
)

// TestClusterWorkerDeathRedispatch kills one of two workers mid-request
// (≥8 shards in flight) with re-dispatch enabled. The run must complete —
// fully, because the surviving worker absorbs the dead worker's shards —
// and the merged data must equal the local answer.
func TestClusterWorkerDeathRedispatch(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 32, 3)

	// Slow the victim's outbound frames so its shards are reliably still
	// in flight when the kill lands.
	slow := faults.New(faults.Config{Seed: 3, SlowProb: 1, SlowLatency: 80 * time.Millisecond})
	victim, a1 := startWorker(t, WorkerConfig{
		Faults: wire.FaultConfig{Injector: slow, Label: "victim"},
	})
	_, a2 := startWorker(t, WorkerConfig{})
	co := newCoord(t, []string{a1, a2}, func(c *Config) {
		c.MaxAttempts = 4
		c.DeadAfter = 500 * time.Millisecond
	})

	waitFor(t, 10*time.Second, func() bool { return co.healthyCount() == 2 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(60 * time.Millisecond)
		victim.Close()
	}()
	res, err := co.Run(ctx, Request{View: v, Op: OpRead, Shards: 8})
	<-done
	if err != nil {
		t.Fatalf("run with mid-request worker death failed: %v", err)
	}
	if res.Redispatched == 0 && res.DegradedShards == 0 {
		t.Log("kill landed after all shards completed; nothing exercised (timing)")
	}
	want, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedShards == 0 {
		sameValues(t, res.Data, want)
	} else {
		assertDegradedMatches(t, res, want, v)
	}
}

// TestClusterWorkerDeathDegrades disables re-dispatch (MaxAttempts 1) so a
// mid-request worker death must surface as a NaN-degraded result whose
// QualityReport names the lost shard — never an error, hang, or silently
// wrong answer.
func TestClusterWorkerDeathDegrades(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 32, 3)
	slow := faults.New(faults.Config{Seed: 5, SlowProb: 1, SlowLatency: 120 * time.Millisecond})
	victim, a1 := startWorker(t, WorkerConfig{
		Faults: wire.FaultConfig{Injector: slow, Label: "victim"},
	})
	_, a2 := startWorker(t, WorkerConfig{})
	co := newCoord(t, []string{a1, a2}, func(c *Config) {
		c.MaxAttempts = 1
		c.DeadAfter = 500 * time.Millisecond
	})

	waitFor(t, 10*time.Second, func() bool { return co.healthyCount() == 2 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		time.Sleep(60 * time.Millisecond)
		victim.Close()
	}()
	res, err := co.Run(ctx, Request{View: v, Op: OpRead, Shards: 8})
	if err != nil {
		t.Fatalf("degrade policy returned error: %v", err)
	}
	want, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedShards == 0 {
		// The victim's frames were slow but the kill still lost the race;
		// result must then be complete and exact.
		sameValues(t, res.Data, want)
		t.Log("kill landed after completion; degraded path not exercised (timing)")
		return
	}
	if !res.Quality.Degraded() {
		t.Fatal("degraded shards but clean QualityReport")
	}
	assertDegradedMatches(t, res, want, v)
}

// assertDegradedMatches checks a degraded result's invariants: surviving
// cells equal the local answer, lost cells are NaN, and the QualityReport's
// gaps cover exactly the NaN rows.
func assertDegradedMatches(t *testing.T, res *Result, want *dasf.Array2D, v *dass.View) {
	t.Helper()
	nch, _ := v.Shape()
	lost := make([]bool, nch)
	for _, g := range res.Quality.Gaps {
		for c := g.ChLo; c < g.ChHi && c < nch; c++ {
			lost[c] = true
		}
	}
	anyLost := false
	for c := 0; c < res.Data.Channels; c++ {
		row, wrow := res.Data.Row(c), want.Row(c)
		for i := range row {
			if lost[c] {
				anyLost = true
				if !math.IsNaN(row[i]) {
					t.Fatalf("lost channel %d sample %d not NaN: %v", c, i, row[i])
				}
				continue
			}
			if row[i] != wrow[i] && !(math.IsNaN(row[i]) && math.IsNaN(wrow[i])) {
				t.Fatalf("surviving channel %d sample %d: got %v want %v", c, i, row[i], wrow[i])
			}
		}
	}
	if !anyLost {
		t.Fatal("QualityReport gaps cover no channels despite degraded shards")
	}
	if res.Quality.LostSamples == 0 || len(res.Quality.LostFiles) == 0 {
		t.Fatalf("quality accounting empty: %+v", res.Quality)
	}
}

// TestClusterCancellationPoisonsWorker cancels the client context
// mid-request and asserts the worker's in-flight shards die within one
// heartbeat interval — the cancel frame beats the deadline.
func TestClusterCancellationPoisonsWorker(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 16, 3)

	// Slow the storage layer so shards are mid-read when the cancel lands.
	dasf.SetInjector(faults.New(faults.Config{Seed: 9, SlowProb: 1, SlowLatency: 150 * time.Millisecond}))
	t.Cleanup(func() { dasf.SetInjector(nil) })

	w, a1 := startWorker(t, WorkerConfig{HeartbeatEvery: 100 * time.Millisecond})
	co := newCoord(t, []string{a1}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := co.Run(ctx, Request{View: v, Op: OpRead, Shards: 4})
		errc <- err
	}()

	// Wait for shards to actually start on the worker, then cancel.
	waitFor(t, 5*time.Second, func() bool { return w.InFlight() > 0 })
	cancel()

	select {
	case err := <-errc:
		if !dass.IsCancellation(err) {
			t.Fatalf("cancelled run returned %v, want cancellation", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run hung")
	}
	// The worker must observe the poison and reap its jobs promptly — the
	// slack allows for one in-progress slow read to finish its sleep.
	waitFor(t, 3*time.Second, func() bool { return w.InFlight() == 0 })
}

// TestClusterDeadlinePropagates lets the wire deadline (not a cancel
// frame) stop remote shards: the request deadline expires while shards
// run, and both sides agree the run is a cancellation.
func TestClusterDeadlinePropagates(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 16, 3)
	dasf.SetInjector(faults.New(faults.Config{Seed: 13, SlowProb: 1, SlowLatency: 150 * time.Millisecond}))
	t.Cleanup(func() { dasf.SetInjector(nil) })

	w, a1 := startWorker(t, WorkerConfig{HeartbeatEvery: 100 * time.Millisecond})
	co := newCoord(t, []string{a1}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	_, err := co.Run(ctx, Request{View: v, Op: OpRead, Shards: 4})
	if !dass.IsCancellation(err) {
		t.Fatalf("expired run returned %v, want cancellation", err)
	}
	waitFor(t, 3*time.Second, func() bool { return w.InFlight() == 0 })
}

// TestClusterWireDropChaos runs with frame drops on the worker's outbound
// path at 8 workers' worth of shards: lost results must time out and
// re-dispatch until the answer completes (or degrades) — never hang and
// never come back wrong.
func TestClusterWireDropChaos(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 32, 3)
	drop := faults.New(faults.Config{Seed: 21, TransientProb: 0.3, MaxTransient: 2})
	addrs := make([]string, 8)
	for i := range addrs {
		// Every worker shares the drop schedule but keys it by its own
		// connection label, so streaks are independent.
		_, addrs[i] = startWorker(t, WorkerConfig{
			Faults: wire.FaultConfig{Injector: drop},
		})
	}
	co := newCoord(t, addrs, func(c *Config) {
		c.MaxAttempts = 6
		c.ShardTimeout = 700 * time.Millisecond
		c.DeadAfter = 2 * time.Second
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := co.Run(ctx, Request{View: v, Op: OpRead, Shards: 16})
	if err != nil {
		t.Fatalf("drop chaos run failed: %v", err)
	}
	want, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedShards == 0 {
		sameValues(t, res.Data, want)
	} else {
		assertDegradedMatches(t, res, want, v)
	}
	t.Logf("drop chaos: %d shards, %d redispatched, %d degraded, %d workers",
		res.Shards, res.Redispatched, res.DegradedShards, res.Workers)
}

// TestClusterPartialWriteSeversAndRecovers injects a partial-write fault
// on the coordinator's first connection to one worker: the conn dies
// mid-frame, the link redials, and the run still completes.
func TestClusterPartialWriteSeversAndRecovers(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 16, 2)
	// Corrupt exactly the labeled conn: the coordinator's link to a1.
	_, a1 := startWorker(t, WorkerConfig{})
	_, a2 := startWorker(t, WorkerConfig{})
	// Labels default to each link's worker address, so only the a1 link
	// matches the corrupt schedule; a2 stays clean.
	inj := faults.New(faults.Config{Seed: 2, Corrupt: []string{a1}})
	co := newCoord(t, []string{a1, a2}, func(c *Config) {
		c.MaxAttempts = 4
		c.Faults = wire.FaultConfig{Injector: inj}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := co.Run(ctx, Request{View: v, Op: OpRead, Shards: 8})
	if err != nil {
		t.Fatalf("partial-write chaos run failed: %v", err)
	}
	want, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedShards == 0 {
		sameValues(t, res.Data, want)
	} else {
		assertDegradedMatches(t, res, want, v)
	}
}

// blackHole serves the handshake and heartbeats like a healthy worker but
// swallows every shard request — the pathology ShardTimeout exists for: a
// live connection that makes no progress.
func blackHole(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				c := wire.NewConn(nc, 16)
				defer c.Abort()
				f, err := c.Recv()
				if err != nil || f.Type != wire.TypeHello {
					return
				}
				_ = c.SendEnvelope(wire.TypeWelcome, wire.Welcome{Worker: "blackhole", Version: wire.Version})
				stop := make(chan struct{})
				defer close(stop)
				go func() {
					tick := time.NewTicker(100 * time.Millisecond)
					defer tick.Stop()
					for {
						select {
						case <-stop:
							return
						case now := <-tick.C:
							_ = c.SendEnvelope(wire.TypeHeartbeat, wire.Heartbeat{UnixNano: now.UnixNano()})
						}
					}
				}()
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestClusterBlackHoleRedispatch proves the per-dispatch timeout: shards
// sent to a live-but-unresponsive worker time out and re-dispatch to the
// healthy one, and the run completes exactly.
func TestClusterBlackHoleRedispatch(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 16, 2)
	_, good := startWorker(t, WorkerConfig{})
	hole := blackHole(t)
	co := newCoord(t, []string{good, hole}, func(c *Config) {
		c.MaxAttempts = 3
		c.ShardTimeout = 300 * time.Millisecond
	})
	waitFor(t, 10*time.Second, func() bool { return co.healthyCount() == 2 })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := co.Run(ctx, Request{View: v, Op: OpRead, Shards: 8})
	if err != nil {
		t.Fatalf("black-hole run failed: %v", err)
	}
	if res.Redispatched == 0 {
		t.Fatal("no shard was re-dispatched despite a black-hole worker")
	}
	want, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, res.Data, want)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
