package cluster

import (
	"time"

	"dassa/internal/obs"
	"dassa/internal/wire"
)

// metrics is the coordinator's instrument panel. A nil *metrics (no
// registry configured) makes every method a no-op, so the hot path never
// branches on configuration.
type metrics struct {
	reg      *obs.Registry
	shards   map[string]*obs.Counter // outcome → counter
	dispatch *obs.Counter
	latency  map[string]*obs.Histogram // worker address → histogram
}

// shardOutcomes is the closed label vocabulary of dassa_cluster_shards_total.
var shardOutcomes = []string{"done", "retried", "degraded", "cancelled", "failed"}

func newMetrics(reg *obs.Registry, co *Coordinator) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{
		reg:    reg,
		shards: map[string]*obs.Counter{},
		dispatch: reg.Counter("dassa_cluster_dispatch_total",
			"shard requests sent to workers (including re-dispatches)"),
		latency: map[string]*obs.Histogram{},
	}
	for _, o := range shardOutcomes {
		m.shards[o] = reg.Counter("dassa_cluster_shards_total",
			//dassalint:ignore metriclabel o ranges over shardOutcomes, a closed vocabulary
			"shard fates by outcome", obs.L("outcome", o))
	}
	reg.GaugeFunc("dassa_cluster_workers", "registered workers currently alive",
		func() float64 { return float64(co.healthyCount()) })
	reg.CounterFunc("dassa_wire_bytes_total", "wire-protocol bytes received",
		func() float64 { return float64(wire.BytesIn()) }, obs.L("dir", "in"))
	reg.CounterFunc("dassa_wire_bytes_total", "wire-protocol bytes sent",
		func() float64 { return float64(wire.BytesOut()) }, obs.L("dir", "out"))
	reg.CounterFunc("dassa_wire_version_mismatch_total",
		"handshakes refused for an incompatible peer protocol version",
		func() float64 { return float64(wire.VersionMismatches()) })
	// Per-worker latency series are bounded by the -workers flag's
	// cardinality, fixed at process start.
	for _, l := range co.links {
		m.latency[l.addr] = reg.Histogram("dassa_cluster_shard_seconds",
			"per-worker shard round-trip latency", obs.LatencyBuckets(),
			//dassalint:ignore metriclabel worker addresses come from the -workers flag, fixed at startup
			obs.L("worker", l.addr))
	}
	return m
}

func (m *metrics) outcome(o string) {
	if m == nil {
		return
	}
	if c, ok := m.shards[o]; ok {
		c.Inc()
	}
}

func (m *metrics) dispatched() {
	if m == nil {
		return
	}
	m.dispatch.Inc()
}

func (m *metrics) observeLatency(worker string, d time.Duration) {
	if m == nil {
		return
	}
	if h, ok := m.latency[worker]; ok {
		h.Observe(d.Seconds())
	}
}
