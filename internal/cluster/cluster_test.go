package cluster

import (
	"context"
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"dassa/internal/core"
	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/testutil/leakcheck"
	"dassa/internal/wire"
)

// makeView generates a synthetic file series and opens the full window.
func makeView(t *testing.T, channels, files int) (*dass.View, float64) {
	t.Helper()
	dir := t.TempDir()
	cfg := dasgen.Config{
		Channels: channels, SampleRate: 50, FileSeconds: 2, NumFiles: files,
		Seed: 11, DType: dasf.Float64,
	}
	if _, err := dasgen.Generate(dir, cfg, dasgen.Fig10Events(cfg)); err != nil {
		t.Fatal(err)
	}
	cat, err := dass.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, err := dass.ViewOver(cat.Entries())
	if err != nil {
		t.Fatal(err)
	}
	return v, cfg.SampleRate
}

// startWorker serves a shard worker on a loopback listener and returns it
// with its address. Close is registered for cleanup (idempotent, so tests
// that kill the worker themselves are fine).
func startWorker(t *testing.T, cfg WorkerConfig) (*Worker, string) {
	t.Helper()
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 100 * time.Millisecond
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(cfg)
	go func() { _ = w.Serve(ln) }()
	t.Cleanup(w.Close)
	return w, ln.Addr().String()
}

// newCoord builds a coordinator over addrs with fast test timings.
func newCoord(t *testing.T, addrs []string, mutate func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Workers:        addrs,
		HeartbeatEvery: 100 * time.Millisecond,
		DialTimeout:    2 * time.Second,
		RedialBackoff:  50 * time.Millisecond,
		FailPolicy:     dass.FailDegrade,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

// sameValues compares arrays elementwise, NaN-aware.
func sameValues(t *testing.T, got, want *dasf.Array2D) {
	t.Helper()
	if got.Channels != want.Channels || got.Samples != want.Samples {
		t.Fatalf("shape mismatch: got %d×%d want %d×%d",
			got.Channels, got.Samples, want.Channels, want.Samples)
	}
	for i := range want.Data {
		g, w := got.Data[i], want.Data[i]
		if g == w || (math.IsNaN(g) && math.IsNaN(w)) {
			continue
		}
		t.Fatalf("data[%d]: got %v want %v", i, g, w)
	}
}

func TestClusterReadMatchesLocal(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 16, 3)
	_, a1 := startWorker(t, WorkerConfig{})
	_, a2 := startWorker(t, WorkerConfig{})
	_ = a1
	co := newCoord(t, []string{a1, a2}, nil)

	res, err := co.Run(context.Background(), Request{View: v, Op: OpRead, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, res.Data, want)
	if res.Quality.Degraded() {
		t.Fatalf("clean read reported degraded: %v", res.Quality)
	}
	if res.Shards != 5 || res.Workers < 1 {
		t.Fatalf("run stats wrong: %+v", res)
	}
	if res.Trace.BytesRead == 0 {
		t.Fatal("merged trace carries no worker I/O")
	}
}

func TestClusterLocalSimiMatchesLocal(t *testing.T) {
	leakcheck.Check(t)
	v, rate := makeView(t, 24, 2)
	p := core.DefaultLocalSimi(rate).LocalSimiParams
	_, a1 := startWorker(t, WorkerConfig{})
	_, a2 := startWorker(t, WorkerConfig{})
	co := newCoord(t, []string{a1, a2}, nil)

	res, err := co.Run(context.Background(), Request{
		View: v, Op: OpLocalSimi, Rate: rate, LocalSimi: p, Shards: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	fw := core.New(core.Config{Nodes: 1, CoresPerNode: 4})
	want, _, err := fw.Apply(v, p.Spec().GhostChannels, p.Spec().TimeStride, p.UDF(), "")
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, res.Data, want)
}

func TestClusterSTALTAOnSubsetWindow(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 24, 3)
	_, nt := v.Shape()
	sub, err := v.Subset(4, 20, nt/4, nt-nt/4)
	if err != nil {
		t.Fatal(err)
	}
	p := detect.STALTAParams{STASamples: 5, LTASamples: 25, Stride: 5}
	_, a1 := startWorker(t, WorkerConfig{})
	co := newCoord(t, []string{a1}, nil)

	res, err := co.Run(context.Background(), Request{
		View: sub, Op: OpSTALTA, STALTA: p, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fw := core.New(core.Config{Nodes: 1, CoresPerNode: 4})
	want, _, err := fw.Apply(sub, 0, p.Stride, p.UDF(), "")
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, res.Data, want)
}

func TestClusterNoWorkers(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 8, 1)
	co := newCoord(t, []string{"127.0.0.1:1"}, func(c *Config) {
		c.DialTimeout = 100 * time.Millisecond
	})
	_, err := co.Run(context.Background(), Request{View: v, Op: OpRead})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("want ErrNoWorkers, got %v", err)
	}
}

func TestClusterRejectsBadRequests(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 8, 1)
	_, a1 := startWorker(t, WorkerConfig{})
	co := newCoord(t, []string{a1}, nil)
	if _, err := co.Run(context.Background(), Request{View: v, Op: "bogus"}); err == nil {
		t.Fatal("bogus op accepted")
	}
	if _, err := co.Run(context.Background(), Request{Op: OpRead}); err == nil {
		t.Fatal("nil view accepted")
	}
}

func TestWorkerDrainRefusesNewWork(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 8, 1)
	w, a1 := startWorker(t, WorkerConfig{})
	co := newCoord(t, []string{a1}, nil)

	// A clean run, then drain, then the next run finds no worker.
	if _, err := co.Run(context.Background(), Request{View: v, Op: OpRead}); err != nil {
		t.Fatal(err)
	}
	w.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := co.Run(ctx, Request{View: v, Op: OpRead})
	if err == nil {
		t.Fatal("run against a drained worker succeeded")
	}
}

func TestViewSpecRoundTrip(t *testing.T) {
	v, _ := makeView(t, 8, 3)
	files, err := filesOf(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("filesOf returned %d specs, want 3", len(files))
	}
	back, err := viewOf(files)
	if err != nil {
		t.Fatal(err)
	}
	wn, wt := v.Shape()
	bn, bt := back.Shape()
	if wn != bn || wt != bt {
		t.Fatalf("round-tripped shape %d×%d, want %d×%d", bn, bt, wn, wt)
	}
	data, _, err := back.Read()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, data, want)
}

func TestExecuteShardDeadline(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 8, 2)
	files, err := filesOf(v)
	if err != nil {
		t.Fatal(err)
	}
	req := wire.ShardRequest{
		ID: 1, Op: string(OpRead), Files: files,
		ChLo: 0, ChHi: 8, T0: 0, T1: 10,
		DeadlineUnixNano: time.Now().Add(-time.Second).UnixNano(),
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, req.DeadlineUnixNano))
	defer cancel()
	if _, _, err := executeShard(ctx, req, 2); !dass.IsCancellation(err) {
		t.Fatalf("expired deadline: want cancellation, got %v", err)
	}
}
