package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dassa/internal/arrayudf"
	"dassa/internal/core"
	"dassa/internal/dasf"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/obs"
	"dassa/internal/obs/trace"
	"dassa/internal/pfs"
	"dassa/internal/wire"
)

// WorkerConfig sizes a shard worker. Zero values choose sane defaults.
type WorkerConfig struct {
	// Name identifies the worker in handshakes and logs (default the
	// listener address).
	Name string
	// Cores is the per-shard compute parallelism (default 4, like the
	// in-process engine).
	Cores int
	// HeartbeatEvery is the liveness beacon period (default 1s).
	HeartbeatEvery time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight shards
	// (default 10s).
	DrainTimeout time.Duration
	// Log receives structured worker events (default discard).
	Log *slog.Logger
	// Faults, when its Injector is non-nil, injects wire-layer failures on
	// every accepted connection — drops, delays and partial writes for
	// chaos tests.
	Faults wire.FaultConfig
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	c.Log = obs.OrNop(c.Log)
	return c
}

// Worker serves shard requests by running the existing storage/compute
// pipeline over each request's slice of the file set. One worker handles
// many coordinator connections; each connection multiplexes many shards.
type Worker struct {
	cfg WorkerConfig
	ln  net.Listener

	conns    sync.WaitGroup // connection handlers
	jobs     sync.WaitGroup // in-flight shard executions
	inFlight atomic.Int64
	draining atomic.Bool
	closed   atomic.Bool

	activeMu sync.Mutex
	active   map[*wire.Conn]bool
}

// NewWorker creates a worker; call Serve to start accepting.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg.withDefaults()}
}

// InFlight returns how many shards are currently executing.
func (w *Worker) InFlight() int { return int(w.inFlight.Load()) }

// Serve accepts coordinator connections on ln until Drain (or a listener
// error) stops it. It returns nil on a clean drain.
func (w *Worker) Serve(ln net.Listener) error {
	w.activeMu.Lock()
	w.ln = ln
	if w.cfg.Name == "" {
		w.cfg.Name = ln.Addr().String()
	}
	stopped := w.closed.Load() || w.draining.Load()
	w.activeMu.Unlock()
	if stopped {
		ln.Close()
		return nil
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			if w.draining.Load() || w.closed.Load() {
				return nil
			}
			return err
		}
		w.conns.Add(1)
		go func() {
			defer w.conns.Done()
			w.handle(nc)
		}()
	}
}

// Drain stops the worker gracefully: the listener closes, new shard
// requests are refused with a "draining" error, and in-flight shards get
// up to DrainTimeout to finish (their results still flow back before the
// connections close). It is the SIGTERM path of cmd/dassw.
func (w *Worker) Drain() {
	if !w.draining.CompareAndSwap(false, true) {
		return
	}
	w.closeListener()
	done := make(chan struct{})
	go func() { w.jobs.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(w.cfg.DrainTimeout):
		w.cfg.Log.Warn("cluster: drain timeout, abandoning in-flight shards")
	}
	// Flush queued results, then sever. Close drains the send queue;
	// Abort (via Close below) reaps anything left.
	for _, c := range w.snapshotConns() {
		_ = c.Close()
	}
	w.Close()
}

// Close stops the worker immediately: listener closed, connections
// severed, in-flight shards cancelled through their contexts (each
// handler poisons its jobs on exit).
func (w *Worker) Close() {
	if !w.closed.CompareAndSwap(false, true) {
		return
	}
	w.draining.Store(true)
	w.closeListener()
	for _, c := range w.snapshotConns() {
		c.Abort()
	}
	w.conns.Wait()
}

// closeListener closes the listener under the lock Serve sets it under, so
// a Close racing Serve's startup still stops the accept loop.
func (w *Worker) closeListener() {
	w.activeMu.Lock()
	ln := w.ln
	w.activeMu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// track registers a live connection; false means the worker is closed and
// the caller must abandon it.
func (w *Worker) track(c *wire.Conn) bool {
	w.activeMu.Lock()
	defer w.activeMu.Unlock()
	if w.closed.Load() {
		return false
	}
	if w.active == nil {
		w.active = map[*wire.Conn]bool{}
	}
	w.active[c] = true
	return true
}

func (w *Worker) untrack(c *wire.Conn) {
	w.activeMu.Lock()
	delete(w.active, c)
	w.activeMu.Unlock()
}

func (w *Worker) snapshotConns() []*wire.Conn {
	w.activeMu.Lock()
	defer w.activeMu.Unlock()
	out := make([]*wire.Conn, 0, len(w.active))
	for c := range w.active {
		out = append(out, c)
	}
	return out
}

// connState tracks one coordinator connection's in-flight jobs so cancel
// frames (and connection death) can poison them.
type connState struct {
	mu      sync.Mutex
	cancels map[uint64][]context.CancelCauseFunc // request ID → job cancels
}

func (s *connState) add(id uint64, c context.CancelCauseFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancels == nil {
		s.cancels = map[uint64][]context.CancelCauseFunc{}
	}
	s.cancels[id] = append(s.cancels[id], c)
}

func (s *connState) cancel(id uint64, cause error) {
	s.mu.Lock()
	cs := s.cancels[id]
	delete(s.cancels, id)
	s.mu.Unlock()
	for _, c := range cs {
		c(cause)
	}
}

func (s *connState) cancelAll(cause error) {
	s.mu.Lock()
	all := s.cancels
	s.cancels = nil
	s.mu.Unlock()
	for _, cs := range all {
		for _, c := range cs {
			c(cause)
		}
	}
}

// errConnDead poisons jobs whose coordinator connection died; errCancelled
// poisons jobs the coordinator cancelled explicitly.
var (
	errConnDead  = errors.New("cluster: coordinator connection lost")
	errCancelled = errors.New("cluster: request cancelled by coordinator")
)

// handle runs one coordinator connection: handshake, heartbeats out,
// requests in, shard jobs fanned out.
func (w *Worker) handle(nc net.Conn) {
	c := wire.NewConn(nc, wire.DefaultSendQueue)
	if w.cfg.Faults.Injector != nil {
		fc := w.cfg.Faults
		if fc.Label == "" {
			fc.Label = nc.RemoteAddr().String()
		}
		c = c.SetFaults(fc)
	}
	if !w.track(c) {
		c.Abort()
		return
	}
	st := &connState{}
	defer func() {
		st.cancelAll(errConnDead)
		w.untrack(c)
		c.Abort()
	}()

	// Handshake: the first frame must be a Hello.
	f, err := c.Recv()
	if err != nil || f.Type != wire.TypeHello {
		w.cfg.Log.Warn("cluster: handshake failed", "remote", nc.RemoteAddr().String(), "err", err)
		return
	}
	var hello wire.Hello
	if err := wire.DecodeInto(f, &hello); err != nil {
		w.cfg.Log.Warn("cluster: bad hello", "err", err)
		return
	}
	if err := wire.CheckVersion(hello.Version); err != nil {
		w.cfg.Log.Warn("cluster: handshake rejected", "from", hello.From, "err", err)
		return
	}
	if err := c.SendEnvelope(wire.TypeWelcome, wire.Welcome{Worker: w.cfg.Name, Version: wire.Version}); err != nil {
		return
	}
	w.cfg.Log.Info("cluster: coordinator connected", "from", hello.From)

	// Heartbeats flow until the read loop ends.
	beatsDone := make(chan struct{})
	defer close(beatsDone)
	go func() {
		t := time.NewTicker(w.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-beatsDone:
				return
			case now := <-t.C:
				hb := wire.Heartbeat{UnixNano: now.UnixNano(), InFlight: int(w.inFlight.Load())}
				if err := c.SendEnvelope(wire.TypeHeartbeat, hb); err != nil && !errors.Is(err, wire.ErrQueueFull) {
					return
				}
			}
		}
	}()

	for {
		f, err := c.Recv()
		if err != nil {
			return
		}
		switch f.Type {
		case wire.TypeShardRequest:
			var req wire.ShardRequest
			if err := wire.DecodeInto(f, &req); err != nil {
				w.cfg.Log.Warn("cluster: undecodable shard request", "err", err)
				continue
			}
			if w.draining.Load() {
				_ = c.SendEnvelope(wire.TypeShardError, wire.ShardError{
					ID: req.ID, Shard: req.Shard, Msg: "worker draining",
				})
				continue
			}
			w.jobs.Add(1)
			w.inFlight.Add(1)
			go func() {
				defer w.jobs.Done()
				defer w.inFlight.Add(-1)
				w.runJob(c, st, req)
			}()
		case wire.TypeCancel:
			var cn wire.Cancel
			if err := wire.DecodeInto(f, &cn); err == nil {
				st.cancel(cn.ID, errCancelled)
			}
		case wire.TypeGoodbye:
			return
		case wire.TypeHeartbeat:
			// Coordinator-side beats are allowed and ignored.
		default:
			w.cfg.Log.Warn("cluster: unexpected frame", "type", f.Type.String())
		}
	}
}

// runJob executes one shard and replies with its result or error.
func (w *Worker) runJob(c *wire.Conn, st *connState, req wire.ShardRequest) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	st.add(req.ID, cancel)
	if req.DeadlineUnixNano > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithDeadline(ctx, time.Unix(0, req.DeadlineUnixNano))
		defer cancelT()
	}

	start := time.Now()
	res, data, err := w.executeTraced(ctx, req)
	if err != nil {
		cancelled := dass.IsCancellation(err) ||
			errors.Is(err, errCancelled) || errors.Is(err, errConnDead)
		w.cfg.Log.Warn("cluster: shard failed",
			"id", req.ID, "shard", req.Shard, "cancelled", cancelled,
			"trace_id", req.TraceID, "err", err)
		_ = c.SendEnvelope(wire.TypeShardError, wire.ShardError{
			ID: req.ID, Shard: req.Shard, Msg: err.Error(), Cancelled: cancelled,
		})
		return
	}
	res.ID, res.Shard = req.ID, req.Shard
	res.WallNS = time.Since(start).Nanoseconds()
	f, err := wire.EncodeResult(res, data)
	if err != nil {
		_ = c.SendEnvelope(wire.TypeShardError, wire.ShardError{
			ID: req.ID, Shard: req.Shard, Msg: fmt.Sprintf("encode result: %v", err),
		})
		return
	}
	if err := c.Send(f); err != nil {
		w.cfg.Log.Warn("cluster: result send failed",
			"id", req.ID, "shard", req.Shard, "trace_id", req.TraceID, "err", err)
	} else {
		w.cfg.Log.Info("cluster: shard done",
			"id", req.ID, "shard", req.Shard, "trace_id", req.TraceID,
			"wall_ms", res.WallNS/1e6)
	}
}

// executeTraced runs executeShard under the request's trace, when it
// carries one: the worker records its fragment locally (rooted at
// "worker.shard", parented under the coordinator's dispatch span) and
// ships the spans back in the result for reassembly.
func (w *Worker) executeTraced(ctx context.Context, req wire.ShardRequest) (wire.ShardResult, []float64, error) {
	if req.TraceID == "" {
		return executeShard(ctx, req, w.cfg.Cores)
	}
	ctx, root, rem := trace.StartRemote(ctx, trace.ID(req.TraceID), w.cfg.Name, req.ParentSpan, "worker.shard")
	root.SetAttrInt("shard", int64(req.Shard))
	root.SetAttr("op", req.Op)
	res, data, err := executeShard(ctx, req, w.cfg.Cores)
	root.EndErr(err)
	if err != nil {
		return res, data, err
	}
	res.Spans = toWireSpans(rem.Spans())
	return res, data, nil
}

// executeShard runs one shard's slice of the pipeline: rebuild the view,
// subset to the shard window plus halo, run the op under FailDegrade, trim
// halo rows, and lift gaps back to absolute channel coordinates.
func executeShard(ctx context.Context, req wire.ShardRequest, cores int) (wire.ShardResult, []float64, error) {
	full, err := viewOf(req.Files)
	if err != nil {
		return wire.ShardResult{}, nil, err
	}
	nch, nt := full.Shape()
	if req.ChLo < 0 || req.ChHi > nch || req.ChLo >= req.ChHi ||
		req.T0 < 0 || req.T1 > nt || req.T0 >= req.T1 {
		return wire.ShardResult{}, nil, fmt.Errorf(
			"cluster: shard window [%d:%d)×[%d:%d) out of file-set bounds %d×%d",
			req.ChLo, req.ChHi, req.T0, req.T1, nch, nt)
	}
	gLo := max(0, req.ChLo-req.Halo)
	gHi := min(nch, req.ChHi+req.Halo)
	sub, err := full.Subset(gLo, gHi, req.T0, req.T1)
	if err != nil {
		return wire.ShardResult{}, nil, err
	}
	sub = sub.WithContext(ctx)

	var (
		out  *dasf.Array2D
		tr   pfs.Trace
		gaps []dass.Gap
	)
	switch Op(req.Op) {
	case OpRead:
		out, tr, gaps, err = sub.ReadPolicy(dass.FailDegrade)
	case OpLocalSimi:
		p := detect.LocalSimiParams{M: req.M, K: req.K, L: req.L, Stride: req.Stride}
		if verr := p.Validate(); verr != nil {
			return wire.ShardResult{}, nil, verr
		}
		out, tr, gaps, err = applyShard(sub, p.Spec().GhostChannels, p.Spec().TimeStride, p.UDF(), cores)
	case OpSTALTA:
		p := detect.STALTAParams{STASamples: req.STA, LTASamples: req.LTA, Stride: req.Stride}
		if verr := p.Validate(); verr != nil {
			return wire.ShardResult{}, nil, verr
		}
		out, tr, gaps, err = applyShard(sub, 0, p.Spec().TimeStride, p.UDF(), cores)
	default:
		return wire.ShardResult{}, nil, fmt.Errorf("cluster: unknown op %q", req.Op)
	}
	if err != nil {
		return wire.ShardResult{}, nil, err
	}

	// Trim halo rows: the reply carries exactly the core [ChLo, ChHi).
	coreLo := req.ChLo - gLo
	coreN := req.ChHi - req.ChLo
	data := make([]float64, coreN*out.Samples)
	for c := 0; c < coreN; c++ {
		copy(data[c*out.Samples:(c+1)*out.Samples], out.Row(coreLo+c))
	}
	res := wire.ShardResult{
		Channels: coreN,
		Samples:  out.Samples,
		Trace: wire.Trace{
			Opens: tr.Opens, Reads: tr.Reads, BytesRead: tr.BytesRead,
			Retries: tr.Retries, Faults: tr.Faults, SlowReads: tr.SlowReads,
			Masked: tr.MaskedSamples,
		},
	}
	// Lift gaps from sub-relative to absolute channels, clipped to the
	// core rows (halo losses are the neighbouring shard's to report).
	for _, g := range gaps {
		lo := max(g.ChLo+gLo, req.ChLo)
		hi := min(g.ChHi+gLo, req.ChHi)
		if lo >= hi {
			continue
		}
		res.Gaps = append(res.Gaps, wire.Gap{
			Member: g.Member, File: g.File,
			ChLo: lo, ChHi: hi, TLo: g.TLo, THi: g.THi,
		})
	}
	return res, data, nil
}

// applyShard runs a stencil op over the shard's sub-view under FailDegrade
// and normalizes the engine's report to (output, trace, gaps).
func applyShard(sub *dass.View, ghost, stride int, udf arrayudf.PointUDF, cores int) (*dasf.Array2D, pfs.Trace, []dass.Gap, error) {
	fw := core.New(core.Config{Nodes: 1, CoresPerNode: cores, FailPolicy: dass.FailDegrade})
	out, rep, err := fw.Apply(sub, ghost, stride, udf, "")
	if err != nil {
		return nil, rep.ReadTrace, nil, err
	}
	var gaps []dass.Gap
	if rep.Quality != nil {
		gaps = rep.Quality.Gaps
	}
	return out, rep.ReadTrace, gaps, nil
}
