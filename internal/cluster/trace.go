package cluster

import (
	"dassa/internal/obs/trace"
	"dassa/internal/wire"
)

// toWireSpans converts a worker's locally recorded trace fragment into
// the wire mirror for shipping in a ShardResult.
func toWireSpans(spans []trace.SpanData) []wire.Span {
	if len(spans) == 0 {
		return nil
	}
	out := make([]wire.Span, len(spans))
	for i, sd := range spans {
		ws := wire.Span{
			SpanID: sd.SpanID, Parent: sd.Parent, Name: sd.Name, Process: sd.Process,
			StartUnixNano: sd.StartUnixNano, DurNS: sd.DurNS, Status: sd.Status,
		}
		for _, a := range sd.Attrs {
			ws.Attrs = append(ws.Attrs, wire.SpanAttr{K: a.K, V: a.V})
		}
		out[i] = ws
	}
	return out
}

// fromWireSpans converts shipped spans back for grafting into the
// coordinator's live trace.
func fromWireSpans(spans []wire.Span) []trace.SpanData {
	if len(spans) == 0 {
		return nil
	}
	out := make([]trace.SpanData, len(spans))
	for i, ws := range spans {
		sd := trace.SpanData{
			SpanID: ws.SpanID, Parent: ws.Parent, Name: ws.Name, Process: ws.Process,
			StartUnixNano: ws.StartUnixNano, DurNS: ws.DurNS, Status: ws.Status,
		}
		for _, a := range ws.Attrs {
			sd.Attrs = append(sd.Attrs, trace.Attr{K: a.K, V: a.V})
		}
		out[i] = sd
	}
	return out
}
