package cluster

import (
	"context"
	"testing"
	"time"

	"dassa/internal/faults"
	"dassa/internal/obs/trace"
	"dassa/internal/testutil/leakcheck"
	"dassa/internal/wire"
)

// tracedRun executes one coordinator request under a fresh trace and
// returns the completed TraceData.
func tracedRun(t *testing.T, co *Coordinator, req Request, timeout time.Duration) (*trace.TraceData, *Result, error) {
	t.Helper()
	store := trace.NewStore(4, 2)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	ctx, root := trace.New(ctx, store, "test", trace.NewID(), "test.run")
	res, err := co.Run(ctx, req)
	root.End()
	td := store.Get(trace.IDFrom(ctx))
	if td == nil {
		t.Fatal("trace not recorded after root End")
	}
	return td, res, err
}

// TestClusterTraceReassembly runs a healthy two-worker request and checks
// the coordinator reassembles one trace spanning all three processes:
// dispatch spans on the coordinator side, worker.shard spans shipped back
// from both named workers, and no orphaned parents.
func TestClusterTraceReassembly(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 16, 3)
	_, a1 := startWorker(t, WorkerConfig{Name: "worker-one"})
	_, a2 := startWorker(t, WorkerConfig{Name: "worker-two"})
	co := newCoord(t, []string{a1, a2}, nil)
	waitFor(t, 10*time.Second, func() bool { return co.healthyCount() == 2 })

	td, res, err := tracedRun(t, co, Request{View: v, Op: OpRead, Shards: 6}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 {
		t.Fatalf("want both workers used, got %d", res.Workers)
	}

	var dispatch, shard int
	procs := map[string]bool{}
	for _, sp := range td.Spans {
		procs[sp.Process] = true
		switch sp.Name {
		case "cluster.dispatch":
			dispatch++
		case "worker.shard":
			shard++
		}
	}
	if dispatch != 6 {
		t.Errorf("want 6 cluster.dispatch spans, got %d", dispatch)
	}
	if shard != 6 {
		t.Errorf("want 6 worker.shard spans shipped back, got %d", shard)
	}
	for _, proc := range []string{"test", "worker-one", "worker-two"} {
		if !procs[proc] {
			t.Errorf("no spans from process %q (have %v)", proc, procs)
		}
	}
	if orphans := td.Orphans(); len(orphans) != 0 {
		t.Errorf("reassembled trace has %d orphan spans: %v", len(orphans), orphans)
	}
}

// TestClusterTraceRedispatch kills one worker mid-request and checks the
// reassembled trace tells the failure story: at least one dispatch span
// ended in error and a later attempt carries the redispatch marker (or the
// shard degraded, which must then appear as a cluster.degrade span) — and
// the worker's death must not leave orphaned span fragments behind.
func TestClusterTraceRedispatch(t *testing.T) {
	leakcheck.Check(t)
	v, _ := makeView(t, 32, 3)
	slow := faults.New(faults.Config{Seed: 3, SlowProb: 1, SlowLatency: 80 * time.Millisecond})
	victim, a1 := startWorker(t, WorkerConfig{
		Name:   "victim",
		Faults: wire.FaultConfig{Injector: slow, Label: "victim"},
	})
	_, a2 := startWorker(t, WorkerConfig{Name: "survivor"})
	co := newCoord(t, []string{a1, a2}, func(c *Config) {
		c.MaxAttempts = 4
		c.DeadAfter = 500 * time.Millisecond
	})
	waitFor(t, 10*time.Second, func() bool { return co.healthyCount() == 2 })

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(60 * time.Millisecond)
		victim.Close()
	}()
	td, res, err := tracedRun(t, co, Request{View: v, Op: OpRead, Shards: 8}, 30*time.Second)
	<-done
	if err != nil {
		t.Fatalf("run with mid-request worker death failed: %v", err)
	}
	if res.Redispatched == 0 && res.DegradedShards == 0 {
		t.Skip("kill landed after all shards completed; nothing exercised (timing)")
	}

	var failedDispatch, redispatch, degrade int
	for _, sp := range td.Spans {
		switch sp.Name {
		case "cluster.dispatch":
			attrs := map[string]string{}
			for _, a := range sp.Attrs {
				attrs[a.K] = a.V
			}
			if sp.Status != "" && sp.Status != "ok" {
				failedDispatch++
			}
			if attrs["redispatch"] == "true" {
				redispatch++
			}
		case "cluster.degrade":
			degrade++
		}
	}
	if res.Redispatched > 0 && redispatch == 0 {
		t.Errorf("result reports %d redispatches but trace has no redispatch-marked span", res.Redispatched)
	}
	if res.DegradedShards > 0 && degrade == 0 {
		t.Errorf("result reports %d degraded shards but trace has no cluster.degrade span", res.DegradedShards)
	}
	if failedDispatch == 0 && redispatch > 0 {
		t.Errorf("trace shows redispatch but no failed dispatch span preceding it")
	}
	if orphans := td.Orphans(); len(orphans) != 0 {
		t.Errorf("trace has %d orphan spans after worker death: %v", len(orphans), orphans)
	}
}
