package bench

import (
	"fmt"
	"math"

	"dassa/internal/daslib"
)

// Table2Row is one DasLib function with its semantic check result.
type Table2Row struct {
	Function string
	Semantic string
	Pass     bool
	Detail   string
}

// RunTable2 validates Table II: every DasLib function listed in the paper,
// checked against its MATLAB-toolbox semantics on analytic cases. The unit
// tests in internal/daslib cover these far more deeply; this run prints a
// one-line certificate per function so the table is visible in bench
// output.
func RunTable2(o Options) ([]Table2Row, error) {
	w := o.out()
	var rows []Table2Row
	add := func(fn, sem string, pass bool, detail string) {
		rows = append(rows, Table2Row{Function: fn, Semantic: sem, Pass: pass, Detail: detail})
	}

	// Das_abscorr: |cos θ|.
	a := []float64{1, 2, 3}
	neg := []float64{-2, -4, -6}
	corr := daslib.AbsCorr(a, neg)
	add("Das_abscorr(c1,c2)", "|cos θ(c1,c2)|", math.Abs(corr-1) < 1e-12,
		fmt.Sprintf("anti-parallel vectors → %.6f", corr))

	// Das_detrend: removes the best straight-line fit.
	line := make([]float64, 64)
	for i := range line {
		line[i] = 3 - 0.25*float64(i)
	}
	resid := 0.0
	for _, v := range daslib.Detrend(line) {
		resid = math.Max(resid, math.Abs(v))
	}
	add("Das_detrend(X)", "removes best straight-line fit", resid < 1e-9,
		fmt.Sprintf("pure-line residue %.2g", resid))

	// Das_butter: -3 dB at the cutoff.
	b, ac, err := daslib.Butter(4, daslib.Lowpass, 0.3)
	if err != nil {
		return nil, err
	}
	g := daslib.FreqzMag(b, ac, 0.3)
	add("Das_butter(n,fc)", "Butterworth coefficients, -3dB at fc",
		math.Abs(g-math.Sqrt(0.5)) < 1e-6, fmt.Sprintf("|H(fc)| = %.6f", g))

	// Das_filtfilt: zero-phase filtering.
	rate := 200.0
	x := make([]float64, 1000)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 5 * float64(i) / rate)
	}
	y, err := daslib.FiltFilt(b, ac, x)
	if err != nil {
		return nil, err
	}
	maxd := 0.0
	for i := 300; i < 700; i++ {
		maxd = math.Max(maxd, math.Abs(y[i]-x[i]))
	}
	add("Das_filtfilt(c1,c2,X)", "zero-phase application of the filter",
		maxd < 1e-3, fmt.Sprintf("passband distortion %.2g", maxd))

	// Das_resample: rate change preserving in-band tones.
	tone := make([]float64, 2000)
	for i := range tone {
		tone[i] = math.Sin(2 * math.Pi * 4 * float64(i) / rate)
	}
	res, err := daslib.Resample(tone, 1, 2)
	if err != nil {
		return nil, err
	}
	maxd = 0.0
	for i := 100; i < 900; i++ {
		want := math.Sin(2 * math.Pi * 4 * float64(i) / (rate / 2))
		maxd = math.Max(maxd, math.Abs(res[i]-want))
	}
	add("Das_resample(X,1,R)", "samples X at the new rate", maxd < 5e-3,
		fmt.Sprintf("tone error %.2g", maxd))

	// Das_interp1: linear interpolation through the sample points.
	yi, err := daslib.Interp1([]float64{0, 1, 2}, []float64{0, 10, 0}, []float64{0.5, 1.5})
	if err != nil {
		return nil, err
	}
	add("Das_interp1(X0,Y0,X)", "linear interpolation f(X0)=Y0",
		yi[0] == 5 && yi[1] == 5, fmt.Sprintf("midpoints %v", yi))

	// Das_fft / Das_ifft: Parseval + inversion.
	sig := make([]float64, 128)
	for i := range sig {
		sig[i] = math.Cos(2*math.Pi*7*float64(i)/128) + 0.3
	}
	spec := daslib.FFTReal(sig)
	back := daslib.IFFTReal(spec)
	maxd = 0.0
	for i := range sig {
		maxd = math.Max(maxd, math.Abs(back[i]-sig[i]))
	}
	add("Das_fft/Das_ifft(X)", "DFT and exact inverse", maxd < 1e-9,
		fmt.Sprintf("round-trip error %.2g", maxd))

	hline(w, "Table II: DasLib function semantics")
	for _, r := range rows {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "%-24s %-42s %s (%s)\n", r.Function, r.Semantic, status, r.Detail)
	}
	for _, r := range rows {
		if !r.Pass {
			return rows, fmt.Errorf("bench: Table II semantic check failed: %s", r.Function)
		}
	}
	return rows, nil
}
