package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Experiment is one entry in the suite registry: a stable machine name, the
// human title RunAll prints, and a runner returning the experiment's typed
// rows. The text path (RunAll) and the JSON path (RunJSON) share this
// registry so they can never drift apart.
type Experiment struct {
	Name  string
	Title string
	Run   func(Options) (any, error)
}

// Experiments returns the suite in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table I (RCA vs VCA)", func(o Options) (any, error) { return RunTable1(o) }},
		{"table2", "Table II (DasLib semantics)", func(o Options) (any, error) { return RunTable2(o) }},
		{"kernels", "DasLib kernels (planned vs allocating)", func(o Options) (any, error) { return RunKernels(o) }},
		{"fig6", "Figure 6 (search & merge)", func(o Options) (any, error) { return RunFig6(o) }},
		{"fig7", "Figure 7 (read methods)", func(o Options) (any, error) { return RunFig7(o) }},
		{"fig8", "Figure 8 (hybrid vs MPI)", func(o Options) (any, error) { return RunFig8(o) }},
		{"fig9", "Figure 9 (DASSA vs MATLAB)", func(o Options) (any, error) { return RunFig9(o) }},
		{"fig10", "Figure 10 (event detection)", func(o Options) (any, error) { return RunFig10(o) }},
		{"fig11", "Figure 11 (scaling)", func(o Options) (any, error) { return RunFig11(o) }},
		{"ablation", "Ablations", func(o Options) (any, error) { return RunAblations(o) }},
		{"detectors", "Detector comparison", func(o Options) (any, error) { return RunDetectors(o) }},
		{"cluster", "Cluster fan-out (dassw loopback)", func(o Options) (any, error) { return RunCluster(o) }},
	}
}

// Lookup finds one experiment by machine name ("all" is not an experiment).
func Lookup(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// ParamsJSON records the knobs a run used, so a result file is
// self-describing.
type ParamsJSON struct {
	Channels     int     `json:"channels"`
	Files        int     `json:"files"`
	SampleRate   float64 `json:"sample_rate_hz"`
	FileSeconds  float64 `json:"file_seconds"`
	Seed         int64   `json:"seed"`
	Ranks        int     `json:"ranks"`
	Nodes        int     `json:"nodes"`
	CoresPerNode int     `json:"cores_per_node"`
}

// Record is one experiment's machine-readable result: its registry name,
// wall time, and the same typed rows the text tables are printed from.
type Record struct {
	Name   string `json:"name"`
	Title  string `json:"title"`
	WallMS int64  `json:"wall_ms"`
	Rows   any    `json:"rows"`
}

// Report is the top-level das_bench -json document.
type Report struct {
	Suite       string     `json:"suite"`
	Params      ParamsJSON `json:"params"`
	Experiments []Record   `json:"experiments"`
}

func (o Options) params() ParamsJSON {
	return ParamsJSON{
		Channels:     o.Channels,
		Files:        o.Files,
		SampleRate:   o.SampleRate,
		FileSeconds:  o.FileSeconds,
		Seed:         o.Seed,
		Ranks:        o.Ranks,
		Nodes:        o.Nodes,
		CoresPerNode: o.CoresPerNode,
	}
}

// RunJSON executes the named experiments ("all" or nil → the whole suite)
// and returns the machine-readable report. The experiments still print
// their text tables to o.Out; silence them with io.Discard.
func RunJSON(o Options, names ...string) (*Report, error) {
	var exps []Experiment
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		exps = Experiments()
	} else {
		for _, n := range names {
			e, ok := Lookup(n)
			if !ok {
				return nil, fmt.Errorf("bench: unknown experiment %q", n)
			}
			exps = append(exps, e)
		}
	}
	rep := &Report{Suite: "dassa-bench", Params: o.params()}
	for _, e := range exps {
		t0 := time.Now()
		rows, err := e.Run(o)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.Title, err)
		}
		rep.Experiments = append(rep.Experiments, Record{
			Name:   e.Name,
			Title:  e.Title,
			WallMS: time.Since(t0).Milliseconds(),
			Rows:   rows,
		})
	}
	return rep, nil
}

// WriteJSON renders a report with stable indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
