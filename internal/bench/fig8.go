package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"dassa/internal/arrayudf"
	"dassa/internal/dass"
	"dassa/internal/haee"
)

// Fig8Row is one (node count, mode) configuration of Figure 8.
type Fig8Row struct {
	Nodes        int
	Mode         haee.Mode
	OOM          bool
	MemPerNode   int64
	Opens        int64
	Reads        int64
	ReadModel    time.Duration // measured trace projected on the Cori model
	ComputeModel time.Duration // work-model compute wall (see workmodel.go)
	WriteWall    time.Duration // measured write of the single output array
	// Phases is the engine's measured per-rank breakdown (max across
	// ranks), the same decomposition the paper plots per rank.
	Phases PhasesJSON `json:"phases"`
}

// RunFig8 reproduces Figure 8: the original pure-MPI ArrayUDF versus the
// hybrid engine (HAEE) on the interferometry workload, sweeping node counts
// with a fixed total dataset. The paper's findings to reproduce: pure MPI
// runs out of memory at the smallest node count (the master channel is
// replicated per core), hybrid issues cores-per-node× fewer I/O calls, and
// write cost is identical.
func RunFig8(o Options) ([]Fig8Row, error) {
	w := o.out()
	cat, err := EnsureDataset(o)
	if err != nil {
		return nil, err
	}
	vcaPath := filepath.Join(o.DataDir, "fig8.vca.dasf")
	if _, err := dass.CreateVCA(vcaPath, cat.Entries()); err != nil {
		return nil, err
	}
	v, err := dass.OpenView(vcaPath)
	if err != nil {
		return nil, err
	}
	params := o.interferometry()
	_, nt := v.Shape()
	parts := params.Workload(nt)
	wl := haee.RowsWorkload{
		Spec:    arrayudf.Spec{},
		RowLen:  parts.RowLen,
		Prepare: parts.Prepare,
		UDF:     parts.UDF,
	}
	unit, nch, err := computeProbe(o, v)
	if err != nil {
		return nil, err
	}

	var nodeCounts []int
	for n := 2; n <= o.Nodes; n *= 2 {
		nodeCounts = append(nodeCounts, n)
	}
	if len(nodeCounts) == 0 {
		nodeCounts = []int{o.Nodes}
	}

	// Probe memory footprints (no cap) to choose a node-memory budget that
	// reproduces the paper's shape: the smallest pure-MPI case must not
	// fit, everything else must.
	probe := func(nodes int, mode haee.Mode) (haee.Report, error) {
		eng := haee.New(haee.Config{Nodes: nodes, CoresPerNode: o.CoresPerNode, Mode: mode})
		return eng.RunRows(v, wl, "")
	}
	mpiSmall, err := probe(nodeCounts[0], haee.PureMPI)
	if err != nil {
		return nil, err
	}
	var nextLargest int64
	if len(nodeCounts) > 1 {
		r, err := probe(nodeCounts[1], haee.PureMPI)
		if err != nil {
			return nil, err
		}
		nextLargest = r.MemPerNode
	}
	hybSmall, err := probe(nodeCounts[0], haee.Hybrid)
	if err != nil {
		return nil, err
	}
	if hybSmall.MemPerNode > nextLargest {
		nextLargest = hybSmall.MemPerNode
	}
	memCap := int64(0)
	if mpiSmall.MemPerNode > nextLargest {
		memCap = (mpiSmall.MemPerNode + nextLargest) / 2
	}

	var rows []Fig8Row
	for _, nodes := range nodeCounts {
		for _, mode := range []haee.Mode{haee.PureMPI, haee.Hybrid} {
			eng := haee.New(haee.Config{
				Nodes: nodes, CoresPerNode: o.CoresPerNode, Mode: mode,
				NodeMemoryBytes: memCap,
			})
			out := filepath.Join(o.DataDir, "fig8.out.dasf")
			rep, err := eng.RunRows(v, wl, out)
			if err != nil {
				return nil, err
			}
			workers := nodes * o.CoresPerNode
			row := Fig8Row{
				Nodes:        nodes,
				Mode:         mode,
				OOM:          rep.OOM,
				MemPerNode:   rep.MemPerNode,
				Opens:        rep.ReadTrace.Opens,
				Reads:        rep.ReadTrace.Reads,
				ReadModel:    o.Model.Project(rep.ReadTrace).Total(),
				ComputeModel: modeledWall(unit, nch, workers),
				WriteWall:    rep.WriteTime,
				Phases:       phasesOf(rep.Phases),
			}
			rows = append(rows, row)
		}
	}

	hline(w, "Figure 8: MPI ArrayUDF vs Hybrid ArrayUDF (HAEE)")
	fmt.Fprintf(w, "(compute = measured unit cost %v × max channels/worker; see workmodel.go)\n", unit.Round(time.Microsecond))
	fmt.Fprintf(w, "%6s %-7s %5s %12s %8s %8s %12s %12s %12s\n",
		"nodes", "mode", "OOM", "mem/node", "opens", "reads", "read(model)", "compute", "write")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %-7s %5v %12d %8d %8d %12v %12v %12v\n",
			r.Nodes, r.Mode, r.OOM, r.MemPerNode, r.Opens, r.Reads,
			r.ReadModel.Round(time.Microsecond), r.ComputeModel.Round(time.Microsecond),
			r.WriteWall.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "paper: pure MPI OOMs at 91 nodes; HAEE issues %dx fewer I/O calls; writes equal\n", o.CoresPerNode)
	return rows, nil
}
