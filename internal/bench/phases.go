package bench

import "dassa/internal/obs"

// PhasesJSON is the per-phase wall-clock breakdown embedded in benchmark
// rows: read / exchange / compute / write, each the maximum across ranks in
// milliseconds (the straggler defines the phase wall, as in Figs. 8–10).
// Phases a run never entered stay zero.
type PhasesJSON struct {
	ReadMS     float64 `json:"read_ms"`
	ExchangeMS float64 `json:"exchange_ms"`
	ComputeMS  float64 `json:"compute_ms"`
	WriteMS    float64 `json:"write_ms"`
}

// phasesOf flattens a span report into the row form.
func phasesOf(rep obs.PhaseReport) PhasesJSON {
	return PhasesJSON{
		ReadMS:     rep.Stat(obs.PhaseRead).MaxMS,
		ExchangeMS: rep.Stat(obs.PhaseExchange).MaxMS,
		ComputeMS:  rep.Stat(obs.PhaseCompute).MaxMS,
		WriteMS:    rep.Stat(obs.PhaseWrite).MaxMS,
	}
}
