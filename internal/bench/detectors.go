package bench

import (
	"fmt"
	"math"
	"sort"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/detect"
)

// DetectorRow is one (scenario, method) measurement of the detector
// comparison, using each method's deployment semantics: STA/LTA declares
// an event when any channel's ratio crosses the trigger threshold;
// local similarity declares the regions its event scan finds. Contrast is
// the method's raw statistic (max/median) for reference.
type DetectorRow struct {
	Scenario string
	Method   string
	Events   int
	Contrast float64
}

// RunDetectors compares the classical single-channel STA/LTA trigger with
// the paper's local-similarity detector (Algorithm 2, from ref [18]) on
// two scenarios: incoherent single-channel bursts (instrument glitches /
// local noise — should NOT trigger) and a coherent earthquake (should).
// The headline numbers are the declared events per scenario: STA/LTA
// fires on any energy burst, so it false-triggers on the glitches, while
// local similarity requires cross-channel coherence and declares only the
// earthquake — which is why the paper's case study uses it.
func RunDetectors(o Options) ([]DetectorRow, error) {
	w := o.out()
	base := dasgen.Config{
		Channels: 32, SampleRate: o.SampleRate, FileSeconds: 20, NumFiles: 1,
		Seed: o.Seed, NoiseAmp: 0.5,
	}

	// Scenario A: five strong single-channel glitch bursts.
	var burstEvents []dasgen.Event
	for b := 0; b < 5; b++ {
		burstEvents = append(burstEvents, dasgen.Glitch{
			Channel: 5 + 4*b, StartSec: 2 + 3*float64(b), DurSec: 0.5, Amp: 6,
		})
	}
	bursts, err := dasgen.GenerateFileArray(base, burstEvents, 0)
	if err != nil {
		return nil, err
	}

	// Scenario B: one coherent earthquake.
	quakeEvents := []dasgen.Event{dasgen.Earthquake{
		OriginSec: 10, EpicenterChannel: 16,
		PVel: 300, SVel: 100, Amp: 6, FreqHz: 6, DurSec: 1.5,
	}}
	quake, err := dasgen.GenerateFileArray(base, quakeEvents, 0)
	if err != nil {
		return nil, err
	}

	stalta := detect.STALTAParams{
		STASamples: max(int(base.SampleRate/5), 2),
		LTASamples: int(4 * base.SampleRate),
		Stride:     5,
	}
	simi := detect.LocalSimiParams{
		M: int(base.SampleRate / 4), K: 1, L: 4, Stride: 5,
	}
	if err := stalta.Validate(); err != nil {
		return nil, err
	}
	if err := simi.Validate(); err != nil {
		return nil, err
	}

	// STA/LTA deployment: a channel whose ratio crosses the trigger
	// threshold declares an event (per-station triggering).
	const staltaTrigger = 8.0
	staltaStat := func(data *dasf.Array2D) (int, float64) {
		events := 0
		var all []float64
		for ch := 0; ch < data.Channels; ch++ {
			r := stalta.Ratio(data.Row(ch))
			if detect.MaxRatio(r) > staltaTrigger {
				events++
			}
			all = append(all, r...)
		}
		return events, contrast(all)
	}
	// Local similarity deployment: scan the similarity map for coherent
	// regions (what Figure 10 does).
	simiStat := func(data *dasf.Array2D) (int, float64) {
		blk := arrayudf.Block{Data: data, ChLo: 0, ChHi: data.Channels}
		udf := simi.UDF()
		outT := (data.Samples + simi.Stride - 1) / simi.Stride
		sim := dasf.NewArray2D(data.Channels, outT)
		var all []float64
		for ch := 0; ch < data.Channels; ch++ {
			for i := 0; i < outT; i++ {
				v := udf(blk.Stencil(ch, i*simi.Stride))
				sim.Set(ch, i, v)
				all = append(all, v)
			}
		}
		// Statistical exceedances alone would flag noise blips (any 2.5σ
		// scan fires occasionally); a coherent event additionally drives
		// the mean similarity toward 1, so declare only regions whose peak
		// clears an absolute coherence floor.
		const coherenceFloor = 0.7
		events := 0
		for _, r := range detect.FindEventsBanded(sim, 2.5, data.Channels/4) {
			if r.Peak >= coherenceFloor {
				events++
			}
		}
		return events, contrast(all)
	}

	burstEventsS, burstC := staltaStat(bursts)
	burstEventsL, burstCL := simiStat(bursts)
	quakeEventsS, quakeC := staltaStat(quake)
	quakeEventsL, quakeCL := simiStat(quake)
	rows := []DetectorRow{
		{"incoherent bursts", "STA/LTA", burstEventsS, burstC},
		{"incoherent bursts", "local similarity", burstEventsL, burstCL},
		{"coherent earthquake", "STA/LTA", quakeEventsS, quakeC},
		{"coherent earthquake", "local similarity", quakeEventsL, quakeCL},
	}

	hline(w, "Detector comparison: STA/LTA vs local similarity (extension)")
	fmt.Fprintf(w, "%-20s %-18s %8s %10s\n", "scenario", "method", "events", "contrast")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-18s %8d %10.2f\n", r.Scenario, r.Method, r.Events, r.Contrast)
	}
	fmt.Fprintf(w, "STA/LTA triggers on the incoherent bursts (false positives); local similarity\n")
	fmt.Fprintf(w, "requires cross-channel coherence and stays quiet — ref [18]'s motivation.\n")
	return rows, nil
}

// contrast returns max / median of the statistic series. The median is the
// background estimate: an event can occupy several percent of the samples
// (a quake sweeping every channel), which would contaminate a high
// percentile but not the median.
func contrast(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	maxV := sorted[len(sorted)-1]
	if med <= 0 {
		return math.Inf(1)
	}
	return maxV / med
}

// eventsOf returns the declared-event count for (scenario, method).
func eventsOf(rows []DetectorRow, scenario, method string) int {
	for _, r := range rows {
		if r.Scenario == scenario && r.Method == method {
			return r.Events
		}
	}
	return -1
}
