package bench

import "testing"

func TestAblations(t *testing.T) {
	o := testOptions(t)
	res, err := RunAblations(o)
	if err != nil {
		t.Fatal(err)
	}
	// Removing ghost zones must corrupt partition-boundary cells whenever
	// the array is actually split.
	for p, errs := range res.GhostErrors {
		if p > 1 && errs == 0 {
			t.Errorf("ghost ablation at %d ranks produced no boundary errors — ghosts would be pointless", p)
		}
	}
	// On skewed work the dynamic schedule balances better than static.
	if res.DynamicImbalance >= res.StaticImbalance {
		t.Errorf("dynamic imbalance %.3f should beat static %.3f on skewed work",
			res.DynamicImbalance, res.StaticImbalance)
	}
	if res.StaticImbalance < 1 || res.DynamicImbalance < 1 {
		t.Error("imbalance ratios below 1 are impossible")
	}
	// Burst buffer must improve large-scale strong I/O efficiency (§VI.E).
	if res.BBIOEffAtMax <= res.DiskIOEffAtMax {
		t.Errorf("burst buffer efficiency %.1f%% should beat disk %.1f%%",
			res.BBIOEffAtMax, res.DiskIOEffAtMax)
	}
	// The tuner must return a feasible suggestion.
	if !res.TunerBest.Feasible || res.TunerBest.Nodes < 1 {
		t.Errorf("tuner suggestion invalid: %+v", res.TunerBest)
	}
	if res.MergeAppend <= 0 || res.MergeLocked <= 0 {
		t.Error("merge timings missing")
	}
}

func TestAblationEngineReadStrategy(t *testing.T) {
	o := testOptions(t)
	res, err := RunAblations(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineOpensCommAvoid >= res.EngineOpensIndependent {
		t.Errorf("comm-avoiding strategy opens (%d) should be below independent (%d)",
			res.EngineOpensCommAvoid, res.EngineOpensIndependent)
	}
}
