package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"dassa/internal/cluster"
	"dassa/internal/core"
	"dassa/internal/dass"
)

// ClusterRow is one execution-layout measurement of the distributed
// detection comparison: the same local-similarity job run in process and
// fanned out over loopback dassw workers.
type ClusterRow struct {
	Layout   string        `json:"layout"`
	Workers  int           `json:"workers"`
	Shards   int           `json:"shards"`
	Wall     time.Duration `json:"wall_ns"`
	Degraded bool          `json:"degraded"`
}

// RunCluster measures the distributed execution subsystem against the
// in-process engine on the standard dataset's local-similarity workload.
// Loopback TCP on one machine cannot show real scale-out (every worker
// shares the same cores and page cache); what the experiment verifies is
// the coordination overhead — wire framing, shard dispatch, halo re-reads
// and the NaN-merge — which is the part the paper's Figure 11 numbers
// assume is negligible.
func RunCluster(o Options) ([]ClusterRow, error) {
	w := o.out()
	cat, err := EnsureDataset(o)
	if err != nil {
		return nil, err
	}
	v, err := dass.ViewOver(cat.Entries())
	if err != nil {
		return nil, err
	}
	p := core.DefaultLocalSimi(o.SampleRate).LocalSimiParams

	var rows []ClusterRow

	// Baseline: the in-process engine at the same core budget.
	fw := core.New(core.Config{Nodes: 1, CoresPerNode: o.CoresPerNode, FailPolicy: dass.FailDegrade})
	t0 := time.Now()
	_, rep, err := fw.Apply(v, p.Spec().GhostChannels, p.Spec().TimeStride, p.UDF(), "")
	if err != nil {
		return nil, err
	}
	rows = append(rows, ClusterRow{
		Layout: "in-process", Workers: 0, Shards: 1,
		Wall: time.Since(t0), Degraded: rep.Quality.Degraded(),
	})

	for _, n := range []int{2, 4} {
		row, err := runClusterLayout(v, o, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	hline(w, "Cluster fan-out (local similarity, loopback workers)")
	fmt.Fprintf(w, "%-12s %8s %8s %12s %10s\n", "layout", "workers", "shards", "wall", "degraded")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %8d %12v %10v\n",
			r.Layout, r.Workers, r.Shards, r.Wall.Round(time.Millisecond), r.Degraded)
	}
	return rows, nil
}

// runClusterLayout spins up n loopback workers, runs the job through a
// coordinator, and tears everything down.
func runClusterLayout(v *dass.View, o Options, n int) (ClusterRow, error) {
	var addrs []string
	var workers []*cluster.Worker
	// Defers run LIFO: Close severs every listener first, then Wait joins
	// the serve goroutines before the bench row is returned.
	var wg sync.WaitGroup
	defer wg.Wait()
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return ClusterRow{}, err
		}
		w := cluster.NewWorker(cluster.WorkerConfig{
			Cores:          max(o.CoresPerNode/n, 1),
			HeartbeatEvery: 200 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Serve(ln)
		}()
		workers = append(workers, w)
		addrs = append(addrs, ln.Addr().String())
	}
	co, err := cluster.NewCoordinator(cluster.Config{
		Workers:        addrs,
		HeartbeatEvery: 200 * time.Millisecond,
		FailPolicy:     dass.FailDegrade,
	})
	if err != nil {
		return ClusterRow{}, err
	}
	defer co.Close()
	p := core.DefaultLocalSimi(o.SampleRate).LocalSimiParams
	res, err := co.Run(context.Background(), cluster.Request{
		View: v, Op: cluster.OpLocalSimi, Rate: o.SampleRate, LocalSimi: p,
	})
	if err != nil {
		return ClusterRow{}, err
	}
	return ClusterRow{
		Layout:  fmt.Sprintf("%d-worker", n),
		Workers: res.Workers, Shards: res.Shards,
		Wall: res.Wall, Degraded: res.Degraded(),
	}, nil
}
