package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"dassa/internal/daslib"
)

// KernelRow compares one DasLib kernel's allocating API against its
// planned destination-passing form: per-op wall time for both, the
// speedup, and the planned path's allocations per op (the contract is 0
// after warm-up; TestPlannedPathsAllocFree enforces it in CI, this row
// tracks it in BENCH_*.json).
type KernelRow struct {
	Kernel        string
	N             int
	AllocNS       int64   `json:"alloc_ns_op"`
	PlannedNS     int64   `json:"planned_ns_op"`
	Speedup       float64 `json:"speedup"`
	PlannedAllocs float64 `json:"planned_allocs_op"`
}

// measureKernel times fn per op and counts heap allocations per op. One
// warm-up call populates the plan caches and grows the scratch free lists
// before anything is counted.
func measureKernel(fn func(), reps int) (perOp time.Duration, allocsPerOp float64) {
	fn()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	return wall / time.Duration(reps), float64(after.Mallocs-before.Mallocs) / float64(reps)
}

// RunKernels measures the zero-allocation kernel layer: FFT plans, the
// packed real transform, filtfilt/resample into scratch, and the prepared
// master-spectrum correlation — each against the allocating API it shims.
// The planned column is what the engine's per-thread workers actually run.
func RunKernels(o Options) ([]KernelRow, error) {
	w := o.out()
	const reps = 30
	scr := daslib.NewScratch()

	sig := func(n int) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2*math.Pi*7*float64(i)/64) + 0.3*math.Cos(2*math.Pi*0.11*float64(i))
		}
		return x
	}

	var rows []KernelRow
	add := func(kernel string, n int, alloc, planned func()) {
		an, _ := measureKernel(alloc, reps)
		pn, pallocs := measureKernel(planned, reps)
		rows = append(rows, KernelRow{
			Kernel: kernel, N: n,
			AllocNS: an.Nanoseconds(), PlannedNS: pn.Nanoseconds(),
			Speedup:       float64(an.Nanoseconds()) / math.Max(1, float64(pn.Nanoseconds())),
			PlannedAllocs: pallocs,
		})
	}

	// Real-input FFT, power-of-two (radix-2) and odd (Bluestein) lengths.
	for _, n := range []int{4096, 1000} {
		x := sig(n)
		cdst := make([]complex128, n)
		add("FFTReal->RFFTInto", n,
			func() { daslib.FFTReal(x) },
			func() { daslib.RFFTInto(cdst, x, scr) })
	}

	// Zero-phase bandpass on a typical preprocessed window.
	{
		n := 4096
		x := sig(n)
		b, a, err := daslib.Butter(4, daslib.Bandpass, 0.05, 0.4)
		if err != nil {
			return nil, err
		}
		fp, err := daslib.NewFilterPlan(b, a)
		if err != nil {
			return nil, err
		}
		dst := make([]float64, n)
		add("FiltFilt->FiltFiltInto", n,
			func() {
				if _, err := daslib.FiltFilt(b, a, x); err != nil {
					panic(err)
				}
			},
			func() {
				if err := fp.FiltFiltInto(dst, x, scr); err != nil {
					panic(err)
				}
			})
	}

	// Polyphase rational resample 1:4.
	{
		n := 4096
		x := sig(n)
		dst := make([]float64, daslib.ResampleLen(n, 1, 4))
		add("Resample->ResampleInto", n,
			func() {
				if _, err := daslib.Resample(x, 1, 4); err != nil {
					panic(err)
				}
			},
			func() {
				if err := daslib.ResampleInto(dst, x, 1, 4, scr); err != nil {
					panic(err)
				}
			})
	}

	// Normalized cross-correlation against a prepared master spectrum —
	// the per-channel inner loop of both case studies.
	{
		n := 4096
		x := sig(n)
		mst := daslib.PrepareXCorrMaster(x, n)
		corr := make([]float64, daslib.XCorrLen(n, n))
		add("XCorrNormalized->Master", n,
			func() { daslib.XCorrNormalized(x, x) },
			func() { mst.XCorrNormalizedInto(corr, x, scr) })
	}

	hline(w, "DasLib kernels: allocating API vs planned paths")
	fmt.Fprintf(w, "%-26s %6s %12s %12s %8s %10s\n", "kernel", "n", "alloc/op", "planned/op", "speedup", "allocs/op")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %6d %12v %12v %7.2fx %10.1f\n",
			r.Kernel, r.N, time.Duration(r.AllocNS), time.Duration(r.PlannedNS), r.Speedup, r.PlannedAllocs)
	}
	for _, r := range rows {
		if r.PlannedAllocs > 0.5 {
			return rows, fmt.Errorf("bench: planned path %s allocates %.1f/op, want 0", r.Kernel, r.PlannedAllocs)
		}
	}
	return rows, nil
}
