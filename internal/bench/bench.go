// Package bench regenerates every table and figure of the DASSA paper's
// evaluation (§VI) at laptop scale: it generates a synthetic DAS dataset,
// runs the real storage and analysis code paths, measures wall-clock and
// operation traces, and projects the traces onto a Cori-like hardware model
// so the paper-scale shapes (who wins, by roughly what factor) can be
// compared directly. EXPERIMENTS.md records paper-vs-measured for each.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/pfs"
)

// Options configures the whole experiment suite.
type Options struct {
	// DataDir holds the generated dataset; reused across experiments when
	// it already contains the right series.
	DataDir string
	// Channels/Files/SampleRate/FileSeconds size the synthetic acquisition
	// (scaled-down stand-ins for the paper's 11648 channels × 2880 files).
	Channels    int
	Files       int
	SampleRate  float64
	FileSeconds float64
	Seed        int64
	// Ranks is the parallel width for read experiments (paper: 90).
	Ranks int
	// Nodes/CoresPerNode size the Figure 8/11 sweeps; sweeps use powers of
	// two up to Nodes.
	Nodes        int
	CoresPerNode int
	// Model projects traces to paper-scale hardware.
	Model pfs.Model
	// Out receives the printed tables (default os.Stdout).
	Out io.Writer
}

// Defaults returns a configuration that completes in seconds on a laptop
// while exercising every code path the paper's experiments exercise.
func Defaults() Options {
	return Options{
		DataDir:      filepath.Join(os.TempDir(), "dassa-bench"),
		Channels:     96,
		Files:        24,
		SampleRate:   100,
		FileSeconds:  4,
		Seed:         20200518, // IPDPS 2020 conference date
		Ranks:        6,
		Nodes:        8,
		CoresPerNode: 4,
		Model:        pfs.CoriLike(),
		Out:          os.Stdout,
	}
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return os.Stdout
	}
	return o.Out
}

func (o Options) genConfig() dasgen.Config {
	return dasgen.Config{
		Channels:    o.Channels,
		SampleRate:  o.SampleRate,
		FileSeconds: o.FileSeconds,
		NumFiles:    o.Files,
		Seed:        o.Seed,
		DType:       dasf.Float32,
	}
}

// interferometry returns the workload parameters used as the paper's
// default experiment driver (Algorithm 3).
func (o Options) interferometry() detect.InterferometryParams {
	return detect.InterferometryParams{
		Rate:          o.SampleRate,
		FilterOrder:   3,
		CutoffHz:      o.SampleRate / 8,
		ResampleP:     1,
		ResampleQ:     2,
		MasterChannel: 0,
		MaxLag:        64,
	}
}

// EnsureDataset generates the synthetic series (if not already present)
// and returns its catalog. The raw series lives in DataDir/raw so that
// merged arrays and experiment outputs written next to it never pollute
// rescans. The Fig. 10 event mix is always planted so the same dataset
// serves every experiment.
func EnsureDataset(o Options) (*dass.Catalog, error) {
	cfg := o.genConfig()
	rawDir := filepath.Join(o.DataDir, "raw")
	marker := filepath.Join(rawDir, fmt.Sprintf(".dassa-%d-%d-%d", o.Channels, o.Files, o.Seed))
	if _, err := os.Stat(marker); err != nil {
		if err := os.RemoveAll(o.DataDir); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		if _, err := dasgen.Generate(rawDir, cfg, dasgen.Fig10Events(cfg)); err != nil {
			return nil, err
		}
		if err := os.WriteFile(marker, []byte("ok"), 0o644); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
	}
	return dass.ScanDir(rawDir)
}

// timeIt measures f's wall time.
func timeIt(f func() error) (time.Duration, error) {
	t0 := time.Now()
	err := f()
	return time.Since(t0), err
}

// hline prints a section rule.
func hline(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// RunAll executes every registered experiment in paper order.
func RunAll(o Options) error {
	for _, e := range Experiments() {
		if _, err := e.Run(o); err != nil {
			return fmt.Errorf("bench: %s: %w", e.Title, err)
		}
	}
	return nil
}
