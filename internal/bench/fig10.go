package bench

import (
	"fmt"
	"path/filepath"

	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/haee"
)

// Fig10Event is one detected region of the local-similarity map, with a
// classification derived from its geometry.
type Fig10Event struct {
	detect.Region
	// Class is "earthquake" (wide channel span), "vehicle" (localized,
	// transient), or "vibration" (localized, persistent).
	Class string
	// StartSec/EndSec convert the strided output indices back to seconds.
	StartSec, EndSec float64
}

// RunFig10 reproduces Figure 10: the local-similarity map (Algorithm 2)
// over a record with two moving vehicles, one earthquake, and a persistent
// vibration, computed with HAEE and scanned for events. The planted events
// are known, so the detections are verified, not just displayed.
func RunFig10(o Options) ([]Fig10Event, error) {
	w := o.out()
	cat, err := EnsureDataset(o)
	if err != nil {
		return nil, err
	}
	vcaPath := filepath.Join(o.DataDir, "fig10.vca.dasf")
	if _, err := dass.CreateVCA(vcaPath, cat.Entries()); err != nil {
		return nil, err
	}
	v, err := dass.OpenView(vcaPath)
	if err != nil {
		return nil, err
	}

	params := detect.LocalSimiParams{
		M: int(o.SampleRate / 4), K: 1, L: 4,
		Stride: int(o.SampleRate / 5),
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	eng := haee.New(haee.Config{Nodes: 2, CoresPerNode: o.CoresPerNode, Mode: haee.Hybrid})
	rep, err := eng.RunPoints(v, haee.PointsWorkload{Spec: params.Spec(), UDF: params.UDF()}, "")
	if err != nil {
		return nil, err
	}
	sim := rep.Output

	nch, _ := v.Shape()
	regions := detect.FindEventsBanded(sim, 1.5, max(nch/8, 4))
	totalSec := o.FileSeconds * float64(o.Files)
	secPerIdx := totalSec / float64(sim.Samples)
	var events []Fig10Event
	for _, r := range regions {
		ev := Fig10Event{
			Region:   r,
			StartSec: float64(r.TLo) * secPerIdx,
			EndSec:   float64(r.THi) * secPerIdx,
		}
		span := r.ChHi - r.ChLo
		dur := ev.EndSec - ev.StartSec
		switch {
		case span > nch/2:
			ev.Class = "earthquake"
		case dur > 0.5*totalSec:
			ev.Class = "vibration"
		default:
			ev.Class = "vehicle"
		}
		events = append(events, ev)
	}

	hline(w, "Figure 10: events in the local-similarity map")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %8s\n", "class", "t0(s)", "t1(s)", "chLo", "chHi", "peak")
	for _, e := range events {
		fmt.Fprintf(w, "%-12s %10.1f %10.1f %10d %10d %8.3f\n",
			e.Class, e.StartSec, e.EndSec, e.ChLo, e.ChHi, e.Peak)
	}
	fmt.Fprintf(w, "planted: 2 vehicles, 1 earthquake (t≈%.1fs), 1 persistent vibration\n", 0.42*totalSec)
	return events, nil
}
