package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"dassa/internal/haee"
)

// testOptions returns a tiny configuration so the full suite runs in
// seconds inside CI.
func testOptions(t *testing.T) Options {
	t.Helper()
	o := Defaults()
	o.DataDir = filepath.Join(t.TempDir(), "data")
	o.Channels = 24
	o.Files = 6
	o.SampleRate = 50
	o.FileSeconds = 2
	o.Ranks = 3
	o.Nodes = 4
	o.CoresPerNode = 4
	o.Out = &bytes.Buffer{}
	return o
}

func TestTable1Shapes(t *testing.T) {
	o := testOptions(t)
	rows, err := RunTable1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Table I has %d rows", len(rows))
	}
	rca, vca := rows[0], rows[1]
	if rca.Scheme != "RCA" || vca.Scheme != "VCA" {
		t.Fatal("row order wrong")
	}
	// Paper: RCA ≈100% extra space, VCA ≈0%.
	if rca.ExtraSpacePct < 90 {
		t.Errorf("RCA extra space = %.1f%%, want ≈100%%", rca.ExtraSpacePct)
	}
	if vca.ExtraSpacePct > 1 {
		t.Errorf("VCA extra space = %.2f%%, want ≈0%%", vca.ExtraSpacePct)
	}
	if vca.ConstructionTime >= rca.ConstructionTime {
		t.Errorf("VCA construction (%v) should beat RCA (%v)", vca.ConstructionTime, rca.ConstructionTime)
	}
}

func TestTable2AllPass(t *testing.T) {
	rows, err := RunTable2(testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 7 {
		t.Fatalf("Table II has only %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Pass {
			t.Errorf("%s failed: %s", r.Function, r.Detail)
		}
	}
}

func TestFig6VCABeatsRCAEverywhere(t *testing.T) {
	o := testOptions(t)
	rows, err := RunFig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("Fig6 produced %d rows", len(rows))
	}
	for _, r := range rows {
		if r.VCATime >= r.RCATime {
			t.Errorf("files=%d: VCA (%v) not faster than RCA (%v)", r.Files, r.VCATime, r.RCATime)
		}
		if r.VCABytes >= r.RCABytes/10 {
			t.Errorf("files=%d: VCA size %d not tiny vs RCA %d", r.Files, r.VCABytes, r.RCABytes)
		}
	}
	// RCA data volume grows with file count (time at this scale is too
	// noisy to assert on); VCA stays metadata-sized.
	first, last := rows[0], rows[len(rows)-1]
	if last.RCABytes <= first.RCABytes {
		t.Errorf("RCA bytes should grow with files: %d → %d", first.RCABytes, last.RCABytes)
	}
	if last.VCABytes > 8*first.VCABytes {
		t.Errorf("VCA bytes grew too fast: %d → %d", first.VCABytes, last.VCABytes)
	}
}

func TestFig7CommAvoidingWinsAtPaperScale(t *testing.T) {
	o := testOptions(t)
	rows, err := RunFig7(o)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig7Row{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	coll := byName["collective-per-file"]
	avoid := byName["communication-avoiding"]
	rca := byName["RCA (incl. creation)"]
	// Op-count shapes (measured exactly).
	if coll.Trace.Broadcasts != int64(o.Files) {
		t.Errorf("collective broadcasts = %d, want %d", coll.Trace.Broadcasts, o.Files)
	}
	if avoid.Trace.Broadcasts != 0 {
		t.Errorf("comm-avoiding broadcasts = %d, want 0", avoid.Trace.Broadcasts)
	}
	// Paper-scale projections: comm-avoiding beats both.
	if avoid.PaperScale >= coll.PaperScale {
		t.Errorf("comm-avoiding (%v) should beat collective-per-file (%v) at paper scale",
			avoid.PaperScale, coll.PaperScale)
	}
	if avoid.PaperScale >= rca.PaperScale {
		t.Errorf("comm-avoiding (%v) should beat RCA incl. creation (%v) at paper scale",
			avoid.PaperScale, rca.PaperScale)
	}
	if ratio := float64(coll.PaperScale) / float64(avoid.PaperScale); ratio < 4 {
		t.Errorf("paper-scale speedup = %.1fx, want > 4x (paper: ≈37x)", ratio)
	}
}

func TestFig8Shapes(t *testing.T) {
	o := testOptions(t)
	rows, err := RunFig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("Fig8 produced %d rows", len(rows))
	}
	// Pair up per node count.
	for i := 0; i < len(rows); i += 2 {
		mpiRow, hybRow := rows[i], rows[i+1]
		if mpiRow.Mode != haee.PureMPI || hybRow.Mode != haee.Hybrid {
			t.Fatal("row order wrong")
		}
		if hybRow.Opens >= mpiRow.Opens {
			t.Errorf("nodes=%d: hybrid opens (%d) should be < MPI opens (%d)",
				hybRow.Nodes, hybRow.Opens, mpiRow.Opens)
		}
		if hybRow.MemPerNode >= mpiRow.MemPerNode {
			t.Errorf("nodes=%d: hybrid memory (%d) should be < MPI memory (%d)",
				hybRow.Nodes, hybRow.MemPerNode, mpiRow.MemPerNode)
		}
		if hybRow.OOM {
			t.Errorf("nodes=%d: hybrid must not OOM", hybRow.Nodes)
		}
	}
	// The paper's headline: pure MPI OOMs at the smallest scale only.
	if !rows[0].OOM {
		t.Error("smallest pure-MPI case should OOM (master-channel duplication)")
	}
	for i := 2; i < len(rows); i += 2 {
		if rows[i].OOM {
			t.Errorf("nodes=%d pure MPI should fit", rows[i].Nodes)
		}
	}
}

func TestFig9BaselineSlower(t *testing.T) {
	o := testOptions(t)
	rows, err := RunFig9(o)
	if err != nil {
		t.Fatal(err)
	}
	bl, ds := rows[0], rows[1]
	if ds.ComputeModel >= bl.ComputeModel {
		t.Errorf("modeled 12-core DASSA compute (%v) should beat baseline (%v)",
			ds.ComputeModel, bl.ComputeModel)
	}
	// The ratio is scale-dependent: at this tiny test size the fixed
	// interpreter dispatch overhead dominates the (fast) kernels, inflating
	// it well past the paper's 16× (the default bench scale lands at
	// 15-25×), and the planned zero-allocation kernel path widens it
	// further. The band only guards against absurd values.
	if ratio := float64(bl.ComputeModel) / float64(ds.ComputeModel); ratio < 5 || ratio > 150 {
		t.Errorf("modeled speedup = %.1fx, want a sane multiple of the core count (5-150)", ratio)
	}
	// The serial measurement alone must already show the interpreter tax.
	if bl.ComputeWall <= ds.ComputeWall {
		t.Errorf("baseline serial compute (%v) should exceed DASSA serial (%v) due to dispatch overhead",
			bl.ComputeWall, ds.ComputeWall)
	}
}

func TestFig10FindsPlantedEvents(t *testing.T) {
	o := testOptions(t)
	// Use a slightly longer record so the events separate in time.
	o.Files = 8
	events, err := RunFig10(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events detected")
	}
	classes := map[string]int{}
	for _, e := range events {
		classes[e.Class]++
	}
	if classes["earthquake"] == 0 {
		t.Errorf("earthquake not detected; classes: %v", classes)
	}
}

func TestFig11Shapes(t *testing.T) {
	o := testOptions(t)
	res, err := RunFig11(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strong) < 3 || len(res.Weak) < 3 {
		t.Fatal("scaling series too short")
	}
	// The measured access pattern: read requests grow with workers.
	if len(res.MeasuredOps) < 2 {
		t.Fatal("no measured ops series")
	}
	for i := 1; i < len(res.MeasuredOps); i++ {
		if res.MeasuredOps[i].ReadOpsTotal <= res.MeasuredOps[i-1].ReadOpsTotal {
			t.Errorf("measured read ops should grow with workers: %d workers → %d ops",
				res.MeasuredOps[i].Workers, res.MeasuredOps[i].ReadOpsTotal)
		}
	}
	// Compute efficiency stays high (balanced partitioning).
	for _, r := range res.Strong[1:] {
		if r.ComputeEff < 70 {
			t.Errorf("strong compute efficiency at %d nodes = %.1f%%, want ≥70%%", r.Workers, r.ComputeEff)
		}
	}
	for _, r := range res.Weak[1:] {
		if r.ComputeEff < 70 {
			t.Errorf("weak compute efficiency at %d nodes = %.1f%%", r.Workers, r.ComputeEff)
		}
	}
	// I/O efficiency trends downward at both scalings (the paper's shape).
	lastStrong := res.Strong[len(res.Strong)-1]
	if lastStrong.IOEff >= 90 {
		t.Errorf("strong I/O efficiency at %d nodes = %.1f%%, expected decay", lastStrong.Workers, lastStrong.IOEff)
	}
	lastWeak := res.Weak[len(res.Weak)-1]
	if lastWeak.IOEff >= res.Weak[1].IOEff+5 {
		t.Errorf("weak I/O efficiency should not improve with nodes: %.1f%% → %.1f%%",
			res.Weak[1].IOEff, lastWeak.IOEff)
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	o := testOptions(t)
	var buf bytes.Buffer
	o.Out = &buf
	if err := RunAll(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I", "Table II", "Figure 6", "Figure 7", "Figure 8",
		"Figure 9", "Figure 10", "Figure 11",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}
