package bench

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/haee"
	"dassa/internal/mpi"
	"dassa/internal/omp"
	"dassa/internal/pfs"
)

// AblationResult collects the design-choice ablations DESIGN.md calls out.
type AblationResult struct {
	// GhostErrors[p] counts output cells that differ from the serial
	// reference when the stencil's ghost zone is removed, per rank count.
	// With ghosts the count is asserted zero.
	GhostErrors map[int]int
	// ScheduleImbalance is the max/mean per-thread work ratio of the
	// static vs dynamic schedule on a skewed workload.
	StaticImbalance  float64
	DynamicImbalance float64
	// MergeAppend and MergeLocked time Algorithm 1's prefix-merge against
	// a mutex-guarded shared vector.
	MergeAppend time.Duration
	MergeLocked time.Duration
	// StorageIOEff compares strong-scaling I/O efficiency at the largest
	// node count under the disk model vs the burst-buffer model (§VI.E).
	DiskIOEffAtMax float64
	BBIOEffAtMax   float64
	// TunerBest is the layout the auto-tuner picks for a paper-scale run.
	TunerBest haee.Layout
	// EngineOpens compare block-loading strategies at fixed rank count.
	EngineOpensIndependent int64
	EngineOpensCommAvoid   int64
}

// RunAblations measures the design choices the paper (and DESIGN.md)
// credits for DASSA's performance: ghost zones, the static ApplyMT
// schedule, the per-thread-vector merge, and disk vs burst-buffer storage,
// plus the future-work auto-tuner.
func RunAblations(o Options) (AblationResult, error) {
	w := o.out()
	var res AblationResult
	cat, err := EnsureDataset(o)
	if err != nil {
		return res, err
	}
	vcaPath := filepath.Join(o.DataDir, "ablation.vca.dasf")
	if _, err := dass.CreateVCA(vcaPath, cat.Entries()); err != nil {
		return res, err
	}
	v, err := dass.OpenView(vcaPath)
	if err != nil {
		return res, err
	}
	nch, _ := v.Shape()

	hline(w, "Ablations")

	// --- Ghost zones: without them, stencil reads clamp at block edges and
	// partition-boundary cells silently change value.
	params := detect.LocalSimiParams{M: 8, K: 1, L: 2, Stride: 10}
	reference := func(ghost int, ranks int) (*dasf.Array2D, error) {
		spec := params.Spec()
		spec.GhostChannels = ghost
		var out *dasf.Array2D
		_, err := mpi.Run(ranks, func(c *mpi.Comm) {
			r := arrayudf.Apply(c, v, spec, params.UDF())
			if g := arrayudf.Gather(c, nch, r); g != nil {
				out = g
			}
		})
		return out, err
	}
	ref, err := reference(params.K, 1)
	if err != nil {
		return res, err
	}
	res.GhostErrors = map[int]int{}
	fmt.Fprintf(w, "ghost zones (local similarity, K=%d):\n", params.K)
	fmt.Fprintf(w, "%8s %12s %12s\n", "ranks", "with ghosts", "without")
	for _, p := range []int{2, 4, 8} {
		with, err := reference(params.K, p)
		if err != nil {
			return res, err
		}
		without, err := reference(0, p)
		if err != nil {
			return res, err
		}
		withErrs, withoutErrs := 0, 0
		for i := range ref.Data {
			if with.Data[i] != ref.Data[i] {
				withErrs++
			}
			if without.Data[i] != ref.Data[i] {
				withoutErrs++
			}
		}
		res.GhostErrors[p] = withoutErrs
		fmt.Fprintf(w, "%8d %9d err %9d err\n", p, withErrs, withoutErrs)
		if withErrs != 0 {
			return res, fmt.Errorf("bench: ghosted run diverged from serial (%d cells)", withErrs)
		}
	}

	// --- Schedule: deterministic scheduling analysis on a skewed workload
	// where iteration i costs i units. (Timing the real dynamic schedule
	// would be meaningless on a single-core box: one worker can drain the
	// shared counter before the others are even scheduled.) Static assigns
	// contiguous near-equal ranges — exactly what omp.Static executes — so
	// the later range costs more; dynamic behaves like greedy
	// list-scheduling of fixed-size chunks onto the least-loaded thread.
	const iters = 4096
	const chunk = 16
	threads := o.CoresPerNode
	cost := func(i int) int64 { return int64(i) }
	imbalanceOf := func(work []int64) float64 {
		var sum, maxW int64
		for _, v := range work {
			sum += v
			if v > maxW {
				maxW = v
			}
		}
		return float64(maxW) / (float64(sum) / float64(len(work)))
	}
	staticWork := make([]int64, threads)
	{
		var mu sync.Mutex
		team := omp.NewTeam(threads)
		team.ForThread(iters, func(i, h int) {
			mu.Lock()
			staticWork[h] += cost(i)
			mu.Unlock()
		})
	}
	res.StaticImbalance = imbalanceOf(staticWork)
	dynWork := make([]int64, threads)
	for lo := 0; lo < iters; lo += chunk {
		hi := min(lo+chunk, iters)
		var c int64
		for i := lo; i < hi; i++ {
			c += cost(i)
		}
		least := 0
		for h := 1; h < threads; h++ {
			if dynWork[h] < dynWork[least] {
				least = h
			}
		}
		dynWork[least] += c
	}
	res.DynamicImbalance = imbalanceOf(dynWork)
	fmt.Fprintf(w, "schedule imbalance on skewed work (max/mean, %d threads): static %.3f, dynamic(list-sched) %.3f\n",
		threads, res.StaticImbalance, res.DynamicImbalance)

	// --- Merge strategy: Algorithm 1's per-thread vectors + prefix merge
	// vs a mutex-guarded shared append.
	team := omp.NewTeam(threads)
	const mergeIters = 20000
	body := func(i int, out *[]float64) { *out = append(*out, float64(i)) }
	t0 := time.Now()
	for rep := 0; rep < 20; rep++ {
		omp.ForAppend(team, mergeIters, body)
	}
	res.MergeAppend = time.Since(t0) / 20
	t0 = time.Now()
	for rep := 0; rep < 20; rep++ {
		omp.ForAppendLocked(team, mergeIters, body)
	}
	res.MergeLocked = time.Since(t0) / 20
	fmt.Fprintf(w, "result merge (%d appends): prefix-merge %v, locked %v\n",
		mergeIters, res.MergeAppend.Round(time.Microsecond), res.MergeLocked.Round(time.Microsecond))

	// --- Engine read strategy: the engine's default independent reads vs
	// the communication-avoiding strategy with halo exchange (the paper's
	// two contributions composed). Request counts are measured exactly.
	{
		countOpens := func(strategy arrayudf.ReadStrategy) int64 {
			var opens int64
			_, err := mpi.Run(4, func(c *mpi.Comm) {
				spec := arrayudf.Spec{GhostChannels: 1, ReadStrategy: strategy}
				_, tr, _ := arrayudf.LoadBlock(c, v, spec)
				sum := mpi.Reduce(c, 0, []int64{tr.Opens}, mpi.SumI64)
				if c.Rank() == 0 {
					opens = sum[0]
				}
			})
			if err != nil {
				panic(err)
			}
			return opens
		}
		indep := countOpens(nil)
		ca := countOpens(arrayudf.CommAvoidingRead)
		res.EngineOpensIndependent = indep
		res.EngineOpensCommAvoid = ca
		fmt.Fprintf(w, "engine block loads (4 ranks, ghost=1): independent %d opens, comm-avoiding+halo %d opens\n",
			indep, ca)
	}

	// --- Storage: strong-scaling I/O efficiency at the largest node count,
	// disk vs burst buffer (the paper's §VI.E remedy).
	ioEffAtMax := func(m pfs.Model) float64 {
		var base, last time.Duration
		for i, nodes := range paperNodeCounts {
			tr := pfs.Trace{
				Opens:     int64(nodes) * paperFiles,
				Reads:     int64(nodes) * paperFiles,
				BytesRead: paperFiles * paperFileBytes,
				Processes: nodes,
			}
			t := m.Project(tr).Total()
			if i == 0 {
				base = t
			}
			last = t
		}
		return pfs.Efficiency(base, paperNodeCounts[0], last, paperNodeCounts[len(paperNodeCounts)-1])
	}
	res.DiskIOEffAtMax = ioEffAtMax(pfs.CoriLike())
	res.BBIOEffAtMax = ioEffAtMax(pfs.BurstBufferLike())
	fmt.Fprintf(w, "strong-scaling I/O efficiency at %d nodes: disk %.1f%%, burst buffer %.1f%%\n",
		paperNodeCounts[len(paperNodeCounts)-1], res.DiskIOEffAtMax, res.BBIOEffAtMax)

	// --- Auto-tuner (paper future work): pick a layout for a paper-scale
	// interferometry run.
	unit, _, err := computeProbe(o, v)
	if err != nil {
		return res, err
	}
	best, candidates, err := haee.SuggestLayout(haee.TunerInput{
		TotalBytes:   paperFiles * paperFileBytes,
		Channels:     paperChannels,
		Files:        paperFiles,
		UnitCost:     unit,
		SharedBytes:  8 << 20,
		MaxNodes:     2048,
		CoresPerNode: paperCores,
		Model:        o.Model,
	})
	if err != nil {
		return res, err
	}
	res.TunerBest = best
	fmt.Fprintf(w, "auto-tuner (paper-scale interferometry): best = %v (%d candidates)\n",
		best, len(candidates))
	return res, nil
}
