package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunJSONSingleExperiment(t *testing.T) {
	o := testOptions(t)
	rep, err := RunJSON(o, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != 1 {
		t.Fatalf("got %d experiments, want 1", len(rep.Experiments))
	}
	rec := rep.Experiments[0]
	if rec.Name != "table1" || rec.Title == "" {
		t.Fatalf("record identity: %+v", rec)
	}
	if rep.Params.Channels != o.Channels || rep.Params.Files != o.Files {
		t.Fatalf("params not echoed: %+v", rep.Params)
	}

	// The document must round-trip and keep the typed rows.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back struct {
		Suite       string `json:"suite"`
		Experiments []struct {
			Name   string `json:"name"`
			WallMS int64  `json:"wall_ms"`
			Rows   []struct {
				Scheme string `json:"Scheme"`
			} `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	if back.Suite != "dassa-bench" || len(back.Experiments) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	rows := back.Experiments[0].Rows
	if len(rows) != 2 || rows[0].Scheme != "RCA" || rows[1].Scheme != "VCA" {
		t.Fatalf("table1 rows lost in JSON: %+v", rows)
	}
}

func TestRunJSONPhaseFields(t *testing.T) {
	// Figs. 7–9 embed the common read/exchange/compute/write breakdown;
	// the JSON document must carry it with stable field names.
	o := testOptions(t)
	rep, err := RunJSON(o, "fig7")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back struct {
		Experiments []struct {
			Rows []struct {
				Method string `json:"Method"`
				Phases *struct {
					ReadMS     float64 `json:"read_ms"`
					ExchangeMS float64 `json:"exchange_ms"`
					ComputeMS  float64 `json:"compute_ms"`
					WriteMS    float64 `json:"write_ms"`
				} `json:"phases"`
			} `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	if len(back.Experiments) != 1 || len(back.Experiments[0].Rows) != 3 {
		t.Fatalf("fig7 shape lost in JSON: %+v", back)
	}
	for _, r := range back.Experiments[0].Rows {
		if r.Phases == nil {
			t.Fatalf("row %q lacks the phases object", r.Method)
		}
		if r.Phases.ReadMS <= 0 {
			t.Errorf("row %q: read_ms = %v, want > 0", r.Method, r.Phases.ReadMS)
		}
		if r.Phases.ComputeMS != 0 || r.Phases.WriteMS != 0 {
			t.Errorf("row %q: pure read strategy reports compute/write time: %+v",
				r.Method, *r.Phases)
		}
	}
	// The collective and comm-avoiding VCA reads exchange data; the RCA
	// independent read never communicates.
	rows := back.Experiments[0].Rows
	for _, r := range rows[:2] {
		if r.Phases.ExchangeMS <= 0 {
			t.Errorf("row %q: exchange_ms = %v, want > 0", r.Method, r.Phases.ExchangeMS)
		}
	}
	if last := rows[2]; last.Phases.ExchangeMS != 0 {
		t.Errorf("row %q: exchange_ms = %v, want 0", last.Method, last.Phases.ExchangeMS)
	}
}

func TestRunJSONUnknownExperiment(t *testing.T) {
	if _, err := RunJSON(testOptions(t), "fig99"); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestRegistryCoversSwitchNames(t *testing.T) {
	// The CLI's -exp vocabulary is exactly the registry; a new experiment
	// added to one but not the other should fail here.
	want := []string{"table1", "table2", "kernels", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "ablation", "detectors", "cluster"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("registry[%d] = %q, want %q", i, got[i].Name, name)
		}
		if e, ok := Lookup(name); !ok || e.Name != name {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
	if _, ok := Lookup("all"); ok {
		t.Error(`"all" must not be a registry entry`)
	}
}
