package bench

import "testing"

func TestDetectorComparison(t *testing.T) {
	o := testOptions(t)
	rows, err := RunDetectors(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The headline claim (ref [18]): STA/LTA false-triggers on incoherent
	// bursts, local similarity does not; both detect the coherent quake.
	if got := eventsOf(rows, "incoherent bursts", "STA/LTA"); got < 3 {
		t.Errorf("STA/LTA declared %d events on the bursts, expected false triggers", got)
	}
	if got := eventsOf(rows, "incoherent bursts", "local similarity"); got > 1 {
		t.Errorf("local similarity declared %d events on incoherent bursts, want ≈0", got)
	}
	if got := eventsOf(rows, "coherent earthquake", "STA/LTA"); got < 3 {
		t.Errorf("STA/LTA missed the quake (%d triggering channels)", got)
	}
	if got := eventsOf(rows, "coherent earthquake", "local similarity"); got < 1 {
		t.Errorf("local similarity missed the quake (%d regions)", got)
	}
	for _, r := range rows {
		if r.Contrast <= 0 {
			t.Errorf("non-positive contrast: %+v", r)
		}
	}
}
