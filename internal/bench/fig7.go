package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dassa/internal/dass"
	"dassa/internal/mpi"
	"dassa/internal/obs"
	"dassa/internal/pfs"
)

// Fig7Row is one reading strategy's measurement in Figure 7.
type Fig7Row struct {
	Method    string
	Wall      time.Duration // measured on this machine
	Trace     pfs.Trace     // measured operation counts
	Projected time.Duration // trace projected onto the Cori-like model
	// PaperScale projects the same strategy's analytic op counts at the
	// paper's dimensions (1440 files × 700 MB, 90 processes).
	PaperScale time.Duration
	// Phases is the measured read/exchange split (max across ranks); pure
	// read strategies never enter compute or write.
	Phases PhasesJSON `json:"phases"`
}

// RunFig7 reproduces Figure 7: reading a VCA with the "collective-per-file"
// method vs the "communication-avoiding" method, with an RCA read as the
// reference, using o.Ranks processes that each need 1/p of every file. The
// paper reports communication-avoiding ≈37× faster than collective-per-file
// and faster than the RCA read.
func RunFig7(o Options) ([]Fig7Row, error) {
	w := o.out()
	cat, err := EnsureDataset(o)
	if err != nil {
		return nil, err
	}
	vcaPath := filepath.Join(o.DataDir, "fig7.vca.dasf")
	rcaPath := filepath.Join(o.DataDir, "fig7.rca.dasf")
	defer os.Remove(rcaPath)
	if _, err := dass.CreateVCA(vcaPath, cat.Entries()); err != nil {
		return nil, err
	}
	if _, err := dass.CreateRCA(rcaPath, cat.Entries()); err != nil {
		return nil, err
	}
	vcaView, err := dass.OpenView(vcaPath)
	if err != nil {
		return nil, err
	}
	rcaView, err := dass.OpenView(rcaPath)
	if err != nil {
		return nil, err
	}

	type method struct {
		name string
		view *dass.View
		read func(c *mpi.Comm, v *dass.View) (dass.Block, pfs.Trace)
	}
	methods := []method{
		{"collective-per-file", vcaView, dass.ReadCollectivePerFile},
		{"communication-avoiding", vcaView, dass.ReadCommAvoiding},
		{"RCA independent", rcaView, dass.ReadIndependent},
	}

	var rows []Fig7Row
	for _, m := range methods {
		var tr pfs.Trace
		spans := obs.NewSpans(o.Ranks)
		view := m.view.WithSpans(spans)
		wall, err := timeIt(func() error {
			_, werr := mpi.Run(o.Ranks, func(c *mpi.Comm) {
				_, t := m.read(c, view)
				if c.Rank() == 0 {
					tr = t
				}
			})
			return werr
		})
		if err != nil {
			return nil, err
		}
		row := Fig7Row{
			Method:     m.name,
			Wall:       wall,
			Trace:      tr,
			Projected:  o.Model.Project(tr).Total(),
			PaperScale: o.Model.Project(paperScaleTrace(m.name)).Total(),
			Phases:     phasesOf(spans.Report()),
		}
		if m.name == "RCA independent" {
			// Figure 7's RCA bars include the (serial) merge that produced
			// the file.
			row.Method = "RCA (incl. creation)"
			row.PaperScale += o.Model.Project(rcaCreationTrace()).Total()
		}
		rows = append(rows, row)
	}

	hline(w, "Figure 7: reading DAS data from a VCA")
	fmt.Fprintf(w, "%-24s %12s %8s %8s %8s %14s %14s\n",
		"method", "wall", "opens", "reads", "bcasts", "model(meas.)", "model(paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %12v %8d %8d %8d %14v %14v\n",
			r.Method, r.Wall.Round(time.Microsecond), r.Trace.Opens, r.Trace.Reads,
			r.Trace.Broadcasts, r.Projected.Round(time.Millisecond),
			r.PaperScale.Round(time.Millisecond))
	}
	if rows[1].PaperScale > 0 {
		fmt.Fprintf(w, "paper-scale speedup comm-avoiding vs collective-per-file: %.1fx (paper: ≈37x)\n",
			float64(rows[0].PaperScale)/float64(rows[1].PaperScale))
	}
	return rows, nil
}

// paperScaleTrace builds the analytic operation trace of each strategy at
// the paper's experiment size: n = 1440 one-minute files of ≈700 MB each,
// p = 90 processes, every process needing 1/p of every file.
func paperScaleTrace(method string) pfs.Trace {
	const (
		n         = 1440
		p         = 90
		fileBytes = int64(700e6)
	)
	switch method {
	case "collective-per-file":
		return pfs.Trace{
			Opens: n, Reads: n, BytesRead: n * fileBytes,
			Broadcasts: n, BcastBytes: n * fileBytes,
			Processes: p,
		}
	case "communication-avoiding":
		return pfs.Trace{
			Opens: n, Reads: n, BytesRead: n * fileBytes,
			ExchangeRounds: int64((n + p - 1) / p * (p - 1)),
			ExchangeBytes:  n * fileBytes,
			Processes:      p,
		}
	default: // RCA independent: p ranks, each one contiguous slab of the big file
		return pfs.Trace{
			Opens: p, Reads: p, BytesRead: n * fileBytes,
			Processes: p,
		}
	}
}

// rcaCreationTrace is the serial cost of building the RCA in the first
// place — Figure 7's RCA bars include it ("accessing RCA (i.e., creating a
// really merged HDF5 file)").
func rcaCreationTrace() pfs.Trace {
	const (
		n         = 1440
		fileBytes = int64(700e6)
	)
	return pfs.Trace{
		Opens: n, Reads: n, BytesRead: n * fileBytes,
		Writes: n, BytesWritten: n * fileBytes,
		Processes: 1,
	}
}
