package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dassa/internal/dass"
)

// Fig6Row is one point of Figure 6: merging n files into an RCA vs a VCA.
type Fig6Row struct {
	Files      int
	SearchTime time.Duration
	VCATime    time.Duration
	RCATime    time.Duration
	VCABytes   int64 // size of the created VCA file
	RCABytes   int64 // size of the created RCA file
}

// Speedup returns how much faster VCA construction is than RCA.
func (r Fig6Row) Speedup() float64 {
	if r.VCATime <= 0 {
		return 0
	}
	return float64(r.RCATime) / float64(r.VCATime)
}

// RunFig6 reproduces Figure 6: search time plus RCA/VCA construction time
// as the number of merged files grows. The paper's numbers (search ≤2 ms,
// VCA ≤10 ms, RCA up to 9978 s, ≈70000× apart) come from the same
// asymmetry measured here: VCA touches only metadata, RCA moves all data.
func RunFig6(o Options) ([]Fig6Row, error) {
	w := o.out()
	cat, err := EnsureDataset(o)
	if err != nil {
		return nil, err
	}
	hline(w, "Figure 6: search and merge (RCA vs VCA)")
	fmt.Fprintf(w, "%8s %14s %14s %14s %10s\n", "files", "search", "create-VCA", "create-RCA", "VCA-speedup")

	var rows []Fig6Row
	entries := cat.Entries()
	for n := 3; n <= len(entries); n *= 2 {
		if n > len(entries) {
			break
		}
		start := entries[0].Timestamp
		var found []dass.Entry
		searchTime, err := timeIt(func() error {
			found = cat.SearchStartCount(start, n)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(found) != n {
			return nil, fmt.Errorf("bench: search returned %d files, want %d", len(found), n)
		}
		vcaPath := filepath.Join(o.DataDir, fmt.Sprintf("fig6_%d.vca.dasf", n))
		rcaPath := filepath.Join(o.DataDir, fmt.Sprintf("fig6_%d.rca.dasf", n))
		vcaTime, err := timeIt(func() error {
			_, err := dass.CreateVCA(vcaPath, found)
			return err
		})
		if err != nil {
			return nil, err
		}
		rcaTime, err := timeIt(func() error {
			_, err := dass.CreateRCA(rcaPath, found)
			return err
		})
		if err != nil {
			return nil, err
		}
		row := Fig6Row{Files: n, SearchTime: searchTime, VCATime: vcaTime, RCATime: rcaTime}
		if st, err := os.Stat(vcaPath); err == nil {
			row.VCABytes = st.Size()
		}
		if st, err := os.Stat(rcaPath); err == nil {
			row.RCABytes = st.Size()
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%8d %14v %14v %14v %9.0fx\n",
			n, searchTime.Round(time.Microsecond), vcaTime.Round(time.Microsecond),
			rcaTime.Round(time.Microsecond), row.Speedup())
		os.Remove(rcaPath)
	}
	fmt.Fprintf(w, "paper: search ≤0.002s, VCA ≤0.01s, RCA up to 9978s (avg ≈70000× apart)\n")
	return rows, nil
}

// Table1Row is one line of Table I's comparison.
type Table1Row struct {
	Scheme            string
	ExtraSpacePct     float64
	ConstructionTime  time.Duration
	DuplicationAcross bool // duplicates data when the same file joins two merges
	ParallelRead      time.Duration
}

// RunTable1 reproduces Table I: RCA vs VCA on extra space, construction
// overhead, duplication across groups, and parallel-read support.
func RunTable1(o Options) ([]Table1Row, error) {
	w := o.out()
	cat, err := EnsureDataset(o)
	if err != nil {
		return nil, err
	}
	entries := cat.Entries()
	var originalBytes int64
	for _, e := range entries {
		st, err := os.Stat(e.Path)
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		originalBytes += st.Size()
	}

	vcaPath := filepath.Join(o.DataDir, "table1.vca.dasf")
	rcaPath := filepath.Join(o.DataDir, "table1.rca.dasf")
	defer os.Remove(rcaPath)
	vcaTime, err := timeIt(func() error { _, err := dass.CreateVCA(vcaPath, entries); return err })
	if err != nil {
		return nil, err
	}
	rcaTime, err := timeIt(func() error { _, err := dass.CreateRCA(rcaPath, entries); return err })
	if err != nil {
		return nil, err
	}
	vcaSize := int64(0)
	if st, err := os.Stat(vcaPath); err == nil {
		vcaSize = st.Size()
	}
	rcaSize := int64(0)
	if st, err := os.Stat(rcaPath); err == nil {
		rcaSize = st.Size()
	}

	readTime := func(path string) (time.Duration, error) {
		v, err := dass.OpenView(path)
		if err != nil {
			return 0, err
		}
		return timeIt(func() error { _, _, err := v.Read(); return err })
	}
	vcaRead, err := readTime(vcaPath)
	if err != nil {
		return nil, err
	}
	rcaRead, err := readTime(rcaPath)
	if err != nil {
		return nil, err
	}

	rows := []Table1Row{
		{Scheme: "RCA", ExtraSpacePct: 100 * float64(rcaSize) / float64(originalBytes),
			ConstructionTime: rcaTime, DuplicationAcross: true, ParallelRead: rcaRead},
		{Scheme: "VCA", ExtraSpacePct: 100 * float64(vcaSize) / float64(originalBytes),
			ConstructionTime: vcaTime, DuplicationAcross: false, ParallelRead: vcaRead},
	}
	hline(w, "Table I: RCA vs VCA")
	fmt.Fprintf(w, "%6s %14s %16s %22s %14s\n", "scheme", "extra space", "construction", "duplication across", "full read")
	for _, r := range rows {
		fmt.Fprintf(w, "%6s %13.2f%% %16v %22v %14v\n",
			r.Scheme, r.ExtraSpacePct, r.ConstructionTime.Round(time.Microsecond),
			r.DuplicationAcross, r.ParallelRead.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "paper: RCA 100%% extra space / high overhead; VCA 0%% / low\n")
	return rows, nil
}
