package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"dassa/internal/baseline"
	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/daslib"
	"dassa/internal/detect"
)

// Fig9Row is one system's measurement in the single-node comparison.
type Fig9Row struct {
	System       string
	ReadWall     time.Duration
	ComputeWall  time.Duration // measured serial compute on this machine
	WriteWall    time.Duration
	ComputeModel time.Duration // modeled at o.CoresPerNode*3 (≈12) cores
	// Phases restates the measured walls in the suite's common breakdown
	// form (single node: no exchange).
	Phases PhasesJSON `json:"phases"`
}

// RunFig9 reproduces Figure 9: the same interferometry pipeline run by
// DASSA (HAEE, whole pipeline parallel across channels) and by the
// MATLAB-style baseline (serial interpreted channel loop, only kernels
// threaded) on one node with 12 cores. The paper reports DASSA up to 16×
// faster in compute, with read and write roughly equal.
//
// Compute is measured serially (single-core box) and modeled at twelve
// cores: DASSA's channel-parallel pipeline divides by the core count, the
// baseline's interpreted loop cannot (its only threaded section is the
// elementwise product inside xcorr, a few percent of the time — modeled
// here as zero gain, the conservative choice *in the baseline's favor*).
func RunFig9(o Options) ([]Fig9Row, error) {
	w := o.out()
	const cores = 12 // the paper's single-node test uses 12 CPU cores
	cfg := o.genConfig()
	cfg.FileSeconds = o.FileSeconds * 4 // a longer single record, "1-minute file" analogue
	cfg.NumFiles = 1

	// One file, read it like both systems would.
	dir := filepath.Join(o.DataDir, "fig9")
	paths, err := dasgen.Generate(dir, cfg, dasgen.Fig10Events(cfg))
	if err != nil {
		return nil, err
	}
	params := o.interferometry()

	var data *dasf.Array2D
	readWall, err := timeIt(func() error {
		r, err := dasf.Open(paths[0])
		if err != nil {
			return err
		}
		defer r.Close()
		data, err = r.ReadAll()
		return err
	})
	if err != nil {
		return nil, err
	}

	// MATLAB-style baseline: measured with interpreter overhead.
	pl := baseline.New(params, cores)
	var blOut *dasf.Array2D
	var blStats baseline.Stats
	_, err = timeIt(func() error {
		var rerr error
		blOut, blStats, rerr = pl.Run(data)
		return rerr
	})
	if err != nil {
		return nil, err
	}

	// DASSA: same pipeline via the detect workload, serial measurement on
	// the planned path — prepared master spectrum, per-run scratch arena,
	// destination-passing kernels — exactly what the engine threads run.
	master, err := params.Preprocess(data.Row(params.MasterChannel))
	if err != nil {
		return nil, err
	}
	mst := daslib.PrepareXCorrMaster(master, len(master))
	rowLen := params.RowLen(data.Samples)
	dsOut := dasf.NewArray2D(data.Channels, rowLen)
	scr := daslib.GetScratch()
	defer daslib.PutScratch(scr)
	series := make([]float64, len(master))
	corr := make([]float64, daslib.XCorrLen(len(master), len(master)))
	dsCompute, err := timeIt(func() error {
		for ch := 0; ch < data.Channels; ch++ {
			if err := params.PreprocessInto(series, data.Row(ch), scr); err != nil {
				return err
			}
			mst.XCorrNormalizedInto(corr, series, scr)
			detect.TrimLagsInto(dsOut.Row(ch), corr, len(series), len(master))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Both systems write the same single big array.
	writeWall, err := timeIt(func() error {
		return dasf.WriteData(filepath.Join(dir, "fig9.out.dasf"), nil, nil, dsOut, dasf.Float64)
	})
	if err != nil {
		return nil, err
	}

	phases := func(compute time.Duration) PhasesJSON {
		return PhasesJSON{
			ReadMS:    float64(readWall.Nanoseconds()) / 1e6,
			ComputeMS: float64(compute.Nanoseconds()) / 1e6,
			WriteMS:   float64(writeWall.Nanoseconds()) / 1e6,
		}
	}
	rows := []Fig9Row{
		{
			System:       "MATLAB-style baseline",
			ReadWall:     readWall,
			ComputeWall:  blStats.Compute,
			WriteWall:    writeWall,
			ComputeModel: blStats.Compute, // interpreted loop: no channel parallelism
			Phases:       phases(blStats.Compute),
		},
		{
			System:       "DASSA (HAEE)",
			ReadWall:     readWall,
			ComputeWall:  dsCompute,
			WriteWall:    writeWall,
			ComputeModel: dsCompute / cores, // whole pipeline channel-parallel
			Phases:       phases(dsCompute),
		},
	}

	hline(w, "Figure 9: DASSA vs MATLAB-style pipeline (1 node, 12 cores)")
	fmt.Fprintf(w, "%-22s %12s %14s %12s %16s\n", "system", "read", "compute(1core)", "write", "compute(12core)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %12v %14v %12v %16v\n",
			r.System, r.ReadWall.Round(time.Microsecond), r.ComputeWall.Round(time.Millisecond),
			r.WriteWall.Round(time.Microsecond), r.ComputeModel.Round(time.Millisecond))
	}
	if rows[1].ComputeModel > 0 {
		fmt.Fprintf(w, "modeled 12-core compute speedup: %.1fx (paper: up to 16x); baseline interpreter overhead alone: %v across %d kernel calls\n",
			float64(rows[0].ComputeModel)/float64(rows[1].ComputeModel),
			blStats.OverheadTime.Round(time.Millisecond), blStats.KernelCalls)
	}
	// Sanity: both systems computed the same answer.
	for i := range dsOut.Data {
		d := dsOut.Data[i] - blOut.Data[i]
		if d > 1e-9 || d < -1e-9 {
			return rows, fmt.Errorf("bench: DASSA and baseline outputs diverge at %d", i)
		}
	}
	return rows, nil
}
