package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"dassa/internal/arrayudf"
	"dassa/internal/dass"
	"dassa/internal/mpi"
	"dassa/internal/pfs"
)

// Fig11Row is one point of the scaling curves.
type Fig11Row struct {
	Workers      int
	ComputeTime  time.Duration
	ComputeEff   float64 // percent
	IOTime       time.Duration
	IOEff        float64 // percent
	ReadOpsTotal int64
}

// Fig11Result holds the bench-scale validation and the paper-scale curves.
type Fig11Result struct {
	// MeasuredOps validates the engine's access pattern at bench scale:
	// with the default independent-read strategy, total read requests grow
	// linearly with the worker count (each rank reads its slab of every
	// file). These counts are measured, not assumed.
	MeasuredOps []Fig11Row
	// Strong and Weak are the paper-scale efficiency curves: node counts
	// 91→1456 with 8 cores each, traces built from the validated pattern
	// at the paper's data dimensions (1.9 TB strong, 171 MB/core weak) and
	// projected on the Cori-like model. Compute times use the measured
	// work model.
	Strong []Fig11Row
	Weak   []Fig11Row
}

// paperNodeCounts mirrors the paper's Figure 11 sweep.
var paperNodeCounts = []int{91, 182, 364, 728, 1456}

const (
	paperFiles     = 2880
	paperFileBytes = int64(700e6) // ≈1.9 TB / 2880 files
	paperCores     = 8            // the paper starts 8 threads per node here
	paperCoreBytes = int64(171e6) // weak scaling: 171 MB per core
	paperChannels  = 11648
)

// RunFig11 reproduces Figure 11: strong and weak scaling of DASSA. The
// bench first MEASURES the engine's access pattern at laptop scale (read
// requests per worker via the real readers), then builds paper-scale traces
// from that validated pattern and projects them on the storage model. The
// shapes to reproduce: compute parallel efficiency ≈100% throughout; I/O
// parallel efficiency trends downward as node counts grow, because request
// counts scale with processes while the storage targets are fixed.
func RunFig11(o Options) (Fig11Result, error) {
	w := o.out()
	cat, err := EnsureDataset(o)
	if err != nil {
		return Fig11Result{}, err
	}
	vcaPath := filepath.Join(o.DataDir, "fig11.vca.dasf")
	if _, err := dass.CreateVCA(vcaPath, cat.Entries()); err != nil {
		return Fig11Result{}, err
	}
	v, err := dass.OpenView(vcaPath)
	if err != nil {
		return Fig11Result{}, err
	}
	unit, _, err := computeProbe(o, v)
	if err != nil {
		return Fig11Result{}, err
	}

	var res Fig11Result

	// Bench-scale validation: measure the independent-read pattern the
	// engine uses (arrayudf.LoadBlock → one slab of every file per rank).
	for p := 1; p <= o.Nodes; p *= 2 {
		var tr pfs.Trace
		_, err := mpi.Run(p, func(c *mpi.Comm) {
			_, t, _ := arrayudf.LoadBlock(c, v, arrayudf.Spec{})
			sum := mpi.Reduce(c, 0, []int64{t.Opens, t.Reads, t.BytesRead}, mpi.SumI64)
			if c.Rank() == 0 {
				tr = pfs.Trace{Opens: sum[0], Reads: sum[1], BytesRead: sum[2], Processes: p}
			}
		})
		if err != nil {
			return res, err
		}
		res.MeasuredOps = append(res.MeasuredOps, Fig11Row{
			Workers:      p,
			ReadOpsTotal: tr.Opens + tr.Reads,
			IOTime:       o.Model.Project(tr).Total(),
		})
	}

	// Paper-scale strong scaling: fixed 1.9 TB. DASSA runs HAEE here — one
	// MPI rank per node with 8 threads — so each of the `nodes` ranks reads
	// its channel slab from every file, and compute is partitioned over
	// nodes×8 cores.
	var strongBase Fig11Row
	for i, nodes := range paperNodeCounts {
		procs := nodes * paperCores
		tr := pfs.Trace{
			Opens:     int64(nodes) * paperFiles,
			Reads:     int64(nodes) * paperFiles,
			BytesRead: paperFiles * paperFileBytes,
			Processes: nodes,
		}
		// Compute: partitioning of paperChannels over all cores, using the
		// measured unit cost as the per-channel work stand-in.
		row := Fig11Row{
			Workers:      nodes,
			ComputeTime:  modeledWall(unit, paperChannels, procs),
			IOTime:       o.Model.Project(tr).Total(),
			ReadOpsTotal: tr.Opens + tr.Reads,
		}
		if i == 0 {
			strongBase = row
			row.ComputeEff, row.IOEff = 100, 100
		} else {
			row.ComputeEff = pfs.Efficiency(strongBase.ComputeTime, strongBase.Workers, row.ComputeTime, nodes)
			row.IOEff = pfs.Efficiency(strongBase.IOTime, strongBase.Workers, row.IOTime, nodes)
		}
		res.Strong = append(res.Strong, row)
	}

	// Paper-scale weak scaling: 171 MB per core; the dataset grows along
	// the time axis with the node count. Per-core compute work is fixed by
	// construction: a core owns channels/procs channels whose recorded
	// duration grows linearly with procs, so (channels/procs)×duration is
	// constant up to partition rounding.
	procs0 := paperNodeCounts[0] * paperCores
	var weakBase Fig11Row
	for i, nodes := range paperNodeCounts {
		procs := nodes * paperCores
		totalBytes := int64(procs) * paperCoreBytes
		files := totalBytes / paperFileBytes
		if files < 1 {
			files = 1
		}
		tr := pfs.Trace{
			Opens:     int64(nodes) * files,
			Reads:     int64(nodes) * files,
			BytesRead: totalBytes,
			Processes: nodes,
		}
		chPerCore := (paperChannels + procs - 1) / procs
		durFactor := procs / procs0 // duration grows with the machine
		row := Fig11Row{
			Workers:      nodes,
			ComputeTime:  time.Duration(int64(unit) * int64(chPerCore) * int64(durFactor)),
			IOTime:       o.Model.Project(tr).Total(),
			ReadOpsTotal: tr.Opens + tr.Reads,
		}
		if i == 0 {
			weakBase = row
			row.ComputeEff, row.IOEff = 100, 100
		} else {
			row.ComputeEff = pfs.WeakEfficiency(weakBase.ComputeTime, row.ComputeTime)
			row.IOEff = pfs.WeakEfficiency(weakBase.IOTime, row.IOTime)
		}
		res.Weak = append(res.Weak, row)
	}

	hline(w, "Figure 11: scaling (parallel efficiency, %)")
	fmt.Fprintf(w, "bench-scale measured access pattern (independent reads, %d files):\n", o.Files)
	fmt.Fprintf(w, "%8s %10s %14s\n", "workers", "read ops", "io(model)")
	for _, r := range res.MeasuredOps {
		fmt.Fprintf(w, "%8d %10d %14v\n", r.Workers, r.ReadOpsTotal, r.IOTime.Round(time.Microsecond))
	}
	print := func(name string, rows []Fig11Row) {
		fmt.Fprintf(w, "%s (paper-scale projection, nodes × %d cores):\n", name, paperCores)
		fmt.Fprintf(w, "%8s %14s %12s %14s %12s %12s\n", "nodes", "compute", "comp.eff", "io(model)", "io.eff", "read ops")
		for _, r := range rows {
			fmt.Fprintf(w, "%8d %14v %12s %14v %12s %12d\n",
				r.Workers, r.ComputeTime.Round(time.Millisecond), formatEff(r.ComputeEff),
				r.IOTime.Round(time.Millisecond), formatEff(r.IOEff), r.ReadOpsTotal)
		}
	}
	print("strong scaling (fixed 1.9 TB)", res.Strong)
	print("weak scaling (fixed 171 MB/core)", res.Weak)
	fmt.Fprintf(w, "paper: compute ≈100%% efficient; I/O efficiency trends down; best total at 364 nodes\n")
	return res, nil
}
