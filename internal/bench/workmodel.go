package bench

import (
	"fmt"
	"time"

	"dassa/internal/daslib"
	"dassa/internal/dass"
	"dassa/internal/detect"
)

// This repository's benches run on whatever machine is available — often a
// single-core CI box — where wall-clock parallel speedup is physically
// unmeasurable: goroutine "ranks" timeslice one core, so every layout takes
// the same wall time. The paper's compute-scaling results (Figures 8, 9,
// 11) are therefore reported through a measured work model:
//
//   - the per-evaluation cost of the UDF is MEASURED by running it serially
//     over real data;
//   - the per-rank evaluation counts come from the REAL partitioner, so load
//     imbalance (the only structural reason compute efficiency drops below
//     100% for these embarrassingly parallel UDFs) is exact;
//   - modeled wall time = max over ranks of (evaluations × measured cost).
//
// Raw measured serial times are always printed alongside the model, and the
// same workload code paths execute for real — only the wall-clock
// attribution is modeled. EXPERIMENTS.md states this for every affected
// figure.

// computeProbe measures the serial per-channel cost of the interferometry
// UDF on real data and returns (unit cost, total channels).
func computeProbe(o Options, v *dass.View) (time.Duration, int, error) {
	params := o.interferometry()
	if err := params.Validate(); err != nil {
		return 0, 0, err
	}
	nch, _ := v.Shape()
	data, _, err := v.Read()
	if err != nil {
		return 0, 0, err
	}
	master, err := params.Preprocess(data.Row(params.MasterChannel))
	if err != nil {
		return 0, 0, err
	}
	// Probe over a bounded number of channels to keep benches quick.
	probe := min(nch, 16)
	t0 := time.Now()
	for ch := 0; ch < probe; ch++ {
		series, err := params.Preprocess(data.Row(ch))
		if err != nil {
			return 0, 0, err
		}
		_ = detect.TrimLags(daslib.XCorrNormalized(series, master), len(series), len(master), params.RowLen(data.Samples))
	}
	unit := time.Duration(int64(time.Since(t0)) / int64(probe))
	if unit <= 0 {
		unit = time.Nanosecond
	}
	return unit, nch, nil
}

// modeledWall returns the work-model wall time for nch channels split over
// workers: max per-worker channel count × unit cost.
func modeledWall(unit time.Duration, nch, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	maxPer := 0
	for r := 0; r < workers; r++ {
		lo, hi := dass.Partition(nch, workers, r)
		if hi-lo > maxPer {
			maxPer = hi - lo
		}
	}
	return time.Duration(int64(unit) * int64(maxPer))
}

// formatEff renders an efficiency percentage.
func formatEff(e float64) string { return fmt.Sprintf("%.1f%%", e) }
