package mpi

import "testing"

func BenchmarkSendRecvPingPong(b *testing.B) {
	payload := make([]float64, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	_, err := Run(2, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				Send(c, 1, 0, payload)
				Recv[float64](c, 1, 1)
			} else {
				Recv[float64](c, 0, 0)
				Send(c, 0, 1, payload)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBcast8(b *testing.B) {
	payload := make([]float64, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	_, err := Run(8, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			Bcast(c, 0, payload)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAlltoallv8(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	_, err := Run(8, func(c *Comm) {
		send := make([][]float64, 8)
		for j := range send {
			send[j] = make([]float64, 512)
		}
		for i := 0; i < b.N; i++ {
			Alltoallv(c, send)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllreduce8(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	_, err := Run(8, func(c *Comm) {
		data := make([]float64, 256)
		for i := 0; i < b.N; i++ {
			Allreduce(c, data, SumF64)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
