package mpi

import "fmt"

// Internal tags for collectives. They live in their own (negative) tag space
// so they can never match user point-to-point traffic. Collectives are
// matched by call order per communicator, as in MPI: all ranks must call the
// same collectives in the same order. Per-pair FIFO delivery then guarantees
// that successive collectives of the same kind cannot mix messages.
const (
	tagBarrierUp = -2 - iota
	tagBarrierDown
	tagBcast
	tagGather
	tagAllgather
	tagAlltoall
	tagReduce
	tagScatter
)

// Barrier blocks until every rank in the world has entered it. It is
// implemented as a gather of tokens to rank 0 followed by a binomial-tree
// release, the way flat MPI barriers are.
func (c *Comm) Barrier() {
	p := c.world.size
	if c.rank == 0 {
		c.world.stats.Barriers.Add(1)
		for i := 1; i < p; i++ {
			Recv[byte](c, AnySource, tagBarrierUp)
		}
	} else {
		Send(c, 0, tagBarrierUp, []byte{1})
	}
	bcastTree(c, 0, tagBarrierDown, []byte{1})
}

// Bcast distributes data from root to every rank using a binomial tree
// (log p rounds, p-1 messages), the standard MPI implementation. Every rank
// must call it; non-root ranks pass their (ignored) input and all ranks
// receive the root's data as the return value.
func Bcast[T any](c *Comm, root int, data []T) []T {
	if c.rank == root {
		c.world.stats.Broadcasts.Add(1)
	}
	return bcastTree(c, root, tagBcast, data)
}

// bcastTree is the binomial-tree broadcast shared by Bcast and Barrier.
func bcastTree[T any](c *Comm, root, tag int, data []T) []T {
	p := c.world.size
	rel := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root) % p
			data = Recv[T](c, src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (rel + mask + root) % p
			Send(c, dst, tag, data)
		}
		mask >>= 1
	}
	return data
}

// Gather collects each rank's data at root. On root the result has one
// entry per rank, in rank order (Gatherv semantics: lengths may differ);
// on other ranks it is nil.
func Gather[T any](c *Comm, root int, data []T) [][]T {
	if c.rank != root {
		Send(c, root, tagGather, data)
		return nil
	}
	c.world.stats.Gathers.Add(1)
	p := c.world.size
	out := make([][]T, p)
	own := make([]T, len(data))
	copy(own, data)
	out[root] = own
	for i := 0; i < p; i++ {
		if i == root {
			continue
		}
		out[i] = Recv[T](c, i, tagGather)
	}
	return out
}

// Allgather gives every rank a copy of every rank's data, in rank order,
// using the ring algorithm (p-1 rounds of neighbor exchange).
func Allgather[T any](c *Comm, data []T) [][]T {
	if c.rank == 0 {
		c.world.stats.Gathers.Add(1)
	}
	p := c.world.size
	blocks := make([][]T, p)
	own := make([]T, len(data))
	copy(own, data)
	blocks[c.rank] = own
	if p == 1 {
		return blocks
	}
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	for s := 1; s < p; s++ {
		sendIdx := (c.rank - s + 1 + p) % p
		recvIdx := (c.rank - s + p) % p
		Send(c, next, tagAllgather, blocks[sendIdx])
		blocks[recvIdx] = Recv[T](c, prev, tagAllgather)
	}
	return blocks
}

// Scatter distributes blocks[i] from root to rank i and returns the calling
// rank's block. Only root's blocks argument is consulted; it must have
// exactly world-size entries there.
func Scatter[T any](c *Comm, root int, blocks [][]T) []T {
	p := c.world.size
	if c.rank == root {
		if len(blocks) != p {
			panic(fmt.Sprintf("mpi: Scatter needs %d blocks, got %d", p, len(blocks)))
		}
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			Send(c, i, tagScatter, blocks[i])
		}
		own := make([]T, len(blocks[root]))
		copy(own, blocks[root])
		return own
	}
	return Recv[T](c, root, tagScatter)
}

// Alltoallv performs a personalized all-to-all exchange: rank i sends
// send[j] to rank j and receives rank j's send[i]. Blocks may have
// different lengths. The pairwise-exchange algorithm runs p-1 concurrent
// rounds, which is exactly the "lots of concurrent transfers among node
// pairs" structure the communication-avoiding reader relies on.
func Alltoallv[T any](c *Comm, send [][]T) [][]T {
	p := c.world.size
	if len(send) != p {
		panic(fmt.Sprintf("mpi: Alltoallv needs %d send blocks, got %d", p, len(send)))
	}
	if c.rank == 0 {
		c.world.stats.Alltoalls.Add(1)
	}
	out := make([][]T, p)
	own := make([]T, len(send[c.rank]))
	copy(own, send[c.rank])
	out[c.rank] = own
	for s := 1; s < p; s++ {
		dst := (c.rank + s) % p
		src := (c.rank - s + p) % p
		Send(c, dst, tagAlltoall, send[dst])
		out[src] = Recv[T](c, src, tagAlltoall)
	}
	return out
}

// ReduceOp combines src into dst elementwise; len(dst) == len(src).
type ReduceOp[T any] func(dst, src []T)

// SumF64 adds src into dst.
func SumF64(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// MaxF64 keeps the elementwise maximum in dst.
func MaxF64(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// SumI64 adds src into dst.
func SumI64(dst, src []int64) {
	for i, v := range src {
		dst[i] += v
	}
}

// MaxI64 keeps the elementwise maximum in dst.
func MaxI64(dst, src []int64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// Reduce combines every rank's data elementwise at root using op, via a
// binomial tree (log p rounds). All ranks must pass slices of equal length.
// The combined result is returned on root; other ranks get nil.
func Reduce[T any](c *Comm, root int, data []T, op ReduceOp[T]) []T {
	if c.rank == root {
		c.world.stats.Reduces.Add(1)
	}
	p := c.world.size
	rel := (c.rank - root + p) % p
	acc := make([]T, len(data))
	copy(acc, data)
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			dst := (rel - mask + root) % p
			Send(c, dst, tagReduce, acc)
			return nil
		}
		if rel+mask < p {
			src := (rel + mask + root) % p
			part := Recv[T](c, src, tagReduce)
			if len(part) != len(acc) {
				panic(fmt.Sprintf("mpi: Reduce length mismatch: %d vs %d", len(part), len(acc)))
			}
			op(acc, part)
		}
	}
	if c.rank == root {
		return acc
	}
	return nil
}

// Allreduce is Reduce to rank 0 followed by a broadcast of the result.
func Allreduce[T any](c *Comm, data []T, op ReduceOp[T]) []T {
	res := Reduce(c, 0, data, op)
	return bcastTree(c, 0, tagBcast, res)
}
