// Package mpi provides an in-process message-passing runtime with MPI-like
// semantics: a fixed set of ranks executing the same function, point-to-point
// sends and receives with tag matching, and the usual collectives built on
// top of point-to-point messages.
//
// Ranks are goroutines, but the package enforces distributed-memory
// discipline: every payload is copied on send, so one rank can never observe
// another rank's mutations through a received buffer. All traffic is counted
// (messages, bytes, broadcasts, exchange rounds), which is what the DASSA
// communication-avoiding analysis needs: the paper's claims are about
// message and broadcast counts, and those are measured exactly here.
package mpi

import (
	"fmt"
	"sync"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

type message struct {
	src     int
	tag     int
	payload any // always an owned copy
	bytes   int64
}

// mailbox is one rank's incoming message queue with (src, tag) matching.
// Arrival order is preserved, so messages between a fixed (src, dst) pair
// are never reordered (MPI's non-overtaking rule).
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take removes and returns the first message matching (src, tag), blocking
// until one arrives.
func (mb *mailbox) take(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if m.tag == poisonTag {
				// A rank died: every pending and future Recv must fail, so
				// the poison matches anything and is left in the queue.
				return m
			}
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// World is a group of ranks that can communicate. Create one with Run.
type World struct {
	size  int
	boxes []*mailbox
	stats Stats
}

// Comm is one rank's handle to the world. It is only valid inside the
// function passed to Run, and must not be shared across ranks.
type Comm struct {
	rank  int
	world *World
}

// Rank returns the calling rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// World returns the communicator's world (for stats inspection).
func (c *Comm) World() *World { return c.world }

// RankError reports a panic that occurred on a rank during Run.
type RankError struct {
	Rank int
	Err  any
	// TraceID, when non-empty, ties the failure to the distributed request
	// trace it occurred under; engines stamp it after Run returns.
	TraceID string
}

func (e *RankError) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("mpi: rank %d panicked: %v (trace %s)", e.Rank, e.Err, e.TraceID)
	}
	return fmt.Sprintf("mpi: rank %d panicked: %v", e.Rank, e.Err)
}

// Unwrap exposes the recovered panic value when it is an error, so
// errors.Is/As see through a failed parallel run to the root cause (e.g. a
// missing-file sentinel raised inside a reader).
func (e *RankError) Unwrap() error {
	if err, ok := e.Err.(error); ok {
		return err
	}
	return nil
}

// Run starts size ranks, each executing f with its own Comm, and waits for
// all of them to finish. If any rank panics, Run recovers it and returns a
// *RankError for the lowest-numbered failed rank; other ranks may then be
// blocked forever, so Run only waits for non-failed ranks when there is no
// error. The returned World carries the traffic statistics.
func Run(size int, f func(c *Comm)) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", size)
	}
	w := &World{size: size, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	errs := make([]*RankError, size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = &RankError{Rank: rank, Err: p}
					// Unblock ranks waiting on this one so the world can
					// drain instead of deadlocking. A poisoned message will
					// panic any matching Recv on other ranks.
					for i := 0; i < size; i++ {
						if i != rank {
							w.boxes[i].put(message{src: rank, tag: poisonTag})
						}
					}
				}
			}()
			f(&Comm{rank: rank, world: w})
		}(r)
	}
	wg.Wait()
	var cascade *RankError
	for _, e := range errs {
		if e == nil {
			continue
		}
		if _, isCascade := e.Err.(poisonPanic); isCascade {
			if cascade == nil {
				cascade = e
			}
			continue
		}
		return w, e // an original failure, not a knock-on poison panic
	}
	if cascade != nil {
		return w, cascade
	}
	return w, nil
}

// poisonPanic is the panic value raised by Recv when a peer rank has died.
type poisonPanic string

func (p poisonPanic) String() string { return string(p) }

// poisonTag marks messages injected when a rank dies. Receiving one panics,
// which cascades the failure instead of deadlocking the world.
const poisonTag = -0x7eadbeef

// Send delivers a copy of data to rank dst with the given tag. It is
// buffered (eager): it never blocks waiting for the matching Recv. Element
// values are copied shallowly, so payload element types should be value
// types (numbers, small structs) to preserve distributed-memory semantics.
func Send[T any](c *Comm, dst, tag int, data []T) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (world size %d)", dst, c.world.size))
	}
	cp := make([]T, len(data))
	copy(cp, data)
	nbytes := payloadBytes(cp)
	c.world.stats.count(1, nbytes)
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, payload: cp, bytes: nbytes})
}

// SendValue sends a single value (convenience for scalars and small structs).
func SendValue[T any](c *Comm, dst, tag int, v T) {
	Send(c, dst, tag, []T{v})
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. src may be AnySource and tag may be AnyTag.
// The payload type must match the Send exactly; a mismatch panics.
func Recv[T any](c *Comm, src, tag int) []T {
	m := c.world.boxes[c.rank].take(src, tag)
	if m.tag == poisonTag {
		panic(poisonPanic(fmt.Sprintf("mpi: rank %d died while rank %d waited for a message", m.src, c.rank)))
	}
	p, ok := m.payload.([]T)
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d received %T from rank %d (tag %d), caller expected []%T",
			c.rank, m.payload, m.src, m.tag, *new(T)))
	}
	return p
}

// RecvValue receives a single value sent with SendValue.
func RecvValue[T any](c *Comm, src, tag int) T {
	p := Recv[T](c, src, tag)
	if len(p) != 1 {
		panic(fmt.Sprintf("mpi: RecvValue got payload of length %d, want 1", len(p)))
	}
	return p[0]
}

// SendRecv sends to dst and receives from src in one operation. Because
// sends are eager this cannot deadlock, but having a single call keeps
// pairwise-exchange code readable.
func SendRecv[T any](c *Comm, dst, sendTag int, data []T, src, recvTag int) []T {
	Send(c, dst, sendTag, data)
	return Recv[T](c, src, recvTag)
}
