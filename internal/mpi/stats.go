package mpi

import (
	"fmt"
	"reflect"
	"sync/atomic"
)

// Stats counts the traffic a World has carried. Collective operations are
// implemented with point-to-point messages, so Messages/Bytes include their
// internal traffic; the collective counters additionally record how many
// logical collectives ran, which is what the communication-avoiding
// analysis compares (e.g. "one broadcast per file" vs "one all-to-all").
type Stats struct {
	Messages   atomic.Int64 // point-to-point sends
	Bytes      atomic.Int64 // payload bytes sent
	Broadcasts atomic.Int64 // Bcast calls (counted once per logical bcast)
	Barriers   atomic.Int64 // Barrier calls
	Alltoalls  atomic.Int64 // Alltoall/Alltoallv calls
	Reduces    atomic.Int64 // Reduce/Allreduce calls
	Gathers    atomic.Int64 // Gather/Gatherv/Allgather calls
}

func (s *Stats) count(messages, bytes int64) {
	s.Messages.Add(messages)
	s.Bytes.Add(bytes)
}

// Snapshot is a plain-value copy of Stats, safe to compare and print.
type Snapshot struct {
	Messages   int64
	Bytes      int64
	Broadcasts int64
	Barriers   int64
	Alltoalls  int64
	Reduces    int64
	Gathers    int64
}

// Stats returns a consistent-enough snapshot of the world's counters.
// Call it after Run returns for exact totals.
func (w *World) Stats() Snapshot {
	return Snapshot{
		Messages:   w.stats.Messages.Load(),
		Bytes:      w.stats.Bytes.Load(),
		Broadcasts: w.stats.Broadcasts.Load(),
		Barriers:   w.stats.Barriers.Load(),
		Alltoalls:  w.stats.Alltoalls.Load(),
		Reduces:    w.stats.Reduces.Load(),
		Gathers:    w.stats.Gathers.Load(),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("msgs=%d bytes=%d bcasts=%d barriers=%d alltoalls=%d reduces=%d gathers=%d",
		s.Messages, s.Bytes, s.Broadcasts, s.Barriers, s.Alltoalls, s.Reduces, s.Gathers)
}

// payloadBytes estimates the wire size of a slice payload from its element
// type. Shallow size only: payloads are expected to be slices of value types.
func payloadBytes[T any](data []T) int64 {
	if len(data) == 0 {
		return 0
	}
	return int64(len(data)) * int64(reflect.TypeOf(data[0]).Size())
}
