package mpi

import (
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunSizeValidation(t *testing.T) {
	if _, err := Run(0, func(*Comm) {}); err == nil {
		t.Fatal("Run(0) should fail")
	}
	if _, err := Run(-3, func(*Comm) {}); err == nil {
		t.Fatal("Run(-3) should fail")
	}
}

func TestRankAndSize(t *testing.T) {
	const p = 7
	seen := make([]atomic.Bool, p)
	_, err := Run(p, func(c *Comm) {
		if c.Size() != p {
			t.Errorf("Size() = %d, want %d", c.Size(), p)
		}
		if seen[c.Rank()].Swap(true) {
			t.Errorf("rank %d executed twice", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range seen {
		if !seen[r].Load() {
			t.Errorf("rank %d never executed", r)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 7, []float64{1, 2, 3})
		} else {
			got := Recv[float64](c, 0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("Recv = %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	// Distributed-memory discipline: mutating the sent buffer after Send, or
	// the received buffer, must not be visible to the peer.
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []int{10, 20}
			Send(c, 1, 0, buf)
			buf[0] = 999 // must not reach rank 1
			c.Barrier()
		} else {
			got := Recv[int](c, 0, 0)
			c.Barrier()
			if got[0] != 10 {
				t.Errorf("sender mutation leaked: got %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMatching(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, []int{1})
			Send(c, 1, 2, []int{2})
			Send(c, 1, 3, []int{3})
		} else {
			// Receive out of tag order.
			if got := Recv[int](c, 0, 3); got[0] != 3 {
				t.Errorf("tag 3 payload = %v", got)
			}
			if got := Recv[int](c, 0, 1); got[0] != 1 {
				t.Errorf("tag 1 payload = %v", got)
			}
			if got := Recv[int](c, 0, AnyTag); got[0] != 2 {
				t.Errorf("AnyTag payload = %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySource(t *testing.T) {
	const p = 5
	_, err := Run(p, func(c *Comm) {
		if c.Rank() == 0 {
			sum := 0
			for i := 1; i < p; i++ {
				sum += RecvValue[int](c, AnySource, 0)
			}
			if sum != 1+2+3+4 {
				t.Errorf("sum = %d", sum)
			}
		} else {
			SendValue(c, 0, 0, c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerPair(t *testing.T) {
	const n = 200
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				SendValue(c, 1, 0, i)
			}
		} else {
			for i := 0; i < n; i++ {
				if got := RecvValue[int](c, 0, 0); got != i {
					t.Errorf("message %d arrived as %d", i, got)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankPanicReported(t *testing.T) {
	_, err := Run(3, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Other ranks block on rank 1 and must be poisoned, not deadlock.
		defer func() { recover() }()
		Recv[int](c, 1, 0)
	})
	re, ok := err.(*RankError)
	if !ok {
		t.Fatalf("err = %v, want *RankError", err)
	}
	if re.Rank != 1 {
		t.Errorf("failed rank = %d, want 1", re.Rank)
	}
}

func TestBarrier(t *testing.T) {
	const p = 8
	var phase atomic.Int64
	_, err := Run(p, func(c *Comm) {
		phase.Add(1)
		c.Barrier()
		if got := phase.Load(); got != p {
			t.Errorf("rank %d passed barrier with phase=%d, want %d", c.Rank(), got, p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for root := 0; root < p; root++ {
			_, err := Run(p, func(c *Comm) {
				var in []int
				if c.Rank() == root {
					in = []int{root, 42, root * 10}
				}
				out := Bcast(c, root, in)
				if len(out) != 3 || out[0] != root || out[1] != 42 || out[2] != root*10 {
					t.Errorf("p=%d root=%d rank=%d: Bcast = %v", p, root, c.Rank(), out)
				}
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestBcastMessageCount(t *testing.T) {
	// A binomial broadcast sends exactly p-1 messages.
	const p = 8
	w, err := Run(p, func(c *Comm) {
		Bcast(c, 0, []byte{1, 2, 3})
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.Messages != p-1 {
		t.Errorf("Bcast used %d messages, want %d", s.Messages, p-1)
	}
	if s.Broadcasts != 1 {
		t.Errorf("Broadcasts = %d, want 1", s.Broadcasts)
	}
}

func TestGatherVariableLengths(t *testing.T) {
	const p = 5
	_, err := Run(p, func(c *Comm) {
		mine := make([]int, c.Rank()) // rank r contributes r elements, all = r
		for i := range mine {
			mine[i] = c.Rank()
		}
		got := Gather(c, 2, mine)
		if c.Rank() != 2 {
			if got != nil {
				t.Errorf("non-root rank %d got %v", c.Rank(), got)
			}
			return
		}
		for r := 0; r < p; r++ {
			if len(got[r]) != r {
				t.Errorf("block %d has length %d, want %d", r, len(got[r]), r)
			}
			for _, v := range got[r] {
				if v != r {
					t.Errorf("block %d contains %d", r, v)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherRing(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6} {
		_, err := Run(p, func(c *Comm) {
			got := Allgather(c, []int{c.Rank() * 100, c.Rank()})
			if len(got) != p {
				t.Fatalf("p=%d: got %d blocks", p, len(got))
			}
			for r := 0; r < p; r++ {
				if got[r][0] != r*100 || got[r][1] != r {
					t.Errorf("p=%d rank=%d block %d = %v", p, c.Rank(), r, got[r])
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestScatter(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) {
		var blocks [][]string
		if c.Rank() == 1 {
			blocks = [][]string{{"a"}, {"b", "b"}, {"c"}, {"d"}}
		}
		got := Scatter(c, 1, blocks)
		want := []string{"a", "bb", "c", "d"}[c.Rank()]
		joined := ""
		for _, s := range got {
			joined += s
		}
		if joined != want {
			t.Errorf("rank %d got %q, want %q", c.Rank(), joined, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		_, err := Run(p, func(c *Comm) {
			send := make([][]int, p)
			for j := range send {
				// rank i sends [i, j] to rank j, plus i extra elements.
				send[j] = append([]int{c.Rank(), j}, make([]int, c.Rank())...)
			}
			got := Alltoallv(c, send)
			for j := 0; j < p; j++ {
				// got[j] came from rank j and should start with [j, myrank].
				if got[j][0] != j || got[j][1] != c.Rank() {
					t.Errorf("p=%d rank=%d: block from %d = %v", p, c.Rank(), j, got[j][:2])
				}
				if len(got[j]) != 2+j {
					t.Errorf("p=%d rank=%d: block from %d has length %d, want %d",
						p, c.Rank(), j, len(got[j]), 2+j)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReduceSumAndMax(t *testing.T) {
	const p = 6
	_, err := Run(p, func(c *Comm) {
		data := []float64{float64(c.Rank()), 1}
		sum := Reduce(c, 0, data, SumF64)
		if c.Rank() == 0 {
			if sum[0] != 15 || sum[1] != p {
				t.Errorf("Reduce sum = %v", sum)
			}
		} else if sum != nil {
			t.Errorf("non-root got %v", sum)
		}
		mx := Reduce(c, 3, []float64{float64(c.Rank())}, MaxF64)
		if c.Rank() == 3 && mx[0] != p-1 {
			t.Errorf("Reduce max = %v", mx)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		_, err := Run(p, func(c *Comm) {
			got := Allreduce(c, []int64{int64(c.Rank()), 2}, SumI64)
			wantSum := int64(p * (p - 1) / 2)
			if got[0] != wantSum || got[1] != int64(2*p) {
				t.Errorf("p=%d rank=%d: Allreduce = %v", p, c.Rank(), got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSendRecvCombined(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) {
		next := (c.Rank() + 1) % p
		prev := (c.Rank() - 1 + p) % p
		got := SendRecv(c, next, 0, []int{c.Rank()}, prev, 0)
		if got[0] != prev {
			t.Errorf("rank %d received %d, want %d", c.Rank(), got[0], prev)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsBytesAccounting(t *testing.T) {
	w, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 0, make([]float64, 100)) // 800 bytes
			Send(c, 1, 1, make([]byte, 7))      // 7 bytes
		} else {
			Recv[float64](c, 0, 0)
			Recv[byte](c, 0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.Messages != 2 {
		t.Errorf("Messages = %d, want 2", s.Messages)
	}
	if s.Bytes != 807 {
		t.Errorf("Bytes = %d, want 807", s.Bytes)
	}
}

// Property: Alltoallv is a transpose — for random block matrices,
// received[j] on rank i equals sent[i] on rank j.
func TestAlltoallvTransposeProperty(t *testing.T) {
	f := func(seedRaw uint8, pRaw uint8) bool {
		p := int(pRaw)%6 + 1
		seed := int(seedRaw)
		// Deterministic "random" payload derived from (src, dst, seed).
		payload := func(src, dst int) []int {
			n := (src+dst+seed)%4 + 1
			out := make([]int, n)
			for i := range out {
				out[i] = src*1000 + dst*10 + i
			}
			return out
		}
		ok := atomic.Bool{}
		ok.Store(true)
		_, err := Run(p, func(c *Comm) {
			send := make([][]int, p)
			for j := range send {
				send[j] = payload(c.Rank(), j)
			}
			got := Alltoallv(c, send)
			for j := 0; j < p; j++ {
				want := payload(j, c.Rank())
				if len(got[j]) != len(want) {
					ok.Store(false)
					return
				}
				for k := range want {
					if got[j][k] != want[k] {
						ok.Store(false)
						return
					}
				}
			}
		})
		return err == nil && ok.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Allgather returns the same blocks on every rank, sorted by rank.
func TestAllgatherConsistencyProperty(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := int(pRaw)%7 + 1
		var mu atomic.Pointer[[]int]
		consistent := atomic.Bool{}
		consistent.Store(true)
		_, err := Run(p, func(c *Comm) {
			got := Allgather(c, []int{c.Rank() * 3})
			flat := make([]int, 0, p)
			for _, b := range got {
				flat = append(flat, b...)
			}
			if !sort.IntsAreSorted(flat) {
				consistent.Store(false)
			}
			if prev := mu.Swap(&flat); prev != nil {
				if len(*prev) != len(flat) {
					consistent.Store(false)
				}
			}
		})
		return err == nil && consistent.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
