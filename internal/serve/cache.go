// Package serve is DASSA's always-on service layer: a polling ingester that
// keeps a live catalog over a watched directory, a sharded block cache that
// makes hot minutes cost one disk read no matter how many queries want
// them, and an HTTP JSON API (search, read, detect, status) with admission
// control so overload degrades into 429s instead of collapse. cmd/dassd is
// the binary; everything underneath reuses the dass/haee/detect engines.
package serve

import (
	"container/list"
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"dassa/internal/dasf"
	"dassa/internal/dass"
)

// BlockKey identifies one cached hyperslab of one physical file.
type BlockKey struct {
	Path       string
	ChLo, ChHi int
	TLo, THi   int
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"` // waiters that piggybacked on an in-flight read
	Evictions int64 `json:"evictions"`
	Waiting   int64 `json:"waiting"` // callers currently blocked on an in-flight load
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity"`
	Entries   int64 `json:"entries"`
}

const cacheShards = 8

// BlockCache is a sharded LRU over (file, hyperslab) blocks with
// singleflight de-duplication: concurrent misses on the same key run the
// loader once and share the result. Cached arrays are shared between
// callers and must be treated as immutable.
type BlockCache struct {
	shards                             [cacheShards]cacheShard
	hits, misses, coalesced, evictions atomic.Int64
	// waiting gauges callers currently blocked on an in-flight load.
	waiting atomic.Int64
}

type cacheShard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recent
	entries  map[BlockKey]*list.Element
	inflight map[BlockKey]*flight
}

type cacheEntry struct {
	key   BlockKey
	data  *dasf.Array2D
	bytes int64
}

// flight is one in-progress load other callers can wait on.
type flight struct {
	done chan struct{}
	data *dasf.Array2D
	err  error
}

// NewBlockCache builds a cache bounded to maxBytes of array data (spread
// evenly across shards). maxBytes <= 0 disables caching: every Get runs the
// loader (still singleflighted).
func NewBlockCache(maxBytes int64) *BlockCache {
	c := &BlockCache{}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			maxBytes: maxBytes / cacheShards,
			ll:       list.New(),
			entries:  map[BlockKey]*list.Element{},
			inflight: map[BlockKey]*flight{},
		}
	}
	return c
}

func (c *BlockCache) shard(k BlockKey) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(k.Path))
	// Mix the hyperslab so different windows of one file spread out.
	var b [8]byte
	for i, v := range [4]int{k.ChLo, k.ChHi, k.TLo, k.THi} {
		b[2*i] = byte(v)
		b[2*i+1] = byte(v >> 8)
	}
	h.Write(b[:])
	return &c.shards[h.Sum32()%cacheShards]
}

// Get returns the block for key, loading it at most once across concurrent
// callers. hit reports whether the data came from cache (or an in-flight
// load) rather than this caller's own loader run. The returned IOStats are
// zero on a hit — the physical read already happened.
func (c *BlockCache) Get(key BlockKey, load func() (*dasf.Array2D, dasf.IOStats, error)) (*dasf.Array2D, dasf.IOStats, bool, error) {
	return c.GetContext(context.Background(), key, load)
}

// GetContext is Get bound to the caller's context. A waiter piggybacking on
// an in-flight load stops waiting when its own context dies. And because the
// in-flight loader runs under *its* requester's context, a flight that
// resolves with a cancellation error says nothing about this caller's block
// — the waiter re-runs the load under its own (still live) context instead
// of inheriting a stranger's cancellation.
func (c *BlockCache) GetContext(ctx context.Context, key BlockKey, load func() (*dasf.Array2D, dasf.IOStats, error)) (*dasf.Array2D, dasf.IOStats, bool, error) {
	s := c.shard(key)
	for {
		if err := ctx.Err(); err != nil {
			return nil, dasf.IOStats{}, false, err
		}
		s.mu.Lock()
		if el, ok := s.entries[key]; ok {
			s.ll.MoveToFront(el)
			data := el.Value.(*cacheEntry).data
			s.mu.Unlock()
			c.hits.Add(1)
			return data, dasf.IOStats{}, true, nil
		}
		if fl, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			c.waiting.Add(1)
			select {
			case <-fl.done:
				c.waiting.Add(-1)
				if fl.err != nil && dass.IsCancellation(fl.err) {
					// The loader's request was cancelled, not ours: retry.
					continue
				}
				c.coalesced.Add(1)
				return fl.data, dasf.IOStats{}, true, fl.err
			case <-ctx.Done():
				c.waiting.Add(-1)
				return nil, dasf.IOStats{}, false, ctx.Err()
			}
		}
		fl := &flight{done: make(chan struct{})}
		s.inflight[key] = fl
		s.mu.Unlock()

		c.misses.Add(1)
		data, st, err := load()
		fl.data, fl.err = data, err
		close(fl.done)

		s.mu.Lock()
		delete(s.inflight, key)
		if err == nil {
			c.insertLocked(s, key, data)
		}
		s.mu.Unlock()
		return data, st, false, err
	}
}

func (c *BlockCache) insertLocked(s *cacheShard, key BlockKey, data *dasf.Array2D) {
	nb := int64(len(data.Data)) * 8
	if s.maxBytes <= 0 || nb > s.maxBytes {
		return // cache disabled, or the block alone exceeds the shard budget
	}
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		return
	}
	el := s.ll.PushFront(&cacheEntry{key: key, data: data, bytes: nb})
	s.entries[key] = el
	s.bytes += nb
	for s.bytes > s.maxBytes {
		tail := s.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		s.ll.Remove(tail)
		delete(s.entries, ent.key)
		s.bytes -= ent.bytes
		c.evictions.Add(1)
	}
}

// InvalidatePath drops every cached block of one physical file — called
// when the ingester sees the file change, disappear, or age out of the
// retention window.
func (c *BlockCache) InvalidatePath(path string) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, el := range s.entries {
			if key.Path == path {
				s.bytes -= el.Value.(*cacheEntry).bytes
				s.ll.Remove(el)
				delete(s.entries, key)
			}
		}
		s.mu.Unlock()
	}
}

// Stats snapshots the counters.
func (c *BlockCache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Waiting:   c.waiting.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += s.bytes
		st.Capacity += s.maxBytes
		st.Entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	return st
}

// SlabReader adapts the cache to the dass read hook: member hyperslab reads
// route through Get, so hot blocks cost one disk read however many queries
// want them.
func (c *BlockCache) SlabReader() dass.SlabReaderFunc {
	return func(ctx context.Context, path string, chLo, chHi, tLo, tHi int) (*dasf.Array2D, dasf.IOStats, error) {
		key := BlockKey{Path: path, ChLo: chLo, ChHi: chHi, TLo: tLo, THi: tHi}
		data, st, _, err := c.GetContext(ctx, key, func() (*dasf.Array2D, dasf.IOStats, error) {
			r, err := dasf.OpenContext(ctx, path)
			if err != nil {
				return nil, dasf.IOStats{}, err
			}
			defer r.Close()
			a, err := r.ReadSlab(chLo, chHi, tLo, tHi)
			return a, r.Stats(), err
		})
		return data, st, err
	}
}
