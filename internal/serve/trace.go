package serve

import (
	"net/http"

	"dassa/internal/obs/trace"
)

// Traces exposes the daemon's trace store (tests and embedding callers).
func (s *Server) Traces() *trace.Store { return s.traces }

// handleTraces is GET /debug/traces: store counters plus summaries of the
// recent ring and the slowest-retained outliers, newest/slowest first.
// Summaries only — full span lists come from /debug/traces/{id}, so a
// scrape of this index stays small however deep individual traces are.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	summarize := func(tds []*trace.TraceData) []trace.Summary {
		out := make([]trace.Summary, len(tds))
		for i, td := range tds {
			out[i] = td.Summary()
		}
		return out
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stats":   s.traces.Stats(),
		"recent":  summarize(s.traces.Recent()),
		"slowest": summarize(s.traces.Slowest()),
	})
}

// handleTraceByID is GET /debug/traces/{id}: the full reassembled trace —
// every span, including the fragments workers shipped back over the wire.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id, ok := trace.ParseID(r.PathValue("id"))
	if !ok {
		badRequest(w, "malformed trace id %q", r.PathValue("id"))
		return
	}
	td := s.traces.Get(id)
	if td == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error": "trace not found (evicted or never recorded)",
		})
		return
	}
	writeJSON(w, http.StatusOK, td)
}
