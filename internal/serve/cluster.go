package serve

// Cluster fan-out: when Config.Workers is set the daemon owns a
// cluster.Coordinator and /read and /detect execute across the worker
// pool instead of the in-process engine. The fallback contract is
// deliberate: a run that finds no healthy worker at all degrades to the
// local engine (counted, logged) rather than erroring — a half-dead
// cluster is the coordinator's problem (re-dispatch / NaN-degrade), but
// a fully dead one should not take the daemon's query surface with it.

import (
	"context"
	"errors"
	"net/http"
	"time"

	"dassa/internal/cluster"
	"dassa/internal/dasf"
	"dassa/internal/dass"
	"dassa/internal/pfs"
)

// clusterDialTimeout is how long a run waits for the first healthy worker
// before falling back to the local engine. A package variable so tests can
// shorten the dead-cluster path.
var clusterDialTimeout = 5 * time.Second

// initCluster builds the coordinator when workers are configured. Called
// from NewServer after the registry and logger exist.
func (s *Server) initCluster() {
	if len(s.cfg.Workers) == 0 {
		return
	}
	co, err := cluster.NewCoordinator(cluster.Config{
		Workers:     s.cfg.Workers,
		DialTimeout: clusterDialTimeout,
		FailPolicy:  dass.FailDegrade,
		Log:         s.log,
		Registry:    s.reg,
	})
	if err != nil {
		// Only reachable with an empty worker list, which the guard above
		// excludes — but never let a config slip kill the daemon.
		s.log.Error("cluster disabled", "err", err)
		return
	}
	s.co = co
	s.reg.CounterFunc("dassa_cluster_fallbacks_total",
		"cluster runs that fell back to the local engine (no healthy workers)",
		func() float64 { return float64(s.coFallback.Load()) })
}

// Close releases server-owned background resources (the coordinator's
// worker links). The ingester stops with its context; the HTTP listener
// belongs to the caller. Safe to call with no cluster configured.
func (s *Server) Close() {
	if s.co != nil {
		s.co.Close()
	}
}

// Cluster exposes the coordinator (nil when -workers is unset).
func (s *Server) Cluster() *cluster.Coordinator { return s.co }

// runCluster dispatches one request over the worker pool. used=false
// means no healthy worker existed and the caller should run the local
// engine instead; any other failure is the run's real error.
func (s *Server) runCluster(ctx context.Context, req cluster.Request) (res *cluster.Result, used bool, err error) {
	res, err = s.co.Run(ctx, req)
	if errors.Is(err, cluster.ErrNoWorkers) {
		s.coFallback.Add(1)
		s.log.Warn("no healthy workers, falling back to local engine",
			"workers", len(s.cfg.Workers))
		return nil, false, nil
	}
	return res, true, err
}

// clusterRead serves a /read window through the worker pool. used=false
// falls back to the local read path.
func (s *Server) clusterRead(ctx context.Context, sub *dass.View) (arr *dasf.Array2D, tr pfs.Trace, gaps []dass.Gap, used bool, err error) {
	res, used, err := s.runCluster(ctx, cluster.Request{View: sub, Op: cluster.OpRead})
	if !used || err != nil {
		return nil, pfs.Trace{}, nil, used, err
	}
	return res.Data, res.Trace, res.Quality.Gaps, true, nil
}

// handleHealthz is GET /healthz: liveness. Always 200 once the process
// is serving — it says "the daemon is up", nothing about whether it can
// answer queries yet. Registered outside admission control so it answers
// during overload.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz is GET /readyz: readiness. 503 until the first catalog
// scan has completed and — when workers are configured — at least one
// worker has a live heartbeat. Load balancers gate on this; /healthz
// stays green so the process is not restarted while it warms up.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	scans := s.ing.Stats().Scans
	ready := scans >= 1
	body := map[string]any{
		"scans": scans,
	}
	if s.co != nil {
		healthy := s.co.HealthyWorkers()
		body["workers"] = len(s.cfg.Workers)
		body["workers_healthy"] = healthy
		ready = ready && healthy >= 1
	}
	body["ready"] = ready
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}
