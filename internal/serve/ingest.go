package serve

import (
	"context"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dassa/internal/dass"
	"dassa/internal/obs"
	"dassa/internal/obs/trace"
)

// IngestConfig sizes the polling ingester.
type IngestConfig struct {
	// Dir is the watched directory newly recorded minute files land in.
	Dir string
	// Poll is the scan interval (default 2s).
	Poll time.Duration
	// RetainFiles bounds the served catalog to the newest N files; zero
	// keeps everything. Files aging out are dropped from the catalog (and
	// the block cache), never deleted from disk.
	RetainFiles int
	// LiveVCA maintains a rolling virtual concatenated array over the
	// ingested series (CreateVCA once, AppendToVCA incrementally) at
	// Dir/<LiveVCAName>, so offline tools see the same merged view the
	// daemon serves.
	LiveVCA bool
	// QuarantineAfter circuit-breaks a file out of the scan path after this
	// many consecutive failed scans: a poisoned minute stops costing a read
	// failure on every poll and is re-probed on a backoff schedule instead.
	// Zero disables quarantine (every scan retries every bad file — the
	// pre-quarantine behaviour).
	QuarantineAfter int
	// QuarantineBackoff is the first re-probe delay after a file enters
	// quarantine; it doubles on every failed probe (default 4×Poll).
	QuarantineBackoff time.Duration
	// QuarantineMaxBackoff caps the probe delay (default 5m).
	QuarantineMaxBackoff time.Duration
	// Log receives structured ingest events; nil silences them.
	Log *slog.Logger
}

// LiveVCAName is the rolling VCA the ingester maintains inside the watched
// directory when IngestConfig.LiveVCA is set.
const LiveVCAName = "live.vca.dasf"

// IngestStats is a point-in-time snapshot of the ingest loop's counters.
type IngestStats struct {
	Scans         int64 `json:"scans"`
	FilesTotal    int   `json:"files_total"`    // currently served catalog size
	FilesIngested int64 `json:"files_ingested"` // new files seen over the daemon's life
	FilesChanged  int64 `json:"files_changed"`  // in-place rewrites detected
	FilesRemoved  int64 `json:"files_removed"`  // deletions + retention drops
	BadFiles      int   `json:"bad_files"`      // skipped by the last scan
	VCAAppends    int64 `json:"vca_appends"`
	VCAErrors     int64 `json:"vca_errors"`
	// QuarantinedFiles counts files currently circuit-broken out of the
	// catalog; QuarantineEvents counts entries into quarantine and
	// ReadmittedFiles counts clean-probe exits, over the daemon's life.
	QuarantinedFiles int   `json:"quarantined_files"`
	QuarantineEvents int64 `json:"quarantine_events"`
	ReadmittedFiles  int64 `json:"readmitted_files"`
	// LagMS is the newest ingested file's latency: time between its mtime
	// and the scan that cataloged it. -1 until a file has been ingested.
	LagMS int64 `json:"ingest_lag_ms"`
	// LastScanUnixMS and LastScanDurMS describe the most recent poll.
	LastScanUnixMS int64 `json:"last_scan_unix_ms"`
	LastScanDurMS  int64 `json:"last_scan_dur_ms"`
}

// fileStamp is what the ingester remembers per cataloged file to detect
// in-place change cheaply (the scan itself re-validates via the index).
type fileStamp struct {
	timestamp int64
	samples   int
	offset    int64
}

// quarState tracks one misbehaving file through the quarantine state
// machine: counting (consecutive failed scans below the threshold) →
// quarantined (skipped by scans, re-probed with exponential backoff) →
// readmitted (one clean probe deletes the entry). Owned by the scanner.
type quarState struct {
	fails       int // consecutive failed scans/probes
	quarantined bool
	since       time.Time     // when the file entered quarantine
	backoff     time.Duration // current probe delay
	nextProbe   time.Time     // earliest next scan that re-reads the file
	lastErr     string
}

// QuarantinedFile is the /status view of one quarantined file.
type QuarantinedFile struct {
	Path        string `json:"path"`
	Fails       int    `json:"fails"` // consecutive failures, threshold included
	SinceUnixMS int64  `json:"since_unix_ms"`
	NextProbeMS int64  `json:"next_probe_unix_ms"`
	LastErr     string `json:"last_err"`
}

// Ingester polls a directory for newly arriving DASF files and maintains
// the live catalog the HTTP handlers query. All methods are safe for
// concurrent use. Scans do all their filesystem work outside ing.mu
// (lockio: no I/O while a lock is held) — a slow disk must never stall
// the request handlers reading the catalog; the lock is only taken to
// swap in the finished snapshot.
type Ingester struct {
	cfg   IngestConfig
	cache *BlockCache
	log   *slog.Logger

	// scanning coalesces concurrent ScanOnce calls: while one scan runs,
	// further calls are no-ops. The scanner owns known/vcaTail/vcaSeen/quar,
	// so they need no lock.
	scanning atomic.Bool
	known    map[string]fileStamp
	vcaTail  int64 // newest member timestamp in the live VCA
	vcaSeen  map[string]bool
	quar     map[string]*quarState

	mu  sync.RWMutex // guards cat, bad, quarView, stats only
	cat *dass.Catalog
	bad []dass.BadFile
	// quarView is the published snapshot of the quarantine list, rebuilt by
	// the scanner each cycle (the live map is scanner-owned).
	quarView []QuarantinedFile
	stats    IngestStats
}

// NewIngester builds an ingester over dir. cache may be nil (no
// invalidation hooks). Call ScanOnce or Run to populate the catalog.
func NewIngester(cfg IngestConfig, cache *BlockCache) *Ingester {
	if cfg.Poll <= 0 {
		cfg.Poll = 2 * time.Second
	}
	if cfg.QuarantineBackoff <= 0 {
		cfg.QuarantineBackoff = 4 * cfg.Poll
	}
	if cfg.QuarantineMaxBackoff <= 0 {
		cfg.QuarantineMaxBackoff = 5 * time.Minute
	}
	return &Ingester{
		cfg:     cfg,
		cache:   cache,
		log:     obs.OrNop(cfg.Log),
		cat:     dass.CatalogOf(nil),
		known:   map[string]fileStamp{},
		vcaSeen: map[string]bool{},
		quar:    map[string]*quarState{},
	}
}

// Run polls until ctx is cancelled. The first scan happens immediately.
func (ing *Ingester) Run(ctx context.Context) {
	t := time.NewTicker(ing.cfg.Poll)
	defer t.Stop()
	for {
		if err := ing.ScanOnce(); err != nil {
			ing.log.Error("ingest scan failed", "err", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// ScanOnce runs one poll cycle: tolerant cached scan, cache invalidation
// for changed/removed files, retention trim, and live-VCA extension. All
// filesystem work happens before the catalog lock is taken; the lock only
// publishes the finished snapshot. A ScanOnce that races another returns
// immediately — the in-flight scan will surface the same state.
func (ing *Ingester) ScanOnce() error {
	if !ing.scanning.CompareAndSwap(false, true) {
		return nil
	}
	defer ing.scanning.Store(false)

	t0 := time.Now()
	cat, bad, err := dass.ScanDirCachedTolerantSkip(ing.cfg.Dir, ing.quarantineSkip(t0))
	if err != nil {
		return err
	}
	entries := cat.Entries()
	// One trace ID per scan cycle: every quarantine decision this pass
	// makes logs the same id, so a burst of state changes reads as one
	// correlated event rather than interleaved noise.
	scanID := trace.NewID()
	quarEvents, readmitted, quarList := ing.updateQuarantine(t0, entries, bad, scanID)

	// Retention: keep the newest N files in the served catalog. Trimmed
	// files drop out of `seen` below, so the diff counts them as removed
	// and invalidates their cached blocks.
	if n := ing.cfg.RetainFiles; n > 0 && len(entries) > n {
		entries = entries[len(entries)-n:]
	}

	// Diff against what we served before: invalidate cached blocks of
	// changed files, count arrivals, measure ingest lag. known is owned by
	// the (single) active scanner, so no lock is held across the os.Stat
	// calls or the cache invalidations.
	var ingested, changed, removed int64
	seen := map[string]bool{}
	var newest int64 = -1
	var lag int64 = -1
	for _, e := range entries {
		seen[e.Path] = true
		st, ok := ing.known[e.Path]
		now := fileStamp{timestamp: e.Timestamp, samples: e.Info.NumSamples, offset: e.Info.DataOffset}
		switch {
		case !ok:
			ingested++
			if fi, err := os.Stat(e.Path); err == nil {
				if l := time.Since(fi.ModTime()).Milliseconds(); l > lag {
					lag = l
				}
			}
			if e.Timestamp > newest {
				newest = e.Timestamp
			}
		case st != now:
			changed++
			if ing.cache != nil {
				ing.cache.InvalidatePath(e.Path)
			}
		}
		ing.known[e.Path] = now
	}
	for path := range ing.known {
		if !seen[path] {
			delete(ing.known, path)
			removed++
			if ing.cache != nil {
				ing.cache.InvalidatePath(path)
			}
		}
	}

	var vcaAppends, vcaErrors int64
	if ing.cfg.LiveVCA {
		vcaAppends, vcaErrors = ing.extendLiveVCA(entries)
	}

	// Publish: the only part of the scan that runs under the lock.
	ing.mu.Lock()
	ing.cat = dass.CatalogOf(entries)
	ing.bad = bad
	ing.quarView = quarList
	ing.stats.QuarantinedFiles = len(quarList)
	ing.stats.QuarantineEvents += quarEvents
	ing.stats.ReadmittedFiles += readmitted
	ing.stats.Scans++
	ing.stats.FilesIngested += ingested
	ing.stats.FilesChanged += changed
	ing.stats.FilesRemoved += removed
	ing.stats.VCAAppends += vcaAppends
	ing.stats.VCAErrors += vcaErrors
	ing.stats.FilesTotal = len(entries)
	ing.stats.BadFiles = len(bad)
	if lag >= 0 {
		ing.stats.LagMS = lag
	} else if ing.stats.Scans == 1 {
		ing.stats.LagMS = -1
	}
	ing.stats.LastScanUnixMS = t0.UnixMilli()
	ing.stats.LastScanDurMS = time.Since(t0).Milliseconds()
	totalIngested := ing.stats.FilesIngested
	ing.mu.Unlock()

	if newest >= 0 {
		ing.log.Info("ingest scan",
			"files", len(entries), "ingested", totalIngested,
			"bad", len(bad), "newest", newest, "lag_ms", lag)
	}
	return nil
}

// quarantineSkip returns the scan's skip hook: quarantined files whose next
// probe lies in the future are treated as absent, so a poisoned file costs
// nothing until its backoff expires. Runs on the scanner's side of the
// fence (quar is scanner-owned).
func (ing *Ingester) quarantineSkip(now time.Time) func(path string) bool {
	if ing.cfg.QuarantineAfter <= 0 {
		return nil
	}
	return func(path string) bool {
		st, ok := ing.quar[path]
		return ok && st.quarantined && now.Before(st.nextProbe)
	}
}

// updateQuarantine advances the quarantine state machine with one scan's
// outcome: bad files accumulate consecutive failures and circuit-break at
// the threshold; a quarantined file whose probe failed backs off
// exponentially; a file that scanned clean is readmitted (its entry simply
// dies); a file that vanished from disk is forgotten. Returns the published
// snapshot plus this scan's entry/readmit counts.
func (ing *Ingester) updateQuarantine(now time.Time, entries []dass.Entry, bad []dass.BadFile, scanID trace.ID) (events, readmitted int64, list []QuarantinedFile) {
	if ing.cfg.QuarantineAfter <= 0 {
		return 0, 0, nil
	}
	seen := map[string]bool{}
	for _, b := range bad {
		seen[b.Path] = true
		st := ing.quar[b.Path]
		if st == nil {
			st = &quarState{}
			ing.quar[b.Path] = st
		}
		st.fails++
		st.lastErr = b.Err.Error()
		switch {
		case st.quarantined:
			// A due probe failed: double the delay, capped.
			st.backoff = min(st.backoff*2, ing.cfg.QuarantineMaxBackoff)
			st.nextProbe = now.Add(st.backoff)
		case st.fails >= ing.cfg.QuarantineAfter:
			st.quarantined = true
			st.since = now
			st.backoff = ing.cfg.QuarantineBackoff
			st.nextProbe = now.Add(st.backoff)
			events++
			ing.log.Warn("file quarantined",
				"path", b.Path, "fails", st.fails, "backoff", st.backoff, "err", st.lastErr,
				"trace_id", scanID)
		}
	}
	for _, e := range entries {
		if st, ok := ing.quar[e.Path]; ok {
			// The file scanned clean — a successful probe (or a recovered
			// transient): readmit by forgetting it.
			if st.quarantined {
				readmitted++
				ing.log.Info("file readmitted", "path", e.Path, "fails", st.fails,
					"trace_id", scanID)
			}
			delete(ing.quar, e.Path)
		}
		seen[e.Path] = true
	}
	for path, st := range ing.quar {
		if seen[path] || (st.quarantined && now.Before(st.nextProbe)) {
			continue
		}
		// Eligible for this scan but in neither list: gone from disk.
		delete(ing.quar, path)
	}
	for path, st := range ing.quar {
		if !st.quarantined {
			continue
		}
		list = append(list, QuarantinedFile{
			Path:        path,
			Fails:       st.fails,
			SinceUnixMS: st.since.UnixMilli(),
			NextProbeMS: st.nextProbe.UnixMilli(),
			LastErr:     st.lastErr,
		})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Path < list[j].Path })
	return events, readmitted, list
}

// Quarantined returns the currently circuit-broken files (last scan's
// snapshot).
func (ing *Ingester) Quarantined() []QuarantinedFile {
	ing.mu.RLock()
	defer ing.mu.RUnlock()
	return append([]QuarantinedFile(nil), ing.quarView...)
}

// extendLiveVCA keeps Dir/live.vca.dasf covering the ingested series:
// created on the first batch, extended with AppendToVCA afterwards. Files
// that cannot continue the series (shape change, out-of-order arrival) are
// counted, not fatal. Runs on the scanner's side of the fence: vcaSeen and
// vcaTail are scanner-owned, and the VCA writes happen with no lock held.
func (ing *Ingester) extendLiveVCA(entries []dass.Entry) (appends, errors int64) {
	path := filepath.Join(ing.cfg.Dir, LiveVCAName)
	var pending []dass.Entry
	for _, e := range entries {
		if !ing.vcaSeen[e.Path] && e.Timestamp >= ing.vcaTail {
			pending = append(pending, e)
		}
	}
	if len(pending) == 0 {
		return 0, 0
	}
	var err error
	if _, statErr := os.Stat(path); statErr != nil {
		_, err = dass.CreateVCA(path, pending)
	} else {
		_, err = dass.AppendToVCA(path, pending)
	}
	if err != nil {
		ing.log.Warn("live VCA append failed", "err", err)
		return 0, 1
	}
	for _, e := range pending {
		ing.vcaSeen[e.Path] = true
	}
	ing.vcaTail = pending[len(pending)-1].Timestamp
	return 1, 0
}

// Catalog returns the current served catalog (a consistent snapshot —
// later scans replace, never mutate, it).
func (ing *Ingester) Catalog() *dass.Catalog {
	ing.mu.RLock()
	defer ing.mu.RUnlock()
	return ing.cat
}

// BadFiles returns the files the last scan skipped.
func (ing *Ingester) BadFiles() []dass.BadFile {
	ing.mu.RLock()
	defer ing.mu.RUnlock()
	return append([]dass.BadFile(nil), ing.bad...)
}

// Stats snapshots the ingest counters.
func (ing *Ingester) Stats() IngestStats {
	ing.mu.RLock()
	defer ing.mu.RUnlock()
	return ing.stats
}
