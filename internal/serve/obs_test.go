package serve

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dassa/internal/obs"
	"dassa/internal/testutil/leakcheck"
)

// scrape fetches /metrics and returns the Prometheus text body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") ||
		!strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// sampleValue finds the value of one exposition line by its full series name
// (including the label set), e.g. `dassa_http_requests_total{route="/read"}`.
func sampleValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %s not in exposition:\n%s", series, body)
	return 0
}

// TestMetricsEndpoint asserts the scrape contract the satellites promise:
// /metrics serves valid Prometheus text including cache hit/miss counters,
// ingest lag, per-route latency histograms, and the degraded-read quality
// counters — and the request/cache counters move after traffic.
func TestMetricsEndpoint(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	for _, p := range stageFiles(t, 3) {
		arrive(t, dir, p)
	}
	reg := obs.NewRegistry()
	s := NewServer(Config{
		Ingest:       IngestConfig{Dir: dir, Poll: 50 * time.Millisecond, LiveVCA: true},
		Nodes:        1,
		CoresPerNode: 2,
		Registry:     reg,
	})
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := scrape(t, ts)
	for _, want := range []string{
		"# TYPE dassa_http_requests_total counter",
		"# TYPE dassa_http_request_seconds histogram",
		"# TYPE dassa_cache_hits_total counter",
		"# TYPE dassa_cache_misses_total counter",
		"# TYPE dassa_ingest_lag_seconds gauge",
		"# TYPE dassa_degraded_reads_total counter",
		"# TYPE dassa_read_retries_total counter",
		"# HELP dassa_http_sheds_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	if v := sampleValue(t, body, "dassa_catalog_files"); v != 3 {
		t.Errorf("dassa_catalog_files = %v, want 3", v)
	}
	if v := sampleValue(t, body, `dassa_http_requests_total{route="/read"}`); v != 0 {
		t.Errorf("pre-traffic /read counter = %v, want 0", v)
	}

	// Traffic: the same window twice → 2 requests, ≥1 cache hit.
	for i := 0; i < 2; i++ {
		if resp := getJSON(t, ts, "/read?ch0=0&ch1=4&t0=0&t1=50&data=0", nil); resp.StatusCode != 200 {
			t.Fatalf("/read status %d", resp.StatusCode)
		}
	}
	body = scrape(t, ts)
	if v := sampleValue(t, body, `dassa_http_requests_total{route="/read"}`); v != 2 {
		t.Errorf("post-traffic /read counter = %v, want 2", v)
	}
	if v := sampleValue(t, body, `dassa_http_request_seconds_count{route="/read"}`); v != 2 {
		t.Errorf("latency histogram count = %v, want 2", v)
	}
	if !strings.Contains(body, `dassa_http_request_seconds_bucket{route="/read",le="+Inf"}`) {
		t.Error("latency histogram lacks the +Inf bucket")
	}
	if v := sampleValue(t, body, "dassa_cache_hits_total"); v == 0 {
		t.Error("repeated read produced no cache hit")
	}
	if v := sampleValue(t, body, "dassa_cache_misses_total"); v == 0 {
		t.Error("first read produced no cache miss")
	}

	// /status carries the quality block (clean run: all zeros).
	var status struct {
		Quality *QualityStats `json:"quality"`
	}
	getJSON(t, ts, "/status", &status)
	if status.Quality == nil {
		t.Fatal("/status lacks the quality block")
	}
	if status.Quality.DegradedReads != 0 || status.Quality.LostFiles != 0 {
		t.Fatalf("clean run reported degradation: %+v", *status.Quality)
	}
}

// TestPprofOptIn asserts profiling endpoints exist only when enabled.
func TestPprofOptIn(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	on := NewServer(Config{Ingest: IngestConfig{Dir: dir}, EnablePprof: true})
	off := NewServer(Config{Ingest: IngestConfig{Dir: dir}})

	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()

	if resp := getJSON(t, tsOn, "/debug/pprof/cmdline", nil); resp.StatusCode != 200 {
		t.Fatalf("pprof enabled: status %d, want 200", resp.StatusCode)
	}
	if resp := getJSON(t, tsOff, "/debug/pprof/cmdline", nil); resp.StatusCode != 404 {
		t.Fatalf("pprof disabled: status %d, want 404", resp.StatusCode)
	}
}
