package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"dassa/internal/cluster"
	"dassa/internal/core"
	"dassa/internal/dasf"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/obs"
	"dassa/internal/obs/trace"
	"dassa/internal/pfs"
)

// Config sizes the daemon.
type Config struct {
	Ingest IngestConfig
	// CacheBytes bounds the block cache (default 64 MiB).
	CacheBytes int64
	// MaxConcurrent bounds simultaneously executing queries; excess
	// requests wait in a bounded queue (default 4).
	MaxConcurrent int
	// MaxQueue bounds the wait queue; a request arriving when the queue is
	// full gets 429 + Retry-After immediately (default 8).
	MaxQueue int
	// QueueWait is the longest a queued request waits for a slot before
	// 429 (default 5s).
	QueueWait time.Duration
	// DetectJobs bounds concurrently executing /detect jobs within the
	// admitted set (default 2) — detection is the expensive workload.
	DetectJobs int
	// RequestTimeout bounds one query request end to end — queue wait,
	// reads, and compute included. A request past its deadline aborts with
	// 504 at the next cancellation point. Zero (the default) means no
	// per-request deadline, the historical CLI-compatible behaviour; client
	// disconnects still cancel either way via the request context.
	RequestTimeout time.Duration
	// Nodes/CoresPerNode size the in-process HAEE engine (defaults 1/4).
	Nodes        int
	CoresPerNode int
	// Workers lists cluster worker addresses (dassw instances). When
	// non-empty, /read and /detect fan out across them through a
	// coordinator; if no worker is healthy the run falls back to the
	// local engine (counted in dassa_cluster_fallbacks_total).
	Workers []string
	// Log receives structured server events (access logs included); nil
	// silences them.
	Log *slog.Logger
	// Registry receives the daemon's metrics; nil uses obs.Default(), so
	// storage-layer counters and server counters land on one /metrics page.
	Registry *obs.Registry
	// TraceRecent/TraceSlowest size the in-memory request-trace store: a
	// ring of the most recent traces plus the slowest outliers retained
	// past eviction. Zero means trace.DefaultRecent / trace.DefaultSlowest.
	TraceRecent  int
	TraceSlowest int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// daemon's mux. Off by default: profiling endpoints expose internals.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.DetectJobs <= 0 {
		c.DetectJobs = 2
	}
	return c
}

// AdmissionStats snapshots the overload-control counters.
type AdmissionStats struct {
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
	InFlight int64 `json:"in_flight"`
}

// admission is the bounded-queue gate in front of the query handlers:
// MaxConcurrent requests execute, MaxQueue more wait (up to QueueWait),
// everyone else gets an immediate 429. The daemon degrades; it does not
// collapse.
type admission struct {
	sem       chan struct{}
	queue     chan struct{}
	queueWait time.Duration
	admitted  atomic.Int64
	queued    atomic.Int64
	rejected  atomic.Int64
	inFlight  atomic.Int64
}

func newAdmission(cfg Config) *admission {
	return &admission{
		sem:       make(chan struct{}, cfg.MaxConcurrent),
		queue:     make(chan struct{}, cfg.MaxQueue),
		queueWait: cfg.QueueWait,
	}
}

// acquire returns a release func, or false if the request must be shed.
func (a *admission) acquire(r *http.Request) (func(), bool) {
	select {
	case a.sem <- struct{}{}:
	default:
		// No free slot: try to queue.
		select {
		case a.queue <- struct{}{}:
		default:
			a.rejected.Add(1)
			return nil, false
		}
		a.queued.Add(1)
		timer := time.NewTimer(a.queueWait)
		defer timer.Stop()
		select {
		case a.sem <- struct{}{}:
			<-a.queue
		case <-timer.C:
			<-a.queue
			a.rejected.Add(1)
			return nil, false
		case <-r.Context().Done():
			<-a.queue
			return nil, false
		}
	}
	a.admitted.Add(1)
	a.inFlight.Add(1)
	return func() {
		a.inFlight.Add(-1)
		<-a.sem
	}, true
}

func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		Admitted: a.admitted.Load(),
		Queued:   a.queued.Load(),
		Rejected: a.rejected.Load(),
		InFlight: a.inFlight.Load(),
	}
}

// Server is the dassd HTTP service: ingester + cache + handlers.
type Server struct {
	cfg        Config
	ing        *Ingester
	cache      *BlockCache
	fw         *core.Framework
	adm        *admission
	co         *cluster.Coordinator
	coFallback atomic.Int64
	jobs       chan struct{}
	jobsDone   atomic.Int64
	panics     atomic.Int64
	cancelled  atomic.Int64
	start      time.Time
	traces     *trace.Store

	log      *slog.Logger
	reg      *obs.Registry
	quality  qualityCounters
	httpReqs map[string]*obs.Counter
	httpLat  map[string]*obs.Histogram
}

// NewServer wires the daemon together. Call s.Ingester().Run (or ScanOnce)
// to populate the catalog, and s.Handler() for the HTTP mux.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cache := NewBlockCache(cfg.CacheBytes)
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	s := &Server{
		cfg:   cfg,
		ing:   NewIngester(cfg.Ingest, cache),
		cache: cache,
		fw: core.New(core.Config{
			Nodes:        cfg.Nodes,
			CoresPerNode: cfg.CoresPerNode,
			FailPolicy:   dass.FailDegrade,
		}),
		adm:    newAdmission(cfg),
		jobs:   make(chan struct{}, cfg.DetectJobs),
		start:  time.Now(),
		traces: trace.NewStore(cfg.TraceRecent, cfg.TraceSlowest),
		log:    obs.OrNop(cfg.Log),
		reg:    reg,
	}
	s.registerMetrics()
	s.initCluster()
	return s
}

// Ingester exposes the daemon's ingest loop.
func (s *Server) Ingester() *Ingester { return s.ing }

// Cache exposes the block cache (tests and /status use it).
func (s *Server) Cache() *BlockCache { return s.cache }

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Query routes stack instrument → recover → timeout → admit → handler.
	// The deadline is armed before admission so it covers queue wait too: a
	// request that spends its whole budget queued 504s instead of running.
	mux.HandleFunc("/search", s.instrument("/search", s.recovered(s.withTimeout(s.admit(s.handleSearch)))))
	mux.HandleFunc("/read", s.instrument("/read", s.recovered(s.withTimeout(s.admit(s.handleRead)))))
	mux.HandleFunc("/detect", s.instrument("/detect", s.recovered(s.withTimeout(s.admit(s.handleDetect)))))
	// /status and /metrics stay outside admission control: they are the
	// endpoints you use to observe overload, so they must answer during
	// overload.
	mux.HandleFunc("/status", s.instrument("/status", s.handleStatus))
	mux.Handle("/metrics", s.reg.Handler())
	// Probe endpoints sit outside admission (and even outside instrument:
	// orchestrators hit them every few seconds and they should not skew
	// the request-latency histograms).
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	// Trace inspection also stays outside instrument: reading traces must
	// not mint traces, or the store would fill with views of itself.
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	if s.cfg.EnablePprof {
		mountPprof(mux)
	}
	return mux
}

// admit wraps a handler with the bounded-queue gate.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.adm.acquire(r)
		if !ok {
			// A request whose context died while queued was cancelled, not
			// shed — report it as such, not as a 429 the client should retry.
			if err := r.Context().Err(); err != nil {
				s.writeCancelled(w, err)
				return
			}
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error": "server overloaded, retry later",
			})
			return
		}
		defer release()
		h(w, r)
	}
}

// withTimeout arms Config.RequestTimeout on the request context. With the
// timeout off this is a no-op passthrough; client disconnects already
// cancel r.Context() either way.
func (s *Server) withTimeout(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.RequestTimeout <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// recovered converts a handler panic into a 500 instead of killing the
// connection (and, under http.Server's default recovery, hiding the cause).
// The panic value and stack go to the structured log; the client gets a
// generic error so internals don't leak.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			s.panics.Add(1)
			s.log.Error("handler panic",
				"url", r.URL.String(), "panic", fmt.Sprint(p), "stack", string(debug.Stack()))
			if sw, ok := w.(*statusWriter); !ok || !sw.wrote {
				writeJSON(w, http.StatusInternalServerError, map[string]any{
					"error": "internal error (panic recovered)",
				})
			}
		}()
		h(w, r)
	}
}

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before the response. There is no stdlib constant for it.
const statusClientClosedRequest = 499

// writeCancelled answers a request whose context died: 504 for a deadline
// the server armed, 499 for a client that disconnected. Cancellation is
// never degraded into a partial 200 — the FailPolicy layers below return
// the context error verbatim precisely so this mapping can happen here.
func (s *Server) writeCancelled(w http.ResponseWriter, err error) {
	s.cancelled.Add(1)
	code := statusClientClosedRequest
	if errors.Is(err, context.DeadlineExceeded) {
		code = http.StatusGatewayTimeout
	}
	writeJSON(w, code, map[string]any{"error": err.Error()})
}

// writeQueryError maps a pipeline error onto the right status: cancellation
// → 499/504, anything else → 500.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	if dass.IsCancellation(err) {
		s.writeCancelled(w, err)
		return
	}
	writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf(format, args...)})
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", name, v)
	}
	return n, nil
}

func queryInt64(r *http.Request, name string, def int64) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", name, v)
	}
	return n, nil
}

func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", name, v)
	}
	return f, nil
}

// fileJSON is one catalog entry in search results.
type fileJSON struct {
	Timestamp   int64  `json:"timestamp"`
	Path        string `json:"path"`
	NumChannels int    `json:"num_channels"`
	NumSamples  int    `json:"num_samples"`
}

func toFileJSON(entries []dass.Entry) []fileJSON {
	out := make([]fileJSON, len(entries))
	for i, e := range entries {
		out[i] = fileJSON{
			Timestamp:   e.Timestamp,
			Path:        e.Path,
			NumChannels: e.Info.NumChannels,
			NumSamples:  e.Info.NumSamples,
		}
	}
	return out
}

// selectEntries applies the das_search grammar to the live catalog:
// e= (regex over the 12-digit timestamp), s=&c= (start + count),
// start=&end= (half-open range), or everything.
func (s *Server) selectEntries(r *http.Request) ([]dass.Entry, error) {
	cat := s.ing.Catalog()
	q := r.URL.Query()
	if e := q.Get("e"); e != "" {
		return cat.SearchRegex(e)
	}
	start, err := queryInt64(r, "s", 0)
	if err != nil {
		return nil, err
	}
	count, err := queryInt(r, "c", 0)
	if err != nil {
		return nil, err
	}
	if start != 0 && count > 0 {
		return cat.SearchStartCount(start, count), nil
	}
	lo, err := queryInt64(r, "start", 0)
	if err != nil {
		return nil, err
	}
	hi, err := queryInt64(r, "end", 0)
	if err != nil {
		return nil, err
	}
	if lo != 0 || hi != 0 {
		if hi == 0 {
			hi = 1 << 62
		}
		return cat.SearchRange(lo, hi), nil
	}
	return cat.Entries(), nil
}

// handleSearch is GET /search — das_search over the live catalog.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	matches, err := s.selectEntries(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total_files": s.ing.Catalog().Len(),
		"matches":     len(matches),
		"files":       toFileJSON(matches),
	})
}

// handleRead is GET /read — a LAV-style channel×time subset over the
// selected files, read through the block cache. Parameters: the /search
// selection grammar plus ch0/ch1 (channel range), t0/t1 (sample range,
// view-relative) and data=0 to return only the summary.
func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	entries, err := s.selectEntries(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	if len(entries) == 0 {
		badRequest(w, "no files match the selection")
		return
	}
	v, err := dass.ViewOver(entries)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	v = v.WithSlabReader(s.cache.SlabReader()).WithContext(r.Context())
	nch, nt := v.Shape()
	ch0, err := queryInt(r, "ch0", 0)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	ch1, err := queryInt(r, "ch1", nch)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	t0, err := queryInt(r, "t0", 0)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	t1, err := queryInt(r, "t1", nt)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	sub, err := v.Subset(ch0, ch1, t0, t1)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	var distributed bool
	var arr *dasf.Array2D
	var tr pfs.Trace
	var gaps []dass.Gap
	if s.co != nil {
		arr, tr, gaps, distributed, err = s.clusterRead(r.Context(), sub)
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
	}
	if !distributed {
		arr, tr, gaps, err = sub.ReadPolicy(dass.FailDegrade)
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
	}
	s.quality.recordRead(tr, gaps)
	if sp := trace.Current(r.Context()); sp != nil {
		sp.SetAttrInt("files", int64(len(entries)))
		sp.SetAttrInt("gaps", int64(len(gaps)))
		sp.SetAttr("distributed", strconv.FormatBool(distributed))
	}
	resp := map[string]any{
		"num_channels": arr.Channels,
		"num_samples":  arr.Samples,
		"files":        len(entries),
		"io": map[string]int64{
			"opens": tr.Opens, "reads": tr.Reads, "bytes_read": tr.BytesRead,
		},
		"gaps":        len(gaps),
		"distributed": distributed,
	}
	if r.URL.Query().Get("data") != "0" {
		rows := make([][]float64, arr.Channels)
		for c := range rows {
			rows[c] = arr.Row(c)
		}
		resp["data"] = rows
	}
	writeJSON(w, http.StatusOK, resp)
}

// regionJSON is one detected event in /detect results.
type regionJSON struct {
	TLo  int     `json:"t_lo"`
	THi  int     `json:"t_hi"`
	ChLo int     `json:"ch_lo"`
	ChHi int     `json:"ch_hi"`
	Peak float64 `json:"peak"`
}

// handleDetect is GET /detect — a windowed detection job on the in-process
// HAEE engine, gated by the bounded job semaphore. op=localsimi (default)
// or stalta, over the /search selection grammar.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	entries, err := s.selectEntries(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	if len(entries) == 0 {
		badRequest(w, "no files match the selection")
		return
	}

	// Bounded job concurrency: detection is the expensive workload, so
	// fewer of them run at once than the admission gate allows in.
	select {
	case s.jobs <- struct{}{}:
		defer func() { <-s.jobs }()
	case <-r.Context().Done():
		s.writeCancelled(w, r.Context().Err())
		return
	}

	v, err := dass.ViewOver(entries)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	v = v.WithSlabReader(s.cache.SlabReader()).WithContext(r.Context())
	rate := 0.0
	if val, ok := entries[0].Info.Global[dasf.KeySamplingFrequency]; ok {
		rate = float64(val.Int)
	}
	if rate <= 0 {
		rate = 100
	}
	threshold, err := queryFloat(r, "threshold", 1.5)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}

	op := r.URL.Query().Get("op")
	if op == "" {
		op = "localsimi"
	}
	t0 := time.Now()
	var regions []detect.Region
	var rep core.Report
	var cres *cluster.Result
	var distributed bool
	// Each op validates its parameters, then runs either across the
	// worker pool (event regions are computed coordinator-side on the
	// merged map, exactly as the local engine would) or in process.
	switch op {
	case "localsimi":
		opt := core.DefaultLocalSimi(rate)
		opt.Threshold = threshold
		if opt.M, err = queryInt(r, "M", opt.M); err != nil {
			badRequest(w, "%v", err)
			return
		}
		if opt.Stride, err = queryInt(r, "stride", opt.Stride); err != nil {
			badRequest(w, "%v", err)
			return
		}
		if s.co != nil {
			cres, distributed, err = s.runCluster(r.Context(), cluster.Request{
				View: v, Op: cluster.OpLocalSimi, Rate: rate, LocalSimi: opt.LocalSimiParams,
			})
		}
		if !distributed {
			_, regions, rep, err = s.fw.LocalSimilarity(v, opt)
		} else if err == nil {
			nch, _ := v.Shape()
			regions = detect.FindEventsBanded(cres.Data, opt.Threshold, max(nch/8, 4))
		}
	case "stalta":
		p := detect.STALTAParams{STASamples: max(int(rate/10), 2), LTASamples: max(int(rate), 8)}
		if p.STASamples, err = queryInt(r, "sta", p.STASamples); err != nil {
			badRequest(w, "%v", err)
			return
		}
		if p.LTASamples, err = queryInt(r, "lta", p.LTASamples); err != nil {
			badRequest(w, "%v", err)
			return
		}
		var out *dasf.Array2D
		if s.co != nil {
			cres, distributed, err = s.runCluster(r.Context(), cluster.Request{
				View: v, Op: cluster.OpSTALTA, Rate: rate, STALTA: p,
			})
			if distributed && err == nil {
				out = cres.Data
			}
		}
		if !distributed {
			out, rep, err = s.fw.STALTA(v, p, "")
		}
		if err == nil {
			nch, _ := v.Shape()
			regions = detect.FindEventsBanded(out, threshold, max(nch/8, 4))
		}
	default:
		badRequest(w, "unknown op %q (want localsimi or stalta)", op)
		return
	}
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	s.jobsDone.Add(1)
	degraded := rep.Degraded()
	if distributed {
		s.quality.recordReport(cres.Quality)
		degraded = cres.Degraded()
	} else {
		s.quality.recordReport(rep.Quality)
	}

	if sp := trace.Current(r.Context()); sp != nil {
		sp.SetAttr("op", op)
		sp.SetAttrInt("files", int64(len(entries)))
		sp.SetAttrInt("events", int64(len(regions)))
		sp.SetAttr("distributed", strconv.FormatBool(distributed))
	}
	events := make([]regionJSON, len(regions))
	for i, reg := range regions {
		events[i] = regionJSON{TLo: reg.TLo, THi: reg.THi, ChLo: reg.ChLo, ChHi: reg.ChHi, Peak: reg.Peak}
	}
	resp := map[string]any{
		"op":          op,
		"files":       len(entries),
		"events":      events,
		"wall_ms":     time.Since(t0).Milliseconds(),
		"degraded":    degraded,
		"phases":      rep.Phases,
		"distributed": distributed,
	}
	if distributed {
		resp["cluster"] = map[string]any{
			"workers":         cres.Workers,
			"shards":          cres.Shards,
			"redispatched":    cres.Redispatched,
			"degraded_shards": cres.DegradedShards,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStatus is GET /status: catalog size, ingest lag, cache and
// admission counters — plus ?file=<name> for the das_info -json view of
// one file in the watched directory.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("file"); name != "" {
		// Confine the detail view to the watched directory.
		path := filepath.Join(s.cfg.Ingest.Dir, filepath.Base(name))
		info, _, err := dasf.ReadInfo(path)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, dasf.NewInfoJSON(info))
		return
	}
	cat := s.ing.Catalog()
	catalog := map[string]any{"files": cat.Len()}
	if cat.Len() > 0 {
		entries := cat.Entries()
		catalog["oldest"] = entries[0].Timestamp
		catalog["newest"] = entries[len(entries)-1].Timestamp
		catalog["num_channels"] = entries[0].Info.NumChannels
	}
	var bad []string
	for _, b := range s.ing.BadFiles() {
		bad = append(bad, b.Path)
	}
	body := map[string]any{
		"uptime_ms":      time.Since(s.start).Milliseconds(),
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
		"build": map[string]any{
			"version": obs.BuildVersion,
			"commit":  obs.BuildCommit,
		},
		"catalog":   catalog,
		"ingest":    s.ing.Stats(),
		"cache":     s.cache.Stats(),
		"admission": s.adm.stats(),
		"quality":   s.quality.stats(),
		"jobs": map[string]any{
			"active": len(s.jobs), "max": cap(s.jobs), "done": s.jobsDone.Load(),
		},
		"bad_files":  bad,
		"quarantine": s.ing.Quarantined(),
	}
	if s.co != nil {
		body["cluster"] = map[string]any{
			"workers":   len(s.cfg.Workers),
			"healthy":   s.co.HealthyWorkers(),
			"fallbacks": s.coFallback.Load(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}
