package serve

import (
	"net"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"dassa/internal/cluster"
	"dassa/internal/dasgen"
	"dassa/internal/testutil/leakcheck"
)

// startShardWorker serves a cluster worker on a loopback listener.
func startShardWorker(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorker(cluster.WorkerConfig{
		Cores:          2,
		HeartbeatEvery: 100 * time.Millisecond,
	})
	// Cleanups run LIFO: Close severs the listener, then Wait joins the
	// serve goroutine.
	var wg sync.WaitGroup
	wg.Add(1)
	t.Cleanup(wg.Wait)
	t.Cleanup(w.Close)
	go func() {
		defer wg.Done()
		_ = w.Serve(ln)
	}()
	return ln.Addr().String()
}

// newClusterServer builds a daemon over dir fanning out to workers, with
// the catalog pre-scanned.
func newClusterServer(t *testing.T, dir string, workers []string) *Server {
	t.Helper()
	s := NewServer(Config{
		Ingest:       IngestConfig{Dir: dir, Poll: time.Hour},
		Nodes:        1,
		CoresPerNode: 2,
		Workers:      workers,
	})
	t.Cleanup(s.Close)
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	return s
}

type clusterDetectResp struct {
	Op          string       `json:"op"`
	Events      []regionJSON `json:"events"`
	Degraded    bool         `json:"degraded"`
	Distributed bool         `json:"distributed"`
}

type clusterReadResp struct {
	NumChannels int         `json:"num_channels"`
	NumSamples  int         `json:"num_samples"`
	Gaps        int         `json:"gaps"`
	Distributed bool        `json:"distributed"`
	Data        [][]float64 `json:"data"`
}

func TestHealthzReadyz(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	if _, err := dasgen.Generate(dir, genCfg(2), nil); err != nil {
		t.Fatal(err)
	}
	s := NewServer(Config{Ingest: IngestConfig{Dir: dir, Poll: time.Hour}})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp := getJSON(t, ts, "/healthz", nil); resp.StatusCode != 200 {
		t.Fatalf("/healthz before scan: %d, want 200", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode != 503 {
		t.Fatalf("/readyz before scan: %d, want 503", resp.StatusCode)
	}
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode != 200 {
		t.Fatalf("/readyz after scan: %d, want 200", resp.StatusCode)
	}
}

func TestClusterDetectAndReadMatchLocal(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	if _, err := dasgen.Generate(dir, genCfg(3), nil); err != nil {
		t.Fatal(err)
	}
	workers := []string{startShardWorker(t), startShardWorker(t)}
	s := newClusterServer(t, dir, workers)
	local := newClusterServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	tsLocal := httptest.NewServer(local.Handler())
	defer tsLocal.Close()

	// Readiness flips once a worker heartbeat lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never turned 200 with live workers")
		}
		time.Sleep(20 * time.Millisecond)
	}

	for _, op := range []string{"localsimi", "stalta"} {
		var got, want clusterDetectResp
		if resp := getJSON(t, ts, "/detect?op="+op, &got); resp.StatusCode != 200 {
			t.Fatalf("cluster /detect?op=%s: %d", op, resp.StatusCode)
		}
		if resp := getJSON(t, tsLocal, "/detect?op="+op, &want); resp.StatusCode != 200 {
			t.Fatalf("local /detect?op=%s: %d", op, resp.StatusCode)
		}
		if !got.Distributed {
			t.Fatalf("op=%s did not run distributed", op)
		}
		if got.Degraded {
			t.Fatalf("op=%s degraded on a healthy cluster", op)
		}
		if !reflect.DeepEqual(got.Events, want.Events) {
			t.Fatalf("op=%s events diverge: cluster %+v local %+v", op, got.Events, want.Events)
		}
	}

	var got, want clusterReadResp
	if resp := getJSON(t, ts, "/read?ch0=1&ch1=7&t0=10&t1=90", &got); resp.StatusCode != 200 {
		t.Fatalf("cluster /read: %d", resp.StatusCode)
	}
	if resp := getJSON(t, tsLocal, "/read?ch0=1&ch1=7&t0=10&t1=90", &want); resp.StatusCode != 200 {
		t.Fatalf("local /read: %d", resp.StatusCode)
	}
	if !got.Distributed || want.Distributed {
		t.Fatalf("distributed flags wrong: cluster %v local %v", got.Distributed, want.Distributed)
	}
	if got.Gaps != 0 || !reflect.DeepEqual(got.Data, want.Data) {
		t.Fatalf("cluster read diverges from local (%d gaps)", got.Gaps)
	}
}

func TestClusterFallsBackWhenAllWorkersDead(t *testing.T) {
	leakcheck.Check(t)
	old := clusterDialTimeout
	clusterDialTimeout = 200 * time.Millisecond
	t.Cleanup(func() { clusterDialTimeout = old })

	dir := t.TempDir()
	if _, err := dasgen.Generate(dir, genCfg(2), nil); err != nil {
		t.Fatal(err)
	}
	// Port 1 refuses connections: workers configured, none will ever dial.
	s := newClusterServer(t, dir, []string{"127.0.0.1:1"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Catalog is scanned but no worker is healthy: not ready.
	if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode != 503 {
		t.Fatalf("/readyz with dead workers: %d, want 503", resp.StatusCode)
	}
	var got clusterDetectResp
	if resp := getJSON(t, ts, "/detect?op=stalta", &got); resp.StatusCode != 200 {
		t.Fatalf("/detect with dead workers: %d, want 200 via local fallback", resp.StatusCode)
	}
	if got.Distributed {
		t.Fatal("run claims distributed with no live worker")
	}
	var status struct {
		Cluster struct {
			Workers   int   `json:"workers"`
			Healthy   int   `json:"healthy"`
			Fallbacks int64 `json:"fallbacks"`
		} `json:"cluster"`
	}
	getJSON(t, ts, "/status", &status)
	if status.Cluster.Workers != 1 || status.Cluster.Healthy != 0 || status.Cluster.Fallbacks < 1 {
		t.Fatalf("status cluster block wrong: %+v", status.Cluster)
	}
}
