package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dassa/internal/dasf"
)

func block(n int) *dasf.Array2D { return dasf.NewArray2D(1, n) }

func TestBlockCacheHitMiss(t *testing.T) {
	c := NewBlockCache(1 << 20)
	key := BlockKey{Path: "a", ChLo: 0, ChHi: 4, TLo: 0, THi: 100}
	loads := 0
	load := func() (*dasf.Array2D, dasf.IOStats, error) {
		loads++
		return block(100), dasf.IOStats{Opens: 1, Reads: 1, BytesRead: 800}, nil
	}

	_, st, hit, err := c.Get(key, load)
	if err != nil || hit || st.Opens != 1 {
		t.Fatalf("first get: hit=%v st=%+v err=%v", hit, st, err)
	}
	_, st, hit, err = c.Get(key, load)
	if err != nil || !hit || st.Opens != 0 {
		t.Fatalf("second get: hit=%v st=%+v err=%v", hit, st, err)
	}
	if loads != 1 {
		t.Fatalf("loader ran %d times", loads)
	}
	cs := c.Stats()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Fatalf("stats %+v", cs)
	}
}

func TestBlockCacheErrorNotCached(t *testing.T) {
	c := NewBlockCache(1 << 20)
	key := BlockKey{Path: "bad"}
	loads := 0
	fail := func() (*dasf.Array2D, dasf.IOStats, error) {
		loads++
		return nil, dasf.IOStats{}, fmt.Errorf("boom")
	}
	if _, _, _, err := c.Get(key, fail); err == nil {
		t.Fatal("want error")
	}
	if _, _, _, err := c.Get(key, fail); err == nil {
		t.Fatal("want error again")
	}
	if loads != 2 {
		t.Fatalf("failed loads must not be cached; loader ran %d times", loads)
	}
}

func TestBlockCacheEviction(t *testing.T) {
	// Budget fits ~2 blocks per shard; inserting many distinct keys on the
	// same path must evict, and the byte account must stay bounded.
	c := NewBlockCache(cacheShards * 2 * 800)
	for i := 0; i < 100; i++ {
		key := BlockKey{Path: "a", TLo: i * 100, THi: (i + 1) * 100}
		c.Get(key, func() (*dasf.Array2D, dasf.IOStats, error) {
			return block(100), dasf.IOStats{}, nil
		})
	}
	cs := c.Stats()
	if cs.Evictions == 0 {
		t.Fatal("no evictions after 100 inserts into a 16-block cache")
	}
	if cs.Bytes > cs.Capacity {
		t.Fatalf("cache over budget: %d > %d", cs.Bytes, cs.Capacity)
	}
}

func TestBlockCacheSingleflight(t *testing.T) {
	c := NewBlockCache(1 << 20)
	key := BlockKey{Path: "a", THi: 100}
	var loads atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	// First caller blocks inside the loader; the rest must coalesce onto it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Get(key, func() (*dasf.Array2D, dasf.IOStats, error) {
			close(started)
			<-gate
			loads.Add(1)
			return block(100), dasf.IOStats{}, nil
		})
	}()
	<-started
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, hit, err := c.Get(key, func() (*dasf.Array2D, dasf.IOStats, error) {
				loads.Add(1)
				return block(100), dasf.IOStats{}, nil
			})
			if err != nil || !hit {
				t.Errorf("coalesced get: hit=%v err=%v", hit, err)
			}
		}()
	}
	// Wait until all followers are parked on the in-flight load, so the
	// test asserts genuine coalescing, not after-the-fact cache hits.
	deadline := time.Now().Add(5 * time.Second)
	for c.waiting.Load() != 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.waiting.Load() != 8 {
		t.Fatalf("only %d followers parked on the in-flight load", c.waiting.Load())
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times under concurrency, want 1", n)
	}
	if cs := c.Stats(); cs.Coalesced != 8 {
		t.Fatalf("coalesced = %d, want 8 (stats %+v)", cs.Coalesced, cs)
	}
}

func TestBlockCacheInvalidatePath(t *testing.T) {
	c := NewBlockCache(1 << 20)
	for i := 0; i < 4; i++ {
		for _, p := range []string{"a", "b"} {
			c.Get(BlockKey{Path: p, TLo: i}, func() (*dasf.Array2D, dasf.IOStats, error) {
				return block(10), dasf.IOStats{}, nil
			})
		}
	}
	c.InvalidatePath("a")
	cs := c.Stats()
	if cs.Entries != 4 {
		t.Fatalf("after invalidate: %d entries, want 4 (only path b)", cs.Entries)
	}
	_, _, hit, _ := c.Get(BlockKey{Path: "b", TLo: 0}, func() (*dasf.Array2D, dasf.IOStats, error) {
		return block(10), dasf.IOStats{}, nil
	})
	if !hit {
		t.Fatal("path b should still be cached")
	}
	_, _, hit, _ = c.Get(BlockKey{Path: "a", TLo: 0}, func() (*dasf.Array2D, dasf.IOStats, error) {
		return block(10), dasf.IOStats{}, nil
	})
	if hit {
		t.Fatal("path a should have been invalidated")
	}
}
