package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/faults"
	"dassa/internal/testutil/leakcheck"
)

// The serve chaos suite proves the daemon's enforcement half of the
// cancellation tentpole: a request deadline (or a vanished client) aborts a
// running multi-rank query at its next cancellation point, maps onto
// 504/499 instead of a degraded 200, and leaves no goroutine behind; a
// poisoned file is circuit-broken out of the catalog after N failed scans
// and readmitted after a clean re-probe.

// slowInjector makes every physical read hang for lat (interruptibly — the
// straggler delay selects on the request context), and removes itself when
// the test ends.
func slowInjector(t *testing.T, lat time.Duration) {
	t.Helper()
	dasf.SetInjector(faults.New(faults.Config{Seed: 1, SlowProb: 1, SlowLatency: lat}))
	t.Cleanup(func() { dasf.SetInjector(nil) })
}

// TestDetectDeadlineCancelsMidRead is the acceptance test: a multi-rank
// /detect whose every read stalls on injected straggler latency must come
// back 504 within 2× the request deadline, count itself in the cancelled
// metric, and leak nothing.
func TestDetectDeadlineCancelsMidRead(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	for _, p := range stageFiles(t, 3) {
		arrive(t, dir, p)
	}

	const deadline = time.Second
	s := NewServer(Config{
		Ingest:         IngestConfig{Dir: dir, Poll: time.Hour},
		RequestTimeout: deadline,
		Nodes:          2,
		CoresPerNode:   2,
	})
	// Catalog first (metadata reads must stay fast), stall reads after.
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	slowInjector(t, 30*time.Second)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	t0 := time.Now()
	resp := getJSON(t, ts, "/detect?op=localsimi", nil)
	elapsed := time.Since(t0)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled /detect returned %d, want 504", resp.StatusCode)
	}
	if elapsed > 2*deadline {
		t.Fatalf("stalled /detect took %v, want within 2x the %v deadline", elapsed, deadline)
	}
	if n := s.cancelled.Load(); n < 1 {
		t.Fatalf("dassa_requests_cancelled_total = %d, want >= 1", n)
	}
	// The cancellation never degrades: no gap accounting may have happened.
	if d := s.quality.degraded.Load(); d != 0 {
		t.Fatalf("cancelled request recorded %d degraded reads; cancellation was masked", d)
	}
}

// TestReadClientDisconnectCancels: the client walking away mid-/read must
// cancel the request (server-side 499 path) and leak nothing.
func TestReadClientDisconnectCancels(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	for _, p := range stageFiles(t, 2) {
		arrive(t, dir, p)
	}
	s := newTestServer(t, dir)
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	slowInjector(t, 30*time.Second)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/read", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	timer := time.AfterFunc(100*time.Millisecond, cancel) // let the read reach the stall
	defer timer.Stop()
	if resp, err := ts.Client().Do(req); err == nil {
		// The transport may deliver the server's 499 before noticing the
		// cancel; either way the request must not have succeeded.
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("cancelled /read returned 200")
		}
	}
	// The handler unwinds asynchronously from the client's point of view.
	deadlineAt := time.Now().Add(5 * time.Second)
	for s.cancelled.Load() < 1 {
		if time.Now().After(deadlineAt) {
			t.Fatal("server never counted the disconnected request as cancelled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPanicRecoveryMiddleware: a handler panic becomes a 500 with the
// panic counted, not a killed connection.
func TestPanicRecoveryMiddleware(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, t.TempDir())
	h := s.instrument("/detect", s.recovered(func(http.ResponseWriter, *http.Request) {
		panic("boom for test")
	}))
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/detect", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Fatalf("500 body leaks or is empty: %q", rec.Body.String())
	}
	if n := s.panics.Load(); n != 1 {
		t.Fatalf("dassa_panics_total = %d, want 1", n)
	}
}

// TestQuarantineAndReadmit walks one poisoned file through the full state
// machine: N consecutive failed scans quarantine it (it disappears from
// bad_files and is no longer probed), failed re-probes double the backoff,
// and one clean probe after the file is fixed readmits it to the catalog.
func TestQuarantineAndReadmit(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	staged := stageFiles(t, 3)
	for _, p := range staged[:2] {
		arrive(t, dir, p)
	}
	// A half-copied minute: right name, garbage bytes.
	poison := filepath.Join(dir, filepath.Base(staged[2]))
	if err := os.WriteFile(poison, []byte("not a dasf file"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewServer(Config{Ingest: IngestConfig{
		Dir:               dir,
		Poll:              time.Hour, // scans are driven by hand
		QuarantineAfter:   2,
		QuarantineBackoff: 60 * time.Millisecond,
	}})
	scan := func() {
		t.Helper()
		if err := s.Ingester().ScanOnce(); err != nil {
			t.Fatal(err)
		}
	}

	// Scan 1: first failure — still just a bad file.
	scan()
	if q := s.Ingester().Quarantined(); len(q) != 0 {
		t.Fatalf("quarantined after 1 failure: %+v", q)
	}
	if bad := s.Ingester().BadFiles(); len(bad) != 1 {
		t.Fatalf("bad files after scan 1: %d, want 1", len(bad))
	}

	// Scan 2: second consecutive failure crosses QuarantineAfter.
	scan()
	q := s.Ingester().Quarantined()
	if len(q) != 1 || q[0].Path != poison || q[0].Fails != 2 {
		t.Fatalf("after 2 failures: %+v, want %s quarantined with 2 fails", q, poison)
	}
	if st := s.Ingester().Stats(); st.QuarantinedFiles != 1 || st.QuarantineEvents != 1 {
		t.Fatalf("stats after quarantine: %+v", st)
	}

	// While quarantined and inside the backoff window the file is skipped
	// entirely: not probed, not in bad_files, not in the catalog.
	scan()
	if bad := s.Ingester().BadFiles(); len(bad) != 0 {
		t.Fatalf("quarantined file still probed: %+v", bad)
	}
	if n := s.Ingester().Catalog().Len(); n != 2 {
		t.Fatalf("catalog has %d files, want the 2 healthy ones", n)
	}

	// Past the backoff the re-probe runs, fails, and doubles the backoff.
	time.Sleep(80 * time.Millisecond)
	scan()
	q = s.Ingester().Quarantined()
	if len(q) != 1 || q[0].Fails != 3 {
		t.Fatalf("failed re-probe not recorded: %+v", q)
	}

	// /status surfaces the quarantine list.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var status struct {
		Quarantine []QuarantinedFile `json:"quarantine"`
	}
	getJSON(t, ts, "/status", &status)
	if len(status.Quarantine) != 1 || status.Quarantine[0].Path != poison {
		t.Fatalf("/status quarantine: %+v", status.Quarantine)
	}

	// The recorder finishes delivering the file; the next due probe is
	// clean and readmits it.
	raw, err := os.ReadFile(staged[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(poison, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // past the doubled backoff
	scan()
	if q := s.Ingester().Quarantined(); len(q) != 0 {
		t.Fatalf("fixed file still quarantined: %+v", q)
	}
	st := s.Ingester().Stats()
	if st.ReadmittedFiles != 1 || st.QuarantinedFiles != 0 {
		t.Fatalf("stats after readmission: %+v", st)
	}
	if n := s.Ingester().Catalog().Len(); n != 3 {
		t.Fatalf("catalog has %d files after readmission, want 3", n)
	}
}

// TestCancelMetricsExposed: the new counters appear on /metrics under
// their documented names.
func TestCancelMetricsExposed(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, t.TempDir())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"dassa_requests_cancelled_total",
		"dassa_panics_total",
		"dassa_quarantined_files",
		"dassa_quarantine_events_total",
		"dassa_readmitted_files_total",
	} {
		if !strings.Contains(string(body), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}
