package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dassa/internal/obs/trace"
	"dassa/internal/testutil/leakcheck"
)

// TestTraceMiddleware drives a traced request end to end through the
// daemon: the response echoes an X-Dassa-Trace id, /debug/traces lists the
// trace, and /debug/traces/{id} returns the full span tree with the
// handler's child spans attached under the HTTP root.
func TestTraceMiddleware(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	for _, p := range stageFiles(t, 2) {
		arrive(t, dir, p)
	}
	s := newTestServer(t, dir)
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// An inbound X-Dassa-Trace id must be adopted and echoed, so callers
	// can stitch the daemon's trace into their own.
	const inbound = "feedc0de00000000000000000000cafe"
	req, err := http.NewRequest("GET", ts.URL+"/read?data=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.Header, inbound)
	hresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if got := hresp.Header.Get(trace.Header); got != inbound {
		t.Fatalf("trace header not echoed: got %q want %q", got, inbound)
	}

	// A request without the header gets a freshly minted id.
	resp := getJSON(t, ts, "/read?data=0", nil)
	minted := resp.Header.Get(trace.Header)
	if _, ok := trace.ParseID(minted); !ok {
		t.Fatalf("minted trace id %q does not parse", minted)
	}
	if minted == inbound {
		t.Fatal("second request reused the first request's trace id")
	}

	// The index lists both traces.
	var index struct {
		Stats  trace.StoreStats `json:"stats"`
		Recent []trace.Summary  `json:"recent"`
	}
	getJSON(t, ts, "/debug/traces", &index)
	if index.Stats.Added < 2 {
		t.Fatalf("trace store recorded %d traces, want >= 2", index.Stats.Added)
	}
	found := false
	for _, sum := range index.Recent {
		if sum.TraceID == trace.ID(inbound) {
			found = true
		}
	}
	if !found {
		t.Fatalf("inbound trace %s not in /debug/traces recent list: %+v", inbound, index.Recent)
	}

	// The detail view holds the whole tree: HTTP root plus the storage
	// layer's dass.read child, with the root carrying build info.
	var td trace.TraceData
	getJSON(t, ts, "/debug/traces/"+inbound, &td)
	if td.Root != "http /read" {
		t.Fatalf("root span = %q, want %q", td.Root, "http /read")
	}
	names := map[string]bool{}
	for _, sp := range td.Spans {
		names[sp.Name] = true
	}
	if !names["dass.read"] {
		t.Fatalf("trace %s has no dass.read span: %v", inbound, names)
	}
	if orphans := td.Orphans(); len(orphans) != 0 {
		t.Fatalf("trace has %d orphan spans: %v", len(orphans), orphans)
	}
	rootAttrs := map[string]string{}
	for _, sp := range td.Spans {
		if sp.Name == "http /read" {
			for _, a := range sp.Attrs {
				rootAttrs[a.K] = a.V
			}
		}
	}
	for _, k := range []string{"route", "build_version", "build_commit", "uptime_seconds"} {
		if _, ok := rootAttrs[k]; !ok {
			t.Errorf("root span missing attr %q (have %v)", k, rootAttrs)
		}
	}

	// A /detect run nests the compute facade and engine phases.
	dresp := getJSON(t, ts, "/detect?op=stalta", nil)
	did := dresp.Header.Get(trace.Header)
	var dtd trace.TraceData
	getJSON(t, ts, "/debug/traces/"+did, &dtd)
	dnames := map[string]bool{}
	for _, sp := range dtd.Spans {
		dnames[sp.Name] = true
	}
	for _, want := range []string{"http /detect", "core.stalta", "haee.read", "haee.compute"} {
		if !dnames[want] {
			t.Errorf("detect trace missing span %q (have %v)", want, dnames)
		}
	}
}

// TestTraceEndpointErrors covers the two failure shapes of the detail
// endpoint: a malformed id is a 400, a well-formed but unknown id a 404.
func TestTraceEndpointErrors(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, t.TempDir())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := getJSON(t, ts, "/debug/traces/not!hex", nil)
	if resp.StatusCode != 400 {
		t.Fatalf("malformed id: status %d, want 400", resp.StatusCode)
	}
	resp = getJSON(t, ts, "/debug/traces/"+strings.Repeat("ab", 16), nil)
	if resp.StatusCode != 404 {
		t.Fatalf("unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestStatusBuildInfo checks /status carries uptime and linker-stamped
// build identity — the same fields every trace's root span is stamped with.
func TestStatusBuildInfo(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, t.TempDir())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var body struct {
		UptimeSeconds *int64 `json:"uptime_seconds"`
		Build         struct {
			Version string `json:"version"`
			Commit  string `json:"commit"`
		} `json:"build"`
	}
	getJSON(t, ts, "/status", &body)
	if body.UptimeSeconds == nil {
		t.Fatal("/status has no uptime_seconds")
	}
	if body.Build.Version == "" || body.Build.Commit == "" {
		t.Fatalf("/status build info empty: %+v", body.Build)
	}
}
