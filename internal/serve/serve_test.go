package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/testutil/leakcheck"
)

func genCfg(files int) dasgen.Config {
	return dasgen.Config{
		Channels: 8, SampleRate: 50, FileSeconds: 1, NumFiles: files,
		Seed: 11, DType: dasf.Float64,
	}
}

// stageFiles generates `total` minute files in a staging dir and returns
// their paths in time order — the test drip-feeds them into the watch dir.
func stageFiles(t *testing.T, total int) []string {
	t.Helper()
	stage := t.TempDir()
	paths, err := dasgen.Generate(stage, genCfg(total), nil)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// arrive copies src into dir the way a recorder delivers a minute file:
// write to a temp name, then rename into place.
func arrive(t *testing.T, dir, src string) string {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, filepath.Base(src))
	tmp := dst + ".part"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		t.Fatal(err)
	}
	return dst
}

func newTestServer(t *testing.T, dir string) *Server {
	t.Helper()
	return NewServer(Config{
		Ingest:       IngestConfig{Dir: dir, Poll: 50 * time.Millisecond, LiveVCA: true},
		Nodes:        1,
		CoresPerNode: 2,
	})
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp
}

func TestIngestSearchAndLiveVCA(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	staged := stageFiles(t, 6)
	for _, p := range staged[:4] {
		arrive(t, dir, p)
	}

	s := newTestServer(t, dir)
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var sr struct {
		TotalFiles int `json:"total_files"`
		Matches    int `json:"matches"`
		Files      []fileJSON
	}
	if resp := getJSON(t, ts, "/search", &sr); resp.StatusCode != 200 {
		t.Fatalf("/search status %d", resp.StatusCode)
	}
	if sr.TotalFiles != 4 || sr.Matches != 4 {
		t.Fatalf("search over 4 files: %+v", sr)
	}

	// A new minute arrives; the next poll makes it searchable.
	arrive(t, dir, staged[4])
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts, "/search", &sr)
	if sr.TotalFiles != 5 {
		t.Fatalf("after arrival: %d files, want 5", sr.TotalFiles)
	}

	// The live VCA covers the series and was extended, not rebuilt.
	vca := filepath.Join(dir, LiveVCAName)
	info, _, err := dasf.ReadInfo(vca)
	if err != nil {
		t.Fatalf("live VCA: %v", err)
	}
	if len(info.Members) != 5 {
		t.Fatalf("live VCA has %d members, want 5", len(info.Members))
	}
	if st := s.Ingester().Stats(); st.VCAAppends < 2 || st.FilesIngested != 5 {
		t.Fatalf("ingest stats %+v", st)
	}

	// A corrupt half-copied file is skipped and visible in /status, and
	// never kills the scan.
	if err := os.WriteFile(filepath.Join(dir, "junk_270620100000.dasf"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	var status struct {
		Catalog  map[string]any `json:"catalog"`
		Ingest   IngestStats    `json:"ingest"`
		BadFiles []string       `json:"bad_files"`
	}
	getJSON(t, ts, "/status", &status)
	if status.Ingest.BadFiles != 1 || len(status.BadFiles) != 1 {
		t.Fatalf("bad file not reported: %+v", status)
	}
	if status.Catalog["files"].(float64) != 5 {
		t.Fatalf("catalog %+v", status.Catalog)
	}
}

func TestReadThroughCache(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	for _, p := range stageFiles(t, 3) {
		arrive(t, dir, p)
	}
	s := newTestServer(t, dir)
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type readResp struct {
		NumChannels int              `json:"num_channels"`
		NumSamples  int              `json:"num_samples"`
		IO          map[string]int64 `json:"io"`
		Data        [][]float64      `json:"data"`
		Gaps        int              `json:"gaps"`
	}
	var r1, r2 readResp
	url := "/read?ch0=2&ch1=6&t0=10&t1=120"
	if resp := getJSON(t, ts, url, &r1); resp.StatusCode != 200 {
		t.Fatalf("/read status %d", resp.StatusCode)
	}
	if r1.NumChannels != 4 || r1.NumSamples != 110 || len(r1.Data) != 4 {
		t.Fatalf("read shape: %+v", r1)
	}
	if r1.IO["opens"] == 0 {
		t.Fatal("first read should hit disk")
	}
	getJSON(t, ts, url, &r2)
	if r2.IO["opens"] != 0 {
		t.Fatalf("second read did %d opens, want 0 (cache)", r2.IO["opens"])
	}
	var status struct {
		Cache CacheStats `json:"cache"`
	}
	getJSON(t, ts, "/status", &status)
	if status.Cache.Hits == 0 || status.Cache.Misses == 0 {
		t.Fatalf("cache counters: %+v", status.Cache)
	}

	// Same values both times.
	for c := range r1.Data {
		for i := range r1.Data[c] {
			if r1.Data[c][i] != r2.Data[c][i] {
				t.Fatalf("cached read differs at [%d][%d]", c, i)
			}
		}
	}
}

func TestDetectEndpoints(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	for _, p := range stageFiles(t, 3) {
		arrive(t, dir, p)
	}
	s := newTestServer(t, dir)
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var dr struct {
		Op     string       `json:"op"`
		Events []regionJSON `json:"events"`
		WallMS float64      `json:"wall_ms"`
	}
	if resp := getJSON(t, ts, "/detect?op=stalta&sta=3&lta=25", &dr); resp.StatusCode != 200 {
		t.Fatalf("/detect stalta status %d", resp.StatusCode)
	}
	if dr.Op != "stalta" {
		t.Fatalf("detect response %+v", dr)
	}
	if resp := getJSON(t, ts, "/detect?op=localsimi&M=6&stride=5", &dr); resp.StatusCode != 200 {
		t.Fatalf("/detect localsimi status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/detect?op=nope", nil); resp.StatusCode != 400 {
		t.Fatalf("unknown op: status %d, want 400", resp.StatusCode)
	}
}

func TestStatusFileDetail(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	staged := stageFiles(t, 2)
	for _, p := range staged {
		arrive(t, dir, p)
	}
	s := newTestServer(t, dir)
	if err := s.Ingester().ScanOnce(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var info dasf.InfoJSON
	if resp := getJSON(t, ts, "/status?file="+filepath.Base(staged[0]), &info); resp.StatusCode != 200 {
		t.Fatalf("file detail status %d", resp.StatusCode)
	}
	if info.Kind != "data" || info.NumChannels != 8 {
		t.Fatalf("file detail %+v", info)
	}
	// Path traversal is confined to the watched dir.
	if resp := getJSON(t, ts, "/status?file=../../etc/passwd", nil); resp.StatusCode != 404 {
		t.Fatalf("traversal status %d, want 404", resp.StatusCode)
	}
}

// TestAdmissionControl drives the gate directly with a blocking handler:
// 1 slot, 1 queue spot — the third concurrent request must shed with 429
// and Retry-After, and the queued one must complete once the slot frees.
func TestAdmissionControl(t *testing.T) {
	leakcheck.Check(t)
	s := NewServer(Config{
		Ingest:        IngestConfig{Dir: t.TempDir()},
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueWait:     5 * time.Second,
	})
	holding := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	h := s.admit(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(holding); <-release })
		w.WriteHeader(200)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	codes := make(chan int, 2)
	go func() {
		resp, err := ts.Client().Get(ts.URL)
		if err == nil {
			codes <- resp.StatusCode
			resp.Body.Close()
		}
	}()
	<-holding // request 1 now owns the only slot

	go func() {
		resp, err := ts.Client().Get(ts.URL)
		if err == nil {
			codes <- resp.StatusCode
			resp.Body.Close()
		}
	}()
	// Wait until request 2 occupies the queue spot.
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.queued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.adm.queued.Load() == 0 {
		t.Fatal("second request never queued")
	}

	// Request 3: slot busy, queue full → immediate 429.
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	for i := 0; i < 2; i++ {
		select {
		case code := <-codes:
			if code != 200 {
				t.Fatalf("request finished with %d", code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("requests did not complete after release")
		}
	}
	st := s.adm.stats()
	if st.Admitted != 2 || st.Rejected != 1 {
		t.Fatalf("admission stats %+v", st)
	}
}
