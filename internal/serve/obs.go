package serve

import (
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"dassa/internal/dass"
	"dassa/internal/obs"
	"dassa/internal/obs/trace"
	"dassa/internal/pfs"
)

// QualityStats aggregates data-loss accounting over the daemon's life:
// how many reads came back degraded, what they masked, and what the retry
// layer spent keeping the rest clean. Surfaced in /status ("quality") and
// as dassa_degraded_* counters on /metrics.
type QualityStats struct {
	DegradedReads int64 `json:"degraded_reads"` // reads that returned ≥1 gap
	Gaps          int64 `json:"gaps"`           // NaN-masked rectangles served
	MaskedSamples int64 `json:"masked_samples"` // cells masked with NaN
	LostFiles     int64 `json:"lost_files"`     // member files that stayed bad
	Retries       int64 `json:"retries"`        // storage retries spent
}

// qualityCounters is the atomic store behind QualityStats.
type qualityCounters struct {
	degraded, gaps, masked, lost, retries atomic.Int64
}

func (q *qualityCounters) stats() QualityStats {
	return QualityStats{
		DegradedReads: q.degraded.Load(),
		Gaps:          q.gaps.Load(),
		MaskedSamples: q.masked.Load(),
		LostFiles:     q.lost.Load(),
		Retries:       q.retries.Load(),
	}
}

// recordRead folds one /read result (trace + raw gap list) in.
func (q *qualityCounters) recordRead(tr pfs.Trace, gaps []dass.Gap) {
	q.retries.Add(tr.Retries)
	if len(gaps) == 0 {
		return
	}
	q.degraded.Add(1)
	q.gaps.Add(int64(len(gaps)))
	q.masked.Add(tr.MaskedSamples)
	files := map[string]bool{}
	for _, g := range gaps {
		files[g.File] = true
	}
	q.lost.Add(int64(len(files)))
}

// recordReport folds one engine run's QualityReport in (nil = clean).
func (q *qualityCounters) recordReport(rep *dass.QualityReport) {
	if rep == nil {
		return
	}
	q.retries.Add(rep.Retries)
	if !rep.Degraded() {
		return
	}
	q.degraded.Add(1)
	q.gaps.Add(int64(len(rep.Gaps)))
	q.masked.Add(rep.LostSamples)
	q.lost.Add(int64(len(rep.LostFiles)))
}

// registerMetrics wires the server's components into its registry. The
// cache, ingester, and admission gate already keep their own atomics, so
// they are exposed func-backed — a scrape reads the live values; nothing
// is double-counted. Registration is idempotent and re-registration
// rebinds the funcs, so repeated NewServer calls (tests) are safe.
func (s *Server) registerMetrics() {
	reg := s.reg

	s.httpReqs = map[string]*obs.Counter{}
	s.httpLat = map[string]*obs.Histogram{}
	for _, rt := range []string{"/search", "/read", "/detect", "/status"} {
		s.httpReqs[rt] = reg.Counter("dassa_http_requests_total",
			"HTTP requests served, by route", obs.L("route", rt))
		s.httpLat[rt] = reg.Histogram("dassa_http_request_seconds",
			"HTTP request latency in seconds, by route", obs.LatencyBuckets(), obs.L("route", rt))
	}

	// Admission gate: sheds are the 429s the bounded queue hands out.
	reg.CounterFunc("dassa_http_sheds_total",
		"requests shed with 429 by admission control",
		func() float64 { return float64(s.adm.rejected.Load()) })
	reg.CounterFunc("dassa_http_admitted_total",
		"requests admitted past the gate",
		func() float64 { return float64(s.adm.admitted.Load()) })
	reg.GaugeFunc("dassa_http_inflight",
		"admitted queries executing right now",
		func() float64 { return float64(s.adm.inFlight.Load()) })
	reg.GaugeFunc("dassa_http_queue_depth",
		"queries waiting for an execution slot",
		func() float64 { return float64(len(s.adm.queue)) })

	// Block cache.
	reg.CounterFunc("dassa_cache_hits_total", "block cache hits",
		func() float64 { return float64(s.cache.hits.Load()) })
	reg.CounterFunc("dassa_cache_misses_total", "block cache misses (loader runs)",
		func() float64 { return float64(s.cache.misses.Load()) })
	reg.CounterFunc("dassa_cache_coalesced_total",
		"waiters that piggybacked on an in-flight load",
		func() float64 { return float64(s.cache.coalesced.Load()) })
	reg.CounterFunc("dassa_cache_evictions_total", "blocks evicted by the LRU",
		func() float64 { return float64(s.cache.evictions.Load()) })
	reg.GaugeFunc("dassa_cache_bytes", "resident cached block bytes",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.GaugeFunc("dassa_cache_entries", "blocks resident in the cache",
		func() float64 { return float64(s.cache.Stats().Entries) })

	// Ingest loop.
	reg.CounterFunc("dassa_ingest_scans_total", "ingest poll cycles completed",
		func() float64 { return float64(s.ing.Stats().Scans) })
	reg.CounterFunc("dassa_ingest_files_total",
		"new files ingested over the daemon's life",
		func() float64 { return float64(s.ing.Stats().FilesIngested) })
	reg.GaugeFunc("dassa_ingest_lag_seconds",
		"newest ingested file's mtime-to-catalog latency (-0.001 until first ingest)",
		func() float64 { return float64(s.ing.Stats().LagMS) / 1000 })
	reg.GaugeFunc("dassa_catalog_files", "files in the served catalog",
		func() float64 { return float64(s.ing.Stats().FilesTotal) })

	// Degraded-read quality accounting.
	reg.CounterFunc("dassa_degraded_reads_total",
		"reads served with at least one NaN-masked gap",
		func() float64 { return float64(s.quality.degraded.Load()) })
	reg.CounterFunc("dassa_read_gaps_total", "NaN-masked gap rectangles served",
		func() float64 { return float64(s.quality.gaps.Load()) })
	reg.CounterFunc("dassa_masked_samples_total", "samples masked with NaN",
		func() float64 { return float64(s.quality.masked.Load()) })
	reg.CounterFunc("dassa_lost_files_total",
		"member files that stayed bad after retries",
		func() float64 { return float64(s.quality.lost.Load()) })
	reg.CounterFunc("dassa_read_retries_total",
		"storage retries spent by request reads",
		func() float64 { return float64(s.quality.retries.Load()) })

	// Cancellation, panic recovery, and quarantine.
	reg.CounterFunc("dassa_requests_cancelled_total",
		"requests aborted by client disconnect (499) or deadline (504)",
		func() float64 { return float64(s.cancelled.Load()) })
	reg.CounterFunc("dassa_panics_total",
		"handler panics recovered into 500s",
		func() float64 { return float64(s.panics.Load()) })
	reg.GaugeFunc("dassa_quarantined_files",
		"poisoned files currently circuit-broken out of the catalog",
		func() float64 { return float64(s.ing.Stats().QuarantinedFiles) })
	reg.CounterFunc("dassa_quarantine_events_total",
		"files moved into quarantine over the daemon's life",
		func() float64 { return float64(s.ing.Stats().QuarantineEvents) })
	reg.CounterFunc("dassa_readmitted_files_total",
		"quarantined files readmitted after a clean re-probe",
		func() float64 { return float64(s.ing.Stats().ReadmittedFiles) })
}

// statusWriter captures the status code a handler writes, for metrics and
// the access log, and whether anything was written at all — the recovery
// middleware must not stack a 500 on a half-sent response.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true // implicit 200 path
	return w.ResponseWriter.Write(p)
}

// instrument wraps a route handler with latency/count metrics, one
// structured access-log line per request, and the request trace's root
// span. The trace ID comes from the client's X-Dassa-Trace header when it
// carries one (so a caller can stitch our trace into its own), is minted
// fresh otherwise, and is always echoed back on the response.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	ctr := s.httpReqs[route]
	lat := s.httpLat[route]
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		id := trace.OrNew(r.Header.Get(trace.Header))
		sw.Header().Set(trace.Header, string(id))
		ctx, root := trace.New(r.Context(), s.traces, "dassd", id, "http "+route)
		root.SetAttr("route", route)
		root.SetAttr("build_version", obs.BuildVersion)
		root.SetAttr("build_commit", obs.BuildCommit)
		root.SetAttrInt("uptime_seconds", int64(time.Since(s.start).Seconds()))
		h(sw, r.WithContext(ctx))
		d := time.Since(t0)
		if sw.code >= 400 {
			root.SetStatus("error")
			root.SetAttrInt("http_status", int64(sw.code))
		}
		root.End()
		ctr.Inc()
		lat.Observe(d.Seconds())
		shed := sw.code == http.StatusTooManyRequests
		s.log.Info("request",
			"route", route, "status", sw.code, "dur_ms", d.Milliseconds(), "shed", shed,
			"trace_id", id)
	}
}

// mountPprof exposes net/http/pprof on the mux (opt-in via
// Config.EnablePprof — profiling endpoints leak internals, so the default
// daemon serves none of them).
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
