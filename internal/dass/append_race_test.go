package dass

import (
	"path/filepath"
	"sync"
	"testing"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
)

// TestAppendToVCARacesReaders is the daemon's ingest path in miniature: one
// goroutine extends a live VCA with AppendToVCA while several readers open
// and read the same VCA in a loop. Run under -race. Every read must see a
// consistent file — either the old member list or the new one, never a
// truncated or mixed header — which is what WriteVCA's write-then-rename
// guarantees.
func TestAppendToVCARacesReaders(t *testing.T) {
	dir := t.TempDir()
	const files = 12
	cfg := dasgen.Config{
		Channels: 6, SampleRate: 50, FileSeconds: 1, NumFiles: files,
		Seed: 3, DType: dasf.Float64,
	}
	if _, err := dasgen.Generate(dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	cat, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := cat.Entries()
	spf := cfg.SamplesPerFile()

	vca := filepath.Join(dir, "live.vca.dasf")
	if _, err := CreateVCA(vca, entries[:2]); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				v, err := OpenView(vca)
				if err != nil {
					t.Errorf("reader: open: %v", err)
					return
				}
				nch, nt := v.Shape()
				if nch != 6 || nt%spf != 0 || nt < 2*spf || nt > files*spf {
					t.Errorf("reader: inconsistent shape %d×%d", nch, nt)
					return
				}
				if _, _, err := v.Read(); err != nil {
					t.Errorf("reader: read: %v", err)
					return
				}
			}
		}()
	}

	for i := 2; i < files; i++ {
		if _, err := AppendToVCA(vca, entries[i:i+1]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()

	v, err := OpenView(vca)
	if err != nil {
		t.Fatal(err)
	}
	if _, nt := v.Shape(); nt != files*spf {
		t.Fatalf("final VCA has %d samples, want %d", nt, files*spf)
	}
}
