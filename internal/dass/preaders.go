package dass

import (
	"fmt"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/mpi"
	"dassa/internal/obs"
	"dassa/internal/pfs"
)

// Partition splits n items into p near-equal contiguous blocks and returns
// block rank's bounds. The DASSA analysis partitions channels this way.
func Partition(n, p, rank int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = rank*base + min(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

// Block is one rank's share of a parallel read: channels [ChLo, ChHi) of
// the view, over the view's entire time extent.
type Block struct {
	Data *dasf.Array2D
	// ChLo and ChHi are view-relative channel bounds of this rank's block.
	ChLo, ChHi int
}

// traceVec flattens a trace for an MPI reduction.
func traceVec(tr pfs.Trace) []int64 {
	return []int64{tr.Opens, tr.Reads, tr.BytesRead, tr.Writes, tr.BytesWritten,
		tr.Broadcasts, tr.BcastBytes, tr.ExchangeRounds, tr.ExchangeBytes,
		tr.Retries, tr.Faults, tr.SlowReads, tr.MaskedSamples}
}

// reduceTrace sums per-rank traces to rank 0. Other ranks get a zero trace.
func reduceTrace(c *mpi.Comm, tr pfs.Trace) pfs.Trace {
	sum := mpi.Reduce(c, 0, traceVec(tr), mpi.SumI64)
	if c.Rank() != 0 {
		return pfs.Trace{}
	}
	return pfs.Trace{
		Opens: sum[0], Reads: sum[1], BytesRead: sum[2], Writes: sum[3], BytesWritten: sum[4],
		Broadcasts: sum[5], BcastBytes: sum[6], ExchangeRounds: sum[7], ExchangeBytes: sum[8],
		Retries: sum[9], Faults: sum[10], SlowReads: sum[11], MaskedSamples: sum[12],
		Processes: c.Size(),
	}
}

// GatherQuality gathers per-rank degrade gaps to rank 0 and builds the
// run's QualityReport there (nil on other ranks). It is a collective —
// every rank must call it, with its own local gaps and local (unreduced)
// trace; the robustness counters are reduced internally.
func GatherQuality(c *mpi.Comm, v *View, gaps []Gap, local pfs.Trace) *QualityReport {
	sum := mpi.Reduce(c, 0, []int64{local.Retries, local.Faults, local.SlowReads}, mpi.SumI64)
	flatGaps := mpi.Gather(c, 0, encodeGaps(gaps))
	if c.Rank() != 0 {
		return nil
	}
	var all []Gap
	for _, fg := range flatGaps {
		all = append(all, decodeGaps(fg, v)...)
	}
	return buildReport(all, v, pfs.Trace{Retries: sum[0], Faults: sum[1], SlowReads: sum[2]})
}

// finishRead is the common tail of every parallel reader: reduce the trace,
// then (under FailDegrade — world-uniform, so the collectives stay aligned)
// gather the gaps and build the QualityReport on rank 0.
func finishRead(c *mpi.Comm, v *View, blk Block, local pfs.Trace, gaps []Gap, policy FailPolicy) (Block, pfs.Trace, *QualityReport) {
	tr := reduceTrace(c, local)
	if policy != FailDegrade {
		return blk, tr, nil
	}
	return blk, tr, GatherQuality(c, v, gaps, local)
}

// ReadIndependent is the naive parallel strategy: every rank reads its own
// channel block straight from the underlying file(s) with independent
// hyperslab requests. On an RCA (one big file) this is the standard
// optimized pattern; on a VCA it issues O(p×n) small requests — the
// pathology §IV-B describes. Returns each rank's block; the globally
// reduced trace is returned on rank 0.
//
// Under FailAbort an I/O failure panics: the whole world must abort
// together (mpi.Run reports it as a *mpi.RankError), because a rank that
// bailed out quietly would deadlock its peers at the next collective.
func ReadIndependent(c *mpi.Comm, v *View) (Block, pfs.Trace) {
	blk, tr, _ := ReadIndependentPolicy(c, v, FailAbort)
	return blk, tr
}

// ReadIndependentPolicy is ReadIndependent with an explicit fail policy:
// under FailDegrade a member that stays bad after retries becomes a
// NaN-masked gap in this rank's block and a QualityReport entry on rank 0.
func ReadIndependentPolicy(c *mpi.Comm, v *View, policy FailPolicy) (Block, pfs.Trace, *QualityReport) {
	nch, _ := v.Shape()
	lo, hi := Partition(nch, c.Size(), c.Rank())
	blk := Block{ChLo: lo, ChHi: hi}
	var local pfs.Trace
	var gaps []Gap
	if lo < hi {
		sub, err := v.SubsetChannels(lo, hi)
		if err != nil {
			panic(fmt.Errorf("dass: independent read: %w", err))
		}
		t0 := time.Now()
		data, tr, subGaps, err := sub.ReadPolicy(policy)
		v.ObserveSpan(c.Rank(), obs.PhaseRead, time.Since(t0))
		if err != nil {
			panic(fmt.Errorf("dass: independent read: %w", err))
		}
		blk.Data = data
		local = tr
		// Sub-view gaps are relative to this rank's channel block; lift them
		// into view coordinates before the gather.
		for _, g := range subGaps {
			g.ChLo += lo
			g.ChHi += lo
			gaps = append(gaps, g)
		}
	}
	return finishRead(c, v, blk, local, gaps, policy)
}

// ReadCollectivePerFile is the baseline from Figure 5a: all processes share
// each member file one at a time; an aggregator rank reads the file's slab
// with one large request and broadcasts it, and every rank keeps its own
// channel rows. One broadcast per file is exactly the cost the paper
// blames for this method's poor scaling.
func ReadCollectivePerFile(c *mpi.Comm, v *View) (Block, pfs.Trace) {
	blk, tr, _ := ReadCollectivePerFilePolicy(c, v, FailAbort)
	return blk, tr
}

// ReadCollectivePerFilePolicy is ReadCollectivePerFile with an explicit
// fail policy. Under FailDegrade the aggregator broadcasts a NaN-filled
// slab for a member that stays bad, so every rank masks the same span.
func ReadCollectivePerFilePolicy(c *mpi.Comm, v *View, policy FailPolicy) (Block, pfs.Trace, *QualityReport) {
	p := c.Size()
	nch, nt := v.Shape()
	lo, hi := Partition(nch, p, c.Rank())
	blk := Block{ChLo: lo, ChHi: hi, Data: dasf.NewArray2D(hi-lo, nt)}
	var local pfs.Trace
	var gaps []Gap
	for _, sp := range v.memberSpans() {
		// File boundaries are the collective's natural cancellation points:
		// every rank hits the same check before the same broadcast, so the
		// world panics together and mpi.Run drains it without deadlock.
		if err := v.Context().Err(); err != nil {
			panic(fmt.Errorf("dass: collective read: %w", err))
		}
		root := sp.idx % p
		var flat []float64
		width := sp.tHi - sp.tLo
		if c.Rank() == root {
			tRead := time.Now()
			part, err := v.readMemberSpan(sp, &local)
			v.ObserveSpan(c.Rank(), obs.PhaseRead, time.Since(tRead))
			if err != nil {
				if policy == FailAbort || IsCancellation(err) {
					panic(fmt.Errorf("dass: collective read: %w", err))
				}
				part = dasf.NewArray2D(nch, width)
				fillNaN(part, 0, nch, 0, width)
				g := Gap{Member: sp.idx, File: v.memberPath(sp.idx),
					ChLo: 0, ChHi: nch, TLo: sp.destOff, THi: sp.destOff + width}
				gaps = append(gaps, g)
				local.MaskedSamples += g.Samples()
			}
			flat = part.Data
			local.Broadcasts++
			local.BcastBytes += int64(len(flat)) * 8
		}
		tEx := time.Now()
		flat = mpi.Bcast(c, root, flat)
		v.ObserveSpan(c.Rank(), obs.PhaseExchange, time.Since(tEx))
		// Keep only this rank's channel rows.
		for ch := lo; ch < hi; ch++ {
			src := flat[ch*width : (ch+1)*width]
			dst := blk.Data.Row(ch - lo)
			copy(dst[sp.destOff:sp.destOff+width], src)
		}
	}
	return finishRead(c, v, blk, local, gaps, policy)
}

// ReadCommAvoiding is the paper's communication-avoiding method (Figure
// 5b): member files are dealt round-robin to ranks; each rank reads its
// whole file with a single contiguous request, and one all-to-all exchange
// per round redistributes channel rows so every rank ends up with its
// channel block over the full time axis. For n files on p ranks this is
// O(n) large reads and O(n/p) exchanges — no broadcasts at all.
func ReadCommAvoiding(c *mpi.Comm, v *View) (Block, pfs.Trace) {
	blk, tr, _ := ReadCommAvoidingPolicy(c, v, FailAbort)
	return blk, tr
}

// ReadCommAvoidingPolicy is ReadCommAvoiding with an explicit fail policy.
// Under FailDegrade the rank that owns a member that stays bad exchanges
// NaN rows in its place — the masking rides the normal all-to-all, so no
// extra collective is needed and surviving channels are untouched.
func ReadCommAvoidingPolicy(c *mpi.Comm, v *View, policy FailPolicy) (Block, pfs.Trace, *QualityReport) {
	p := c.Size()
	rank := c.Rank()
	nch, nt := v.Shape()
	lo, hi := Partition(nch, p, rank)
	blk := Block{ChLo: lo, ChHi: hi, Data: dasf.NewArray2D(hi-lo, nt)}
	var local pfs.Trace
	var gaps []Gap
	spans := v.memberSpans()
	rounds := (len(spans) + p - 1) / p
	for r := 0; r < rounds; r++ {
		// Exchange-round boundaries are the halo-exchange cancellation
		// points: all ranks observe the same check before the round's
		// Alltoallv, so a cancelled world aborts in lockstep.
		if err := v.Context().Err(); err != nil {
			panic(fmt.Errorf("dass: comm-avoiding read: %w", err))
		}
		myIdx := r*p + rank
		var mine *dasf.Array2D
		if myIdx < len(spans) {
			sp := spans[myIdx]
			tRead := time.Now()
			part, err := v.readMemberSpan(sp, &local)
			v.ObserveSpan(rank, obs.PhaseRead, time.Since(tRead))
			if err != nil {
				if policy == FailAbort || IsCancellation(err) {
					panic(fmt.Errorf("dass: comm-avoiding read: %w", err))
				}
				width := sp.tHi - sp.tLo
				part = dasf.NewArray2D(nch, width)
				fillNaN(part, 0, nch, 0, width)
				g := Gap{Member: sp.idx, File: v.memberPath(sp.idx),
					ChLo: 0, ChHi: nch, TLo: sp.destOff, THi: sp.destOff + width}
				gaps = append(gaps, g)
				local.MaskedSamples += g.Samples()
			}
			mine = part
		}
		// Personalized exchange: destination d gets its channel rows from
		// my file.
		send := make([][]float64, p)
		for d := 0; d < p; d++ {
			if mine == nil {
				continue
			}
			dLo, dHi := Partition(nch, p, d)
			if dLo >= dHi {
				continue
			}
			rows := make([]float64, 0, (dHi-dLo)*mine.Samples)
			for ch := dLo; ch < dHi; ch++ {
				rows = append(rows, mine.Row(ch)...)
			}
			send[d] = rows
			if d != rank {
				local.ExchangeBytes += int64(len(rows)) * 8
			}
		}
		if rank == 0 {
			local.ExchangeRounds += int64(p - 1)
		}
		tEx := time.Now()
		recv := mpi.Alltoallv(c, send)
		v.ObserveSpan(rank, obs.PhaseExchange, time.Since(tEx))
		// Place every source's contribution at its file's time offset.
		for s := 0; s < p; s++ {
			srcIdx := r*p + s
			if srcIdx >= len(spans) || len(recv[s]) == 0 {
				continue
			}
			sp := spans[srcIdx]
			width := sp.tHi - sp.tLo
			for ch := lo; ch < hi; ch++ {
				rowOff := (ch - lo) * width
				dst := blk.Data.Row(ch - lo)
				copy(dst[sp.destOff:sp.destOff+width], recv[s][rowOff:rowOff+width])
			}
		}
	}
	return finishRead(c, v, blk, local, gaps, policy)
}

// GatherBlocks reassembles per-rank blocks into the full view array on rank
// 0 (nil elsewhere). Used by tests and by writers of final results.
func GatherBlocks(c *mpi.Comm, v *View, blk Block) *dasf.Array2D {
	nch, nt := v.Shape()
	var flat []float64
	if blk.Data != nil {
		flat = blk.Data.Data
	}
	parts := mpi.Gather(c, 0, flat)
	if c.Rank() != 0 {
		return nil
	}
	out := dasf.NewArray2D(nch, nt)
	for rank, part := range parts {
		lo, hi := Partition(nch, c.Size(), rank)
		for ch := lo; ch < hi; ch++ {
			copy(out.Row(ch), part[(ch-lo)*nt:(ch-lo+1)*nt])
		}
	}
	return out
}
