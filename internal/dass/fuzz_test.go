package dass

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
)

// The dass fuzz targets cover the two places untrusted bytes enter the
// storage engine above the file format itself: the on-disk catalog index
// cache (attacker- or corruption-controlled JSON that ScanDirCached trusts
// for cache hits) and the /search regex pattern (straight off the wire in
// dassd). Errors are expected on hostile input; panics are the bugs.

// fuzzIndexSeed generates a one-file dataset once and returns the raw
// bytes of its data file and of a genuinely written index, so the fuzzer
// starts from the real on-disk grammar.
func fuzzIndexSeed(f *testing.F) (dataName string, dataRaw, indexRaw []byte) {
	f.Helper()
	dir := f.TempDir()
	cfg := dasgen.Config{
		Channels: 4, SampleRate: 50, FileSeconds: 1, NumFiles: 1,
		Seed: 11, DType: dasf.Float64,
	}
	paths, err := dasgen.Generate(dir, cfg, nil)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := ScanDirCached(dir); err != nil {
		f.Fatal(err)
	}
	dataRaw, err = os.ReadFile(paths[0])
	if err != nil {
		f.Fatal(err)
	}
	indexRaw, err = os.ReadFile(filepath.Join(dir, IndexFileName))
	if err != nil {
		f.Fatal(err)
	}
	return filepath.Base(paths[0]), dataRaw, indexRaw
}

// FuzzIndexCache hands the fuzzer full control of .dassa_index.json in a
// directory that also holds one real data file. Both the strict and the
// tolerant scan must survive any index bytes — ignore-and-rebuild is the
// contract for a corrupt cache — and the rebuilt index must then be
// readable by a second scan.
func FuzzIndexCache(f *testing.F) {
	dataName, dataRaw, indexRaw := fuzzIndexSeed(f)
	f.Add(indexRaw)
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"version":2,"scanned_at_ns":-1,"entries":[{"name":"` + dataName + `","size":-9,"mtime_ns":0,"timestamp":999999999999999,"info":{"kind":1}}]}`))
	f.Add(indexRaw[:len(indexRaw)/2])
	f.Add([]byte(strings.Repeat("[", 64)))

	f.Fuzz(func(t *testing.T, idx []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, dataName), dataRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, IndexFileName), idx, 0o644); err != nil {
			t.Fatal(err)
		}
		cat, err := ScanDirCached(dir)
		if err == nil && cat.Len() != 1 {
			t.Fatalf("scan over 1 data file cataloged %d entries", cat.Len())
		}
		if _, _, err := ScanDirCachedTolerant(dir); err != nil {
			// Tolerant scans only fail on directory-level errors; a bad
			// index alone must not surface.
			t.Fatalf("tolerant scan failed under fuzzed index: %v", err)
		}
		// The scan above rewrote the index; it must round-trip.
		if _, _, err := ScanDirCachedTolerant(dir); err != nil {
			t.Fatalf("rescan of rebuilt index failed: %v", err)
		}
	})
}

// FuzzSearchRegex feeds arbitrary patterns to the catalog search — the
// string dassd's /search passes through verbatim. Compile errors and the
// length cap are fine; panics or unbounded machines are not.
func FuzzSearchRegex(f *testing.F) {
	cat := CatalogOf([]Entry{
		{Path: "a.dasf", Timestamp: 170728224510},
		{Path: "b.dasf", Timestamp: 170728224610},
		{Path: "c.dasf", Timestamp: 170728224710},
	})
	f.Add("170728224[567]10")
	f.Add("17072822.*")
	f.Add("(((")
	f.Add(")")
	f.Add("(?P<x>1)(?P<x>2)")
	f.Add(strings.Repeat("(a|b)", 100))
	f.Add(strings.Repeat("a", maxSearchPattern+1))

	f.Fuzz(func(t *testing.T, pattern string) {
		matches, err := cat.SearchRegex(pattern)
		if len(pattern) > maxSearchPattern && err == nil {
			t.Fatalf("%d-byte pattern accepted past the %d cap", len(pattern), maxSearchPattern)
		}
		if err == nil && len(matches) > cat.Len() {
			t.Fatalf("%d matches from a %d-entry catalog", len(matches), cat.Len())
		}
	})
}
