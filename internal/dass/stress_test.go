package dass

import (
	"path/filepath"
	"testing"

	"dassa/internal/dasf"
	"dassa/internal/mpi"
)

// TestCommAvoidingAtPaperRankCount runs the communication-avoiding reader
// at the paper's 90-process width (goroutine ranks make this cheap) and
// checks both correctness and the O(n/p)-rounds trace shape.
func TestCommAvoidingAtPaperRankCount(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	dir, cat, _ := makeSeries(t, 180, 12) // 180 channels so 90 ranks get 2 each
	vcaPath := filepath.Join(dir, "v.dasf")
	if _, err := CreateVCA(vcaPath, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(vcaPath)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	const p = 90
	var got *dasf.Array2D
	var tr struct{ opens, bcasts, rounds int64 }
	_, err = mpi.Run(p, func(c *mpi.Comm) {
		blk, trace := ReadCommAvoiding(c, v)
		if a := GatherBlocks(c, v, blk); a != nil {
			got = a
		}
		if c.Rank() == 0 {
			tr.opens = trace.Opens
			tr.bcasts = trace.Broadcasts
			tr.rounds = trace.ExchangeRounds
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("90-rank read differs at %d", i)
		}
	}
	// 12 files on 90 ranks: one round of p-1 pairwise exchanges, 12 opens,
	// zero broadcasts.
	if tr.opens != 12 || tr.bcasts != 0 {
		t.Errorf("trace opens=%d bcasts=%d, want 12 and 0", tr.opens, tr.bcasts)
	}
	if tr.rounds != p-1 {
		t.Errorf("exchange rounds = %d, want %d", tr.rounds, p-1)
	}
}

// TestWorldAt256Ranks exercises the message-passing runtime at a width
// beyond anything the benches use: collectives over 256 goroutine ranks.
func TestWorldAt256Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const p = 256
	w, err := mpi.Run(p, func(c *mpi.Comm) {
		// Allreduce of rank ids.
		sum := mpi.Allreduce(c, []int64{int64(c.Rank())}, mpi.SumI64)
		if sum[0] != p*(p-1)/2 {
			panic("allreduce wrong")
		}
		// Broadcast from a non-zero root.
		got := mpi.Bcast(c, 137, []int32{max32(int32(c.Rank()), 0) * bcastMarker(c.Rank())})
		if got[0] != 137*bcastMarker(137) {
			panic("bcast wrong")
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Messages == 0 {
		t.Error("no traffic recorded")
	}
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// bcastMarker makes the broadcast payload root-dependent so a wrong root
// would be detected.
func bcastMarker(rank int) int32 { return int32(rank%7 + 1) }
