package dass

import (
	"fmt"
	"path/filepath"

	"dassa/internal/dasf"
	"dassa/internal/pfs"
)

// CreateVCA merges the given time-ordered entries into a virtual
// concatenated array at path, touching only metadata (Table I: 0% extra
// space, low construction overhead). Entries must share channel count and
// dtype. Member names are stored relative to the VCA's directory when
// possible, so the dataset directory stays relocatable.
func CreateVCA(path string, entries []Entry) (pfs.Trace, error) {
	var tr pfs.Trace
	tr.Processes = 1
	if err := validateContiguous(entries); err != nil {
		return tr, err
	}
	dir := filepath.Dir(path)
	members := make([]dasf.Member, len(entries))
	for i, e := range entries {
		name := e.Path
		if rel, err := filepath.Rel(dir, e.Path); err == nil {
			name = rel
		}
		members[i] = dasf.Member{
			Name:        name,
			NumChannels: e.Info.NumChannels,
			NumSamples:  e.Info.NumSamples,
			Timestamp:   e.Timestamp,
		}
	}
	global := entries[0].Info.Global.Clone()
	global["MergedFiles"] = dasf.I(int64(len(entries)))
	if err := dasf.WriteVCA(path, global, entries[0].Info.DType, members); err != nil {
		return tr, err
	}
	tr.Writes = 1
	return tr, nil
}

// AppendToVCA extends an existing virtual array with newly recorded files
// — the incremental operation a continuously running DAS deployment needs
// ("long-term DAS deployments with continuous recording tend to create
// infinitely many files", §IV-B). Only metadata moves; the appended entries
// must continue the series (same channels/dtype, non-decreasing
// timestamps).
func AppendToVCA(vcaPath string, entries []Entry) (pfs.Trace, error) {
	var tr pfs.Trace
	tr.Processes = 1
	if len(entries) == 0 {
		return tr, fmt.Errorf("dass: nothing to append")
	}
	info, st, err := dasf.ReadInfo(vcaPath)
	if err != nil {
		return tr, err
	}
	tr.Opens += st.Opens
	tr.Reads += st.Reads
	tr.BytesRead += st.BytesRead
	if info.Kind != dasf.KindVCA {
		return tr, fmt.Errorf("dass: %s is not a virtual array", vcaPath)
	}
	if err := validateContiguous(entries); err != nil {
		return tr, err
	}
	last := info.Members[len(info.Members)-1]
	if entries[0].Timestamp < last.Timestamp {
		return tr, fmt.Errorf("dass: appended series starts at %d, before the VCA's last member %d",
			entries[0].Timestamp, last.Timestamp)
	}
	if entries[0].Info.NumChannels != info.NumChannels {
		return tr, fmt.Errorf("dass: appended files have %d channels, VCA has %d",
			entries[0].Info.NumChannels, info.NumChannels)
	}
	if entries[0].Info.DType != info.DType {
		return tr, fmt.Errorf("dass: appended files store %v, VCA stores %v",
			entries[0].Info.DType, info.DType)
	}
	dir := filepath.Dir(vcaPath)
	members := append([]dasf.Member(nil), info.Members...)
	// Existing members were resolved to absolute paths by the reader;
	// re-relativize everything for a relocatable file.
	for i := range members {
		if rel, err := filepath.Rel(dir, members[i].Name); err == nil {
			members[i].Name = rel
		}
	}
	for _, e := range entries {
		name := e.Path
		if rel, err := filepath.Rel(dir, e.Path); err == nil {
			name = rel
		}
		members = append(members, dasf.Member{
			Name:        name,
			NumChannels: e.Info.NumChannels,
			NumSamples:  e.Info.NumSamples,
			Timestamp:   e.Timestamp,
		})
	}
	global := info.Global.Clone()
	global["MergedFiles"] = dasf.I(int64(len(members)))
	if err := dasf.WriteVCA(vcaPath, global, info.DType, members); err != nil {
		return tr, err
	}
	tr.Writes = 1
	return tr, nil
}

// CreateRCA merges the entries into one real concatenated data file at
// path: every member is read in full and rewritten (Table I: 100% extra
// space, high construction overhead). Returns the I/O trace so Figure 6
// can report the cost against CreateVCA's.
func CreateRCA(path string, entries []Entry) (pfs.Trace, error) {
	var tr pfs.Trace
	tr.Processes = 1
	if err := validateContiguous(entries); err != nil {
		return tr, err
	}
	nch := entries[0].Info.NumChannels
	total := 0
	for _, e := range entries {
		total += e.Info.NumSamples
	}
	merged := dasf.NewArray2D(nch, total)
	off := 0
	for _, e := range entries {
		r, err := dasf.Open(e.Path)
		if err != nil {
			return tr, err
		}
		a, err := r.ReadAll()
		st := r.Stats()
		r.Close()
		if err != nil {
			return tr, err
		}
		tr.Opens += st.Opens
		tr.Reads += st.Reads
		tr.BytesRead += st.BytesRead
		for c := 0; c < nch; c++ {
			copy(merged.Data[c*total+off:c*total+off+a.Samples], a.Row(c))
		}
		off += a.Samples
	}
	global := entries[0].Info.Global.Clone()
	global["MergedFiles"] = dasf.I(int64(len(entries)))
	if err := dasf.WriteData(path, global, nil, merged, entries[0].Info.DType); err != nil {
		return tr, err
	}
	tr.Writes = int64(nch) // one streamed row group per channel
	tr.BytesWritten = int64(nch) * int64(total) * int64(entries[0].Info.DType.Size())
	return tr, nil
}
