package dass

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/mpi"
)

// makeSeries generates a small synthetic file series and returns its
// directory, catalog, and config.
func makeSeries(t *testing.T, channels, files int) (string, *Catalog, dasgen.Config) {
	t.Helper()
	dir := t.TempDir()
	cfg := dasgen.Config{
		Channels: channels, SampleRate: 50, FileSeconds: 2, NumFiles: files,
		Seed: 11, DType: dasf.Float64,
	}
	if _, err := dasgen.Generate(dir, cfg, dasgen.Fig10Events(cfg)); err != nil {
		t.Fatal(err)
	}
	cat, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return dir, cat, cfg
}

func TestScanDirSortedAndComplete(t *testing.T) {
	_, cat, cfg := makeSeries(t, 64, 5) // big enough that data ≫ metadata probe
	if cat.Len() != cfg.NumFiles {
		t.Fatalf("catalog has %d entries, want %d", cat.Len(), cfg.NumFiles)
	}
	entries := cat.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i].Timestamp <= entries[i-1].Timestamp {
			t.Errorf("catalog not time-sorted at %d", i)
		}
	}
	if cat.Trace.Opens != int64(cfg.NumFiles) {
		t.Errorf("catalog opens = %d, want %d (metadata-only)", cat.Trace.Opens, cfg.NumFiles)
	}
	// Metadata-only: the probe cost is a small constant per file,
	// independent of the data size.
	if perFile := cat.Trace.BytesRead / int64(cfg.NumFiles); perFile > 16*1024 {
		t.Errorf("catalog read %d bytes/file, should be a bounded metadata probe", perFile)
	}
}

func TestScanDirSkipsVCAs(t *testing.T) {
	dir, cat, _ := makeSeries(t, 4, 3)
	if _, err := CreateVCA(filepath.Join(dir, "all.dasf"), cat.Entries()); err != nil {
		t.Fatal(err)
	}
	cat2, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cat2.Len() != 3 {
		t.Errorf("rescan found %d entries, want 3 (VCA must be skipped)", cat2.Len())
	}
}

func TestSearchStartCount(t *testing.T) {
	_, cat, _ := makeSeries(t, 4, 6)
	entries := cat.Entries()
	// From the 3rd file's timestamp, ask for 2.
	got := cat.SearchStartCount(entries[2].Timestamp, 2)
	if len(got) != 2 || got[0].Path != entries[2].Path || got[1].Path != entries[3].Path {
		t.Errorf("SearchStartCount wrong: %v", got)
	}
	// Start between files rounds up to the next file.
	got = cat.SearchStartCount(entries[2].Timestamp+1, 1)
	if len(got) != 1 || got[0].Path != entries[3].Path {
		t.Errorf("between-files search wrong")
	}
	// Past the end: empty.
	if got := cat.SearchStartCount(entries[5].Timestamp+1, 3); len(got) != 0 {
		t.Errorf("past-end search returned %d", len(got))
	}
	// Clipped count.
	if got := cat.SearchStartCount(entries[4].Timestamp, 10); len(got) != 2 {
		t.Errorf("clipped search returned %d, want 2", len(got))
	}
	if got := cat.SearchStartCount(0, 0); got != nil {
		t.Errorf("count=0 should return nil")
	}
}

func TestSearchRegex(t *testing.T) {
	_, cat, _ := makeSeries(t, 4, 6)
	entries := cat.Entries()
	// Exact timestamp of file 1.
	got, err := cat.SearchRegex(entryTS(t, entries[1]))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Path != entries[1].Path {
		t.Errorf("exact regex matched %d entries", len(got))
	}
	// Match-all pattern.
	got, err = cat.SearchRegex(`\d{12}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Errorf("wildcard matched %d, want 6", len(got))
	}
	// The pattern is anchored: a prefix alone must not match.
	got, err = cat.SearchRegex(`17062010`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("prefix matched %d entries, want 0 (anchored)", len(got))
	}
	if _, err := cat.SearchRegex(`[`); err == nil {
		t.Error("invalid regex should fail")
	}
}

func entryTS(t *testing.T, e Entry) string {
	t.Helper()
	return e.Info.Global[dasf.KeyTimeStamp].Str
}

func TestCreateVCAOnlyMetadata(t *testing.T) {
	dir, cat, cfg := makeSeries(t, 8, 4)
	vcaPath := filepath.Join(dir, "merged.dasf")
	tr, err := CreateVCA(vcaPath, cat.Entries())
	if err != nil {
		t.Fatal(err)
	}
	if tr.BytesRead != 0 {
		t.Errorf("VCA construction read %d data bytes, want 0", tr.BytesRead)
	}
	st, err := os.Stat(vcaPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 4096 {
		t.Errorf("VCA file is %d bytes, expected tiny metadata file", st.Size())
	}
	info, _, err := dasf.ReadInfo(vcaPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumSamples != cfg.TotalSamples() || info.NumChannels != cfg.Channels {
		t.Errorf("VCA shape %d×%d, want %d×%d", info.NumChannels, info.NumSamples,
			cfg.Channels, cfg.TotalSamples())
	}
}

func TestCreateRCAEqualsVCARead(t *testing.T) {
	dir, cat, _ := makeSeries(t, 8, 4)
	vcaPath := filepath.Join(dir, "v.dasf")
	rcaPath := filepath.Join(dir, "r.dasf")
	if _, err := CreateVCA(vcaPath, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	rcaTr, err := CreateRCA(rcaPath, cat.Entries())
	if err != nil {
		t.Fatal(err)
	}
	if rcaTr.BytesRead == 0 || rcaTr.BytesWritten == 0 {
		t.Error("RCA construction must read and write all data")
	}
	vv, err := OpenView(vcaPath)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := OpenView(rcaPath)
	if err != nil {
		t.Fatal(err)
	}
	va, _, err := vv.Read()
	if err != nil {
		t.Fatal(err)
	}
	ra, _, err := rv.Read()
	if err != nil {
		t.Fatal(err)
	}
	if va.Channels != ra.Channels || va.Samples != ra.Samples {
		t.Fatalf("shape mismatch: %d×%d vs %d×%d", va.Channels, va.Samples, ra.Channels, ra.Samples)
	}
	for i := range va.Data {
		if va.Data[i] != ra.Data[i] {
			t.Fatalf("VCA and RCA reads differ at %d", i)
		}
	}
}

func TestMergeValidation(t *testing.T) {
	dir := t.TempDir()
	a := dasf.NewArray2D(4, 10)
	b := dasf.NewArray2D(5, 10)
	meta := dasf.Meta{dasf.KeyTimeStamp: dasf.S("170728224510")}
	meta2 := dasf.Meta{dasf.KeyTimeStamp: dasf.S("170728224610")}
	if err := dasf.WriteData(filepath.Join(dir, "a_170728224510.dasf"), meta, nil, a, dasf.Float64); err != nil {
		t.Fatal(err)
	}
	if err := dasf.WriteData(filepath.Join(dir, "b_170728224610.dasf"), meta2, nil, b, dasf.Float64); err != nil {
		t.Fatal(err)
	}
	cat, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CreateVCA(filepath.Join(dir, "v.dasf"), cat.Entries()); err == nil {
		t.Error("mismatched channel counts should fail")
	}
	if _, err := CreateVCA(filepath.Join(dir, "v.dasf"), nil); err == nil {
		t.Error("empty entry list should fail")
	}
}

func TestViewSubsetAndRead(t *testing.T) {
	dir, cat, cfg := makeSeries(t, 10, 3)
	vcaPath := filepath.Join(dir, "v.dasf")
	if _, err := CreateVCA(vcaPath, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(vcaPath)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	// A time window crossing a file boundary.
	spf := cfg.SamplesPerFile()
	sub, err := v.Subset(2, 7, spf-10, spf+25)
	if err != nil {
		t.Fatal(err)
	}
	got, tr, err := sub.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Channels != 5 || got.Samples != 35 {
		t.Fatalf("subset shape %d×%d", got.Channels, got.Samples)
	}
	if tr.Opens != 2 {
		t.Errorf("boundary-crossing read opened %d members, want 2", tr.Opens)
	}
	for c := 0; c < 5; c++ {
		for tt := 0; tt < 35; tt++ {
			want := full.At(c+2, tt+spf-10)
			if got.At(c, tt) != want {
				t.Fatalf("subset(%d,%d) = %g, want %g", c, tt, got.At(c, tt), want)
			}
		}
	}
	// Subset of subset composes.
	sub2, err := sub.Subset(1, 3, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := sub2.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got2.At(0, 0) != full.At(3, spf-5) {
		t.Error("nested subset misaligned")
	}
	// Bounds checks.
	if _, err := v.Subset(0, 11, 0, 10); err == nil {
		t.Error("channel overflow should fail")
	}
	if _, err := v.Subset(0, 2, 5, 5); err == nil {
		t.Error("empty time range should fail")
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw) % 1000
		p := int(pRaw)%32 + 1
		prev := 0
		for r := 0; r < p; r++ {
			lo, hi := Partition(n, p, r)
			if lo != prev || hi < lo {
				return false
			}
			if sz := hi - lo; sz < n/p || sz > n/p+1 {
				return false
			}
			prev = hi
		}
		return prev == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// runParallelRead runs a reader under MPI and reassembles the full array.
func runParallelRead(t *testing.T, p int, v *View,
	read func(c *mpi.Comm, v *View) (Block, int64)) *dasf.Array2D {
	t.Helper()
	var out *dasf.Array2D
	_, err := mpi.Run(p, func(c *mpi.Comm) {
		blk, _ := read(c, v)
		if a := GatherBlocks(c, v, blk); a != nil {
			out = a
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParallelReadersAgreeWithSerial(t *testing.T) {
	dir, cat, _ := makeSeries(t, 12, 5)
	vcaPath := filepath.Join(dir, "v.dasf")
	if _, err := CreateVCA(vcaPath, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(vcaPath)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	readers := map[string]func(c *mpi.Comm, v *View) (Block, int64){
		"independent": func(c *mpi.Comm, v *View) (Block, int64) {
			b, _ := ReadIndependent(c, v)
			return b, 0
		},
		"collective": func(c *mpi.Comm, v *View) (Block, int64) {
			b, _ := ReadCollectivePerFile(c, v)
			return b, 0
		},
		"comm-avoiding": func(c *mpi.Comm, v *View) (Block, int64) {
			b, _ := ReadCommAvoiding(c, v)
			return b, 0
		},
	}
	// More ranks than files, fewer ranks than files, uneven splits.
	for _, p := range []int{1, 2, 3, 5, 7, 13} {
		for name, rd := range readers {
			got := runParallelRead(t, p, v, rd)
			if got.Channels != want.Channels || got.Samples != want.Samples {
				t.Fatalf("%s p=%d: shape %d×%d", name, p, got.Channels, got.Samples)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s p=%d: data differs at %d: %g vs %g",
						name, p, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestParallelReadersOnSubsetView(t *testing.T) {
	dir, cat, cfg := makeSeries(t, 9, 4)
	vcaPath := filepath.Join(dir, "v.dasf")
	if _, err := CreateVCA(vcaPath, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(vcaPath)
	if err != nil {
		t.Fatal(err)
	}
	spf := cfg.SamplesPerFile()
	sub, err := v.Subset(1, 8, spf/2, 3*spf+spf/2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := sub.Read()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4} {
		got := runParallelRead(t, p, sub, func(c *mpi.Comm, v *View) (Block, int64) {
			b, _ := ReadCommAvoiding(c, v)
			return b, 0
		})
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("p=%d: subset parallel read differs at %d", p, i)
			}
		}
	}
}

func TestReaderTraceShapes(t *testing.T) {
	dir, cat, _ := makeSeries(t, 12, 6)
	vcaPath := filepath.Join(dir, "v.dasf")
	if _, err := CreateVCA(vcaPath, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(vcaPath)
	if err != nil {
		t.Fatal(err)
	}
	const p = 3
	n := int64(6) // files
	var collTrace, avoidTrace, indepTrace struct {
		opens, reads, bcasts, exch int64
	}
	_, err = mpi.Run(p, func(c *mpi.Comm) {
		_, tr := ReadCollectivePerFile(c, v)
		if c.Rank() == 0 {
			collTrace.opens, collTrace.reads = tr.Opens, tr.Reads
			collTrace.bcasts = tr.Broadcasts
		}
		_, tr = ReadCommAvoiding(c, v)
		if c.Rank() == 0 {
			avoidTrace.opens, avoidTrace.reads = tr.Opens, tr.Reads
			avoidTrace.exch = tr.ExchangeRounds
			avoidTrace.bcasts = tr.Broadcasts
		}
		_, tr = ReadIndependent(c, v)
		if c.Rank() == 0 {
			indepTrace.opens, indepTrace.reads = tr.Opens, tr.Reads
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Collective-per-file: n opens, n large reads, n broadcasts.
	if collTrace.opens != n || collTrace.bcasts != n {
		t.Errorf("collective: opens=%d bcasts=%d, want %d each", collTrace.opens, collTrace.bcasts, n)
	}
	// Comm-avoiding: n opens, n reads, ceil(n/p)·(p-1) exchange rounds, no
	// broadcasts.
	if avoidTrace.opens != n || avoidTrace.bcasts != 0 {
		t.Errorf("comm-avoiding: opens=%d bcasts=%d, want %d and 0", avoidTrace.opens, avoidTrace.bcasts, n)
	}
	wantRounds := int64(math.Ceil(6.0/p)) * (p - 1)
	if avoidTrace.exch != wantRounds {
		t.Errorf("comm-avoiding exchange rounds = %d, want %d", avoidTrace.exch, wantRounds)
	}
	// Independent on a VCA: p ranks × n files opens (the O(p·n) pathology).
	if indepTrace.opens != n*p {
		t.Errorf("independent opens = %d, want %d", indepTrace.opens, n*p)
	}
	if indepTrace.reads <= avoidTrace.reads {
		t.Errorf("independent reads (%d) should exceed comm-avoiding reads (%d)",
			indepTrace.reads, avoidTrace.reads)
	}
}

func TestReadMissingMemberAborts(t *testing.T) {
	dir, cat, _ := makeSeries(t, 4, 3)
	vcaPath := filepath.Join(dir, "v.dasf")
	if _, err := CreateVCA(vcaPath, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	// Delete a member out from under the VCA.
	if err := os.Remove(cat.Entries()[1].Path); err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(vcaPath)
	if err != nil {
		t.Fatal(err) // opening is metadata-only and must still work
	}
	if _, _, err := v.Read(); err == nil {
		t.Error("serial read of broken VCA should fail")
	}
	_, err = mpi.Run(2, func(c *mpi.Comm) {
		ReadCommAvoiding(c, v)
	})
	if err == nil {
		t.Error("parallel read of broken VCA should abort the world")
	}
}

func TestSearchRange(t *testing.T) {
	_, cat, _ := makeSeries(t, 4, 6)
	entries := cat.Entries()
	// [file1, file4): three files.
	got := cat.SearchRange(entries[1].Timestamp, entries[4].Timestamp)
	if len(got) != 3 || got[0].Path != entries[1].Path || got[2].Path != entries[3].Path {
		t.Errorf("SearchRange returned %d entries", len(got))
	}
	// Everything.
	if got := cat.SearchRange(0, 1e12); len(got) != 6 {
		t.Errorf("full range returned %d", len(got))
	}
	// Empty and inverted ranges.
	if got := cat.SearchRange(entries[5].Timestamp+1, entries[5].Timestamp+100); got != nil {
		t.Error("past-end range should be nil")
	}
	if got := cat.SearchRange(entries[3].Timestamp, entries[1].Timestamp); got != nil {
		t.Error("inverted range should be nil")
	}
	// End is exclusive.
	got = cat.SearchRange(entries[0].Timestamp, entries[1].Timestamp)
	if len(got) != 1 || got[0].Path != entries[0].Path {
		t.Errorf("exclusive end broken: %d entries", len(got))
	}
}

func TestAppendToVCA(t *testing.T) {
	dir, cat, cfg := makeSeries(t, 8, 6)
	entries := cat.Entries()
	vcaPath := filepath.Join(dir, "grow.dasf")
	if _, err := CreateVCA(vcaPath, entries[:4]); err != nil {
		t.Fatal(err)
	}
	// Append the last two files (the "newly recorded minute").
	tr, err := AppendToVCA(vcaPath, entries[4:])
	if err != nil {
		t.Fatal(err)
	}
	if tr.BytesRead > 16*1024 {
		t.Errorf("append read %d bytes, should be metadata only", tr.BytesRead)
	}
	v, err := OpenView(vcaPath)
	if err != nil {
		t.Fatal(err)
	}
	nch, nt := v.Shape()
	if nch != cfg.Channels || nt != cfg.TotalSamples() {
		t.Fatalf("grown VCA shape %d×%d, want %d×%d", nch, nt, cfg.Channels, cfg.TotalSamples())
	}
	// Content equals a VCA built in one shot.
	oneShot := filepath.Join(dir, "oneshot.dasf")
	if _, err := CreateVCA(oneShot, entries); err != nil {
		t.Fatal(err)
	}
	v2, err := OpenView(oneShot)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := v2.Read()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("grown VCA differs from one-shot at %d", i)
		}
	}
	// Guards: out-of-order append, wrong target kind, empty append.
	if _, err := AppendToVCA(vcaPath, entries[:1]); err == nil {
		t.Error("out-of-order append should fail")
	}
	if _, err := AppendToVCA(entries[0].Path, entries[4:]); err == nil {
		t.Error("appending to a data file should fail")
	}
	if _, err := AppendToVCA(vcaPath, nil); err == nil {
		t.Error("empty append should fail")
	}
}

func TestReadersOverCompressedSeries(t *testing.T) {
	// The whole storage stack must be layout-transparent: a VCA over
	// chunked-deflate members reads identically (serially and in parallel)
	// to one over contiguous members.
	dirC := t.TempDir()
	dirZ := t.TempDir()
	cfg := dasgen.Config{
		Channels: 10, SampleRate: 50, FileSeconds: 2, NumFiles: 4,
		Seed: 33, DType: dasf.Float32,
	}
	if _, err := dasgen.Generate(dirC, cfg, dasgen.Fig10Events(cfg)); err != nil {
		t.Fatal(err)
	}
	cfgZ := cfg
	cfgZ.Compress = true
	if _, err := dasgen.Generate(dirZ, cfgZ, dasgen.Fig10Events(cfgZ)); err != nil {
		t.Fatal(err)
	}
	open := func(dir string) *View {
		cat, err := ScanDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, "v.dasf")
		if _, err := CreateVCA(p, cat.Entries()); err != nil {
			t.Fatal(err)
		}
		v, err := OpenView(p)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	vc := open(dirC)
	vz := open(dirZ)
	want, _, err := vc.Read()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := vz.Read()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("compressed read differs at %d", i)
		}
	}
	// (Size benefits are asserted in dasf's chunked tests on compressible
	// data; raw noise at float32 precision doesn't deflate.)
	// Parallel comm-avoiding read over compressed members.
	var par *dasf.Array2D
	_, err = mpi.Run(3, func(c *mpi.Comm) {
		blk, _ := ReadCommAvoiding(c, vz)
		if a := GatherBlocks(c, vz, blk); a != nil {
			par = a
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if par.Data[i] != want.Data[i] {
			t.Fatalf("parallel compressed read differs at %d", i)
		}
	}
}
