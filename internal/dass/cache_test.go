package dass

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
)

func TestScanDirCachedHitsAndMisses(t *testing.T) {
	dir := t.TempDir()
	cfg := dasgen.Config{
		Channels: 8, SampleRate: 50, FileSeconds: 1, NumFiles: 6,
		Seed: 2, DType: dasf.Float64,
	}
	paths, err := dasgen.Generate(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Cold scan reads every header and writes the index.
	c1, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Len() != 6 {
		t.Fatalf("cold scan found %d files", c1.Len())
	}
	if c1.Trace.Opens != 6 {
		t.Errorf("cold scan opens = %d, want 6", c1.Trace.Opens)
	}
	if _, err := os.Stat(filepath.Join(dir, IndexFileName)); err != nil {
		t.Fatalf("index not written: %v", err)
	}

	// Warm scan: zero metadata I/O, identical catalog.
	c2, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Trace.Opens != 0 || c2.Trace.BytesRead != 0 {
		t.Errorf("warm scan did I/O: %+v", c2.Trace)
	}
	if c2.Len() != c1.Len() {
		t.Fatalf("warm scan found %d files", c2.Len())
	}
	for i := range c1.Entries() {
		a, b := c1.Entries()[i], c2.Entries()[i]
		if a.Path != b.Path || a.Timestamp != b.Timestamp ||
			a.Info.NumChannels != b.Info.NumChannels || a.Info.DataOffset != b.Info.DataOffset {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a, b)
		}
	}

	// Cached entries are usable for real reads.
	v, err := NewView(c2.Entries()[0].Info)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Read(); err != nil {
		t.Fatalf("read through cached info: %v", err)
	}

	// A modified file is re-read.
	victim := paths[2]
	a2, err := dasgen.GenerateFileArray(cfg, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite with different dtype so size changes.
	info, _, err := dasf.ReadInfo(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := dasf.WriteData(victim, info.Global, nil, a2, dasf.Float32); err != nil {
		t.Fatal(err)
	}
	c3, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Trace.Opens != 1 {
		t.Errorf("modified-file scan opens = %d, want 1", c3.Trace.Opens)
	}

	// A deleted file disappears.
	if err := os.Remove(paths[5]); err != nil {
		t.Fatal(err)
	}
	c4, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c4.Len() != 5 {
		t.Errorf("after delete: %d files, want 5", c4.Len())
	}
}

func TestScanDirCachedCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	cfg := dasgen.Config{
		Channels: 4, SampleRate: 50, FileSeconds: 1, NumFiles: 2,
		Seed: 2, DType: dasf.Float64,
	}
	if _, err := dasgen.Generate(dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, IndexFileName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("corrupt index: found %d files", c.Len())
	}
	// Index is rebuilt and the next scan is warm.
	c2, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Trace.Opens != 0 {
		t.Errorf("rebuilt index not used: opens = %d", c2.Trace.Opens)
	}
}

func TestScanDirCachedNewFilesAppear(t *testing.T) {
	dir := t.TempDir()
	cfg := dasgen.Config{
		Channels: 4, SampleRate: 50, FileSeconds: 1, NumFiles: 2,
		Seed: 9, DType: dasf.Float64,
	}
	if _, err := dasgen.Generate(dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanDirCached(dir); err != nil {
		t.Fatal(err)
	}
	// The instrument writes a new minute.
	cfg3 := cfg
	cfg3.NumFiles = 3
	a, err := dasgen.GenerateFileArray(cfg3, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(dir, dasgen.FileName(cfg3, 2))
	meta := dasf.Meta{
		dasf.KeyTimeStamp:         dasf.S(timeStampStr(cfg3, 2)),
		dasf.KeySamplingFrequency: dasf.I(50),
	}
	if err := dasf.WriteData(newPath, meta, nil, a, dasf.Float64); err != nil {
		t.Fatal(err)
	}
	c, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Errorf("new file not picked up: %d files", c.Len())
	}
	if c.Trace.Opens != 1 {
		t.Errorf("incremental scan opens = %d, want 1", c.Trace.Opens)
	}
	// Time ordering is preserved.
	entries := c.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i].Timestamp <= entries[i-1].Timestamp {
			t.Error("catalog not time-sorted after incremental scan")
		}
	}
	_ = time.Now() // keep the time import for mtime-based semantics
}

func timeStampStr(cfg dasgen.Config, idx int) string {
	return filepathBaseTimestamp(dasgen.FileName(cfg, idx))
}

// filepathBaseTimestamp extracts the 12-digit timestamp from a file name.
func filepathBaseTimestamp(name string) string {
	return timestampRe.FindString(name)
}

func TestScanDirCachedTruncatedIndex(t *testing.T) {
	// A crash while the index was being written leaves valid JSON cut off
	// mid-file. The scanner must treat it like no index at all: full header
	// rescan, no error, and the rewritten index must round-trip.
	dir := t.TempDir()
	cfg := dasgen.Config{
		Channels: 4, SampleRate: 50, FileSeconds: 1, NumFiles: 4,
		Seed: 6, DType: dasf.Float64,
	}
	if _, err := dasgen.Generate(dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	warm, err := ScanDirCached(dir) // build a valid index
	if err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, IndexFileName)
	raw, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(idxPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	cold, err := ScanDirCached(dir)
	if err != nil {
		t.Fatalf("truncated index broke the scan: %v", err)
	}
	if cold.Len() != cfg.NumFiles {
		t.Errorf("found %d files, want %d", cold.Len(), cfg.NumFiles)
	}
	if cold.Trace.Opens == 0 {
		t.Error("truncated index was trusted: no headers re-read")
	}
	// The rescan rewrote the index; it must round-trip to a warm scan with
	// zero metadata I/O and identical entries.
	rebuilt, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Trace.Opens != 0 {
		t.Errorf("rewritten index not warm: opens = %d", rebuilt.Trace.Opens)
	}
	a, b := warm.Entries(), rebuilt.Entries()
	if len(a) != len(b) {
		t.Fatalf("entry count changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Path != b[i].Path || a[i].Timestamp != b[i].Timestamp ||
			a[i].Info.NumChannels != b[i].Info.NumChannels ||
			a[i].Info.NumSamples != b[i].Info.NumSamples {
			t.Errorf("entry %d differs after index rebuild: %+v vs %+v", i, a[i], b[i])
		}
	}
}
