package dass

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"sort"
	"strings"

	"dassa/internal/dasf"
	"dassa/internal/pfs"
)

// ErrMissingMember classifies a VCA member file that does not exist (deleted
// from the archive, or injected missing). It wraps the underlying not-exist
// error, so errors.Is(err, ErrMissingMember) and errors.Is(err,
// fs.ErrNotExist) both hold.
var ErrMissingMember = errors.New("dass: missing VCA member")

// FailPolicy decides what a reader does when a member file stays bad after
// all retries are spent.
type FailPolicy int

const (
	// FailAbort poisons the whole world on the first permanently failed
	// member — the seed repository's behaviour, and the right call when a
	// partial answer is worse than none.
	FailAbort FailPolicy = iota
	// FailDegrade masks the failed member's span with NaN, records the loss
	// in a QualityReport, and lets every surviving channel produce its exact
	// fault-free result.
	FailDegrade
)

func (p FailPolicy) String() string {
	if p == FailDegrade {
		return "degrade"
	}
	return "abort"
}

// ParseFailPolicy parses the -fail-policy flag grammar.
func ParseFailPolicy(s string) (FailPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "abort", "":
		return FailAbort, nil
	case "degrade":
		return FailDegrade, nil
	}
	return FailAbort, fmt.Errorf("dass: unknown fail policy %q (want abort or degrade)", s)
}

// Gap is one NaN-masked rectangle of a degraded read, in view-relative
// coordinates: channels [ChLo, ChHi) over samples [TLo, THi) were lost
// because File stayed unreadable after retries.
type Gap struct {
	Member     int    // member index within the view's VCA (0 for plain files)
	File       string // physical path of the lost member
	ChLo, ChHi int
	TLo, THi   int
}

// Samples returns how many array cells the gap masks.
func (g Gap) Samples() int64 {
	return int64(g.ChHi-g.ChLo) * int64(g.THi-g.TLo)
}

// gapInts is the number of int64 fields one gap flattens to for an MPI
// gather (the file path is recovered from the member index on rank 0).
const gapInts = 5

func encodeGaps(gaps []Gap) []int64 {
	out := make([]int64, 0, len(gaps)*gapInts)
	for _, g := range gaps {
		out = append(out, int64(g.Member), int64(g.ChLo), int64(g.ChHi), int64(g.TLo), int64(g.THi))
	}
	return out
}

func decodeGaps(flat []int64, v *View) []Gap {
	gaps := make([]Gap, 0, len(flat)/gapInts)
	for i := 0; i+gapInts <= len(flat); i += gapInts {
		g := Gap{
			Member: int(flat[i]),
			ChLo:   int(flat[i+1]), ChHi: int(flat[i+2]),
			TLo: int(flat[i+3]), THi: int(flat[i+4]),
		}
		g.File = v.memberPath(g.Member)
		gaps = append(gaps, g)
	}
	return gaps
}

// QualityReport is the per-run account of what a degraded read lost and what
// the retry layer spent. A nil report (or one with no gaps) means every byte
// was read clean.
type QualityReport struct {
	// Gaps lists the masked rectangles, sorted by member then channel.
	Gaps []Gap
	// LostFiles are the distinct member paths that stayed bad, sorted.
	LostFiles []string
	// LostChannels counts distinct view channels with at least one masked
	// sample; LostSamples counts distinct masked cells. Overlapping gaps —
	// two ranks whose ghost reads cover the same member span report it
	// twice — are merged, so neither counter double-counts.
	LostChannels int
	LostSamples  int64
	// Retries, Faults and SlowReads echo the run's robustness trace counters.
	Retries   int64
	Faults    int64
	SlowReads int64
}

// Degraded reports whether any data was lost.
func (q *QualityReport) Degraded() bool { return q != nil && len(q.Gaps) > 0 }

func (q *QualityReport) String() string {
	if !q.Degraded() {
		return "quality: clean (no data lost)"
	}
	return fmt.Sprintf("quality: DEGRADED lostFiles=%d lostChannels=%d lostSamples=%d retries=%d faults=%d slow=%d",
		len(q.LostFiles), q.LostChannels, q.LostSamples, q.Retries, q.Faults, q.SlowReads)
}

// buildReport assembles a QualityReport from decoded gaps, the view shape,
// and the already-reduced trace.
func buildReport(gaps []Gap, v *View, tr pfs.Trace) *QualityReport {
	q := &QualityReport{
		Gaps:    gaps,
		Retries: tr.Retries, Faults: tr.Faults, SlowReads: tr.SlowReads,
	}
	sort.Slice(q.Gaps, func(i, j int) bool {
		a, b := q.Gaps[i], q.Gaps[j]
		if a.Member != b.Member {
			return a.Member < b.Member
		}
		return a.ChLo < b.ChLo
	})
	nch, _ := v.Shape()
	lost := make([]bool, nch)
	files := map[string]bool{}
	for _, g := range q.Gaps {
		files[g.File] = true
		for c := g.ChLo; c < g.ChHi && c < nch; c++ {
			lost[c] = true
		}
	}
	// Count distinct masked cells channel by channel, merging overlapping
	// time intervals so a span reported by several ranks counts once.
	for c, l := range lost {
		if !l {
			continue
		}
		q.LostChannels++
		var ivs [][2]int
		for _, g := range q.Gaps {
			if g.ChLo <= c && c < g.ChHi {
				ivs = append(ivs, [2]int{g.TLo, g.THi})
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
		end := 0
		for _, iv := range ivs {
			lo := max(iv[0], end)
			if iv[1] > lo {
				q.LostSamples += int64(iv[1] - lo)
				end = iv[1]
			}
		}
	}
	for f := range files {
		q.LostFiles = append(q.LostFiles, f)
	}
	sort.Strings(q.LostFiles)
	return q
}

// BuildQuality assembles a QualityReport from view-relative gaps and an
// already-reduced trace — the merge step a distributed coordinator shares
// with the in-process GatherQuality collective: remote shards report gaps
// over the wire, and rank 0's accounting (overlap merging, per-channel and
// per-file loss counts) happens identically here.
func BuildQuality(v *View, gaps []Gap, tr pfs.Trace) *QualityReport {
	return buildReport(gaps, v, tr)
}

// ShardGaps returns the gaps a wholly lost channel shard [chLo, chHi)
// (view-relative) leaves behind: one NaN rectangle per member file the
// view's time window touches, covering the shard's full time extent. This
// is what a coordinator records when a shard's worker died and no healthy
// peer could take the re-dispatch — the distributed analogue of a failed
// local rank's member gaps.
func ShardGaps(v *View, chLo, chHi int) []Gap {
	var gaps []Gap
	for _, sp := range v.memberSpans() {
		gaps = append(gaps, Gap{
			Member: sp.idx, File: v.memberPath(sp.idx),
			ChLo: chLo, ChHi: chHi,
			TLo: sp.destOff, THi: sp.destOff + (sp.tHi - sp.tLo),
		})
	}
	return gaps
}

// addStats folds a reader's physical I/O counters — robustness counters
// included — into a trace.
func addStats(tr *pfs.Trace, st dasf.IOStats) {
	tr.Opens += st.Opens
	tr.Reads += st.Reads
	tr.BytesRead += st.BytesRead
	tr.Retries += st.Retries
	tr.Faults += st.FaultsInjected
	tr.SlowReads += st.SlowReads
}

// fillNaN masks rows [chLo, chHi) × samples [tLo, tHi) of out with NaN —
// the in-band "no data here" marker the detect kernels skip over.
func fillNaN(out *dasf.Array2D, chLo, chHi, tLo, tHi int) {
	nan := math.NaN()
	for c := chLo; c < chHi; c++ {
		row := out.Row(c)
		for t := tLo; t < tHi; t++ {
			row[t] = nan
		}
	}
}

// IsCancellation reports whether err stems from a cancelled or expired
// context. Cancellation is categorically different from a bad member:
// FailDegrade masks bad members and carries on, but a cancellation must
// abort the read under either policy — the caller asked for the stop.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// classifyMemberErr wraps a member read failure with the right sentinel so
// callers can branch with errors.Is.
func classifyMemberErr(path string, err error) error {
	if errors.Is(err, fs.ErrNotExist) {
		// Double-wrap so both the dass sentinel and fs.ErrNotExist stay
		// visible to errors.Is.
		return fmt.Errorf("%w: %s: %w", ErrMissingMember, path, err)
	}
	return err
}

// readMemberSpan reads one member's slab for the view's channel range,
// folding physical stats into tr. On failure the error is classified; the
// caller decides (by policy) whether to abort or mask. A view with a slab
// hook installed (WithSlabReader) delegates the physical read to it.
func (v *View) readMemberSpan(sp memberSpan, tr *pfs.Trace) (*dasf.Array2D, error) {
	path := v.memberPath(sp.idx)
	if v.slab != nil {
		part, st, err := v.slab(v.Context(), path, v.chLo, v.chHi, sp.tLo, sp.tHi)
		addStats(tr, st)
		if err != nil {
			tr.Faults++
			return nil, classifyMemberErr(path, err)
		}
		return part, nil
	}
	r, err := dasf.OpenContext(v.Context(), path)
	if err != nil {
		tr.Faults++
		return nil, classifyMemberErr(path, err)
	}
	part, err := r.ReadSlab(v.chLo, v.chHi, sp.tLo, sp.tHi)
	addStats(tr, r.Stats())
	r.Close()
	if err != nil {
		tr.Faults++
		return nil, classifyMemberErr(path, err)
	}
	return part, nil
}
