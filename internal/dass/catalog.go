// Package dass is DASSA's storage engine: searching the many small files a
// DAS deployment produces (das_search), merging them into real (RCA) or
// virtual (VCA) concatenated arrays, subsetting with logical array views
// (LAV), and reading the result in parallel with either the baseline
// "collective-per-file" method or the paper's "communication-avoiding"
// method (§IV).
package dass

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"dassa/internal/dasf"
	"dassa/internal/pfs"
)

// Entry is one data file in a catalog: its path, parsed metadata, and the
// acquisition timestamp extracted from the metadata (or the file name as a
// fallback).
type Entry struct {
	Path      string
	Info      dasf.Info
	Timestamp int64 // yymmddhhmmss
}

// Catalog is a time-ordered index of DAS data files. Building it touches
// only file metadata — the das_search cheapness the paper's Figure 6
// measures comes from exactly this.
type Catalog struct {
	entries []Entry
	// Trace records the metadata I/O spent building the catalog.
	Trace pfs.Trace
}

// timestampRe extracts a 12-digit timestamp from a file name like
// westSac_170728224510.dasf.
var timestampRe = regexp.MustCompile(`(\d{12})`)

// entryTimestamp pulls the acquisition timestamp from metadata, falling
// back to the file name.
func entryTimestamp(path string, info dasf.Info) (int64, error) {
	if v, ok := info.Global[dasf.KeyTimeStamp]; ok {
		s := strings.TrimSpace(v.String())
		if ts, err := strconv.ParseInt(s, 10, 64); err == nil {
			return ts, nil
		}
	}
	if m := timestampRe.FindString(filepath.Base(path)); m != "" {
		return strconv.ParseInt(m, 10, 64)
	}
	return 0, fmt.Errorf("dass: %s: no timestamp in metadata or file name", path)
}

// ScanDir builds a catalog of all DASF data files directly inside dir,
// sorted by timestamp. Virtual (VCA) files are skipped — they reference
// data files, they are not data. Unreadable files are reported as errors.
func ScanDir(dir string) (*Catalog, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dass: %w", err)
	}
	var paths []string
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".dasf") {
			continue
		}
		paths = append(paths, filepath.Join(dir, de.Name()))
	}
	return ScanFiles(paths)
}

// ScanFiles builds a catalog from an explicit file list (metadata only).
func ScanFiles(paths []string) (*Catalog, error) {
	c := &Catalog{}
	for _, p := range paths {
		info, st, err := dasf.ReadInfo(p)
		if err != nil {
			return nil, err
		}
		c.Trace.Opens += st.Opens
		c.Trace.Reads += st.Reads
		c.Trace.BytesRead += st.BytesRead
		if info.Kind != dasf.KindData {
			continue
		}
		ts, err := entryTimestamp(p, info)
		if err != nil {
			return nil, err
		}
		c.entries = append(c.entries, Entry{Path: p, Info: info, Timestamp: ts})
	}
	sort.Slice(c.entries, func(i, j int) bool {
		if c.entries[i].Timestamp != c.entries[j].Timestamp {
			return c.entries[i].Timestamp < c.entries[j].Timestamp
		}
		return c.entries[i].Path < c.entries[j].Path
	})
	c.Trace.Processes = 1
	return c, nil
}

// CatalogOf builds a catalog directly from already-parsed entries — the
// service layer's retention window trims a scanned catalog this way. The
// entries are copied and time-sorted; no I/O happens.
func CatalogOf(entries []Entry) *Catalog {
	c := &Catalog{entries: append([]Entry(nil), entries...)}
	sort.Slice(c.entries, func(i, j int) bool {
		if c.entries[i].Timestamp != c.entries[j].Timestamp {
			return c.entries[i].Timestamp < c.entries[j].Timestamp
		}
		return c.entries[i].Path < c.entries[j].Path
	})
	return c
}

// Len returns the number of cataloged files.
func (c *Catalog) Len() int { return len(c.entries) }

// Entries returns the full time-ordered entry list.
func (c *Catalog) Entries() []Entry { return c.entries }

// SearchStartCount implements das_search -s <timestamp> -c <count>: the
// first count files whose timestamp is ≥ start. Fewer may be returned if
// the catalog runs out.
func (c *Catalog) SearchStartCount(start int64, count int) []Entry {
	if count <= 0 {
		return nil
	}
	i := sort.Search(len(c.entries), func(i int) bool {
		return c.entries[i].Timestamp >= start
	})
	j := min(i+count, len(c.entries))
	out := make([]Entry, j-i)
	copy(out, c.entries[i:j])
	return out
}

// SearchRange returns the entries with start ≤ timestamp < end — the
// "data of a few hours, days, or months" selection §IV describes as the
// common case before merging.
func (c *Catalog) SearchRange(start, end int64) []Entry {
	i := sort.Search(len(c.entries), func(i int) bool {
		return c.entries[i].Timestamp >= start
	})
	j := sort.Search(len(c.entries), func(j int) bool {
		return c.entries[j].Timestamp >= end
	})
	if i >= j {
		return nil
	}
	out := make([]Entry, j-i)
	copy(out, c.entries[i:j])
	return out
}

// maxSearchPattern bounds a SearchRegex pattern. Timestamps are 12 digits;
// any legitimate selector is far shorter than this, while an unbounded
// pattern lets one request make regexp.Compile build an arbitrarily large
// machine (the pattern reaches dassd's /search straight off the wire).
const maxSearchPattern = 256

// SearchRegex implements das_search -e <pattern>: entries whose 12-digit
// timestamp string matches the (anchored) pattern. The paper's example
// `das_search -e 170728224[567]10` selects three specific minutes.
func (c *Catalog) SearchRegex(pattern string) ([]Entry, error) {
	if len(pattern) > maxSearchPattern {
		return nil, fmt.Errorf("dass: search pattern of %d bytes exceeds the %d-byte limit",
			len(pattern), maxSearchPattern)
	}
	re, err := regexp.Compile("^(?:" + pattern + ")$")
	if err != nil {
		return nil, fmt.Errorf("dass: bad search pattern: %w", err)
	}
	var out []Entry
	for _, e := range c.entries {
		if re.MatchString(fmt.Sprintf("%012d", e.Timestamp)) {
			out = append(out, e)
		}
	}
	return out, nil
}

// validateContiguous checks that the entries form a mergeable series: same
// channel count and dtype throughout.
func validateContiguous(entries []Entry) error {
	if len(entries) == 0 {
		return fmt.Errorf("dass: no files to merge")
	}
	first := entries[0].Info
	for i, e := range entries[1:] {
		if e.Info.NumChannels != first.NumChannels {
			return fmt.Errorf("dass: %s has %d channels, %s has %d — cannot merge",
				e.Path, e.Info.NumChannels, entries[0].Path, first.NumChannels)
		}
		if e.Info.DType != first.DType {
			return fmt.Errorf("dass: %s stores %v, %s stores %v — cannot merge",
				e.Path, e.Info.DType, entries[0].Path, first.DType)
		}
		if e.Timestamp < entries[i].Timestamp {
			return fmt.Errorf("dass: entries out of time order at %s", e.Path)
		}
	}
	return nil
}
