package dass

import (
	"path/filepath"
	"testing"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/mpi"
)

// benchView generates a series once per benchmark and opens a VCA view.
func benchView(b *testing.B, channels, files int) *View {
	b.Helper()
	dir := b.TempDir()
	cfg := dasgen.Config{
		Channels: channels, SampleRate: 100, FileSeconds: 2, NumFiles: files,
		Seed: 1, DType: dasf.Float32,
	}
	if _, err := dasgen.Generate(dir, cfg, nil); err != nil {
		b.Fatal(err)
	}
	cat, err := ScanDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	vcaPath := filepath.Join(dir, "v.dasf")
	if _, err := CreateVCA(vcaPath, cat.Entries()); err != nil {
		b.Fatal(err)
	}
	v, err := OpenView(vcaPath)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

func BenchmarkScanDir(b *testing.B) {
	dir := b.TempDir()
	cfg := dasgen.Config{
		Channels: 32, SampleRate: 100, FileSeconds: 1, NumFiles: 32,
		Seed: 1, DType: dasf.Float32,
	}
	if _, err := dasgen.Generate(dir, cfg, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScanDir(dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialVCARead(b *testing.B) {
	v := benchView(b, 64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := v.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchParallelRead(b *testing.B, read func(c *mpi.Comm, v *View) (Block, int64)) {
	v := benchView(b, 64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpi.Run(4, func(c *mpi.Comm) { read(c, v) }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCollectivePerFile(b *testing.B) {
	benchParallelRead(b, func(c *mpi.Comm, v *View) (Block, int64) {
		blk, _ := ReadCollectivePerFile(c, v)
		return blk, 0
	})
}

func BenchmarkReadCommAvoiding(b *testing.B) {
	benchParallelRead(b, func(c *mpi.Comm, v *View) (Block, int64) {
		blk, _ := ReadCommAvoiding(c, v)
		return blk, 0
	})
}

func BenchmarkReadIndependent(b *testing.B) {
	benchParallelRead(b, func(c *mpi.Comm, v *View) (Block, int64) {
		blk, _ := ReadIndependent(c, v)
		return blk, 0
	})
}

func BenchmarkCreateVCA(b *testing.B) {
	dir := b.TempDir()
	cfg := dasgen.Config{
		Channels: 32, SampleRate: 100, FileSeconds: 1, NumFiles: 16,
		Seed: 1, DType: dasf.Float32,
	}
	if _, err := dasgen.Generate(dir, cfg, nil); err != nil {
		b.Fatal(err)
	}
	cat, err := ScanDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CreateVCA(filepath.Join(dir, "bench.vca.dasf"), cat.Entries()); err != nil {
			b.Fatal(err)
		}
	}
}
