package dass

import (
	"errors"
	"io/fs"
	"math"
	"path/filepath"
	"testing"

	"dassa/internal/dasf"
	"dassa/internal/faults"
	"dassa/internal/mpi"
	"dassa/internal/pfs"
)

// The chaos suite drives the parallel readers through the fault-injecting
// storage layer at the paper's 90-rank stress width: transient faults must
// be retried away without changing a single bit, and a permanently missing
// member under the degrade policy must cost exactly its own span — nothing
// more — with the loss fully accounted in the QualityReport and pfs trace.

// chaosView builds the stress-config dataset (180 channels × 12 member
// files) and returns the view plus the fault-free reference read, taken
// before any injector is installed.
func chaosView(t *testing.T) (*View, *Catalog, *dasf.Array2D) {
	t.Helper()
	dir, cat, _ := makeSeries(t, 180, 12)
	vcaPath := filepath.Join(dir, "v.dasf")
	if _, err := CreateVCA(vcaPath, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(vcaPath)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	return v, cat, want
}

// installChaos installs the process-wide injector and retry policy and
// removes both when the test ends.
func installChaos(t *testing.T, cfg faults.Config, retries int) *faults.Injector {
	t.Helper()
	in := faults.New(cfg)
	dasf.SetInjector(in)
	dasf.SetRetryPolicy(faults.WithRetries(retries))
	t.Cleanup(func() {
		dasf.SetInjector(nil)
		dasf.SetRetryPolicy(faults.RetryPolicy{})
	})
	return in
}

// TestChaosTransientBitIdentical injects transient read faults with p=0.3
// on every member and runs the comm-avoiding reader at 90 ranks with 3
// retries. MaxAttempts (4) exceeds the injector's streak bound (3), so the
// run must complete and the output must be bit-identical to the fault-free
// read — degraded-mode plumbing engaged but nothing lost.
func TestChaosTransientBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos stress test")
	}
	v, _, want := chaosView(t)
	in := installChaos(t, faults.Config{Seed: 7, TransientProb: 0.3, MaxTransient: 3}, 3)

	const p = 90
	var got *dasf.Array2D
	var tr pfs.Trace
	var q *QualityReport
	_, err := mpi.Run(p, func(c *mpi.Comm) {
		blk, trace, rep := ReadCommAvoidingPolicy(c, v, FailDegrade)
		if a := GatherBlocks(c, v, blk); a != nil {
			got = a
		}
		if c.Rank() == 0 {
			tr, q = trace, rep
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.Degraded() {
		t.Fatalf("transient-only run reported degraded: %v", q)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("faulted read differs from fault-free at %d", i)
		}
	}
	// The schedule is seeded so at least one of the 12 files must have drawn
	// a streak; every injected fault must be retried away and both must show
	// in the reduced trace.
	if n := in.Counters().Transient; n == 0 {
		t.Fatal("injector drew no transient faults; pick a different seed")
	}
	if tr.Faults == 0 || tr.Retries == 0 {
		t.Errorf("trace faults=%d retries=%d, want both > 0", tr.Faults, tr.Retries)
	}
	if tr.Retries < tr.Faults {
		t.Errorf("trace retries=%d < faults=%d: some injected fault was not retried", tr.Retries, tr.Faults)
	}
	if tr.MaskedSamples != 0 {
		t.Errorf("clean run masked %d samples", tr.MaskedSamples)
	}
}

// TestChaosMissingMemberDegrades deletes one member (by injection) and runs
// the comm-avoiding reader at 90 ranks under FailDegrade: the run completes,
// the QualityReport names exactly the lost file/channels/samples, the gap is
// NaN, and every surviving sample is bit-identical to the fault-free read.
func TestChaosMissingMemberDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos stress test")
	}
	v, cat, want := chaosView(t)
	const lostIdx = 5
	lostPath := cat.Entries()[lostIdx].Path
	installChaos(t, faults.Config{Missing: []string{lostPath}}, 2)

	nch, nt := v.Shape()
	perFile := nt / v.NumMembers()
	tLo, tHi := lostIdx*perFile, (lostIdx+1)*perFile

	const p = 90
	var got *dasf.Array2D
	var tr pfs.Trace
	var q *QualityReport
	_, err := mpi.Run(p, func(c *mpi.Comm) {
		blk, trace, rep := ReadCommAvoidingPolicy(c, v, FailDegrade)
		if a := GatherBlocks(c, v, blk); a != nil {
			got = a
		}
		if c.Rank() == 0 {
			tr, q = trace, rep
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Degraded() {
		t.Fatal("missing member not reported as degraded")
	}
	if len(q.LostFiles) != 1 || q.LostFiles[0] != lostPath {
		t.Errorf("LostFiles = %v, want exactly [%s]", q.LostFiles, lostPath)
	}
	if q.LostChannels != nch {
		t.Errorf("LostChannels = %d, want %d (a member spans all channels)", q.LostChannels, nch)
	}
	wantLost := int64(nch) * int64(tHi-tLo)
	if q.LostSamples != wantLost {
		t.Errorf("LostSamples = %d, want %d", q.LostSamples, wantLost)
	}
	if len(q.Gaps) != 1 || q.Gaps[0].TLo != tLo || q.Gaps[0].THi != tHi ||
		q.Gaps[0].ChLo != 0 || q.Gaps[0].ChHi != nch {
		t.Errorf("Gaps = %+v, want one gap ch[0,%d) t[%d,%d)", q.Gaps, nch, tLo, tHi)
	}
	if tr.MaskedSamples != q.LostSamples {
		t.Errorf("trace masked=%d != report lost=%d", tr.MaskedSamples, q.LostSamples)
	}
	// Inside the gap: NaN. Outside: bit-identical to the fault-free read.
	for c := 0; c < nch; c++ {
		row, ref := got.Row(c), want.Row(c)
		for ti := 0; ti < nt; ti++ {
			if ti >= tLo && ti < tHi {
				if !math.IsNaN(row[ti]) {
					t.Fatalf("gap cell (%d,%d) = %v, want NaN", c, ti, row[ti])
				}
			} else if row[ti] != ref[ti] {
				t.Fatalf("surviving cell (%d,%d) differs from fault-free", c, ti)
			}
		}
	}
}

// TestChaosMissingMemberAborts checks the default policy is unchanged: the
// same missing member under FailAbort fails the run instead of masking it.
func TestChaosMissingMemberAborts(t *testing.T) {
	v, cat, _ := chaosView(t)
	installChaos(t, faults.Config{Missing: []string{cat.Entries()[3].Path}}, 0)
	_, err := mpi.Run(8, func(c *mpi.Comm) {
		blk, _, _ := ReadCommAvoidingPolicy(c, v, FailAbort)
		GatherBlocks(c, v, blk)
	})
	if err == nil {
		t.Fatal("FailAbort read of a missing member succeeded")
	}
	// The sentinel must survive the panic → RankError path so callers can
	// branch on the cause of a failed parallel run.
	if !errors.Is(err, ErrMissingMember) {
		t.Errorf("run error %v does not wrap ErrMissingMember", err)
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("run error %v does not wrap fs.ErrNotExist", err)
	}
}

// TestChaosAllReadersAgreeWhenDegraded runs the independent and
// collective-per-file readers over the same missing member and checks they
// produce the same masked array and the same loss accounting as each other.
func TestChaosAllReadersAgreeWhenDegraded(t *testing.T) {
	v, cat, want := chaosView(t)
	const lostIdx = 9
	lostPath := cat.Entries()[lostIdx].Path
	installChaos(t, faults.Config{Missing: []string{lostPath}}, 1)

	nch, nt := v.Shape()
	perFile := nt / v.NumMembers()
	wantLost := int64(nch) * int64(perFile)

	type readerFn func(c *mpi.Comm, v *View, policy FailPolicy) (Block, pfs.Trace, *QualityReport)
	readers := map[string]readerFn{
		"independent": ReadIndependentPolicy,
		"collective":  ReadCollectivePerFilePolicy,
	}
	for name, read := range readers {
		var got *dasf.Array2D
		var tr pfs.Trace
		var q *QualityReport
		_, err := mpi.Run(8, func(c *mpi.Comm) {
			blk, trace, rep := read(c, v, FailDegrade)
			if a := GatherBlocks(c, v, blk); a != nil {
				got = a
			}
			if c.Rank() == 0 {
				tr, q = trace, rep
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !q.Degraded() || q.LostSamples != wantLost {
			t.Errorf("%s: LostSamples = %d (degraded=%v), want %d", name, q.LostSamples, q.Degraded(), wantLost)
		}
		if len(q.LostFiles) != 1 || q.LostFiles[0] != lostPath {
			t.Errorf("%s: LostFiles = %v, want [%s]", name, q.LostFiles, lostPath)
		}
		if tr.MaskedSamples != q.LostSamples {
			t.Errorf("%s: trace masked=%d != lost=%d", name, tr.MaskedSamples, q.LostSamples)
		}
		tLo, tHi := lostIdx*perFile, (lostIdx+1)*perFile
		for c := 0; c < nch; c++ {
			row, ref := got.Row(c), want.Row(c)
			for ti := 0; ti < nt; ti++ {
				inGap := ti >= tLo && ti < tHi
				if inGap != math.IsNaN(row[ti]) {
					t.Fatalf("%s: cell (%d,%d) NaN=%v, want %v", name, c, ti, math.IsNaN(row[ti]), inGap)
				}
				if !inGap && row[ti] != ref[ti] {
					t.Fatalf("%s: surviving cell (%d,%d) differs", name, c, ti)
				}
			}
		}
	}
}

// TestChaosTraceStringSurfacesRobustness checks the robustness counters
// reach the human-readable trace line (the pfs surface the tools print).
func TestChaosTraceStringSurfacesRobustness(t *testing.T) {
	v, cat, _ := chaosView(t)
	installChaos(t, faults.Config{Missing: []string{cat.Entries()[0].Path}}, 0)
	var tr pfs.Trace
	_, err := mpi.Run(4, func(c *mpi.Comm) {
		_, trace, _ := ReadIndependentPolicy(c, v, FailDegrade)
		if c.Rank() == 0 {
			tr = trace
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.String()
	for _, wantSub := range []string{"faults=", "masked="} {
		if !containsSub(s, wantSub) {
			t.Errorf("trace %q does not surface %q", s, wantSub)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
