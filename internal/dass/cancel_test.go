package dass

import (
	"context"
	"errors"
	"testing"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/faults"
	"dassa/internal/mpi"
	"dassa/internal/testutil/leakcheck"
)

// The cancellation suite proves the tentpole property end to end at the
// storage layer: a context cancelled mid-read unwinds every rank through
// the poison cascade, the world drains with no goroutine left behind, and
// the error that surfaces is the context error itself — never a silently
// NaN-degraded result, whatever the FailPolicy.

// TestCancelMidCollectiveRead cancels a multi-rank comm-avoiding read
// while every rank is parked in an injected straggler delay. All ranks
// must unwind promptly and the surfaced error must be context.Canceled.
func TestCancelMidCollectiveRead(t *testing.T) {
	leakcheck.Check(t)
	v, _, _ := chaosView(t)
	installChaos(t, faults.Config{Seed: 3, SlowProb: 1, SlowLatency: 30 * time.Second}, 0)

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel) // let the ranks reach their reads
	defer timer.Stop()
	defer cancel()
	cv := v.WithContext(ctx)

	t0 := time.Now()
	// FailDegrade on purpose: cancellation must NOT be maskable into NaN
	// gaps the way a lost file is.
	_, err := mpi.Run(8, func(c *mpi.Comm) {
		ReadCommAvoidingPolicy(c, cv, FailDegrade)
	})
	if err == nil {
		t.Fatal("cancelled collective read returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("cancelled read took %v to unwind; straggler delay not interruptible", d)
	}
}

// TestDeadlineExceededSurfaces runs the collective-per-file reader against
// an already-expired deadline: the pre-read cancellation checks must stop
// it before any I/O and surface context.DeadlineExceeded.
func TestDeadlineExceededSurfaces(t *testing.T) {
	leakcheck.Check(t)
	_, cat, _ := makeSeries(t, 16, 3)
	v, err := ViewOver(cat.Entries())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	cv := v.WithContext(ctx)

	_, runErr := mpi.Run(4, func(c *mpi.Comm) {
		ReadCollectivePerFilePolicy(c, cv, FailDegrade)
	})
	if !errors.Is(runErr, context.DeadlineExceeded) {
		t.Fatalf("error does not unwrap to context.DeadlineExceeded: %v", runErr)
	}

	// The serial path returns rather than panics.
	if _, _, _, err := cv.ReadPolicy(FailDegrade); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("serial ReadPolicy: %v, want DeadlineExceeded", err)
	}
}

// TestCancelRespectsRetryBackoff: a retry policy sleeping between attempts
// must abandon the sleep the moment the context dies, and the context error
// must not be classified as transient (DeadlineExceeded implements
// Timeout() == true — the trap this test pins down).
func TestCancelRespectsRetryBackoff(t *testing.T) {
	leakcheck.Check(t)
	dir, cat, _ := makeSeries(t, 8, 1)
	_ = dir
	installChaos(t, faults.Config{Seed: 5, TransientProb: 1, MaxTransient: 100}, 50)
	dasf.SetRetryPolicy(faults.RetryPolicy{MaxAttempts: 50, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second})

	v, err := ViewOver(cat.Entries())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	t0 := time.Now()
	_, _, _, rerr := v.WithContext(ctx).ReadPolicy(FailAbort)
	if !IsCancellation(rerr) {
		t.Fatalf("read under dead ctx and transient faults returned %v, want cancellation", rerr)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("cancelled retry loop took %v; backoff sleep not interruptible", d)
	}
}
