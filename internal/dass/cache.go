package dass

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dassa/internal/dasf"
)

// A year-long DAS deployment accumulates hundreds of thousands of files;
// re-reading every header on each das_search invocation wastes exactly the
// metadata I/O the tool exists to minimize. ScanDirCached keeps a JSON
// index next to the data and only re-reads files whose size or
// modification time changed.

// IndexFileName is the catalog cache written into a dataset directory.
const IndexFileName = ".dassa_index.json"

// indexEntry is one cached file record.
type indexEntry struct {
	Name      string    `json:"name"` // base name, relative to the dir
	Size      int64     `json:"size"`
	ModTime   int64     `json:"mtime_ns"`
	Timestamp int64     `json:"timestamp"`
	Info      dasf.Info `json:"info"`
}

type indexFile struct {
	Version int `json:"version"`
	// ScannedAt is the wall clock (ns) captured when the scan that wrote
	// this index started. A file whose mtime is not strictly older than it
	// may have been rewritten in place inside the same mtime granule as the
	// scan that recorded it — the "racily clean" problem git's index solves
	// the same way — so such entries are re-verified instead of trusted.
	ScannedAt int64        `json:"scanned_at_ns"`
	Entries   []indexEntry `json:"entries"`
}

// indexVersion is the current on-disk index format. Older versions are
// ignored and rebuilt.
const indexVersion = 2

// BadFile records a file a tolerant scan skipped: its path and why it was
// unreadable. A continuously ingesting service sees these routinely — a
// half-copied minute file is corrupt now and fine on the next poll.
type BadFile struct {
	Path string
	Err  error
}

// ScanDirCached builds a catalog like ScanDir, but consults (and rewrites)
// the directory's index file so unchanged files cost zero metadata reads.
// The returned catalog's Trace shows only the I/O actually performed.
// Unreadable files abort the scan with an error.
func ScanDirCached(dir string) (*Catalog, error) {
	c, _, err := scanDirCached(dir, false, nil)
	return c, err
}

// ScanDirCachedTolerant is ScanDirCached for an ingest loop: files whose
// header fails validation are skipped and reported instead of aborting the
// scan, and are not recorded in the index (so the next scan retries them —
// the right behaviour for a file still being copied in).
func ScanDirCachedTolerant(dir string) (*Catalog, []BadFile, error) {
	return scanDirCached(dir, true, nil)
}

// ScanDirCachedTolerantSkip is ScanDirCachedTolerant with a skip hook: a
// file for which skip(path) returns true is treated as absent — not probed,
// not cataloged, not reported bad. This is how an ingester's quarantine
// list circuit-breaks a poisoned file out of the scan path instead of
// paying its read failure on every poll.
func ScanDirCachedTolerantSkip(dir string, skip func(path string) bool) (*Catalog, []BadFile, error) {
	return scanDirCached(dir, true, skip)
}

func scanDirCached(dir string, tolerant bool, skip func(path string) bool) (*Catalog, []BadFile, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("dass: %w", err)
	}
	cached := map[string]indexEntry{}
	var scannedAt int64
	if raw, err := os.ReadFile(filepath.Join(dir, IndexFileName)); err == nil {
		var idx indexFile
		if json.Unmarshal(raw, &idx) == nil && idx.Version == indexVersion {
			scannedAt = idx.ScannedAt
			for _, e := range idx.Entries {
				cached[e.Name] = e
			}
		}
		// A corrupt or old-version index is simply ignored and rebuilt.
	}
	// Stamp for the index this scan writes: captured before any file is
	// statted, so a file modified mid-scan can never look trustworthy.
	scanStart := time.Now().UnixNano()

	c := &Catalog{}
	c.Trace.Processes = 1
	var bad []BadFile
	var fresh []indexEntry
	dirty := false
	seen := map[string]bool{}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".dasf") {
			continue
		}
		if skip != nil && skip(filepath.Join(dir, de.Name())) {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			if tolerant {
				bad = append(bad, BadFile{Path: filepath.Join(dir, de.Name()), Err: err})
				continue
			}
			return nil, nil, fmt.Errorf("dass: %w", err)
		}
		seen[de.Name()] = true
		if e, ok := cached[de.Name()]; ok && e.Size == fi.Size() &&
			e.ModTime == fi.ModTime().UnixNano() && e.ModTime < scannedAt {
			// Cache hit: no I/O. Re-root the stored path onto this dir.
			e.Info.Path = filepath.Join(dir, de.Name())
			rerootMembers(&e.Info, dir)
			if e.Info.Kind == dasf.KindData {
				c.entries = append(c.entries, Entry{Path: e.Info.Path, Info: e.Info, Timestamp: e.Timestamp})
			}
			fresh = append(fresh, e)
			continue
		}
		dirty = true
		path := filepath.Join(dir, de.Name())
		info, st, err := dasf.ReadInfo(path)
		c.Trace.Opens += st.Opens
		c.Trace.Reads += st.Reads
		c.Trace.BytesRead += st.BytesRead
		if err != nil {
			if tolerant {
				bad = append(bad, BadFile{Path: path, Err: err})
				continue
			}
			return nil, nil, err
		}
		e := indexEntry{
			Name: de.Name(), Size: fi.Size(), ModTime: fi.ModTime().UnixNano(), Info: info,
		}
		if info.Kind == dasf.KindData {
			ts, err := entryTimestamp(path, info)
			if err != nil {
				if tolerant {
					bad = append(bad, BadFile{Path: path, Err: err})
					continue
				}
				return nil, nil, err
			}
			e.Timestamp = ts
			c.entries = append(c.entries, Entry{Path: path, Info: info, Timestamp: ts})
		}
		fresh = append(fresh, e)
	}
	for name := range cached {
		if !seen[name] {
			dirty = true // deleted files drop out of the index
		}
	}

	sort.Slice(c.entries, func(i, j int) bool {
		if c.entries[i].Timestamp != c.entries[j].Timestamp {
			return c.entries[i].Timestamp < c.entries[j].Timestamp
		}
		return c.entries[i].Path < c.entries[j].Path
	})

	if dirty {
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].Name < fresh[j].Name })
		// Store member paths relative where possible so the index survives
		// a directory move.
		for i := range fresh {
			fresh[i].Info.Path = fresh[i].Name
			relMembers(&fresh[i].Info, dir)
		}
		raw, err := json.Marshal(indexFile{Version: indexVersion, ScannedAt: scanStart, Entries: fresh})
		if err != nil {
			return nil, bad, fmt.Errorf("dass: %w", err)
		}
		tmp := filepath.Join(dir, IndexFileName+".tmp")
		if err := os.WriteFile(tmp, raw, 0o644); err != nil {
			return nil, bad, fmt.Errorf("dass: %w", err)
		}
		if err := os.Rename(tmp, filepath.Join(dir, IndexFileName)); err != nil {
			return nil, bad, fmt.Errorf("dass: %w", err)
		}
	}
	return c, bad, nil
}

// relMembers rewrites absolute member paths under dir as relative names.
func relMembers(info *dasf.Info, dir string) {
	for i := range info.Members {
		if rel, err := filepath.Rel(dir, info.Members[i].Name); err == nil && !strings.HasPrefix(rel, "..") {
			info.Members[i].Name = rel
		}
	}
}

// rerootMembers resolves relative member names against dir.
func rerootMembers(info *dasf.Info, dir string) {
	for i := range info.Members {
		if !filepath.IsAbs(info.Members[i].Name) {
			info.Members[i].Name = filepath.Join(dir, info.Members[i].Name)
		}
	}
}
