package dass

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dassa/internal/dasf"
)

// A year-long DAS deployment accumulates hundreds of thousands of files;
// re-reading every header on each das_search invocation wastes exactly the
// metadata I/O the tool exists to minimize. ScanDirCached keeps a JSON
// index next to the data and only re-reads files whose size or
// modification time changed.

// IndexFileName is the catalog cache written into a dataset directory.
const IndexFileName = ".dassa_index.json"

// indexEntry is one cached file record.
type indexEntry struct {
	Name      string    `json:"name"` // base name, relative to the dir
	Size      int64     `json:"size"`
	ModTime   int64     `json:"mtime_ns"`
	Timestamp int64     `json:"timestamp"`
	Info      dasf.Info `json:"info"`
}

type indexFile struct {
	Version int          `json:"version"`
	Entries []indexEntry `json:"entries"`
}

// ScanDirCached builds a catalog like ScanDir, but consults (and rewrites)
// the directory's index file so unchanged files cost zero metadata reads.
// The returned catalog's Trace shows only the I/O actually performed.
func ScanDirCached(dir string) (*Catalog, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dass: %w", err)
	}
	cached := map[string]indexEntry{}
	if raw, err := os.ReadFile(filepath.Join(dir, IndexFileName)); err == nil {
		var idx indexFile
		if json.Unmarshal(raw, &idx) == nil && idx.Version == 1 {
			for _, e := range idx.Entries {
				cached[e.Name] = e
			}
		}
		// A corrupt or old-version index is simply ignored and rebuilt.
	}

	c := &Catalog{}
	c.Trace.Processes = 1
	var fresh []indexEntry
	dirty := false
	seen := map[string]bool{}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".dasf") {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			return nil, fmt.Errorf("dass: %w", err)
		}
		seen[de.Name()] = true
		if e, ok := cached[de.Name()]; ok && e.Size == fi.Size() && e.ModTime == fi.ModTime().UnixNano() {
			// Cache hit: no I/O. Re-root the stored path onto this dir.
			e.Info.Path = filepath.Join(dir, de.Name())
			rerootMembers(&e.Info, dir)
			if e.Info.Kind == dasf.KindData {
				c.entries = append(c.entries, Entry{Path: e.Info.Path, Info: e.Info, Timestamp: e.Timestamp})
			}
			fresh = append(fresh, e)
			continue
		}
		dirty = true
		path := filepath.Join(dir, de.Name())
		info, st, err := dasf.ReadInfo(path)
		if err != nil {
			return nil, err
		}
		c.Trace.Opens += st.Opens
		c.Trace.Reads += st.Reads
		c.Trace.BytesRead += st.BytesRead
		e := indexEntry{
			Name: de.Name(), Size: fi.Size(), ModTime: fi.ModTime().UnixNano(), Info: info,
		}
		if info.Kind == dasf.KindData {
			ts, err := entryTimestamp(path, info)
			if err != nil {
				return nil, err
			}
			e.Timestamp = ts
			c.entries = append(c.entries, Entry{Path: path, Info: info, Timestamp: ts})
		}
		fresh = append(fresh, e)
	}
	for name := range cached {
		if !seen[name] {
			dirty = true // deleted files drop out of the index
		}
	}

	sort.Slice(c.entries, func(i, j int) bool {
		if c.entries[i].Timestamp != c.entries[j].Timestamp {
			return c.entries[i].Timestamp < c.entries[j].Timestamp
		}
		return c.entries[i].Path < c.entries[j].Path
	})

	if dirty {
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].Name < fresh[j].Name })
		// Store member paths relative where possible so the index survives
		// a directory move.
		for i := range fresh {
			fresh[i].Info.Path = fresh[i].Name
			relMembers(&fresh[i].Info, dir)
		}
		raw, err := json.Marshal(indexFile{Version: 1, Entries: fresh})
		if err != nil {
			return nil, fmt.Errorf("dass: %w", err)
		}
		tmp := filepath.Join(dir, IndexFileName+".tmp")
		if err := os.WriteFile(tmp, raw, 0o644); err != nil {
			return nil, fmt.Errorf("dass: %w", err)
		}
		if err := os.Rename(tmp, filepath.Join(dir, IndexFileName)); err != nil {
			return nil, fmt.Errorf("dass: %w", err)
		}
	}
	return c, nil
}

// relMembers rewrites absolute member paths under dir as relative names.
func relMembers(info *dasf.Info, dir string) {
	for i := range info.Members {
		if rel, err := filepath.Rel(dir, info.Members[i].Name); err == nil && !strings.HasPrefix(rel, "..") {
			info.Members[i].Name = rel
		}
	}
}

// rerootMembers resolves relative member names against dir.
func rerootMembers(info *dasf.Info, dir string) {
	for i := range info.Members {
		if !filepath.IsAbs(info.Members[i].Name) {
			info.Members[i].Name = filepath.Join(dir, info.Members[i].Name)
		}
	}
}
