package dass

import (
	"context"
	"fmt"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/obs"
	"dassa/internal/obs/trace"
	"dassa/internal/pfs"
)

// View is a logical array view (LAV, §IV): a channel × time rectangle over
// either a single data file or a virtually concatenated array. Views are
// cheap values — they carry only metadata — and can be subset repeatedly.
type View struct {
	info    dasf.Info
	offsets []int // member time offsets (VCA only), len = len(Members)+1
	chLo    int
	chHi    int
	tLo     int
	tHi     int
	// slab, when non-nil, replaces the direct open-and-read of member
	// hyperslabs — the hook a block cache plugs into (see WithSlabReader).
	slab SlabReaderFunc
	// spans, when non-nil, receives per-rank phase timings from the
	// parallel readers — the hook behind the paper's read/exchange/compute
	// breakdown (see WithSpans).
	spans *obs.Spans
	// ctx, when non-nil, bounds every read issued through the view: member
	// opens, slab reads, retry backoff, and the parallel readers' rank
	// loops all honor its cancellation (see WithContext).
	ctx context.Context
}

// SlabReaderFunc reads the hyperslab [chLo,chHi)×[tLo,tHi) of one physical
// member file, returning the data and the physical I/O actually performed
// (zero stats for a cache hit). ctx is the requesting view's context (never
// nil); implementations must abandon the read when it is cancelled and
// return its error. Implementations must be safe for concurrent use: the
// parallel readers call the hook from many goroutines at once. The returned
// array may be shared between callers and must not be modified.
type SlabReaderFunc func(ctx context.Context, path string, chLo, chHi, tLo, tHi int) (*dasf.Array2D, dasf.IOStats, error)

// WithSlabReader returns a copy of the view whose member reads go through
// fn instead of opening files directly. Subsets of the returned view keep
// the hook. A nil fn restores direct reads.
func (v *View) WithSlabReader(fn SlabReaderFunc) *View {
	cp := *v
	cp.slab = fn
	return &cp
}

// WithSpans returns a copy of the view whose parallel reads record per-rank
// phase timings (read vs exchange) into s. Subsets keep the recorder; a nil
// s disables recording. Like WithSlabReader, this is a hook: the view layer
// stays dependency-free and the engine decides where timings accumulate.
func (v *View) WithSpans(s *obs.Spans) *View {
	cp := *v
	cp.spans = s
	return &cp
}

// WithContext returns a copy of the view bound to ctx: every read issued
// through the copy — and through subsets of it — honors the context's
// cancellation and deadline. A cancelled read always surfaces the context's
// error, even under FailDegrade: a half-cancelled request must fail loudly,
// never masquerade as a degraded-but-complete result. A nil ctx restores
// the unbounded default.
func (v *View) WithContext(ctx context.Context) *View {
	cp := *v
	cp.ctx = ctx
	return &cp
}

// Context returns the context the view is bound to (context.Background()
// when unbound). Never nil.
func (v *View) Context() context.Context {
	if v.ctx == nil {
		return context.Background()
	}
	return v.ctx
}

// ObserveSpan records d under phase p for rank. Safe on views without a
// recorder — engines above the read path (ghost exchange, compute) call
// this unconditionally.
func (v *View) ObserveSpan(rank int, p obs.Phase, d time.Duration) {
	v.spans.Add(rank, p, d)
}

// ViewOver builds a VCA-shaped view over the entries entirely in memory —
// no virtual file is written. This is what an always-on service wants: the
// per-request window over its live catalog, with nothing to clean up.
// Entries must form a mergeable series (same channels and dtype,
// non-decreasing timestamps), exactly like CreateVCA.
func ViewOver(entries []Entry) (*View, error) {
	if err := validateContiguous(entries); err != nil {
		return nil, err
	}
	if len(entries) == 1 {
		return NewView(entries[0].Info)
	}
	members := make([]dasf.Member, len(entries))
	total := 0
	for i, e := range entries {
		members[i] = dasf.Member{
			Name:        e.Path,
			NumChannels: e.Info.NumChannels,
			NumSamples:  e.Info.NumSamples,
			Timestamp:   e.Timestamp,
		}
		total += e.Info.NumSamples
	}
	info := dasf.Info{
		Path:        fmt.Sprintf("<memory VCA of %d files>", len(entries)),
		Kind:        dasf.KindVCA,
		Global:      entries[0].Info.Global.Clone(),
		NumChannels: entries[0].Info.NumChannels,
		NumSamples:  total,
		DType:       entries[0].Info.DType,
		Members:     members,
	}
	return NewView(info)
}

// OpenView opens a DASF file (data or VCA) as a full-extent view.
func OpenView(path string) (*View, error) {
	info, _, err := dasf.ReadInfo(path)
	if err != nil {
		return nil, err
	}
	return NewView(info)
}

// NewView wraps already-parsed file metadata as a full-extent view.
func NewView(info dasf.Info) (*View, error) {
	v := &View{info: info, chHi: info.NumChannels, tHi: info.NumSamples}
	if info.Kind == dasf.KindVCA {
		v.offsets = make([]int, len(info.Members)+1)
		for i, m := range info.Members {
			v.offsets[i+1] = v.offsets[i] + m.NumSamples
		}
		if v.offsets[len(info.Members)] != info.NumSamples {
			return nil, fmt.Errorf("dass: %s: member extents sum to %d, VCA declares %d",
				info.Path, v.offsets[len(info.Members)], info.NumSamples)
		}
	}
	return v, nil
}

// Subset returns the logical sub-view [chLo,chHi) × [tLo,tHi), with indices
// relative to v.
func (v *View) Subset(chLo, chHi, tLo, tHi int) (*View, error) {
	nch, nt := v.Shape()
	if chLo < 0 || chHi > nch || chLo >= chHi || tLo < 0 || tHi > nt || tLo >= tHi {
		return nil, fmt.Errorf("dass: subset [%d:%d)×[%d:%d) out of view bounds %d×%d",
			chLo, chHi, tLo, tHi, nch, nt)
	}
	sub := *v
	sub.chLo = v.chLo + chLo
	sub.chHi = v.chLo + chHi
	sub.tLo = v.tLo + tLo
	sub.tHi = v.tLo + tHi
	return &sub, nil
}

// SubsetChannels keeps channels [chLo, chHi) over the full time extent.
func (v *View) SubsetChannels(chLo, chHi int) (*View, error) {
	_, nt := v.Shape()
	return v.Subset(chLo, chHi, 0, nt)
}

// Shape returns the view's extent (channels, samples).
func (v *View) Shape() (nch, nt int) { return v.chHi - v.chLo, v.tHi - v.tLo }

// Window returns the view's rectangle in the underlying file set's absolute
// coordinates: channels [chLo, chHi) × samples [tLo, tHi) over the (virtual)
// concatenated array. A distributed coordinator ships these bounds to
// workers, which rebuild the full-extent view from member metadata and
// subset back to the same window.
func (v *View) Window() (chLo, chHi, tLo, tHi int) {
	return v.chLo, v.chHi, v.tLo, v.tHi
}

// Info returns the underlying file metadata.
func (v *View) Info() dasf.Info { return v.info }

// IsVCA reports whether the view is backed by a virtual file.
func (v *View) IsVCA() bool { return v.info.Kind == dasf.KindVCA }

// NumMembers returns how many physical files back the view.
func (v *View) NumMembers() int {
	if v.IsVCA() {
		return len(v.info.Members)
	}
	return 1
}

// memberSpan describes the part of one member file a time range covers.
type memberSpan struct {
	idx     int // member index
	tLo     int // local time range inside the member
	tHi     int
	destOff int // where this span starts in the output, relative to v.tLo
}

// memberSpans routes the view's global time range onto member files.
func (v *View) memberSpans() []memberSpan {
	if !v.IsVCA() {
		return []memberSpan{{idx: 0, tLo: v.tLo, tHi: v.tHi, destOff: 0}}
	}
	var spans []memberSpan
	for i := range v.info.Members {
		mLo, mHi := v.offsets[i], v.offsets[i+1]
		lo := max(v.tLo, mLo)
		hi := min(v.tHi, mHi)
		if lo >= hi {
			continue
		}
		spans = append(spans, memberSpan{idx: i, tLo: lo - mLo, tHi: hi - mLo, destOff: lo - v.tLo})
	}
	return spans
}

// memberPath returns the physical path of member i (or the file itself).
func (v *View) memberPath(i int) string {
	if v.IsVCA() {
		return v.info.Members[i].Name
	}
	return v.info.Path
}

// Read reads the whole view sequentially (single process) and returns the
// data plus the physical I/O trace. A view over a VCA opens each member it
// touches — the cost the communication-avoiding parallel reader exists to
// amortize. The first failed member aborts the read (FailAbort semantics).
func (v *View) Read() (*dasf.Array2D, pfs.Trace, error) {
	out, tr, _, err := v.ReadPolicy(FailAbort)
	return out, tr, err
}

// ReadPolicy is Read with an explicit fail policy. Under FailDegrade a
// member that stays bad after retries is masked with NaN over its time span
// (all view channels) and reported as a Gap in view-relative coordinates;
// the error return is then always nil — except for cancellation, which is
// returned as an error under either policy (see WithContext). When the
// view's context carries a request trace, the read lands in it as a
// "dass.read" span.
func (v *View) ReadPolicy(policy FailPolicy) (*dasf.Array2D, pfs.Trace, []Gap, error) {
	_, sp := trace.Start(v.Context(), "dass.read")
	out, tr, gaps, err := v.readPolicy(policy)
	if sp != nil {
		sp.SetAttrInt("bytes_read", tr.BytesRead)
		sp.SetAttrInt("gaps", int64(len(gaps)))
	}
	sp.EndErr(err)
	return out, tr, gaps, err
}

func (v *View) readPolicy(policy FailPolicy) (*dasf.Array2D, pfs.Trace, []Gap, error) {
	var tr pfs.Trace
	tr.Processes = 1
	nch, nt := v.Shape()
	out := dasf.NewArray2D(nch, nt)
	var gaps []Gap
	for _, sp := range v.memberSpans() {
		if err := v.Context().Err(); err != nil {
			return nil, tr, nil, err
		}
		part, err := v.readMemberSpan(sp, &tr)
		if err != nil {
			if policy == FailAbort || IsCancellation(err) {
				return nil, tr, nil, err
			}
			width := sp.tHi - sp.tLo
			fillNaN(out, 0, nch, sp.destOff, sp.destOff+width)
			g := Gap{Member: sp.idx, File: v.memberPath(sp.idx),
				ChLo: 0, ChHi: nch, TLo: sp.destOff, THi: sp.destOff + width}
			gaps = append(gaps, g)
			tr.MaskedSamples += g.Samples()
			continue
		}
		for c := 0; c < nch; c++ {
			copy(out.Data[c*nt+sp.destOff:c*nt+sp.destOff+part.Samples], part.Row(c))
		}
	}
	return out, tr, gaps, nil
}
