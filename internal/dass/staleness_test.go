package dass

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
)

// genSeries writes a small deterministic series and returns the file paths.
func genSeries(t *testing.T, dir string, seed int64, files int) []string {
	t.Helper()
	cfg := dasgen.Config{
		Channels: 4, SampleRate: 50, FileSeconds: 1, NumFiles: files,
		Seed: seed, DType: dasf.Float64,
	}
	paths, err := dasgen.Generate(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// TestScanDirCachedRewriteInPlace rewrites a minute file in place — the
// shape a live deployment produces when an acquisition box re-uploads a
// minute — and asserts the cached scan notices via size or mtime.
func TestScanDirCachedRewriteInPlace(t *testing.T) {
	dir := t.TempDir()
	genSeries(t, dir, 1, 3)
	c1, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Len() != 3 {
		t.Fatalf("cold scan found %d files", c1.Len())
	}
	target := c1.Entries()[1].Path

	// Rewrite the middle file in place with different content and shape.
	cfg := dasgen.Config{
		Channels: 7, SampleRate: 50, FileSeconds: 1, NumFiles: 1,
		Seed: 99, DType: dasf.Float64,
	}
	arr, err := dasgen.GenerateFileArray(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dasf.WriteData(target, dasf.Meta{
		dasf.KeyTimeStamp: dasf.S("170620100546"),
	}, nil, arr, dasf.Float64); err != nil {
		t.Fatal(err)
	}

	c2, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 3 {
		t.Fatalf("rescan found %d files", c2.Len())
	}
	var got *Entry
	for i := range c2.Entries() {
		if c2.Entries()[i].Path == target {
			got = &c2.Entries()[i]
		}
	}
	if got == nil {
		t.Fatalf("rewritten file missing from catalog")
	}
	if got.Info.NumChannels != 7 {
		t.Errorf("stale catalog: rewritten file shows %d channels, want 7", got.Info.NumChannels)
	}
	if c2.Trace.Opens == 0 {
		t.Errorf("rescan trusted a rewritten file without re-reading its header")
	}
}

// TestScanDirCachedRacilyClean reproduces the mtime-granularity hole: a
// file rewritten with the same size and the same (coarse) mtime as the
// index recorded. The scanned-at stamp must make the scan distrust entries
// whose mtime is not strictly older than the scan that recorded them.
func TestScanDirCachedRacilyClean(t *testing.T) {
	dir := t.TempDir()
	genSeries(t, dir, 1, 2)
	target := filepath.Join(dir, mustFirstDasf(t, dir))

	// Simulate a coarse filesystem clock that runs ahead of the scan: the
	// file's mtime is in the future relative to the index's scanned-at.
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(target, future, future); err != nil {
		t.Fatal(err)
	}
	c1, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := findByPath(t, c1, target).Info.NumChannels

	// Rewrite in place with identical size but different content, and put
	// the mtime back to the exact recorded value — stat alone cannot tell.
	cfg := dasgen.Config{
		Channels: 4, SampleRate: 50, FileSeconds: 1, NumFiles: 1,
		Seed: 77, DType: dasf.Float64,
	}
	arr, err := dasgen.GenerateFileArray(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range arr.Data {
		arr.Data[i] = -arr.Data[i]
	}
	info, _, err := dasf.ReadInfo(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := dasf.WriteData(target, info.Global, nil, arr, dasf.Float64); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(target, future, future); err != nil {
		t.Fatal(err)
	}

	c2, err := ScanDirCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := findByPath(t, c2, target).Info.NumChannels; got != old {
		t.Fatalf("channels changed %d → %d unexpectedly", old, got)
	}
	if c2.Trace.Opens == 0 {
		t.Errorf("racily-clean entry was trusted: rescan did zero header reads")
	}
}

func mustFirstDasf(t *testing.T, dir string) string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if filepath.Ext(de.Name()) == ".dasf" {
			return de.Name()
		}
	}
	t.Fatal("no dasf files")
	return ""
}

func findByPath(t *testing.T, c *Catalog, path string) Entry {
	t.Helper()
	for _, e := range c.Entries() {
		if e.Path == path {
			return e
		}
	}
	t.Fatalf("%s not in catalog", path)
	return Entry{}
}

// TestScanDirCachedTolerant drops a garbage file and a half-written header
// into the directory and asserts the tolerant scan skips and reports them
// while the strict scan fails.
func TestScanDirCachedTolerant(t *testing.T) {
	dir := t.TempDir()
	genSeries(t, dir, 1, 3)
	if err := os.WriteFile(filepath.Join(dir, "junk_170620100999.dasf"), []byte("not a dasf"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := ScanDirCached(dir); err == nil {
		t.Fatal("strict scan accepted a corrupt file")
	}
	cat, bad, err := ScanDirCachedTolerant(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 3 {
		t.Fatalf("tolerant scan found %d good files, want 3", cat.Len())
	}
	if len(bad) != 1 || filepath.Base(bad[0].Path) != "junk_170620100999.dasf" {
		t.Fatalf("bad files = %+v", bad)
	}

	// The corrupt file is not cached: fixing it in place is picked up.
	cat2, bad2, err := ScanDirCachedTolerant(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cat2.Len() != 3 || len(bad2) != 1 {
		t.Fatalf("second tolerant scan: %d good, %d bad", cat2.Len(), len(bad2))
	}
}
