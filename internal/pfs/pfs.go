// Package pfs models a parallel file system and interconnect in the style
// of Cori's Lustre + Aries setup. DASSA's experiments (Figures 7, 8 and 11)
// are shaped by operation counts — file opens, read requests, broadcasts,
// all-to-all exchanges — multiplied by storage and network constants. This
// repository measures the counts by running the real readers and engines,
// then uses this analytical model to project times at paper scale. Both the
// raw counts and the projections are reported, so nothing about the
// comparison hides inside the model.
package pfs

import (
	"fmt"
	"math"
	"time"
)

// Trace records the physical operations one I/O strategy performed across
// all processes. Traces add, so per-rank traces can be accumulated.
type Trace struct {
	Opens        int64 // file opens (metadata server RPCs)
	Reads        int64 // distinct read requests (disk seeks / IOPS units)
	BytesRead    int64
	Writes       int64 // distinct write requests
	BytesWritten int64

	Broadcasts int64 // collective broadcasts issued during I/O
	BcastBytes int64 // total payload carried by those broadcasts

	ExchangeRounds int64 // pairwise all-to-all rounds
	ExchangeBytes  int64 // total payload carried by exchanges

	// Robustness counters: work re-issued, failures hit, and data lost.
	// They make a degraded run's overhead measurable instead of silent.
	Retries       int64 // operations re-issued after transient failures
	Faults        int64 // injected/observed storage failures hit
	SlowReads     int64 // reads delayed by straggler storage targets
	MaskedSamples int64 // samples replaced by NaN gaps under FailDegrade

	Processes int // concurrent requesters (ranks)
}

// Add accumulates other into t (Processes is kept as the max).
func (t *Trace) Add(other Trace) {
	t.Opens += other.Opens
	t.Reads += other.Reads
	t.BytesRead += other.BytesRead
	t.Writes += other.Writes
	t.BytesWritten += other.BytesWritten
	t.Broadcasts += other.Broadcasts
	t.BcastBytes += other.BcastBytes
	t.ExchangeRounds += other.ExchangeRounds
	t.ExchangeBytes += other.ExchangeBytes
	t.Retries += other.Retries
	t.Faults += other.Faults
	t.SlowReads += other.SlowReads
	t.MaskedSamples += other.MaskedSamples
	if other.Processes > t.Processes {
		t.Processes = other.Processes
	}
}

func (t Trace) String() string {
	s := fmt.Sprintf("opens=%d reads=%d readMB=%.1f writes=%d bcasts=%d exchanges=%d procs=%d",
		t.Opens, t.Reads, float64(t.BytesRead)/1e6, t.Writes, t.Broadcasts, t.ExchangeRounds, t.Processes)
	if t.Retries > 0 || t.Faults > 0 || t.SlowReads > 0 || t.MaskedSamples > 0 {
		s += fmt.Sprintf(" retries=%d faults=%d slow=%d masked=%d",
			t.Retries, t.Faults, t.SlowReads, t.MaskedSamples)
	}
	return s
}

// Model holds the hardware constants of a storage system + interconnect.
type Model struct {
	Name string

	// OpenLatency is the metadata RPC cost of one file open.
	OpenLatency time.Duration
	// MDSParallelism is how many opens the metadata service absorbs
	// concurrently.
	MDSParallelism int

	// SeekLatency is the fixed cost of one read/write request at the
	// storage target (position + request handling).
	SeekLatency time.Duration
	// MaxIOPS is the aggregate request ceiling of all storage targets.
	MaxIOPS float64

	// OSTBandwidth is per-storage-target streaming bandwidth (bytes/s) and
	// NumOSTs the number of targets; their product is aggregate bandwidth.
	OSTBandwidth float64
	NumOSTs      int
	// ClientBandwidth caps a single process's streaming rate (bytes/s).
	ClientBandwidth float64

	// NetworkLatency is the per-message interconnect latency and
	// NetworkBandwidth the per-link rate (bytes/s).
	NetworkLatency   time.Duration
	NetworkBandwidth float64
	// BisectionBandwidth is the aggregate rate available to concurrent
	// pairwise transfers (bytes/s); all-to-all exchanges stream at this rate.
	BisectionBandwidth float64
}

// CoriLike returns constants approximating the paper's testbed: a Cray XC40
// with a disk-based Lustre file system (fixed number of disk OSTs, modest
// IOPS) and an Aries interconnect. Values are order-of-magnitude realistic;
// the experiments depend on their ratios, not their absolute precision.
func CoriLike() Model {
	return Model{
		Name:               "cori-lustre",
		OpenLatency:        300 * time.Microsecond,
		MDSParallelism:     256,
		SeekLatency:        500 * time.Microsecond,
		MaxIOPS:            1_000_000,
		OSTBandwidth:       3e9, // 3 GB/s per OST
		NumOSTs:            240,
		ClientBandwidth:    1e9,
		NetworkLatency:     2 * time.Microsecond,
		NetworkBandwidth:   10e9,
		BisectionBandwidth: 5e12,
	}
}

// BurstBufferLike returns the paper's §VI.E suggestion: an SSD burst buffer
// with far higher IOPS and lower per-request latency, otherwise Cori-like.
func BurstBufferLike() Model {
	m := CoriLike()
	m.Name = "burst-buffer"
	m.SeekLatency = 100 * time.Microsecond
	m.MaxIOPS = 12_000_000
	m.NumOSTs = 288
	m.OSTBandwidth = 6e9
	return m
}

// Breakdown is a projected I/O time split into its mechanism components.
type Breakdown struct {
	Open      time.Duration // metadata/open cost
	Request   time.Duration // per-request (seek/IOPS) cost
	Stream    time.Duration // raw bandwidth cost
	Broadcast time.Duration // collective broadcast cost
	Exchange  time.Duration // all-to-all exchange cost
}

// Total sums the components.
func (b Breakdown) Total() time.Duration {
	return b.Open + b.Request + b.Stream + b.Broadcast + b.Exchange
}

func (b Breakdown) String() string {
	return fmt.Sprintf("total=%v (open=%v request=%v stream=%v bcast=%v exchange=%v)",
		b.Total().Round(time.Microsecond), b.Open.Round(time.Microsecond),
		b.Request.Round(time.Microsecond), b.Stream.Round(time.Microsecond),
		b.Broadcast.Round(time.Microsecond), b.Exchange.Round(time.Microsecond))
}

// Project converts an operation trace into a projected wall-clock breakdown
// under this model. Assumptions: operations are evenly spread across
// processes (the DASSA partitioners balance them), and request-handling is
// limited both by per-process pipelining and by the aggregate IOPS ceiling.
func (m Model) Project(t Trace) Breakdown {
	p := t.Processes
	if p <= 0 {
		p = 1
	}
	var b Breakdown

	// Opens serialize through the metadata service.
	mds := min(m.MDSParallelism, p)
	if mds < 1 {
		mds = 1
	}
	b.Open = time.Duration(float64(t.Opens) / float64(mds) * float64(m.OpenLatency))

	// Requests: a process pipelines its own requests at SeekLatency each;
	// the storage system as a whole is capped at MaxIOPS.
	ops := t.Reads + t.Writes
	perProc := float64(ops) / float64(p) * float64(m.SeekLatency)
	agg := float64(ops) / m.MaxIOPS * float64(time.Second)
	b.Request = time.Duration(math.Max(perProc, agg))

	// Streaming: aggregate OST bandwidth vs per-client cap.
	bytes := float64(t.BytesRead + t.BytesWritten)
	aggBW := float64(m.NumOSTs) * m.OSTBandwidth
	perClient := bytes / float64(p) / m.ClientBandwidth
	b.Stream = time.Duration(math.Max(bytes/aggBW, perClient) * float64(time.Second))

	// Broadcasts: binomial tree, log2(p) stages, each carrying the payload.
	if t.Broadcasts > 0 {
		stages := math.Log2(float64(p))
		if stages < 1 {
			stages = 1
		}
		perBcast := float64(t.BcastBytes) / float64(t.Broadcasts)
		one := stages * (float64(m.NetworkLatency) + perBcast/m.NetworkBandwidth*float64(time.Second))
		b.Broadcast = time.Duration(float64(t.Broadcasts) * one)
	}

	// Exchanges: rounds pay latency; payload streams at bisection bandwidth.
	if t.ExchangeRounds > 0 || t.ExchangeBytes > 0 {
		lat := float64(t.ExchangeRounds) * float64(m.NetworkLatency)
		stream := float64(t.ExchangeBytes) / m.BisectionBandwidth * float64(time.Second)
		b.Exchange = time.Duration(lat + stream)
	}
	return b
}

// Efficiency returns parallel efficiency in percent. For strong scaling,
// pass baseTime measured at baseUnits workers and t at n workers:
// eff = base*baseUnits / (t*n). For weak scaling pass baseUnits == n's
// baseline worker count and equal per-worker work; then use WeakEfficiency.
func Efficiency(baseTime time.Duration, baseUnits int, t time.Duration, n int) float64 {
	if t <= 0 || n <= 0 {
		return 0
	}
	return float64(baseTime) * float64(baseUnits) / (float64(t) * float64(n)) * 100
}

// WeakEfficiency returns t1/tN × 100 for weak scaling.
func WeakEfficiency(baseTime, t time.Duration) float64 {
	if t <= 0 {
		return 0
	}
	return float64(baseTime) / float64(t) * 100
}
