package pfs

import (
	"testing"
	"time"
)

func TestTraceAdd(t *testing.T) {
	a := Trace{Opens: 1, Reads: 2, BytesRead: 100, Broadcasts: 1, Processes: 4}
	b := Trace{Opens: 3, Writes: 5, BytesWritten: 50, ExchangeRounds: 2, Processes: 2}
	a.Add(b)
	if a.Opens != 4 || a.Reads != 2 || a.Writes != 5 || a.BytesRead != 100 ||
		a.BytesWritten != 50 || a.Broadcasts != 1 || a.ExchangeRounds != 2 {
		t.Errorf("Add produced %+v", a)
	}
	if a.Processes != 4 {
		t.Errorf("Processes = %d, want max(4,2)=4", a.Processes)
	}
}

func TestProjectZeroTrace(t *testing.T) {
	b := CoriLike().Project(Trace{})
	if b.Total() != 0 {
		t.Errorf("empty trace projects %v", b)
	}
}

func TestProjectMonotonicInOps(t *testing.T) {
	m := CoriLike()
	small := m.Project(Trace{Opens: 10, Reads: 100, BytesRead: 1e6, Processes: 4})
	big := m.Project(Trace{Opens: 100, Reads: 10000, BytesRead: 1e9, Processes: 4})
	if big.Total() <= small.Total() {
		t.Errorf("more work projected faster: %v vs %v", big, small)
	}
}

func TestBroadcastCostScalesWithProcesses(t *testing.T) {
	// The collective-per-file pathology: n broadcasts get more expensive as
	// the tree deepens with more processes.
	m := CoriLike()
	tr := Trace{Broadcasts: 1000, BcastBytes: 1000 * 1e6}
	tr.Processes = 2
	c2 := m.Project(tr).Broadcast
	tr.Processes = 1024
	c1024 := m.Project(tr).Broadcast
	if c1024 <= c2 {
		t.Errorf("broadcast cost should grow with process count: p=2 %v, p=1024 %v", c2, c1024)
	}
}

func TestCommunicationAvoidingBeatsCollectivePerFile(t *testing.T) {
	// The core Figure 7 relationship must hold in the model: for n files and
	// p processes where every process needs 1/p of every file,
	// "collective-per-file" (n broadcasts, merged reads) is slower than
	// "communication-avoiding" (n whole-file reads + one exchange).
	m := CoriLike()
	const (
		nFiles    = 1440
		p         = 90
		fileBytes = int64(700e6) // ~1-minute DAS file
	)
	collective := Trace{
		Opens:      nFiles,
		Reads:      nFiles, // merged into one large read per file
		BytesRead:  nFiles * fileBytes,
		Broadcasts: nFiles,
		BcastBytes: nFiles * fileBytes, // results broadcast back per file
		Processes:  p,
	}
	avoiding := Trace{
		Opens:          nFiles,
		Reads:          nFiles, // each process reads whole files
		BytesRead:      nFiles * fileBytes,
		ExchangeRounds: p - 1,
		ExchangeBytes:  nFiles * fileBytes, // one all-to-all carries the data
		Processes:      p,
	}
	tc := m.Project(collective).Total()
	ta := m.Project(avoiding).Total()
	if ta >= tc {
		t.Fatalf("communication-avoiding (%v) should beat collective-per-file (%v)", ta, tc)
	}
	// The paper reports ~37× on average; accept a broad band (>4×).
	if ratio := float64(tc) / float64(ta); ratio < 4 {
		t.Errorf("speedup = %.1f×, want > 4×", ratio)
	}
}

func TestIOPSCeilingCausesScalingDecay(t *testing.T) {
	// Figure 11: with per-process request counts fixed (weak scaling), the
	// aggregate IOPS ceiling makes I/O time grow with process count.
	m := CoriLike()
	perProcReads := int64(2000)
	t1 := m.Project(Trace{Reads: perProcReads * 91, BytesRead: 91 * 171e6, Processes: 91}).Total()
	t16 := m.Project(Trace{Reads: perProcReads * 1456, BytesRead: 1456 * 171e6, Processes: 1456}).Total()
	if eff := WeakEfficiency(t1, t16); eff >= 99 {
		t.Errorf("weak-scaling I/O efficiency at 16× nodes = %.1f%%, want visible decay", eff)
	}
}

func TestBurstBufferBeatsDiskOnIOPS(t *testing.T) {
	tr := Trace{Reads: 1_000_000, BytesRead: 1e9, Processes: 128}
	disk := CoriLike().Project(tr).Total()
	bb := BurstBufferLike().Project(tr).Total()
	if bb >= disk {
		t.Errorf("burst buffer (%v) should beat disk (%v) on an IOPS-bound trace", bb, disk)
	}
}

func TestEfficiencyMath(t *testing.T) {
	// Perfect strong scaling: 4× workers, 4× faster.
	if got := Efficiency(40*time.Second, 1, 10*time.Second, 4); got < 99.9 || got > 100.1 {
		t.Errorf("perfect strong scaling eff = %.2f", got)
	}
	// Half-efficient: 4× workers, 2× faster.
	if got := Efficiency(40*time.Second, 1, 20*time.Second, 4); got < 49.9 || got > 50.1 {
		t.Errorf("half strong scaling eff = %.2f", got)
	}
	if got := WeakEfficiency(10*time.Second, 20*time.Second); got < 49.9 || got > 50.1 {
		t.Errorf("weak eff = %.2f", got)
	}
	if Efficiency(time.Second, 1, 0, 4) != 0 || WeakEfficiency(time.Second, 0) != 0 {
		t.Error("zero-time guards broken")
	}
}

func TestBreakdownString(t *testing.T) {
	b := CoriLike().Project(Trace{Opens: 5, Reads: 10, BytesRead: 1e6, Processes: 2})
	if b.String() == "" || b.Total() <= 0 {
		t.Error("Breakdown formatting broken")
	}
	tr := Trace{Opens: 1}
	if tr.String() == "" {
		t.Error("Trace formatting broken")
	}
}
