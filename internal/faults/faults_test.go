package faults

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"testing"
	"time"
)

func TestScheduleIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, TransientProb: 0.5, MaxTransient: 3}
	a, b := New(cfg), New(cfg)
	paths := []string{"a.dasf", "b.dasf", "c.dasf", "dir/d.dasf"}
	for _, p := range paths {
		for i := 0; i < 6; i++ {
			ea, eb := a.ReadFault(p), b.ReadFault(p)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("injectors with equal seed disagree on %s read %d", p, i)
			}
		}
	}
	// A different seed must eventually produce a different schedule.
	c := New(Config{Seed: 43, TransientProb: 0.5, MaxTransient: 3})
	same := true
	for _, p := range paths {
		fresh := New(cfg)
		for i := 0; i < 6; i++ {
			if (fresh.ReadFault(p) == nil) != (c.ReadFault(p) == nil) {
				same = false
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical schedules on all paths")
	}
}

func TestScheduleIgnoresDirectory(t *testing.T) {
	// The schedule keys on the base name, so the same file faulted from two
	// mount points (or a relative vs absolute path) behaves identically.
	a := New(Config{Seed: 9, TransientProb: 0.9, MaxTransient: 3})
	b := New(Config{Seed: 9, TransientProb: 0.9, MaxTransient: 3})
	for i := 0; i < 5; i++ {
		ea := a.ReadFault("/mnt/lustre/x.dasf")
		eb := b.ReadFault("./data/x.dasf")
		if (ea == nil) != (eb == nil) {
			t.Fatalf("same base name, different schedule at read %d", i)
		}
	}
}

func TestTransientStreakIsBounded(t *testing.T) {
	// Even at p=1 every file must recover within MaxTransient reads.
	in := New(Config{Seed: 1, TransientProb: 1, MaxTransient: 3})
	for f := 0; f < 20; f++ {
		path := fmt.Sprintf("f%02d.dasf", f)
		fails := 0
		for in.ReadFault(path) != nil {
			fails++
			if fails > 3 {
				t.Fatalf("%s failed %d times, bound is 3", path, fails)
			}
		}
		if fails != 3 {
			t.Errorf("%s failed %d times, want the full streak of 3 at p=1", path, fails)
		}
		// Once recovered, the file stays healthy.
		if err := in.ReadFault(path); err != nil {
			t.Errorf("%s faulted again after recovering", path)
		}
	}
	if got := in.Counters().Transient; got != 60 {
		t.Errorf("counted %d transient faults, want 60", got)
	}
}

func TestMissingAndCorrupt(t *testing.T) {
	in := New(Config{Missing: []string{"gone.dasf"}, Corrupt: []string{"/abs/bad.dasf"}})
	if err := in.OpenFault("/some/dir/gone.dasf"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing file open error %v does not wrap fs.ErrNotExist", err)
	}
	if err := in.OpenFault("fine.dasf"); err != nil {
		t.Errorf("unlisted file faulted on open: %v", err)
	}
	// Corrupt files fail every read, forever.
	for i := 0; i < 4; i++ {
		if err := in.ReadFault("/abs/bad.dasf"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corrupt read %d: got %v", i, err)
		}
	}
	if err := in.ReadFault("fine.dasf"); err != nil {
		t.Errorf("unlisted file faulted on read: %v", err)
	}
	c := in.Counters()
	if c.Missing != 1 || c.Corrupt != 4 {
		t.Errorf("counters = %+v, want Missing=1 Corrupt=4", c)
	}
}

func TestInjectorIsConcurrencySafe(t *testing.T) {
	in := New(Config{Seed: 5, TransientProb: 1, MaxTransient: 3})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fails := 0
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if in.ReadFault("shared.dasf") != nil {
					mu.Lock()
					fails++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// The streak bound holds globally, not per goroutine.
	if fails != 3 {
		t.Errorf("shared file failed %d times across ranks, want 3", fails)
	}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(ErrTransient) {
		t.Error("ErrTransient not transient")
	}
	if !IsTransient(fmt.Errorf("read op: %w", ErrTransient)) {
		t.Error("wrapped ErrTransient not transient")
	}
	for _, err := range []error{nil, ErrCorrupt, ErrMissing, errors.New("boom")} {
		if IsTransient(err) {
			t.Errorf("%v wrongly transient", err)
		}
	}
}

func TestRetryDo(t *testing.T) {
	t.Run("transient then success", func(t *testing.T) {
		p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond}
		calls := 0
		attempts, err := p.Do(func() error {
			calls++
			if calls < 3 {
				return ErrTransient
			}
			return nil
		})
		if err != nil || attempts != 3 || calls != 3 {
			t.Errorf("attempts=%d calls=%d err=%v, want 3/3/nil", attempts, calls, err)
		}
	})
	t.Run("permanent error returns immediately", func(t *testing.T) {
		p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}
		calls := 0
		attempts, err := p.Do(func() error { calls++; return ErrCorrupt })
		if !errors.Is(err, ErrCorrupt) || attempts != 1 || calls != 1 {
			t.Errorf("attempts=%d calls=%d err=%v, want 1/1/ErrCorrupt", attempts, calls, err)
		}
	})
	t.Run("budget exhaustion returns last error", func(t *testing.T) {
		p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}
		attempts, err := p.Do(func() error { return ErrTransient })
		if !errors.Is(err, ErrTransient) || attempts != 3 {
			t.Errorf("attempts=%d err=%v, want 3/ErrTransient", attempts, err)
		}
	})
	t.Run("zero policy tries once", func(t *testing.T) {
		var p RetryPolicy
		calls := 0
		attempts, err := p.Do(func() error { calls++; return ErrTransient })
		if attempts != 1 || calls != 1 || err == nil {
			t.Errorf("zero policy: attempts=%d calls=%d err=%v", attempts, calls, err)
		}
	})
	t.Run("WithRetries", func(t *testing.T) {
		if got := WithRetries(3).MaxAttempts; got != 4 {
			t.Errorf("WithRetries(3).MaxAttempts = %d, want 4", got)
		}
	})
}

func TestRetryTimeBudget(t *testing.T) {
	b := NewTimeBudget(time.Millisecond)
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, Jitter: 0.01, Budget: b}
	start := time.Now()
	attempts, err := p.Do(func() error { return ErrTransient })
	elapsed := time.Since(start)
	// All ten attempts run, but total sleeping is capped by the 1ms budget
	// (generous bound for scheduler noise).
	if attempts != 10 || !errors.Is(err, ErrTransient) {
		t.Errorf("attempts=%d err=%v", attempts, err)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("budgeted retries took %v; budget was 1ms", elapsed)
	}
	if b.Remaining() != 0 {
		t.Errorf("budget has %v left after exhaustion", b.Remaining())
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42,transient=0.3,max=5,missing=a.dasf,missing=b.dasf,corrupt=c.dasf,slowp=0.1,slowlat=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.TransientProb != 0.3 || cfg.MaxTransient != 5 ||
		len(cfg.Missing) != 2 || cfg.Missing[1] != "b.dasf" ||
		len(cfg.Corrupt) != 1 || cfg.SlowProb != 0.1 || cfg.SlowLatency != 2*time.Millisecond {
		t.Errorf("parsed %+v", cfg)
	}
	for _, bad := range []string{
		"", "transient", "transient=", "=0.3", "transient=1.5", "slowp=-1",
		"bogus=1", "seed=notanint", "slowlat=fast",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestReadDelay(t *testing.T) {
	// p=1: every file is a straggler.
	in := New(Config{Seed: 3, SlowProb: 1, SlowLatency: 5 * time.Millisecond})
	if d := in.ReadDelay("x.dasf"); d != 5*time.Millisecond {
		t.Errorf("delay = %v, want 5ms", d)
	}
	// p=0: no stragglers.
	in = New(Config{Seed: 3, SlowProb: 0, SlowLatency: 5 * time.Millisecond})
	if d := in.ReadDelay("x.dasf"); d != 0 {
		t.Errorf("delay = %v, want 0", d)
	}
}
