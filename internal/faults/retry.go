package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// TimeBudget is a shared, thread-safe pool of backoff time. Attach one
// budget to the retry policies of many concurrent readers to bound the
// total wall-clock a whole run may spend waiting on a flaky file system.
type TimeBudget struct {
	remaining atomic.Int64 // nanoseconds
}

// NewTimeBudget creates a budget of total backoff time.
func NewTimeBudget(total time.Duration) *TimeBudget {
	b := &TimeBudget{}
	b.remaining.Store(int64(total))
	return b
}

// take withdraws up to d from the budget and returns how much was granted.
func (b *TimeBudget) take(d time.Duration) time.Duration {
	for {
		cur := b.remaining.Load()
		if cur <= 0 {
			return 0
		}
		grant := min(time.Duration(cur), d)
		if b.remaining.CompareAndSwap(cur, cur-int64(grant)) {
			return grant
		}
	}
}

// Remaining returns the unspent backoff budget.
func (b *TimeBudget) Remaining() time.Duration {
	return time.Duration(max(b.remaining.Load(), 0))
}

// RetryPolicy bounds how a transient failure is retried: attempt count,
// exponential backoff with jitter, a per-operation deadline, and an
// optional shared total budget. The zero value performs exactly one
// attempt (no retries) — the seed repository's behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values < 1 mean 1.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry. Defaults to 200µs when retries are enabled.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 50ms).
	MaxDelay time.Duration
	// Jitter adds up to this fraction of the delay, randomly, to decorrelate
	// concurrent retriers (default 0.2).
	Jitter float64
	// OpDeadline bounds one Do call end to end, backoff included. Zero
	// means no per-op deadline.
	OpDeadline time.Duration
	// Budget, when set, is a shared pool all backoff sleeps draw from;
	// when it runs dry, remaining retries happen back to back and, once
	// attempts are exhausted, the last error is returned as usual.
	Budget *TimeBudget
}

// WithRetries returns a policy making n retries (n+1 attempts) with the
// default backoff shape.
func WithRetries(n int) RetryPolicy {
	return RetryPolicy{MaxAttempts: n + 1}
}

// Do runs op, retrying transient failures under the policy. It returns the
// number of attempts made and op's final error. Permanent errors (anything
// IsTransient rejects) are returned immediately.
func (p RetryPolicy) Do(op func() error) (attempts int, err error) {
	return p.DoContext(context.Background(), op)
}

// DoContext is Do bound to a context: cancellation is honored between
// attempts and during backoff sleeps, so a stuck retry loop unwinds as soon
// as the caller gives up. A context that is already dead returns its error
// without running op; a context that dies mid-backoff cuts the sleep short
// and returns ctx.Err() wrapping the last attempt's failure. Context errors
// are permanent by definition — IsTransient rejects them — so an op that
// surfaces one is never retried.
func (p RetryPolicy) DoContext(ctx context.Context, op func() error) (attempts int, err error) {
	maxAtt := p.MaxAttempts
	if maxAtt < 1 {
		maxAtt = 1
	}
	delay := p.BaseDelay
	if delay <= 0 {
		delay = 200 * time.Microsecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 50 * time.Millisecond
	}
	jitter := p.Jitter
	if jitter <= 0 {
		jitter = 0.2
	}
	if cerr := ctx.Err(); cerr != nil {
		return 0, cerr
	}
	start := time.Now()
	for attempts = 1; ; attempts++ {
		err = op()
		if err == nil || !IsTransient(err) || attempts >= maxAtt {
			return attempts, err
		}
		if p.OpDeadline > 0 && time.Since(start) >= p.OpDeadline {
			return attempts, fmt.Errorf("faults: retry deadline %v exceeded after %d attempts: %w",
				p.OpDeadline, attempts, err)
		}
		sleep := delay + time.Duration(rand.Float64()*jitter*float64(delay))
		if p.Budget != nil {
			sleep = p.Budget.take(sleep)
		}
		if sleep > 0 {
			t := time.NewTimer(sleep)
			select {
			case <-ctx.Done():
				t.Stop()
				return attempts, fmt.Errorf("%w (after %d attempts, last error: %w)", ctx.Err(), attempts, err)
			case <-t.C:
			}
		} else if cerr := ctx.Err(); cerr != nil {
			// Budget-exhausted back-to-back retries still honor cancellation.
			return attempts, fmt.Errorf("%w (after %d attempts, last error: %w)", cerr, attempts, err)
		}
		delay = min(delay*2, maxDelay)
	}
}
