// Package faults is the storage fault-injection layer. A year-long DAS
// archive on a parallel file system sees transient read errors, corrupt
// minutes, deleted files, and straggler storage targets as routine events;
// this package makes every one of them injectable, deterministic, and
// countable, so the readers and engines above can be tested — and measured —
// under realistic failure, not just on healthy disks.
//
// An Injector is seeded and purely path-driven: the same (seed, path)
// pair always yields the same fault schedule, regardless of how goroutine
// ranks interleave their reads. Transient faults are bounded per file
// (MaxTransient), so any retry loop with more attempts than the bound is
// guaranteed to make progress — the property the chaos tests rely on.
package faults

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sentinel errors produced by the injector. ErrMissing wraps fs.ErrNotExist
// so callers that already branch on os.IsNotExist / errors.Is(err,
// fs.ErrNotExist) treat an injected missing file like a real one.
var (
	// ErrTransient is an injected transient read failure (an EIO that a
	// retry may clear). It is the only injected error a RetryPolicy retries.
	ErrTransient = errors.New("faults: injected transient I/O error")
	// ErrCorrupt is an injected permanent corruption: every read of the
	// file fails, retries included.
	ErrCorrupt = errors.New("faults: injected permanent corruption")
	// ErrMissing is an injected missing file.
	ErrMissing = fmt.Errorf("faults: injected missing file: %w", fs.ErrNotExist)
)

// IsTransient reports whether err is worth retrying: an injected transient
// fault or an error that declares itself temporary/timeout (net-style).
// Corrupt files, missing files, and format errors are permanent — retrying
// them only burns the budget.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	// Cancellation is permanent by definition: the caller gave up, so
	// retrying only delays the unwind. This check must precede the
	// interface probes below — context.DeadlineExceeded implements
	// Timeout() == true and would otherwise be classified as retryable.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	var tmp interface{ Temporary() bool }
	if errors.As(err, &tmp) && tmp.Temporary() {
		return true
	}
	var to interface{ Timeout() bool }
	if errors.As(err, &to) && to.Timeout() {
		return true
	}
	return false
}

// Config describes a fault schedule. The zero value injects nothing.
type Config struct {
	// Seed makes the schedule deterministic; two injectors with the same
	// seed and config fault identically.
	Seed int64
	// TransientProb is the per-file probability of injected transient read
	// failures. A file drawn to fail yields a bounded streak of transient
	// errors (geometric in TransientProb, capped at MaxTransient) before
	// reads on it succeed again.
	TransientProb float64
	// MaxTransient caps the consecutive transient failures injected on one
	// file (default 3 when TransientProb > 0). A retry policy with
	// MaxAttempts > MaxTransient always gets through.
	MaxTransient int
	// Missing lists files (base names or full paths) whose open fails
	// permanently with ErrMissing.
	Missing []string
	// Corrupt lists files whose reads fail permanently with ErrCorrupt.
	Corrupt []string
	// SlowProb is the per-file probability of being a straggler: every read
	// of a drawn file is delayed by SlowLatency.
	SlowProb float64
	// SlowLatency is the injected per-read delay for straggler files.
	SlowLatency time.Duration
}

// Counters tallies what an injector actually did.
type Counters struct {
	Transient int64 // transient read errors injected
	Corrupt   int64 // permanent read errors injected
	Missing   int64 // opens failed as missing
	Slow      int64 // reads delayed
}

// Injector injects faults according to a Config. It is safe for concurrent
// use by many ranks.
type Injector struct {
	cfg Config

	mu        sync.Mutex
	remaining map[string]int // per-path transient failures still to inject
	counters  Counters
}

// New builds an injector for the config.
func New(cfg Config) *Injector {
	if cfg.TransientProb > 0 && cfg.MaxTransient <= 0 {
		cfg.MaxTransient = 3
	}
	return &Injector{cfg: cfg, remaining: map[string]int{}}
}

// Counters returns a snapshot of the injected-fault tallies.
func (in *Injector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counters
}

// matches reports whether path is in list, comparing full paths and base
// names so configs can name files without knowing the dataset directory.
func matches(path string, list []string) bool {
	base := filepath.Base(path)
	for _, m := range list {
		if m == path || m == base {
			return true
		}
	}
	return false
}

// hash64 mixes the seed, a path, and a salt into a uniform uint64
// (FNV-1a then splitmix64 finalization).
func (in *Injector) hash64(path, salt string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", in.cfg.Seed, filepath.Base(path), salt)
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// u01 maps a hash draw to [0, 1).
func u01(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// streak draws the path's transient-failure streak: the number of leading
// read attempts that fail, geometric in TransientProb, capped.
func (in *Injector) streak(path string) int {
	s := 0
	for i := 0; i < in.cfg.MaxTransient; i++ {
		if u01(in.hash64(path, "transient"+strconv.Itoa(i))) < in.cfg.TransientProb {
			s++
		} else {
			break
		}
	}
	return s
}

// OpenFault returns the injected error for opening path, or nil.
func (in *Injector) OpenFault(path string) error {
	if matches(path, in.cfg.Missing) {
		in.mu.Lock()
		in.counters.Missing++
		in.mu.Unlock()
		return ErrMissing
	}
	return nil
}

// ReadFault returns the injected error for one read of path, or nil.
// Corrupt files fail forever; transiently faulted files fail for their
// deterministic streak and then succeed.
func (in *Injector) ReadFault(path string) error {
	if matches(path, in.cfg.Corrupt) {
		in.mu.Lock()
		in.counters.Corrupt++
		in.mu.Unlock()
		return ErrCorrupt
	}
	if in.cfg.TransientProb <= 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	rem, seen := in.remaining[path]
	if !seen {
		rem = in.streak(path)
	}
	if rem > 0 {
		in.remaining[path] = rem - 1
		in.counters.Transient++
		return ErrTransient
	}
	in.remaining[path] = 0
	return nil
}

// ReadDelay returns the injected latency for one read of path (0 for
// non-stragglers) and counts it.
func (in *Injector) ReadDelay(path string) time.Duration {
	if in.cfg.SlowLatency <= 0 || in.cfg.SlowProb <= 0 {
		return 0
	}
	if u01(in.hash64(path, "slow")) >= in.cfg.SlowProb {
		return 0
	}
	in.mu.Lock()
	in.counters.Slow++
	in.mu.Unlock()
	return in.cfg.SlowLatency
}

// ParseSpec parses the das_analyze -inject grammar: comma-separated k=v
// pairs. Keys: seed=<int>, transient=<prob>, max=<n>, missing=<file>,
// corrupt=<file> (both repeatable), slowp=<prob>, slowlat=<duration>.
//
//	-inject 'seed=42,transient=0.3,max=3,missing=westSac_170728224510.dasf'
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, fmt.Errorf("faults: empty injection spec")
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return cfg, fmt.Errorf("faults: bad spec item %q (want key=value)", part)
		}
		var err error
		switch kv[0] {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(kv[1], 10, 64)
		case "transient":
			cfg.TransientProb, err = strconv.ParseFloat(kv[1], 64)
		case "max":
			cfg.MaxTransient, err = strconv.Atoi(kv[1])
		case "missing":
			cfg.Missing = append(cfg.Missing, kv[1])
		case "corrupt":
			cfg.Corrupt = append(cfg.Corrupt, kv[1])
		case "slowp":
			cfg.SlowProb, err = strconv.ParseFloat(kv[1], 64)
		case "slowlat":
			cfg.SlowLatency, err = time.ParseDuration(kv[1])
		default:
			return cfg, fmt.Errorf("faults: unknown spec key %q", kv[0])
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: bad value for %q: %w", kv[0], err)
		}
	}
	if cfg.TransientProb < 0 || cfg.TransientProb > 1 || cfg.SlowProb < 0 || cfg.SlowProb > 1 {
		return cfg, fmt.Errorf("faults: probabilities must be in [0,1]")
	}
	return cfg, nil
}
