package haee

import (
	"testing"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/omp"
)

func benchBlock(channels, samples int) arrayudf.Block {
	a := dasf.NewArray2D(channels, samples)
	for i := range a.Data {
		a.Data[i] = float64(i%97) * 0.25
	}
	return arrayudf.Block{Data: a, ChLo: 0, ChHi: channels}
}

func BenchmarkApplyMTMovingAverage(b *testing.B) {
	blk := benchBlock(32, 2000)
	team := omp.NewTeam(4)
	udf := func(s *arrayudf.Stencil) float64 {
		return (s.At(-1, 0) + s.Value() + s.At(1, 0)) / 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyMT(team, blk, arrayudf.Spec{}, 2000, udf)
	}
}

func BenchmarkApplyMTLocalSimiWindow(b *testing.B) {
	blk := benchBlock(16, 1000)
	team := omp.NewTeam(4)
	udf := func(s *arrayudf.Stencil) float64 {
		w := s.Window(-8, 8, 0)
		var sum float64
		for _, v := range w {
			sum += v
		}
		return sum
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyMT(team, blk, arrayudf.Spec{TimeStride: 10}, 1000, udf)
	}
}

func BenchmarkApplyRowsMT(b *testing.B) {
	blk := benchBlock(64, 1000)
	team := omp.NewTeam(4)
	udf := func(s *arrayudf.Stencil) []float64 {
		row := s.Row(0)
		out := make([]float64, 16)
		for i := range out {
			out[i] = row[i*32]
		}
		return out
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyRowsMT(team, blk, 16, udf)
	}
}

func BenchmarkSuggestLayout(b *testing.B) {
	in := tunerInput()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SuggestLayout(in); err != nil {
			b.Fatal(err)
		}
	}
}
