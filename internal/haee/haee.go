// Package haee is DASSA's Hybrid ArrayUDF Execution Engine (§V.B): the
// extension of ArrayUDF from a pure-MPI model (one process per core) to a
// hybrid model (one process per node, OpenMP-style threads inside). The two
// wins the paper claims are reproduced structurally here: threads on a node
// share one copy of node-wide data (the FFT'd master channel that pure MPI
// must replicate per core), and each node issues one set of I/O requests
// instead of one per core.
//
// ApplyMT is the paper's Algorithm 1: a thread team evaluates the UDF over
// the node's block, each thread appending to a private result vector; the
// vectors are merged by a prefix-sum of sizes and a parallel copy.
package haee

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/daslib"
	"dassa/internal/dass"
	"dassa/internal/mpi"
	"dassa/internal/obs"
	"dassa/internal/obs/trace"
	"dassa/internal/omp"
	"dassa/internal/pfs"
)

// Mode selects the execution model.
type Mode int

const (
	// PureMPI is the original ArrayUDF layout: Nodes×CoresPerNode MPI
	// ranks, each single-threaded with its own block, shared data copy,
	// and I/O requests.
	PureMPI Mode = iota
	// Hybrid is HAEE: one MPI rank per node running CoresPerNode threads
	// that share the node's block and shared data.
	Hybrid
)

func (m Mode) String() string {
	switch m {
	case PureMPI:
		return "mpi"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes the simulated machine layout for a run.
type Config struct {
	Nodes        int
	CoresPerNode int
	Mode         Mode
	// NodeMemoryBytes, when positive, aborts the run with Report.OOM when
	// the estimated per-node footprint exceeds it (the paper's 91-node
	// pure-MPI out-of-memory case).
	NodeMemoryBytes int64
	// ReadStrategy overrides how ranks load their blocks (default:
	// independent reads, the original ArrayUDF behaviour).
	ReadStrategy arrayudf.ReadStrategy
	// FailPolicy decides whether a member file that stays bad after retries
	// aborts the world (default) or degrades into NaN-masked gaps plus a
	// QualityReport on the run's Report.
	FailPolicy dass.FailPolicy
}

func (cfg Config) validate() error {
	if cfg.Nodes < 1 || cfg.CoresPerNode < 1 {
		return fmt.Errorf("haee: config needs ≥1 node and ≥1 core, got %d×%d", cfg.Nodes, cfg.CoresPerNode)
	}
	return nil
}

// ranks returns the MPI world size and per-rank thread count for the mode.
func (cfg Config) ranks() (worldSize, threads int) {
	if cfg.Mode == Hybrid {
		return cfg.Nodes, cfg.CoresPerNode
	}
	return cfg.Nodes * cfg.CoresPerNode, 1
}

// RowsWorkload is a per-channel analysis (Algorithm 3 shape): Prepare loads
// or computes data shared by all channels (the master channel's spectrum),
// then UDF maps each channel's stencil to a fixed-length row.
type RowsWorkload struct {
	Spec   arrayudf.Spec
	RowLen int
	// Prepare runs once per MPI rank (≙ once per node in Hybrid mode, once
	// per core in PureMPI mode) and returns the shared payload plus its
	// approximate size in bytes and the I/O it performed.
	Prepare func(c *mpi.Comm, v *dass.View) (shared any, bytes int64, tr pfs.Trace)
	// UDF maps one channel to its output row; it must be thread-safe.
	UDF func(s *arrayudf.Stencil, shared any) []float64
	// UDFInto, when non-nil, is preferred over UDF: it writes the channel's
	// row into the engine-owned dst (length RowLen) and may borrow work
	// buffers from the per-thread scratch. The engine owns dst, so UDFs
	// never hand back scratch-owned memory (DESIGN.md §14).
	UDFInto func(s *arrayudf.Stencil, shared any, dst []float64, scr *daslib.Scratch)
}

// PointsWorkload is a per-cell analysis (Algorithm 2 shape).
type PointsWorkload struct {
	Spec arrayudf.Spec
	// UDF maps one cell to one value; it must be thread-safe.
	UDF arrayudf.PointUDF
	// UDFScratch, when non-nil, is preferred over UDF: the same mapping
	// with a per-thread scratch arena for its window buffers.
	UDFScratch func(s *arrayudf.Stencil, scr *daslib.Scratch) float64
}

// Report summarizes a run: wall-clock per phase (max across ranks), the
// global I/O trace, the memory estimate that decides OOM, and on rank 0
// the assembled output.
type Report struct {
	Mode         Mode
	Nodes        int
	CoresPerNode int

	ReadTime    time.Duration
	ComputeTime time.Duration
	WriteTime   time.Duration

	// ExchangeTime is the communication component of the load phase —
	// broadcasts, all-to-alls, halo messages — max across ranks. It is a
	// subset of ReadTime (which keeps its historical meaning of full block
	// load wall time), isolating the paper's exchange cost.
	ExchangeTime time.Duration

	// Phases is the per-rank phase breakdown (read/exchange/compute/write)
	// reduced across ranks — the machine-readable form of Figs. 8–10.
	Phases obs.PhaseReport

	ReadTrace  pfs.Trace
	WriteTrace pfs.Trace

	// MemPerNode estimates one node's footprint: every rank on the node
	// holds its block plus its own copy of the shared payload.
	MemPerNode int64
	OOM        bool

	// Quality accounts for data lost to degraded reads (rank 0 only, under
	// dass.FailDegrade; nil otherwise).
	Quality *dass.QualityReport

	Output *dasf.Array2D
}

// Total returns the end-to-end wall time.
func (r Report) Total() time.Duration { return r.ReadTime + r.ComputeTime + r.WriteTime }

// Engine executes workloads under a machine layout.
type Engine struct {
	cfg Config
}

// New creates an engine; the config is validated at run time.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

// ApplyMT is Algorithm 1: evaluate udf over every (owned channel × strided
// time) cell of blk with a thread team, using per-thread private vectors
// merged by prefix sums (omp.ForAppend). The static schedule makes the
// merged order equal the sequential order.
func ApplyMT(team *omp.Team, blk arrayudf.Block, spec arrayudf.Spec, nt int, udf arrayudf.PointUDF) *dasf.Array2D {
	own := blk.OwnedChannels()
	outT := spec.OutSamples(nt)
	if own <= 0 {
		return dasf.NewArray2D(0, outT)
	}
	stride := spec.TimeStride
	if stride <= 0 {
		stride = 1
	}
	cells := own * outT
	flat := omp.ForAppend(team, cells, func(i int, out *[]float64) {
		s := blk.Stencil(i/outT, (i%outT)*stride)
		*out = append(*out, udf(s))
	})
	return &dasf.Array2D{Channels: own, Samples: outT, Data: flat}
}

// ApplyRowsMT is ApplyMT for RowUDF workloads: one evaluation per owned
// channel, each appending its whole row.
func ApplyRowsMT(team *omp.Team, blk arrayudf.Block, rowLen int, udf func(s *arrayudf.Stencil) []float64) *dasf.Array2D {
	own := blk.OwnedChannels()
	if own <= 0 {
		return dasf.NewArray2D(0, rowLen)
	}
	flat := omp.ForAppend(team, own, func(ch int, out *[]float64) {
		row := udf(blk.Stencil(ch, 0))
		if len(row) != rowLen {
			panic(fmt.Sprintf("haee: RowUDF returned %d values, declared %d", len(row), rowLen))
		}
		*out = append(*out, row...)
	})
	return &dasf.Array2D{Channels: own, Samples: rowLen, Data: flat}
}

// teamScratch checks one scratch arena and one reusable stencil out per
// worker thread; release returns the arenas to the process pool.
func teamScratch(team *omp.Team, blk arrayudf.Block) (scratches []*daslib.Scratch, stencils []*arrayudf.Stencil, release func()) {
	n := team.Threads()
	scratches = make([]*daslib.Scratch, n)
	stencils = make([]*arrayudf.Stencil, n)
	for h := range scratches {
		scratches[h] = daslib.GetScratch()
		stencils[h] = blk.Stencil(0, 0)
	}
	return scratches, stencils, func() {
		for _, s := range scratches {
			daslib.PutScratch(s)
		}
	}
}

// ApplyMTScratch is ApplyMT for scratch-aware point UDFs: the output array
// is preallocated and each thread writes its cells directly (the static
// schedule gives disjoint index ranges, so no merge is needed), reusing one
// stencil and one scratch arena per thread. After the first channel of a
// run the inner loop performs no allocation.
func ApplyMTScratch(team *omp.Team, blk arrayudf.Block, spec arrayudf.Spec, nt int, udf func(s *arrayudf.Stencil, scr *daslib.Scratch) float64) *dasf.Array2D {
	own := blk.OwnedChannels()
	outT := spec.OutSamples(nt)
	if own <= 0 {
		return dasf.NewArray2D(0, outT)
	}
	stride := spec.TimeStride
	if stride <= 0 {
		stride = 1
	}
	out := dasf.NewArray2D(own, outT)
	scratches, stencils, release := teamScratch(team, blk)
	defer release()
	team.ForThread(own*outT, func(i, h int) {
		st := stencils[h]
		st.SetPos(i/outT, (i%outT)*stride)
		out.Data[i] = udf(st, scratches[h])
	})
	return out
}

// ApplyRowsInto is ApplyRowsMT for destination-passing row UDFs: the
// output array is preallocated, each channel's UDF writes straight into
// its row, and every thread carries a scratch arena for kernel
// intermediates. Rows are engine-owned, so nothing scratch-owned escapes a
// UDF call.
func ApplyRowsInto(team *omp.Team, blk arrayudf.Block, rowLen int, udf func(s *arrayudf.Stencil, dst []float64, scr *daslib.Scratch)) *dasf.Array2D {
	own := blk.OwnedChannels()
	if own <= 0 {
		return dasf.NewArray2D(0, rowLen)
	}
	out := dasf.NewArray2D(own, rowLen)
	scratches, stencils, release := teamScratch(team, blk)
	defer release()
	team.ForThread(own, func(ch, h int) {
		st := stencils[h]
		st.SetPos(ch, 0)
		udf(st, out.Row(ch), scratches[h])
	})
	return out
}

// RunRows executes a RowsWorkload over the view. If outPath is non-empty,
// rank 0 writes the assembled result as a DASF file (the single-big-array
// write both modes share in Figure 8).
func (e *Engine) RunRows(v *dass.View, w RowsWorkload, outPath string) (Report, error) {
	if err := e.cfg.validate(); err != nil {
		return Report{}, err
	}
	if (w.UDF == nil && w.UDFInto == nil) || w.RowLen <= 0 {
		return Report{}, fmt.Errorf("haee: RowsWorkload needs a UDF and positive RowLen")
	}
	return e.run(v, w.Spec, outPath, func(c *mpi.Comm, team *omp.Team, blk arrayudf.Block) (*dasf.Array2D, int64, pfs.Trace) {
		var shared any
		var sharedBytes int64
		var prepTr pfs.Trace
		if w.Prepare != nil {
			shared, sharedBytes, prepTr = w.Prepare(c, v)
		}
		// One UDF call is one channel — the row engine's tile. The
		// cancellation panic unwinds through the omp team to the rank, and
		// through mpi.Run to the caller as the context's error.
		var out *dasf.Array2D
		if w.UDFInto != nil {
			out = ApplyRowsInto(team, blk, w.RowLen, func(s *arrayudf.Stencil, dst []float64, scr *daslib.Scratch) {
				if err := v.Context().Err(); err != nil {
					panic(fmt.Errorf("haee: rows compute: %w", err))
				}
				w.UDFInto(s, shared, dst, scr)
			})
		} else {
			out = ApplyRowsMT(team, blk, w.RowLen, func(s *arrayudf.Stencil) []float64 {
				if err := v.Context().Err(); err != nil {
					panic(fmt.Errorf("haee: rows compute: %w", err))
				}
				return w.UDF(s, shared)
			})
		}
		return out, sharedBytes, prepTr
	})
}

// RunPoints executes a PointsWorkload over the view.
func (e *Engine) RunPoints(v *dass.View, w PointsWorkload, outPath string) (Report, error) {
	if err := e.cfg.validate(); err != nil {
		return Report{}, err
	}
	if w.UDF == nil && w.UDFScratch == nil {
		return Report{}, fmt.Errorf("haee: PointsWorkload needs a UDF")
	}
	_, nt := v.Shape()
	return e.run(v, w.Spec, outPath, func(c *mpi.Comm, team *omp.Team, blk arrayudf.Block) (*dasf.Array2D, int64, pfs.Trace) {
		// Check cancellation once per channel row (the first strided cell),
		// not per cell — cancellation latency stays one row, the hot loop
		// stays hot.
		if w.UDFScratch != nil {
			udf := func(s *arrayudf.Stencil, scr *daslib.Scratch) float64 {
				if s.T() == 0 {
					if err := v.Context().Err(); err != nil {
						panic(fmt.Errorf("haee: points compute: %w", err))
					}
				}
				return w.UDFScratch(s, scr)
			}
			return ApplyMTScratch(team, blk, w.Spec, nt, udf), 0, pfs.Trace{}
		}
		udf := func(s *arrayudf.Stencil) float64 {
			if s.T() == 0 {
				if err := v.Context().Err(); err != nil {
					panic(fmt.Errorf("haee: points compute: %w", err))
				}
			}
			return w.UDF(s)
		}
		return ApplyMT(team, blk, w.Spec, nt, udf), 0, pfs.Trace{}
	})
}

// run is the shared phase driver: read → compute → gather/write, with
// per-phase timing reduced to the max across ranks.
func (e *Engine) run(v *dass.View, spec arrayudf.Spec,
	outPath string,
	compute func(c *mpi.Comm, team *omp.Team, blk arrayudf.Block) (*dasf.Array2D, int64, pfs.Trace),
) (Report, error) {
	cfg := e.cfg
	worldSize, threads := cfg.ranks()
	spec.ReadStrategy = cfg.ReadStrategy
	spec.FailPolicy = cfg.FailPolicy

	rep := Report{Mode: cfg.Mode, Nodes: cfg.Nodes, CoresPerNode: cfg.CoresPerNode}
	nch, _ := v.Shape()
	// Per-rank phase recorder: the parallel readers fill read/exchange via
	// the view hook; the driver below records compute and write.
	spans := obs.NewSpans(worldSize)
	v = v.WithSpans(spans)
	var runErr error
	// cancelled panics the rank with the view context's error at a phase
	// boundary; mpi.Run unwraps it so callers see context.Canceled /
	// DeadlineExceeded via errors.Is.
	cancelled := func(phase string) {
		if err := v.Context().Err(); err != nil {
			panic(fmt.Errorf("haee: %s: %w", phase, err))
		}
	}
	runStart := time.Now()
	_, err := mpi.Run(worldSize, func(c *mpi.Comm) {
		team := omp.NewTeam(threads)

		cancelled("load")
		t0 := time.Now()
		blk, readTr, quality := arrayudf.LoadBlock(c, v, spec)
		readSec := time.Since(t0).Seconds()

		cancelled("compute")
		t0 = time.Now()
		out, sharedBytes, prepTr := compute(c, team, blk)
		computeDur := time.Since(t0)
		computeSec := computeDur.Seconds()
		spans.Add(c.Rank(), obs.PhaseCompute, computeDur)
		readTr.Add(prepTr) // prepare-phase I/O counts as read I/O

		// Memory estimate: each rank holds its block + shared payload; a
		// node hosts ranksPerNode such ranks.
		var blockBytes int64
		if blk.Data != nil {
			blockBytes = int64(len(blk.Data.Data)) * 8
		}
		ranksPerNode := 1
		if cfg.Mode == PureMPI {
			ranksPerNode = cfg.CoresPerNode
		}
		memVec := mpi.Allreduce(c, []int64{blockBytes + sharedBytes}, mpi.MaxI64)
		memPerNode := memVec[0] * int64(ranksPerNode)
		oom := cfg.NodeMemoryBytes > 0 && memPerNode > cfg.NodeMemoryBytes

		// Phase times: max across ranks. I/O traces: summed across ranks —
		// the total request pressure on the storage system is exactly what
		// Figure 8 compares between the two modes.
		times := mpi.Reduce(c, 0, []float64{readSec, computeSec}, mpi.MaxF64)
		trSum := mpi.Reduce(c, 0, []int64{readTr.Opens, readTr.Reads, readTr.BytesRead,
			readTr.Retries, readTr.Faults, readTr.SlowReads, readTr.MaskedSamples}, mpi.SumI64)
		if c.Rank() == 0 {
			readTr.Opens, readTr.Reads, readTr.BytesRead = trSum[0], trSum[1], trSum[2]
			readTr.Retries, readTr.Faults, readTr.SlowReads, readTr.MaskedSamples = trSum[3], trSum[4], trSum[5], trSum[6]
		}

		// Write the result as one big array with positioned parallel writes
		// (every rank stores its own rows — the single-shared-file pattern
		// whose cost Figure 8 shows is identical between the two modes),
		// then gather a copy on rank 0 for the report.
		cancelled("write")
		t0 = time.Now()
		var writeTr pfs.Trace
		if outPath != "" && !oom {
			outT := 0
			if out != nil {
				outT = out.Samples
			}
			// All ranks must agree on the output width, including ranks
			// that own no channels.
			widths := mpi.Allreduce(c, []int64{int64(outT)}, mpi.MaxI64)
			outT = int(widths[0])
			if c.Rank() == 0 {
				meta := dasf.Meta{"Producer": dasf.S("dassa-haee"), "Mode": dasf.S(cfg.Mode.String())}
				pw, err := dasf.CreateData(outPath, meta, nch, outT, dasf.Float64)
				if err != nil {
					runErr = err
				} else if err := pw.Close(); err != nil {
					runErr = err
				}
			}
			c.Barrier()
			if runErr == nil && out != nil && out.Channels > 0 {
				pw, err := dasf.OpenForWrite(outPath)
				if err != nil {
					panic(fmt.Errorf("haee: parallel write: %w", err))
				}
				if err := pw.WriteRows(blk.ChLo, out); err != nil {
					pw.Close()
					panic(fmt.Errorf("haee: parallel write: %w", err))
				}
				st := pw.Stats()
				if err := pw.Close(); err != nil {
					panic(fmt.Errorf("haee: parallel write: %w", err))
				}
				writeTr.Opens += st.Opens
				writeTr.Writes += st.Writes
				writeTr.BytesWritten += st.BytesWritten
			}
		}
		wr := mpi.Reduce(c, 0, []int64{writeTr.Opens, writeTr.Writes, writeTr.BytesWritten}, mpi.SumI64)
		if c.Rank() == 0 {
			writeTr.Opens, writeTr.Writes, writeTr.BytesWritten = wr[0], wr[1], wr[2]
		}
		full := arrayudf.Gather(c, nch, arrayudf.Result{Data: out, ChLo: blk.ChLo, ChHi: blk.ChHi})
		writeDur := time.Since(t0)
		writeSec := writeDur.Seconds()
		spans.Add(c.Rank(), obs.PhaseWrite, writeDur)
		wtimes := mpi.Reduce(c, 0, []float64{writeSec}, mpi.MaxF64)

		if c.Rank() == 0 {
			rep.ReadTime = time.Duration(times[0] * float64(time.Second))
			rep.ComputeTime = time.Duration(times[1] * float64(time.Second))
			rep.WriteTime = time.Duration(wtimes[0] * float64(time.Second))
			rep.ReadTrace = readTr
			rep.ReadTrace.Processes = worldSize
			rep.WriteTrace = writeTr
			rep.WriteTrace.Processes = worldSize
			rep.MemPerNode = memPerNode
			rep.OOM = oom
			rep.Quality = quality
			rep.Output = full
		}
	})
	// The recorder outlives the world: reduce it once here, on the caller's
	// goroutine, and feed the process-wide histograms so a scrape of
	// /metrics sees every engine run's phase distribution.
	rep.ExchangeTime = spans.Max(obs.PhaseExchange)
	rep.Phases = spans.Report()
	spans.ObserveInto(obs.Default())
	annotateTrace(v.Context(), runStart, &rep)
	if err != nil {
		var re *mpi.RankError
		if errors.As(err, &re) && re.TraceID == "" {
			re.TraceID = string(trace.IDFrom(v.Context()))
		}
		return rep, err
	}
	return rep, runErr
}

// annotateTrace lands the engine's phase breakdown in the request trace (if
// the view carries one) as completed child spans. Phase wall times are
// max-across-ranks, so the spans are laid out back to back from the run's
// start — an approximation of the critical path, not per-rank timelines.
func annotateTrace(ctx context.Context, runStart time.Time, rep *Report) {
	at := runStart
	for _, ph := range []struct {
		name string
		d    time.Duration
	}{
		{"haee.read", rep.ReadTime},
		{"haee.compute", rep.ComputeTime},
		{"haee.write", rep.WriteTime},
	} {
		if ph.d <= 0 {
			continue
		}
		trace.Add(ctx, ph.name, at, ph.d)
		at = at.Add(ph.d)
	}
	// Exchange overlaps the read phase rather than following it.
	if rep.ExchangeTime > 0 {
		trace.Add(ctx, "haee.exchange", runStart, rep.ExchangeTime)
	}
}
