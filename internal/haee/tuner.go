package haee

import (
	"fmt"
	"time"

	"dassa/internal/dass"
	"dassa/internal/pfs"
)

// The paper's future work (§VIII) includes "how to automatically select
// system settings, such as the number of nodes, to run the analysis code".
// SuggestLayout is that tuner: given the dataset's dimensions, a measured
// per-channel compute cost, and a storage model, it enumerates candidate
// machine layouts, predicts each one's read and compute time with the same
// models the benches use, drops layouts that exceed the node-memory
// budget, and returns the fastest.

// TunerInput describes a planned analysis run.
type TunerInput struct {
	// TotalBytes is the dataset size on disk; Channels × Files shape it.
	TotalBytes int64
	Channels   int
	Files      int
	// UnitCost is the measured serial compute cost per channel.
	UnitCost time.Duration
	// SharedBytes is the per-rank shared payload (e.g. the FFT'd master
	// channel); zero when the workload has none.
	SharedBytes int64
	// NodeMemoryBytes caps a node's footprint; zero means unlimited.
	NodeMemoryBytes int64
	// MaxNodes and CoresPerNode bound the candidate layouts.
	MaxNodes     int
	CoresPerNode int
	// Model prices the I/O.
	Model pfs.Model
}

func (in TunerInput) validate() error {
	if in.TotalBytes <= 0 || in.Channels <= 0 || in.Files <= 0 {
		return fmt.Errorf("haee: tuner needs positive data dimensions, got %+v", in)
	}
	if in.UnitCost <= 0 {
		return fmt.Errorf("haee: tuner needs a measured positive unit cost")
	}
	if in.MaxNodes < 1 || in.CoresPerNode < 1 {
		return fmt.Errorf("haee: tuner needs ≥1 node and core")
	}
	return nil
}

// Layout is one candidate configuration with its predictions.
type Layout struct {
	Nodes        int
	CoresPerNode int
	Mode         Mode
	ReadTime     time.Duration
	ComputeTime  time.Duration
	MemPerNode   int64
	// Feasible is false when the layout exceeds the memory budget.
	Feasible bool
}

// Total returns the predicted end-to-end time.
func (l Layout) Total() time.Duration { return l.ReadTime + l.ComputeTime }

func (l Layout) String() string {
	return fmt.Sprintf("%d×%d %s: read=%v compute=%v mem/node=%dB feasible=%v",
		l.Nodes, l.CoresPerNode, l.Mode, l.ReadTime.Round(time.Microsecond),
		l.ComputeTime.Round(time.Microsecond), l.MemPerNode, l.Feasible)
}

// predict builds one candidate's estimates.
func predict(in TunerInput, nodes int, mode Mode) Layout {
	ranks := nodes
	ranksPerNode := 1
	if mode == PureMPI {
		ranks = nodes * in.CoresPerNode
		ranksPerNode = in.CoresPerNode
	}
	// Read pattern: every rank reads its channel slab from every file,
	// plus one master-channel read per rank when there is shared payload.
	tr := pfs.Trace{
		Opens:     int64(ranks) * int64(in.Files),
		Reads:     int64(ranks) * int64(in.Files),
		BytesRead: in.TotalBytes,
		Processes: ranks,
	}
	if in.SharedBytes > 0 {
		tr.Opens += int64(ranks) * int64(in.Files)
		tr.Reads += int64(ranks) * int64(in.Files)
		tr.BytesRead += int64(ranks) * in.SharedBytes
	}
	// Memory: a node hosts ranksPerNode ranks, each holding its block plus
	// its own shared copy.
	blockBytes := in.TotalBytes / int64(ranks)
	mem := int64(ranksPerNode) * (blockBytes + in.SharedBytes)
	l := Layout{
		Nodes:        nodes,
		CoresPerNode: in.CoresPerNode,
		Mode:         mode,
		ReadTime:     in.Model.Project(tr).Total(),
		ComputeTime:  tunerComputeWall(in.UnitCost, in.Channels, nodes*in.CoresPerNode),
		MemPerNode:   mem,
		Feasible:     in.NodeMemoryBytes <= 0 || mem <= in.NodeMemoryBytes,
	}
	return l
}

// tunerComputeWall mirrors the bench work model: max per-worker channel
// count × unit cost.
func tunerComputeWall(unit time.Duration, channels, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	maxPer := 0
	for r := 0; r < workers; r++ {
		lo, hi := dass.Partition(channels, workers, r)
		if hi-lo > maxPer {
			maxPer = hi - lo
		}
	}
	return time.Duration(int64(unit) * int64(maxPer))
}

// SuggestLayout returns the fastest feasible layout and the full candidate
// list (for display). Candidates sweep node counts 1..MaxNodes (doubling)
// in both execution modes.
func SuggestLayout(in TunerInput) (Layout, []Layout, error) {
	if err := in.validate(); err != nil {
		return Layout{}, nil, err
	}
	var candidates []Layout
	for nodes := 1; nodes <= in.MaxNodes; nodes *= 2 {
		for _, mode := range []Mode{Hybrid, PureMPI} {
			candidates = append(candidates, predict(in, nodes, mode))
		}
	}
	best := Layout{}
	found := false
	for _, c := range candidates {
		if !c.Feasible {
			continue
		}
		if !found || c.Total() < best.Total() {
			best = c
			found = true
		}
	}
	if !found {
		return Layout{}, candidates, fmt.Errorf("haee: no layout fits the %d-byte node budget", in.NodeMemoryBytes)
	}
	return best, candidates, nil
}
