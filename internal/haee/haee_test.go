package haee

import (
	"math"
	"path/filepath"
	"testing"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/omp"
)

func makeView(t *testing.T, channels, files int) (*dass.View, *dasf.Array2D, dasgen.Config) {
	t.Helper()
	dir := t.TempDir()
	cfg := dasgen.Config{
		Channels: channels, SampleRate: 40, FileSeconds: 2, NumFiles: files,
		Seed: 8, DType: dasf.Float64,
	}
	if _, err := dasgen.Generate(dir, cfg, dasgen.Fig10Events(cfg)); err != nil {
		t.Fatal(err)
	}
	cat, err := dass.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	vca := filepath.Join(dir, "v.dasf")
	if _, err := dass.CreateVCA(vca, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	v, err := dass.OpenView(vca)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	return v, full, cfg
}

func TestModeString(t *testing.T) {
	if PureMPI.String() != "mpi" || Hybrid.String() != "hybrid" {
		t.Error("Mode.String broken")
	}
}

func TestConfigValidation(t *testing.T) {
	e := New(Config{Nodes: 0, CoresPerNode: 4})
	if _, err := e.RunPoints(nil, PointsWorkload{UDF: func(*arrayudf.Stencil) float64 { return 0 }}, ""); err == nil {
		t.Error("zero nodes should fail")
	}
	e = New(Config{Nodes: 1, CoresPerNode: 1})
	if _, err := e.RunPoints(nil, PointsWorkload{}, ""); err == nil {
		t.Error("nil UDF should fail")
	}
	if _, err := e.RunRows(nil, RowsWorkload{}, ""); err == nil {
		t.Error("empty rows workload should fail")
	}
}

func TestApplyMTMatchesSequentialApply(t *testing.T) {
	v, full, _ := makeView(t, 10, 2)
	udf := func(s *arrayudf.Stencil) float64 {
		return s.At(0, -1) + 2*s.Value() + s.At(0, 1)
	}
	spec := arrayudf.Spec{GhostChannels: 1, TimeStride: 3}

	// Sequential reference via arrayudf.Apply on one rank.
	var want *dasf.Array2D
	eng := New(Config{Nodes: 1, CoresPerNode: 1, Mode: PureMPI})
	rep, err := eng.RunPoints(v, PointsWorkload{Spec: spec, UDF: udf}, "")
	if err != nil {
		t.Fatal(err)
	}
	want = rep.Output

	// Hybrid with several threads and several nodes.
	for _, cfg := range []Config{
		{Nodes: 1, CoresPerNode: 4, Mode: Hybrid},
		{Nodes: 3, CoresPerNode: 2, Mode: Hybrid},
		{Nodes: 2, CoresPerNode: 3, Mode: PureMPI},
	} {
		rep, err := New(cfg).RunPoints(v, PointsWorkload{Spec: spec, UDF: udf}, "")
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Output
		if got.Channels != want.Channels || got.Samples != want.Samples {
			t.Fatalf("%v: shape %d×%d, want %d×%d", cfg, got.Channels, got.Samples, want.Channels, want.Samples)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("cfg=%+v: output differs at %d", cfg, i)
			}
		}
	}
	_ = full
}

func TestApplyMTDirect(t *testing.T) {
	// ApplyMT on a handmade block, checked against direct evaluation.
	a := dasf.NewArray2D(4, 20)
	for c := 0; c < 4; c++ {
		for tt := 0; tt < 20; tt++ {
			a.Set(c, tt, float64(c)*100+float64(tt))
		}
	}
	blk := arrayudf.Block{Data: a, ChLo: 0, ChHi: 4, Ghost: 0}
	team := omp.NewTeam(3)
	out := ApplyMT(team, blk, arrayudf.Spec{TimeStride: 2}, 20, func(s *arrayudf.Stencil) float64 {
		return 2 * s.Value()
	})
	if out.Channels != 4 || out.Samples != 10 {
		t.Fatalf("shape %d×%d", out.Channels, out.Samples)
	}
	for c := 0; c < 4; c++ {
		for i := 0; i < 10; i++ {
			if out.At(c, i) != 2*a.At(c, i*2) {
				t.Fatalf("ApplyMT(%d,%d) wrong", c, i)
			}
		}
	}
	// Empty block.
	empty := ApplyMT(team, arrayudf.Block{ChLo: 2, ChHi: 2}, arrayudf.Spec{}, 20, nil)
	if empty.Channels != 0 {
		t.Error("empty block should give empty output")
	}
}

func TestHybridSharesMasterMemory(t *testing.T) {
	// The core Figure 8 claim: with the same total cores, pure MPI's
	// per-node memory exceeds hybrid's by (cores-1) × shared bytes.
	v, _, cfg := makeView(t, 16, 2)
	params := detect.InterferometryParams{
		Rate: cfg.SampleRate, FilterOrder: 3, CutoffHz: 8,
		ResampleP: 1, ResampleQ: 2, MasterChannel: 0, MaxLag: 30,
	}
	_, nt := v.Shape()
	parts := params.Workload(nt)
	wl := RowsWorkload{Spec: arrayudf.Spec{}, RowLen: parts.RowLen, Prepare: parts.Prepare, UDF: parts.UDF}

	repMPI, err := New(Config{Nodes: 2, CoresPerNode: 4, Mode: PureMPI}).RunRows(v, wl, "")
	if err != nil {
		t.Fatal(err)
	}
	repHyb, err := New(Config{Nodes: 2, CoresPerNode: 4, Mode: Hybrid}).RunRows(v, wl, "")
	if err != nil {
		t.Fatal(err)
	}
	if repMPI.MemPerNode <= repHyb.MemPerNode {
		t.Errorf("pure MPI per-node memory (%d) should exceed hybrid (%d)",
			repMPI.MemPerNode, repHyb.MemPerNode)
	}
	// Same result either way.
	if repMPI.Output.Channels != repHyb.Output.Channels {
		t.Fatal("shape mismatch")
	}
	for i := range repMPI.Output.Data {
		if d := math.Abs(repMPI.Output.Data[i] - repHyb.Output.Data[i]); d > 1e-9 {
			t.Fatalf("mode outputs differ at %d by %g", i, d)
		}
	}
	// Hybrid issues fewer read requests (2 ranks vs 8 ranks doing
	// independent I/O + master reads).
	if repHyb.ReadTrace.Opens >= repMPI.ReadTrace.Opens {
		t.Errorf("hybrid opens (%d) should be below pure MPI opens (%d)",
			repHyb.ReadTrace.Opens, repMPI.ReadTrace.Opens)
	}
}

func TestOOMDetection(t *testing.T) {
	v, _, cfg := makeView(t, 16, 2)
	params := detect.InterferometryParams{
		Rate: cfg.SampleRate, FilterOrder: 3, CutoffHz: 8,
		ResampleP: 1, ResampleQ: 2, MasterChannel: 0, MaxLag: 30,
	}
	_, nt := v.Shape()
	parts := params.Workload(nt)
	wl := RowsWorkload{RowLen: parts.RowLen, Prepare: parts.Prepare, UDF: parts.UDF}
	// A memory cap between hybrid's and pure MPI's footprint OOMs only MPI.
	hyb, err := New(Config{Nodes: 2, CoresPerNode: 4, Mode: Hybrid}).RunRows(v, wl, "")
	if err != nil {
		t.Fatal(err)
	}
	mpiRep, err := New(Config{Nodes: 2, CoresPerNode: 4, Mode: PureMPI}).RunRows(v, wl, "")
	if err != nil {
		t.Fatal(err)
	}
	cap := (hyb.MemPerNode + mpiRep.MemPerNode) / 2
	hyb2, err := New(Config{Nodes: 2, CoresPerNode: 4, Mode: Hybrid, NodeMemoryBytes: cap}).RunRows(v, wl, "")
	if err != nil {
		t.Fatal(err)
	}
	mpi2, err := New(Config{Nodes: 2, CoresPerNode: 4, Mode: PureMPI, NodeMemoryBytes: cap}).RunRows(v, wl, "")
	if err != nil {
		t.Fatal(err)
	}
	if hyb2.OOM {
		t.Error("hybrid should fit under the cap")
	}
	if !mpi2.OOM {
		t.Error("pure MPI should OOM under the cap")
	}
}

func TestRunRowsWritesOutput(t *testing.T) {
	v, _, cfg := makeView(t, 8, 1)
	params := detect.InterferometryParams{
		Rate: cfg.SampleRate, FilterOrder: 3, CutoffHz: 8,
		ResampleP: 1, ResampleQ: 2, MasterChannel: 0, MaxLag: 20,
	}
	_, nt := v.Shape()
	parts := params.Workload(nt)
	wl := RowsWorkload{RowLen: parts.RowLen, Prepare: parts.Prepare, UDF: parts.UDF}
	out := filepath.Join(t.TempDir(), "result.dasf")
	rep, err := New(Config{Nodes: 2, CoresPerNode: 2, Mode: Hybrid}).RunRows(v, wl, out)
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := dasf.ReadInfo(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumChannels != 8 || info.NumSamples != parts.RowLen {
		t.Errorf("written result shape %d×%d, want 8×%d", info.NumChannels, info.NumSamples, parts.RowLen)
	}
	if rep.WriteTrace.BytesWritten == 0 {
		t.Error("write trace empty")
	}
	if rep.Total() <= 0 {
		t.Error("phase timings missing")
	}
	// The master channel's self-correlation peaks at 1 at zero lag.
	zero := parts.RowLen / 2
	if d := math.Abs(rep.Output.At(0, zero) - 1); d > 1e-6 {
		t.Errorf("master self-correlation at zero lag = %g, want 1", rep.Output.At(0, zero))
	}
}

func TestApplyRowsMTWrongLenPanics(t *testing.T) {
	a := dasf.NewArray2D(2, 10)
	blk := arrayudf.Block{Data: a, ChLo: 0, ChHi: 2}
	defer func() {
		if recover() == nil {
			t.Error("wrong row length should panic")
		}
	}()
	ApplyRowsMT(omp.NewTeam(1), blk, 4, func(*arrayudf.Stencil) []float64 { return []float64{1} })
}
