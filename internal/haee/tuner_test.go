package haee

import (
	"testing"
	"time"

	"dassa/internal/pfs"
)

func tunerInput() TunerInput {
	return TunerInput{
		TotalBytes:   2 << 30, // 2 GiB
		Channels:     11648,
		Files:        1440,
		UnitCost:     5 * time.Millisecond,
		SharedBytes:  4 << 20, // 4 MiB master payload
		MaxNodes:     64,
		CoresPerNode: 8,
		Model:        pfs.CoriLike(),
	}
}

func TestSuggestLayoutValidation(t *testing.T) {
	bad := tunerInput()
	bad.TotalBytes = 0
	if _, _, err := SuggestLayout(bad); err == nil {
		t.Error("zero data should fail")
	}
	bad = tunerInput()
	bad.UnitCost = 0
	if _, _, err := SuggestLayout(bad); err == nil {
		t.Error("zero unit cost should fail")
	}
	bad = tunerInput()
	bad.MaxNodes = 0
	if _, _, err := SuggestLayout(bad); err == nil {
		t.Error("zero nodes should fail")
	}
}

func TestSuggestLayoutReturnsFeasibleBest(t *testing.T) {
	best, all, err := SuggestLayout(tunerInput())
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible {
		t.Fatal("best layout must be feasible")
	}
	if len(all) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range all {
		if c.Feasible && c.Total() < best.Total() {
			t.Errorf("candidate %v beats the returned best %v", c, best)
		}
	}
	if best.String() == "" {
		t.Error("Layout.String broken")
	}
}

func TestSuggestLayoutTradeoff(t *testing.T) {
	// With heavy compute, more nodes must win; with negligible compute and
	// expensive I/O, fewer nodes must win (requests grow with ranks).
	heavy := tunerInput()
	heavy.UnitCost = 100 * time.Millisecond
	bestHeavy, _, err := SuggestLayout(heavy)
	if err != nil {
		t.Fatal(err)
	}
	light := tunerInput()
	light.UnitCost = time.Nanosecond
	bestLight, _, err := SuggestLayout(light)
	if err != nil {
		t.Fatal(err)
	}
	if bestHeavy.Nodes <= bestLight.Nodes {
		t.Errorf("compute-heavy best = %d nodes, I/O-heavy best = %d nodes; want heavy > light",
			bestHeavy.Nodes, bestLight.Nodes)
	}
}

func TestSuggestLayoutMemoryBudget(t *testing.T) {
	in := tunerInput()
	// Budget below what one node can hold at 1 node, forcing more nodes.
	in.NodeMemoryBytes = in.TotalBytes/4 + in.SharedBytes*int64(in.CoresPerNode)
	best, all, err := SuggestLayout(in)
	if err != nil {
		t.Fatal(err)
	}
	if best.MemPerNode > in.NodeMemoryBytes {
		t.Errorf("best layout exceeds the budget: %d > %d", best.MemPerNode, in.NodeMemoryBytes)
	}
	infeasible := 0
	for _, c := range all {
		if !c.Feasible {
			infeasible++
		}
	}
	if infeasible == 0 {
		t.Error("expected some layouts to be excluded by the budget")
	}
	// An impossible budget errors.
	in.NodeMemoryBytes = 1
	if _, _, err := SuggestLayout(in); err == nil {
		t.Error("impossible budget should fail")
	}
}

func TestSuggestLayoutPrefersHybridUnderSharedMemoryPressure(t *testing.T) {
	// With a big shared payload and a tight budget, hybrid layouts (one
	// shared copy per node) remain feasible where pure MPI does not.
	in := tunerInput()
	in.SharedBytes = 256 << 20 // 256 MiB master
	oneNodeBlock := in.TotalBytes / 8
	in.NodeMemoryBytes = oneNodeBlock + 2*in.SharedBytes // fits hybrid, not 8 MPI copies
	best, all, err := SuggestLayout(in)
	if err != nil {
		t.Fatal(err)
	}
	if best.Mode != Hybrid {
		t.Errorf("best mode = %v, want hybrid under shared-memory pressure", best.Mode)
	}
	for _, c := range all {
		if c.Mode == PureMPI && c.Nodes >= 8 && c.Feasible &&
			c.MemPerNode > in.NodeMemoryBytes {
			t.Errorf("infeasible MPI layout marked feasible: %v", c)
		}
	}
}

func TestPredictReadGrowsWithRanks(t *testing.T) {
	in := tunerInput()
	small := predict(in, 2, Hybrid)
	big := predict(in, 32, Hybrid)
	if big.ReadTime <= small.ReadTime {
		// More ranks → more requests → more projected read time (the
		// Figure 11 decay), at least once past the bandwidth-bound regime.
		t.Logf("read time: 2 nodes %v, 32 nodes %v", small.ReadTime, big.ReadTime)
	}
	if big.ComputeTime >= small.ComputeTime {
		t.Errorf("compute must shrink with nodes: %v vs %v", big.ComputeTime, small.ComputeTime)
	}
	// Pure MPI at the same node count has cores× more ranks → cores× more
	// requests. At small scale the extra requests hide below the storage
	// ceilings (more clients even stream faster), so the penalty is only
	// visible at paper-scale request counts — exactly the paper's point
	// that the I/O-call explosion matters at large scale.
	pin := in
	pin.TotalBytes = 2 << 40 // 2 TiB
	pin.Files = 2880
	hyb := predict(pin, 256, Hybrid)
	mpi := predict(pin, 256, PureMPI)
	if mpi.ReadTime <= hyb.ReadTime {
		t.Errorf("paper-scale pure MPI read (%v) should cost more than hybrid (%v)", mpi.ReadTime, hyb.ReadTime)
	}
	if mpi.MemPerNode <= hyb.MemPerNode {
		t.Errorf("pure MPI memory (%d) should exceed hybrid (%d)", mpi.MemPerNode, hyb.MemPerNode)
	}
}
