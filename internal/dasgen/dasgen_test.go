package dasgen

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"dassa/internal/dasf"
)

func smallCfg() Config {
	return Config{
		Channels:    32,
		SampleRate:  100,
		FileSeconds: 2,
		NumFiles:    3,
		Seed:        42,
		DType:       dasf.Float32,
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := smallCfg()
	if got := cfg.SamplesPerFile(); got != 200 {
		t.Errorf("SamplesPerFile = %d, want 200", got)
	}
	if got := cfg.TotalSamples(); got != 600 {
		t.Errorf("TotalSamples = %d, want 600", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Channels: -1, SampleRate: 100, FileSeconds: 1, NumFiles: 1},
		{Channels: 4, SampleRate: 0, FileSeconds: 1, NumFiles: 1},
		{Channels: 4, SampleRate: 100, FileSeconds: 1, NumFiles: 0},
	}
	for i, cfg := range bad {
		if _, err := GenerateFileArray(cfg, nil, 0); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := GenerateFileArray(smallCfg(), nil, 99); err == nil {
		t.Error("out-of-range file index should be rejected")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallCfg()
	a, err := GenerateFileArray(cfg, Fig10Events(cfg), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFileArray(cfg, Fig10Events(cfg), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("same seed produced different data at %d", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 43
	c, err := GenerateFileArray(cfg2, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

// energy returns mean squared amplitude of a channel's row over [lo,hi).
func energy(a *dasf.Array2D, ch, lo, hi int) float64 {
	s := 0.0
	row := a.Row(ch)
	for _, v := range row[lo:hi] {
		s += v * v
	}
	return s / float64(hi-lo)
}

func TestEarthquakeMoveout(t *testing.T) {
	cfg := Config{Channels: 64, SampleRate: 200, FileSeconds: 4, NumFiles: 1, Seed: 1, NoiseAmp: 0.01}
	eq := Earthquake{OriginSec: 1.0, EpicenterChannel: 32, PVel: 200, SVel: 60, Amp: 10, FreqHz: 8, DurSec: 0.5}
	a, err := GenerateFileArray(cfg, []Event{eq}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Before the origin time, every channel is near-quiet.
	for _, ch := range []int{0, 32, 63} {
		if e := energy(a, ch, 0, int(0.9*cfg.SampleRate)); e > 0.01 {
			t.Errorf("channel %d has energy %g before the quake", ch, e)
		}
	}
	// The S arrival at the epicenter is at 1.0s; at channel 0 it is
	// 1.0 + 32/60 ≈ 1.53s. Energy right after each arrival must be large.
	arrEpi := int(1.05 * cfg.SampleRate)
	if e := energy(a, 32, arrEpi, arrEpi+40); e < 1 {
		t.Errorf("epicenter energy after arrival = %g, want large", e)
	}
	arr0 := int((1.0 + 32.0/60.0 + 0.05) * cfg.SampleRate)
	if e := energy(a, 0, arr0, arr0+40); e < 0.5 {
		t.Errorf("edge-channel energy after arrival = %g, want large", e)
	}
	// And channel 0 must still be quiet between origin and its own arrival
	// minus the P precursor window... P arrives at 1+32/200=1.16s, so check
	// window [1.0, 1.15].
	if e := energy(a, 0, int(1.0*cfg.SampleRate), int(1.14*cfg.SampleRate)); e > 0.05 {
		t.Errorf("channel 0 energy before P arrival = %g, want quiet", e)
	}
}

func TestVehicleSweep(t *testing.T) {
	cfg := Config{Channels: 100, SampleRate: 100, FileSeconds: 10, NumFiles: 1, Seed: 1, NoiseAmp: 0.01}
	v := Vehicle{StartSec: 0, StartChannel: 0, Speed: 10, Amp: 5, WidthChannels: 3} // at ch 50 at t=5s
	a, err := GenerateFileArray(cfg, []Event{v}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Around t=5s, channel 50 is hot and channel 90 is quiet.
	lo, hi := int(4.8*cfg.SampleRate), int(5.2*cfg.SampleRate)
	if hot := energy(a, 50, lo, hi); hot < 1 {
		t.Errorf("channel 50 energy at vehicle pass = %g, want large", hot)
	}
	if cold := energy(a, 90, lo, hi); cold > 0.05 {
		t.Errorf("channel 90 energy while vehicle at 50 = %g, want quiet", cold)
	}
	// Later, at t=9s, the vehicle reached channel 90.
	lo, hi = int(8.8*cfg.SampleRate), int(9.2*cfg.SampleRate)
	if hot := energy(a, 90, lo, hi); hot < 1 {
		t.Errorf("channel 90 energy at t=9s = %g, want large", hot)
	}
}

func TestVibrationRange(t *testing.T) {
	cfg := Config{Channels: 20, SampleRate: 100, FileSeconds: 2, NumFiles: 1, Seed: 1, NoiseAmp: 0.01}
	vib := Vibration{ChannelLo: 5, ChannelHi: 8, FreqHz: 10, Amp: 3}
	a, err := GenerateFileArray(cfg, []Event{vib}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := energy(a, 6, 0, 200); e < 1 {
		t.Errorf("in-range channel energy = %g", e)
	}
	if e := energy(a, 15, 0, 200); e > 0.05 {
		t.Errorf("out-of-range channel energy = %g", e)
	}
}

func TestEventContinuityAcrossFiles(t *testing.T) {
	// A vibration must be phase-continuous across the file boundary:
	// generating files 0 and 1 separately equals generating one double-length
	// file (noise differs; use zero noise).
	base := Config{Channels: 4, SampleRate: 100, FileSeconds: 1, NumFiles: 2, Seed: 7, NoiseAmp: 1e-12}
	vib := Vibration{ChannelLo: 0, ChannelHi: 3, FreqHz: 7, Amp: 1}
	f0, err := GenerateFileArray(base, []Event{vib}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := GenerateFileArray(base, []Event{vib}, 1)
	if err != nil {
		t.Fatal(err)
	}
	long := Config{Channels: 4, SampleRate: 100, FileSeconds: 2, NumFiles: 1, Seed: 7, NoiseAmp: 1e-12}
	whole, err := GenerateFileArray(long, []Event{vib}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < 4; ch++ {
		for tt := 0; tt < 100; tt++ {
			if d := math.Abs(f0.At(ch, tt) - whole.At(ch, tt)); d > 1e-9 {
				t.Fatalf("file 0 mismatch at (%d,%d): %g", ch, tt, d)
			}
			if d := math.Abs(f1.At(ch, tt) - whole.At(ch, tt+100)); d > 1e-9 {
				t.Fatalf("file 1 mismatch at (%d,%d): %g", ch, tt, d)
			}
		}
	}
}

func TestTimestampRoundTripProperty(t *testing.T) {
	f := func(sec int32) bool {
		base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
		tm := base.Add(time.Duration(int64(sec)%(3*365*24*3600)) * time.Second)
		if tm.Before(base) {
			tm = base
		}
		ts := TimestampOf(tm)
		back, err := ParseTimestamp(ts)
		return err == nil && back.Equal(tm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseTimestampRejects(t *testing.T) {
	for _, ts := range []int64{-1, 1e13, 171300000000 /* month 13 */, 170132000000 /* day 32 */} {
		if _, err := ParseTimestamp(ts); err == nil {
			t.Errorf("ParseTimestamp(%d) should fail", ts)
		}
	}
}

func TestGenerateWritesSeries(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCfg()
	paths, err := Generate(dir, cfg, Fig10Events(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != cfg.NumFiles {
		t.Fatalf("wrote %d files, want %d", len(paths), cfg.NumFiles)
	}
	var prevTS int64
	for i, p := range paths {
		info, _, err := dasf.ReadInfo(p)
		if err != nil {
			t.Fatalf("file %d: %v", i, err)
		}
		if info.NumChannels != cfg.Channels || info.NumSamples != cfg.SamplesPerFile() {
			t.Errorf("file %d shape %d×%d", i, info.NumChannels, info.NumSamples)
		}
		ts := FileTimestamp(cfg, i)
		if got := info.Global[dasf.KeyTimeStamp].Str; got != filepath.Base(p)[len(cfg.withDefaults().FilePrefix)+1:len(filepath.Base(p))-5] {
			t.Errorf("file %d: timestamp meta %q doesn't match name %q", i, got, p)
		}
		if ts <= prevTS {
			t.Errorf("file %d timestamp %d not increasing", i, ts)
		}
		prevTS = ts
	}
	// File timestamps advance by FileSeconds.
	t0, _ := ParseTimestamp(FileTimestamp(cfg, 0))
	t1, _ := ParseTimestamp(FileTimestamp(cfg, 1))
	if d := t1.Sub(t0); d != 2*time.Second {
		t.Errorf("timestamp gap = %v, want 2s", d)
	}
}

func TestFig10EventsPlacement(t *testing.T) {
	cfg := smallCfg()
	evs := Fig10Events(cfg)
	if len(evs) != 4 {
		t.Fatalf("Fig10Events returned %d events", len(evs))
	}
	var vehicles, quakes, vibs int
	for _, e := range evs {
		if e.Describe() == "" {
			t.Error("empty Describe")
		}
		switch e.(type) {
		case Vehicle:
			vehicles++
		case Earthquake:
			quakes++
		case Vibration:
			vibs++
		}
	}
	if vehicles != 2 || quakes != 1 || vibs != 1 {
		t.Errorf("event mix = %d vehicles, %d quakes, %d vibrations", vehicles, quakes, vibs)
	}
}
