package dasgen

import (
	"testing"

	"dassa/internal/dasf"
)

func TestDeadChannelsAreZero(t *testing.T) {
	cfg := Config{
		Channels: 8, SampleRate: 50, FileSeconds: 2, NumFiles: 2,
		Seed: 6, DeadChannels: []int{2, 5, 99, -1}, // out-of-range ignored
	}
	for idx := 0; idx < 2; idx++ {
		a, err := GenerateFileArray(cfg, Fig10Events(cfg), idx)
		if err != nil {
			t.Fatal(err)
		}
		for _, ch := range []int{2, 5} {
			for _, v := range a.Row(ch) {
				if v != 0 {
					t.Fatalf("dead channel %d has sample %g", ch, v)
				}
			}
		}
		// Live channels still carry signal.
		live := 0.0
		for _, v := range a.Row(3) {
			live += v * v
		}
		if live == 0 {
			t.Fatal("live channel is silent")
		}
	}
}

func TestGlitchIsLocalAndContinuous(t *testing.T) {
	cfg := Config{
		Channels: 6, SampleRate: 50, FileSeconds: 2, NumFiles: 2,
		Seed: 6, NoiseAmp: 1e-9,
	}
	g := Glitch{Channel: 3, StartSec: 1.5, DurSec: 1.0, Amp: 5} // spans the file boundary
	f0, err := GenerateFileArray(cfg, []Event{g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := GenerateFileArray(cfg, []Event{g}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Energy on channel 3 in [1.5, 2.0)s of file 0 and [2.0, 2.5)s of file 1.
	e0 := 0.0
	for _, v := range f0.Row(3)[75:100] {
		e0 += v * v
	}
	e1 := 0.0
	for _, v := range f1.Row(3)[0:25] {
		e1 += v * v
	}
	if e0 < 1 || e1 < 1 {
		t.Errorf("glitch energy missing across boundary: %g / %g", e0, e1)
	}
	// Other channels untouched.
	for _, v := range f0.Row(2) {
		if v > 1e-6 || v < -1e-6 {
			t.Fatal("glitch leaked to another channel")
		}
	}
	// Continuity: the same absolute samples from a double-length file match.
	long := cfg
	long.FileSeconds = 4
	long.NumFiles = 1
	whole, err := GenerateFileArray(long, []Event{g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance: the tiny per-file background noise differs between the
	// two configurations; only the glitch itself must match.
	for tt := 75; tt < 100; tt++ {
		if d := f0.At(3, tt) - whole.At(3, tt); d > 1e-6 || d < -1e-6 {
			t.Fatalf("glitch differs at sample %d", tt)
		}
	}
	for tt := 0; tt < 25; tt++ {
		if d := f1.At(3, tt) - whole.At(3, tt+100); d > 1e-6 || d < -1e-6 {
			t.Fatalf("glitch differs across boundary at sample %d", tt)
		}
	}
	if g.Describe() == "" {
		t.Error("Describe broken")
	}
	// Out-of-range channel is a no-op.
	bad := Glitch{Channel: 99, StartSec: 0, DurSec: 1, Amp: 5}
	arr := dasf.NewArray2D(2, 10)
	bad.AddTo(arr, cfg, 0)
	for _, v := range arr.Data {
		if v != 0 {
			t.Fatal("out-of-range glitch wrote data")
		}
	}
}
