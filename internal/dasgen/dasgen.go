// Package dasgen generates synthetic distributed-acoustic-sensing records.
// It stands in for the paper's proprietary 1.9 TB West Sacramento–Woodland
// recording: per-channel noise with a channel-dependent environment, moving
// vehicles (slanted linear events with geometric amplitude decay), earthquake
// wavefronts (P/S arrivals sweeping outward from an epicenter channel), and
// persistent narrowband vibrations — the event mix visible in the paper's
// Figures 1b and 10. Events are planted at known locations so detection
// results can be verified, which the real data cannot offer.
package dasgen

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"dassa/internal/dasf"
)

// Config describes a synthetic acquisition: a fiber with Channels sensors
// sampled at SampleRate Hz, recorded as NumFiles files of FileSeconds each
// (the paper's deployment records 1-minute files at 500 Hz on 11648
// channels; scale down for laptop runs).
type Config struct {
	Channels    int
	SampleRate  float64 // Hz
	FileSeconds float64 // seconds of data per file
	NumFiles    int
	StartTime   time.Time
	// NoiseAmp scales the background noise (default 1.0 when zero).
	NoiseAmp float64
	// Seed makes the record reproducible.
	Seed int64
	// DType selects on-disk precision (default Float32, as instruments do).
	DType dasf.DType
	// FilePrefix names output files: <prefix>_<yymmddhhmmss>.dasf
	// (default "westSac").
	FilePrefix string
	// PerChannelMeta writes the paper's Figure 4 per-object metadata
	// (object path, array dimension, sample count, distance along the
	// fiber) for every channel.
	PerChannelMeta bool
	// DeadChannels lists channels recorded as all zeros — real DAS arrays
	// always have segments with poor cable coupling or broken splices, and
	// analysis code must survive them.
	DeadChannels []int
	// Compress stores files with the chunked-deflate layout instead of the
	// contiguous one (smaller archives, one read per channel).
	Compress bool
}

// SamplesPerFile returns the per-file time extent.
func (c Config) SamplesPerFile() int {
	return int(math.Round(c.SampleRate * c.FileSeconds))
}

// TotalSamples returns the whole record's time extent.
func (c Config) TotalSamples() int { return c.SamplesPerFile() * c.NumFiles }

func (c Config) withDefaults() Config {
	if c.NoiseAmp == 0 {
		c.NoiseAmp = 1.0
	}
	if c.FilePrefix == "" {
		c.FilePrefix = "westSac"
	}
	if c.StartTime.IsZero() {
		c.StartTime = time.Date(2017, 6, 20, 10, 5, 45, 0, time.UTC)
	}
	return c
}

func (c Config) validate() error {
	if c.Channels <= 0 || c.SampleRate <= 0 || c.FileSeconds <= 0 || c.NumFiles <= 0 {
		return fmt.Errorf("dasgen: config needs positive channels/rate/seconds/files, got %+v", c)
	}
	if c.SamplesPerFile() < 1 {
		return fmt.Errorf("dasgen: %v seconds at %v Hz yields zero samples", c.FileSeconds, c.SampleRate)
	}
	return nil
}

// Event adds a signal into a record. Implementations receive the absolute
// sample range [t0, t1) a file covers and write into the file's array.
type Event interface {
	// AddTo adds the event's contribution to dst, whose time axis covers
	// absolute samples [t0, t0+dst.Samples) of the record.
	AddTo(dst *dasf.Array2D, cfg Config, t0 int)
	// Describe returns a short human-readable summary.
	Describe() string
}

// Vehicle is a source moving along the fiber: a wave packet sweeping
// channels at Speed channels/second starting at (StartSec, StartChannel),
// with amplitude decaying away from the vehicle position. It produces the
// slanted linear features of traffic noise.
type Vehicle struct {
	StartSec     float64 // when the vehicle enters at StartChannel
	StartChannel float64
	Speed        float64 // channels per second (sign = direction)
	Amp          float64
	// WidthChannels is the spatial extent of the vehicle's footprint
	// (default 8 when zero).
	WidthChannels float64
	// FreqHz is the dominant vibration frequency (default 12 Hz when zero).
	FreqHz float64
	// DurSec limits the drive time (default: until the fiber ends).
	DurSec float64
}

// Describe implements Event.
func (v Vehicle) Describe() string {
	return fmt.Sprintf("vehicle t=%.1fs ch=%.0f speed=%.1fch/s", v.StartSec, v.StartChannel, v.Speed)
}

// AddTo implements Event.
func (v Vehicle) AddTo(dst *dasf.Array2D, cfg Config, t0 int) {
	width := v.WidthChannels
	if width == 0 {
		width = 8
	}
	freq := v.FreqHz
	if freq == 0 {
		freq = 12
	}
	dur := v.DurSec
	if dur == 0 {
		dur = 1e18
	}
	rate := cfg.SampleRate
	for tt := 0; tt < dst.Samples; tt++ {
		sec := float64(t0+tt) / rate
		dt := sec - v.StartSec
		if dt < 0 || dt > dur {
			continue
		}
		pos := v.StartChannel + v.Speed*dt
		cLo := int(math.Floor(pos - 4*width))
		cHi := int(math.Ceil(pos + 4*width))
		cLo = max(cLo, 0)
		cHi = min(cHi, dst.Channels-1)
		osc := math.Sin(2 * math.Pi * freq * sec)
		for ch := cLo; ch <= cHi; ch++ {
			d := (float64(ch) - pos) / width
			dst.Data[ch*dst.Samples+tt] += v.Amp * math.Exp(-d*d/2) * osc
		}
	}
}

// Earthquake is a seismic event: P and S wavefronts propagate outward from
// EpicenterChannel along the fiber, each a damped sinusoid. Apparent
// velocities are in channels/second, so arrival at channel c is
// OriginSec + |c-epicenter|/velocity — the hyperbolic sweep in Fig. 1b.
type Earthquake struct {
	OriginSec        float64
	EpicenterChannel float64
	PVel             float64 // channels/second, faster
	SVel             float64 // channels/second, slower and stronger
	Amp              float64
	FreqHz           float64 // dominant frequency (default 5 Hz when zero)
	DurSec           float64 // wavelet ring-down time (default 3 s when zero)
}

// Describe implements Event.
func (e Earthquake) Describe() string {
	return fmt.Sprintf("earthquake t=%.1fs epicenter=ch%.0f", e.OriginSec, e.EpicenterChannel)
}

// AddTo implements Event.
func (e Earthquake) AddTo(dst *dasf.Array2D, cfg Config, t0 int) {
	freq := e.FreqHz
	if freq == 0 {
		freq = 5
	}
	dur := e.DurSec
	if dur == 0 {
		dur = 3
	}
	rate := cfg.SampleRate
	addArrival := func(vel, amp float64) {
		if vel <= 0 {
			return
		}
		for ch := 0; ch < dst.Channels; ch++ {
			arr := e.OriginSec + math.Abs(float64(ch)-e.EpicenterChannel)/vel
			ttLo := int(math.Ceil(arr*rate)) - t0
			ttHi := int(math.Ceil((arr+dur)*rate)) - t0
			ttLo = max(ttLo, 0)
			ttHi = min(ttHi, dst.Samples)
			row := dst.Row(ch)
			for tt := ttLo; tt < ttHi; tt++ {
				dt := float64(t0+tt)/rate - arr
				row[tt] += amp * math.Exp(-dt/(dur/3)) * math.Sin(2*math.Pi*freq*dt)
			}
		}
	}
	addArrival(e.PVel, e.Amp*0.4)
	addArrival(e.SVel, e.Amp)
}

// Vibration is a persistent narrowband oscillation on a channel range —
// machinery or a bridge resonance ("persistent vibrating" in Fig. 10).
type Vibration struct {
	ChannelLo, ChannelHi int // inclusive range
	FreqHz               float64
	Amp                  float64
}

// Describe implements Event.
func (v Vibration) Describe() string {
	return fmt.Sprintf("vibration ch=[%d,%d] f=%.1fHz", v.ChannelLo, v.ChannelHi, v.FreqHz)
}

// AddTo implements Event.
func (v Vibration) AddTo(dst *dasf.Array2D, cfg Config, t0 int) {
	cLo := max(v.ChannelLo, 0)
	cHi := min(v.ChannelHi, dst.Channels-1)
	rate := cfg.SampleRate
	for ch := cLo; ch <= cHi; ch++ {
		row := dst.Row(ch)
		phase := float64(ch) * 0.3 // slow spatial phase roll keeps neighbors coherent
		for tt := range row {
			sec := float64(t0+tt) / rate
			row[tt] += v.Amp * math.Sin(2*math.Pi*v.FreqHz*sec+phase)
		}
	}
}

// GenerateFileArray builds the array for file index idx: background noise
// plus every event's contribution over that file's time window.
func GenerateFileArray(cfg Config, events []Event, idx int) (*dasf.Array2D, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if idx < 0 || idx >= cfg.NumFiles {
		return nil, fmt.Errorf("dasgen: file index %d out of range [0,%d)", idx, cfg.NumFiles)
	}
	nt := cfg.SamplesPerFile()
	a := dasf.NewArray2D(cfg.Channels, nt)
	// Deterministic per-file noise; channel environment varies smoothly
	// along the cable (highway sections are noisier than field sections).
	rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(idx)))
	for ch := 0; ch < cfg.Channels; ch++ {
		env := 0.6 + 0.4*math.Sin(float64(ch)*2*math.Pi/float64(cfg.Channels)*3)
		amp := cfg.NoiseAmp * env
		row := a.Row(ch)
		// AR(1) colored noise: surface noise is red, not white.
		prev := 0.0
		for tt := range row {
			prev = 0.7*prev + rng.NormFloat64()
			row[tt] = amp * prev * 0.5
		}
	}
	t0 := idx * nt
	for _, ev := range events {
		ev.AddTo(a, cfg, t0)
	}
	for _, ch := range cfg.DeadChannels {
		if ch >= 0 && ch < cfg.Channels {
			row := a.Row(ch)
			for i := range row {
				row[i] = 0
			}
		}
	}
	return a, nil
}

// Glitch is an instrument artifact: a one-channel spike train, incoherent
// with its neighbors. Detection pipelines must not confuse it with a
// seismic event.
type Glitch struct {
	Channel  int
	StartSec float64
	DurSec   float64
	Amp      float64
}

// Describe implements Event.
func (g Glitch) Describe() string {
	return fmt.Sprintf("glitch ch=%d t=%.1fs", g.Channel, g.StartSec)
}

// AddTo implements Event.
func (g Glitch) AddTo(dst *dasf.Array2D, cfg Config, t0 int) {
	if g.Channel < 0 || g.Channel >= dst.Channels {
		return
	}
	rate := cfg.SampleRate
	lo := int(g.StartSec*rate) - t0
	hi := int((g.StartSec+g.DurSec)*rate) - t0
	lo = max(lo, 0)
	hi = min(hi, dst.Samples)
	row := dst.Row(g.Channel)
	// A deterministic pseudo-random spike train keyed off the sample index
	// (events cannot carry RNG state across file boundaries).
	for tt := lo; tt < hi; tt++ {
		h := uint64(t0+tt)*0x9e3779b97f4a7c15 + uint64(g.Channel)
		h ^= h >> 33
		row[tt] += g.Amp * (float64(int64(h%2001))/1000 - 1)
	}
}

// FileTimestamp returns file idx's acquisition timestamp in the paper's
// yymmddhhmmss form.
func FileTimestamp(cfg Config, idx int) int64 {
	cfg = cfg.withDefaults()
	ts := cfg.StartTime.Add(time.Duration(float64(idx) * cfg.FileSeconds * float64(time.Second)))
	return TimestampOf(ts)
}

// TimestampOf converts a time to yymmddhhmmss.
func TimestampOf(t time.Time) int64 {
	return int64(t.Year()%100)*1e10 + int64(t.Month())*1e8 + int64(t.Day())*1e6 +
		int64(t.Hour())*1e4 + int64(t.Minute())*1e2 + int64(t.Second())
}

// ParseTimestamp converts yymmddhhmmss back to a time (21st century).
func ParseTimestamp(ts int64) (time.Time, error) {
	if ts < 0 || ts >= 1e12 {
		return time.Time{}, fmt.Errorf("dasgen: timestamp %d not in yymmddhhmmss form", ts)
	}
	yy := int(ts / 1e10)
	mm := int(ts / 1e8 % 100)
	dd := int(ts / 1e6 % 100)
	h := int(ts / 1e4 % 100)
	m := int(ts / 1e2 % 100)
	s := int(ts % 100)
	if mm < 1 || mm > 12 || dd < 1 || dd > 31 || h > 23 || m > 59 || s > 59 {
		return time.Time{}, fmt.Errorf("dasgen: timestamp %d has out-of-range fields", ts)
	}
	return time.Date(2000+yy, time.Month(mm), dd, h, m, s, 0, time.UTC), nil
}

// FileName returns file idx's name: <prefix>_<yymmddhhmmss>.dasf.
func FileName(cfg Config, idx int) string {
	cfg = cfg.withDefaults()
	return fmt.Sprintf("%s_%012d.dasf", cfg.FilePrefix, FileTimestamp(cfg, idx))
}

// globalMeta builds the Figure 4 global metadata for file idx.
func globalMeta(cfg Config, idx int) dasf.Meta {
	return dasf.Meta{
		dasf.KeySamplingFrequency: dasf.I(int64(math.Round(cfg.SampleRate))),
		dasf.KeySpatialResolution: dasf.F(2.0),
		dasf.KeyTimeStamp:         dasf.S(fmt.Sprintf("%012d", FileTimestamp(cfg, idx))),
		dasf.KeyNumberOfChannels:  dasf.I(int64(cfg.Channels)),
		"Experiment":              dasf.S("synthetic west-sacramento fiber (dasgen)"),
		"FileIndex":               dasf.I(int64(idx)),
	}
}

// Generate writes the whole synthetic acquisition into dir, one DASF file
// per FileSeconds window, and returns the file paths in time order.
func Generate(dir string, cfg Config, events []Event) ([]string, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dasgen: %w", err)
	}
	var pcm []dasf.Meta
	if cfg.PerChannelMeta {
		pcm = make([]dasf.Meta, cfg.Channels)
		for c := range pcm {
			pcm[c] = dasf.Meta{
				"Object Path":           dasf.S(fmt.Sprintf("/Measurement/%d", c+1)),
				"Array dimension":       dasf.I(1),
				"Number of raw data":    dasf.I(int64(cfg.SamplesPerFile())),
				"DistanceAlongFiber(m)": dasf.F(float64(c) * 2.0),
			}
		}
	}
	paths := make([]string, cfg.NumFiles)
	for idx := 0; idx < cfg.NumFiles; idx++ {
		a, err := GenerateFileArray(cfg, events, idx)
		if err != nil {
			return nil, err
		}
		p := filepath.Join(dir, FileName(cfg, idx))
		write := dasf.WriteData
		if cfg.Compress {
			write = dasf.WriteDataCompressed
		}
		if err := write(p, globalMeta(cfg, idx), pcm, a, cfg.DType); err != nil {
			return nil, err
		}
		paths[idx] = p
	}
	return paths, nil
}

// Fig10Events returns the event mix of the paper's Figure 10 demonstration:
// two moving vehicles, one M4.4-like earthquake, and a persistent vibration,
// placed inside a record of the given config. Event geometry scales with
// the array: vehicle footprints cover a few percent of the channels (as a
// car does on an 11648-channel fiber) and drives are time-bounded, so the
// events stay localized even on small test arrays.
func Fig10Events(cfg Config) []Event {
	cfg = cfg.withDefaults()
	totalSec := cfg.FileSeconds * float64(cfg.NumFiles)
	ch := float64(cfg.Channels)
	width := math.Min(8, math.Max(1.5, 0.03*ch))
	return []Event{
		Vehicle{
			StartSec: 0.05 * totalSec, StartChannel: 0.05 * ch,
			Speed: 0.55 * ch / totalSec, Amp: 4, FreqHz: 11,
			WidthChannels: width, DurSec: 0.30 * totalSec,
		},
		Vehicle{
			StartSec: 0.55 * totalSec, StartChannel: 0.95 * ch,
			Speed: -0.60 * ch / totalSec, Amp: 3.5, FreqHz: 14,
			WidthChannels: width, DurSec: 0.30 * totalSec,
		},
		Earthquake{
			OriginSec: 0.42 * totalSec, EpicenterChannel: 0.45 * ch,
			PVel: 2.5 * ch / totalSec * 10, SVel: 1.2 * ch / totalSec * 10,
			Amp: 8, FreqHz: 4, DurSec: 0.08 * totalSec,
		},
		Vibration{ChannelLo: int(0.80 * ch), ChannelHi: int(0.84 * ch), FreqHz: 9, Amp: 2.2},
	}
}
