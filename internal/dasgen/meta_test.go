package dasgen

import (
	"testing"

	"dassa/internal/dasf"
)

func TestPerChannelMetaWritten(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Channels: 5, SampleRate: 50, FileSeconds: 1, NumFiles: 2,
		Seed: 3, DType: dasf.Float32, PerChannelMeta: true,
	}
	paths, err := Generate(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dasf.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	pcm, err := r.PerChannelMeta()
	if err != nil {
		t.Fatal(err)
	}
	if len(pcm) != cfg.Channels {
		t.Fatalf("per-channel metadata for %d channels, want %d", len(pcm), cfg.Channels)
	}
	// Figure 4: object paths are /Measurement/1..N, distance is 2 m apart.
	if got := pcm[0]["Object Path"].Str; got != "/Measurement/1" {
		t.Errorf("channel 0 object path = %q", got)
	}
	if got := pcm[4]["Object Path"].Str; got != "/Measurement/5" {
		t.Errorf("channel 4 object path = %q", got)
	}
	if got := pcm[3]["DistanceAlongFiber(m)"].Float; got != 6.0 {
		t.Errorf("channel 3 distance = %g, want 6", got)
	}
	if got := pcm[0]["Number of raw data"].Int; got != int64(cfg.SamplesPerFile()) {
		t.Errorf("raw data count = %d, want %d", got, cfg.SamplesPerFile())
	}
	// Default: no per-channel metadata.
	cfg2 := cfg
	cfg2.PerChannelMeta = false
	paths2, err := Generate(t.TempDir(), cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := dasf.Open(paths2[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if m, err := r2.PerChannelMeta(); err != nil || m != nil {
		t.Errorf("default per-channel metadata = %v, %v; want nil", m, err)
	}
}
