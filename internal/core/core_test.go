package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/detect"
)

func makeDataset(t *testing.T, channels, files int) (*Dataset, dasgen.Config) {
	t.Helper()
	dir := t.TempDir()
	cfg := dasgen.Config{
		Channels: channels, SampleRate: 50, FileSeconds: 2, NumFiles: files,
		Seed: 31, DType: dasf.Float32,
	}
	if _, err := dasgen.Generate(dir, cfg, dasgen.Fig10Events(cfg)); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ds, cfg
}

func TestOpenDataset(t *testing.T) {
	ds, cfg := makeDataset(t, 16, 4)
	if ds.Len() != cfg.NumFiles {
		t.Errorf("Len = %d, want %d", ds.Len(), cfg.NumFiles)
	}
	if got := ds.SampleRate(); got != cfg.SampleRate {
		t.Errorf("SampleRate = %g, want %g", got, cfg.SampleRate)
	}
	if _, err := OpenDataset(t.TempDir()); err == nil {
		t.Error("empty directory should fail")
	}
	if _, err := OpenDataset("/nonexistent-dassa"); err == nil {
		t.Error("missing directory should fail")
	}
}

func TestSearchAndMerge(t *testing.T) {
	ds, cfg := makeDataset(t, 16, 5)
	files := ds.Files()
	found := ds.Search(files[1].Timestamp, 3)
	if len(found) != 3 || found[0].Path != files[1].Path {
		t.Fatalf("Search returned %d files", len(found))
	}
	v, err := ds.Merge(found)
	if err != nil {
		t.Fatal(err)
	}
	nch, nt := v.Shape()
	if nch != cfg.Channels || nt != 3*cfg.SamplesPerFile() {
		t.Errorf("merged view %d×%d", nch, nt)
	}
	if _, err := ds.Merge(nil); err == nil {
		t.Error("empty merge should fail")
	}
	// Merge files must not pollute subsequent OpenDataset calls.
	ds2, err := OpenDataset(filepath.Dir(files[0].Path))
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Len() != 5 {
		t.Errorf("rescan found %d files, want 5 (merge artifacts must be skipped)", ds2.Len())
	}
	if err := ds.CleanMergeFiles(); err != nil {
		t.Fatal(err)
	}
	left, _ := filepath.Glob(filepath.Join(filepath.Dir(files[0].Path), ".merge_*"))
	if len(left) != 0 {
		t.Errorf("CleanMergeFiles left %d files", len(left))
	}
}

func TestApplyFacade(t *testing.T) {
	ds, _ := makeDataset(t, 8, 2)
	v, err := ds.MergeAll()
	if err != nil {
		t.Fatal(err)
	}
	fw := New(Config{Nodes: 2, CoresPerNode: 2})
	out, rep, err := fw.Apply(v, 0, 1, func(s *arrayudf.Stencil) float64 {
		return 2 * s.Value()
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Data {
		if out.Data[i] != 2*full.Data[i] {
			t.Fatalf("Apply output wrong at %d", i)
		}
	}
	if rep.ReadTrace.Opens == 0 {
		t.Error("report missing I/O accounting")
	}
	if _, _, err := fw.Apply(v, 0, 1, nil, ""); err == nil {
		t.Error("nil UDF should fail")
	}
}

func TestLocalSimilarityFacade(t *testing.T) {
	ds, cfg := makeDataset(t, 48, 6)
	v, err := ds.MergeAll()
	if err != nil {
		t.Fatal(err)
	}
	fw := New(Config{Nodes: 2, CoresPerNode: 4})
	opt := DefaultLocalSimi(cfg.SampleRate)
	out := filepath.Join(t.TempDir(), "sim.dasf")
	opt.OutPath = out
	sim, regions, rep, err := fw.LocalSimilarity(v, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Channels != cfg.Channels {
		t.Errorf("map channels = %d", sim.Channels)
	}
	if len(regions) == 0 {
		t.Error("no events detected in a record with planted events")
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("similarity map not written: %v", err)
	}
	if rep.Phases.Compute == "" {
		t.Error("report missing phase timings")
	}
	// Invalid parameters are rejected.
	bad := opt
	bad.M = 0
	if _, _, _, err := fw.LocalSimilarity(v, bad); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestInterferometryFacade(t *testing.T) {
	ds, cfg := makeDataset(t, 12, 3)
	v, err := ds.MergeAll()
	if err != nil {
		t.Fatal(err)
	}
	fw := New(Config{Nodes: 2, CoresPerNode: 2})
	opt := DefaultInterferometry(cfg.SampleRate)
	opt.MaxLag = 30
	corr, _, err := fw.Interferometry(v, opt)
	if err != nil {
		t.Fatal(err)
	}
	if corr.Channels != cfg.Channels || corr.Samples != 61 {
		t.Errorf("correlation shape %d×%d, want %d×61", corr.Channels, corr.Samples, cfg.Channels)
	}
	// Master self-correlation peaks at 1.
	if d := math.Abs(corr.At(0, 30) - 1); d > 1e-6 {
		t.Errorf("self correlation = %g", corr.At(0, 30))
	}
	bad := opt
	bad.Rate = 0
	if _, _, err := fw.Interferometry(v, bad); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestOOMPropagation(t *testing.T) {
	ds, cfg := makeDataset(t, 32, 3)
	v, err := ds.MergeAll()
	if err != nil {
		t.Fatal(err)
	}
	fw := New(Config{Nodes: 1, CoresPerNode: 4, PureMPI: true, NodeMemoryBytes: 1})
	opt := DefaultInterferometry(cfg.SampleRate)
	if _, _, err := fw.Interferometry(v, opt); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
	if _, _, _, err := fw.LocalSimilarity(v, DefaultLocalSimi(cfg.SampleRate)); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("localsimi err = %v, want ErrOutOfMemory", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	fw := New(Config{})
	if fw.cfg.Nodes != 1 || fw.cfg.CoresPerNode != 4 {
		t.Errorf("defaults = %+v", fw.cfg)
	}
}

func TestStackedInterferometryFacade(t *testing.T) {
	ds, cfg := makeDataset(t, 8, 4)
	v, err := ds.MergeAll()
	if err != nil {
		t.Fatal(err)
	}
	fw := New(Config{Nodes: 2, CoresPerNode: 2})
	_, nt := v.Shape()
	opt := DefaultStackedInterferometry(cfg.SampleRate, nt)
	opt.MaxLag = 20
	corr, rep, err := fw.StackedInterferometry(v, opt)
	if err != nil {
		t.Fatal(err)
	}
	if corr.Channels != cfg.Channels || corr.Samples != opt.StackedRowLen() {
		t.Errorf("stacked shape %d×%d", corr.Channels, corr.Samples)
	}
	// Master self-correlation stacks to 1 at zero lag.
	if d := math.Abs(corr.At(0, corr.Samples/2) - 1); d > 1e-6 {
		t.Errorf("stacked self correlation = %g", corr.At(0, corr.Samples/2))
	}
	if rep.ReadTrace.Opens == 0 {
		t.Error("report missing I/O accounting")
	}
	bad := opt
	bad.WindowSamples = 2
	if _, _, err := fw.StackedInterferometry(v, bad); err == nil {
		t.Error("invalid window should fail")
	}
}

func TestSTALTAFacade(t *testing.T) {
	ds, cfg := makeDataset(t, 8, 3)
	v, err := ds.MergeAll()
	if err != nil {
		t.Fatal(err)
	}
	fw := New(Config{Nodes: 2, CoresPerNode: 2})
	p := detect.STALTAParams{
		STASamples: int(cfg.SampleRate / 5),
		LTASamples: int(2 * cfg.SampleRate),
		Stride:     5,
	}
	m, _, err := fw.STALTA(v, p, "")
	if err != nil {
		t.Fatal(err)
	}
	_, nt := v.Shape()
	if m.Channels != cfg.Channels || m.Samples != (nt+p.Stride-1)/p.Stride {
		t.Errorf("STA/LTA map shape %d×%d", m.Channels, m.Samples)
	}
	for _, v := range m.Data {
		if v < 0 || math.IsNaN(v) {
			t.Fatal("invalid ratio in map")
		}
	}
	bad := p
	bad.STASamples = 0
	if _, _, err := fw.STALTA(v, bad, ""); err == nil {
		t.Error("invalid params should fail")
	}
}
