// Package core is the DASSA framework facade — the high-level, easy-to-use
// API the paper promises geophysicists (§III): open a directory of DAS
// files, search by time, merge virtually, and run analyses in parallel
// without touching the storage engine, the execution engine, or the
// message-passing layer directly. Everything underneath (dass, arrayudf,
// haee, daslib, detect) remains available for advanced use; this package
// is the one a downstream user starts with.
//
//	ds, _ := core.OpenDataset("./data")
//	view, _ := ds.MergeAll()
//	fw := core.New(core.Config{Nodes: 4, CoresPerNode: 8})
//	sim, rep, _ := fw.LocalSimilarity(view, core.DefaultLocalSimi(500))
package core

import (
	"fmt"
	"os"
	"path/filepath"

	"dassa/internal/arrayudf"
	"dassa/internal/dasf"
	"dassa/internal/daslib"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/faults"
	"dassa/internal/haee"
	"dassa/internal/mpi"
	"dassa/internal/obs"
	"dassa/internal/obs/trace"
	"dassa/internal/pfs"
)

// Config sizes the execution engine. Zero values choose sane defaults
// (one node, four cores, hybrid mode).
type Config struct {
	Nodes        int
	CoresPerNode int
	// PureMPI selects the legacy one-process-per-core model; default is
	// the hybrid engine.
	PureMPI bool
	// NodeMemoryBytes, when positive, makes runs fail with ErrOutOfMemory
	// instead of exceeding the per-node budget.
	NodeMemoryBytes int64
	// MaxRetries retries transient storage failures up to this many times
	// per operation (with exponential backoff). Zero keeps the historical
	// fail-on-first-error behaviour. Applied process-wide at New.
	MaxRetries int
	// FailPolicy decides what a member file that stays bad after retries
	// does to a run: dass.FailAbort (default) kills it, dass.FailDegrade
	// masks the loss with NaN gaps and fills in Report.Quality.
	FailPolicy dass.FailPolicy
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 4
	}
	return c
}

// ErrOutOfMemory reports that a run's estimated per-node footprint
// exceeded Config.NodeMemoryBytes.
var ErrOutOfMemory = fmt.Errorf("core: estimated per-node memory exceeds the configured budget")

// IsCancellation reports whether err stems from a cancelled or expired
// context. Every Framework method honors cancellation through the view it
// is given: bind a context with v.WithContext(ctx) and a run that is
// cancelled mid-read or mid-compute returns an error satisfying this
// predicate (and errors.Is against context.Canceled / DeadlineExceeded) —
// never a silently degraded result, whatever the FailPolicy.
func IsCancellation(err error) bool { return dass.IsCancellation(err) }

// Framework executes analyses under a machine layout.
type Framework struct {
	cfg Config
}

// New creates a framework with the given layout. A positive MaxRetries
// installs the process-wide retry policy every storage read goes through.
func New(cfg Config) *Framework {
	cfg = cfg.withDefaults()
	if cfg.MaxRetries > 0 {
		dasf.SetRetryPolicy(faults.WithRetries(cfg.MaxRetries))
	}
	return &Framework{cfg: cfg}
}

func (f *Framework) engine() *haee.Engine {
	mode := haee.Hybrid
	if f.cfg.PureMPI {
		mode = haee.PureMPI
	}
	return haee.New(haee.Config{
		Nodes:           f.cfg.Nodes,
		CoresPerNode:    f.cfg.CoresPerNode,
		Mode:            mode,
		NodeMemoryBytes: f.cfg.NodeMemoryBytes,
		FailPolicy:      f.cfg.FailPolicy,
	})
}

// Dataset is an opened directory of DAS data files.
type Dataset struct {
	dir string
	cat *dass.Catalog
}

// OpenDataset catalogs every DASF data file in dir (metadata only, with
// the persistent index so unchanged files cost nothing to rescan).
func OpenDataset(dir string) (*Dataset, error) {
	cat, err := dass.ScanDirCached(dir)
	if err != nil {
		return nil, err
	}
	if cat.Len() == 0 {
		return nil, fmt.Errorf("core: no DASF data files in %s", dir)
	}
	return &Dataset{dir: dir, cat: cat}, nil
}

// Len returns the number of cataloged files.
func (d *Dataset) Len() int { return d.cat.Len() }

// Files returns the cataloged entries in time order.
func (d *Dataset) Files() []dass.Entry { return d.cat.Entries() }

// SampleRate returns the dataset's sampling frequency from metadata, or 0
// if absent.
func (d *Dataset) SampleRate() float64 {
	if d.cat.Len() == 0 {
		return 0
	}
	if v, ok := d.cat.Entries()[0].Info.Global[dasf.KeySamplingFrequency]; ok {
		return float64(v.Int)
	}
	return 0
}

// Search finds files by start timestamp and count (das_search -s/-c).
func (d *Dataset) Search(start int64, count int) []dass.Entry {
	return d.cat.SearchStartCount(start, count)
}

// SearchRegex finds files whose timestamp matches the anchored pattern
// (das_search -e).
func (d *Dataset) SearchRegex(pattern string) ([]dass.Entry, error) {
	return d.cat.SearchRegex(pattern)
}

// SearchRange finds files recorded in [start, end) — both yymmddhhmmss
// timestamps.
func (d *Dataset) SearchRange(start, end int64) []dass.Entry {
	return d.cat.SearchRange(start, end)
}

// Merge virtually concatenates the given files and returns a view over the
// result. The VCA file is written next to the data (metadata only).
func (d *Dataset) Merge(entries []dass.Entry) (*dass.View, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("core: nothing to merge")
	}
	path := filepath.Join(d.dir, fmt.Sprintf(".merge_%d_%d.vca.dasf",
		entries[0].Timestamp, len(entries)))
	if _, err := dass.CreateVCA(path, entries); err != nil {
		return nil, err
	}
	return dass.OpenView(path)
}

// MergeAll merges the whole dataset.
func (d *Dataset) MergeAll() (*dass.View, error) {
	return d.Merge(d.cat.Entries())
}

// ViewOf virtually concatenates the entries entirely in memory — no VCA
// file is written and nothing needs cleaning up afterwards. This is the
// merge an always-on service (dassd) uses per request.
func (d *Dataset) ViewOf(entries []dass.Entry) (*dass.View, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("core: nothing to merge")
	}
	return dass.ViewOver(entries)
}

// Rescan refreshes the catalog from disk through the persistent index, so
// newly arrived or rewritten files become visible. Long-running callers
// (the dassd ingest loop) call this each poll interval.
func (d *Dataset) Rescan() error {
	cat, err := dass.ScanDirCached(d.dir)
	if err != nil {
		return err
	}
	d.cat = cat
	return nil
}

// Report summarizes a framework run for callers that want phase timings
// and I/O accounting without importing haee.
type Report struct {
	ReadTrace  pfs.Trace
	MemPerNode int64
	Phases     struct{ Read, Exchange, Compute, Write string }
	// Breakdown is the per-rank phase decomposition (read/exchange/compute/
	// write, max and mean across ranks) — the machine-readable counterpart
	// of Phases, mirroring the paper's Figs. 8–10.
	Breakdown obs.PhaseReport
	// Quality accounts for degraded reads (non-nil only under
	// dass.FailDegrade); Quality.Degraded() reports whether data was lost.
	Quality *dass.QualityReport
}

// Degraded reports whether the run completed with data loss.
func (r Report) Degraded() bool { return r.Quality.Degraded() }

func reportOf(rep haee.Report) Report {
	out := Report{ReadTrace: rep.ReadTrace, MemPerNode: rep.MemPerNode,
		Breakdown: rep.Phases, Quality: rep.Quality}
	out.Phases.Read = rep.ReadTime.String()
	out.Phases.Exchange = rep.ExchangeTime.String()
	out.Phases.Compute = rep.ComputeTime.String()
	out.Phases.Write = rep.WriteTime.String()
	return out
}

// LocalSimiOptions configures earthquake detection (Algorithm 2).
type LocalSimiOptions struct {
	detect.LocalSimiParams
	// Threshold is the detection cut in background standard deviations
	// (default 1.5 when zero).
	Threshold float64
	// OutPath, when set, writes the similarity map as a DASF file.
	OutPath string
}

// DefaultLocalSimi returns the parameters used throughout the paper's
// demonstrations, scaled to the sampling rate.
func DefaultLocalSimi(rate float64) LocalSimiOptions {
	return LocalSimiOptions{
		LocalSimiParams: detect.LocalSimiParams{
			M: max(int(rate/4), 2), K: 1, L: 4, Stride: max(int(rate/5), 1),
		},
		Threshold: 1.5,
	}
}

// traceOp opens a compute span named op under the view's request trace (a
// no-op for untraced views, costing nothing) and rebinds the view so the
// engine's phase spans nest under it. The caller owns the returned span.
func traceOp(v *dass.View, op string) (*dass.View, *trace.Span) {
	ctx, sp := trace.Start(v.Context(), op)
	if sp == nil {
		return v, nil
	}
	return v.WithContext(ctx), sp
}

// LocalSimilarity computes the local-similarity map over the view and
// returns it along with the detected events.
func (f *Framework) LocalSimilarity(v *dass.View, opt LocalSimiOptions) (*dasf.Array2D, []detect.Region, Report, error) {
	v, sp := traceOp(v, "core.localsimi")
	out, regions, rep, err := f.localSimilarity(v, opt)
	if sp != nil {
		sp.SetAttrInt("events", int64(len(regions)))
	}
	sp.EndErr(err)
	return out, regions, rep, err
}

func (f *Framework) localSimilarity(v *dass.View, opt LocalSimiOptions) (*dasf.Array2D, []detect.Region, Report, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, Report{}, err
	}
	rep, err := f.engine().RunPoints(v, haee.PointsWorkload{
		Spec: opt.Spec(), UDFScratch: opt.UDFScratch(),
	}, opt.OutPath)
	if err != nil {
		return nil, nil, Report{}, err
	}
	if rep.OOM {
		return nil, nil, reportOf(rep), ErrOutOfMemory
	}
	thresh := opt.Threshold
	if thresh == 0 {
		thresh = 1.5
	}
	nch, _ := v.Shape()
	regions := detect.FindEventsBanded(rep.Output, thresh, max(nch/8, 4))
	return rep.Output, regions, reportOf(rep), nil
}

// InterferometryOptions configures ambient-noise interferometry
// (Algorithm 3).
type InterferometryOptions struct {
	detect.InterferometryParams
	// OutPath, when set, writes the correlation array as a DASF file.
	OutPath string
}

// DefaultInterferometry returns a standard pipeline for the sampling rate:
// lowpass at rate/8, decimate by 2, correlate against channel 0.
func DefaultInterferometry(rate float64) InterferometryOptions {
	return InterferometryOptions{
		InterferometryParams: detect.InterferometryParams{
			Rate: rate, FilterOrder: 3, CutoffHz: rate / 8,
			ResampleP: 1, ResampleQ: 2, MasterChannel: 0, MaxLag: 128,
		},
	}
}

// Interferometry computes per-channel noise correlations against the
// master channel.
func (f *Framework) Interferometry(v *dass.View, opt InterferometryOptions) (*dasf.Array2D, Report, error) {
	if err := opt.Validate(); err != nil {
		return nil, Report{}, err
	}
	if opt.FailPolicy == dass.FailAbort {
		opt.FailPolicy = f.cfg.FailPolicy // framework default unless overridden
	}
	_, nt := v.Shape()
	parts := opt.Workload(nt)
	rep, err := f.engine().RunRows(v, haee.RowsWorkload{
		Spec:    arrayudf.Spec{},
		RowLen:  parts.RowLen,
		Prepare: parts.Prepare,
		UDF:     parts.UDF,
		UDFInto: parts.UDFInto,
	}, opt.OutPath)
	if err != nil {
		return nil, Report{}, err
	}
	if rep.OOM {
		return nil, reportOf(rep), ErrOutOfMemory
	}
	return rep.Output, reportOf(rep), nil
}

// StackedInterferometryOptions configures windowed interferometry with
// correlation stacking — the production ambient-noise workflow (ref [16]).
type StackedInterferometryOptions struct {
	detect.StackingParams
	// OutPath, when set, writes the stacked correlations as a DASF file.
	OutPath string
}

// DefaultStackedInterferometry windows the record into 8 segments with 25%
// overlap on top of the default pipeline.
func DefaultStackedInterferometry(rate float64, totalSamples int) StackedInterferometryOptions {
	win := max(totalSamples/8, 64)
	return StackedInterferometryOptions{
		StackingParams: detect.StackingParams{
			InterferometryParams: DefaultInterferometry(rate).InterferometryParams,
			WindowSamples:        win,
			OverlapSamples:       win / 4,
		},
	}
}

// StackedInterferometry computes per-channel noise correlations stacked
// over time windows.
func (f *Framework) StackedInterferometry(v *dass.View, opt StackedInterferometryOptions) (*dasf.Array2D, Report, error) {
	if err := opt.Validate(); err != nil {
		return nil, Report{}, err
	}
	if opt.FailPolicy == dass.FailAbort {
		opt.FailPolicy = f.cfg.FailPolicy
	}
	rep, err := f.engine().RunRows(v, haee.RowsWorkload{
		Spec:   arrayudf.Spec{},
		RowLen: opt.StackedRowLen(),
		Prepare: func(c *mpi.Comm, view *dass.View) (any, int64, pfs.Trace) {
			m, tr, err := opt.PrepareStackedMasterFromView(view)
			if err != nil {
				panic(fmt.Errorf("core: stacked master: %w", err))
			}
			return m, m.Bytes(), tr
		},
		UDFInto: func(s *arrayudf.Stencil, shared any, dst []float64, scr *daslib.Scratch) {
			opt.StackedUDFIntoContext(v.Context(), shared.(*detect.StackedMaster))(s, dst, scr)
		},
	}, opt.OutPath)
	if err != nil {
		return nil, Report{}, err
	}
	if rep.OOM {
		return nil, reportOf(rep), ErrOutOfMemory
	}
	return rep.Output, reportOf(rep), nil
}

// STALTA computes the classical short-term/long-term-average trigger map —
// the single-channel baseline the local-similarity method outperforms on
// dense arrays.
func (f *Framework) STALTA(v *dass.View, p detect.STALTAParams, outPath string) (*dasf.Array2D, Report, error) {
	v, sp := traceOp(v, "core.stalta")
	out, rep, err := f.stalta(v, p, outPath)
	sp.EndErr(err)
	return out, rep, err
}

func (f *Framework) stalta(v *dass.View, p detect.STALTAParams, outPath string) (*dasf.Array2D, Report, error) {
	if err := p.Validate(); err != nil {
		return nil, Report{}, err
	}
	rep, err := f.engine().RunPoints(v, haee.PointsWorkload{Spec: p.Spec(), UDFScratch: p.UDFScratch()}, outPath)
	if err != nil {
		return nil, Report{}, err
	}
	if rep.OOM {
		return nil, reportOf(rep), ErrOutOfMemory
	}
	return rep.Output, reportOf(rep), nil
}

// Apply runs an arbitrary stencil UDF over the view — the raw
// B = Apply(A, f) interface of ArrayUDF, parallelized by the framework's
// engine. ghostChannels is the stencil's channel reach; timeStride > 1
// evaluates every timeStride-th sample.
func (f *Framework) Apply(v *dass.View, ghostChannels, timeStride int, udf func(s *arrayudf.Stencil) float64, outPath string) (*dasf.Array2D, Report, error) {
	v, sp := traceOp(v, "core.apply")
	out, rep, err := f.apply(v, ghostChannels, timeStride, udf, outPath)
	sp.EndErr(err)
	return out, rep, err
}

func (f *Framework) apply(v *dass.View, ghostChannels, timeStride int, udf func(s *arrayudf.Stencil) float64, outPath string) (*dasf.Array2D, Report, error) {
	if udf == nil {
		return nil, Report{}, fmt.Errorf("core: Apply needs a UDF")
	}
	rep, err := f.engine().RunPoints(v, haee.PointsWorkload{
		Spec: arrayudf.Spec{GhostChannels: ghostChannels, TimeStride: timeStride},
		UDF:  udf,
	}, outPath)
	if err != nil {
		return nil, Report{}, err
	}
	if rep.OOM {
		return nil, reportOf(rep), ErrOutOfMemory
	}
	return rep.Output, reportOf(rep), nil
}

// CleanMergeFiles removes the VCA files Merge wrote into the dataset
// directory.
func (d *Dataset) CleanMergeFiles() error {
	matches, err := filepath.Glob(filepath.Join(d.dir, ".merge_*.vca.dasf"))
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			return err
		}
	}
	return nil
}
