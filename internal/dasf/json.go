package dasf

// Machine-readable projections of file metadata — the paper's Figure 4
// structure as JSON. das_info -json prints these, and the dassd /status
// handler's file-detail view returns the same shape, so scripts written
// against one work against the other.

// MemberJSON is one VCA member in the JSON projection.
type MemberJSON struct {
	Name        string `json:"name"`
	NumChannels int    `json:"num_channels"`
	NumSamples  int    `json:"num_samples"`
	Timestamp   int64  `json:"timestamp"`
}

// InfoJSON is the JSON projection of a file's metadata. Global values keep
// their native types (string, int64, float64).
type InfoJSON struct {
	Path        string         `json:"path"`
	Kind        string         `json:"kind"`
	NumChannels int            `json:"num_channels"`
	NumSamples  int            `json:"num_samples"`
	DType       string         `json:"dtype"`
	Layout      string         `json:"layout,omitempty"`
	Global      map[string]any `json:"global"`
	Members     []MemberJSON   `json:"members,omitempty"`
	// PerChannel carries -channels output when requested (nil otherwise).
	PerChannel []map[string]any `json:"per_channel,omitempty"`
}

// Any returns the value as its native Go type for JSON encoding.
func (v Value) Any() any {
	switch v.Kind {
	case IntValue:
		return v.Int
	case FloatValue:
		return v.Float
	default:
		return v.Str
	}
}

// anyMeta flattens a metadata map to native JSON types.
func anyMeta(m Meta) map[string]any {
	out := make(map[string]any, len(m))
	for k, val := range m {
		out[k] = val.Any()
	}
	return out
}

// NewInfoJSON builds the JSON projection of info. Layout is emitted only
// for data files (a VCA has no array region).
func NewInfoJSON(info Info) InfoJSON {
	out := InfoJSON{
		Path:        info.Path,
		Kind:        info.Kind.String(),
		NumChannels: info.NumChannels,
		NumSamples:  info.NumSamples,
		DType:       info.DType.String(),
		Global:      anyMeta(info.Global),
	}
	if info.Kind == KindData {
		out.Layout = info.Layout.String()
	}
	for _, m := range info.Members {
		out.Members = append(out.Members, MemberJSON{
			Name:        m.Name,
			NumChannels: m.NumChannels,
			NumSamples:  m.NumSamples,
			Timestamp:   m.Timestamp,
		})
	}
	return out
}

// AttachPerChannel fills the PerChannel field from a reader's per-channel
// metadata block.
func (j *InfoJSON) AttachPerChannel(pcm []Meta) {
	for _, m := range pcm {
		j.PerChannel = append(j.PerChannel, anyMeta(m))
	}
}
