package dasf

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
)

// ParallelWriter writes a data file's array region concurrently: the
// header and metadata are laid down once (CreateData), after which any
// number of writers may store disjoint channel-row ranges with positioned
// writes — the in-process analogue of MPI-IO file views, used by the
// engine's write phase so every rank stores its own output block.
type ParallelWriter struct {
	f    *os.File
	info Info

	mu    sync.Mutex
	stats IOStats
}

// CreateData writes the header and global metadata of a new data file and
// sizes its array region. The array contents are unspecified until writers
// fill them; Close after all WriteRows calls.
func CreateData(path string, global Meta, channels, samples int, dtype DType) (*ParallelWriter, error) {
	if channels <= 0 || samples <= 0 {
		return nil, fmt.Errorf("dasf: CreateData needs a positive shape, got %d×%d", channels, samples)
	}
	if dtype != Float32 && dtype != Float64 {
		return nil, fmt.Errorf("dasf: CreateData: unknown dtype %d", dtype)
	}
	var buf []byte
	buf = append(buf, encodeHeader(KindData)...)
	gm := encodeMeta(global)
	buf = appendUint32(buf, uint32(len(gm)))
	buf = append(buf, gm...)
	buf = appendUint32(buf, uint32(channels))
	buf = appendUint32(buf, uint32(samples))
	buf = append(buf, byte(dtype))
	buf = append(buf, byte(Contiguous)) // positioned writes need raw rows
	buf = appendUint32(buf, 0)          // no per-channel metadata
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("dasf: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return nil, fmt.Errorf("dasf: %w", err)
	}
	dataOffset := int64(len(buf))
	total := dataOffset + int64(channels)*int64(samples)*int64(dtype.Size())
	if err := f.Truncate(total); err != nil {
		f.Close()
		return nil, fmt.Errorf("dasf: %w", err)
	}
	return &ParallelWriter{
		f: f,
		info: Info{
			Path: path, Kind: KindData, Global: global,
			NumChannels: channels, NumSamples: samples,
			DType: dtype, DataOffset: dataOffset,
		},
	}, nil
}

// OpenForWrite opens an existing data file (typically one laid down by
// CreateData on another rank) for positioned row writes.
func OpenForWrite(path string) (*ParallelWriter, error) {
	info, _, err := ReadInfo(path)
	if err != nil {
		return nil, err
	}
	if info.Kind != KindData {
		return nil, fmt.Errorf("dasf: %s: cannot write rows into a %s file", path, info.Kind)
	}
	if info.Layout != Contiguous {
		return nil, fmt.Errorf("dasf: %s: positioned writes need the contiguous layout, file is %s", path, info.Layout)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("dasf: %w", err)
	}
	w := &ParallelWriter{f: f, info: info}
	w.stats.Opens++
	return w, nil
}

// Info returns the file's shape and metadata.
func (w *ParallelWriter) Info() Info { return w.info }

// WriteRows stores rows.Channels full channel rows starting at channel
// chLo. Concurrent calls for disjoint channel ranges are safe.
func (w *ParallelWriter) WriteRows(chLo int, rows *Array2D) error {
	if rows == nil || rows.Channels == 0 {
		return nil
	}
	if rows.Samples != w.info.NumSamples {
		return fmt.Errorf("dasf: WriteRows needs full rows of %d samples, got %d",
			w.info.NumSamples, rows.Samples)
	}
	if chLo < 0 || chLo+rows.Channels > w.info.NumChannels {
		return fmt.Errorf("dasf: WriteRows rows [%d,%d) outside %d channels",
			chLo, chLo+rows.Channels, w.info.NumChannels)
	}
	esz := w.info.DType.Size()
	buf := make([]byte, len(rows.Data)*esz)
	switch w.info.DType {
	case Float32:
		for i, v := range rows.Data {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
		}
	case Float64:
		for i, v := range rows.Data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
	}
	off := w.info.DataOffset + int64(chLo)*int64(w.info.NumSamples)*int64(esz)
	if _, err := w.f.WriteAt(buf, off); err != nil {
		return fmt.Errorf("dasf: %w", err)
	}
	w.mu.Lock()
	w.stats.Writes++
	w.stats.BytesWritten += int64(len(buf))
	w.mu.Unlock()
	mWrites.Inc()
	mWriteBytes.Add(int64(len(buf)))
	return nil
}

// Stats returns the writer's operation counts.
func (w *ParallelWriter) Stats() IOStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Close flushes and closes the file.
func (w *ParallelWriter) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("dasf: %w", err)
	}
	return w.f.Close()
}
