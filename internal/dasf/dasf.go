// Package dasf implements the DASF container format, this repository's
// stand-in for the HDF5 files DASSA uses. A DASF data file holds exactly
// what the paper's Figure 4 describes: a global key-value metadata list, an
// optional per-channel key-value metadata list, and one 2D array indexed by
// [channel, time]. A DASF virtual file (the VCA kind) holds only global
// metadata plus the names and extents of member data files, concatenated
// logically along the time axis.
//
// The format supports the two operations DASSA needs from HDF5: cheap
// metadata-only reads (VCA construction and das_search touch no array
// data), and hyperslab reads of channel/time rectangles.
package dasf

import (
	"fmt"
	"sort"
)

// Magic and version identify DASF files.
const (
	Magic   = "DASF"
	Version = 1
)

// Kind distinguishes real data files from virtual (VCA) files.
type Kind uint16

const (
	// KindData is a self-contained file with a 2D array.
	KindData Kind = 0
	// KindVCA is a virtual file: metadata plus member references only.
	KindVCA Kind = 1
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindVCA:
		return "vca"
	default:
		return fmt.Sprintf("Kind(%d)", uint16(k))
	}
}

// DType is the on-disk element type of the array.
type DType uint8

const (
	// Float32 stores samples as 4-byte IEEE floats (DAS instruments record
	// at 32-bit precision; this is the default).
	Float32 DType = 0
	// Float64 stores samples at full double precision.
	Float64 DType = 1
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case Float32:
		return 4
	case Float64:
		return 8
	default:
		panic(fmt.Sprintf("dasf: unknown dtype %d", uint8(d)))
	}
}

func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("DType(%d)", uint8(d))
	}
}

// Layout selects how a data file's array region is stored.
type Layout uint8

const (
	// Contiguous stores rows back to back, uncompressed — supports
	// single-call whole-block reads and positioned parallel writes.
	Contiguous Layout = 0
	// ChunkedDeflate stores one deflate-compressed chunk per channel row
	// with a chunk index — HDF5-style chunking. Smaller on disk (DAS noise
	// compresses 2-4×); reads cost one request per channel.
	ChunkedDeflate Layout = 1
)

func (l Layout) String() string {
	switch l {
	case Contiguous:
		return "contiguous"
	case ChunkedDeflate:
		return "chunked-deflate"
	default:
		return fmt.Sprintf("Layout(%d)", uint8(l))
	}
}

// ValueKind tags a metadata value.
type ValueKind uint8

const (
	// StringValue is a UTF-8 string.
	StringValue ValueKind = 0
	// IntValue is a signed 64-bit integer.
	IntValue ValueKind = 1
	// FloatValue is a float64.
	FloatValue ValueKind = 2
)

// Value is one metadata value: a string, an int64, or a float64.
type Value struct {
	Kind  ValueKind
	Str   string
	Int   int64
	Float float64
}

// String formats the value for display and regex matching.
func (v Value) String() string {
	switch v.Kind {
	case StringValue:
		return v.Str
	case IntValue:
		return fmt.Sprintf("%d", v.Int)
	case FloatValue:
		return fmt.Sprintf("%g", v.Float)
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.Kind))
	}
}

// S makes a string Value.
func S(s string) Value { return Value{Kind: StringValue, Str: s} }

// I makes an integer Value.
func I(i int64) Value { return Value{Kind: IntValue, Int: i} }

// F makes a float Value.
func F(f float64) Value { return Value{Kind: FloatValue, Float: f} }

// Meta is a key-value metadata list (one level of the paper's two-level
// structure). It serializes with sorted keys, so files are deterministic.
type Meta map[string]Value

// Clone returns a copy of the metadata map.
func (m Meta) Clone() Meta {
	out := make(Meta, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sortedKeys returns the keys in lexical order for deterministic encoding.
func (m Meta) sortedKeys() []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Well-known global metadata keys, matching the paper's Figure 4.
const (
	KeySamplingFrequency = "SamplingFrequency(HZ)"
	KeySpatialResolution = "SpatialResolution(m)"
	KeyTimeStamp         = "TimeStamp(yymmddhhmmss)"
	KeyNumberOfChannels  = "NumberOfObjects"
)

// Member references one data file inside a VCA, with the extents needed to
// route a hyperslab request without opening the member.
type Member struct {
	// Name is the member file's path, relative to the VCA file's directory
	// unless absolute.
	Name string
	// NumChannels and NumSamples are the member's array extents.
	NumChannels int
	NumSamples  int
	// Timestamp is the member's acquisition timestamp (yymmddhhmmss).
	Timestamp int64
}

// Info describes a DASF file without its array data. For KindData files,
// DataOffset locates the array; for KindVCA files, Members lists the
// constituent data files in time order and NumSamples is their total.
type Info struct {
	Path        string
	Kind        Kind
	Global      Meta
	NumChannels int
	NumSamples  int
	DType       DType
	// Layout is the array storage scheme (KindData only).
	Layout Layout
	// DataOffset is the byte offset of the array region: the raw rows for
	// Contiguous files, the chunk index for chunked ones (KindData only).
	DataOffset int64
	// PerChannelOffset locates the per-channel metadata block, 0 if absent.
	PerChannelOffset int64
	// Members lists the VCA's member files (KindVCA only).
	Members []Member
}

// Array2D is an in-memory [channels × samples] array stored row-major by
// channel: sample (c, t) lives at Data[c*Samples+t]. Analysis code works in
// float64 regardless of the on-disk dtype.
type Array2D struct {
	Channels int
	Samples  int
	Data     []float64
}

// NewArray2D allocates a zeroed channels×samples array.
func NewArray2D(channels, samples int) *Array2D {
	return &Array2D{Channels: channels, Samples: samples, Data: make([]float64, channels*samples)}
}

// At returns the sample at channel c, time index t.
func (a *Array2D) At(c, t int) float64 { return a.Data[c*a.Samples+t] }

// Set stores v at channel c, time index t.
func (a *Array2D) Set(c, t int, v float64) { a.Data[c*a.Samples+t] = v }

// Row returns channel c's time series as a subslice (no copy).
func (a *Array2D) Row(c int) []float64 { return a.Data[c*a.Samples : (c+1)*a.Samples] }

// Clone deep-copies the array.
func (a *Array2D) Clone() *Array2D {
	cp := &Array2D{Channels: a.Channels, Samples: a.Samples, Data: make([]float64, len(a.Data))}
	copy(cp.Data, a.Data)
	return cp
}
