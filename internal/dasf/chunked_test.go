package dasf

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// smoothArray produces a compressible record (DAS noise after filtering is
// smooth, so deflate bites).
func smoothArray(channels, samples int) *Array2D {
	a := NewArray2D(channels, samples)
	for c := 0; c < channels; c++ {
		for t := 0; t < samples; t++ {
			a.Set(c, t, math.Round(100*math.Sin(float64(t)/40+float64(c)))/100)
		}
	}
	return a
}

func TestChunkedRoundTrip(t *testing.T) {
	for _, dtype := range []DType{Float32, Float64} {
		dir := t.TempDir()
		path := filepath.Join(dir, "c.dasf")
		want := smoothArray(12, 300)
		if err := WriteDataCompressed(path, testMeta(), nil, want, dtype); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if r.Info().Layout != ChunkedDeflate {
			t.Fatalf("layout = %v", r.Info().Layout)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			expect := want.Data[i]
			if dtype == Float32 {
				expect = float64(float32(expect))
			}
			if got.Data[i] != expect {
				t.Fatalf("dtype=%v: data[%d] = %v, want %v", dtype, i, got.Data[i], expect)
			}
		}
		r.Close()
	}
}

func TestChunkedSlabMatchesContiguous(t *testing.T) {
	dir := t.TempDir()
	src := smoothArray(10, 200)
	cPath := filepath.Join(dir, "cont.dasf")
	zPath := filepath.Join(dir, "chunk.dasf")
	if err := WriteData(cPath, testMeta(), nil, src, Float64); err != nil {
		t.Fatal(err)
	}
	if err := WriteDataCompressed(zPath, testMeta(), nil, src, Float64); err != nil {
		t.Fatal(err)
	}
	rc, err := Open(cPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	rz, err := Open(zPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Close()
	for _, slab := range [][4]int{{0, 10, 0, 200}, {2, 7, 50, 130}, {9, 10, 199, 200}} {
		a, err := rc.ReadSlab(slab[0], slab[1], slab[2], slab[3])
		if err != nil {
			t.Fatal(err)
		}
		b, err := rz.ReadSlab(slab[0], slab[1], slab[2], slab[3])
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("slab %v differs at %d", slab, i)
			}
		}
	}
}

func TestChunkedCompresses(t *testing.T) {
	dir := t.TempDir()
	src := smoothArray(16, 2000)
	cPath := filepath.Join(dir, "cont.dasf")
	zPath := filepath.Join(dir, "chunk.dasf")
	if err := WriteData(cPath, testMeta(), nil, src, Float32); err != nil {
		t.Fatal(err)
	}
	if err := WriteDataCompressed(zPath, testMeta(), nil, src, Float32); err != nil {
		t.Fatal(err)
	}
	cs, _ := os.Stat(cPath)
	zs, _ := os.Stat(zPath)
	if zs.Size() >= cs.Size() {
		t.Errorf("chunked file (%d B) not smaller than contiguous (%d B)", zs.Size(), cs.Size())
	}
}

func TestChunkedCorruptIndexRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.dasf")
	if err := WriteDataCompressed(path, testMeta(), nil, smoothArray(4, 50), Float64); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the index: point chunk 1 past EOF.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int(r.Info().DataOffset) + chunkRefSize
	r.Close()
	for i := 0; i < 8; i++ {
		raw[off+i] = 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err) // metadata is fine
	}
	defer r2.Close()
	if _, err := r2.ReadSlab(0, 4, 0, 50); err == nil {
		t.Error("corrupt chunk index should fail the read")
	}
}

func TestChunkedTruncatedChunkRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.dasf")
	if err := WriteDataCompressed(path, testMeta(), nil, smoothArray(4, 50), Float64); err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-10); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		// Acceptable: the index bound check may already fire.
		return
	}
	defer r.Close()
	if _, err := r.ReadAll(); err == nil {
		t.Error("truncated chunk should fail")
	}
}

func TestParallelWriterRejectsChunked(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.dasf")
	if err := WriteDataCompressed(path, testMeta(), nil, smoothArray(4, 50), Float64); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenForWrite(path); err == nil {
		t.Error("positioned writes into a chunked file must be rejected")
	}
}
