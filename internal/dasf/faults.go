package dasf

import (
	"errors"
	"fmt"
	"sync/atomic"

	"dassa/internal/faults"
)

// ErrCorrupt classifies every DASF format violation — bad magic, truncated
// blocks, out-of-bounds chunk indexes, impossible shapes. Wrapping the
// sentinel lets the retry layer (and callers) separate permanent structural
// damage from transient I/O errors with errors.Is.
var ErrCorrupt = errors.New("dasf: corrupt file")

// corruptf builds an ErrCorrupt-classified error with a formatted message.
// Every classification is also counted, so corruption is visible on
// /metrics without scraping logs.
func corruptf(format string, args ...any) error {
	mCorrupt.Inc()
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// The injector and retry policy are process-wide hooks consulted by Open:
// every storage consumer (views, parallel readers, catalogs, engines) goes
// through dasf, so one hook covers the whole stack without threading an
// extra parameter through every signature. Readers capture both at Open,
// so a reader's behaviour is stable even if the hooks change mid-run.
var (
	injectorHook atomic.Pointer[faults.Injector]
	retryHook    atomic.Pointer[faults.RetryPolicy]
)

// SetInjector installs (or with nil, removes) the process-wide fault
// injector beneath Open and all hyperslab reads.
func SetInjector(in *faults.Injector) { injectorHook.Store(in) }

// Injector returns the installed fault injector, or nil.
func Injector() *faults.Injector { return injectorHook.Load() }

// SetRetryPolicy installs the process-wide retry policy applied to every
// Open and read operation. The zero policy (the default) retries nothing.
func SetRetryPolicy(p faults.RetryPolicy) { retryHook.Store(&p) }

// RetryPolicy returns the installed retry policy (zero value when unset).
func RetryPolicy() faults.RetryPolicy {
	if p := retryHook.Load(); p != nil {
		return *p
	}
	return faults.RetryPolicy{}
}
