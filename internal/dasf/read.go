package dasf

import (
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dassa/internal/faults"
)

// IOStats counts the physical operations a Reader or ParallelWriter has
// issued. The DASSA experiments compare I/O strategies by exactly these
// counts.
type IOStats struct {
	Opens        int64
	Reads        int64 // distinct read calls (≈ seeks on a disk file system)
	BytesRead    int64
	Writes       int64 // distinct positioned write calls
	BytesWritten int64

	Retries        int64 // operations re-issued after transient failures
	FaultsInjected int64 // injected failures hit (transient + permanent)
	SlowReads      int64 // reads delayed by injected straggler latency
}

// Add accumulates other into s.
func (s *IOStats) Add(other IOStats) {
	s.Opens += other.Opens
	s.Reads += other.Reads
	s.BytesRead += other.BytesRead
	s.Writes += other.Writes
	s.BytesWritten += other.BytesWritten
	s.Retries += other.Retries
	s.FaultsInjected += other.FaultsInjected
	s.SlowReads += other.SlowReads
}

// Reader reads one DASF file: metadata eagerly, array data on demand via
// hyperslab requests. It is safe for concurrent ReadSlab calls on
// contiguous files (ReadAt underneath); chunked readers serialize their
// index load internally.
type Reader struct {
	f     *os.File
	path  string
	ctx   context.Context    // captured at Open; bounds every physical read
	inj   *faults.Injector   // captured at Open; nil when no injection
	retry faults.RetryPolicy // captured at Open
	info  Info
	stats IOStats

	chunkMu sync.Mutex
	chunks  []chunkRef // lazily loaded index for chunked files
}

// chunkRef locates one channel's compressed chunk.
type chunkRef struct {
	off  int64
	clen int
}

// readAt is the single physical-read choke point: the installed fault
// injector sees every read here, so injected stragglers, transient EIOs,
// and permanent corruption hit exactly where a real file system would.
func (r *Reader) readAt(buf []byte, off int64) (int, error) {
	if err := r.ctx.Err(); err != nil {
		return 0, fmt.Errorf("dasf: %s: %w", r.path, err)
	}
	if r.inj != nil {
		if d := r.inj.ReadDelay(r.path); d > 0 {
			r.stats.SlowReads++
			// A straggler read must stay cancellable: a wedged storage
			// target (which this delay models) would otherwise hold the
			// request past its deadline.
			t := time.NewTimer(d)
			select {
			case <-r.ctx.Done():
				t.Stop()
				return 0, fmt.Errorf("dasf: %s: %w", r.path, r.ctx.Err())
			case <-t.C:
			}
		}
		if err := r.inj.ReadFault(r.path); err != nil {
			r.stats.FaultsInjected++
			mFaults.Inc()
			return 0, fmt.Errorf("dasf: %s: %w", r.path, err)
		}
	}
	n, err := r.f.ReadAt(buf, off)
	mReads.Inc()
	mReadBytes.Add(int64(n))
	if err != nil && err != io.EOF {
		mFaults.Inc()
	}
	return n, err
}

// Open opens path and parses its metadata, retrying transient failures
// under the installed retry policy. The array data is not touched; this is
// the cheap "metadata-only" access VCA construction relies on.
func Open(path string) (*Reader, error) {
	return OpenContext(context.Background(), path)
}

// OpenContext is Open bound to a context. The context is captured by the
// returned Reader and bounds every subsequent physical read: injected
// straggler delays become cancellable, retry backoff unwinds early, and a
// read issued after cancellation fails with the context's error instead of
// touching the disk. A nil ctx means context.Background().
func OpenContext(ctx context.Context, path string) (*Reader, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	inj := Injector()
	pol := RetryPolicy()
	var r *Reader
	var cum IOStats // stats of failed attempts, so retried work is counted
	attempts, err := pol.DoContext(ctx, func() error {
		if inj != nil {
			if ferr := inj.OpenFault(path); ferr != nil {
				cum.FaultsInjected++
				return fmt.Errorf("dasf: %s: %w", path, ferr)
			}
		}
		f, ferr := os.Open(path)
		if ferr != nil {
			return fmt.Errorf("dasf: %w", ferr)
		}
		rr := &Reader{f: f, path: path, ctx: ctx, inj: inj, retry: pol}
		rr.stats.Opens++
		if perr := rr.parseInfo(path); perr != nil {
			cum.Add(rr.stats)
			f.Close()
			return perr
		}
		r = rr
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.stats.Add(cum)
	r.stats.Retries += int64(attempts - 1)
	mOpens.Inc()
	mRetries.Add(int64(attempts - 1))
	return r, nil
}

// ReadInfo parses a file's metadata and closes it again. Convenience for
// search and VCA construction, which never need the data.
func ReadInfo(path string) (Info, IOStats, error) {
	return ReadInfoContext(context.Background(), path)
}

// ReadInfoContext is ReadInfo bound to a context (see OpenContext).
func ReadInfoContext(ctx context.Context, path string) (Info, IOStats, error) {
	r, err := OpenContext(ctx, path)
	if err != nil {
		return Info{}, IOStats{}, err
	}
	defer r.Close()
	return r.Info(), r.Stats(), nil
}

func (r *Reader) parseInfo(path string) error {
	// Metadata lives at the front of the file; one bounded read gets it.
	// 8 KiB covers any realistic global metadata block; the parser re-reads
	// exactly what it needs if a block is longer.
	buf := make([]byte, 8*1024)
	n, err := r.readAt(buf, 0)
	if err != nil && err != io.EOF {
		return fmt.Errorf("dasf: %s: %w", path, err)
	}
	buf = buf[:n]
	r.stats.Reads++
	r.stats.BytesRead += int64(n)

	need := func(k int, what string) error {
		if k > len(buf) {
			return corruptf("dasf: %s: truncated %s", path, what)
		}
		return nil
	}
	if err := need(headerSize, "header"); err != nil {
		return err
	}
	if string(buf[:4]) != Magic {
		return corruptf("dasf: %s: bad magic %q", path, buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != Version {
		return corruptf("dasf: %s: unsupported version %d", path, v)
	}
	kind := Kind(binary.LittleEndian.Uint16(buf[6:]))
	pos := headerSize

	if err := need(pos+4, "global metadata length"); err != nil {
		return err
	}
	gmLen := int(binary.LittleEndian.Uint32(buf[pos:]))
	pos += 4
	// A corrupt length field must not drive allocation: global metadata
	// beyond this bound is rejected, not fetched.
	const maxMetaBytes = 16 << 20
	if gmLen > maxMetaBytes {
		return corruptf("dasf: %s: global metadata declares %d bytes (max %d)", path, gmLen, maxMetaBytes)
	}
	if pos+gmLen > len(buf) {
		// Metadata larger than the probe read: fetch exactly what's needed.
		bigger := make([]byte, pos+gmLen+4096)
		n, err = r.readAt(bigger, 0)
		if err != nil && err != io.EOF {
			return fmt.Errorf("dasf: %s: %w", path, err)
		}
		buf = bigger[:n]
		r.stats.Reads++
		r.stats.BytesRead += int64(n)
		if pos+gmLen > len(buf) {
			return corruptf("dasf: %s: truncated global metadata", path)
		}
	}
	global, used, err := decodeMeta(buf[pos : pos+gmLen])
	if err != nil {
		return corruptf("dasf: %s: %v", path, err)
	}
	if used != gmLen {
		return corruptf("dasf: %s: global metadata length mismatch (%d vs %d)", path, used, gmLen)
	}
	pos += gmLen

	if err := need(pos+9, "shape"); err != nil {
		return err
	}
	nch := int(binary.LittleEndian.Uint32(buf[pos:]))
	nt := int(binary.LittleEndian.Uint32(buf[pos+4:]))
	dtype := DType(buf[pos+8])
	pos += 9
	if dtype != Float32 && dtype != Float64 {
		return corruptf("dasf: %s: unknown dtype %d", path, dtype)
	}
	if nch <= 0 || nt <= 0 {
		return corruptf("dasf: %s: invalid shape %d×%d", path, nch, nt)
	}
	// A corrupt shape must not drive allocation: nch*nt can overflow int
	// (both fields are uint32 on disk) and NewArray2D allocates the
	// product. 2^31 elements (16 GiB of float64) is far beyond any real
	// DAS record; division avoids the overflow the check exists to stop.
	const maxArrayElements = 1 << 31
	if int64(nt) > maxArrayElements/int64(nch) {
		return corruptf("dasf: %s: declared array %d×%d exceeds element cap", path, nch, nt)
	}

	r.info = Info{Path: path, Kind: kind, Global: global, NumChannels: nch, NumSamples: nt, DType: dtype}

	switch kind {
	case KindData:
		if err := need(pos+1, "layout"); err != nil {
			return err
		}
		layout := Layout(buf[pos])
		pos++
		if layout != Contiguous && layout != ChunkedDeflate {
			return corruptf("dasf: %s: unknown layout %d", path, layout)
		}
		r.info.Layout = layout
		if err := need(pos+4, "per-channel metadata length"); err != nil {
			return err
		}
		pcmLen := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		if pcmLen > 0 {
			r.info.PerChannelOffset = int64(pos)
		}
		r.info.DataOffset = int64(pos + pcmLen)
		// Validate the file is long enough for the declared array region.
		st, err := r.f.Stat()
		if err != nil {
			return fmt.Errorf("dasf: %s: %w", path, err)
		}
		var want int64
		if layout == Contiguous {
			want = r.info.DataOffset + int64(nch)*int64(nt)*int64(dtype.Size())
		} else {
			want = r.info.DataOffset + int64(nch)*chunkRefSize // index at minimum
		}
		if st.Size() < want {
			return corruptf("dasf: %s: file is %d bytes, array needs %d", path, st.Size(), want)
		}
		// For chunked files the row length is only checked when a chunk
		// inflates, after the row buffer is allocated — so bound it first:
		// deflate cannot expand beyond ~1032×, so a row longer than the
		// whole file could inflate to is unsatisfiable.
		const maxDeflateRatio = 1032
		if layout == ChunkedDeflate && int64(nt)*int64(dtype.Size()) > st.Size()*maxDeflateRatio {
			return corruptf("dasf: %s: chunked row of %d samples cannot inflate from a %d-byte file",
				path, nt, st.Size())
		}
	case KindVCA:
		if err := need(pos+4, "member count"); err != nil {
			return err
		}
		nm := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		if nm == 0 {
			return corruptf("dasf: %s: VCA with zero members", path)
		}
		// Each member record needs ≥ 18 bytes; a count beyond what the
		// buffer could hold is corruption, and allocation is bounded by the
		// buffer size either way.
		if nm > (len(buf)-pos)/18+1 {
			return corruptf("dasf: %s: VCA declares %d members, buffer holds at most %d",
				path, nm, (len(buf)-pos)/18+1)
		}
		dir := filepath.Dir(path)
		members := make([]Member, nm)
		for i := range members {
			if err := need(pos+2, "member name length"); err != nil {
				return err
			}
			nameLen := int(binary.LittleEndian.Uint16(buf[pos:]))
			pos += 2
			if err := need(pos+nameLen+16, "member record"); err != nil {
				return err
			}
			name := string(buf[pos : pos+nameLen])
			pos += nameLen
			if !filepath.IsAbs(name) {
				name = filepath.Join(dir, name)
			}
			members[i] = Member{
				Name:        name,
				NumChannels: int(binary.LittleEndian.Uint32(buf[pos:])),
				NumSamples:  int(binary.LittleEndian.Uint32(buf[pos+4:])),
				Timestamp:   int64(binary.LittleEndian.Uint64(buf[pos+8:])),
			}
			pos += 16
		}
		// Mirror WriteVCA's invariants: every member shares the VCA's channel
		// count, extents are positive, and they sum to the declared total.
		// Without this, corrupt member extents turn into absurd allocations
		// downstream before any member read can catch the mismatch.
		total := int64(0)
		for i, m := range members {
			if m.NumChannels != r.info.NumChannels || m.NumSamples <= 0 {
				return corruptf("dasf: %s: member %d has impossible shape %d×%d in a %d-channel VCA",
					path, i, m.NumChannels, m.NumSamples, r.info.NumChannels)
			}
			total += int64(m.NumSamples)
		}
		if total != int64(r.info.NumSamples) {
			return corruptf("dasf: %s: member extents sum to %d, VCA declares %d",
				path, total, r.info.NumSamples)
		}
		r.info.Members = members
	default:
		return corruptf("dasf: %s: unknown kind %d", path, kind)
	}
	return nil
}

// Info returns the file's parsed metadata.
func (r *Reader) Info() Info { return r.info }

// Stats returns the I/O operation counts issued so far.
func (r *Reader) Stats() IOStats { return r.stats }

// Close releases the file handle.
func (r *Reader) Close() error { return r.f.Close() }

// PerChannelMeta reads and decodes the per-channel metadata block. Returns
// nil if the file has none.
func (r *Reader) PerChannelMeta() ([]Meta, error) {
	if r.info.Kind != KindData || r.info.PerChannelOffset == 0 {
		return nil, nil
	}
	length := r.info.DataOffset - r.info.PerChannelOffset
	buf := make([]byte, length)
	attempts, err := r.retry.DoContext(r.ctx, func() error {
		if _, rerr := r.readAt(buf, r.info.PerChannelOffset); rerr != nil {
			return fmt.Errorf("dasf: %s: %w", r.info.Path, rerr)
		}
		r.stats.Reads++
		r.stats.BytesRead += length
		return nil
	})
	r.stats.Retries += int64(attempts - 1)
	mRetries.Add(int64(attempts - 1))
	if err != nil {
		return nil, err
	}
	out := make([]Meta, 0, r.info.NumChannels)
	pos := 0
	for c := 0; c < r.info.NumChannels; c++ {
		m, used, err := decodeMeta(buf[pos:])
		if err != nil {
			return nil, corruptf("dasf: %s: channel %d metadata: %v", r.info.Path, c, err)
		}
		pos += used
		out = append(out, m)
	}
	return out, nil
}

// ReadSlab reads the hyperslab [chLo, chHi) × [tLo, tHi) from a data file.
// A request spanning the full time range is satisfied with a single
// contiguous read (the access pattern the communication-avoiding method
// exploits); otherwise one read per channel row is issued.
func (r *Reader) ReadSlab(chLo, chHi, tLo, tHi int) (*Array2D, error) {
	if r.info.Kind != KindData {
		return nil, fmt.Errorf("dasf: %s: ReadSlab on a %s file (resolve VCA members first)",
			r.info.Path, r.info.Kind)
	}
	nch, nt := r.info.NumChannels, r.info.NumSamples
	if chLo < 0 || chHi > nch || chLo >= chHi || tLo < 0 || tHi > nt || tLo >= tHi {
		return nil, fmt.Errorf("dasf: %s: slab [%d:%d)×[%d:%d) out of bounds %d×%d",
			r.info.Path, chLo, chHi, tLo, tHi, nch, nt)
	}
	out := NewArray2D(chHi-chLo, tHi-tLo)
	attempts, err := r.retry.DoContext(r.ctx, func() error {
		return r.readSlabOnce(out, chLo, chHi, tLo, tHi)
	})
	r.stats.Retries += int64(attempts - 1)
	mRetries.Add(int64(attempts - 1))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// readSlabOnce is one attempt at filling out; ReadSlab retries it under the
// reader's policy when the failure is transient.
func (r *Reader) readSlabOnce(out *Array2D, chLo, chHi, tLo, tHi int) error {
	if r.info.Layout == ChunkedDeflate {
		return r.readSlabChunked(out, chLo, chHi, tLo, tHi)
	}
	nt := r.info.NumSamples
	esz := r.info.DType.Size()
	if tLo == 0 && tHi == nt {
		// Contiguous: all requested channels in one read call.
		nbytes := int64(chHi-chLo) * int64(nt) * int64(esz)
		buf := make([]byte, nbytes)
		off := r.info.DataOffset + int64(chLo)*int64(nt)*int64(esz)
		if _, err := r.readAt(buf, off); err != nil {
			return fmt.Errorf("dasf: %s: %w", r.info.Path, err)
		}
		r.stats.Reads++
		r.stats.BytesRead += nbytes
		decodeSamples(out.Data, buf, r.info.DType)
		return nil
	}
	rowBytes := (tHi - tLo) * esz
	buf := make([]byte, rowBytes)
	for c := chLo; c < chHi; c++ {
		off := r.info.DataOffset + (int64(c)*int64(nt)+int64(tLo))*int64(esz)
		if _, err := r.readAt(buf, off); err != nil {
			return fmt.Errorf("dasf: %s: channel %d: %w", r.info.Path, c, err)
		}
		r.stats.Reads++
		r.stats.BytesRead += int64(rowBytes)
		decodeSamples(out.Row(c-chLo), buf, r.info.DType)
	}
	return nil
}

// ReadAll reads the entire array with one contiguous read.
func (r *Reader) ReadAll() (*Array2D, error) {
	return r.ReadSlab(0, r.info.NumChannels, 0, r.info.NumSamples)
}

// loadChunkIndex reads and caches the chunk index of a chunked file. The
// read happens outside chunkMu (lockio: no I/O under a mutex): racing
// loaders read identical bytes and the first store wins, so the only cost
// of the race is one duplicate index read.
func (r *Reader) loadChunkIndex() ([]chunkRef, error) {
	r.chunkMu.Lock()
	cached := r.chunks
	r.chunkMu.Unlock()
	if cached != nil {
		return cached, nil
	}
	nch := r.info.NumChannels
	buf := make([]byte, nch*chunkRefSize)
	if _, err := r.readAt(buf, r.info.DataOffset); err != nil {
		return nil, fmt.Errorf("dasf: %s: chunk index: %w", r.info.Path, err)
	}
	r.stats.Reads++
	r.stats.BytesRead += int64(len(buf))
	st, err := r.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("dasf: %s: %w", r.info.Path, err)
	}
	chunks := make([]chunkRef, nch)
	for c := range chunks {
		off := int64(binary.LittleEndian.Uint64(buf[c*chunkRefSize:]))
		clen := int(binary.LittleEndian.Uint32(buf[c*chunkRefSize+8:]))
		if off < r.info.DataOffset || clen < 0 || off+int64(clen) > st.Size() {
			return nil, corruptf("dasf: %s: chunk %d index out of bounds", r.info.Path, c)
		}
		chunks[c] = chunkRef{off: off, clen: clen}
	}
	r.chunkMu.Lock()
	if r.chunks == nil {
		r.chunks = chunks
	} else {
		chunks = r.chunks
	}
	r.chunkMu.Unlock()
	return chunks, nil
}

// readSlabChunked fills out from a chunked file: one chunk read +
// decompression per requested channel.
func (r *Reader) readSlabChunked(out *Array2D, chLo, chHi, tLo, tHi int) error {
	chunks, err := r.loadChunkIndex()
	if err != nil {
		return err
	}
	esz := r.info.DType.Size()
	rowBytes := r.info.NumSamples * esz
	raw := make([]byte, rowBytes)
	for c := chLo; c < chHi; c++ {
		ref := chunks[c]
		comp := make([]byte, ref.clen)
		if _, err := r.readAt(comp, ref.off); err != nil {
			return fmt.Errorf("dasf: %s: chunk %d: %w", r.info.Path, c, err)
		}
		r.stats.Reads++
		r.stats.BytesRead += int64(ref.clen)
		fr := flate.NewReader(bytes.NewReader(comp))
		if _, err := io.ReadFull(fr, raw); err != nil {
			fr.Close()
			return corruptf("dasf: %s: chunk %d decompress: %v", r.info.Path, c, err)
		}
		fr.Close()
		decodeSamples(out.Row(c-chLo), raw[tLo*esz:tHi*esz], r.info.DType)
	}
	return nil
}

// decodeSamples converts little-endian on-disk samples into float64s.
func decodeSamples(dst []float64, src []byte, dtype DType) {
	switch dtype {
	case Float32:
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:])))
		}
	case Float64:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
		}
	}
}
