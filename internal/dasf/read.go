package dasf

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// IOStats counts the physical operations a Reader or ParallelWriter has
// issued. The DASSA experiments compare I/O strategies by exactly these
// counts.
type IOStats struct {
	Opens        int64
	Reads        int64 // distinct read calls (≈ seeks on a disk file system)
	BytesRead    int64
	Writes       int64 // distinct positioned write calls
	BytesWritten int64
}

// Add accumulates other into s.
func (s *IOStats) Add(other IOStats) {
	s.Opens += other.Opens
	s.Reads += other.Reads
	s.BytesRead += other.BytesRead
	s.Writes += other.Writes
	s.BytesWritten += other.BytesWritten
}

// Reader reads one DASF file: metadata eagerly, array data on demand via
// hyperslab requests. It is safe for concurrent ReadSlab calls on
// contiguous files (ReadAt underneath); chunked readers serialize their
// index load internally.
type Reader struct {
	f     *os.File
	info  Info
	stats IOStats

	chunkMu sync.Mutex
	chunks  []chunkRef // lazily loaded index for chunked files
}

// chunkRef locates one channel's compressed chunk.
type chunkRef struct {
	off  int64
	clen int
}

// Open opens path and parses its metadata. The array data is not touched;
// this is the cheap "metadata-only" access VCA construction relies on.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dasf: %w", err)
	}
	r := &Reader{f: f}
	r.stats.Opens++
	if err := r.parseInfo(path); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// ReadInfo parses a file's metadata and closes it again. Convenience for
// search and VCA construction, which never need the data.
func ReadInfo(path string) (Info, IOStats, error) {
	r, err := Open(path)
	if err != nil {
		return Info{}, IOStats{}, err
	}
	defer r.Close()
	return r.Info(), r.Stats(), nil
}

func (r *Reader) parseInfo(path string) error {
	// Metadata lives at the front of the file; one bounded read gets it.
	// 8 KiB covers any realistic global metadata block; the parser re-reads
	// exactly what it needs if a block is longer.
	buf := make([]byte, 8*1024)
	n, err := r.f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		return fmt.Errorf("dasf: %s: %w", path, err)
	}
	buf = buf[:n]
	r.stats.Reads++
	r.stats.BytesRead += int64(n)

	need := func(k int, what string) error {
		if k > len(buf) {
			return fmt.Errorf("dasf: %s: truncated %s", path, what)
		}
		return nil
	}
	if err := need(headerSize, "header"); err != nil {
		return err
	}
	if string(buf[:4]) != Magic {
		return fmt.Errorf("dasf: %s: bad magic %q", path, buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != Version {
		return fmt.Errorf("dasf: %s: unsupported version %d", path, v)
	}
	kind := Kind(binary.LittleEndian.Uint16(buf[6:]))
	pos := headerSize

	if err := need(pos+4, "global metadata length"); err != nil {
		return err
	}
	gmLen := int(binary.LittleEndian.Uint32(buf[pos:]))
	pos += 4
	// A corrupt length field must not drive allocation: global metadata
	// beyond this bound is rejected, not fetched.
	const maxMetaBytes = 16 << 20
	if gmLen > maxMetaBytes {
		return fmt.Errorf("dasf: %s: global metadata declares %d bytes (max %d)", path, gmLen, maxMetaBytes)
	}
	if pos+gmLen > len(buf) {
		// Metadata larger than the probe read: fetch exactly what's needed.
		bigger := make([]byte, pos+gmLen+4096)
		n, err = r.f.ReadAt(bigger, 0)
		if err != nil && err != io.EOF {
			return fmt.Errorf("dasf: %s: %w", path, err)
		}
		buf = bigger[:n]
		r.stats.Reads++
		r.stats.BytesRead += int64(n)
		if pos+gmLen > len(buf) {
			return fmt.Errorf("dasf: %s: truncated global metadata", path)
		}
	}
	global, used, err := decodeMeta(buf[pos : pos+gmLen])
	if err != nil {
		return fmt.Errorf("dasf: %s: %w", path, err)
	}
	if used != gmLen {
		return fmt.Errorf("dasf: %s: global metadata length mismatch (%d vs %d)", path, used, gmLen)
	}
	pos += gmLen

	if err := need(pos+9, "shape"); err != nil {
		return err
	}
	nch := int(binary.LittleEndian.Uint32(buf[pos:]))
	nt := int(binary.LittleEndian.Uint32(buf[pos+4:]))
	dtype := DType(buf[pos+8])
	pos += 9
	if dtype != Float32 && dtype != Float64 {
		return fmt.Errorf("dasf: %s: unknown dtype %d", path, dtype)
	}
	if nch <= 0 || nt <= 0 {
		return fmt.Errorf("dasf: %s: invalid shape %d×%d", path, nch, nt)
	}

	r.info = Info{Path: path, Kind: kind, Global: global, NumChannels: nch, NumSamples: nt, DType: dtype}

	switch kind {
	case KindData:
		if err := need(pos+1, "layout"); err != nil {
			return err
		}
		layout := Layout(buf[pos])
		pos++
		if layout != Contiguous && layout != ChunkedDeflate {
			return fmt.Errorf("dasf: %s: unknown layout %d", path, layout)
		}
		r.info.Layout = layout
		if err := need(pos+4, "per-channel metadata length"); err != nil {
			return err
		}
		pcmLen := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		if pcmLen > 0 {
			r.info.PerChannelOffset = int64(pos)
		}
		r.info.DataOffset = int64(pos + pcmLen)
		// Validate the file is long enough for the declared array region.
		st, err := r.f.Stat()
		if err != nil {
			return fmt.Errorf("dasf: %s: %w", path, err)
		}
		var want int64
		if layout == Contiguous {
			want = r.info.DataOffset + int64(nch)*int64(nt)*int64(dtype.Size())
		} else {
			want = r.info.DataOffset + int64(nch)*chunkRefSize // index at minimum
		}
		if st.Size() < want {
			return fmt.Errorf("dasf: %s: file is %d bytes, array needs %d", path, st.Size(), want)
		}
	case KindVCA:
		if err := need(pos+4, "member count"); err != nil {
			return err
		}
		nm := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		if nm == 0 {
			return fmt.Errorf("dasf: %s: VCA with zero members", path)
		}
		// Each member record needs ≥ 18 bytes; a count beyond what the
		// buffer could hold is corruption, and allocation is bounded by the
		// buffer size either way.
		if nm > (len(buf)-pos)/18+1 {
			return fmt.Errorf("dasf: %s: VCA declares %d members, buffer holds at most %d",
				path, nm, (len(buf)-pos)/18+1)
		}
		dir := filepath.Dir(path)
		members := make([]Member, nm)
		for i := range members {
			if err := need(pos+2, "member name length"); err != nil {
				return err
			}
			nameLen := int(binary.LittleEndian.Uint16(buf[pos:]))
			pos += 2
			if err := need(pos+nameLen+16, "member record"); err != nil {
				return err
			}
			name := string(buf[pos : pos+nameLen])
			pos += nameLen
			if !filepath.IsAbs(name) {
				name = filepath.Join(dir, name)
			}
			members[i] = Member{
				Name:        name,
				NumChannels: int(binary.LittleEndian.Uint32(buf[pos:])),
				NumSamples:  int(binary.LittleEndian.Uint32(buf[pos+4:])),
				Timestamp:   int64(binary.LittleEndian.Uint64(buf[pos+8:])),
			}
			pos += 16
		}
		r.info.Members = members
	default:
		return fmt.Errorf("dasf: %s: unknown kind %d", path, kind)
	}
	return nil
}

// Info returns the file's parsed metadata.
func (r *Reader) Info() Info { return r.info }

// Stats returns the I/O operation counts issued so far.
func (r *Reader) Stats() IOStats { return r.stats }

// Close releases the file handle.
func (r *Reader) Close() error { return r.f.Close() }

// PerChannelMeta reads and decodes the per-channel metadata block. Returns
// nil if the file has none.
func (r *Reader) PerChannelMeta() ([]Meta, error) {
	if r.info.Kind != KindData || r.info.PerChannelOffset == 0 {
		return nil, nil
	}
	length := r.info.DataOffset - r.info.PerChannelOffset
	buf := make([]byte, length)
	if _, err := r.f.ReadAt(buf, r.info.PerChannelOffset); err != nil {
		return nil, fmt.Errorf("dasf: %s: %w", r.info.Path, err)
	}
	r.stats.Reads++
	r.stats.BytesRead += length
	out := make([]Meta, 0, r.info.NumChannels)
	pos := 0
	for c := 0; c < r.info.NumChannels; c++ {
		m, used, err := decodeMeta(buf[pos:])
		if err != nil {
			return nil, fmt.Errorf("dasf: %s: channel %d metadata: %w", r.info.Path, c, err)
		}
		pos += used
		out = append(out, m)
	}
	return out, nil
}

// ReadSlab reads the hyperslab [chLo, chHi) × [tLo, tHi) from a data file.
// A request spanning the full time range is satisfied with a single
// contiguous read (the access pattern the communication-avoiding method
// exploits); otherwise one read per channel row is issued.
func (r *Reader) ReadSlab(chLo, chHi, tLo, tHi int) (*Array2D, error) {
	if r.info.Kind != KindData {
		return nil, fmt.Errorf("dasf: %s: ReadSlab on a %s file (resolve VCA members first)",
			r.info.Path, r.info.Kind)
	}
	nch, nt := r.info.NumChannels, r.info.NumSamples
	if chLo < 0 || chHi > nch || chLo >= chHi || tLo < 0 || tHi > nt || tLo >= tHi {
		return nil, fmt.Errorf("dasf: %s: slab [%d:%d)×[%d:%d) out of bounds %d×%d",
			r.info.Path, chLo, chHi, tLo, tHi, nch, nt)
	}
	esz := r.info.DType.Size()
	out := NewArray2D(chHi-chLo, tHi-tLo)
	if r.info.Layout == ChunkedDeflate {
		return out, r.readSlabChunked(out, chLo, chHi, tLo, tHi)
	}
	if tLo == 0 && tHi == nt {
		// Contiguous: all requested channels in one read call.
		nbytes := int64(chHi-chLo) * int64(nt) * int64(esz)
		buf := make([]byte, nbytes)
		off := r.info.DataOffset + int64(chLo)*int64(nt)*int64(esz)
		if _, err := r.f.ReadAt(buf, off); err != nil {
			return nil, fmt.Errorf("dasf: %s: %w", r.info.Path, err)
		}
		r.stats.Reads++
		r.stats.BytesRead += nbytes
		decodeSamples(out.Data, buf, r.info.DType)
		return out, nil
	}
	rowBytes := (tHi - tLo) * esz
	buf := make([]byte, rowBytes)
	for c := chLo; c < chHi; c++ {
		off := r.info.DataOffset + (int64(c)*int64(nt)+int64(tLo))*int64(esz)
		if _, err := r.f.ReadAt(buf, off); err != nil {
			return nil, fmt.Errorf("dasf: %s: channel %d: %w", r.info.Path, c, err)
		}
		r.stats.Reads++
		r.stats.BytesRead += int64(rowBytes)
		decodeSamples(out.Row(c-chLo), buf, r.info.DType)
	}
	return out, nil
}

// ReadAll reads the entire array with one contiguous read.
func (r *Reader) ReadAll() (*Array2D, error) {
	return r.ReadSlab(0, r.info.NumChannels, 0, r.info.NumSamples)
}

// loadChunkIndex reads and caches the chunk index of a chunked file.
func (r *Reader) loadChunkIndex() ([]chunkRef, error) {
	r.chunkMu.Lock()
	defer r.chunkMu.Unlock()
	if r.chunks != nil {
		return r.chunks, nil
	}
	nch := r.info.NumChannels
	buf := make([]byte, nch*chunkRefSize)
	if _, err := r.f.ReadAt(buf, r.info.DataOffset); err != nil {
		return nil, fmt.Errorf("dasf: %s: chunk index: %w", r.info.Path, err)
	}
	r.stats.Reads++
	r.stats.BytesRead += int64(len(buf))
	st, err := r.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("dasf: %s: %w", r.info.Path, err)
	}
	chunks := make([]chunkRef, nch)
	for c := range chunks {
		off := int64(binary.LittleEndian.Uint64(buf[c*chunkRefSize:]))
		clen := int(binary.LittleEndian.Uint32(buf[c*chunkRefSize+8:]))
		if off < r.info.DataOffset || clen < 0 || off+int64(clen) > st.Size() {
			return nil, fmt.Errorf("dasf: %s: chunk %d index out of bounds", r.info.Path, c)
		}
		chunks[c] = chunkRef{off: off, clen: clen}
	}
	r.chunks = chunks
	return chunks, nil
}

// readSlabChunked fills out from a chunked file: one chunk read +
// decompression per requested channel.
func (r *Reader) readSlabChunked(out *Array2D, chLo, chHi, tLo, tHi int) error {
	chunks, err := r.loadChunkIndex()
	if err != nil {
		return err
	}
	esz := r.info.DType.Size()
	rowBytes := r.info.NumSamples * esz
	raw := make([]byte, rowBytes)
	for c := chLo; c < chHi; c++ {
		ref := chunks[c]
		comp := make([]byte, ref.clen)
		if _, err := r.f.ReadAt(comp, ref.off); err != nil {
			return fmt.Errorf("dasf: %s: chunk %d: %w", r.info.Path, c, err)
		}
		r.stats.Reads++
		r.stats.BytesRead += int64(ref.clen)
		fr := flate.NewReader(bytes.NewReader(comp))
		if _, err := io.ReadFull(fr, raw); err != nil {
			fr.Close()
			return fmt.Errorf("dasf: %s: chunk %d decompress: %w", r.info.Path, c, err)
		}
		fr.Close()
		decodeSamples(out.Row(c-chLo), raw[tLo*esz:tHi*esz], r.info.DType)
	}
	return nil
}

// decodeSamples converts little-endian on-disk samples into float64s.
func decodeSamples(dst []float64, src []byte, dtype DType) {
	switch dtype {
	case Float32:
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:])))
		}
	case Float64:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
		}
	}
}
