package dasf

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

// appendUint16/32/64 are little-endian append helpers.
func appendUint16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendUint32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendUint64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// encodeMeta serializes one KV list with sorted keys.
func encodeMeta(m Meta) []byte {
	keys := m.sortedKeys()
	buf := appendUint32(nil, uint32(len(keys)))
	for _, k := range keys {
		v := m[k]
		buf = appendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case StringValue:
			buf = appendUint32(buf, uint32(len(v.Str)))
			buf = append(buf, v.Str...)
		case IntValue:
			buf = appendUint64(buf, uint64(v.Int))
		case FloatValue:
			buf = appendUint64(buf, math.Float64bits(v.Float))
		default:
			panic(fmt.Sprintf("dasf: cannot encode value kind %d", v.Kind))
		}
	}
	return buf
}

// decodeMeta parses a KV list encoded by encodeMeta.
func decodeMeta(b []byte) (Meta, int, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("dasf: metadata block truncated")
	}
	n := int(binary.LittleEndian.Uint32(b))
	pos := 4
	// Each entry needs ≥ 3 bytes; bound the map preallocation accordingly
	// so corrupt counts cannot drive allocation.
	if n > len(b)/3+1 {
		return nil, 0, fmt.Errorf("dasf: metadata declares %d entries, block holds at most %d", n, len(b)/3+1)
	}
	m := make(Meta, n)
	for i := 0; i < n; i++ {
		if pos+2 > len(b) {
			return nil, 0, fmt.Errorf("dasf: metadata entry %d truncated", i)
		}
		klen := int(binary.LittleEndian.Uint16(b[pos:]))
		pos += 2
		if pos+klen+1 > len(b) {
			return nil, 0, fmt.Errorf("dasf: metadata key %d truncated", i)
		}
		key := string(b[pos : pos+klen])
		pos += klen
		kind := ValueKind(b[pos])
		pos++
		var v Value
		switch kind {
		case StringValue:
			if pos+4 > len(b) {
				return nil, 0, fmt.Errorf("dasf: string value %q truncated", key)
			}
			slen := int(binary.LittleEndian.Uint32(b[pos:]))
			pos += 4
			if pos+slen > len(b) {
				return nil, 0, fmt.Errorf("dasf: string value %q truncated", key)
			}
			v = S(string(b[pos : pos+slen]))
			pos += slen
		case IntValue:
			if pos+8 > len(b) {
				return nil, 0, fmt.Errorf("dasf: int value %q truncated", key)
			}
			v = I(int64(binary.LittleEndian.Uint64(b[pos:])))
			pos += 8
		case FloatValue:
			if pos+8 > len(b) {
				return nil, 0, fmt.Errorf("dasf: float value %q truncated", key)
			}
			v = F(math.Float64frombits(binary.LittleEndian.Uint64(b[pos:])))
			pos += 8
		default:
			return nil, 0, fmt.Errorf("dasf: unknown value kind %d for key %q", kind, key)
		}
		m[key] = v
	}
	return m, pos, nil
}

const headerSize = 4 + 2 + 2 // magic + version + kind

func encodeHeader(kind Kind) []byte {
	buf := make([]byte, 0, headerSize)
	buf = append(buf, Magic...)
	buf = appendUint16(buf, Version)
	buf = appendUint16(buf, uint16(kind))
	return buf
}

// WriteData writes a self-contained DASF data file with the contiguous
// layout. perChannel may be nil; if non-nil it must have exactly
// data.Channels entries. The array is stored at the given dtype (analysis
// always reads back float64).
func WriteData(path string, global Meta, perChannel []Meta, data *Array2D, dtype DType) error {
	return writeData(path, global, perChannel, data, dtype, Contiguous)
}

// WriteDataCompressed writes a data file with the chunked-deflate layout:
// one compressed chunk per channel row plus a chunk index, like an HDF5
// chunked dataset with the deflate filter.
func WriteDataCompressed(path string, global Meta, perChannel []Meta, data *Array2D, dtype DType) error {
	return writeData(path, global, perChannel, data, dtype, ChunkedDeflate)
}

func writeData(path string, global Meta, perChannel []Meta, data *Array2D, dtype DType, layout Layout) error {
	if data == nil || data.Channels <= 0 || data.Samples <= 0 {
		return fmt.Errorf("dasf: WriteData needs a non-empty array")
	}
	if len(data.Data) != data.Channels*data.Samples {
		return fmt.Errorf("dasf: array length %d does not match %d×%d",
			len(data.Data), data.Channels, data.Samples)
	}
	if perChannel != nil && len(perChannel) != data.Channels {
		return fmt.Errorf("dasf: perChannel has %d entries for %d channels",
			len(perChannel), data.Channels)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dasf: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	write := func(b []byte) error {
		_, werr := w.Write(b)
		return werr
	}

	var buf []byte
	buf = append(buf, encodeHeader(KindData)...)
	gm := encodeMeta(global)
	buf = appendUint32(buf, uint32(len(gm)))
	buf = append(buf, gm...)
	buf = appendUint32(buf, uint32(data.Channels))
	buf = appendUint32(buf, uint32(data.Samples))
	buf = append(buf, byte(dtype))
	buf = append(buf, byte(layout))
	var pcm []byte
	if perChannel != nil {
		for _, m := range perChannel {
			pcm = append(pcm, encodeMeta(m)...)
		}
	}
	buf = appendUint32(buf, uint32(len(pcm)))
	buf = append(buf, pcm...)
	if err := write(buf); err != nil {
		f.Close()
		return fmt.Errorf("dasf: %w", err)
	}

	esz := dtype.Size()
	row := make([]byte, data.Samples*esz)
	encodeRow := func(c int) {
		src := data.Row(c)
		switch dtype {
		case Float32:
			for t, v := range src {
				binary.LittleEndian.PutUint32(row[t*4:], math.Float32bits(float32(v)))
			}
		case Float64:
			for t, v := range src {
				binary.LittleEndian.PutUint64(row[t*8:], math.Float64bits(v))
			}
		}
	}
	switch layout {
	case Contiguous:
		for c := 0; c < data.Channels; c++ {
			encodeRow(c)
			if err := write(row); err != nil {
				f.Close()
				return fmt.Errorf("dasf: %w", err)
			}
		}
	case ChunkedDeflate:
		// Compress every row, then emit the chunk index followed by the
		// chunks. Offsets are absolute file positions.
		chunks := make([][]byte, data.Channels)
		var cbuf bytes.Buffer
		for c := 0; c < data.Channels; c++ {
			encodeRow(c)
			cbuf.Reset()
			fw, err := flate.NewWriter(&cbuf, flate.DefaultCompression)
			if err != nil {
				f.Close()
				return fmt.Errorf("dasf: %w", err)
			}
			if _, err := fw.Write(row); err != nil {
				f.Close()
				return fmt.Errorf("dasf: %w", err)
			}
			if err := fw.Close(); err != nil {
				f.Close()
				return fmt.Errorf("dasf: %w", err)
			}
			chunks[c] = append([]byte(nil), cbuf.Bytes()...)
		}
		indexStart := int64(len(buf))
		off := indexStart + int64(data.Channels)*chunkRefSize
		var idx []byte
		for _, ch := range chunks {
			idx = appendUint64(idx, uint64(off))
			idx = appendUint32(idx, uint32(len(ch)))
			off += int64(len(ch))
		}
		if err := write(idx); err != nil {
			f.Close()
			return fmt.Errorf("dasf: %w", err)
		}
		for _, ch := range chunks {
			if err := write(ch); err != nil {
				f.Close()
				return fmt.Errorf("dasf: %w", err)
			}
		}
	default:
		f.Close()
		return fmt.Errorf("dasf: unknown layout %d", layout)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("dasf: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dasf: %w", err)
	}
	return nil
}

// chunkRefSize is one chunk-index entry: u64 offset + u32 length.
const chunkRefSize = 12

// WriteVCA writes a virtual file referencing the given members in order.
// All members must share a channel count; the VCA's time extent is the sum
// of member extents. Only metadata is written — this is why VCA
// construction is orders of magnitude cheaper than RCA construction.
func WriteVCA(path string, global Meta, dtype DType, members []Member) error {
	if len(members) == 0 {
		return fmt.Errorf("dasf: WriteVCA needs at least one member")
	}
	nch := members[0].NumChannels
	total := 0
	for i, m := range members {
		if m.NumChannels != nch {
			return fmt.Errorf("dasf: member %d has %d channels, member 0 has %d",
				i, m.NumChannels, nch)
		}
		if m.NumSamples <= 0 {
			return fmt.Errorf("dasf: member %d has %d samples", i, m.NumSamples)
		}
		total += m.NumSamples
	}
	var buf []byte
	buf = append(buf, encodeHeader(KindVCA)...)
	gm := encodeMeta(global)
	buf = appendUint32(buf, uint32(len(gm)))
	buf = append(buf, gm...)
	buf = appendUint32(buf, uint32(nch))
	buf = appendUint32(buf, uint32(total))
	buf = append(buf, byte(dtype))
	buf = appendUint32(buf, uint32(len(members)))
	for _, m := range members {
		buf = appendUint16(buf, uint16(len(m.Name)))
		buf = append(buf, m.Name...)
		buf = appendUint32(buf, uint32(m.NumChannels))
		buf = appendUint32(buf, uint32(m.NumSamples))
		buf = appendUint64(buf, uint64(m.Timestamp))
	}
	// Write-then-rename so the VCA is replaced atomically: a reader that
	// races an AppendToVCA sees either the old member list or the new one,
	// never a truncated file. This is what lets a long-running ingester
	// extend a live VCA while queries read it.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("dasf: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dasf: %w", err)
	}
	return nil
}
