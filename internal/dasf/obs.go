package dasf

import "dassa/internal/obs"

// Process-wide storage metrics. dasf is the single choke point every
// storage consumer reads through, so counting here observes the whole
// stack — CLIs, parallel readers, the daemon's cache misses — for free.
// The registry is dependency-free stdlib atomics; the cost per op is one
// atomic add.
var (
	mOpens = obs.Default().Counter("dassa_dasf_opens_total",
		"DASF files opened (metadata parses included)")
	mReads = obs.Default().Counter("dassa_dasf_reads_total",
		"physical read calls issued")
	mReadBytes = obs.Default().Counter("dassa_dasf_read_bytes_total",
		"bytes fetched by physical reads")
	mWrites = obs.Default().Counter("dassa_dasf_writes_total",
		"physical positioned write calls issued")
	mWriteBytes = obs.Default().Counter("dassa_dasf_write_bytes_total",
		"bytes submitted by physical writes")
	mRetries = obs.Default().Counter("dassa_dasf_retries_total",
		"storage operations re-issued after transient failures")
	mFaults = obs.Default().Counter("dassa_dasf_faults_total",
		"storage faults hit (injected and real)")
	mCorrupt = obs.Default().Counter("dassa_dasf_corrupt_total",
		"format violations classified as ErrCorrupt")
)
