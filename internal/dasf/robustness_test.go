package dasf

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestOpenNeverPanicsOnCorruptInput mutates valid files randomly and
// asserts the parser either succeeds or errors — never panics or hangs.
// Storage-side corruption is a fact of life for year-long DAS archives.
func TestOpenNeverPanicsOnCorruptInput(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.dasf")
	a := NewArray2D(6, 40)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	meta := Meta{
		KeySamplingFrequency: I(500),
		KeyTimeStamp:         S("170728224510"),
		"Experiment":         S("robustness"),
	}
	pcm := make([]Meta, 6)
	for c := range pcm {
		pcm[c] = Meta{"DistanceAlongFiber(m)": F(float64(c))}
	}
	if err := WriteData(base, meta, pcm, a, Float32); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	vcaBase := filepath.Join(dir, "base.vca")
	members := []Member{{Name: "base.dasf", NumChannels: 6, NumSamples: 40, Timestamp: 170728224510}}
	if err := WriteVCA(vcaBase, meta, Float32, members); err != nil {
		t.Fatal(err)
	}
	origVCA, err := os.ReadFile(vcaBase)
	if err != nil {
		t.Fatal(err)
	}

	// The chunked-deflate layout has extra structure to corrupt: a chunk
	// index whose offsets/lengths must never be trusted, and compressed
	// payloads that can fail to inflate.
	zBase := filepath.Join(dir, "base.z.dasf")
	if err := WriteDataCompressed(zBase, meta, pcm, a, Float32); err != nil {
		t.Fatal(err)
	}
	origZ, err := os.ReadFile(zBase)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(77))
	try := func(name string, content []byte) {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Open panicked: %v", name, r)
			}
		}()
		r, err := Open(p)
		if err == nil {
			// A survivable mutation: exercise the read paths too.
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.Fatalf("%s: read panicked: %v", name, rec)
					}
				}()
				info := r.Info()
				if info.Kind == KindData {
					r.ReadSlab(0, min(info.NumChannels, 2), 0, min(info.NumSamples, 5))
					r.PerChannelMeta()
				}
			}()
			r.Close()
		}
	}

	for i := 0; i < 120; i++ {
		for srcName, src := range map[string][]byte{"data": orig, "vca": origVCA, "zdata": origZ} {
			mut := make([]byte, len(src))
			copy(mut, src)
			// 1-8 random byte flips.
			for k := 0; k < 1+rng.Intn(8); k++ {
				mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
			}
			try(srcName+"_mut.dasf", mut)
			// Random truncation.
			try(srcName+"_trunc.dasf", mut[:rng.Intn(len(mut))])
		}
	}
}

// TestVCAWithCorruptMember: the VCA opens fine (metadata only), the read
// fails cleanly when a member is corrupt.
func TestVCAWithCorruptMember(t *testing.T) {
	dir := t.TempDir()
	member := filepath.Join(dir, "m.dasf")
	a := NewArray2D(4, 10)
	if err := WriteData(member, Meta{KeyTimeStamp: S("170728224510")}, nil, a, Float64); err != nil {
		t.Fatal(err)
	}
	vca := filepath.Join(dir, "v.dasf")
	if err := WriteVCA(vca, nil, Float64, []Member{
		{Name: "m.dasf", NumChannels: 4, NumSamples: 10, Timestamp: 170728224510},
	}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the member's magic.
	if err := os.WriteFile(member, []byte("GARBAGEGARBAGE"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(vca)
	if err != nil {
		t.Fatalf("VCA open should still succeed (metadata only): %v", err)
	}
	defer r.Close()
	if _, err := Open(r.Info().Members[0].Name); err == nil {
		t.Error("corrupt member should fail to open")
	}
}
