package dasf

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func testArray(channels, samples int) *Array2D {
	a := NewArray2D(channels, samples)
	for c := 0; c < channels; c++ {
		for t := 0; t < samples; t++ {
			a.Set(c, t, float64(c*1000+t))
		}
	}
	return a
}

func testMeta() Meta {
	return Meta{
		KeySamplingFrequency: I(500),
		KeySpatialResolution: F(2.0),
		KeyTimeStamp:         S("170620100545"),
		KeyNumberOfChannels:  I(8),
	}
}

func TestWriteReadRoundTripFloat64(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.dasf")
	want := testArray(8, 16)
	if err := WriteData(path, testMeta(), nil, want, Float64); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info := r.Info()
	if info.Kind != KindData || info.NumChannels != 8 || info.NumSamples != 16 || info.DType != Float64 {
		t.Fatalf("info = %+v", info)
	}
	if got := info.Global[KeyTimeStamp].Str; got != "170620100545" {
		t.Errorf("timestamp = %q", got)
	}
	if got := info.Global[KeySamplingFrequency].Int; got != 500 {
		t.Errorf("sampling frequency = %d", got)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("data[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestFloat32RoundTripPrecision(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f32.dasf")
	want := NewArray2D(2, 4)
	vals := []float64{0, -1.5, 3.25, math.Pi, 1e10, -1e-10, 42, 0.1}
	copy(want.Data, vals)
	if err := WriteData(path, testMeta(), nil, want, Float32); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if got.Data[i] != float64(float32(v)) {
			t.Errorf("data[%d] = %v, want float32-rounded %v", i, got.Data[i], float64(float32(v)))
		}
	}
}

func TestReadSlab(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slab.dasf")
	src := testArray(10, 20)
	if err := WriteData(path, testMeta(), nil, src, Float64); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadSlab(3, 7, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got.Channels != 4 || got.Samples != 7 {
		t.Fatalf("slab shape %d×%d", got.Channels, got.Samples)
	}
	for c := 0; c < 4; c++ {
		for tt := 0; tt < 7; tt++ {
			want := src.At(c+3, tt+5)
			if got.At(c, tt) != want {
				t.Fatalf("slab(%d,%d) = %v, want %v", c, tt, got.At(c, tt), want)
			}
		}
	}
}

func TestReadSlabBounds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.dasf")
	if err := WriteData(path, testMeta(), nil, testArray(4, 6), Float64); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, tc := range [][4]int{
		{-1, 2, 0, 6}, {0, 5, 0, 6}, {2, 2, 0, 6}, {0, 4, -1, 6}, {0, 4, 0, 7}, {0, 4, 3, 3},
	} {
		if _, err := r.ReadSlab(tc[0], tc[1], tc[2], tc[3]); err == nil {
			t.Errorf("slab %v should fail", tc)
		}
	}
}

func TestFullTimeRangeIsOneRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.dasf")
	if err := WriteData(path, testMeta(), nil, testArray(16, 32), Float64); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	before := r.Stats().Reads
	if _, err := r.ReadSlab(0, 16, 0, 32); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Reads - before; got != 1 {
		t.Errorf("full read used %d read calls, want 1", got)
	}
	before = r.Stats().Reads
	if _, err := r.ReadSlab(0, 16, 1, 32); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Reads - before; got != 16 {
		t.Errorf("partial-time read used %d read calls, want 16 (one per channel)", got)
	}
}

func TestPerChannelMeta(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pcm.dasf")
	pcm := make([]Meta, 3)
	for c := range pcm {
		pcm[c] = Meta{"Distance(m)": F(float64(c) * 2.0), "Object Path": S("/Measurement/" + string(rune('1'+c)))}
	}
	if err := WriteData(path, testMeta(), pcm, testArray(3, 5), Float64); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.PerChannelMeta()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d channel metas", len(got))
	}
	for c := range got {
		if got[c]["Distance(m)"].Float != float64(c)*2.0 {
			t.Errorf("channel %d distance = %v", c, got[c]["Distance(m)"])
		}
	}
	// A file without per-channel metadata returns nil.
	path2 := filepath.Join(dir, "nopcm.dasf")
	if err := WriteData(path2, testMeta(), nil, testArray(3, 5), Float64); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if m, err := r2.PerChannelMeta(); err != nil || m != nil {
		t.Errorf("PerChannelMeta = %v, %v; want nil, nil", m, err)
	}
}

func TestVCARoundTrip(t *testing.T) {
	dir := t.TempDir()
	members := []Member{
		{Name: "m0.dasf", NumChannels: 8, NumSamples: 100, Timestamp: 170728224510},
		{Name: "m1.dasf", NumChannels: 8, NumSamples: 100, Timestamp: 170728224610},
		{Name: "m2.dasf", NumChannels: 8, NumSamples: 50, Timestamp: 170728224710},
	}
	path := filepath.Join(dir, "v.vca")
	if err := WriteVCA(path, testMeta(), Float32, members); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info := r.Info()
	if info.Kind != KindVCA {
		t.Fatalf("kind = %v", info.Kind)
	}
	if info.NumChannels != 8 || info.NumSamples != 250 {
		t.Errorf("shape = %d×%d, want 8×250", info.NumChannels, info.NumSamples)
	}
	if len(info.Members) != 3 {
		t.Fatalf("members = %d", len(info.Members))
	}
	// Relative member names resolve against the VCA's directory.
	if want := filepath.Join(dir, "m1.dasf"); info.Members[1].Name != want {
		t.Errorf("member name = %q, want %q", info.Members[1].Name, want)
	}
	if info.Members[2].NumSamples != 50 || info.Members[0].Timestamp != 170728224510 {
		t.Errorf("member fields wrong: %+v", info.Members)
	}
	// Reading a slab from a VCA directly is an error (dass resolves members).
	if _, err := r.ReadSlab(0, 8, 0, 250); err == nil {
		t.Error("ReadSlab on VCA should fail")
	}
}

func TestVCAValidation(t *testing.T) {
	dir := t.TempDir()
	if err := WriteVCA(filepath.Join(dir, "x.vca"), nil, Float64, nil); err == nil {
		t.Error("empty member list should fail")
	}
	bad := []Member{
		{Name: "a", NumChannels: 8, NumSamples: 10},
		{Name: "b", NumChannels: 9, NumSamples: 10},
	}
	if err := WriteVCA(filepath.Join(dir, "y.vca"), nil, Float64, bad); err == nil {
		t.Error("mismatched channel counts should fail")
	}
}

func TestCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"empty":     {},
		"bad_magic": []byte("NOPE\x01\x00\x00\x00garbage"),
		"truncated": append([]byte("DASF\x01\x00\x00\x00"), 0xFF, 0xFF, 0xFF, 0x7F),
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p); err == nil {
			t.Errorf("%s: Open should fail", name)
		}
	}
	if _, err := Open(filepath.Join(dir, "missing.dasf")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestTruncatedArrayDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.dasf")
	if err := WriteData(path, testMeta(), nil, testArray(8, 100), Float64); err != nil {
		t.Fatal(err)
	}
	// Chop off the tail of the array.
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-100); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "array needs") {
		t.Errorf("truncated array: err = %v", err)
	}
}

func TestWriteDataValidation(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "v.dasf")
	if err := WriteData(p, nil, nil, nil, Float64); err == nil {
		t.Error("nil array should fail")
	}
	bad := &Array2D{Channels: 2, Samples: 3, Data: make([]float64, 5)}
	if err := WriteData(p, nil, nil, bad, Float64); err == nil {
		t.Error("mismatched data length should fail")
	}
	if err := WriteData(p, nil, make([]Meta, 1), testArray(2, 2), Float64); err == nil {
		t.Error("wrong perChannel length should fail")
	}
}

func TestMetaRoundTripProperty(t *testing.T) {
	f := func(keys []string, ints []int64, floats []float64, strs []string) bool {
		m := Meta{}
		for i, k := range keys {
			if len(k) > 1000 {
				k = k[:1000]
			}
			switch i % 3 {
			case 0:
				if len(ints) > 0 {
					m[k] = I(ints[i%len(ints)])
				}
			case 1:
				if len(floats) > 0 {
					f := floats[i%len(floats)]
					if math.IsNaN(f) {
						f = 0 // NaN != NaN; store something comparable
					}
					m[k] = F(f)
				}
			default:
				if len(strs) > 0 {
					m[k] = S(strs[i%len(strs)])
				}
			}
		}
		enc := encodeMeta(m)
		dec, used, err := decodeMeta(enc)
		if err != nil || used != len(enc) || len(dec) != len(m) {
			return false
		}
		for k, v := range m {
			if dec[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeMetaRejectsGarbage(t *testing.T) {
	// Any prefix truncation of a valid encoding must error, not panic.
	m := Meta{"alpha": S("hello"), "beta": I(42), "gamma": F(2.5)}
	enc := encodeMeta(m)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := decodeMeta(enc[:cut]); err == nil && cut < len(enc) {
			// Some prefixes may decode fewer entries and "succeed" only if
			// count was satisfied — with sorted keys the count is at the
			// front so every cut must fail.
			t.Errorf("cut=%d: decode succeeded on truncated input", cut)
		}
	}
}

func TestArray2DHelpers(t *testing.T) {
	a := NewArray2D(3, 4)
	a.Set(2, 3, 7.5)
	if a.At(2, 3) != 7.5 {
		t.Error("Set/At broken")
	}
	row := a.Row(2)
	if len(row) != 4 || row[3] != 7.5 {
		t.Error("Row broken")
	}
	cp := a.Clone()
	cp.Set(0, 0, -1)
	if a.At(0, 0) == -1 {
		t.Error("Clone shares storage")
	}
	if Float32.Size() != 4 || Float64.Size() != 8 {
		t.Error("DType.Size broken")
	}
	if KindData.String() != "data" || KindVCA.String() != "vca" {
		t.Error("Kind.String broken")
	}
	if S("x").String() != "x" || I(3).String() != "3" || F(1.5).String() != "1.5" {
		t.Error("Value.String broken")
	}
	m := Meta{"a": I(1)}
	c := m.Clone()
	c["a"] = I(2)
	if m["a"].Int != 1 {
		t.Error("Meta.Clone shares storage")
	}
}
