package dasf

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzChunkedFile writes one valid chunked-deflate file and returns its
// raw bytes plus the offset where the chunk index begins. The fuzz
// targets splice mutated bytes into (or around) that structure and
// assert the reader survives: error out, never panic, never read out of
// bounds.
func fuzzChunkedFile(f *testing.F) (orig []byte, indexOff int) {
	f.Helper()
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.dasf")
	if err := WriteDataCompressed(path, testMeta(), nil, smoothArray(4, 60), Float64); err != nil {
		f.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		f.Fatal(err)
	}
	indexOff = int(r.Info().DataOffset)
	r.Close()
	orig, err = os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return orig, indexOff
}

// exerciseReader drives every read path that trusts on-disk structure.
// Errors are expected on corrupt input; panics and out-of-range reads are
// the bugs being fuzzed for.
func exerciseReader(path string) {
	r, err := Open(path)
	if err != nil {
		return
	}
	defer r.Close()
	info := r.Info()
	if info.Kind == KindData {
		r.ReadAll()
		r.ReadSlab(0, min(info.NumChannels, 2), 0, min(info.NumSamples, 5))
		r.PerChannelMeta()
	}
}

// FuzzOpenCorruptIndex targets the chunk index specifically: the fuzzer
// controls the index bytes (chunk offsets and lengths), which the reader
// must bounds-check against the physical file before every ReadAt.
func FuzzOpenCorruptIndex(f *testing.F) {
	orig, indexOff := fuzzChunkedFile(f)
	idxLen := len(orig) - indexOff
	if idxLen > 4*chunkRefSize {
		idxLen = 4 * chunkRefSize
	}
	f.Add(append([]byte(nil), orig[indexOff:indexOff+idxLen]...))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, idx []byte) {
		mut := append([]byte(nil), orig...)
		copy(mut[indexOff:], idx) // clipped splice over the index region
		p := filepath.Join(t.TempDir(), "f.dasf")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		exerciseReader(p)
	})
}

// FuzzOpenChunkedDeflate hands the whole chunked file to the fuzzer:
// header, meta block, chunk index, and deflate streams all mutate freely.
func FuzzOpenChunkedDeflate(f *testing.F) {
	orig, _ := fuzzChunkedFile(f)
	f.Add(append([]byte(nil), orig...))
	f.Add(append([]byte(nil), orig[:len(orig)/2]...)) // truncation seed
	f.Add([]byte("DASF"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "f.dasf")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		exerciseReader(p)
	})
}
