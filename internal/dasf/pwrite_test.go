package dasf

import (
	"path/filepath"
	"sync"
	"testing"
)

func TestParallelWriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.dasf")
	const nch, nt = 12, 50
	meta := Meta{KeyTimeStamp: S("170728224510")}
	pw, err := CreateData(path, meta, nch, nt, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}

	// Four concurrent writers, three rows each, out of order.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows := NewArray2D(3, nt)
			for r := 0; r < 3; r++ {
				for tt := 0; tt < nt; tt++ {
					rows.Set(r, tt, float64((w*3+r)*1000+tt))
				}
			}
			pw, err := OpenForWrite(path)
			if err != nil {
				errs[w] = err
				return
			}
			defer func() {
				if err := pw.Close(); err != nil && errs[w] == nil {
					errs[w] = err
				}
			}()
			errs[w] = pw.WriteRows(w*3, rows)
		}(3 - w) // reversed order on purpose
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < nch; c++ {
		for tt := 0; tt < nt; tt++ {
			want := float64(c*1000 + tt)
			if got.At(c, tt) != want {
				t.Fatalf("(%d,%d) = %g, want %g", c, tt, got.At(c, tt), want)
			}
		}
	}
}

func TestParallelWriteFloat32(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f32.dasf")
	pw, err := CreateData(path, nil, 2, 4, Float32)
	if err != nil {
		t.Fatal(err)
	}
	rows := NewArray2D(2, 4)
	rows.Set(0, 0, 1.5)
	rows.Set(1, 3, -2.25)
	if err := pw.WriteRows(0, rows); err != nil {
		t.Fatal(err)
	}
	st := pw.Stats()
	if st.Writes != 1 || st.BytesWritten != 2*4*4 {
		t.Errorf("stats = %+v", st)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 1.5 || got.At(1, 3) != -2.25 {
		t.Errorf("read back %v", got.Data)
	}
}

func TestParallelWriteValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateData(filepath.Join(dir, "x"), nil, 0, 5, Float64); err == nil {
		t.Error("zero channels should fail")
	}
	if _, err := CreateData(filepath.Join(dir, "x"), nil, 5, 5, DType(9)); err == nil {
		t.Error("bad dtype should fail")
	}
	path := filepath.Join(dir, "v.dasf")
	pw, err := CreateData(path, nil, 4, 10, Float64)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := pw.Close(); err != nil {
			t.Errorf("close after rejected writes: %v", err)
		}
	}()
	if err := pw.WriteRows(0, NewArray2D(2, 5)); err == nil {
		t.Error("partial rows should fail")
	}
	if err := pw.WriteRows(3, NewArray2D(2, 10)); err == nil {
		t.Error("overflowing channel range should fail")
	}
	if err := pw.WriteRows(0, nil); err != nil {
		t.Error("nil rows should be a no-op")
	}
	// OpenForWrite rejects VCAs and missing files.
	members := []Member{{Name: "m", NumChannels: 1, NumSamples: 1, Timestamp: 1}}
	vca := filepath.Join(dir, "v.vca")
	if err := WriteVCA(vca, nil, Float64, members); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenForWrite(vca); err == nil {
		t.Error("OpenForWrite on a VCA should fail")
	}
	if _, err := OpenForWrite(filepath.Join(dir, "missing")); err == nil {
		t.Error("OpenForWrite on a missing file should fail")
	}
}

func TestCreateDataUnwrittenRegionsAreZero(t *testing.T) {
	// Truncate-extended regions read as zeros — partially written outputs
	// are well-defined.
	dir := t.TempDir()
	path := filepath.Join(dir, "z.dasf")
	pw, err := CreateData(path, nil, 3, 5, Float64)
	if err != nil {
		t.Fatal(err)
	}
	rows := NewArray2D(1, 5)
	for tt := 0; tt < 5; tt++ {
		rows.Set(0, tt, 7)
	}
	if err := pw.WriteRows(1, rows); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 5; tt++ {
		if got.At(0, tt) != 0 || got.At(2, tt) != 0 {
			t.Fatal("unwritten rows should be zero")
		}
		if got.At(1, tt) != 7 {
			t.Fatal("written row lost")
		}
	}
}
