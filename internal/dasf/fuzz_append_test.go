package dasf_test

// External test package: the seed is a VCA grown by dass.AppendToVCA, and
// dass imports dasf, so this cannot live in package dasf itself.

import (
	"os"
	"path/filepath"
	"testing"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/dass"
)

// FuzzOpenAppendedVCA fuzzes the append-path VCA shape: a member table
// that was rewritten in place rather than produced by one CreateVCA. The
// reader and the view layer must reject inconsistent member extents
// without panicking.
func FuzzOpenAppendedVCA(f *testing.F) {
	dir := f.TempDir()
	cfg := dasgen.Config{
		Channels: 6, SampleRate: 50, FileSeconds: 1, NumFiles: 6,
		Seed: 4, DType: dasf.Float64,
	}
	if _, err := dasgen.Generate(dir, cfg, nil); err != nil {
		f.Fatal(err)
	}
	cat, err := dass.ScanDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	entries := cat.Entries()
	vca := filepath.Join(dir, "grown.dasf")
	if _, err := dass.CreateVCA(vca, entries[:3]); err != nil {
		f.Fatal(err)
	}
	if _, err := dass.AppendToVCA(vca, entries[3:]); err != nil {
		f.Fatal(err)
	}
	orig, err := os.ReadFile(vca)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), orig...))
	f.Add(append([]byte(nil), orig[:len(orig)*3/4]...)) // truncation seed

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "f.dasf")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := dasf.Open(p)
		if err != nil {
			return
		}
		defer r.Close()
		// Survivable mutation: push it through the view layer too, where
		// member extents are cross-checked against the catalog.
		if v, err := dass.NewView(r.Info()); err == nil {
			v.Read()
		}
	})
}
