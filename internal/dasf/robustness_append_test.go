package dasf_test

// External test package: the fuzz target is a VCA grown by dass.AppendToVCA,
// and dass imports dasf, so this cannot live in package dasf itself.

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/dass"
)

// TestOpenNeverPanicsOnCorruptAppendedVCA mutates a VCA that went through
// the append path — whose member table was rewritten in place, not produced
// by a single CreateVCA — and asserts the parser never panics. An appended
// VCA is the common on-disk shape for a continuously growing archive, so
// it deserves the same corruption coverage as freshly written files.
func TestOpenNeverPanicsOnCorruptAppendedVCA(t *testing.T) {
	dir := t.TempDir()
	cfg := dasgen.Config{
		Channels: 6, SampleRate: 50, FileSeconds: 1, NumFiles: 6,
		Seed: 4, DType: dasf.Float64,
	}
	if _, err := dasgen.Generate(dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	cat, err := dass.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := cat.Entries()
	vca := filepath.Join(dir, "grown.dasf")
	if _, err := dass.CreateVCA(vca, entries[:3]); err != nil {
		t.Fatal(err)
	}
	if _, err := dass.AppendToVCA(vca, entries[3:]); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(vca)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	try := func(name string, content []byte) {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: panicked: %v", name, r)
			}
		}()
		r, err := dasf.Open(p)
		if err != nil {
			return
		}
		// Survivable mutation: push it through the view layer too, where the
		// member extents are cross-checked.
		if v, err := dass.NewView(r.Info()); err == nil {
			v.Read()
		}
		r.Close()
	}

	for i := 0; i < 150; i++ {
		mut := make([]byte, len(orig))
		copy(mut, orig)
		for k := 0; k < 1+rng.Intn(8); k++ {
			mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
		}
		try("mut.dasf", mut)
		try("trunc.dasf", mut[:rng.Intn(len(mut))])
	}
}
