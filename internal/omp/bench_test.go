package omp

import "testing"

func BenchmarkForStatic(b *testing.B) {
	team := NewTeam(4)
	sink := make([]float64, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.For(len(sink), func(j int) { sink[j] = float64(j) * 1.5 })
	}
}

func BenchmarkForDynamic(b *testing.B) {
	team := NewTeam(4, WithSchedule(Dynamic), WithChunk(256))
	sink := make([]float64, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.For(len(sink), func(j int) { sink[j] = float64(j) * 1.5 })
	}
}

func BenchmarkForAppendPrefixMerge(b *testing.B) {
	team := NewTeam(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForAppend(team, 10000, func(j int, out *[]float64) {
			*out = append(*out, float64(j))
		})
	}
}

func BenchmarkForAppendLocked(b *testing.B) {
	team := NewTeam(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForAppendLocked(team, 10000, func(j int, out *[]float64) {
			*out = append(*out, float64(j))
		})
	}
}

func BenchmarkReduceF64(b *testing.B) {
	team := NewTeam(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReduceF64(team, 100000, 0,
			func(j int) float64 { return float64(j) },
			func(a, c float64) float64 { return a + c })
	}
}
