// Package omp provides an OpenMP-style fork-join threading engine: parallel
// for-loops with static or dynamic schedules, per-thread partial results
// merged by prefix sums, and simple reductions. It is the intra-node half of
// DASSA's hybrid execution model — the paper's Algorithm 1 (ApplyMT) maps
// onto Team.ForAppend.
package omp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Schedule selects how loop iterations are divided among threads.
type Schedule int

const (
	// Static divides the iteration space into one contiguous chunk per
	// thread, like #pragma omp for schedule(static). This is what
	// Algorithm 1 in the paper uses.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter, like
	// schedule(dynamic, chunk). Useful when iteration costs vary.
	Dynamic
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Team is a fixed-size group of worker threads, analogous to an OpenMP
// parallel region's thread team.
type Team struct {
	threads  int
	schedule Schedule
	chunk    int // dynamic chunk size
}

// Option configures a Team.
type Option func(*Team)

// WithSchedule selects the loop schedule (default Static).
func WithSchedule(s Schedule) Option { return func(t *Team) { t.schedule = s } }

// WithChunk sets the dynamic-schedule chunk size (default 64).
func WithChunk(n int) Option {
	return func(t *Team) {
		if n > 0 {
			t.chunk = n
		}
	}
}

// NewTeam creates a team of n threads. n <= 0 means runtime.NumCPU().
func NewTeam(n int, opts ...Option) *Team {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	t := &Team{threads: n, schedule: Static, chunk: 64}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Threads returns the team size.
func (t *Team) Threads() int { return t.threads }

// staticRange returns thread h's contiguous [lo, hi) slice of n iterations.
func staticRange(n, threads, h int) (lo, hi int) {
	base := n / threads
	rem := n % threads
	lo = h*base + min(h, rem)
	hi = lo + base
	if h < rem {
		hi++
	}
	return lo, hi
}

// panicCollector re-raises the first worker panic on the caller's
// goroutine, so a panicking loop body behaves like it would in a serial
// loop instead of crashing the process from a worker goroutine.
type panicCollector struct {
	once sync.Once
	val  any
}

func (pc *panicCollector) guard(f func()) {
	defer func() {
		if p := recover(); p != nil {
			pc.once.Do(func() { pc.val = p })
		}
	}()
	f()
}

func (pc *panicCollector) rethrow() {
	if pc.val != nil {
		panic(pc.val)
	}
}

// For runs body(i) for every i in [0, n), split across the team according
// to its schedule. body must be safe to call concurrently from different
// threads for different i. For blocks until all iterations finish. If a
// body panics, the panic is re-raised on the calling goroutine.
func (t *Team) For(n int, body func(i int)) {
	t.ForThread(n, func(i, _ int) { body(i) })
}

// ForThread is For, additionally passing the worker thread id h in
// [0, Threads()) so bodies can use per-thread scratch space.
func (t *Team) ForThread(n int, body func(i, h int)) {
	if n <= 0 {
		return
	}
	threads := t.threads
	if threads > n {
		threads = n
	}
	var pc panicCollector
	var wg sync.WaitGroup
	wg.Add(threads)
	switch t.schedule {
	case Dynamic:
		var next atomic.Int64
		for h := 0; h < threads; h++ {
			go func(h int) {
				defer wg.Done()
				pc.guard(func() {
					for {
						lo := int(next.Add(int64(t.chunk))) - t.chunk
						if lo >= n {
							return
						}
						hi := min(lo+t.chunk, n)
						for i := lo; i < hi; i++ {
							body(i, h)
						}
					}
				})
			}(h)
		}
	default: // Static
		for h := 0; h < threads; h++ {
			go func(h int) {
				defer wg.Done()
				pc.guard(func() {
					lo, hi := staticRange(n, threads, h)
					for i := lo; i < hi; i++ {
						body(i, h)
					}
				})
			}(h)
		}
	}
	wg.Wait()
	pc.rethrow()
}

// ForAppend is Algorithm 1 (ApplyMT) from the DASSA paper: each thread runs
// body over its share of [0, n) iterations, appending any number of results
// to a private per-thread vector (no locks on the hot path); sizes are then
// prefix-summed and the private vectors are copied into a single shared
// output in parallel, preserving iteration order under the static schedule.
func ForAppend[T any](t *Team, n int, body func(i int, out *[]T)) []T {
	if n <= 0 {
		return nil
	}
	threads := t.threads
	if threads > n {
		threads = n
	}
	parts := make([][]T, threads)
	var pc panicCollector
	var wg sync.WaitGroup
	wg.Add(threads)
	for h := 0; h < threads; h++ {
		go func(h int) {
			defer wg.Done()
			pc.guard(func() {
				lo, hi := staticRange(n, threads, h)
				local := make([]T, 0, hi-lo)
				for i := lo; i < hi; i++ {
					body(i, &local)
				}
				parts[h] = local
			})
		}(h)
	}
	wg.Wait()
	pc.rethrow()
	// Prefix-sum of per-thread sizes (the "single" section in Algorithm 1).
	offsets := make([]int, threads+1)
	for h := 0; h < threads; h++ {
		offsets[h+1] = offsets[h] + len(parts[h])
	}
	out := make([]T, offsets[threads])
	// Parallel copy of each private vector into its slot.
	wg.Add(threads)
	for h := 0; h < threads; h++ {
		go func(h int) {
			defer wg.Done()
			copy(out[offsets[h]:offsets[h+1]], parts[h])
		}(h)
	}
	wg.Wait()
	return out
}

// ForAppendLocked is the naive alternative to ForAppend used by the merge
// ablation bench: a single shared output guarded by a mutex. Results are in
// nondeterministic order.
func ForAppendLocked[T any](t *Team, n int, body func(i int, out *[]T)) []T {
	var mu sync.Mutex
	var out []T
	t.For(n, func(i int) {
		var local []T
		body(i, &local)
		if len(local) == 0 {
			return
		}
		mu.Lock()
		out = append(out, local...)
		mu.Unlock()
	})
	return out
}

// ReduceF64 computes a parallel elementwise-free scalar reduction: body(i)
// values combined with op (op must be associative and commutative), starting
// from identity.
func ReduceF64(t *Team, n int, identity float64, body func(i int) float64, op func(a, b float64) float64) float64 {
	if n <= 0 {
		return identity
	}
	threads := t.threads
	if threads > n {
		threads = n
	}
	partial := make([]float64, threads)
	var pc panicCollector
	var wg sync.WaitGroup
	wg.Add(threads)
	for h := 0; h < threads; h++ {
		go func(h int) {
			defer wg.Done()
			pc.guard(func() {
				acc := identity
				lo, hi := staticRange(n, threads, h)
				for i := lo; i < hi; i++ {
					acc = op(acc, body(i))
				}
				partial[h] = acc
			})
		}(h)
	}
	wg.Wait()
	pc.rethrow()
	acc := identity
	for _, v := range partial {
		acc = op(acc, v)
	}
	return acc
}
