package omp

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestStaticRangeCoversExactly(t *testing.T) {
	for _, tc := range []struct{ n, threads int }{
		{10, 3}, {1, 1}, {7, 7}, {100, 8}, {5, 4}, {16, 16},
	} {
		covered := make([]int, tc.n)
		prevHi := 0
		for h := 0; h < tc.threads; h++ {
			lo, hi := staticRange(tc.n, tc.threads, h)
			if lo != prevHi {
				t.Errorf("n=%d threads=%d: thread %d starts at %d, want %d", tc.n, tc.threads, h, lo, prevHi)
			}
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Errorf("n=%d threads=%d: last hi = %d", tc.n, tc.threads, prevHi)
		}
		for i, c := range covered {
			if c != 1 {
				t.Errorf("n=%d threads=%d: iteration %d covered %d times", tc.n, tc.threads, i, c)
			}
		}
	}
}

func TestStaticRangeBalance(t *testing.T) {
	// Chunk sizes must differ by at most 1.
	for _, tc := range []struct{ n, threads int }{{100, 7}, {13, 5}, {8, 8}} {
		minSz, maxSz := tc.n, 0
		for h := 0; h < tc.threads; h++ {
			lo, hi := staticRange(tc.n, tc.threads, h)
			sz := hi - lo
			minSz = min(minSz, sz)
			maxSz = max(maxSz, sz)
		}
		if maxSz-minSz > 1 {
			t.Errorf("n=%d threads=%d: chunk sizes range [%d,%d]", tc.n, tc.threads, minSz, maxSz)
		}
	}
}

func TestForVisitsAllOnce(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic} {
		team := NewTeam(4, WithSchedule(sched), WithChunk(3))
		const n = 1000
		counts := make([]atomic.Int32, n)
		team.For(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("%v: iteration %d ran %d times", sched, i, c)
			}
		}
	}
}

func TestForEmptyAndSmall(t *testing.T) {
	team := NewTeam(8)
	team.For(0, func(int) { t.Error("body called for n=0") })
	team.For(-5, func(int) { t.Error("body called for n<0") })
	ran := atomic.Int32{}
	team.For(2, func(int) { ran.Add(1) }) // fewer iterations than threads
	if ran.Load() != 2 {
		t.Errorf("ran %d iterations, want 2", ran.Load())
	}
}

func TestForThreadIDsInRange(t *testing.T) {
	team := NewTeam(3)
	team.ForThread(50, func(_, h int) {
		if h < 0 || h >= 3 {
			t.Errorf("thread id %d out of range", h)
		}
	})
}

func TestForAppendOrderPreserved(t *testing.T) {
	// With a static schedule, ForAppend output must follow iteration order
	// even when iterations append variable numbers of results.
	team := NewTeam(5)
	got := ForAppend(team, 37, func(i int, out *[]int) {
		for k := 0; k <= i%3; k++ {
			*out = append(*out, i*10+k)
		}
	})
	var want []int
	for i := 0; i < 37; i++ {
		for k := 0; k <= i%3; k++ {
			want = append(want, i*10+k)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestForAppendMatchesSequentialProperty(t *testing.T) {
	f := func(nRaw, threadsRaw uint8) bool {
		n := int(nRaw) % 200
		threads := int(threadsRaw)%8 + 1
		team := NewTeam(threads)
		got := ForAppend(team, n, func(i int, out *[]int) {
			if i%2 == 0 {
				*out = append(*out, i*i)
			}
		})
		var want []int
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				want = append(want, i*i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForAppendLockedSameMultiset(t *testing.T) {
	team := NewTeam(4)
	got := ForAppendLocked(team, 100, func(i int, out *[]int) {
		*out = append(*out, i)
	})
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestReduceF64(t *testing.T) {
	team := NewTeam(6)
	sum := ReduceF64(team, 1000, 0, func(i int) float64 { return float64(i) },
		func(a, b float64) float64 { return a + b })
	if sum != 499500 {
		t.Errorf("sum = %v, want 499500", sum)
	}
	maxv := ReduceF64(team, 100, -1e300, func(i int) float64 { return float64((i * 37) % 100) },
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
	if maxv != 99 {
		t.Errorf("max = %v, want 99", maxv)
	}
	if got := ReduceF64(team, 0, 7, nil, nil); got != 7 {
		t.Errorf("empty reduce = %v, want identity 7", got)
	}
}

func TestNewTeamDefaults(t *testing.T) {
	if NewTeam(0).Threads() <= 0 {
		t.Error("NewTeam(0) should default to NumCPU")
	}
	if got := NewTeam(3).Threads(); got != 3 {
		t.Errorf("Threads() = %d, want 3", got)
	}
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Error("Schedule.String() broken")
	}
}
