package arrayudf

import (
	"testing"

	"dassa/internal/dasf"
	"dassa/internal/mpi"
)

func TestCommAvoidingStrategyMatchesIndependent(t *testing.T) {
	v, full := makeView(t, 24, 5)
	spec := Spec{GhostChannels: 2, ReadStrategy: CommAvoidingRead}
	udf := func(s *Stencil) float64 {
		return s.At(0, -2) + s.Value() + s.At(0, 2)
	}
	// Serial reference with the default strategy.
	var want *dasf.Array2D
	_, err := mpi.Run(1, func(c *mpi.Comm) {
		res := Apply(c, v, Spec{GhostChannels: 2}, udf)
		want = Gather(c, full.Channels, res)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 4, 6} {
		var got *dasf.Array2D
		_, err := mpi.Run(p, func(c *mpi.Comm) {
			res := Apply(c, v, spec, udf)
			if out := Gather(c, full.Channels, res); out != nil {
				got = out
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("p=%d: comm-avoiding strategy differs at %d", p, i)
			}
		}
	}
}

func TestCommAvoidingStrategyNoGhosts(t *testing.T) {
	v, full := makeView(t, 12, 3)
	spec := Spec{ReadStrategy: CommAvoidingRead}
	var got *dasf.Array2D
	_, err := mpi.Run(4, func(c *mpi.Comm) {
		res := Apply(c, v, spec, identityUDF)
		if out := Gather(c, full.Channels, res); out != nil {
			got = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Data {
		if got.Data[i] != full.Data[i] {
			t.Fatalf("identity with comm-avoiding strategy differs at %d", i)
		}
	}
}

func TestCommAvoidingStrategyReducesOpens(t *testing.T) {
	v, _ := makeView(t, 16, 6)
	const p = 4
	countOpens := func(strategy ReadStrategy) int64 {
		var opens int64
		_, err := mpi.Run(p, func(c *mpi.Comm) {
			spec := Spec{GhostChannels: 1, ReadStrategy: strategy}
			_, tr, _ := LoadBlock(c, v, spec)
			sum := mpi.Reduce(c, 0, []int64{tr.Opens}, mpi.SumI64)
			if c.Rank() == 0 {
				opens = sum[0]
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return opens
	}
	indep := countOpens(nil) // default independent
	ca := countOpens(CommAvoidingRead)
	// Independent: p ranks × 6 files = 24 opens. Comm-avoiding: 6 total.
	if indep != 24 {
		t.Errorf("independent opens = %d, want 24", indep)
	}
	if ca != 6 {
		t.Errorf("comm-avoiding opens = %d, want 6", ca)
	}
}

func TestCommAvoidingStrategyFallsBackOnHugeGhost(t *testing.T) {
	// 8 channels over 4 ranks → blocks of 2; ghost 3 > 2 ⇒ the halo cannot
	// be served by immediate neighbors and the strategy must fall back to
	// independent reads, still producing correct results.
	v, full := makeView(t, 8, 2)
	spec := Spec{GhostChannels: 3, ReadStrategy: CommAvoidingRead}
	udf := func(s *Stencil) float64 { return s.At(0, -3) + s.At(0, 3) }
	var want *dasf.Array2D
	_, err := mpi.Run(1, func(c *mpi.Comm) {
		res := Apply(c, v, Spec{GhostChannels: 3}, udf)
		want = Gather(c, full.Channels, res)
	})
	if err != nil {
		t.Fatal(err)
	}
	var got *dasf.Array2D
	var opens int64
	_, err = mpi.Run(4, func(c *mpi.Comm) {
		res := Apply(c, v, spec, udf)
		sum := mpi.Reduce(c, 0, []int64{res.ReadTrace.Opens}, mpi.SumI64)
		_ = sum
		if out := Gather(c, full.Channels, res); out != nil {
			got = out
		}
		if c.Rank() == 0 {
			opens = res.ReadTrace.Opens
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = opens
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("fallback path differs at %d", i)
		}
	}
}

func TestCommAvoidingStrategyMoreRanksThanChannels(t *testing.T) {
	v, full := makeView(t, 3, 2)
	var got *dasf.Array2D
	_, err := mpi.Run(6, func(c *mpi.Comm) {
		res := Apply(c, v, Spec{GhostChannels: 1, ReadStrategy: CommAvoidingRead}, identityUDF)
		if out := Gather(c, full.Channels, res); out != nil {
			got = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Data {
		if got.Data[i] != full.Data[i] {
			t.Fatalf("overprovisioned comm-avoiding differs at %d", i)
		}
	}
}
