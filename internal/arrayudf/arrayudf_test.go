package arrayudf

import (
	"math"
	"testing"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
	"dassa/internal/dass"
	"dassa/internal/mpi"
)

// makeView writes a small synthetic series and opens it as a VCA view.
func makeView(t *testing.T, channels, files int) (*dass.View, *dasf.Array2D) {
	t.Helper()
	dir := t.TempDir()
	cfg := dasgen.Config{
		Channels: channels, SampleRate: 40, FileSeconds: 2, NumFiles: files,
		Seed: 3, DType: dasf.Float64,
	}
	if _, err := dasgen.Generate(dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	cat, err := dass.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	vcaPath := dir + "/v.dasf"
	if _, err := dass.CreateVCA(vcaPath, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	v, err := dass.OpenView(vcaPath)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := v.Read()
	if err != nil {
		t.Fatal(err)
	}
	return v, full
}

func TestStencilAccess(t *testing.T) {
	a := dasf.NewArray2D(5, 10)
	for c := 0; c < 5; c++ {
		for tt := 0; tt < 10; tt++ {
			a.Set(c, tt, float64(c*100+tt))
		}
	}
	blk := Block{Data: a, ChLo: 1, ChHi: 4, Ghost: 1} // owns channels 1..3, block row 0 = channel 0
	s := blk.Stencil(1, 5)                            // owned channel 1 → global channel 2
	if got := s.Value(); got != 205 {
		t.Errorf("Value = %g, want 205", got)
	}
	if got := s.At(0, 1); got != 305 {
		t.Errorf("At(0,+1) = %g, want 305", got)
	}
	if got := s.At(-2, -1); got != 103 {
		t.Errorf("At(-2,-1) = %g, want 103", got)
	}
	// Clamping at edges.
	if got := s.At(-100, 0); got != 200 {
		t.Errorf("time clamp = %g, want 200", got)
	}
	if got := s.At(0, +100); got != 405 {
		t.Errorf("channel clamp = %g, want 405", got)
	}
	w := s.Window(-2, 2, 0)
	want := []float64{203, 204, 205, 206, 207}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("Window[%d] = %g, want %g", i, w[i], want[i])
		}
	}
	// Window clamped at the start of the series.
	s2 := blk.Stencil(0, 0)
	w2 := s2.Window(-3, 0, 0)
	for i, want := range []float64{100, 100, 100, 100} {
		if w2[i] != want {
			t.Errorf("clamped Window[%d] = %g, want %g", i, w2[i], want)
		}
	}
	if row := s.Row(0); len(row) != 10 || row[5] != 205 {
		t.Error("Row access broken")
	}
	if s.T() != 5 || s.Channel() != 1 || s.Samples() != 10 {
		t.Error("position accessors broken")
	}
}

func TestSpecOutSamples(t *testing.T) {
	if got := (Spec{}).OutSamples(100); got != 100 {
		t.Errorf("stride 0 OutSamples = %d", got)
	}
	if got := (Spec{TimeStride: 10}).OutSamples(100); got != 10 {
		t.Errorf("stride 10 OutSamples = %d", got)
	}
	if got := (Spec{TimeStride: 7}).OutSamples(100); got != 15 {
		t.Errorf("stride 7 OutSamples = %d, want 15", got)
	}
}

// identityUDF lets us verify partition plumbing exactly.
func identityUDF(s *Stencil) float64 { return s.Value() }

func TestApplyIdentityMatchesInput(t *testing.T) {
	v, full := makeView(t, 10, 3)
	for _, p := range []int{1, 2, 3, 7} {
		var got *dasf.Array2D
		_, err := mpi.Run(p, func(c *mpi.Comm) {
			res := Apply(c, v, Spec{}, identityUDF)
			if out := Gather(c, full.Channels, res); out != nil {
				got = out
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Channels != full.Channels || got.Samples != full.Samples {
			t.Fatalf("p=%d: shape %d×%d", p, got.Channels, got.Samples)
		}
		for i := range full.Data {
			if got.Data[i] != full.Data[i] {
				t.Fatalf("p=%d: identity Apply differs at %d", p, i)
			}
		}
	}
}

func TestApplyGhostZonesCrossRanks(t *testing.T) {
	// A UDF reading ±2 channels away must produce identical results no
	// matter how many ranks the array is split across — the ghost zones do
	// their job exactly when this holds.
	v, _ := makeView(t, 12, 2)
	spec := Spec{GhostChannels: 2}
	udf := func(s *Stencil) float64 {
		return s.At(0, -2) + s.At(0, 2) + 0.5*s.Value()
	}
	var ref *dasf.Array2D
	nch, _ := v.Shape()
	for _, p := range []int{1, 3, 5, 12} {
		var got *dasf.Array2D
		_, err := mpi.Run(p, func(c *mpi.Comm) {
			res := Apply(c, v, spec, udf)
			if out := Gather(c, nch, res); out != nil {
				got = out
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("p=%d: ghost-zone result differs from p=1 at %d", p, i)
			}
		}
	}
}

func TestApplyTimeStride(t *testing.T) {
	v, full := makeView(t, 4, 2)
	spec := Spec{TimeStride: 5}
	var got *dasf.Array2D
	_, err := mpi.Run(2, func(c *mpi.Comm) {
		res := Apply(c, v, spec, identityUDF)
		if out := Gather(c, full.Channels, res); out != nil {
			got = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wantT := spec.OutSamples(full.Samples)
	if got.Samples != wantT {
		t.Fatalf("output samples = %d, want %d", got.Samples, wantT)
	}
	for c := 0; c < full.Channels; c++ {
		for i := 0; i < wantT; i++ {
			if got.At(c, i) != full.At(c, i*5) {
				t.Fatalf("strided output (%d,%d) wrong", c, i)
			}
		}
	}
}

func TestApplyRows(t *testing.T) {
	v, full := makeView(t, 6, 2)
	// RowUDF: first 3 samples of each channel, negated.
	udf := func(s *Stencil) []float64 {
		row := s.Row(0)
		return []float64{-row[0], -row[1], -row[2]}
	}
	for _, p := range []int{1, 2, 4} {
		var got *dasf.Array2D
		_, err := mpi.Run(p, func(c *mpi.Comm) {
			res := ApplyRows(c, v, Spec{}, 3, udf)
			if out := Gather(c, full.Channels, res); out != nil {
				got = out
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < full.Channels; c++ {
			for i := 0; i < 3; i++ {
				if got.At(c, i) != -full.At(c, i) {
					t.Fatalf("p=%d: ApplyRows (%d,%d) = %g, want %g",
						p, c, i, got.At(c, i), -full.At(c, i))
				}
			}
		}
	}
}

func TestApplyRowsWrongLengthPanics(t *testing.T) {
	v, _ := makeView(t, 4, 1)
	_, err := mpi.Run(1, func(c *mpi.Comm) {
		ApplyRows(c, v, Spec{}, 5, func(s *Stencil) []float64 {
			return []float64{1} // wrong length
		})
	})
	if err == nil {
		t.Fatal("wrong row length should abort")
	}
}

func TestMoreRanksThanChannels(t *testing.T) {
	v, full := makeView(t, 3, 1)
	var got *dasf.Array2D
	_, err := mpi.Run(8, func(c *mpi.Comm) {
		res := Apply(c, v, Spec{GhostChannels: 1}, identityUDF)
		if out := Gather(c, full.Channels, res); out != nil {
			got = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Data {
		if got.Data[i] != full.Data[i] {
			t.Fatalf("overprovisioned world differs at %d", i)
		}
	}
}

func TestLoadBlockTraceCountsPerRank(t *testing.T) {
	v, _ := makeView(t, 8, 4)
	var localOpens, totalOpens int64
	_, err := mpi.Run(4, func(c *mpi.Comm) {
		_, tr, _ := LoadBlock(c, v, Spec{})
		sum := mpi.Reduce(c, 0, []int64{tr.Opens}, mpi.SumI64)
		if c.Rank() == 0 {
			localOpens = tr.Opens
			totalOpens = sum[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// LoadBlock's trace is per-rank: each rank opens each of the 4 member
	// files once; globally that is the O(p×n) independent-read pattern.
	if localOpens != 4 {
		t.Errorf("rank-local opens = %d, want 4", localOpens)
	}
	if totalOpens != 16 {
		t.Errorf("total opens = %d, want 16", totalOpens)
	}
}

func TestApplyAgainstDirectComputation(t *testing.T) {
	// Three-point moving average (the paper's introductory example).
	v, full := makeView(t, 5, 2)
	udf := func(s *Stencil) float64 {
		return (s.At(-1, 0) + s.At(0, 0) + s.At(1, 0)) / 3
	}
	var got *dasf.Array2D
	_, err := mpi.Run(3, func(c *mpi.Comm) {
		res := Apply(c, v, Spec{}, udf)
		if out := Gather(c, full.Channels, res); out != nil {
			got = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < full.Channels; c++ {
		for tt := 1; tt < full.Samples-1; tt++ {
			want := (full.At(c, tt-1) + full.At(c, tt) + full.At(c, tt+1)) / 3
			if d := math.Abs(got.At(c, tt) - want); d > 1e-12 {
				t.Fatalf("moving average (%d,%d) off by %g", c, tt, d)
			}
		}
		// Edges clamp.
		wantEdge := (full.At(c, 0) + full.At(c, 0) + full.At(c, 1)) / 3
		if math.Abs(got.At(c, 0)-wantEdge) > 1e-12 {
			t.Fatalf("clamped edge wrong on channel %d", c)
		}
	}
}
