package arrayudf

import (
	"fmt"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/dass"
	"dassa/internal/mpi"
	"dassa/internal/obs"
	"dassa/internal/pfs"
)

// CommAvoidingRead combines the paper's two contributions in one path:
// blocks are loaded with the communication-avoiding VCA reader (O(files)
// whole-file reads + all-to-all, instead of O(ranks×files) independent
// requests), and the stencil's ghost channels are then filled by a halo
// exchange with the neighboring ranks — one message per boundary instead
// of re-reading boundary channels from disk. Use it as Spec.ReadStrategy
// or haee.Config.ReadStrategy.
//
// If the nominal ghost width exceeds the smallest partition (tiny blocks
// on a huge world), a halo would have to traverse multiple ranks; the
// strategy then falls back to independent reads. The branch is decided
// from globally agreed quantities, so all ranks take it together.
func CommAvoidingRead(c *mpi.Comm, v *dass.View, chLo, chHi int, policy dass.FailPolicy) (*dasf.Array2D, pfs.Trace, *dass.QualityReport) {
	nch, nt := v.Shape()
	p := c.Size()
	rank := c.Rank()
	ownLo, ownHi := dass.Partition(nch, p, rank)
	ghostLo := ownLo - chLo // rows wanted below my block (edge-clamped)
	ghostHi := chHi - ownHi // rows wanted above my block (edge-clamped)
	if ghostLo < 0 || ghostHi < 0 {
		panic(fmt.Sprintf("arrayudf: comm-avoiding strategy expects a ghost-extended request around [%d,%d), got [%d,%d)",
			ownLo, ownHi, chLo, chHi))
	}
	// The nominal (unclamped) ghost width, agreed across the world.
	nominalV := mpi.Allreduce(c, []int64{int64(max(ghostLo, ghostHi))}, mpi.MaxI64)
	nominal := int(nominalV[0])
	if minBlock := nch / p; minBlock == 0 || nominal > minBlock {
		return IndependentRead(c, v, chLo, chHi, policy)
	}

	blk, tr, q := dass.ReadCommAvoidingPolicy(c, v, policy)
	own := blk.Data // my partition's rows over the full time extent

	out := dasf.NewArray2D(chHi-chLo, nt)
	for ch := ownLo; ch < ownHi; ch++ {
		copy(out.Row(ch-chLo), own.Row(ch-ownLo))
	}
	if nominal == 0 || p == 1 {
		return out, tr, q
	}

	const (
		tagDown = 101 // payload travels to the next rank (their low ghost)
		tagUp   = 102 // payload travels to the previous rank (their high ghost)
	)
	// The halo messages are the exchange cost this strategy adds on top of
	// the reader's all-to-all; the recorder folds both into PhaseExchange.
	tHalo := time.Now()
	defer func() { v.ObserveSpan(rank, obs.PhaseExchange, time.Since(tHalo)) }()
	width := ownHi - ownLo
	send := min(nominal, width)
	// Everyone with a neighbor sends `send` boundary rows; receivers keep
	// the edge-adjacent subset their (clamped) ghost actually needs.
	if rank+1 < p {
		rows := make([]float64, 0, send*nt)
		for ch := ownHi - send; ch < ownHi; ch++ {
			rows = append(rows, own.Row(ch-ownLo)...)
		}
		mpi.Send(c, rank+1, tagDown, rows)
	}
	if rank > 0 {
		rows := make([]float64, 0, send*nt)
		for ch := ownLo; ch < ownLo+send; ch++ {
			rows = append(rows, own.Row(ch-ownLo)...)
		}
		mpi.Send(c, rank-1, tagUp, rows)
	}
	if rank > 0 {
		rows := mpi.Recv[float64](c, rank-1, tagDown)
		nrows := len(rows) / nt
		// The payload's last row is channel ownLo-1; keep my ghostLo rows.
		for i := 0; i < ghostLo; i++ {
			srcRow := nrows - ghostLo + i
			dstCh := ownLo - ghostLo + i
			copy(out.Row(dstCh-chLo), rows[srcRow*nt:(srcRow+1)*nt])
		}
	}
	if rank+1 < p {
		rows := mpi.Recv[float64](c, rank+1, tagUp)
		// The payload's first row is channel ownHi; keep my ghostHi rows.
		for i := 0; i < ghostHi; i++ {
			dstCh := ownHi + i
			copy(out.Row(dstCh-chLo), rows[i*nt:(i+1)*nt])
		}
	}
	// NaN-masked gaps ride the halo exchange like any other rows, so ghost
	// channels of a degraded neighbor are masked too.
	return out, tr, q
}
