// Package arrayudf reimplements ArrayUDF (Dong et al., HPDC'17), the
// framework DASSA builds on: a distributed 2D array abstraction where a
// user-defined function expressed over a Stencil — a cell plus its
// structural neighborhood — is applied to every cell in parallel, with
// ghost zones sized to the stencil's reach so execution needs no mid-run
// communication. This package provides the original pure-MPI execution
// model (one process per core); package haee adds the paper's hybrid
// MPI+threads model on top of the same primitives.
package arrayudf

import (
	"fmt"
	"time"

	"dassa/internal/dasf"
	"dassa/internal/dass"
	"dassa/internal/mpi"
	"dassa/internal/obs"
	"dassa/internal/pfs"
)

// Stencil is the UDF's window onto the distributed array: a current cell
// (channel, time) plus relative access to its neighborhood, like the
// paper's S(offset) notation. Out-of-range accesses clamp to the array
// edge, the usual boundary policy for seismic windows.
type Stencil struct {
	block *dasf.Array2D // local channels (with ghosts) × full time extent
	chOff int           // row index of "channel 0 of this rank's block" inside block
	ch    int           // current cell: rank-relative channel (0-based, ghost-free)
	t     int           // current cell: time index
}

// Value returns the current cell's value, S(0) in the paper.
func (s *Stencil) Value() float64 { return s.At(0, 0) }

// At returns the value at time offset dt and channel offset dch from the
// current cell, clamping at the block's edges.
func (s *Stencil) At(dt, dch int) float64 {
	ch := clamp(s.chOff+s.ch+dch, 0, s.block.Channels-1)
	t := clamp(s.t+dt, 0, s.block.Samples-1)
	return s.block.At(ch, t)
}

// Window copies the samples S(tLo:tHi, dch) — time offsets [tLo, tHi]
// inclusive on the channel dch away from the current one — into a new
// slice, clamping at edges. This is the access pattern of the paper's
// Algorithm 2 (W = S(−M:M, 0), W1 = S(l−M:l+M, +K)).
func (s *Stencil) Window(tLo, tHi, dch int) []float64 {
	if tHi < tLo {
		panic(fmt.Sprintf("arrayudf: Window range [%d,%d] inverted", tLo, tHi))
	}
	out := make([]float64, tHi-tLo+1)
	s.WindowInto(out, tLo, tHi, dch)
	return out
}

// WindowInto is Window writing into dst (len(dst) == tHi-tLo+1) — the
// allocation-free form hot UDFs use with a scratch-owned buffer. Windows
// entirely inside the time extent take a straight copy; only edge windows
// pay the per-sample clamp.
func (s *Stencil) WindowInto(dst []float64, tLo, tHi, dch int) {
	if tHi < tLo {
		panic(fmt.Sprintf("arrayudf: Window range [%d,%d] inverted", tLo, tHi))
	}
	if len(dst) != tHi-tLo+1 {
		panic(fmt.Sprintf("arrayudf: WindowInto dst length %d, want %d", len(dst), tHi-tLo+1))
	}
	ch := clamp(s.chOff+s.ch+dch, 0, s.block.Channels-1)
	row := s.block.Row(ch)
	lo := s.t + tLo
	if lo >= 0 && lo+len(dst) <= s.block.Samples {
		copy(dst, row[lo:lo+len(dst)])
		return
	}
	for i := range dst {
		dst[i] = row[clamp(lo+i, 0, s.block.Samples-1)]
	}
}

// Row returns the full time series of the channel dch away from the
// current cell, without copying. Callers must not modify it.
func (s *Stencil) Row(dch int) []float64 {
	ch := clamp(s.chOff+s.ch+dch, 0, s.block.Channels-1)
	return s.block.Row(ch)
}

// T returns the current cell's time index and Channel its rank-relative
// channel index.
func (s *Stencil) T() int { return s.t }

// Channel returns the current cell's channel index relative to the rank's
// block start.
func (s *Stencil) Channel() int { return s.ch }

// SetPos repositions the stencil at owned channel ch and time index t, so
// a thread can reuse one stencil across its whole iteration range instead
// of allocating one per cell.
func (s *Stencil) SetPos(ch, t int) { s.ch, s.t = ch, t }

// Samples returns the time extent of the underlying array.
func (s *Stencil) Samples() int { return s.block.Samples }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// PointUDF maps a stencil to one output value — the f in B = Apply(A, f).
type PointUDF func(s *Stencil) float64

// RowUDF maps a channel's stencil to a fixed-length output row (e.g. a
// cross-correlation series), the shape Algorithm 3 produces.
type RowUDF func(s *Stencil) []float64

// Spec configures an Apply execution.
type Spec struct {
	// GhostChannels is the stencil's channel reach (K in Algorithm 2): each
	// rank's block is padded with this many channels on each side, so no
	// communication happens during execution.
	GhostChannels int
	// TimeStride evaluates the UDF every TimeStride samples (window hop).
	// 0 or 1 means every sample.
	TimeStride int
	// ReadStrategy selects how blocks are loaded; nil means each rank reads
	// its own extended block independently (the original ArrayUDF pattern).
	ReadStrategy ReadStrategy
	// FailPolicy decides whether a member file that stays bad after retries
	// aborts the world (default) or degrades into NaN-masked gaps plus a
	// QualityReport.
	FailPolicy dass.FailPolicy
}

func (sp Spec) stride() int {
	if sp.TimeStride <= 0 {
		return 1
	}
	return sp.TimeStride
}

// OutSamples returns the output time extent for an input extent nt.
func (sp Spec) OutSamples(nt int) int {
	return (nt + sp.stride() - 1) / sp.stride()
}

// ReadStrategy loads one rank's channel block [chLo, chHi) (ghost-extended
// bounds, view-relative) over the view's full time extent. The policy says
// what to do with members that stay bad after retries; the QualityReport
// (non-nil on rank 0 under dass.FailDegrade) accounts for what was lost.
type ReadStrategy func(c *mpi.Comm, v *dass.View, chLo, chHi int, policy dass.FailPolicy) (*dasf.Array2D, pfs.Trace, *dass.QualityReport)

// IndependentRead is the default strategy: every rank issues its own
// hyperslab reads against the view (O(p×files) requests on a VCA). An
// empty channel range returns an empty array without touching storage.
func IndependentRead(c *mpi.Comm, v *dass.View, chLo, chHi int, policy dass.FailPolicy) (*dasf.Array2D, pfs.Trace, *dass.QualityReport) {
	var data *dasf.Array2D
	var local pfs.Trace
	var gaps []dass.Gap
	if chLo >= chHi {
		_, nt := v.Shape()
		data = dasf.NewArray2D(0, nt)
	} else {
		sub, err := v.SubsetChannels(chLo, chHi)
		if err != nil {
			panic(fmt.Errorf("arrayudf: ghost-extended subset: %w", err))
		}
		t0 := time.Now()
		d, tr, subGaps, err := sub.ReadPolicy(policy)
		v.ObserveSpan(c.Rank(), obs.PhaseRead, time.Since(t0))
		if err != nil {
			panic(fmt.Errorf("arrayudf: block read: %w", err))
		}
		data = d
		local = tr
		// Lift sub-view gap channels into view coordinates for the report.
		for _, g := range subGaps {
			g.ChLo += chLo
			g.ChHi += chLo
			gaps = append(gaps, g)
		}
	}
	if policy != dass.FailDegrade {
		return data, local, nil
	}
	// Collective: every rank participates, empty partitions included.
	return data, local, dass.GatherQuality(c, v, gaps, local)
}

// Block is one rank's loaded portion of the array, ghost channels included.
type Block struct {
	Data  *dasf.Array2D
	ChLo  int // view-relative first owned (non-ghost) channel
	ChHi  int // view-relative past-the-end owned channel
	Ghost int // ghost width actually applied below ChLo
}

// LoadBlock reads the calling rank's ghost-extended channel block. The
// strategy runs on every rank — including ranks whose partition is empty —
// because strategies may contain collective operations. The QualityReport
// is non-nil only on rank 0 under dass.FailDegrade.
func LoadBlock(c *mpi.Comm, v *dass.View, spec Spec) (Block, pfs.Trace, *dass.QualityReport) {
	nch, _ := v.Shape()
	lo, hi := dass.Partition(nch, c.Size(), c.Rank())
	gLo := max(lo-spec.GhostChannels, 0)
	gHi := min(hi+spec.GhostChannels, nch)
	if lo >= hi {
		// Empty partition: request an empty range so the strategy still
		// participates in any collectives without reading data.
		gLo, gHi = lo, lo
	}
	blk := Block{ChLo: lo, ChHi: hi, Ghost: lo - gLo}
	read := spec.ReadStrategy
	if read == nil {
		read = IndependentRead
	}
	var tr pfs.Trace
	var q *dass.QualityReport
	blk.Data, tr, q = read(c, v, gLo, gHi, spec.FailPolicy)
	if lo >= hi {
		blk.Data = nil
	}
	return blk, tr, q
}

// stencilFor builds the stencil for owned channel ch (rank-relative).
func (b Block) stencilFor() *Stencil {
	return &Stencil{block: b.Data, chOff: b.Ghost}
}

// Stencil returns a fresh stencil positioned at owned channel ch (ghost-
// free, rank-relative) and time index t. Each thread of a multithreaded
// Apply builds its own stencils, so evaluation needs no locking.
func (b Block) Stencil(ch, t int) *Stencil {
	return &Stencil{block: b.Data, chOff: b.Ghost, ch: ch, t: t}
}

// OwnedChannels returns how many channels the block owns (ghosts excluded).
func (b Block) OwnedChannels() int { return b.ChHi - b.ChLo }

// Result is a rank's output block from Apply: owned channels × output
// samples, plus the I/O trace (reduced to rank 0).
type Result struct {
	Data *dasf.Array2D
	ChLo int
	ChHi int
	// ReadTrace is the global read trace (rank 0 only).
	ReadTrace pfs.Trace
	// Quality accounts for degraded reads (rank 0 only, under
	// dass.FailDegrade; nil otherwise).
	Quality *dass.QualityReport
}

// Apply is the original ArrayUDF execution: every rank loads its
// ghost-extended block and evaluates udf at every (owned channel, strided
// time) cell sequentially. The result keeps the rank's rows; use
// dass.GatherBlocks-style collection or WriteResult to assemble.
func Apply(c *mpi.Comm, v *dass.View, spec Spec, udf PointUDF) Result {
	blk, tr, q := LoadBlock(c, v, spec)
	_, nt := v.Shape()
	outT := spec.OutSamples(nt)
	own := blk.OwnedChannels()
	res := Result{ChLo: blk.ChLo, ChHi: blk.ChHi, ReadTrace: tr, Quality: q, Data: dasf.NewArray2D(max(own, 0), outT)}
	if own <= 0 {
		return res
	}
	st := blk.stencilFor()
	stride := spec.stride()
	for ch := 0; ch < own; ch++ {
		// Channel rows are the sequential engine's tile boundary: a
		// cancelled view aborts between rows, and the panic unwinds
		// through mpi.Run as the context's error.
		if err := v.Context().Err(); err != nil {
			panic(fmt.Errorf("arrayudf: apply: %w", err))
		}
		st.ch = ch
		row := res.Data.Row(ch)
		for i := 0; i < outT; i++ {
			st.t = i * stride
			row[i] = udf(st)
		}
	}
	return res
}

// ApplyRows is Apply for RowUDFs: udf runs once per owned channel and
// returns a row of exactly rowLen values.
func ApplyRows(c *mpi.Comm, v *dass.View, spec Spec, rowLen int, udf RowUDF) Result {
	blk, tr, q := LoadBlock(c, v, spec)
	own := blk.OwnedChannels()
	res := Result{ChLo: blk.ChLo, ChHi: blk.ChHi, ReadTrace: tr, Quality: q, Data: dasf.NewArray2D(max(own, 0), rowLen)}
	if own <= 0 {
		return res
	}
	st := blk.stencilFor()
	for ch := 0; ch < own; ch++ {
		if err := v.Context().Err(); err != nil {
			panic(fmt.Errorf("arrayudf: apply rows: %w", err))
		}
		st.ch = ch
		st.t = 0
		row := udf(st)
		if len(row) != rowLen {
			panic(fmt.Sprintf("arrayudf: RowUDF returned %d values, declared %d", len(row), rowLen))
		}
		copy(res.Data.Row(ch), row)
	}
	return res
}

// Gather assembles the per-rank results into the full output on rank 0
// (nil on other ranks).
func Gather(c *mpi.Comm, totalChannels int, res Result) *dasf.Array2D {
	var flat []float64
	if res.Data != nil {
		flat = res.Data.Data
	}
	parts := mpi.Gather(c, 0, flat)
	if c.Rank() != 0 {
		return nil
	}
	outT := 0
	if res.Data != nil {
		outT = res.Data.Samples
	}
	// All ranks share the output width; rank 0's is authoritative.
	out := dasf.NewArray2D(totalChannels, outT)
	for rank, part := range parts {
		lo, hi := dass.Partition(totalChannels, c.Size(), rank)
		for ch := lo; ch < hi; ch++ {
			copy(out.Row(ch), part[(ch-lo)*outT:(ch-lo+1)*outT])
		}
	}
	return out
}
