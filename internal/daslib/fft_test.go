package daslib

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// dftNaive is the O(n²) reference DFT.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = acc
	}
	return out
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Both power-of-two (radix-2) and arbitrary (Bluestein) lengths.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 60, 64, 100, 127, 128} {
		x := randComplex(rng, n)
		got := FFT(x)
		want := dftNaive(x)
		if d := maxAbsDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: FFT differs from naive DFT by %g", n, d)
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1,0,0,0] is all ones.
	got := FFT([]complex128{1, 0, 0, 0})
	for i, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse FFT[%d] = %v", i, v)
		}
	}
	// FFT of a pure tone has a single spike.
	const n = 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*5*float64(i)/n))
	}
	spec := FFT(x)
	for k, v := range spec {
		mag := cmplx.Abs(v)
		if k == 5 && math.Abs(mag-n) > 1e-9 {
			t.Errorf("tone bin magnitude = %g, want %d", mag, n)
		}
		if k != 5 && mag > 1e-9 {
			t.Errorf("leakage at bin %d: %g", k, mag)
		}
	}
}

func TestIFFTInvertsFFTProperty(t *testing.T) {
	f := func(re, im []float64) bool {
		n := min(len(re), len(im))
		if n == 0 {
			return true
		}
		if n > 200 {
			n = 200
		}
		x := make([]complex128, n)
		for i := range x {
			if math.IsNaN(re[i]) || math.IsInf(re[i], 0) || math.Abs(re[i]) > 1e100 ||
				math.IsNaN(im[i]) || math.IsInf(im[i], 0) || math.Abs(im[i]) > 1e100 {
				return true // summing such values overflows; not a transform bug
			}
			x[i] = complex(re[i], im[i])
		}
		back := IFFT(FFT(x))
		scale := 0.0
		for _, v := range x {
			scale = math.Max(scale, cmplx.Abs(v))
		}
		return maxAbsDiff(back, x) <= 1e-9*(1+scale)*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// sum |x|² == (1/n) sum |X|².
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 300 {
			vals = vals[:300]
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		spec := FFTReal(vals)
		var et, ef float64
		for _, v := range vals {
			et += v * v
		}
		for _, v := range spec {
			ef += real(v)*real(v) + imag(v)*imag(v)
		}
		ef /= float64(len(vals))
		return math.Abs(et-ef) <= 1e-6*(1+et)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{16, 23} {
		x := randComplex(rng, n)
		y := randComplex(rng, n)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = 2*x[i] + 3*y[i]
		}
		fx, fy, fs := FFT(x), FFT(y), FFT(sum)
		for i := range fs {
			want := 2*fx[i] + 3*fy[i]
			if cmplx.Abs(fs[i]-want) > 1e-9 {
				t.Fatalf("n=%d: linearity violated at bin %d", n, i)
			}
		}
	}
}

func TestFFTRealConjugateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 48)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec := FFTReal(x)
	n := len(x)
	for k := 1; k < n; k++ {
		if d := cmplx.Abs(spec[k] - cmplx.Conj(spec[n-k])); d > 1e-9 {
			t.Errorf("conjugate symmetry violated at bin %d: %g", k, d)
		}
	}
	back := IFFTReal(spec)
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-9 {
			t.Errorf("IFFTReal round trip differs at %d", i)
		}
	}
}

func TestFFTFreqs(t *testing.T) {
	got := FFTFreqs(4, 100)
	want := []float64{0, 25, 50 - 100, -25} // [0, 25, -50, -25]
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("FFTFreqs(4,100)[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	got = FFTFreqs(5, 10)
	want = []float64{0, 2, 4, -4, -2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("FFTFreqs(5,10)[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if FFTFreqs(0, 10) != nil {
		t.Error("FFTFreqs(0) should be nil")
	}
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if got := FFT(nil); len(got) != 0 {
		t.Error("FFT(nil) should be empty")
	}
	got := FFT([]complex128{complex(3, -2)})
	if len(got) != 1 || got[0] != complex(3, -2) {
		t.Errorf("FFT singleton = %v", got)
	}
	if got := IFFT([]complex128{complex(4, 0)}); got[0] != complex(4, 0) {
		t.Errorf("IFFT singleton = %v", got)
	}
}

func BenchmarkFFTPow2_4096(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(rng, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein_4095(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(rng, 4095)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
