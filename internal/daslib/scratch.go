package daslib

import (
	"sync"

	"dassa/internal/obs"
)

// Scratch is a reusable arena of float64 and complex128 work buffers for the
// destination-passing kernel variants (FFTInto, FiltFiltInto, XCorrInto,
// ...). One Scratch belongs to one goroutine at a time: the hybrid engine
// checks one out per worker thread, every kernel call borrows buffers from
// it and returns them, and after the first window of a run every borrow is
// served from memory the previous window already paid for — the per-channel
// inner loop allocates nothing.
//
// Ownership discipline (DESIGN.md §14): a buffer obtained from Complex/Float
// is valid until the matching Release* call or until the Scratch is returned
// to the pool, whichever comes first. Results that outlive the kernel call
// must be copied out of scratch-owned memory before release. A nil *Scratch
// is valid everywhere and simply allocates fresh buffers (Release* becomes a
// no-op), so the Into kernels work unchanged without an arena.
type Scratch struct {
	c [][]complex128
	f [][]float64
}

// Scratch reuse telemetry: how often a borrow was served from the arena vs
// forced a fresh allocation, and how many bytes of garbage the arena saved.
// Exposed on the default registry so dassd's /metrics shows whether the hot
// path is actually running allocation-free.
var (
	scratchReuses = obs.Default().Counter("dassa_daslib_scratch_reuse_total",
		"Scratch buffer borrows served from a pooled buffer")
	scratchAllocs = obs.Default().Counter("dassa_daslib_scratch_alloc_total",
		"Scratch buffer borrows that had to allocate fresh memory")
	scratchBytesSaved = obs.Default().Counter("dassa_daslib_scratch_saved_bytes_total",
		"Bytes of allocation avoided by scratch buffer reuse")
)

// NewScratch returns an empty arena.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool recycles whole arenas across engine runs and across the thin
// allocating wrappers (XCorr, FiltFilt, ...), so even legacy call sites stop
// paying for intermediate buffers after warm-up.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// GetScratch checks an arena out of the process-wide pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns an arena to the pool. The caller must not use s, or any
// buffer borrowed from it, afterwards.
func PutScratch(s *Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}

// Complex borrows a zeroed complex128 buffer of length n.
func (s *Scratch) Complex(n int) []complex128 {
	if s != nil {
		for i, b := range s.c {
			if cap(b) >= n {
				last := len(s.c) - 1
				s.c[i] = s.c[last]
				s.c[last] = nil
				s.c = s.c[:last]
				scratchReuses.Inc()
				scratchBytesSaved.Add(int64(n) * 16)
				b = b[:n]
				clear(b)
				return b
			}
		}
	}
	scratchAllocs.Inc()
	return make([]complex128, n)
}

// Float borrows a zeroed float64 buffer of length n.
func (s *Scratch) Float(n int) []float64 {
	if s != nil {
		for i, b := range s.f {
			if cap(b) >= n {
				last := len(s.f) - 1
				s.f[i] = s.f[last]
				s.f[last] = nil
				s.f = s.f[:last]
				scratchReuses.Inc()
				scratchBytesSaved.Add(int64(n) * 8)
				b = b[:n]
				clear(b)
				return b
			}
		}
	}
	scratchAllocs.Inc()
	return make([]float64, n)
}

// ReleaseComplex returns a buffer borrowed with Complex to the arena.
func (s *Scratch) ReleaseComplex(b []complex128) {
	if s != nil && cap(b) > 0 {
		s.c = append(s.c, b)
	}
}

// ReleaseFloat returns a buffer borrowed with Float to the arena.
func (s *Scratch) ReleaseFloat(b []float64) {
	if s != nil && cap(b) > 0 {
		s.f = append(s.f, b)
	}
}
