package daslib

import (
	"fmt"
	"math"
)

// XCorr computes the full linear cross-correlation of a and b via FFT:
// out[k] = sum_n a[n+k-(len(b)-1)] · b[n], for lags k-(len(b)-1) in
// [-(len(b)-1), len(a)-1], matching MATLAB's xcorr(a, b) ordering
// (negative lags first). Runs in O((n+m) log(n+m)).
func XCorr(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	m := NextPow2(n)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	// Correlation = convolution with time-reversed b.
	for i, v := range b {
		fb[len(b)-1-i] = complex(v, 0)
	}
	fftPow2(fa, false)
	fftPow2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	inv := IFFT(fa)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(inv[i])
	}
	return out
}

// XCorrNormalized is XCorr scaled by 1/√(E_a·E_b), so a perfect alignment
// of identical signals peaks at 1 (the 'coeff' option of MATLAB's xcorr).
func XCorrNormalized(a, b []float64) []float64 {
	out := XCorr(a, b)
	var ea, eb float64
	for _, v := range a {
		ea += v * v
	}
	for _, v := range b {
		eb += v * v
	}
	if ea == 0 || eb == 0 {
		return out
	}
	norm := 1 / math.Sqrt(ea*eb)
	for i := range out {
		out[i] *= norm
	}
	return out
}

// CrossSpectrum returns FFT(a) ⊙ conj(FFT(b)) zero-padded to a power of two
// ≥ len(a)+len(b)-1 — the frequency-domain cross-correlation kernel used by
// ambient-noise interferometry.
func CrossSpectrum(a, b []float64) ([]complex128, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("daslib: CrossSpectrum needs equal lengths, got %d and %d", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, fmt.Errorf("daslib: CrossSpectrum needs non-empty input")
	}
	m := NextPow2(2*len(a) - 1)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i := range a {
		fa[i] = complex(a[i], 0)
		fb[i] = complex(b[i], 0)
	}
	fftPow2(fa, false)
	fftPow2(fb, false)
	for i := range fa {
		// fa · conj(fb)
		ar, ai := real(fa[i]), imag(fa[i])
		br, bi := real(fb[i]), imag(fb[i])
		fa[i] = complex(ar*br+ai*bi, ai*br-ar*bi)
	}
	return fa, nil
}
