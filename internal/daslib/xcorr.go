package daslib

import (
	"fmt"
	"math"
)

// XCorrLen returns the number of lags XCorr produces for inputs of length
// na and nb: na+nb-1.
func XCorrLen(na, nb int) int {
	if na == 0 || nb == 0 {
		return 0
	}
	return na + nb - 1
}

// XCorr computes the full linear cross-correlation of a and b via FFT:
// out[k] = sum_n a[n+k-(len(b)-1)] · b[n], for lags k-(len(b)-1) in
// [-(len(b)-1), len(a)-1], matching MATLAB's xcorr(a, b) ordering
// (negative lags first). Runs in O((n+m) log(n+m)).
//
// XCorr is a thin allocating shim over XCorrInto.
func XCorr(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, XCorrLen(len(a), len(b)))
	s := GetScratch()
	XCorrInto(out, a, b, s)
	PutScratch(s)
	return out
}

// XCorrInto is XCorr writing into dst (len XCorrLen(len(a), len(b))),
// borrowing all intermediates from s. Both spectra go through the packed
// real-input transform, so the whole correlation costs two half-size FFTs
// plus one half-size inverse — and zero allocations once s is warm.
func XCorrInto(dst, a, b []float64, s *Scratch) {
	n := XCorrLen(len(a), len(b))
	checkLen("XCorrInto dst", len(dst), n)
	if n == 0 {
		return
	}
	m := NextPow2(n)
	fa := s.Complex(m)
	rfftZeroPad(fa, a, s)
	// Correlation = convolution with time-reversed b.
	rb := s.Float(len(b))
	for i, v := range b {
		rb[len(b)-1-i] = v
	}
	fb := s.Complex(m)
	rfftZeroPad(fb, rb, s)
	s.ReleaseFloat(rb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	s.ReleaseComplex(fb)
	tmp := s.Float(m)
	IRFFTInto(tmp, fa, s)
	copy(dst, tmp[:n])
	s.ReleaseFloat(tmp)
	s.ReleaseComplex(fa)
}

// XCorrNormalized is XCorr scaled by 1/√(E_a·E_b), so a perfect alignment
// of identical signals peaks at 1 (the 'coeff' option of MATLAB's xcorr).
func XCorrNormalized(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, XCorrLen(len(a), len(b)))
	s := GetScratch()
	XCorrNormalizedInto(out, a, b, s)
	PutScratch(s)
	return out
}

// XCorrNormalizedInto is XCorrNormalized writing into dst, borrowing all
// intermediates from s.
func XCorrNormalizedInto(dst, a, b []float64, s *Scratch) {
	XCorrInto(dst, a, b, s)
	var eb float64
	for _, v := range b {
		eb += v * v
	}
	normalizeXCorr(dst, a, eb)
}

// normalizeXCorr applies the 'coeff' scaling in place given the raw
// correlation, the a series, and the precomputed energy of b. The a-energy
// summation order matches XCorrNormalized exactly so the master-reuse path
// stays bit-identical to the pairwise one.
func normalizeXCorr(dst, a []float64, eb float64) {
	var ea float64
	for _, v := range a {
		ea += v * v
	}
	if ea == 0 || eb == 0 {
		return
	}
	norm := 1 / math.Sqrt(ea*eb)
	for i := range dst {
		dst[i] *= norm
	}
}

// XCorrMaster is the precomputed frequency-domain half of a cross-
// correlation against a fixed reference series: the forward transform of
// the time-reversed, zero-padded master plus its energy. Detection
// workloads correlate every channel of every window against one master, so
// hoisting the master's FFT out of the per-channel loop removes half the
// transform work (the dead double-FFT of detect.Master.Spectrum's original
// call sites).
//
// A master is immutable after PrepareXCorrMaster and safe for concurrent
// use by many worker goroutines.
type XCorrMaster struct {
	series []float64    // the reference series (owned copy)
	energy float64      // sum of squares of series
	m      int          // transform length: NextPow2(na+len(series)-1)
	na     int          // series length the plan was built for
	spec   []complex128 // RFFT of the time-reversed series, padded to m
}

// PrepareXCorrMaster builds the reusable spectrum for correlating series of
// length na against master b. Returns nil for empty inputs.
func PrepareXCorrMaster(b []float64, na int) *XCorrMaster {
	if len(b) == 0 || na <= 0 {
		return nil
	}
	mst := &XCorrMaster{
		series: append([]float64(nil), b...),
		na:     na,
		m:      NextPow2(XCorrLen(na, len(b))),
	}
	for _, v := range b {
		mst.energy += v * v
	}
	rb := make([]float64, len(b))
	for i, v := range b {
		rb[len(b)-1-i] = v
	}
	mst.spec = make([]complex128, mst.m)
	s := GetScratch()
	rfftZeroPad(mst.spec, rb, s)
	PutScratch(s)
	return mst
}

// Series returns the master's reference series (shared; do not modify).
func (mst *XCorrMaster) Series() []float64 { return mst.series }

// Len returns the lag count produced for a series of the planned length.
func (mst *XCorrMaster) Len() int { return XCorrLen(mst.na, len(mst.series)) }

// XCorrNormalizedInto computes XCorrNormalized(a, master) into dst (length
// XCorrLen(len(a), master length)) reusing the precomputed master spectrum.
// Series of a different length than planned fall back to the pairwise path
// (correct, just not pre-transformed).
func (mst *XCorrMaster) XCorrNormalizedInto(dst, a []float64, s *Scratch) {
	n := XCorrLen(len(a), len(mst.series))
	checkLen("XCorrMaster dst", len(dst), n)
	if n == 0 {
		return
	}
	if len(a) != mst.na || NextPow2(n) != mst.m {
		XCorrNormalizedInto(dst, a, mst.series, s)
		return
	}
	fa := s.Complex(mst.m)
	rfftZeroPad(fa, a, s)
	for i := range fa {
		fa[i] *= mst.spec[i]
	}
	tmp := s.Float(mst.m)
	IRFFTInto(tmp, fa, s)
	copy(dst, tmp[:n])
	s.ReleaseFloat(tmp)
	s.ReleaseComplex(fa)
	normalizeXCorr(dst, a, mst.energy)
}

// XCorrWithSpectrum correlates a against a prepared master, returning the
// normalized correlation — the allocating convenience over
// XCorrMaster.XCorrNormalizedInto.
func XCorrWithSpectrum(a []float64, mst *XCorrMaster) []float64 {
	if mst == nil || len(a) == 0 {
		return nil
	}
	out := make([]float64, XCorrLen(len(a), len(mst.series)))
	s := GetScratch()
	mst.XCorrNormalizedInto(out, a, s)
	PutScratch(s)
	return out
}

// CrossSpectrum returns FFT(a) ⊙ conj(FFT(b)) zero-padded to a power of two
// ≥ len(a)+len(b)-1 — the frequency-domain cross-correlation kernel used by
// ambient-noise interferometry.
func CrossSpectrum(a, b []float64) ([]complex128, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("daslib: CrossSpectrum needs equal lengths, got %d and %d", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, fmt.Errorf("daslib: CrossSpectrum needs non-empty input")
	}
	m := NextPow2(2*len(a) - 1)
	fa := make([]complex128, m)
	s := GetScratch()
	rfftZeroPad(fa, a, s)
	fb := s.Complex(m)
	rfftZeroPad(fb, b, s)
	for i := range fa {
		// fa · conj(fb)
		ar, ai := real(fa[i]), imag(fa[i])
		br, bi := real(fb[i]), imag(fb[i])
		fa[i] = complex(ar*br+ai*bi, ai*br-ar*bi)
	}
	s.ReleaseComplex(fb)
	PutScratch(s)
	return fa, nil
}
