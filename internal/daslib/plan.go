package daslib

import (
	"math"
	"math/cmplx"
	"sync"
)

// Plan holds everything size-dependent a transform of length n needs:
// the twiddle table for the power-of-two kernel and, for non-power-of-two
// lengths, the Bluestein chirp plus the precomputed forward transform of
// the chirp convolution kernel (one of the three FFTs the classic
// per-call Bluestein pays, hoisted out of the hot loop entirely).
//
// Plans are immutable and safe for concurrent use; PlanFFT caches one per
// size, so DAS pipelines that transform the same window length millions of
// times build each plan exactly once.
type Plan struct {
	n  int
	tw []complex128 // twiddles for size n (power-of-two path), else nil

	// Bluestein state (n not a power of two):
	m     int          // power-of-two convolution length ≥ 2n-1
	twm   []complex128 // twiddles for size m
	chirp []complex128 // exp(-iπ·k²/n), k in [0, n)
	bhat  []complex128 // forward FFT of the conjugate-chirp kernel, length m
}

// planCache maps transform size to its Plan. Guarded by a plain RWMutex so
// the hit path performs no interface boxing (sync.Map would allocate per
// lookup for keys ≥ 256).
var planCache = struct {
	sync.RWMutex
	m map[int]*Plan
}{m: map[int]*Plan{}}

// PlanFFT returns the (cached) plan for transforms of length n ≥ 1.
func PlanFFT(n int) *Plan {
	planCache.RLock()
	p, ok := planCache.m[n]
	planCache.RUnlock()
	if ok {
		return p
	}
	p = newPlan(n)
	planCache.Lock()
	if have, ok := planCache.m[n]; ok {
		p = have
	} else {
		planCache.m[n] = p
	}
	planCache.Unlock()
	return p
}

func newPlan(n int) *Plan {
	p := &Plan{n: n}
	if n <= 1 {
		return p
	}
	if n&(n-1) == 0 {
		p.tw = twiddles(n)
		return p
	}
	p.m = NextPow2(2*n - 1)
	p.twm = twiddles(p.m)
	// chirp[k] = exp(-iπ k²/n); k² mod 2n avoids precision loss for large k.
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		s, c := math.Sincos(-math.Pi * float64(kk) / float64(n))
		p.chirp[k] = complex(c, s)
	}
	p.bhat = make([]complex128, p.m)
	for k := 0; k < n; k++ {
		bc := cmplx.Conj(p.chirp[k])
		p.bhat[k] = bc
		if k > 0 {
			p.bhat[p.m-k] = bc
		}
	}
	fftPow2Tw(p.bhat, p.twm)
	return p
}

// Len returns the plan's transform length.
func (p *Plan) Len() int { return p.n }

// FFTInto computes the forward DFT of src into dst (both length n). dst may
// alias src. After the plan and scratch are warm the call allocates nothing.
func (p *Plan) FFTInto(dst, src []complex128, s *Scratch) {
	checkLen("FFTInto dst", len(dst), p.n)
	checkLen("FFTInto src", len(src), p.n)
	if p.n <= 1 {
		copy(dst, src)
		return
	}
	if p.tw != nil {
		if &dst[0] != &src[0] {
			copy(dst, src)
		}
		fftPow2Tw(dst, p.tw)
		return
	}
	p.bluesteinInto(dst, src, s)
}

// bluesteinInto computes an arbitrary-length DFT as a convolution of chirps,
// using the plan's precomputed kernel spectrum: two power-of-two transforms
// per call instead of the classic three.
func (p *Plan) bluesteinInto(dst, src []complex128, s *Scratch) {
	n, m := p.n, p.m
	a := s.Complex(m)
	for k := 0; k < n; k++ {
		a[k] = src[k] * p.chirp[k]
	}
	fftPow2Tw(a, p.twm)
	for i := range a {
		a[i] *= p.bhat[i]
	}
	// Inverse pow-2 FFT of a via the conjugation identity.
	for i := range a {
		a[i] = cmplx.Conj(a[i])
	}
	fftPow2Tw(a, p.twm)
	inv := 1 / float64(m)
	for k := 0; k < n; k++ {
		dst[k] = cmplx.Conj(a[k]) * complex(inv, 0) * p.chirp[k]
	}
	s.ReleaseComplex(a)
}

// IFFTInto computes the inverse DFT (1/n normalized) of src into dst (both
// length n). dst may alias src.
func (p *Plan) IFFTInto(dst, src []complex128, s *Scratch) {
	checkLen("IFFTInto dst", len(dst), p.n)
	checkLen("IFFTInto src", len(src), p.n)
	for i, v := range src {
		dst[i] = cmplx.Conj(v)
	}
	if p.n > 1 {
		p.FFTInto(dst, dst, s)
	}
	conjScale(dst, 1/float64(p.n))
}

// RFFT transforms a real signal, returning the full complex spectrum — a
// thin allocating shim over RFFTInto.
func RFFT(x []float64) []complex128 {
	out := make([]complex128, len(x))
	if len(x) == 0 {
		return out
	}
	s := GetScratch()
	RFFTInto(out, x, s)
	PutScratch(s)
	return out
}

// RFFTInto computes the full n-point DFT of the real signal x into dst
// (len(dst) == len(x)). Even lengths are transformed via an n/2-point
// complex FFT of the packed signal z[k] = x[2k] + i·x[2k+1] — half the
// flops and memory traffic of the complex transform; odd lengths fall back
// to the complex path.
func RFFTInto(dst []complex128, x []float64, s *Scratch) {
	checkLen("RFFTInto dst", len(dst), len(x))
	rfftZeroPad(dst, x, s)
}

// rfftZeroPad computes the len(dst)-point DFT of x zero-padded (or not) to
// len(dst) ≥ len(x). This is the core the FFT-correlation kernels share: it
// never materializes the padded real signal.
func rfftZeroPad(dst []complex128, x []float64, s *Scratch) {
	m := len(dst)
	if m == 0 {
		return
	}
	if len(x) > m {
		panic("daslib: rfftZeroPad: input longer than transform")
	}
	if m == 1 {
		if len(x) == 1 {
			dst[0] = complex(x[0], 0)
		} else {
			dst[0] = 0
		}
		return
	}
	if m&1 == 1 {
		// Odd length: widen into the complex plan.
		cx := s.Complex(m)
		for i, v := range x {
			cx[i] = complex(v, 0)
		}
		PlanFFT(m).FFTInto(dst, cx, s)
		s.ReleaseComplex(cx)
		return
	}
	half := m / 2
	z := s.Complex(half)
	for k := 0; 2*k < len(x); k++ {
		re := x[2*k]
		im := 0.0
		if 2*k+1 < len(x) {
			im = x[2*k+1]
		}
		z[k] = complex(re, im)
	}
	PlanFFT(half).FFTInto(z, z, s)
	// Untangle: with E/O the half-length DFTs of the even/odd samples,
	// Z[k] = E[k] + i·O[k], so E[k] = (Z[k]+conj(Z[-k]))/2 and
	// O[k] = (Z[k]-conj(Z[-k]))/(2i); then X[k] = E[k] + w^k·O[k] and
	// X[k+n/2] = E[k] - w^k·O[k] with w = exp(-2πi/n).
	tw := twiddles(m) // tw[k] = exp(-2πi·k/m), k < m/2 — exactly what we need
	for k := 0; k < half; k++ {
		zk := z[k]
		zc := cmplx.Conj(z[(half-k)%half])
		e := (zk + zc) * complex(0.5, 0)
		o := (zk - zc) * complex(0, -0.5)
		wo := tw[k] * o
		dst[k] = e + wo
		dst[k+half] = e - wo
	}
	s.ReleaseComplex(z)
}

// IRFFT inverts a spectrum known to come from a real signal, returning the
// real signal — a thin allocating shim over IRFFTInto.
func IRFFT(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	if len(spec) == 0 {
		return out
	}
	s := GetScratch()
	IRFFTInto(out, spec, s)
	PutScratch(s)
	return out
}

// IRFFTInto computes the real inverse DFT of a conjugate-symmetric spectrum
// into dst (len(dst) == len(spec)). Even lengths invert via an n/2-point
// complex inverse transform; odd lengths fall back to the complex path and
// keep the real part.
func IRFFTInto(dst []float64, spec []complex128, s *Scratch) {
	n := len(spec)
	checkLen("IRFFTInto dst", len(dst), n)
	if n == 0 {
		return
	}
	if n == 1 {
		dst[0] = real(spec[0])
		return
	}
	if n&1 == 1 {
		cx := s.Complex(n)
		PlanFFT(n).IFFTInto(cx, spec, s)
		for i, v := range cx {
			dst[i] = real(v)
		}
		s.ReleaseComplex(cx)
		return
	}
	half := n / 2
	z := s.Complex(half)
	tw := twiddles(n)
	for k := 0; k < half; k++ {
		a := spec[k]
		b := spec[k+half]
		e := (a + b) * complex(0.5, 0)
		o := (a - b) * complex(0.5, 0) * cmplx.Conj(tw[k])
		z[k] = e + complex(0, 1)*o
	}
	PlanFFT(half).IFFTInto(z, z, s)
	for k := 0; k < half; k++ {
		dst[2*k] = real(z[k])
		dst[2*k+1] = imag(z[k])
	}
	s.ReleaseComplex(z)
}
