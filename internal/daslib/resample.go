package daslib

import (
	"fmt"
	"math"
	"sync"
)

// gcd returns the greatest common divisor of a and b (both positive).
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// resamplePlan holds the polyphase anti-aliasing FIR for a reduced p/q
// ratio. The design (Kaiser window, windowed sinc, DC normalization) is
// exactly what Resample built per call before; now it is computed once per
// ratio and shared.
type resamplePlan struct {
	p, q   int
	half   int
	length int
	h      []float64
}

var resampleCache = struct {
	sync.RWMutex
	m map[[2]int]*resamplePlan
}{m: map[[2]int]*resamplePlan{}}

// resamplePlanFor returns the cached plan for the already-gcd-reduced
// ratio p/q.
func resamplePlanFor(p, q int) *resamplePlan {
	key := [2]int{p, q}
	resampleCache.RLock()
	rp, ok := resampleCache.m[key]
	resampleCache.RUnlock()
	if ok {
		return rp
	}
	// Anti-aliasing lowpass at min(π/p, π/q) in the upsampled domain.
	// MATLAB default: N = 10, Kaiser beta = 5, length 2*N*max(p,q)+1.
	const nTaps = 10
	const beta = 5.0
	maxPQ := max(p, q)
	half := nTaps * maxPQ
	length := 2*half + 1
	fc := 1.0 / float64(2*maxPQ) // cycles/sample in the upsampled domain
	win := kaiserWin(length, beta)
	h := make([]float64, length)
	var sum float64
	for i := range h {
		t := float64(i - half)
		var s float64
		if t == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*t) / (math.Pi * t)
		}
		h[i] = s * win[i]
		sum += h[i]
	}
	// Normalize DC gain to p (upsampling inserts p-1 zeros, which divides
	// the signal's amplitude by p before filtering).
	scale := float64(p) / sum
	for i := range h {
		h[i] *= scale
	}
	rp = &resamplePlan{p: p, q: q, half: half, length: length, h: h}
	resampleCache.Lock()
	if have, ok := resampleCache.m[key]; ok {
		rp = have
	} else {
		resampleCache.m[key] = rp
	}
	resampleCache.Unlock()
	return rp
}

// ResampleLen returns the output length of Resample for an input of length
// n and factors p/q: ceil(n·p/q).
func ResampleLen(n, p, q int) int {
	if n == 0 || p < 1 || q < 1 {
		return 0
	}
	g := gcd(p, q)
	p, q = p/g, q/g
	return (n*p + q - 1) / q
}

// Resample changes the sample rate of x by the rational factor p/q using a
// polyphase anti-aliasing FIR (Kaiser-windowed sinc), matching MATLAB's
// resample(x, p, q) — the paper's Das_resample. The output has
// ceil(len(x)*p/q) samples and is group-delay compensated, so y[k]
// corresponds to x at time k*q/p.
//
// Resample is a thin allocating shim over ResampleInto.
func Resample(x []float64, p, q int) ([]float64, error) {
	if p < 1 || q < 1 {
		return nil, fmt.Errorf("daslib: Resample factors must be positive, got %d/%d", p, q)
	}
	if len(x) == 0 {
		return []float64{}, nil
	}
	out := make([]float64, ResampleLen(len(x), p, q))
	if err := ResampleInto(out, x, p, q, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// ResampleInto is Resample writing into dst (len(dst) ==
// ResampleLen(len(x), p, q)). The FIR design comes from the per-ratio plan
// cache and the polyphase loop writes straight into dst, so the call does
// not allocate. The scratch parameter is accepted for signature symmetry
// with the other Into kernels; this kernel needs no intermediates.
func ResampleInto(dst, x []float64, p, q int, _ *Scratch) error {
	if p < 1 || q < 1 {
		return fmt.Errorf("daslib: Resample factors must be positive, got %d/%d", p, q)
	}
	outLen := ResampleLen(len(x), p, q)
	checkLen("ResampleInto dst", len(dst), outLen)
	if len(x) == 0 {
		return nil
	}
	g := gcd(p, q)
	p, q = p/g, q/g
	if p == 1 && q == 1 {
		copy(dst, x)
		return nil
	}
	rp := resamplePlanFor(p, q)
	h, half, length := rp.h, rp.half, rp.length
	// y[m] = sum_k h[k] · xup[m*q + half - k], where xup[i] = x[i/p] when
	// i % p == 0. The +half centers the filter, compensating group delay.
	// Along one polyphase branch the source index decreases by exactly one
	// per tap, so it is carried down the loop instead of divided out — the
	// taps visited and their order are unchanged, keeping the sum
	// bit-identical.
	for m := 0; m < outLen; m++ {
		center := m*q + half
		k := center % p
		xi := (center - k) / p
		if xi >= len(x) {
			// Taps past the end of x contribute nothing; jump to the first
			// in-range source sample.
			k += (xi - len(x) + 1) * p
			xi = len(x) - 1
		}
		var acc float64
		for ; k < length && xi >= 0; k, xi = k+p, xi-1 {
			acc += h[k] * x[xi]
		}
		dst[m] = acc
	}
	return nil
}

// Decimate reduces the sample rate by an integer factor r after zero-phase
// Butterworth lowpass filtering (order 8 at 0.8·Nyquist/r), matching
// MATLAB's decimate defaults.
func Decimate(x []float64, r int) ([]float64, error) {
	if r < 1 {
		return nil, fmt.Errorf("daslib: Decimate factor must be ≥ 1, got %d", r)
	}
	if r == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	b, a, err := Butter(8, Lowpass, 0.8/float64(r))
	if err != nil {
		return nil, err
	}
	y, err := FiltFilt(b, a, x)
	if err != nil {
		return nil, err
	}
	out := make([]float64, (len(x)+r-1)/r)
	for i := range out {
		out[i] = y[i*r]
	}
	return out, nil
}
