package daslib

import (
	"fmt"
	"math"
)

// gcd returns the greatest common divisor of a and b (both positive).
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Resample changes the sample rate of x by the rational factor p/q using a
// polyphase anti-aliasing FIR (Kaiser-windowed sinc), matching MATLAB's
// resample(x, p, q) — the paper's Das_resample. The output has
// ceil(len(x)*p/q) samples and is group-delay compensated, so y[k]
// corresponds to x at time k*q/p.
func Resample(x []float64, p, q int) ([]float64, error) {
	if p < 1 || q < 1 {
		return nil, fmt.Errorf("daslib: Resample factors must be positive, got %d/%d", p, q)
	}
	if len(x) == 0 {
		return []float64{}, nil
	}
	g := gcd(p, q)
	p, q = p/g, q/g
	if p == 1 && q == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	// Anti-aliasing lowpass at min(π/p, π/q) in the upsampled domain.
	// MATLAB default: N = 10, Kaiser beta = 5, length 2*N*max(p,q)+1.
	const nTaps = 10
	const beta = 5.0
	maxPQ := max(p, q)
	half := nTaps * maxPQ
	length := 2*half + 1
	fc := 1.0 / float64(2*maxPQ) // cycles/sample in the upsampled domain
	win := Kaiser(length, beta)
	h := make([]float64, length)
	var sum float64
	for i := range h {
		t := float64(i - half)
		var s float64
		if t == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*t) / (math.Pi * t)
		}
		h[i] = s * win[i]
		sum += h[i]
	}
	// Normalize DC gain to p (upsampling inserts p-1 zeros, which divides
	// the signal's amplitude by p before filtering).
	scale := float64(p) / sum
	for i := range h {
		h[i] *= scale
	}

	outLen := (len(x)*p + q - 1) / q
	out := make([]float64, outLen)
	// y[m] = sum_k h[k] · xup[m*q + half - k], where xup[i] = x[i/p] when
	// i % p == 0. The +half centers the filter, compensating group delay.
	for m := 0; m < outLen; m++ {
		center := m*q + half
		// k must satisfy (center - k) % p == 0 and 0 <= (center-k)/p < len(x).
		// Walk k over the single polyphase branch.
		kStart := center % p
		var acc float64
		for k := kStart; k < length; k += p {
			xi := (center - k) / p
			if xi < 0 {
				break // xi decreases as k grows? no: center-k decreases; break when negative
			}
			if xi >= len(x) {
				continue
			}
			acc += h[k] * x[xi]
		}
		out[m] = acc
	}
	return out, nil
}

// Decimate reduces the sample rate by an integer factor r after zero-phase
// Butterworth lowpass filtering (order 8 at 0.8·Nyquist/r), matching
// MATLAB's decimate defaults.
func Decimate(x []float64, r int) ([]float64, error) {
	if r < 1 {
		return nil, fmt.Errorf("daslib: Decimate factor must be ≥ 1, got %d", r)
	}
	if r == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	b, a, err := Butter(8, Lowpass, 0.8/float64(r))
	if err != nil {
		return nil, err
	}
	y, err := FiltFilt(b, a, x)
	if err != nil {
		return nil, err
	}
	out := make([]float64, (len(x)+r-1)/r)
	for i := range out {
		out[i] = y[i*r]
	}
	return out, nil
}
