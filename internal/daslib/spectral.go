package daslib

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Hilbert returns the analytic signal of x (via the FFT one-sided
// spectrum method, like MATLAB's hilbert): real part = x, imaginary part =
// the Hilbert transform of x.
func Hilbert(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	spec := FFTReal(x)
	// One-sided doubling: keep DC (and Nyquist for even n), double the
	// positive frequencies, zero the negative ones.
	half := n / 2
	for i := 1; i < half; i++ {
		spec[i] *= 2
	}
	if n%2 == 0 {
		// spec[half] (Nyquist) stays as is.
		for i := half + 1; i < n; i++ {
			spec[i] = 0
		}
	} else {
		spec[half] *= 2
		for i := half + 1; i < n; i++ {
			spec[i] = 0
		}
	}
	return IFFT(spec)
}

// Envelope returns the instantaneous amplitude |hilbert(x)| — the standard
// seismic attribute for picking arrivals.
func Envelope(x []float64) []float64 {
	a := Hilbert(x)
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Spectrogram is a time-frequency magnitude image: Mag[frame][bin] over
// NumBins one-sided frequency bins spaced BinHz apart, frames HopSamples
// apart.
type Spectrogram struct {
	Mag        [][]float64
	NumBins    int
	BinHz      float64
	HopSamples int
}

// STFT computes a short-time Fourier transform magnitude spectrogram with
// a Hann window: frames of length nfft every hop samples (one-sided
// spectrum). nfft must be a power of two; the last partial frame is
// dropped, matching MATLAB's spectrogram defaults.
func STFT(x []float64, nfft, hop int, rate float64) (*Spectrogram, error) {
	if nfft < 2 || nfft&(nfft-1) != 0 {
		return nil, fmt.Errorf("daslib: STFT nfft must be a power of two ≥ 2, got %d", nfft)
	}
	if hop < 1 {
		return nil, fmt.Errorf("daslib: STFT hop must be ≥ 1, got %d", hop)
	}
	if len(x) < nfft {
		return nil, fmt.Errorf("daslib: STFT input length %d shorter than nfft %d", len(x), nfft)
	}
	win := hannWin(nfft) // shared cache entry; read-only here
	bins := nfft/2 + 1
	var mags [][]float64
	frame := make([]complex128, nfft)
	for start := 0; start+nfft <= len(x); start += hop {
		for i := 0; i < nfft; i++ {
			frame[i] = complex(x[start+i]*win[i], 0)
		}
		fftPow2(frame)
		row := make([]float64, bins)
		for b := 0; b < bins; b++ {
			row[b] = cmplx.Abs(frame[b])
		}
		mags = append(mags, row)
	}
	return &Spectrogram{
		Mag:        mags,
		NumBins:    bins,
		BinHz:      rate / float64(nfft),
		HopSamples: hop,
	}, nil
}

// PeakFrequency returns the frequency (Hz) of the strongest bin in frame i
// (ignoring DC).
func (s *Spectrogram) PeakFrequency(i int) float64 {
	if i < 0 || i >= len(s.Mag) {
		return 0
	}
	best, bestB := -1.0, 0
	for b := 1; b < s.NumBins; b++ {
		if s.Mag[i][b] > best {
			best, bestB = s.Mag[i][b], b
		}
	}
	return float64(bestB) * s.BinHz
}

// MedianFilter returns the sliding-window median of x with window
// 2*half+1, shrinking at the edges — a robust despiking step used before
// correlation analysis.
func MedianFilter(x []float64, half int) []float64 {
	n := len(x)
	out := make([]float64, n)
	if half <= 0 {
		copy(out, x)
		return out
	}
	buf := make([]float64, 0, 2*half+1)
	for i := range x {
		lo := max(i-half, 0)
		hi := min(i+half, n-1)
		buf = append(buf[:0], x[lo:hi+1]...)
		sort.Float64s(buf)
		m := len(buf)
		if m%2 == 1 {
			out[i] = buf[m/2]
		} else {
			out[i] = (buf[m/2-1] + buf[m/2]) / 2
		}
	}
	return out
}

// InstantaneousPhase returns the unwrapped phase of the analytic signal.
func InstantaneousPhase(x []float64) []float64 {
	a := Hilbert(x)
	out := make([]float64, len(a))
	prev := 0.0
	offset := 0.0
	for i, v := range a {
		ph := cmplx.Phase(v)
		if i > 0 {
			d := ph - prev
			for d > math.Pi {
				d -= 2 * math.Pi
				offset -= 2 * math.Pi
			}
			for d < -math.Pi {
				d += 2 * math.Pi
				offset += 2 * math.Pi
			}
		}
		out[i] = ph + offset
		prev = ph
	}
	return out
}
