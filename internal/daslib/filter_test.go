package daslib

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestButterValidation(t *testing.T) {
	if _, _, err := Butter(0, Lowpass, 0.5); err == nil {
		t.Error("order 0 should fail")
	}
	if _, _, err := Butter(4, Lowpass, 0); err == nil {
		t.Error("cutoff 0 should fail")
	}
	if _, _, err := Butter(4, Lowpass, 1); err == nil {
		t.Error("cutoff 1 should fail")
	}
	if _, _, err := Butter(4, Lowpass, 0.2, 0.5); err == nil {
		t.Error("lowpass with 2 cutoffs should fail")
	}
	if _, _, err := Butter(4, Bandpass, 0.5, 0.2); err == nil {
		t.Error("decreasing bandpass cutoffs should fail")
	}
	if _, _, err := Butter(4, Bandpass, 0.2); err == nil {
		t.Error("bandpass with 1 cutoff should fail")
	}
}

func TestButterLowpassResponse(t *testing.T) {
	for _, order := range []int{2, 4, 6} {
		for _, wc := range []float64{0.1, 0.25, 0.5, 0.8} {
			b, a, err := Butter(order, Lowpass, wc)
			if err != nil {
				t.Fatal(err)
			}
			if len(b) != order+1 || len(a) != order+1 {
				t.Fatalf("order=%d: coefficient lengths %d/%d", order, len(b), len(a))
			}
			if math.Abs(a[0]-1) > 1e-9 {
				t.Errorf("a[0] = %g, want 1", a[0])
			}
			if g := FreqzMag(b, a, 1e-9); math.Abs(g-1) > 1e-6 {
				t.Errorf("order=%d wc=%g: DC gain = %g, want 1", order, wc, g)
			}
			if g := FreqzMag(b, a, wc); math.Abs(g-math.Sqrt(0.5)) > 1e-6 {
				t.Errorf("order=%d wc=%g: cutoff gain = %g, want -3dB (%g)", order, wc, g, math.Sqrt(0.5))
			}
			if g := FreqzMag(b, a, 0.999999); g > 1e-3 {
				t.Errorf("order=%d wc=%g: Nyquist gain = %g, want ≈0", order, wc, g)
			}
		}
	}
}

func TestButterHighpassResponse(t *testing.T) {
	b, a, err := Butter(4, Highpass, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if g := FreqzMag(b, a, 1e-9); g > 1e-6 {
		t.Errorf("DC gain = %g, want 0", g)
	}
	if g := FreqzMag(b, a, 0.3); math.Abs(g-math.Sqrt(0.5)) > 1e-6 {
		t.Errorf("cutoff gain = %g, want -3dB", g)
	}
	if g := FreqzMag(b, a, 0.999999); math.Abs(g-1) > 1e-4 {
		t.Errorf("Nyquist gain = %g, want 1", g)
	}
}

func TestButterBandpassResponse(t *testing.T) {
	lo, hi := 0.2, 0.4
	b, a, err := Butter(3, Bandpass, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 7 || len(a) != 7 {
		t.Fatalf("bandpass order 3 should give 7 coefficients, got %d/%d", len(b), len(a))
	}
	if g := FreqzMag(b, a, 1e-9); g > 1e-6 {
		t.Errorf("DC gain = %g, want 0", g)
	}
	center := math.Sqrt(lo * hi) // geometric center in warped space ≈ passband
	if g := FreqzMag(b, a, center); math.Abs(g-1) > 0.02 {
		t.Errorf("center gain = %g, want ≈1", g)
	}
	for _, edge := range []float64{lo, hi} {
		if g := FreqzMag(b, a, edge); math.Abs(g-math.Sqrt(0.5)) > 1e-5 {
			t.Errorf("edge %g gain = %g, want -3dB", edge, g)
		}
	}
	if g := FreqzMag(b, a, 0.999999); g > 1e-4 {
		t.Errorf("Nyquist gain = %g, want 0", g)
	}
}

func TestButterMonotoneLowpass(t *testing.T) {
	// Butterworth is maximally flat: magnitude must be non-increasing.
	b, a, err := Butter(5, Lowpass, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for w := 0.001; w < 1; w += 0.001 {
		g := FreqzMag(b, a, w)
		if g > prev+1e-9 {
			t.Fatalf("magnitude increased at w=%g: %g > %g", w, g, prev)
		}
		prev = g
	}
}

func TestFilterFIRConvolution(t *testing.T) {
	// With a = [1], Filter is plain convolution.
	b := []float64{1, 2, 3}
	x := []float64{1, 0, 0, 1}
	y, err := Filter(b, []float64{1}, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 1}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestFilterIIRKnown(t *testing.T) {
	// y[n] = x[n] + 0.5·y[n-1]: impulse response 1, 0.5, 0.25, ...
	y, err := Filter([]float64{1}, []float64{1, -0.5}, []float64{1, 0, 0, 0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 0.5, 0.25, 0.125, 0.0625} {
		if math.Abs(y[i]-want) > 1e-12 {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want)
		}
	}
}

func TestFilterNormalizesA0(t *testing.T) {
	// Scaling both b and a by 2 must not change the output.
	x := []float64{1, 2, 3, 4, 5}
	y1, err := Filter([]float64{1, 1}, []float64{1, -0.3}, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := Filter([]float64{2, 2}, []float64{2, -0.6}, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Errorf("scaled coefficients changed output at %d", i)
		}
	}
	if _, err := Filter([]float64{1}, []float64{0, 1}, x, nil); err == nil {
		t.Error("a[0] == 0 should fail")
	}
	if _, err := Filter([]float64{1, 1}, []float64{1, -0.5}, x, []float64{1, 2}); err == nil {
		t.Error("wrong zi length should fail")
	}
}

func TestLfilterZISteadyState(t *testing.T) {
	// Filtering a constant signal with the steady-state zi must give a
	// constant output from the very first sample.
	b, a, err := Butter(4, Lowpass, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	zi, err := lfilterZI(b, a)
	if err != nil {
		t.Fatal(err)
	}
	const level = 3.7
	x := make([]float64, 50)
	for i := range x {
		x[i] = level
	}
	z := make([]float64, len(zi))
	for i, v := range zi {
		z[i] = v * level
	}
	y, err := Filter(b, a, x, z)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range y {
		if math.Abs(v-level) > 1e-9 {
			t.Fatalf("y[%d] = %g, want steady %g", i, v, level)
		}
	}
}

func TestFiltFiltZeroPhase(t *testing.T) {
	// A low-frequency tone must come through filtfilt with no phase shift
	// and gain ≈ squared single-pass gain.
	const n = 2000
	rate := 500.0
	freq := 10.0
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / rate)
	}
	b, a, err := Butter(4, Lowpass, 0.4) // cutoff 100 Hz
	if err != nil {
		t.Fatal(err)
	}
	y, err := FiltFilt(b, a, x)
	if err != nil {
		t.Fatal(err)
	}
	// Compare mid-section against the input: no delay, unit gain.
	for i := 500; i < 1500; i++ {
		if math.Abs(y[i]-x[i]) > 1e-3 {
			t.Fatalf("filtfilt distorted passband at %d: %g vs %g", i, y[i], x[i])
		}
	}
}

func TestFiltFiltAttenuatesStopband(t *testing.T) {
	const n = 4000
	rate := 500.0
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / rate
		x[i] = math.Sin(2*math.Pi*5*ti) + math.Sin(2*math.Pi*150*ti)
	}
	y, err := BandpassFilter(x, 4, 2, 20, rate)
	if err != nil {
		t.Fatal(err)
	}
	// The 150 Hz component must be crushed; the 5 Hz one preserved.
	mid := y[1000:3000]
	ref := make([]float64, len(mid))
	for i := range ref {
		ref[i] = math.Sin(2 * math.Pi * 5 * float64(i+1000) / rate)
	}
	if c := AbsCorr(mid, ref); c < 0.99 {
		t.Errorf("passband correlation = %g, want > 0.99", c)
	}
	if r := RMS(mid); math.Abs(r-RMS(ref)) > 0.05*RMS(ref) {
		t.Errorf("passband RMS = %g, want ≈ %g", r, RMS(ref))
	}
}

func TestFiltFiltShortInput(t *testing.T) {
	b, a, err := Butter(4, Lowpass, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FiltFilt(b, a, make([]float64, 12)); err == nil {
		t.Error("input shorter than pad length should fail")
	}
}

func TestFilterZiStatePropagation(t *testing.T) {
	// Filtering in two halves with carried state must equal one pass.
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b, a, err := Butter(3, Lowpass, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := Filter(b, a, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 3)
	h1, err := Filter(b, a, x[:50], z)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Filter(b, a, x[50:], z)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1 {
		if math.Abs(h1[i]-whole[i]) > 1e-12 {
			t.Fatalf("first half differs at %d", i)
		}
	}
	for i := range h2 {
		if math.Abs(h2[i]-whole[50+i]) > 1e-12 {
			t.Fatalf("second half differs at %d", i)
		}
	}
}

func TestSolveLinear(t *testing.T) {
	M := [][]float64{{2, 1}, {1, 3}}
	x, ok := solveLinear(M, []float64{5, 10})
	if !ok {
		t.Fatal("solver failed")
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
	if _, ok := solveLinear([][]float64{{1, 2}, {2, 4}}, []float64{1, 2}); ok {
		t.Error("singular system should be rejected")
	}
}

func TestFilterBandString(t *testing.T) {
	if Lowpass.String() != "lowpass" || Highpass.String() != "highpass" || Bandpass.String() != "bandpass" {
		t.Error("FilterBand.String broken")
	}
}

func TestButterStabilityAcrossDesigns(t *testing.T) {
	// Every designed filter must be stable: the impulse response decays to
	// (numerical) zero. Bilinear-transformed Butterworth filters are stable
	// by construction; this guards the implementation, not the theory.
	impulse := make([]float64, 4096)
	impulse[0] = 1
	check := func(name string, b, a []float64) {
		t.Helper()
		y, err := Filter(b, a, impulse, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tail := 0.0
		for _, v := range y[3500:] {
			tail = math.Max(tail, math.Abs(v))
		}
		if tail > 1e-6 {
			t.Errorf("%s: impulse response tail %g, filter unstable or ringing", name, tail)
		}
		for _, v := range y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite impulse response", name)
			}
		}
	}
	for _, order := range []int{1, 2, 4, 8, 12} {
		for _, wc := range []float64{0.05, 0.3, 0.7, 0.95} {
			b, a, err := Butter(order, Lowpass, wc)
			if err != nil {
				t.Fatal(err)
			}
			check(fmt.Sprintf("lowpass n=%d wc=%g", order, wc), b, a)
			b, a, err = Butter(order, Highpass, wc)
			if err != nil {
				t.Fatal(err)
			}
			check(fmt.Sprintf("highpass n=%d wc=%g", order, wc), b, a)
		}
		for _, band := range [][2]float64{{0.1, 0.3}, {0.4, 0.6}, {0.7, 0.9}} {
			b, a, err := Butter(order, Bandpass, band[0], band[1])
			if err != nil {
				t.Fatal(err)
			}
			check(fmt.Sprintf("bandpass n=%d %v", order, band), b, a)
			b, a, err = Butter(order, Bandstop, band[0], band[1])
			if err != nil {
				t.Fatal(err)
			}
			check(fmt.Sprintf("bandstop n=%d %v", order, band), b, a)
		}
	}
}
