package daslib

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDemean(t *testing.T) {
	got := Demean([]float64{1, 2, 3, 4})
	want := []float64{-1.5, -0.5, 0.5, 1.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Demean[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if len(Demean(nil)) != 0 {
		t.Error("Demean(nil) should be empty")
	}
}

func TestDetrendRemovesLine(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 3 + 0.5*float64(i)
	}
	for _, v := range Detrend(x) {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("pure line not removed: residue %g", v)
		}
	}
	// Detrending a line+sine leaves a signal with zero mean, zero
	// least-squares slope, and high correlation with the sine. (The sine is
	// not exactly orthogonal to a ramp, so exact recovery is not expected.)
	sig := make([]float64, 100)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 10 * float64(i) / 100)
	}
	mixed := make([]float64, 100)
	for i := range mixed {
		mixed[i] = sig[i] - 7 + 0.3*float64(i)
	}
	got := Detrend(mixed)
	var mean, slope float64
	for i, v := range got {
		mean += v
		slope += (float64(i) - 49.5) * v
	}
	if math.Abs(mean) > 1e-9 {
		t.Errorf("detrended mean = %g, want 0", mean/100)
	}
	if math.Abs(slope) > 1e-7 {
		t.Errorf("detrended slope moment = %g, want 0", slope)
	}
	if c := AbsCorr(got, sig); c < 0.99 {
		t.Errorf("detrended/sine correlation = %g, want > 0.99", c)
	}
	if got := Detrend([]float64{5}); got[0] != 0 {
		t.Error("single point should detrend to 0")
	}
}

func TestDetrendIdempotentProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) > 300 {
			vals = vals[:300]
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e50 {
				return true
			}
		}
		once := Detrend(vals)
		twice := Detrend(once)
		scale := 1.0
		for _, v := range vals {
			scale = math.Max(scale, math.Abs(v))
		}
		for i := range once {
			if math.Abs(once[i]-twice[i]) > 1e-9*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAbsCorr(t *testing.T) {
	a := []float64{1, 2, 3}
	if got := AbsCorr(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %g", got)
	}
	neg := []float64{-1, -2, -3}
	if got := AbsCorr(a, neg); math.Abs(got-1) > 1e-12 {
		t.Errorf("anti-correlation = %g, want |cos|=1", got)
	}
	orth1, orth2 := []float64{1, 0}, []float64{0, 1}
	if got := AbsCorr(orth1, orth2); got != 0 {
		t.Errorf("orthogonal correlation = %g", got)
	}
	if got := AbsCorr([]float64{0, 0}, []float64{1, 2}); got != 0 {
		t.Errorf("zero-vector correlation = %g", got)
	}
}

func TestAbsCorrRangeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := min(len(a), len(b))
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) ||
				math.Abs(a[i]) > 1e100 || math.Abs(b[i]) > 1e100 {
				return true
			}
		}
		c := AbsCorr(a, b)
		return c >= 0 && c <= 1+1e-9 && c == AbsCorr(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAbsCorrComplex(t *testing.T) {
	a := []complex128{complex(1, 1), complex(2, -1)}
	if got := AbsCorrComplex(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self = %g", got)
	}
	// Multiplying by a global phase must not change |corr|.
	phase := complex(math.Cos(0.7), math.Sin(0.7))
	b := []complex128{a[0] * phase, a[1] * phase}
	if got := AbsCorrComplex(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("phase-shifted = %g, want 1", got)
	}
	if got := AbsCorrComplex([]complex128{0, 0}, a); got != 0 {
		t.Errorf("zero = %g", got)
	}
}

func TestInterp1(t *testing.T) {
	x0 := []float64{0, 1, 2}
	y0 := []float64{0, 10, 0}
	got, err := Interp1(x0, y0, []float64{-1, 0, 0.5, 1, 1.25, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 5, 10, 7.5, 0, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Interp1[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := Interp1([]float64{0, 0}, []float64{1, 2}, []float64{0}); err == nil {
		t.Error("non-increasing x0 should fail")
	}
	if _, err := Interp1([]float64{0}, []float64{1, 2}, nil); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Interp1(nil, nil, nil); err == nil {
		t.Error("empty x0 should fail")
	}
}

func TestInterp1RecoversSamplesProperty(t *testing.T) {
	// Querying exactly at the sample points returns the sample values.
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 100 {
			raw = raw[:100]
		}
		x0 := make([]float64, len(raw))
		y0 := make([]float64, len(raw))
		for i := range raw {
			x0[i] = float64(i) * 1.5
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			y0[i] = v
		}
		got, err := Interp1(x0, y0, x0)
		if err != nil {
			return false
		}
		for i := range y0 {
			if got[i] != y0[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(x, 1)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MovingAverage[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	got = MovingAverage(x, 0)
	for i := range x {
		if got[i] != x[i] {
			t.Error("half=0 should be identity")
		}
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 4, 3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %g", got)
	}
	if RMS(nil) != 0 {
		t.Error("RMS(nil) should be 0")
	}
}

func TestWindows(t *testing.T) {
	h := Hann(5)
	want := []float64{0, 0.5, 1, 0.5, 0}
	for i := range want {
		if math.Abs(h[i]-want[i]) > 1e-12 {
			t.Errorf("Hann[%d] = %g, want %g", i, h[i], want[i])
		}
	}
	if got := Hann(1); got[0] != 1 {
		t.Error("Hann(1) should be [1]")
	}
	k := Kaiser(11, 5)
	if math.Abs(k[5]-1) > 1e-12 {
		t.Errorf("Kaiser center = %g, want 1", k[5])
	}
	for i := 0; i < 5; i++ {
		if math.Abs(k[i]-k[10-i]) > 1e-12 {
			t.Errorf("Kaiser asymmetric at %d", i)
		}
		if k[i] >= k[i+1] {
			t.Errorf("Kaiser not increasing toward center at %d", i)
		}
	}
	if got := Kaiser(1, 5); got[0] != 1 {
		t.Error("Kaiser(1) should be [1]")
	}
	// beta=0 Kaiser is rectangular.
	for _, v := range Kaiser(7, 0) {
		if math.Abs(v-1) > 1e-12 {
			t.Error("Kaiser(beta=0) should be all ones")
		}
	}
}

func TestBesselI0(t *testing.T) {
	// Known values: I0(0)=1, I0(1)≈1.2660658, I0(5)≈27.239872.
	cases := map[float64]float64{0: 1, 1: 1.2660658777520084, 5: 27.239871823604442}
	for x, want := range cases {
		if got := besselI0(x); math.Abs(got-want) > 1e-9*want {
			t.Errorf("I0(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestTaper(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 1
	}
	Taper(x, 0.1)
	if x[0] != 0 || x[99] != 0 {
		t.Error("taper endpoints should be 0")
	}
	if x[50] != 1 {
		t.Error("taper middle should be untouched")
	}
	for i := 1; i < 10; i++ {
		if x[i] <= x[i-1] {
			t.Error("taper should rise monotonically")
		}
	}
	// frac 0 is a no-op.
	y := []float64{1, 2, 3}
	Taper(y, 0)
	if y[0] != 1 || y[2] != 3 {
		t.Error("frac=0 should not modify")
	}
}

func TestOneBitNormalize(t *testing.T) {
	got := OneBitNormalize([]float64{-3, 0, 0.5, -0.1})
	want := []float64{-1, 0, 1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("OneBit[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSpectralWhitenFlattens(t *testing.T) {
	rate := 100.0
	n := 512
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / rate
		x[i] = 10*math.Sin(2*math.Pi*10*ti) + 0.5*math.Sin(2*math.Pi*20*ti)
	}
	y := SpectralWhiten(x, 5, 30, rate)
	spec := FFTReal(y)
	freqs := FFTFreqs(n, rate)
	var in10, in20, out40 float64
	for i, f := range freqs {
		mag := math.Hypot(real(spec[i]), imag(spec[i]))
		switch {
		case math.Abs(f-10) < 0.2:
			in10 = math.Max(in10, mag)
		case math.Abs(f-20) < 0.2:
			in20 = math.Max(in20, mag)
		case math.Abs(f-40) < 0.2:
			out40 = math.Max(out40, mag)
		}
	}
	// The 20× amplitude ratio must be flattened to ≈1.
	if in10 == 0 || in20 == 0 {
		t.Fatal("whitened spectrum lost in-band content")
	}
	if r := in10 / in20; r > 1.5 || r < 0.67 {
		t.Errorf("whitened band ratio = %g, want ≈1", r)
	}
	if out40 > 1e-9 {
		t.Errorf("out-of-band energy survived: %g", out40)
	}
}

func TestXCorrMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ na, nb int }{{5, 5}, {8, 3}, {3, 8}, {1, 1}, {16, 16}} {
		a := make([]float64, tc.na)
		b := make([]float64, tc.nb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := XCorr(a, b)
		// Naive: out[i] corresponds to lag l = i - (nb-1);
		// out[i] = sum_n a[n] b[n - l].
		n := tc.na + tc.nb - 1
		if len(got) != n {
			t.Fatalf("XCorr length = %d, want %d", len(got), n)
		}
		for i := 0; i < n; i++ {
			l := i - (tc.nb - 1)
			var want float64
			for j := 0; j < tc.na; j++ {
				k := j - l
				if k >= 0 && k < tc.nb {
					want += a[j] * b[k]
				}
			}
			if math.Abs(got[i]-want) > 1e-9 {
				t.Fatalf("na=%d nb=%d: XCorr[%d] = %g, want %g", tc.na, tc.nb, i, got[i], want)
			}
		}
	}
}

func TestXCorrNormalizedSelfPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]float64, 64)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	out := XCorrNormalized(a, a)
	peak := out[len(a)-1] // zero lag
	if math.Abs(peak-1) > 1e-9 {
		t.Errorf("zero-lag self correlation = %g, want 1", peak)
	}
	for i, v := range out {
		if v > 1+1e-9 {
			t.Errorf("normalized value %g > 1 at %d", v, i)
		}
	}
	if XCorr(nil, a) != nil {
		t.Error("XCorr with empty input should be nil")
	}
}

func TestXCorrDetectsShift(t *testing.T) {
	// b is a delayed copy of a: the correlation peak sits at the delay.
	rng := rand.New(rand.NewSource(6))
	const n, shift = 128, 17
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	copy(b[shift:], a[:n-shift]) // b[t] = a[t-shift]
	out := XCorr(a, b)
	best, bestLag := math.Inf(-1), 0
	for i, v := range out {
		if v > best {
			best, bestLag = v, i-(n-1)
		}
	}
	if bestLag != -shift {
		t.Errorf("peak at lag %d, want %d", bestLag, -shift)
	}
}

func TestCrossSpectrum(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	cs, err := CrossSpectrum(a, a)
	if err != nil {
		t.Fatal(err)
	}
	// Self cross-spectrum is real and non-negative (|FFT|²).
	for i, v := range cs {
		if math.Abs(imag(v)) > 1e-9 {
			t.Errorf("imag at %d = %g", i, imag(v))
		}
		if real(v) < -1e-9 {
			t.Errorf("negative power at %d = %g", i, real(v))
		}
	}
	if _, err := CrossSpectrum(a, a[:2]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := CrossSpectrum(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
}
