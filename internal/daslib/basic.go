package daslib

import (
	"fmt"
	"math"
)

// Demean subtracts the mean of x, returning a new slice.
func Demean(x []float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i, v := range x {
		out[i] = v - mean
	}
	return out
}

// Detrend removes the least-squares straight-line fit from x, matching
// MATLAB's detrend (the paper's Das_detrend).
func Detrend(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		return out // a single point detrends to zero
	}
	// Fit x[i] ≈ a + b·i by least squares on centered indices.
	tMean := float64(n-1) / 2
	var xMean, num, den float64
	for _, v := range x {
		xMean += v
	}
	xMean /= float64(n)
	for i, v := range x {
		dt := float64(i) - tMean
		num += dt * (v - xMean)
		den += dt * dt
	}
	slope := num / den
	for i, v := range x {
		out[i] = v - (xMean + slope*(float64(i)-tMean))
	}
	return out
}

// AbsCorr returns the absolute normalized correlation of two equal-length
// vectors, |cos θ(c1, c2)| — the paper's Das_abscorr. Zero vectors
// correlate to 0.
func AbsCorr(c1, c2 []float64) float64 {
	checkLen("AbsCorr", len(c2), len(c1))
	var dot, n1, n2 float64
	for i := range c1 {
		dot += c1[i] * c2[i]
		n1 += c1[i] * c1[i]
		n2 += c2[i] * c2[i]
	}
	if n1 == 0 || n2 == 0 {
		return 0
	}
	return math.Abs(dot) / math.Sqrt(n1*n2)
}

// AbsCorrComplex is AbsCorr for spectra: |⟨c1, c2⟩| / (‖c1‖‖c2‖).
func AbsCorrComplex(c1, c2 []complex128) float64 {
	checkLen("AbsCorrComplex", len(c2), len(c1))
	var dotRe, dotIm, n1, n2 float64
	for i := range c1 {
		a, b := c1[i], c2[i]
		// conj(a) * b
		dotRe += real(a)*real(b) + imag(a)*imag(b)
		dotIm += real(a)*imag(b) - imag(a)*real(b)
		n1 += real(a)*real(a) + imag(a)*imag(a)
		n2 += real(b)*real(b) + imag(b)*imag(b)
	}
	if n1 == 0 || n2 == 0 {
		return 0
	}
	return math.Hypot(dotRe, dotIm) / math.Sqrt(n1*n2)
}

// Interp1 linearly interpolates the function defined by (x0, y0) — x0
// strictly increasing — at the query points x, matching MATLAB's
// interp1(..., 'linear') with end-value extrapolation clamped
// (the paper's Das_interp1). It returns an error if x0 is not increasing.
func Interp1(x0, y0, x []float64) ([]float64, error) {
	if len(x0) != len(y0) {
		return nil, fmt.Errorf("daslib: Interp1 x0/y0 lengths differ: %d vs %d", len(x0), len(y0))
	}
	if len(x0) == 0 {
		return nil, fmt.Errorf("daslib: Interp1 needs at least one sample point")
	}
	for i := 1; i < len(x0); i++ {
		if x0[i] <= x0[i-1] {
			return nil, fmt.Errorf("daslib: Interp1 x0 must be strictly increasing (x0[%d]=%g ≤ x0[%d]=%g)",
				i, x0[i], i-1, x0[i-1])
		}
	}
	out := make([]float64, len(x))
	for i, q := range x {
		switch {
		case q <= x0[0]:
			out[i] = y0[0]
		case q >= x0[len(x0)-1]:
			out[i] = y0[len(y0)-1]
		default:
			// Binary search for the containing interval.
			lo, hi := 0, len(x0)-1
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				if x0[mid] <= q {
					lo = mid
				} else {
					hi = mid
				}
			}
			if q == x0[lo] {
				// Exact hit: avoid 0·(y0[hi]-y0[lo]), which is NaN when the
				// difference overflows.
				out[i] = y0[lo]
				continue
			}
			t := (q - x0[lo]) / (x0[hi] - x0[lo])
			out[i] = y0[lo] + t*(y0[hi]-y0[lo])
		}
	}
	return out, nil
}

// MovingAverage returns the centered moving average of x with window
// 2*half+1, shrinking the window at the edges.
func MovingAverage(x []float64, half int) []float64 {
	n := len(x)
	out := make([]float64, n)
	if half <= 0 {
		copy(out, x)
		return out
	}
	for i := range x {
		lo := max(i-half, 0)
		hi := min(i+half, n-1)
		var s float64
		for j := lo; j <= hi; j++ {
			s += x[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// RMS returns the root-mean-square amplitude of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// Hann returns an n-point Hann window (periodic form for n>1 symmetric
// definition, as MATLAB's hann(n)).
func Hann(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := range out {
		out[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return out
}

// besselI0 evaluates the zeroth-order modified Bessel function by series.
func besselI0(x float64) float64 {
	sum := 1.0
	term := 1.0
	half := x / 2
	for k := 1; k < 64; k++ {
		term *= (half / float64(k)) * (half / float64(k))
		sum += term
		if term < 1e-18*sum {
			break
		}
	}
	return sum
}

// Kaiser returns an n-point Kaiser window with shape parameter beta.
func Kaiser(n int, beta float64) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	denom := besselI0(beta)
	m := float64(n - 1)
	for i := range out {
		t := 2*float64(i)/m - 1
		out[i] = besselI0(beta*math.Sqrt(1-t*t)) / denom
	}
	return out
}

// Taper applies a cosine (Tukey-style) taper covering frac of each end of
// x in place and returns x, the standard pre-processing step before
// spectral analysis of seismic windows.
func Taper(x []float64, frac float64) []float64 {
	n := len(x)
	w := int(frac * float64(n))
	if w <= 0 || n == 0 {
		return x
	}
	if w > n/2 {
		w = n / 2
	}
	for i := 0; i < w; i++ {
		g := 0.5 * (1 - math.Cos(math.Pi*float64(i)/float64(w)))
		x[i] *= g
		x[n-1-i] *= g
	}
	return x
}

// OneBitNormalize replaces each sample by its sign — a standard
// ambient-noise pre-processing step that suppresses transient bursts.
func OneBitNormalize(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		switch {
		case v > 0:
			out[i] = 1
		case v < 0:
			out[i] = -1
		}
	}
	return out
}

// SpectralWhiten flattens the amplitude spectrum of x (keeping phase),
// optionally restricted to [loHz, hiHz] at the given rate; outside the band
// the spectrum is zeroed. Used by ambient-noise interferometry.
func SpectralWhiten(x []float64, loHz, hiHz, rate float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	spec := FFTReal(x)
	freqs := FFTFreqs(n, rate)
	for i, v := range spec {
		f := math.Abs(freqs[i])
		mag := math.Hypot(real(v), imag(v))
		if f < loHz || f > hiHz || mag == 0 {
			spec[i] = 0
			continue
		}
		spec[i] = v * complex(1/mag, 0)
	}
	return IFFTReal(spec)
}
