package daslib

import (
	"fmt"
	"math"
	"sync"
)

// Demean subtracts the mean of x, returning a new slice — a thin
// allocating shim over DemeanInPlace.
func Demean(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	DemeanInPlace(out)
	return out
}

// DemeanInPlace subtracts the mean of x in place.
func DemeanInPlace(x []float64) {
	if len(x) == 0 {
		return
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i, v := range x {
		x[i] = v - mean
	}
}

// Detrend removes the least-squares straight-line fit from x, matching
// MATLAB's detrend (the paper's Das_detrend) — a thin allocating shim over
// DetrendInPlace.
func Detrend(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	DetrendInPlace(out)
	return out
}

// DetrendInPlace removes the least-squares straight-line fit from x in
// place.
func DetrendInPlace(x []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	if n == 1 {
		x[0] = 0 // a single point detrends to zero
		return
	}
	// Fit x[i] ≈ a + b·i by least squares on centered indices.
	tMean := float64(n-1) / 2
	var xMean, num, den float64
	for _, v := range x {
		xMean += v
	}
	xMean /= float64(n)
	for i, v := range x {
		dt := float64(i) - tMean
		num += dt * (v - xMean)
		den += dt * dt
	}
	slope := num / den
	for i, v := range x {
		x[i] = v - (xMean + slope*(float64(i)-tMean))
	}
}

// AbsCorr returns the absolute normalized correlation of two equal-length
// vectors, |cos θ(c1, c2)| — the paper's Das_abscorr. Zero vectors
// correlate to 0.
func AbsCorr(c1, c2 []float64) float64 {
	checkLen("AbsCorr", len(c2), len(c1))
	var dot, n1, n2 float64
	for i := range c1 {
		dot += c1[i] * c2[i]
		n1 += c1[i] * c1[i]
		n2 += c2[i] * c2[i]
	}
	if n1 == 0 || n2 == 0 {
		return 0
	}
	return math.Abs(dot) / math.Sqrt(n1*n2)
}

// AbsCorrComplex is AbsCorr for spectra: |⟨c1, c2⟩| / (‖c1‖‖c2‖).
func AbsCorrComplex(c1, c2 []complex128) float64 {
	checkLen("AbsCorrComplex", len(c2), len(c1))
	var dotRe, dotIm, n1, n2 float64
	for i := range c1 {
		a, b := c1[i], c2[i]
		// conj(a) * b
		dotRe += real(a)*real(b) + imag(a)*imag(b)
		dotIm += real(a)*imag(b) - imag(a)*real(b)
		n1 += real(a)*real(a) + imag(a)*imag(a)
		n2 += real(b)*real(b) + imag(b)*imag(b)
	}
	if n1 == 0 || n2 == 0 {
		return 0
	}
	return math.Hypot(dotRe, dotIm) / math.Sqrt(n1*n2)
}

// Interp1 linearly interpolates the function defined by (x0, y0) — x0
// strictly increasing — at the query points x, matching MATLAB's
// interp1(..., 'linear') with end-value extrapolation clamped
// (the paper's Das_interp1). It returns an error if x0 is not increasing.
func Interp1(x0, y0, x []float64) ([]float64, error) {
	if len(x0) != len(y0) {
		return nil, fmt.Errorf("daslib: Interp1 x0/y0 lengths differ: %d vs %d", len(x0), len(y0))
	}
	if len(x0) == 0 {
		return nil, fmt.Errorf("daslib: Interp1 needs at least one sample point")
	}
	for i := 1; i < len(x0); i++ {
		if x0[i] <= x0[i-1] {
			return nil, fmt.Errorf("daslib: Interp1 x0 must be strictly increasing (x0[%d]=%g ≤ x0[%d]=%g)",
				i, x0[i], i-1, x0[i-1])
		}
	}
	out := make([]float64, len(x))
	for i, q := range x {
		switch {
		case q <= x0[0]:
			out[i] = y0[0]
		case q >= x0[len(x0)-1]:
			out[i] = y0[len(y0)-1]
		default:
			// Binary search for the containing interval.
			lo, hi := 0, len(x0)-1
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				if x0[mid] <= q {
					lo = mid
				} else {
					hi = mid
				}
			}
			if q == x0[lo] {
				// Exact hit: avoid 0·(y0[hi]-y0[lo]), which is NaN when the
				// difference overflows.
				out[i] = y0[lo]
				continue
			}
			t := (q - x0[lo]) / (x0[hi] - x0[lo])
			out[i] = y0[lo] + t*(y0[hi]-y0[lo])
		}
	}
	return out, nil
}

// MovingAverage returns the centered moving average of x with window
// 2*half+1, shrinking the window at the edges.
func MovingAverage(x []float64, half int) []float64 {
	n := len(x)
	out := make([]float64, n)
	if half <= 0 {
		copy(out, x)
		return out
	}
	for i := range x {
		lo := max(i-half, 0)
		hi := min(i+half, n-1)
		var s float64
		for j := lo; j <= hi; j++ {
			s += x[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// RMS returns the root-mean-square amplitude of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// hannCache holds the shared Hann window per length, built once like the
// twiddle tables — STFT alone rebuilds the same window per call otherwise.
var hannCache = struct {
	sync.RWMutex
	m map[int][]float64
}{m: map[int][]float64{}}

// hannWin returns the cached n-point Hann window. The returned slice is
// shared and must not be modified.
func hannWin(n int) []float64 {
	hannCache.RLock()
	w, ok := hannCache.m[n]
	hannCache.RUnlock()
	if ok {
		return w
	}
	w = make([]float64, n)
	if n == 1 {
		w[0] = 1
	} else {
		for i := range w {
			w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		}
	}
	hannCache.Lock()
	if have, ok := hannCache.m[n]; ok {
		w = have
	} else {
		hannCache.m[n] = w
	}
	hannCache.Unlock()
	return w
}

// Hann returns an n-point Hann window (periodic form for n>1 symmetric
// definition, as MATLAB's hann(n)). The window vector is cached per length;
// callers get a private copy.
func Hann(n int) []float64 {
	out := make([]float64, n)
	copy(out, hannWin(n))
	return out
}

// besselI0 evaluates the zeroth-order modified Bessel function by series.
func besselI0(x float64) float64 {
	sum := 1.0
	term := 1.0
	half := x / 2
	for k := 1; k < 64; k++ {
		term *= (half / float64(k)) * (half / float64(k))
		sum += term
		if term < 1e-18*sum {
			break
		}
	}
	return sum
}

// kaiserCache holds the shared Kaiser window per (n, beta) — Resample's
// anti-aliasing design rebuilds the same window for every call otherwise.
var kaiserCache = struct {
	sync.RWMutex
	m map[kaiserKey][]float64
}{m: map[kaiserKey][]float64{}}

type kaiserKey struct {
	n    int
	beta float64
}

// kaiserWin returns the cached n-point Kaiser window. The returned slice is
// shared and must not be modified.
func kaiserWin(n int, beta float64) []float64 {
	key := kaiserKey{n, beta}
	kaiserCache.RLock()
	w, ok := kaiserCache.m[key]
	kaiserCache.RUnlock()
	if ok {
		return w
	}
	w = make([]float64, n)
	if n == 1 {
		w[0] = 1
	} else {
		denom := besselI0(beta)
		m := float64(n - 1)
		for i := range w {
			t := 2*float64(i)/m - 1
			w[i] = besselI0(beta*math.Sqrt(1-t*t)) / denom
		}
	}
	kaiserCache.Lock()
	if have, ok := kaiserCache.m[key]; ok {
		w = have
	} else {
		kaiserCache.m[key] = w
	}
	kaiserCache.Unlock()
	return w
}

// Kaiser returns an n-point Kaiser window with shape parameter beta. The
// window vector is cached per (n, beta); callers get a private copy.
func Kaiser(n int, beta float64) []float64 {
	out := make([]float64, n)
	copy(out, kaiserWin(n, beta))
	return out
}

// taperCache holds the shared cosine ramp per taper width w: ramp[i] =
// 0.5·(1-cos(πi/w)). Detection pipelines taper every channel of every
// window with the same width, so the trig is paid once.
var taperCache = struct {
	sync.RWMutex
	m map[int][]float64
}{m: map[int][]float64{}}

func taperRamp(w int) []float64 {
	taperCache.RLock()
	r, ok := taperCache.m[w]
	taperCache.RUnlock()
	if ok {
		return r
	}
	r = make([]float64, w)
	for i := range r {
		r[i] = 0.5 * (1 - math.Cos(math.Pi*float64(i)/float64(w)))
	}
	taperCache.Lock()
	if have, ok := taperCache.m[w]; ok {
		r = have
	} else {
		taperCache.m[w] = r
	}
	taperCache.Unlock()
	return r
}

// Taper applies a cosine (Tukey-style) taper covering frac of each end of
// x in place and returns x, the standard pre-processing step before
// spectral analysis of seismic windows.
func Taper(x []float64, frac float64) []float64 {
	TaperInPlace(x, frac)
	return x
}

// TaperInPlace is Taper without the return value — the canonical mutating
// form, with the cosine ramp served from the per-width cache.
func TaperInPlace(x []float64, frac float64) {
	n := len(x)
	w := int(frac * float64(n))
	if w <= 0 || n == 0 {
		return
	}
	if w > n/2 {
		w = n / 2
	}
	ramp := taperRamp(w)
	for i := 0; i < w; i++ {
		g := ramp[i]
		x[i] *= g
		x[n-1-i] *= g
	}
}

// OneBitNormalize replaces each sample by its sign — a standard
// ambient-noise pre-processing step that suppresses transient bursts.
func OneBitNormalize(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		switch {
		case v > 0:
			out[i] = 1
		case v < 0:
			out[i] = -1
		}
	}
	return out
}

// SpectralWhiten flattens the amplitude spectrum of x (keeping phase),
// optionally restricted to [loHz, hiHz] at the given rate; outside the band
// the spectrum is zeroed. Used by ambient-noise interferometry. A thin
// allocating shim over SpectralWhitenInto.
func SpectralWhiten(x []float64, loHz, hiHz, rate float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	s := GetScratch()
	SpectralWhitenInto(out, x, loHz, hiHz, rate, s)
	PutScratch(s)
	return out
}

// SpectralWhitenInto is SpectralWhiten writing into dst (len(dst) ==
// len(x); dst may alias x), borrowing the spectrum buffer from s. Both
// transforms take the packed real-input path, and the bin frequencies come
// from fftFreqAbs rather than a materialized FFTFreqs table.
func SpectralWhitenInto(dst, x []float64, loHz, hiHz, rate float64, s *Scratch) {
	n := len(x)
	checkLen("SpectralWhitenInto dst", len(dst), n)
	if n == 0 {
		return
	}
	spec := s.Complex(n)
	RFFTInto(spec, x, s)
	for i, v := range spec {
		f := fftFreqAbs(i, n, rate)
		mag := math.Hypot(real(v), imag(v))
		if f < loHz || f > hiHz || mag == 0 {
			spec[i] = 0
			continue
		}
		spec[i] = v * complex(1/mag, 0)
	}
	IRFFTInto(dst, spec, s)
	s.ReleaseComplex(spec)
}
