// Package daslib is DASSA's DAS data analysis library: thread-safe,
// sequential signal-processing kernels whose names and semantics follow the
// MATLAB signal processing toolbox (the paper's Table II). The hybrid
// execution engine (internal/haee) parallelizes these kernels over channels;
// nothing in this package spawns goroutines or holds global state.
package daslib

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT computes the discrete Fourier transform of x (any length) and returns
// a new slice. Power-of-two lengths use an iterative radix-2 Cooley-Tukey;
// other lengths use Bluestein's chirp-z algorithm, so the cost is
// O(n log n) for every n. Matches Das_fft in the paper's Table II.
func FFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if n&(n-1) == 0 {
		fftPow2(out, false)
		return out
	}
	return bluestein(out)
}

// IFFT computes the inverse DFT with 1/n normalization. Matches Das_ifft.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for i, v := range x {
		out[i] = cmplx.Conj(v)
	}
	if n > 1 {
		if n&(n-1) == 0 {
			fftPow2(out, false)
		} else {
			out = bluestein(out)
		}
	}
	inv := 1 / float64(n)
	for i, v := range out {
		out[i] = cmplx.Conj(v) * complex(inv, 0)
	}
	return out
}

// FFTReal transforms a real signal, returning the full complex spectrum.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// IFFTReal inverts a spectrum known to come from a real signal, returning
// the real part (the imaginary residue is numerical noise).
func IFFTReal(x []complex128) []float64 {
	c := IFFT(x)
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return out
}

// twiddleCache holds precomputed unit-circle factors per transform size.
// DAS pipelines transform the same window length millions of times, so the
// cache pays for itself immediately; entries are immutable once stored.
var twiddleCache sync.Map // int -> []complex128

// twiddles returns exp(-2πi·k/n) for k in [0, n/2).
func twiddles(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	actual, _ := twiddleCache.LoadOrStore(n, tw)
	return actual.([]complex128)
}

// fftPow2 is an in-place iterative radix-2 Cooley-Tukey transform.
// len(x) must be a power of two.
func fftPow2(x []complex128, _ bool) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := twiddles(n)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size // index step into the full-size twiddle table
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*stride]
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution of chirps.
func bluestein(x []complex128) []complex128 {
	n := len(x)
	m := NextPow2(2*n - 1)
	// chirp[k] = exp(-iπ k²/n); k² mod 2n avoids precision loss for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		s, c := math.Sincos(-math.Pi * float64(kk) / float64(n))
		chirp[k] = complex(c, s)
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		bc := cmplx.Conj(chirp[k])
		b[k] = bc
		if k > 0 {
			b[m-k] = bc
		}
	}
	fftPow2(a, false)
	fftPow2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	// Inverse pow-2 FFT of a.
	for i := range a {
		a[i] = cmplx.Conj(a[i])
	}
	fftPow2(a, false)
	inv := 1 / float64(m)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = cmplx.Conj(a[k]) * complex(inv, 0) * chirp[k]
	}
	return out
}

// FFTFreqs returns the frequency (Hz) of each DFT bin for a signal of
// length n sampled at rate Hz, with negative frequencies in the upper half
// (MATLAB/NumPy convention).
func FFTFreqs(n int, rate float64) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	df := rate / float64(n)
	half := (n - 1) / 2
	for i := 0; i <= half; i++ {
		out[i] = float64(i) * df
	}
	for i := half + 1; i < n; i++ {
		out[i] = float64(i-n) * df
	}
	return out
}

// checkLen panics with a clear message on impossible internal states.
func checkLen(name string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("daslib: %s: length %d, want %d", name, got, want))
	}
}
