// Package daslib is DASSA's DAS data analysis library: thread-safe,
// sequential signal-processing kernels whose names and semantics follow the
// MATLAB signal processing toolbox (the paper's Table II). The hybrid
// execution engine (internal/haee) parallelizes these kernels over channels;
// nothing in this package spawns goroutines or holds mutable global state —
// the package-level caches (twiddles, windows, plans) are immutable once
// published.
package daslib

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT computes the discrete Fourier transform of x (any length) and returns
// a new slice. Power-of-two lengths use an iterative radix-2 Cooley-Tukey;
// other lengths use Bluestein's chirp-z algorithm, so the cost is
// O(n log n) for every n. Matches Das_fft in the paper's Table II.
//
// FFT is a thin allocating shim over Plan.FFTInto; hot loops should hold a
// Plan and a Scratch and call the Into variant directly.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	if len(x) == 0 {
		return out
	}
	s := GetScratch()
	PlanFFT(len(x)).FFTInto(out, x, s)
	PutScratch(s)
	return out
}

// IFFT computes the inverse DFT with 1/n normalization. Matches Das_ifft.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	if len(x) == 0 {
		return out
	}
	s := GetScratch()
	PlanFFT(len(x)).IFFTInto(out, x, s)
	PutScratch(s)
	return out
}

// FFTReal transforms a real signal, returning the full complex spectrum.
// Even lengths go through the packed real-input transform (RFFT), which
// does half the work of a complex FFT of the same length.
func FFTReal(x []float64) []complex128 {
	return RFFT(x)
}

// IFFTReal inverts a spectrum known to come from a real signal, returning
// the real part (the imaginary residue is numerical noise).
func IFFTReal(x []complex128) []float64 {
	return IRFFT(x)
}

// twiddleCache holds precomputed unit-circle factors per transform size.
// DAS pipelines transform the same window length millions of times, so the
// cache pays for itself immediately; entries are immutable once stored.
// A plain RWMutex-guarded map (not sync.Map) keeps the hit path free of
// interface boxing, so lookups cost no allocation.
var twiddleCache = struct {
	sync.RWMutex
	m map[int][]complex128
}{m: map[int][]complex128{}}

// twiddles returns exp(-2πi·k/n) for k in [0, n/2). The returned slice is
// shared and must not be modified.
func twiddles(n int) []complex128 {
	twiddleCache.RLock()
	tw, ok := twiddleCache.m[n]
	twiddleCache.RUnlock()
	if ok {
		return tw
	}
	tw = make([]complex128, n/2)
	for k := range tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	twiddleCache.Lock()
	if have, ok := twiddleCache.m[n]; ok {
		tw = have
	} else {
		twiddleCache.m[n] = tw
	}
	twiddleCache.Unlock()
	return tw
}

// fftPow2 is an in-place iterative radix-2 Cooley-Tukey transform.
// len(x) must be a power of two.
func fftPow2(x []complex128) {
	fftPow2Tw(x, twiddles(len(x)))
}

// fftPow2Tw is fftPow2 with the twiddle table passed in, so plan-driven
// callers skip the cache lookup entirely.
func fftPow2Tw(x []complex128, tw []complex128) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size // index step into the full-size twiddle table
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*stride]
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// FFTFreqs returns the frequency (Hz) of each DFT bin for a signal of
// length n sampled at rate Hz, with negative frequencies in the upper half
// (MATLAB/NumPy convention).
func FFTFreqs(n int, rate float64) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	df := rate / float64(n)
	half := (n - 1) / 2
	for i := 0; i <= half; i++ {
		out[i] = float64(i) * df
	}
	for i := half + 1; i < n; i++ {
		out[i] = float64(i-n) * df
	}
	return out
}

// fftFreqAbs returns |FFTFreqs(n, rate)[i]| without materializing the table,
// using the exact same arithmetic so band tests agree bit-for-bit.
func fftFreqAbs(i, n int, rate float64) float64 {
	df := rate / float64(n)
	if i <= (n-1)/2 {
		return math.Abs(float64(i) * df)
	}
	return math.Abs(float64(i-n) * df)
}

// checkLen panics with a clear message on impossible internal states.
func checkLen(name string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("daslib: %s: length %d, want %d", name, got, want))
	}
}

// conjScale is the shared IFFT epilogue: x[i] = conj(x[i]) * s.
func conjScale(x []complex128, s float64) {
	cs := complex(s, 0)
	for i, v := range x {
		x[i] = cmplx.Conj(v) * cs
	}
}
