package daslib

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FilterBand selects the Butterworth response type.
type FilterBand int

const (
	// Lowpass passes frequencies below the cutoff.
	Lowpass FilterBand = iota
	// Highpass passes frequencies above the cutoff.
	Highpass
	// Bandpass passes frequencies between two cutoffs.
	Bandpass
	// Bandstop rejects frequencies between two cutoffs.
	Bandstop
)

func (b FilterBand) String() string {
	switch b {
	case Lowpass:
		return "lowpass"
	case Highpass:
		return "highpass"
	case Bandpass:
		return "bandpass"
	case Bandstop:
		return "bandstop"
	default:
		return fmt.Sprintf("FilterBand(%d)", int(b))
	}
}

// Butter designs a digital Butterworth filter of the given order, matching
// MATLAB's butter (the paper's Das_butter). Cutoffs are normalized to the
// Nyquist frequency (0 < wn < 1). Lowpass/Highpass use cutoff[0]; Bandpass
// uses cutoff[0] < cutoff[1]. It returns transfer-function coefficients
// (b, a) with a[0] == 1.
func Butter(order int, band FilterBand, cutoff ...float64) (b, a []float64, err error) {
	if order < 1 || order > 24 {
		return nil, nil, fmt.Errorf("daslib: Butter order %d out of range [1,24]", order)
	}
	var wn []float64
	switch band {
	case Lowpass, Highpass:
		if len(cutoff) != 1 {
			return nil, nil, fmt.Errorf("daslib: %v needs 1 cutoff, got %d", band, len(cutoff))
		}
		wn = cutoff
	case Bandpass, Bandstop:
		if len(cutoff) != 2 || cutoff[0] >= cutoff[1] {
			return nil, nil, fmt.Errorf("daslib: %v needs 2 increasing cutoffs, got %v", band, cutoff)
		}
		wn = cutoff
	default:
		return nil, nil, fmt.Errorf("daslib: unknown band %v", band)
	}
	for _, w := range wn {
		if w <= 0 || w >= 1 {
			return nil, nil, fmt.Errorf("daslib: cutoff %v not in (0,1)", w)
		}
	}

	// Analog Butterworth prototype: order poles on the unit circle's left
	// half, no zeros, unit gain.
	poles := make([]complex128, order)
	for k := 0; k < order; k++ {
		theta := math.Pi * (2*float64(k+1) - 1) / (2 * float64(order))
		poles[k] = cmplx.Exp(complex(0, math.Pi/2+theta))
	}
	var zeros []complex128
	gain := 1.0

	// Pre-warp cutoffs for the bilinear transform (fs = 2, MATLAB's choice).
	const fs = 2.0
	warp := func(w float64) float64 { return 2 * fs * math.Tan(math.Pi*w/2) }

	switch band {
	case Lowpass:
		wo := warp(wn[0])
		for i := range poles {
			poles[i] *= complex(wo, 0)
		}
		gain *= math.Pow(wo, float64(order))
	case Highpass:
		wo := warp(wn[0])
		// k' = k * Re(prod(-z)/prod(-p)); prototype has no zeros.
		prod := complex(1, 0)
		for _, p := range poles {
			prod *= -p
		}
		gain *= real(complex(1, 0) / prod)
		for i := range poles {
			poles[i] = complex(wo, 0) / poles[i]
		}
		zeros = make([]complex128, order) // zeros at s = 0
	case Bandpass:
		w1, w2 := warp(wn[0]), warp(wn[1])
		wo := math.Sqrt(w1 * w2)
		bw := w2 - w1
		newPoles := make([]complex128, 0, 2*order)
		for _, p := range poles {
			ps := p * complex(bw/2, 0)
			d := cmplx.Sqrt(ps*ps - complex(wo*wo, 0))
			newPoles = append(newPoles, ps+d, ps-d)
		}
		poles = newPoles
		zeros = make([]complex128, order) // zeros at s = 0
		gain *= math.Pow(bw, float64(order))
	case Bandstop:
		w1, w2 := warp(wn[0]), warp(wn[1])
		wo := math.Sqrt(w1 * w2)
		bw := w2 - w1
		// k' = k · Re(prod(-z)/prod(-p)) with the prototype's (no) zeros.
		prod := complex(1, 0)
		for _, p := range poles {
			prod *= -p
		}
		gain *= real(complex(1, 0) / prod)
		newPoles := make([]complex128, 0, 2*order)
		for _, p := range poles {
			ps := complex(bw/2, 0) / p
			d := cmplx.Sqrt(ps*ps - complex(wo*wo, 0))
			newPoles = append(newPoles, ps+d, ps-d)
		}
		poles = newPoles
		// 2·order zeros at ±j·wo (the notch).
		zeros = make([]complex128, 0, 2*order)
		for k := 0; k < order; k++ {
			zeros = append(zeros, complex(0, wo), complex(0, -wo))
		}
	}

	// Bilinear transform to the z-domain: z = (2fs + s) / (2fs - s).
	fs2 := complex(2*fs, 0)
	zDig := make([]complex128, len(zeros))
	pDig := make([]complex128, len(poles))
	num := complex(1, 0)
	den := complex(1, 0)
	for i, z := range zeros {
		zDig[i] = (fs2 + z) / (fs2 - z)
		num *= fs2 - z
	}
	for i, p := range poles {
		pDig[i] = (fs2 + p) / (fs2 - p)
		den *= fs2 - p
	}
	gain *= real(num / den)
	// Degree-matching zeros at z = -1.
	for len(zDig) < len(pDig) {
		zDig = append(zDig, complex(-1, 0))
	}

	bc := polyFromRoots(zDig)
	ac := polyFromRoots(pDig)
	b = make([]float64, len(bc))
	a = make([]float64, len(ac))
	for i, v := range bc {
		b[i] = real(v) * gain
	}
	for i, v := range ac {
		a[i] = real(v)
	}
	return b, a, nil
}

// polyFromRoots expands prod (x - r_i) into descending-power coefficients
// with leading coefficient 1.
func polyFromRoots(roots []complex128) []complex128 {
	coeffs := make([]complex128, 1, len(roots)+1)
	coeffs[0] = 1
	for _, r := range roots {
		coeffs = append(coeffs, 0)
		for i := len(coeffs) - 1; i >= 1; i-- {
			coeffs[i] -= r * coeffs[i-1]
		}
	}
	return coeffs
}

// Filter applies the IIR/FIR filter (b, a) to x using the transposed
// direct-form II structure, like MATLAB's filter. zi, if non-nil, supplies
// the initial delay-line state (length max(len(a),len(b))-1) and receives
// the final state.
func Filter(b, a, x []float64, zi []float64) ([]float64, error) {
	if len(a) == 0 || a[0] == 0 {
		return nil, fmt.Errorf("daslib: Filter needs a[0] != 0")
	}
	n := max(len(a), len(b))
	// Normalize to a[0] == 1 and equal lengths.
	bn := make([]float64, n)
	an := make([]float64, n)
	for i := range b {
		bn[i] = b[i] / a[0]
	}
	for i := range a {
		an[i] = a[i] / a[0]
	}
	var z []float64
	if zi != nil {
		if len(zi) != n-1 {
			return nil, fmt.Errorf("daslib: Filter zi length %d, want %d", len(zi), n-1)
		}
		z = zi
	} else {
		z = make([]float64, n-1)
	}
	y := make([]float64, len(x))
	filterCore(bn, an, x, y, z)
	return y, nil
}

// filterCore runs the transposed direct-form II loop with normalized,
// equal-length coefficients (a[0] == 1). y may alias x — y[i] depends only
// on x[i] and the delay line z (length len(bn)-1), which is updated in
// place.
func filterCore(bn, an, x, y, z []float64) {
	n := len(bn)
	for i, xv := range x {
		var yv float64
		if n == 1 {
			yv = bn[0] * xv
		} else {
			yv = bn[0]*xv + z[0]
			for j := 0; j < n-2; j++ {
				z[j] = bn[j+1]*xv + z[j+1] - an[j+1]*yv
			}
			z[n-2] = bn[n-1]*xv - an[n-1]*yv
		}
		y[i] = yv
	}
}

// lfilterZI computes the steady-state delay-line state of (b, a) for a unit
// step input, as scipy's lfilter_zi does: zi solves (I - Aᵀ)zi = B with A
// the companion matrix of a and B = b[1:] - a[1:]·b[0].
func lfilterZI(b, a []float64) ([]float64, error) {
	n := max(len(a), len(b))
	if n < 2 {
		return []float64{}, nil
	}
	bn := make([]float64, n)
	an := make([]float64, n)
	for i := range b {
		bn[i] = b[i] / a[0]
	}
	for i := range a {
		an[i] = a[i] / a[0]
	}
	m := n - 1
	// M = I - companion(an)ᵀ. companion C: C[0][j] = -an[j+1]; C[i][i-1]=1.
	M := make([][]float64, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		M[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			var cT float64
			if j == 0 {
				cT = -an[i+1] // Cᵀ[i][0] = C[0][i]
			}
			if i+1 == j {
				cT += 1 // Cᵀ[i][i+1] = C[i+1][i] = 1
			}
			if i == j {
				M[i][j] = 1 - cT
			} else {
				M[i][j] = -cT
			}
		}
		rhs[i] = bn[i+1] - an[i+1]*bn[0]
	}
	zi, ok := solveLinear(M, rhs)
	if !ok {
		return nil, fmt.Errorf("daslib: lfilter_zi system is singular")
	}
	return zi, nil
}

// solveLinear solves M·x = rhs by Gaussian elimination with partial
// pivoting, mutating its arguments. Returns ok=false if singular.
func solveLinear(M [][]float64, rhs []float64) ([]float64, bool) {
	n := len(M)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(M[r][col]) > math.Abs(M[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(M[pivot][col]) < 1e-300 {
			return nil, false
		}
		M[col], M[pivot] = M[pivot], M[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		inv := 1 / M[col][col]
		for r := col + 1; r < n; r++ {
			f := M[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				M[r][c] -= f * M[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := rhs[r]
		for c := r + 1; c < n; c++ {
			s -= M[r][c] * x[c]
		}
		x[r] = s / M[r][r]
	}
	return x, true
}

// FilterPlan is a filter design prepared once for repeated zero-phase
// application: coefficients normalized to a[0] == 1 and padded to equal
// length, plus the steady-state unit-step initial conditions FiltFilt
// scales per signal. Detection pipelines run the same Butterworth design
// over every channel of every window; the plan hoists the normalization
// and the companion-matrix solve out of that loop.
//
// A plan is immutable after NewFilterPlan and safe for concurrent use.
type FilterPlan struct {
	bn, an []float64
	ziUnit []float64
	padlen int
}

// NewFilterPlan normalizes (b, a) and precomputes the filtfilt initial
// conditions.
func NewFilterPlan(b, a []float64) (*FilterPlan, error) {
	if len(a) == 0 || a[0] == 0 {
		return nil, fmt.Errorf("daslib: FilterPlan needs a[0] != 0")
	}
	n := max(len(a), len(b))
	fp := &FilterPlan{
		bn:     make([]float64, n),
		an:     make([]float64, n),
		padlen: 3 * (n - 1),
	}
	for i := range b {
		fp.bn[i] = b[i] / a[0]
	}
	for i := range a {
		fp.an[i] = a[i] / a[0]
	}
	if fp.padlen > 0 {
		zi, err := lfilterZI(b, a)
		if err != nil {
			return nil, err
		}
		fp.ziUnit = zi
	}
	return fp, nil
}

// PadLen returns the reflection padding the plan applies per end; inputs
// to FiltFiltInto must be longer than this.
func (fp *FilterPlan) PadLen() int { return fp.padlen }

// FiltFiltInto zero-phase filters x into dst (len(dst) == len(x); dst may
// alias x), borrowing the extension and delay-line buffers from s. Both
// filter passes run in place on the extension buffer, so a warm scratch
// makes the whole call allocation-free.
func (fp *FilterPlan) FiltFiltInto(dst, x []float64, s *Scratch) error {
	checkLen("FiltFiltInto dst", len(dst), len(x))
	if fp.padlen == 0 {
		filterCore(fp.bn, fp.an, x, dst, nil)
		return nil
	}
	if len(x) <= fp.padlen {
		return fmt.Errorf("daslib: FiltFilt input length %d must exceed pad length %d", len(x), fp.padlen)
	}
	// Odd extension.
	ext := s.Float(len(x) + 2*fp.padlen)
	idx := 0
	for i := fp.padlen; i >= 1; i-- {
		ext[idx] = 2*x[0] - x[i]
		idx++
	}
	copy(ext[idx:], x)
	idx += len(x)
	for i := len(x) - 2; i >= len(x)-1-fp.padlen; i-- {
		ext[idx] = 2*x[len(x)-1] - x[i]
		idx++
	}
	// Forward pass with zi scaled to the first sample.
	zi := s.Float(len(fp.ziUnit))
	for i, v := range fp.ziUnit {
		zi[i] = v * ext[0]
	}
	filterCore(fp.bn, fp.an, ext, ext, zi)
	reverse(ext)
	for i, v := range fp.ziUnit {
		zi[i] = v * ext[0]
	}
	filterCore(fp.bn, fp.an, ext, ext, zi)
	reverse(ext)
	copy(dst, ext[fp.padlen:fp.padlen+len(x)])
	s.ReleaseFloat(zi)
	s.ReleaseFloat(ext)
	return nil
}

// FiltFilt applies (b, a) forward and backward for zero-phase filtering,
// matching MATLAB's filtfilt (the paper's Das_filtfilt): the signal is
// extended by odd reflection at both ends, filtered with steady-state
// initial conditions, reversed, filtered again, and trimmed.
//
// FiltFilt is a thin allocating shim over FilterPlan.FiltFiltInto; hot
// loops should build the plan once and call the Into variant.
func FiltFilt(b, a, x []float64) ([]float64, error) {
	fp, err := NewFilterPlan(b, a)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(x))
	s := GetScratch()
	err = fp.FiltFiltInto(out, x, s)
	PutScratch(s)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func reverse(x []float64) {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
}

// FreqzMag evaluates |H(e^{jω})| of (b, a) at normalized frequency w
// (0..1, 1 = Nyquist).
func FreqzMag(b, a []float64, w float64) float64 {
	omega := math.Pi * w
	e := complex(math.Cos(-omega), math.Sin(-omega))
	num := polyvalZ(b, e)
	den := polyvalZ(a, e)
	return cmplx.Abs(num / den)
}

// polyvalZ evaluates sum c[i] * z^-i (transfer-function convention).
func polyvalZ(c []float64, z complex128) complex128 {
	acc := complex(0, 0)
	zp := complex(1, 0)
	for _, v := range c {
		acc += complex(v, 0) * zp
		zp *= z
	}
	return acc
}

// BandpassFilter is a convenience wrapper: design an order-n Butterworth
// bandpass for [lo, hi] Hz at the given sampling rate and zero-phase
// filter x.
func BandpassFilter(x []float64, order int, loHz, hiHz, rate float64) ([]float64, error) {
	nyq := rate / 2
	b, a, err := Butter(order, Bandpass, loHz/nyq, hiHz/nyq)
	if err != nil {
		return nil, err
	}
	return FiltFilt(b, a, x)
}

// LowpassFilter zero-phase lowpass-filters x below cutHz.
func LowpassFilter(x []float64, order int, cutHz, rate float64) ([]float64, error) {
	b, a, err := Butter(order, Lowpass, cutHz/(rate/2))
	if err != nil {
		return nil, err
	}
	return FiltFilt(b, a, x)
}

// HighpassFilter zero-phase highpass-filters x above cutHz.
func HighpassFilter(x []float64, order int, cutHz, rate float64) ([]float64, error) {
	b, a, err := Butter(order, Highpass, cutHz/(rate/2))
	if err != nil {
		return nil, err
	}
	return FiltFilt(b, a, x)
}

// NotchFilter zero-phase bandstop-filters x between loHz and hiHz —
// removing powerline hum or a machinery line from DAS records.
func NotchFilter(x []float64, order int, loHz, hiHz, rate float64) ([]float64, error) {
	nyq := rate / 2
	b, a, err := Butter(order, Bandstop, loHz/nyq, hiHz/nyq)
	if err != nil {
		return nil, err
	}
	return FiltFilt(b, a, x)
}
