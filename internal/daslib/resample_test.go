package daslib

import (
	"math"
	"testing"
)

func sine(n int, freqHz, rate float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freqHz * float64(i) / rate)
	}
	return x
}

func TestResampleIdentity(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y, err := Resample(x, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if y[i] != x[i] {
			t.Errorf("identity resample changed data at %d", i)
		}
	}
	// Equal reduced factors are also identity: 3/3 → 1/1.
	y, err = Resample(x, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != len(x) || y[2] != x[2] {
		t.Error("3/3 resample should be identity")
	}
}

func TestResampleValidation(t *testing.T) {
	if _, err := Resample([]float64{1}, 0, 1); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := Resample([]float64{1}, 1, -2); err == nil {
		t.Error("q<0 should fail")
	}
	y, err := Resample(nil, 2, 1)
	if err != nil || len(y) != 0 {
		t.Error("empty input should return empty output")
	}
}

func TestResampleOutputLength(t *testing.T) {
	for _, tc := range []struct{ n, p, q, want int }{
		{100, 1, 2, 50}, {100, 2, 1, 200}, {100, 3, 2, 150}, {101, 1, 2, 51}, {99, 2, 3, 66},
	} {
		x := make([]float64, tc.n)
		y, err := Resample(x, tc.p, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if len(y) != tc.want {
			t.Errorf("Resample(n=%d, %d/%d) length = %d, want %d", tc.n, tc.p, tc.q, len(y), tc.want)
		}
	}
}

func TestResampleDownPreservesTone(t *testing.T) {
	// A 5 Hz tone at 500 Hz, downsampled 2:1, must match the 5 Hz tone
	// sampled at 250 Hz (away from the edges).
	rate := 500.0
	x := sine(2000, 5, rate)
	y, err := Resample(x, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := sine(1000, 5, 250)
	for i := 100; i < 900; i++ {
		if d := math.Abs(y[i] - want[i]); d > 1e-3 {
			t.Fatalf("downsampled[%d] = %g, want %g (diff %g)", i, y[i], want[i], d)
		}
	}
}

func TestResampleUpPreservesTone(t *testing.T) {
	rate := 100.0
	x := sine(500, 3, rate)
	y, err := Resample(x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := sine(1000, 3, 200)
	for i := 100; i < 900; i++ {
		if d := math.Abs(y[i] - want[i]); d > 1e-3 {
			t.Fatalf("upsampled[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestResampleRational(t *testing.T) {
	// 500 Hz → 125 Hz via 1/4 (the paper pipeline decimates raw DAS data).
	rate := 500.0
	x := sine(4000, 8, rate)
	y, err := Resample(x, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := sine(1000, 8, 125)
	for i := 100; i < 900; i++ {
		if d := math.Abs(y[i] - want[i]); d > 2e-3 {
			t.Fatalf("resampled[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestResampleRejectsAliases(t *testing.T) {
	// A 200 Hz tone at 500 Hz sample rate, downsampled 2:1 (new Nyquist
	// 125 Hz), must be attenuated, not aliased to 50 Hz.
	rate := 500.0
	x := sine(4000, 200, rate)
	y, err := Resample(x, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r := RMS(y[200:1800]); r > 0.05 {
		t.Errorf("aliased energy RMS = %g, want ≈0 (input RMS %g)", r, RMS(x))
	}
}

func TestDecimate(t *testing.T) {
	rate := 500.0
	x := sine(4000, 5, rate)
	y, err := Decimate(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 1000 {
		t.Fatalf("Decimate length = %d, want 1000", len(y))
	}
	want := sine(1000, 5, 125)
	for i := 100; i < 900; i++ {
		if d := math.Abs(y[i] - want[i]); d > 1e-2 {
			t.Fatalf("decimated[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	if _, err := Decimate(x, 0); err == nil {
		t.Error("factor 0 should fail")
	}
	y, err = Decimate(x[:10], 1)
	if err != nil || len(y) != 10 {
		t.Error("factor 1 should copy")
	}
}

func TestGCD(t *testing.T) {
	cases := [][3]int{{12, 8, 4}, {7, 3, 1}, {100, 10, 10}, {5, 5, 5}}
	for _, c := range cases {
		if got := gcd(c[0], c[1]); got != c[2] {
			t.Errorf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
