package daslib

import (
	"math"
	"testing"
)

func TestHilbertQuadrature(t *testing.T) {
	// hilbert(cos) = cos + i·sin: the imaginary part of the analytic signal
	// of a cosine is the sine. The tone must complete an integer number of
	// cycles in the window, or leakage perturbs the quadrature.
	const n = 256
	const cycles = 20
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * cycles * float64(i) / n)
	}
	a := Hilbert(x)
	for i := 10; i < n-10; i++ {
		wantIm := math.Sin(2 * math.Pi * cycles * float64(i) / n)
		if d := math.Abs(imag(a[i]) - wantIm); d > 1e-6 {
			t.Fatalf("imag[%d] = %g, want %g", i, imag(a[i]), wantIm)
		}
		if d := math.Abs(real(a[i]) - x[i]); d > 1e-9 {
			t.Fatalf("real part changed at %d", i)
		}
	}
	if Hilbert(nil) != nil {
		t.Error("Hilbert(nil) should be nil")
	}
}

func TestHilbertOddLength(t *testing.T) {
	// Odd lengths take the Bluestein path and the odd Nyquist handling.
	const n = 255
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 8 * float64(i) / float64(n))
	}
	a := Hilbert(x)
	for i := 10; i < n-10; i++ {
		want := math.Sin(2 * math.Pi * 8 * float64(i) / float64(n))
		if d := math.Abs(imag(a[i]) - want); d > 1e-6 {
			t.Fatalf("odd-length quadrature off at %d by %g", i, d)
		}
	}
}

func TestEnvelopeOfModulatedTone(t *testing.T) {
	// envelope(A(t)·cos(ωt)) ≈ A(t) for slowly varying A.
	const n = 1024
	rate := 200.0
	x := make([]float64, n)
	amp := make([]float64, n)
	for i := range x {
		ti := float64(i) / rate
		amp[i] = 1 + 0.5*math.Sin(2*math.Pi*0.5*ti)
		x[i] = amp[i] * math.Cos(2*math.Pi*25*ti)
	}
	env := Envelope(x)
	for i := 100; i < n-100; i++ {
		if d := math.Abs(env[i] - amp[i]); d > 0.02 {
			t.Fatalf("envelope[%d] = %g, want %g", i, env[i], amp[i])
		}
	}
}

func TestSTFTPeakTracksChirp(t *testing.T) {
	// Two tones in sequence: the spectrogram's peak frequency must switch.
	rate := 256.0
	n := 2048
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / rate
		if i < n/2 {
			x[i] = math.Sin(2 * math.Pi * 32 * ti)
		} else {
			x[i] = math.Sin(2 * math.Pi * 96 * ti)
		}
	}
	sg, err := STFT(x, 256, 128, rate)
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumBins != 129 {
		t.Errorf("NumBins = %d, want 129", sg.NumBins)
	}
	if sg.BinHz != 1 {
		t.Errorf("BinHz = %g, want 1", sg.BinHz)
	}
	early := sg.PeakFrequency(1)
	late := sg.PeakFrequency(len(sg.Mag) - 2)
	if math.Abs(early-32) > 2 {
		t.Errorf("early peak = %g Hz, want 32", early)
	}
	if math.Abs(late-96) > 2 {
		t.Errorf("late peak = %g Hz, want 96", late)
	}
}

func TestSTFTValidation(t *testing.T) {
	x := make([]float64, 100)
	if _, err := STFT(x, 100, 10, 1); err == nil {
		t.Error("non-power-of-two nfft should fail")
	}
	if _, err := STFT(x, 128, 10, 1); err == nil {
		t.Error("input shorter than nfft should fail")
	}
	if _, err := STFT(x, 64, 0, 1); err == nil {
		t.Error("zero hop should fail")
	}
	sg, err := STFT(x, 64, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sg.PeakFrequency(-1); got != 0 {
		t.Error("out-of-range frame should return 0")
	}
}

func TestMedianFilterDespikes(t *testing.T) {
	x := []float64{1, 1, 1, 100, 1, 1, 1}
	got := MedianFilter(x, 1)
	if got[3] != 1 {
		t.Errorf("spike survived: %g", got[3])
	}
	// Identity for half=0.
	got = MedianFilter(x, 0)
	if got[3] != 100 {
		t.Error("half=0 should be identity")
	}
	// Even-count edge windows average the two middles.
	got = MedianFilter([]float64{1, 3}, 1)
	if got[0] != 2 || got[1] != 2 {
		t.Errorf("edge medians = %v", got)
	}
}

func TestInstantaneousPhaseLinear(t *testing.T) {
	// The unwrapped phase of a pure tone advances linearly at ω rad/sample.
	// Integer cycles in the window keep leakage out of the phase estimate.
	const n = 512
	const cycles = 36
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * cycles * float64(i) / n)
	}
	ph := InstantaneousPhase(x)
	slope := 2 * math.Pi * cycles / float64(n)
	for i := 50; i < n-50; i++ {
		want := ph[50] + slope*float64(i-50)
		if d := math.Abs(ph[i] - want); d > 0.05 {
			t.Fatalf("phase[%d] deviates by %g", i, d)
		}
	}
}

func TestButterBandstopResponse(t *testing.T) {
	lo, hi := 0.25, 0.4
	b, a, err := Butter(3, Bandstop, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 7 || len(a) != 7 {
		t.Fatalf("bandstop order 3 should give 7 coefficients, got %d/%d", len(b), len(a))
	}
	if g := FreqzMag(b, a, 1e-9); math.Abs(g-1) > 1e-6 {
		t.Errorf("DC gain = %g, want 1", g)
	}
	if g := FreqzMag(b, a, 0.999999); math.Abs(g-1) > 1e-4 {
		t.Errorf("Nyquist gain = %g, want 1", g)
	}
	center := math.Sqrt(lo * hi)
	if g := FreqzMag(b, a, center); g > 1e-3 {
		t.Errorf("notch center gain = %g, want ≈0", g)
	}
	for _, edge := range []float64{lo, hi} {
		if g := FreqzMag(b, a, edge); math.Abs(g-math.Sqrt(0.5)) > 1e-5 {
			t.Errorf("edge %g gain = %g, want -3dB", edge, g)
		}
	}
	if Bandstop.String() != "bandstop" {
		t.Error("Bandstop.String broken")
	}
}

func TestFilterConveniences(t *testing.T) {
	rate := 500.0
	n := 4000
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / rate
		x[i] = math.Sin(2*math.Pi*5*ti) + math.Sin(2*math.Pi*60*ti) + math.Sin(2*math.Pi*150*ti)
	}
	// Lowpass keeps 5 Hz, kills 150 Hz.
	y, err := LowpassFilter(x, 4, 20, rate)
	if err != nil {
		t.Fatal(err)
	}
	ref5 := sine(n, 5, rate)
	if c := AbsCorr(y[500:3500], ref5[500:3500]); c < 0.95 {
		t.Errorf("lowpass correlation with 5 Hz = %g", c)
	}
	// Highpass keeps 150 Hz.
	y, err = HighpassFilter(x, 4, 100, rate)
	if err != nil {
		t.Fatal(err)
	}
	ref150 := sine(n, 150, rate)
	if c := AbsCorr(y[500:3500], ref150[500:3500]); c < 0.95 {
		t.Errorf("highpass correlation with 150 Hz = %g", c)
	}
	// Notch removes 60 Hz hum, keeps the rest.
	y, err = NotchFilter(x, 3, 50, 70, rate)
	if err != nil {
		t.Fatal(err)
	}
	spec := FFTReal(y[500:3572])
	freqs := FFTFreqs(len(spec), rate)
	var at60, at5 float64
	for i, f := range freqs {
		mag := math.Hypot(real(spec[i]), imag(spec[i]))
		if math.Abs(f-60) < 0.5 {
			at60 = math.Max(at60, mag)
		}
		if math.Abs(f-5) < 0.5 {
			at5 = math.Max(at5, mag)
		}
	}
	if at60 > at5/20 {
		t.Errorf("notch left 60 Hz at %g vs 5 Hz at %g", at60, at5)
	}
}
