package daslib

import (
	"math"
	"math/rand"
	"testing"
)

// The planned/into kernel layer promises bit-identity with the allocating
// API: every allocating function is a thin shim over its Into counterpart,
// and these tests pin that contract over randomized inputs — including odd
// and prime lengths that take the Bluestein path — so an "optimization"
// that changes operation order (and therefore rounding) fails loudly.

// testLengths mixes power-of-two (radix-2), odd, and prime (Bluestein)
// sizes.
var testLengths = []int{1, 2, 3, 8, 33, 61, 97, 127, 128, 1000, 4096}

func randFloats(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func bitIdenticalC(t *testing.T, name string, n int, got, want []complex128) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s n=%d: length %d, want %d", name, n, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s n=%d: differs at %d: %v vs %v", name, n, i, got[i], want[i])
		}
	}
}

func bitIdenticalF(t *testing.T, name string, n int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s n=%d: length %d, want %d", name, n, len(got), len(want))
	}
	for i := range got {
		// NaN != NaN, so compare bit patterns via the == shortcut plus an
		// explicit both-NaN case.
		if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
			t.Fatalf("%s n=%d: differs at %d: %v vs %v", name, n, i, got[i], want[i])
		}
	}
}

func TestFFTIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewScratch()
	for _, n := range testLengths {
		x := randComplex(rng, n)
		want := FFT(x)
		dst := make([]complex128, n)
		PlanFFT(n).FFTInto(dst, x, s)
		bitIdenticalC(t, "FFTInto", n, dst, want)

		wantInv := IFFT(x)
		PlanFFT(n).IFFTInto(dst, x, s)
		bitIdenticalC(t, "IFFTInto", n, dst, wantInv)
	}
}

func TestFFTIntoAliased(t *testing.T) {
	// dst == src must work: the engine transforms scratch buffers in place.
	rng := rand.New(rand.NewSource(7))
	s := NewScratch()
	for _, n := range []int{8, 61, 128} {
		x := randComplex(rng, n)
		want := FFT(x)
		buf := append([]complex128(nil), x...)
		PlanFFT(n).FFTInto(buf, buf, s)
		bitIdenticalC(t, "FFTInto aliased", n, buf, want)
	}
}

func TestRFFTBitIdenticalToFFTReal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewScratch()
	for _, n := range testLengths {
		x := randFloats(rng, n)
		// FFTReal is itself a shim over RFFT; pin both against RFFTInto.
		want := FFTReal(x)
		bitIdenticalC(t, "RFFT", n, RFFT(x), want)
		dst := make([]complex128, n)
		RFFTInto(dst, x, s)
		bitIdenticalC(t, "RFFTInto", n, dst, want)

		back := IFFTReal(want)
		bitIdenticalF(t, "IRFFT", n, IRFFT(want), back)
		fdst := make([]float64, n)
		IRFFTInto(fdst, want, s)
		bitIdenticalF(t, "IRFFTInto", n, fdst, back)
	}
}

func TestRFFTMatchesNaiveDFT(t *testing.T) {
	// The packed even-length path is new arithmetic, not a shim — check it
	// against the O(n²) reference directly.
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{2, 4, 6, 8, 10, 33, 61, 64, 100, 128} {
		x := randFloats(rng, n)
		xc := make([]complex128, n)
		for i, v := range x {
			xc[i] = complex(v, 0)
		}
		want := dftNaive(xc)
		got := RFFT(x)
		if d := maxAbsDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: RFFT differs from naive DFT by %g", n, d)
		}
	}
}

func TestInPlaceVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range testLengths {
		x := randFloats(rng, n)

		buf := append([]float64(nil), x...)
		DemeanInPlace(buf)
		bitIdenticalF(t, "DemeanInPlace", n, buf, Demean(x))

		copy(buf, x)
		DetrendInPlace(buf)
		bitIdenticalF(t, "DetrendInPlace", n, buf, Detrend(x))

		copy(buf, x)
		TaperInPlace(buf, 0.1)
		bitIdenticalF(t, "TaperInPlace", n, buf, Taper(x, 0.1))
	}
}

func TestSpectralWhitenIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	s := NewScratch()
	for _, n := range []int{33, 61, 128, 1000} {
		x := randFloats(rng, n)
		want := SpectralWhiten(x, 5, 40, 200)
		dst := make([]float64, n)
		SpectralWhitenInto(dst, x, 5, 40, 200, s)
		bitIdenticalF(t, "SpectralWhitenInto", n, dst, want)
	}
}

func TestFiltFiltIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	b, a, err := Butter(4, Bandpass, 5.0/100, 40.0/100)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := NewFilterPlan(b, a)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch()
	for _, n := range []int{61, 97, 128, 1000, 4096} {
		x := randFloats(rng, n)
		want, err := FiltFilt(b, a, x)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, n)
		if err := fp.FiltFiltInto(dst, x, s); err != nil {
			t.Fatal(err)
		}
		bitIdenticalF(t, "FiltFiltInto", n, dst, want)
	}
}

func TestResampleIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, c := range []struct{ n, p, q int }{{128, 1, 2}, {1000, 2, 5}, {997, 3, 7}, {4096, 1, 4}} {
		x := randFloats(rng, c.n)
		want, err := Resample(x, c.p, c.q)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, ResampleLen(c.n, c.p, c.q))
		if err := ResampleInto(dst, x, c.p, c.q, nil); err != nil {
			t.Fatal(err)
		}
		bitIdenticalF(t, "ResampleInto", c.n, dst, want)
	}
}

func TestXCorrIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := NewScratch()
	for _, c := range []struct{ na, nb int }{{8, 8}, {61, 61}, {97, 33}, {128, 128}, {1000, 1000}} {
		a := randFloats(rng, c.na)
		b := randFloats(rng, c.nb)

		want := XCorr(a, b)
		dst := make([]float64, XCorrLen(c.na, c.nb))
		XCorrInto(dst, a, b, s)
		bitIdenticalF(t, "XCorrInto", c.na, dst, want)

		wantN := XCorrNormalized(a, b)
		XCorrNormalizedInto(dst, a, b, s)
		bitIdenticalF(t, "XCorrNormalizedInto", c.na, dst, wantN)
	}
}

func TestXCorrMasterBitIdentical(t *testing.T) {
	// The prepared-master path reuses a precomputed reversed-padded
	// spectrum; it must reproduce pairwise XCorrNormalized bit for bit.
	rng := rand.New(rand.NewSource(37))
	s := NewScratch()
	for _, n := range []int{61, 128, 1000} {
		b := randFloats(rng, n)
		mst := PrepareXCorrMaster(b, n)
		for trial := 0; trial < 3; trial++ {
			a := randFloats(rng, n)
			want := XCorrNormalized(a, b)
			dst := make([]float64, XCorrLen(n, n))
			mst.XCorrNormalizedInto(dst, a, s)
			bitIdenticalF(t, "XCorrMaster", n, dst, want)
			bitIdenticalF(t, "XCorrWithSpectrum", n, XCorrWithSpectrum(a, mst), want)
		}
	}
}

func TestXCorrMasterFallbackLength(t *testing.T) {
	// A series length the master was not prepared for must still produce
	// the pairwise answer (via the fallback), not garbage.
	rng := rand.New(rand.NewSource(41))
	s := NewScratch()
	b := randFloats(rng, 128)
	mst := PrepareXCorrMaster(b, 128)
	a := randFloats(rng, 100)
	want := XCorrNormalized(a, b)
	dst := make([]float64, XCorrLen(100, 128))
	mst.XCorrNormalizedInto(dst, a, s)
	bitIdenticalF(t, "XCorrMaster fallback", 100, dst, want)
}

// TestPlannedPathsAllocFree pins the tentpole promise: after warm-up, the
// planned destination-passing kernels perform zero heap allocations per
// call. Runs under -race in CI — the race detector's shadow memory is not
// Go-heap, so AllocsPerRun still reads 0 on a truly alloc-free path.
func TestPlannedPathsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := NewScratch()
	const n = 4096
	x := randFloats(rng, n)
	xc := randComplex(rng, n)
	xcOdd := randComplex(rng, 1000)
	cdst := make([]complex128, n)
	cdstOdd := make([]complex128, 1000)
	fdst := make([]float64, n)

	b, a, err := Butter(4, Bandpass, 0.05, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := NewFilterPlan(b, a)
	if err != nil {
		t.Fatal(err)
	}
	mst := PrepareXCorrMaster(x, n)
	corr := make([]float64, XCorrLen(n, n))
	res := make([]float64, ResampleLen(n, 1, 4))

	pow2 := PlanFFT(n)
	blue := PlanFFT(1000)
	cases := []struct {
		name string
		fn   func()
	}{
		{"FFTInto/pow2", func() { pow2.FFTInto(cdst, xc, s) }},
		{"FFTInto/bluestein", func() { blue.FFTInto(cdstOdd, xcOdd, s) }},
		{"IFFTInto", func() { pow2.IFFTInto(cdst, xc, s) }},
		{"RFFTInto", func() { RFFTInto(cdst, x, s) }},
		{"IRFFTInto", func() { IRFFTInto(fdst, cdst, s) }},
		{"DemeanInPlace", func() { DemeanInPlace(fdst) }},
		{"DetrendInPlace", func() { DetrendInPlace(fdst) }},
		{"TaperInPlace", func() { TaperInPlace(fdst, 0.1) }},
		{"FiltFiltInto", func() {
			if err := fp.FiltFiltInto(fdst, x, s); err != nil {
				t.Fatal(err)
			}
		}},
		{"ResampleInto", func() {
			if err := ResampleInto(res, x, 1, 4, s); err != nil {
				t.Fatal(err)
			}
		}},
		{"XCorrInto", func() { XCorrInto(corr, x, x, s) }},
		{"XCorrNormalizedInto", func() { XCorrNormalizedInto(corr, x, x, s) }},
		{"XCorrMaster", func() { mst.XCorrNormalizedInto(corr, x, s) }},
	}
	for _, c := range cases {
		c.fn() // warm plan caches and grow the scratch free lists
		if avg := testing.AllocsPerRun(10, c.fn); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, avg)
		}
	}
}

func FuzzRFFTRoundTrip(f *testing.F) {
	// Seed pow2, odd, and prime lengths so both the packed even path and
	// the complex fallback get fuzzed from the start.
	for _, n := range []int{1, 2, 8, 33, 61, 97, 127, 128, 1024} {
		f.Add(n, int64(1))
	}
	f.Fuzz(func(t *testing.T, n int, seed int64) {
		if n < 1 || n > 4096 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		x := randFloats(rng, n)

		// Round trip within tolerance.
		spec := RFFT(x)
		back := IRFFT(spec)
		if len(back) != n {
			t.Fatalf("round trip length %d, want %d", len(back), n)
		}
		scale := 0.0
		for _, v := range x {
			scale = math.Max(scale, math.Abs(v))
		}
		tol := 1e-9 * (1 + scale) * float64(n)
		for i := range x {
			if math.Abs(back[i]-x[i]) > tol {
				t.Fatalf("n=%d: round trip differs at %d: %g vs %g", n, i, back[i], x[i])
			}
		}

		// Real-input spectra are conjugate-symmetric: spec[k] == conj(spec[n-k]).
		for k := 1; k < n; k++ {
			re := real(spec[k]) - real(spec[n-k])
			im := imag(spec[k]) + imag(spec[n-k])
			if math.Abs(re) > tol || math.Abs(im) > tol {
				t.Fatalf("n=%d: conjugate symmetry violated at bin %d", n, k)
			}
		}

		// And RFFT must agree with the generic complex transform.
		s := NewScratch()
		dst := make([]complex128, n)
		RFFTInto(dst, x, s)
		bitIdenticalC(t, "RFFTInto vs RFFT", n, dst, spec)
	})
}

// BenchmarkDasLibKernels measures the planned kernel paths the engine runs
// per channel; allocs/op must stay 0 (see TestPlannedPathsAllocFree).
func BenchmarkDasLibKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewScratch()
	const n = 4096
	x := randFloats(rng, n)
	cdst := make([]complex128, n)
	fdst := make([]float64, n)
	bb, aa, err := Butter(4, Bandpass, 0.05, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	fp, err := NewFilterPlan(bb, aa)
	if err != nil {
		b.Fatal(err)
	}
	mst := PrepareXCorrMaster(x, n)
	corr := make([]float64, XCorrLen(n, n))

	b.Run("RFFTInto_4096", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			RFFTInto(cdst, x, s)
		}
	})
	b.Run("FFTReal_4096_alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			FFTReal(x)
		}
	})
	b.Run("FiltFiltInto_4096", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fp.FiltFiltInto(fdst, x, s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("XCorrMaster_4096", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mst.XCorrNormalizedInto(corr, x, s)
		}
	})
	b.Run("XCorrNormalized_4096_alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			XCorrNormalized(x, x)
		}
	})
}
