package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"dassa/internal/lint/loader"
)

const ignoreSrc = `package p

func a() {
	_ = 1 //dassalint:ignore lockio startup-only path
}

func b() {
	//dassalint:ignore closecheck, lockio justified
	_ = 2
}

func c() {
	_ = 3 //dassalint:ignore all everything hushed here
}

func d() {
	_ = 4 // no ignore at all
}
`

func TestIgnoreSuppression(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ig := collectIgnores(&loader.Package{Fset: fset, Files: []*ast.File{f}})

	at := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "lockio", true},       // same-line trailing comment
		{4, "closecheck", false},  // different analyzer not covered
		{9, "closecheck", true},   // comment line above the statement
		{9, "lockio", true},       // comma-separated list
		{9, "metriclabel", false}, // not in the list
		{13, "wraperr", true},     // "all" covers every analyzer
		{17, "lockio", false},     // plain comment is not an ignore
	}
	for _, c := range cases {
		if got := ig.covers(at(c.line), c.analyzer); got != c.want {
			t.Errorf("covers(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

func TestAnalyzersComplete(t *testing.T) {
	want := []string{"closecheck", "cowopt", "lockio", "metriclabel", "spanclose", "wraperr"}
	got := names(Analyzers())
	if len(got) != len(want) {
		t.Fatalf("Analyzers() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Analyzers()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
