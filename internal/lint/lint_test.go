package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"dassa/internal/lint/loader"
)

const ignoreSrc = `package p

func a() {
	_ = 1 //dassalint:ignore lockio startup-only path
}

func b() {
	//dassalint:ignore closecheck, lockio justified
	_ = 2
}

func c() {
	_ = 3 //dassalint:ignore all everything hushed here
}

func d() {
	_ = 4 // no ignore at all
}
`

func TestIgnoreSuppression(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ig := CollectIgnores(&loader.Package{Fset: fset, Files: []*ast.File{f}})

	at := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "lockio", true},       // same-line trailing comment
		{4, "closecheck", false},  // different analyzer not covered
		{9, "closecheck", true},   // comment line above the statement
		{9, "lockio", true},       // comma-separated list
		{9, "metriclabel", false}, // not in the list
		{13, "wraperr", true},     // "all" covers every analyzer
		{17, "lockio", false},     // plain comment is not an ignore
	}
	for _, c := range cases {
		if got := ig.Covers(at(c.line), c.analyzer); got != c.want {
			t.Errorf("Covers(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

const staleIgnoreSrc = `package p

func a() {
	_ = 1 //dassalint:ignore lockvet typo of a real analyzer
}

func b() {
	_ = 2 //dassalint:ignore goleak, nosuch one real, one stale
}

func c() {
	_ = 3 //dassalint:ignore all valid
}
`

func TestAuditIgnoresFlagsUnknownNames(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", staleIgnoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"all": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	got := auditIgnores(&loader.Package{Fset: fset, Files: []*ast.File{f}}, known)
	if len(got) != 2 {
		t.Fatalf("auditIgnores found %d findings, want 2: %v", len(got), got)
	}
	for i, wantName := range []string{"lockvet", "nosuch"} {
		if !strings.Contains(got[i].Message, wantName) {
			t.Errorf("finding %d = %q, want mention of %q", i, got[i].Message, wantName)
		}
		if got[i].Analyzer != "dassalint" {
			t.Errorf("finding %d analyzer = %q, want dassalint", i, got[i].Analyzer)
		}
	}
}

func TestAnalyzersComplete(t *testing.T) {
	want := []string{"closecheck", "cowopt", "goleak", "lockio", "metriclabel", "spanclose", "wraperr"}
	got := names(Analyzers())
	if len(got) != len(want) {
		t.Fatalf("Analyzers() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Analyzers()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
