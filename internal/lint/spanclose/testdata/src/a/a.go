package a

import (
	"errors"
	"time"
)

// Local stand-ins with the obs API shape: Spans.Start returns a Span
// whose End records the elapsed phase time.
type Spans struct{}

type Span struct{}

func (s *Spans) Start(rank, phase int) Span { return Span{} }

func (sp Span) End() time.Duration { return 0 }

func work() error { return errors.New("boom") }

func finish(sp Span) {}

type holder struct{ sp Span }

// Clean: the canonical form survives early returns and panics.
func goodDefer(s *Spans) error {
	sp := s.Start(0, 1)
	defer sp.End()
	return work()
}

// Clean: straight-line Start then End, nothing can skip it.
func goodLinear(s *Spans) {
	sp := s.Start(0, 1)
	_ = work()
	sp.End()
}

// Clean: chained Start-End measures an empty phase but closes it.
func goodChained(s *Spans) {
	s.Start(0, 1).End()
}

// Clean: handing the span to another function transfers responsibility.
func goodEscapeArg(s *Spans) {
	sp := s.Start(0, 1)
	finish(sp)
}

// Clean: returning the span transfers responsibility to the caller.
func goodEscapeReturn(s *Spans) Span {
	return s.Start(0, 1)
}

// Clean: a deferred closure ends it.
func goodDeferClosure(s *Spans) error {
	sp := s.Start(0, 1)
	defer func() {
		sp.End()
	}()
	return work()
}

// Clean: stored into a field — whoever owns the struct ends it.
func goodEscapeField(s *Spans, h *holder) {
	sp := s.Start(0, 1)
	h.sp = sp
}

// Bad: the Span result is thrown away; End can never be called.
func badDiscarded(s *Spans) {
	s.Start(0, 1) // want `spanclose: Span result discarded`
}

// Bad: assigned to blank, same hole.
func badBlank(s *Spans) {
	_ = s.Start(0, 1) // want `spanclose: Span result discarded`
}

// Bad: started and simply never ended.
func badNeverEnded(s *Spans) {
	sp := s.Start(0, 1) // want `spanclose: span is started but never ended`
	_ = sp
	_ = work()
}

// Bad: the early return skips the End.
func badEarlyReturn(s *Spans) error {
	sp := s.Start(0, 1) // want `spanclose: span may not be ended on every return path`
	if err := work(); err != nil {
		return err
	}
	sp.End()
	return nil
}

// Stand-ins with the trace package's constructor shapes: package-level
// Start/New returning (Ctx, *Span), StartRemote returning a third value,
// and EndErr as an alternative closer.
type Ctx struct{}

type Remote struct{}

// Local names matter, not import paths: the analyzer matches the
// constructor name and a (possibly pointer) result type named Span.
func Start(c Ctx, name string) (Ctx, *Span)   { return c, &Span{} }
func New(c Ctx, name string) (Ctx, *Span)     { return c, &Span{} }
func StartRemote(c Ctx) (Ctx, *Span, *Remote) { return c, &Span{}, &Remote{} }

func (sp *Span) EndErr(err error) {}

// Clean: multi-result Start, EndErr on the straight line.
func goodMultiEndErr(c Ctx) error {
	c2, sp := Start(c, "op")
	_ = c2
	err := work()
	sp.EndErr(err)
	return err
}

// Clean: New with End via deferred closure.
func goodNewDeferClosure(c Ctx) error {
	_, sp := New(c, "op")
	defer func() {
		sp.EndErr(nil)
	}()
	return work()
}

// Clean: three-result StartRemote, ended before the conditional return.
func goodStartRemote(c Ctx) error {
	_, sp, rem := StartRemote(c)
	_ = rem
	err := work()
	sp.EndErr(err)
	if err != nil {
		return err
	}
	return nil
}

// Clean: span escapes by return — the caller owns it now.
func goodMultiEscape(c Ctx) (Ctx, *Span) {
	c2, sp := Start(c, "op")
	return c2, sp
}

// Bad: Span result bound to blank in a multi-assign.
func badMultiBlank(c Ctx) {
	_, _ = Start(c, "op") // want `spanclose: Span result discarded`
}

// Bad: multi-result span never ended.
func badMultiNeverEnded(c Ctx) {
	_, sp := New(c, "op") // want `spanclose: span is started but never ended`
	_ = sp
}

// Bad: the early return between Start and EndErr skips the close.
func badMultiEarlyReturn(c Ctx) error {
	_, sp := Start(c, "op") // want `spanclose: span may not be ended on every return path`
	if err := work(); err != nil {
		return err
	}
	sp.EndErr(nil)
	return nil
}
