package a

import (
	"errors"
	"time"
)

// Local stand-ins with the obs API shape: Spans.Start returns a Span
// whose End records the elapsed phase time.
type Spans struct{}

type Span struct{}

func (s *Spans) Start(rank, phase int) Span { return Span{} }

func (sp Span) End() time.Duration { return 0 }

func work() error { return errors.New("boom") }

func finish(sp Span) {}

type holder struct{ sp Span }

// Clean: the canonical form survives early returns and panics.
func goodDefer(s *Spans) error {
	sp := s.Start(0, 1)
	defer sp.End()
	return work()
}

// Clean: straight-line Start then End, nothing can skip it.
func goodLinear(s *Spans) {
	sp := s.Start(0, 1)
	_ = work()
	sp.End()
}

// Clean: chained Start-End measures an empty phase but closes it.
func goodChained(s *Spans) {
	s.Start(0, 1).End()
}

// Clean: handing the span to another function transfers responsibility.
func goodEscapeArg(s *Spans) {
	sp := s.Start(0, 1)
	finish(sp)
}

// Clean: returning the span transfers responsibility to the caller.
func goodEscapeReturn(s *Spans) Span {
	return s.Start(0, 1)
}

// Clean: a deferred closure ends it.
func goodDeferClosure(s *Spans) error {
	sp := s.Start(0, 1)
	defer func() {
		sp.End()
	}()
	return work()
}

// Clean: stored into a field — whoever owns the struct ends it.
func goodEscapeField(s *Spans, h *holder) {
	sp := s.Start(0, 1)
	h.sp = sp
}

// Bad: the Span result is thrown away; End can never be called.
func badDiscarded(s *Spans) {
	s.Start(0, 1) // want `spanclose: Span result discarded`
}

// Bad: assigned to blank, same hole.
func badBlank(s *Spans) {
	_ = s.Start(0, 1) // want `spanclose: Span result discarded`
}

// Bad: started and simply never ended.
func badNeverEnded(s *Spans) {
	sp := s.Start(0, 1) // want `spanclose: span is started but never ended`
	_ = sp
	_ = work()
}

// Bad: the early return skips the End.
func badEarlyReturn(s *Spans) error {
	sp := s.Start(0, 1) // want `spanclose: span may not be ended on every return path`
	if err := work(); err != nil {
		return err
	}
	sp.End()
	return nil
}
