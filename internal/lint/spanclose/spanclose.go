// Package spanclose verifies that every phase span started with
// Spans.Start is ended on all paths out of the function: either via
// `defer sp.End()` (which also survives panics) or by an End call that no
// early return can skip. An unclosed span silently drops a rank's phase
// time and skews the read/exchange/compute breakdown the paper's figures
// are built from.
package spanclose

import (
	"go/ast"
	"go/types"

	"dassa/internal/lint/analysis"
	"dassa/internal/lint/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "spanclose",
	Doc: "every span constructor (Spans.Start, trace.Start/New/StartRemote) " +
		"must be matched by End or EndErr on all return paths " +
		"(including panics) — prefer `defer sp.End()`",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, u := range astutil.Units(f) {
			checkUnit(pass, u)
		}
	}
	return nil
}

// spanResult matches a call that creates a span: a callee named Start,
// New, or StartRemote with exactly one result whose (possibly pointer)
// named type is Span — the obs.Spans method shape and the trace package's
// multi-result constructors (`ctx, sp := trace.Start(...)`), without
// hard-coding import paths so testdata stand-ins are exercised too.
// Returns the Span's index among the call's results.
func spanResult(pass *analysis.Pass, call *ast.CallExpr) (idx, results int, ok bool) {
	fn := astutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return 0, 0, false
	}
	switch fn.Name() {
	case "Start", "New", "StartRemote":
	default:
		return 0, 0, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return 0, 0, false
	}
	idx = -1
	for i := 0; i < sig.Results().Len(); i++ {
		res := astutil.NamedOf(sig.Results().At(i).Type())
		if res == nil || res.Obj().Name() != "Span" {
			continue
		}
		if idx >= 0 {
			return 0, 0, false // two Span results: ownership is ambiguous
		}
		idx = i
	}
	if idx < 0 {
		return 0, 0, false
	}
	return idx, sig.Results().Len(), true
}

func checkUnit(pass *analysis.Pass, u astutil.FuncUnit) {
	// Walk only this unit's own statements; a span started in a closure is
	// that closure's responsibility.
	type start struct {
		call         *ast.CallExpr
		idx, results int
	}
	var starts []start
	astutil.WalkUnit(u.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if idx, results, ok := spanResult(pass, call); ok {
				starts = append(starts, start{call, idx, results})
			}
		}
		return true
	})
	for _, s := range starts {
		checkStart(pass, u, s.call, s.idx, s.results)
	}
}

func checkStart(pass *analysis.Pass, u astutil.FuncUnit, call *ast.CallExpr, idx, results int) {
	// Chained `x.Start(...).End()` ends immediately: fine.
	if parentIsSelector(u.Body, call) {
		return
	}
	// `return s.Start(...)` or `finish(s.Start(...))`: the span escapes
	// unassigned — ending it is the receiver's responsibility.
	if escapesUnassigned(u.Body, call) {
		return
	}
	assign, lhs := assignmentOf(u.Body, call, idx, results)
	if assign == nil || lhs == nil || lhs.Name == "_" {
		pass.Reportf(call.Pos(),
			"spanclose: Span result discarded; the phase time is never recorded — "+
				"assign it and `defer sp.End()`")
		return
	}
	obj := pass.ObjectOf(lhs)
	if obj == nil {
		return
	}

	st := spanTracker{pass: pass, obj: obj}
	astutil.WalkUnit(u.Body, st.visitShallow)
	// Deferred closures count: `defer func() { sp.End() }()`.
	ast.Inspect(u.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && st.isEndOnObj(c) {
						st.deferred = true
					}
					return true
				})
			}
		}
		return true
	})

	switch {
	case st.deferred || st.escapes:
		return
	case len(st.ends) == 0:
		pass.Reportf(call.Pos(),
			"spanclose: span is started but never ended in this function; add `defer %s.End()`", lhs.Name)
	case !endReachesAllPaths(u.Body, assign, st.ends, obj, pass):
		pass.Reportf(call.Pos(),
			"spanclose: span may not be ended on every return path; use `defer %s.End()`", lhs.Name)
	}
}

type spanTracker struct {
	pass     *analysis.Pass
	obj      types.Object
	deferred bool
	escapes  bool
	ends     []ast.Node
}

// visitShallow records defers, direct End calls, and uses of the span
// variable that hand it to other code (argument, return, field store).
func (t *spanTracker) visitShallow(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.DeferStmt:
		if t.isEndOnObj(x.Call) {
			t.deferred = true
		}
		return false
	case *ast.CallExpr:
		if t.isEndOnObj(x) {
			t.ends = append(t.ends, x)
			return true
		}
		for _, arg := range x.Args {
			if t.isObjIdent(arg) {
				t.escapes = true // handed to another function: its problem now
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			if t.isObjIdent(r) {
				t.escapes = true
			}
		}
	case *ast.AssignStmt:
		for i, r := range x.Rhs {
			if t.isObjIdent(r) && i < len(x.Lhs) {
				if _, plain := x.Lhs[i].(*ast.Ident); !plain {
					t.escapes = true // stored into a field/map: tracked elsewhere
				}
			}
		}
	}
	return true
}

func (t *spanTracker) isObjIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && t.pass.ObjectOf(id) == t.obj
}

func (t *spanTracker) isEndOnObj(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "EndErr") {
		return false
	}
	return t.isObjIdent(sel.X)
}

// escapesUnassigned reports whether call's result leaves the function
// without ever being bound to a local: returned directly or passed as an
// argument to another call.
func escapesUnassigned(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if ast.Unparen(r) == call {
					found = true
				}
			}
		case *ast.CallExpr:
			for _, a := range x.Args {
				if ast.Unparen(a) == call {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// parentIsSelector reports whether call is immediately selected on
// (x.Start(...).End() chains).
func parentIsSelector(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && ast.Unparen(sel.X) == call {
			found = true
		}
		return !found
	})
	return found
}

// assignmentOf finds the `sp := x.Start(...)` (or multi-value
// `ctx, sp := trace.Start(...)`) statement and the identifier bound to the
// call's Span result, if that is how the result is consumed.
func assignmentOf(body *ast.BlockStmt, call *ast.CallExpr, idx, results int) (*ast.AssignStmt, *ast.Ident) {
	var as *ast.AssignStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok && len(a.Rhs) == 1 && ast.Unparen(a.Rhs[0]) == call {
			as = a
			return false
		}
		return as == nil
	})
	if as == nil || len(as.Lhs) != results {
		return as, nil
	}
	id, _ := as.Lhs[idx].(*ast.Ident)
	return as, id
}

// endReachesAllPaths approximates "no return skips End": some End call
// must be a sibling of the Start assignment in the same statement list,
// with no intervening statement that returns, branches, or panics.
func endReachesAllPaths(body *ast.BlockStmt, assign *ast.AssignStmt, ends []ast.Node, obj types.Object, pass *analysis.Pass) bool {
	list := enclosingList(body, assign)
	if list == nil {
		return false
	}
	start := -1
	for i, st := range list {
		if st == ast.Stmt(assign) {
			start = i
			break
		}
	}
	if start < 0 {
		return false
	}
	for i := start + 1; i < len(list); i++ {
		if isDirectEnd(list[i], ends) {
			return true
		}
		// Any statement that can leave the function (or hide the End
		// behind a condition) before an unconditional End fails the check.
		if astutil.ContainsReturnOrPanic(list[i]) {
			return false
		}
	}
	return false
}

// isDirectEnd reports whether stmt is an unconditional End call: a bare
// expression statement or a single assignment from the End's result.
func isDirectEnd(stmt ast.Stmt, ends []ast.Node) bool {
	var e ast.Expr
	switch x := stmt.(type) {
	case *ast.ExprStmt:
		e = x.X
	case *ast.AssignStmt:
		if len(x.Rhs) != 1 {
			return false
		}
		e = x.Rhs[0]
	default:
		return false
	}
	e = ast.Unparen(e)
	for _, want := range ends {
		if e == want {
			return true
		}
	}
	return false
}

// enclosingList returns the statement list that directly contains stmt.
func enclosingList(body *ast.BlockStmt, stmt ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch x := n.(type) {
		case *ast.BlockStmt:
			list = x.List
		case *ast.CaseClause:
			list = x.Body
		case *ast.CommClause:
			list = x.Body
		default:
			return out == nil
		}
		for _, st := range list {
			if st == stmt {
				out = list
				return false
			}
		}
		return out == nil
	})
	return out
}
