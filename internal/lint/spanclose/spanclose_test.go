package spanclose_test

import (
	"testing"

	"dassa/internal/lint/analysistest"
	"dassa/internal/lint/spanclose"
)

func TestSpanclose(t *testing.T) {
	analysistest.Run(t, spanclose.Analyzer, analysistest.Testdata("a"))
}
