package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
	"unicode/utf8"
)

func TestWriteJSONShape(t *testing.T) {
	fs := []Finding{
		{
			Analyzer: "goleak",
			Pos:      token.Position{Filename: "internal/serve/ingest.go", Line: 42, Column: 2},
			Message:  "goroutine has no provable join/cancel path",
		},
		{
			Analyzer: "lockio",
			Pos:      token.Position{Filename: `weird "dir"/a b\c.go`, Line: 7, Column: 1},
			Message:  "os.ReadFile while s.mu is held",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fs); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var got []JSONFinding
	for sc.Scan() {
		var jf JSONFinding
		if err := json.Unmarshal(sc.Bytes(), &jf); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		got = append(got, jf)
	}
	if len(got) != len(fs) {
		t.Fatalf("decoded %d findings, want %d", len(got), len(fs))
	}
	for i, jf := range got {
		want := fs[i]
		if jf.File != want.Pos.Filename || jf.Line != want.Pos.Line ||
			jf.Col != want.Pos.Column || jf.Analyzer != want.Analyzer || jf.Message != want.Message {
			t.Errorf("finding %d = %+v, want %+v", i, jf, want)
		}
	}
}

// FuzzFindingsJSON hammers the -json encoder with hostile paths and
// messages: every finding must encode to exactly one parseable line that
// round-trips losslessly for valid UTF-8 inputs.
func FuzzFindingsJSON(f *testing.F) {
	f.Add(`C:\temp\weird "dir"\a.go`, 3, 7, "goleak", `msg with "quotes" and \ backslashes`)
	f.Add("/tmp/файл.go", 1, 1, "lockio", "line1\nline2\ttab")
	f.Add("a\x00b.go", 0, -1, "", "")
	f.Add("emoji/🚀.go", 1<<30, 2, "wraperr", "<script>&amp;</script>")
	f.Fuzz(func(t *testing.T, file string, line, col int, analyzer, msg string) {
		fs := []Finding{{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Message:  msg,
		}}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, fs); err != nil {
			t.Fatalf("WriteJSON(%q): %v", file, err)
		}
		out := buf.Bytes()
		if n := bytes.Count(out, []byte("\n")); n != 1 || out[len(out)-1] != '\n' {
			t.Fatalf("want exactly one newline-terminated line, got %d in %q", n, out)
		}
		var got JSONFinding
		if err := json.Unmarshal(out, &got); err != nil {
			t.Fatalf("output not valid JSON: %v\n%q", err, out)
		}
		if got.Line != line || got.Col != col {
			t.Fatalf("line/col = %d/%d, want %d/%d", got.Line, got.Col, line, col)
		}
		// encoding/json coerces invalid UTF-8 to U+FFFD; exact round-trip
		// is only promised for valid strings.
		if utf8.ValidString(file) && got.File != file {
			t.Fatalf("file round-trip = %q, want %q", got.File, file)
		}
		if utf8.ValidString(msg) && got.Message != msg {
			t.Fatalf("message round-trip = %q, want %q", got.Message, msg)
		}
		if utf8.ValidString(analyzer) && got.Analyzer != analyzer {
			t.Fatalf("analyzer round-trip = %q, want %q", got.Analyzer, analyzer)
		}
	})
}
