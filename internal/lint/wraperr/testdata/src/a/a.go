package a

import (
	"errors"
	"fmt"
)

var ErrGone = errors.New("gone")

type ParseError struct{ Line int }

func (e *ParseError) Error() string { return fmt.Sprintf("parse error at %d", e.Line) }

// Clean: %w keeps the chain reachable.
func wrapOK(err error) error {
	return fmt.Errorf("ctx: %w", err)
}

// Bad: %v flattens the chain.
func wrapBadV(err error) error {
	return fmt.Errorf("ctx: %v", err) // want `wraperr: error argument formatted with %v`
}

// Bad: %s on a later argument.
func wrapBadS(path string, err error) error {
	return fmt.Errorf("open %s: %s", path, err) // want `wraperr: error argument formatted with %s`
}

// Bad: a typed error is flattened too.
func wrapBadTyped(pe *ParseError) error {
	return fmt.Errorf("loading: %v", pe) // want `wraperr: error argument formatted with %v`
}

// Clean: no error arguments at all.
func msgOnly(n int) error {
	return fmt.Errorf("count %d too big", n)
}

// Clean: the error's string form is a string, not an error.
func stringified(err error) error {
	return fmt.Errorf("ctx: %s", err.Error())
}

// Clean: mixing %w with other verbs.
func wrapMixed(path string, err error) error {
	return fmt.Errorf("open %s: %w", path, err)
}

// Clean: errors.Is reaches through wrapping.
func compareOK(err error) bool { return errors.Is(err, ErrGone) }

// Bad: == misses wrapped sentinels.
func compareBad(err error) bool {
	return err == ErrGone // want `wraperr: sentinel error compared with ==`
}

// Bad: != too.
func compareBadNeq(err error) bool {
	return ErrGone != err // want `wraperr: sentinel error compared with !=`
}

// Clean: nil comparison is the blessed direct form.
func compareNil(err error) bool { return err == nil }

// Clean: comparing two plain error values (no sentinel involved).
func compareTwo(a, b error) bool { return a == b }
