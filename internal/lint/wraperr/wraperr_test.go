package wraperr_test

import (
	"testing"

	"dassa/internal/lint/analysistest"
	"dassa/internal/lint/wraperr"
)

func TestWraperr(t *testing.T) {
	analysistest.Run(t, wraperr.Analyzer, analysistest.Testdata("a"))
}
