// Package wraperr enforces DASSA's error-chain convention: an error value
// formatted into fmt.Errorf must travel through %w (so errors.Is/As reach
// sentinel and typed errors through the wrap), and sentinel errors must be
// compared with errors.Is, never ==.
package wraperr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"dassa/internal/lint/analysis"
	"dassa/internal/lint/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "wraperr",
	Doc: "fmt.Errorf must wrap error arguments with %w, and sentinel errors " +
		"(Err* package vars) must be compared via errors.Is, not ==",
	Run: run,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkErrorf(pass, x)
		case *ast.BinaryExpr:
			checkSentinelCompare(pass, x)
		}
		return true
	})
	return nil
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := astutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Errorf" || astutil.PkgPath(fn) != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // dynamic format string: nothing to check
	}
	verbs, ok := parseVerbs(constant.StringVal(tv.Value))
	if !ok {
		return // indexed arguments etc.: mapping args to verbs is unreliable
	}
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		v := verbs[i]
		if v == 'w' || v == '*' {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || !types.Implements(at.Type, errorIface) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"wraperr: error argument formatted with %%%c; use %%w so callers can reach it via errors.Is/As", v)
	}
}

// parseVerbs maps each consumed argument to its verb rune ('*' for a
// width/precision star). ok is false for formats this simple scanner
// cannot map reliably (explicit argument indexes).
func parseVerbs(format string) (verbs []rune, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		for i < len(format) {
			c := format[i]
			switch {
			case c == '[':
				return nil, false
			case strings.ContainsRune("+-# 0.", rune(c)), c >= '0' && c <= '9':
				i++
			case c == '*':
				verbs = append(verbs, '*')
				i++
			default:
				verbs = append(verbs, rune(c))
				goto done
			}
		}
	done:
	}
	return verbs, true
}

func checkSentinelCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isNil(pass, b.X) || isNil(pass, b.Y) {
		return // err == nil is the one blessed direct comparison
	}
	if sentinel(pass, b.X) || sentinel(pass, b.Y) {
		pass.Reportf(b.OpPos,
			"wraperr: sentinel error compared with %s; use errors.Is so wrapped chains still match", b.Op)
	}
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// sentinel reports whether e names a package-level error variable whose
// name starts with Err/err — the sentinel convention.
func sentinel(pass *analysis.Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	v, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	n := v.Name()
	if !strings.HasPrefix(n, "Err") && !strings.HasPrefix(n, "err") {
		return false
	}
	return types.Implements(v.Type(), errorIface)
}
