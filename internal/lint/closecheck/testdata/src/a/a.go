package a

import (
	"bufio"
	"fmt"
	"os"
)

// chunkWriter stands in for the module's writer types: it has a Write
// method and an error-returning Close.
type chunkWriter struct{}

func (w *chunkWriter) WriteRows(p []byte) (int, error) { return len(p), nil }
func (w *chunkWriter) Close() error                    { return nil }

// Bad: deferring Close on a file opened for writing swallows the flush
// error.
func badDeferCreate(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `closecheck: deferred os.File.Close discards its error`
	_, err = f.Write([]byte("x"))
	return err
}

// Bad: a bare Flush statement mid-function drops the error.
func badBareFlush(w *bufio.Writer, n *int) error {
	if _, err := w.WriteString("x"); err != nil {
		return err
	}
	w.Flush() // want `closecheck: Writer.Flush error discarded`
	*n++
	return nil
}

// Bad: trailing unchecked Close (nothing after it, so not cleanup-
// before-exit).
func badTrailingClose(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	_, _ = f.Write([]byte("x"))
	f.Close() // want `closecheck: os.File.Close error discarded`
}

// Bad: module writer types count too.
func badModuleWriter(w *chunkWriter) {
	_, _ = w.WriteRows(nil)
	w.Close() // want `closecheck: chunkWriter.Close error discarded`
}

// Clean: the error is returned to the caller.
func goodChecked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	return f.Close()
}

// Clean: cleanup directly before an error return is the conventional
// "another error is already on its way out" shape.
func goodCleanupBeforeReturn(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}

// Clean: read-only handles carry no data-loss signal in Close.
func goodReadOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// Clean: an explicit discard states the loss is intended.
func goodExplicitDiscard(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	_, _ = f.Write([]byte("x"))
	_ = f.Close()
}
