// Package closecheck flags discarded Close/Flush errors on writable
// handles. For a file being written, Close is the last chance to learn
// that buffered bytes never reached disk — `defer f.Close()` on a file
// opened for writing silently swallows exactly that error. Read-only
// handles are exempt: their Close error carries no data-loss signal.
//
// An unchecked Close immediately followed by a return or panic is
// allowed: that is the conventional "give up, another error is already on
// its way out" cleanup (dasf's write paths use it throughout).
package closecheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"dassa/internal/lint/analysis"
	"dassa/internal/lint/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc: "Close/Flush errors on writable handles must be checked; " +
		"cleanup-before-error-return is exempt",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, u := range astutil.Units(f) {
			checkUnit(pass, u)
		}
	}
	return nil
}

func checkUnit(pass *analysis.Pass, u astutil.FuncUnit) {
	writableFiles := collectWritableFiles(pass, u)

	var walk func(stmts []ast.Stmt)
	visit := func(n ast.Node) {
		switch x := n.(type) {
		case *ast.BlockStmt:
			walk(x.List)
		case *ast.CaseClause:
			walk(x.Body)
		case *ast.CommClause:
			walk(x.Body)
		}
	}
	walk = func(stmts []ast.Stmt) {
		for i, st := range stmts {
			switch x := st.(type) {
			case *ast.DeferStmt:
				if desc, ok := closeOnWritable(pass, x.Call, writableFiles); ok {
					pass.Reportf(x.Pos(),
						"closecheck: deferred %s discards its error — the last write failure "+
							"a writable handle can report; close explicitly and check, or "+
							"defer a closure that records the error", desc)
				}
				continue // don't descend: the defer itself was the finding
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					if desc, ok := closeOnWritable(pass, call, writableFiles); ok {
						if !followedByExit(stmts, i) {
							pass.Reportf(x.Pos(),
								"closecheck: %s error discarded; check it (or `_ = ...` if the "+
									"loss is intended) — cleanup directly before a return/panic is exempt", desc)
						}
						continue
					}
				}
			}
			// Recurse into nested blocks (if/for/switch bodies, etc.).
			ast.Inspect(st, func(n ast.Node) bool {
				if n == st {
					return true
				}
				switch n.(type) {
				case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
					visit(n)
					return false
				case *ast.FuncLit:
					return false // separate unit
				}
				return true
			})
		}
	}
	walk(u.Body.List)
}

// followedByExit reports whether the statement after index i leaves the
// function (return or panic) — the blessed cleanup-then-bail shape.
func followedByExit(stmts []ast.Stmt, i int) bool {
	if i+1 >= len(stmts) {
		return false
	}
	switch stmts[i+1].(type) {
	case *ast.ReturnStmt:
		return true
	}
	return astutil.IsPanicCall(stmts[i+1])
}

// closeOnWritable matches h.Close() / h.Flush() where h is a writable
// handle, returning a description of the call.
func closeOnWritable(pass *analysis.Pass, call *ast.CallExpr, writableFiles map[types.Object]bool) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Close" && name != "Flush" && name != "Sync" {
		return "", false
	}
	fn := astutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return "", false
	}
	recv := astutil.RecvNamed(fn)
	if recv == nil {
		return "", false
	}
	tn := recv.Obj()
	pkgPath := ""
	if tn.Pkg() != nil {
		pkgPath = tn.Pkg().Path()
	}
	desc := tn.Name() + "." + name

	switch {
	case pkgPath == "os" && tn.Name() == "File":
		// Only files this function demonstrably opened for writing.
		root, _, _ := astutil.Chain(sel.X)
		if root == nil || !writableFiles[pass.ObjectOf(root)] {
			return "", false
		}
		return "os.File." + name, true
	case pkgPath == "bufio" && tn.Name() == "Writer":
		return desc, true
	case (pkgPath == "compress/flate" || pkgPath == "compress/gzip" || pkgPath == "compress/zlib") && tn.Name() == "Writer":
		return desc, true
	default:
		// Module-defined writer types: anything with a Write-ish method or
		// "Writer" in its name whose Close/Flush returns an error.
		if strings.Contains(tn.Name(), "Writer") || hasWriteMethod(recv) {
			return desc, true
		}
	}
	return "", false
}

// hasWriteMethod reports whether the type (or its pointer) has an
// exported method starting with Write.
func hasWriteMethod(n *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(n))
	for i := 0; i < ms.Len(); i++ {
		if strings.HasPrefix(ms.At(i).Obj().Name(), "Write") {
			return true
		}
	}
	return false
}

// collectWritableFiles finds identifiers assigned from os.Create,
// os.CreateTemp, or a writable os.OpenFile in this unit.
func collectWritableFiles(pass *analysis.Pass, u astutil.FuncUnit) map[types.Object]bool {
	out := map[types.Object]bool{}
	astutil.WalkUnit(u.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := astutil.Callee(pass.TypesInfo, call)
		if fn == nil || astutil.PkgPath(fn) != "os" {
			return true
		}
		switch fn.Name() {
		case "Create", "CreateTemp":
		case "OpenFile":
			if len(call.Args) >= 2 && !openFlagsWritable(pass, call.Args[1]) {
				return true
			}
		default:
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// openFlagsWritable decides whether an os.OpenFile flag argument opens
// for writing; non-constant flags are conservatively treated as writable.
func openFlagsWritable(pass *analysis.Pass, flagArg ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[flagArg]
	if !ok || tv.Value == nil {
		return true
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return true
	}
	const wrOrRdwr = 1 | 2 // os.O_WRONLY | os.O_RDWR
	return v&wrOrRdwr != 0
}
