package closecheck_test

import (
	"testing"

	"dassa/internal/lint/analysistest"
	"dassa/internal/lint/closecheck"
)

func TestClosecheck(t *testing.T) {
	analysistest.Run(t, closecheck.Analyzer, analysistest.Testdata("a"))
}
