package a

import "dassa/internal/obs"

const routeSearch = "/search"

// Outcome is a small enum; its String() has as many values as the enum.
type Outcome int

func (o Outcome) String() string {
	switch o {
	case 0:
		return "hit"
	case 1:
		return "miss"
	}
	return "other"
}

func dynamicRoutes() []string { return nil }

// Clean: literal, const, and concatenated-const values.
func goodConstants(reg *obs.Registry) {
	_ = reg.Counter("req_total", "requests", obs.L("route", "/read"))
	_ = reg.Counter("req_total", "requests", obs.L("route", routeSearch))
	_ = reg.Counter("req_total", "requests", obs.L("route", "v1"+routeSearch))
}

// Clean: a bounded enum's String().
func goodEnum(reg *obs.Registry, o Outcome) {
	_ = reg.Counter("cache_total", "lookups", obs.L("outcome", o.String()))
}

// Clean: range over a literal slice of constants — the serve idiom.
func goodRange(reg *obs.Registry) {
	for _, rt := range []string{"/search", "/read", "/detect"} {
		_ = reg.Counter("req_total", "requests", obs.L("route", rt))
	}
}

// Bad: a raw request string mints one series per distinct value.
func badParam(reg *obs.Registry, path string) {
	_ = reg.Counter("req_total", "requests", obs.L("route", path)) // want `metriclabel: label value is not compile-time bounded`
}

// Bad: same hole via a composite literal.
func badLiteral(path string) obs.Label {
	return obs.Label{Key: "route", Value: path} // want `metriclabel: label value is not compile-time bounded`
}

// Bad: ranging over a function result is unbounded — the set is decided
// at runtime.
func badRange(reg *obs.Registry) {
	for _, rt := range dynamicRoutes() {
		_ = reg.Counter("req_total", "requests", obs.L("route", rt)) // want `metriclabel: label value is not compile-time bounded`
	}
}
