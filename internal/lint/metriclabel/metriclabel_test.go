package metriclabel_test

import (
	"testing"

	"dassa/internal/lint/analysistest"
	"dassa/internal/lint/metriclabel"
)

func TestMetriclabel(t *testing.T) {
	analysistest.Run(t, metriclabel.Analyzer, analysistest.Testdata("a"))
}
