// Package metriclabel guards the obs registry against label-cardinality
// explosions at the source: every label value built at a call site
// (obs.L(...) or an obs.Label composite literal) must be compile-time
// bounded — a constant, an enum's String(), or a range over a literal
// slice of constants. Raw request strings (paths, filenames, user input)
// as label values mint one time series per distinct value and melt both
// the registry and whatever scrapes it.
package metriclabel

import (
	"go/ast"
	"go/types"

	"dassa/internal/lint/analysis"
	"dassa/internal/lint/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "metriclabel",
	Doc: "metric label values must be compile-time bounded: a constant, a " +
		"bounded enum's String(), or a range variable over a literal set",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The package defining Label is the mechanism, not a call site; its
	// constructors necessarily handle unbounded parameters.
	if obj := pass.Pkg.Scope().Lookup("Label"); obj != nil {
		if _, ok := obj.(*types.TypeName); ok {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if v := labelCtorValue(pass, x); v != nil {
					checkBounded(pass, f, v)
				}
			case *ast.CompositeLit:
				if v := labelLitValue(pass, x); v != nil {
					checkBounded(pass, f, v)
				}
			}
			return true
		})
	}
	return nil
}

// labelCtorValue returns the value argument of an obs.L(key, value) call.
func labelCtorValue(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	fn := astutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "L" || astutil.RecvNamed(fn) != nil {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 1 || !isLabelType(sig.Results().At(0).Type()) {
		return nil
	}
	if len(call.Args) != 2 {
		return nil
	}
	return call.Args[1]
}

// labelLitValue returns the Value field expression of a Label{...} literal.
func labelLitValue(pass *analysis.Pass, lit *ast.CompositeLit) ast.Expr {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !isLabelType(tv.Type) {
		return nil
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Value" {
				return kv.Value
			}
			continue
		}
		if i == 1 {
			return el // positional {key, value}
		}
	}
	return nil
}

func isLabelType(t types.Type) bool {
	n := astutil.NamedOf(t)
	return n != nil && n.Obj().Name() == "Label"
}

func checkBounded(pass *analysis.Pass, file *ast.File, v ast.Expr) {
	if bounded(pass, file, v) {
		return
	}
	pass.Reportf(v.Pos(),
		"metriclabel: label value is not compile-time bounded; unbounded values "+
			"mint one series per distinct string — use a constant, an enum String(), "+
			"or bucket the value first")
}

func bounded(pass *analysis.Pass, file *ast.File, v ast.Expr) bool {
	v = ast.Unparen(v)
	// 1. Constants (literals, const idents, concatenations thereof).
	if tv, ok := pass.TypesInfo.Types[v]; ok && tv.Value != nil {
		return true
	}
	switch x := v.(type) {
	case *ast.CallExpr:
		// 2. Enum stringers: String() on a named type whose underlying is
		// a non-string basic type has as many values as the enum.
		fn := astutil.Callee(pass.TypesInfo, x)
		if fn != nil && fn.Name() == "String" && len(x.Args) == 0 {
			if recv := astutil.RecvNamed(fn); recv != nil {
				if b, ok := recv.Underlying().(*types.Basic); ok && b.Info()&types.IsString == 0 {
					return true
				}
			}
		}
	case *ast.Ident:
		// 3. The value variable of `for _, v := range []string{...}` over a
		// literal of constants — serve's per-route registration loop.
		if obj := pass.ObjectOf(x); obj != nil {
			return rangeOverLiteral(pass, file, obj)
		}
	}
	return false
}

// rangeOverLiteral reports whether obj is defined as the value variable of
// a range statement over a composite literal whose elements are all
// constants.
func rangeOverLiteral(pass *analysis.Pass, file *ast.File, obj types.Object) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		id, ok := rs.Value.(*ast.Ident)
		if !ok || pass.TypesInfo.Defs[id] != obj {
			return true
		}
		lit, ok := ast.Unparen(rs.X).(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range lit.Elts {
			tv, ok := pass.TypesInfo.Types[el]
			if !ok || tv.Value == nil {
				return true
			}
		}
		found = true
		return false
	})
	return found
}
