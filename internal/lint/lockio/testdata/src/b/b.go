// Package b pins the interprocedural half of lockio: the package-local
// summary pass sees I/O one call deep, and — by documented design — no
// deeper.
package b

import (
	"os"
	"sync"
)

type cache struct {
	mu sync.Mutex
	m  map[string][]byte
}

// load performs I/O directly, so the summary records it.
func load(path string) []byte {
	b, _ := os.ReadFile(path)
	return b
}

// fetch is a method helper; methods are summarized like functions.
func (c *cache) fetch(path string) []byte {
	b, _ := os.ReadFile(path)
	return b
}

// Bad: the I/O is one call away, but it still runs under c.mu.
func (c *cache) badHelperCall(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[path] = load(path) // want `lockio: call to load \(which does os.ReadFile\) while c.mu is held`
}

// Bad: same through a method helper.
func (c *cache) badMethodHelper(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[path] = c.fetch(path) // want `lockio: call to fetch \(which does os.ReadFile\) while c.mu is held`
}

// loadIndirect only reaches I/O through load — two levels from any call
// site. The one-level summary does not see through it.
func loadIndirect(path string) []byte {
	return load(path)
}

// Documented blind spot: two-levels-deep I/O is invisible to the
// one-level summary, so this stays unflagged by design. Closing it needs
// a real SSA call graph (see DESIGN.md §10).
func (c *cache) blindSpotTwoDeep(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[path] = loadIndirect(path)
}

// Clean: helper I/O before the lock is the intended shape.
func (c *cache) goodSnapshot(path string) {
	b := load(path)
	c.mu.Lock()
	c.m[path] = b
	c.mu.Unlock()
}

// Clean: a helper call with no lock held is fine anywhere.
func (c *cache) goodUnlocked(path string) []byte {
	return load(path)
}

// *Locked helpers are excluded from the summary — their whole body is a
// critical section, so the violation is reported inside them, once.
func (c *cache) refreshLocked(path string) {
	b, _ := os.ReadFile(path) // want `lockio: os.ReadFile inside refreshLocked`
	c.m[path] = b
}

// Clean at the call site: refreshLocked's own report covers the I/O.
func (c *cache) callsLockedHelper(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshLocked(path)
}
