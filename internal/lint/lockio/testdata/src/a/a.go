package a

import (
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string][]byte
}

// Bad: read from disk while holding the lock (deferred unlock keeps it
// held to the end of the function).
func (s *store) badDirect(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := os.ReadFile(path) // want `lockio: os.ReadFile while s.mu is held`
	if err != nil {
		return nil, err
	}
	s.m[path] = b
	return b, nil
}

// Clean: snapshot-then-store — the I/O happens before the lock.
func (s *store) goodSnapshot(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.m[path] = b
	s.mu.Unlock()
	return nil
}

// Bad: even a read lock serializes against writers; Stat stalls them.
func (s *store) badUnderRLock(path string) {
	s.rw.RLock()
	_ = len(s.m)
	_, _ = os.Stat(path) // want `lockio: os.Stat while s.rw is held`
	s.rw.RUnlock()
}

// Clean: the unlock ends the region before the I/O.
func (s *store) goodAfterUnlock(path string) {
	s.mu.Lock()
	n := len(s.m)
	s.mu.Unlock()
	if n == 0 {
		_ = os.Remove(path)
	}
}

// Bad: the Locked suffix promises the caller already holds the lock, so
// the whole body is a critical section.
func (s *store) refreshLocked(path string) {
	b, err := os.ReadFile(path) // want `lockio: os.ReadFile inside refreshLocked`
	if err == nil {
		s.m[path] = b
	}
}

// Clean: the returned closure runs after the lock is long released.
func (s *store) goodClosure(path string) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[path] = nil
	return func() {
		_, _ = os.Stat(path)
	}
}
