// Package lockio flags file/network I/O performed while a sync.Mutex or
// RWMutex is held. DASSA's hot paths (BlockCache shards, the ingester's
// catalog lock, the obs registry) are designed so disk reads happen
// outside critical sections — singleflight and snapshot-swap exist exactly
// so a slow disk never stalls every reader behind a lock. Functions whose
// name ends in "Locked" are treated as running entirely under their
// caller's lock (the project's naming convention).
//
// Before per-function analysis, a package-local summary pass records
// which declared non-*Locked functions and methods directly perform I/O,
// so a call to such a helper under a held lock is reported even though
// the I/O is one call away. The summary is one level deep by design — a
// helper that only reaches I/O through another helper stays invisible
// (the documented blind spot; closing it needs real SSA call graphs).
// *Locked helpers are excluded from the summary because their bodies are
// already analyzed as whole critical sections.
package lockio

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"dassa/internal/lint/analysis"
	"dassa/internal/lint/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: "no file or network I/O while a sync.Mutex/RWMutex is held; " +
		"*Locked functions are assumed to hold their caller's lock",
	Run: run,
}

// osIOFuncs are package-level os functions that touch the filesystem.
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Stat": true, "Lstat": true,
	"ReadDir": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Link": true, "Symlink": true, "Chmod": true, "Chtimes": true,
}

// dasfIOFuncs are the storage layer's entry points that open, read, or
// write physical files.
var dasfIOFuncs = map[string]bool{
	"Open": true, "ReadInfo": true, "WriteData": true, "WriteDataCompressed": true,
	"WriteVCA": true, "CreateData": true, "OpenForWrite": true,
}

// dassIOFuncs are catalog/VCA operations that hit the filesystem.
var dassIOFuncs = map[string]bool{
	"CreateVCA": true, "AppendToVCA": true, "OpenView": true,
	"ScanDir": true, "ScanDirTolerant": true, "ScanDirCached": true,
	"ScanDirCachedTolerant": true,
}

// netIOFuncs covers the dial/listen/request surface of net and net/http.
var netIOFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "Listen": true, "ListenPacket": true,
	"Get": true, "Post": true, "PostForm": true, "Head": true, "Do": true,
}

func run(pass *analysis.Pass) error {
	sum := summarize(pass)
	for _, f := range pass.Files {
		for _, u := range astutil.Units(f) {
			checkUnit(pass, u, sum)
		}
	}
	return nil
}

// summarize records, for every declared non-*Locked function or method
// in the package, the first file/network/dasf I/O its body performs
// directly (nested function literals excluded — they run later, if at
// all). Calls to these helpers count as I/O at the call site.
func summarize(pass *analysis.Pass) map[*types.Func]string {
	out := map[*types.Func]string{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			desc := ""
			astutil.WalkUnit(fd.Body, func(n ast.Node) bool {
				if desc != "" {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if d, ok := ioCall(pass, call); ok {
						desc = d
						return false
					}
				}
				return true
			})
			if desc != "" {
				out[obj] = desc
			}
		}
	}
	return out
}

// event is one ordered occurrence inside a function body.
type event struct {
	pos  int // source offset order
	kind int // 0 lock, 1 unlock, 2 io
	key  string
	desc string
	node ast.Node
}

const (
	evLock = iota
	evUnlock
	evIO
)

func checkUnit(pass *analysis.Pass, u astutil.FuncUnit, sum map[*types.Func]string) {
	var events []event
	lockedWhole := u.Decl != nil && strings.HasSuffix(u.Decl.Name.Name, "Locked")

	astutil.WalkUnit(u.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock never ends the region before the function
			// returns, so it contributes no unlock event. Deferred I/O runs
			// after the (deferred) unlocks in LIFO order more often than
			// not; treating it as outside the region avoids false alarms.
			return false
		case *ast.CallExpr:
			if key, op, ok := mutexOp(pass, x); ok {
				kind := evLock
				if op == "Unlock" || op == "RUnlock" {
					kind = evUnlock
				}
				events = append(events, event{pos: int(x.Pos()), kind: kind, key: key, node: x})
			} else if desc, ok := ioCall(pass, x); ok {
				events = append(events, event{pos: int(x.Pos()), kind: evIO, desc: desc, node: x})
			} else if fn := astutil.Callee(pass.TypesInfo, x); fn != nil {
				if helperIO, ok := sum[fn]; ok && (u.Decl == nil || pass.TypesInfo.Defs[u.Decl.Name] != fn) {
					events = append(events, event{pos: int(x.Pos()), kind: evIO,
						desc: fmt.Sprintf("call to %s (which does %s)", fn.Name(), helperIO), node: x})
				}
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for _, ev := range events {
		if ev.kind != evIO {
			continue
		}
		if lockedWhole {
			pass.Reportf(ev.node.Pos(),
				"lockio: %s inside %s, which by its name runs with the caller's lock held; "+
					"move the I/O outside the critical section", ev.desc, u.Decl.Name.Name)
			continue
		}
		if key, ok := heldAt(events, ev.pos); ok {
			pass.Reportf(ev.node.Pos(),
				"lockio: %s while %s is held; move the I/O outside the critical section "+
					"(snapshot under the lock, then do the I/O)", ev.desc, key)
		}
	}
}

// heldAt reports whether any mutex is lock-acquired before offset pos
// without an intervening unlock of the same mutex expression.
func heldAt(events []event, pos int) (string, bool) {
	held := map[string]bool{}
	for _, ev := range events {
		if ev.pos >= pos {
			break
		}
		switch ev.kind {
		case evLock:
			held[ev.key] = true
		case evUnlock:
			delete(held, ev.key)
		}
	}
	for k := range held {
		return k, true
	}
	return "", false
}

// mutexOp matches x.Lock/Unlock/RLock/RUnlock on sync.Mutex/RWMutex
// receivers and returns the receiver's rendering as the region key.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	fn := astutil.Callee(pass.TypesInfo, call)
	recv := astutil.RecvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	if name := recv.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", "", false
	}
	if op == "TryLock" || op == "TryRLock" {
		op = "Lock" // a successful try holds the lock; treat as acquisition
	}
	return types.ExprString(sel.X), op, true
}

// ioCall classifies call as I/O and describes it.
func ioCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := astutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if recv := astutil.RecvNamed(fn); recv != nil {
		rp := ""
		if recv.Obj().Pkg() != nil {
			rp = recv.Obj().Pkg().Path()
		}
		switch {
		case rp == "os" && recv.Obj().Name() == "File":
			return "os.File." + name, true
		case pathEnds(rp, "dasf") && (recv.Obj().Name() == "Reader" || recv.Obj().Name() == "ParallelWriter"):
			return recv.Obj().Name() + "." + name, true
		case (rp == "net/http" || rp == "net") && netIOFuncs[name]:
			return recv.Obj().Name() + "." + name, true
		}
		return "", false
	}
	switch p := astutil.PkgPath(fn); {
	case p == "os" && osIOFuncs[name]:
		return "os." + name, true
	case pathEnds(p, "dasf") && dasfIOFuncs[name]:
		return "dasf." + name, true
	case pathEnds(p, "dass") && dassIOFuncs[name]:
		return "dass." + name, true
	case (p == "net" || p == "net/http") && netIOFuncs[name]:
		return p + "." + name, true
	}
	return "", false
}

func pathEnds(p, suffix string) bool {
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}
