package lockio_test

import (
	"testing"

	"dassa/internal/lint/analysistest"
	"dassa/internal/lint/lockio"
)

func TestLockio(t *testing.T) {
	analysistest.Run(t, lockio.Analyzer, analysistest.Testdata("a"))
}

// TestLockioInterprocedural pins the one-level call-graph summary: helper
// I/O is caught one call deep, and the two-level blind spot stays a
// blind spot (so a future fix shows up as a want-comment change here).
func TestLockioInterprocedural(t *testing.T) {
	analysistest.Run(t, lockio.Analyzer, analysistest.Testdata("b"))
}
