package lockio_test

import (
	"testing"

	"dassa/internal/lint/analysistest"
	"dassa/internal/lint/lockio"
)

func TestLockio(t *testing.T) {
	analysistest.Run(t, lockio.Analyzer, analysistest.Testdata("a"))
}
