// Package lint assembles DASSA's project-invariant analyzers into one
// runnable suite: load packages, run every analyzer, honor inline
// `//dassalint:ignore` suppressions, and hand back position-sorted
// findings. cmd/dassalint is the CLI veneer over Run; CI calls that.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"regexp"
	"sort"
	"strings"

	"dassa/internal/lint/analysis"
	"dassa/internal/lint/closecheck"
	"dassa/internal/lint/cowopt"
	"dassa/internal/lint/goleak"
	"dassa/internal/lint/loader"
	"dassa/internal/lint/lockio"
	"dassa/internal/lint/metriclabel"
	"dassa/internal/lint/spanclose"
	"dassa/internal/lint/wraperr"
)

// Analyzers returns the full suite in name order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		closecheck.Analyzer,
		cowopt.Analyzer,
		goleak.Analyzer,
		lockio.Analyzer,
		metriclabel.Analyzer,
		spanclose.Analyzer,
		wraperr.Analyzer,
	}
}

// Finding is one reported diagnostic with its source position resolved.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// JSONFinding is the stable machine-readable shape of one finding, for
// CI annotations and editor integrations.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON streams findings to w as one JSON object per line (the
// github-annotation-friendly NDJSON shape). Paths and messages are
// escaped by encoding/json, so quotes, backslashes, and control bytes
// in filenames survive the trip.
func WriteJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		jf := JSONFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
		if err := enc.Encode(jf); err != nil {
			return fmt.Errorf("lint: encoding finding: %w", err)
		}
	}
	return nil
}

// Options tunes a Run.
type Options struct {
	// IncludeTests loads every package's test variant too, so _test.go
	// files pass through the same analyzers (the chaos suites are where
	// lock-under-I/O and leaked-goroutine patterns hide).
	IncludeTests bool
}

// ignoreRE matches `//dassalint:ignore name[,name] optional reason`. The
// name list is strictly comma-separated lowercase words so a lowercase
// reason clause ("startup-only path") cannot bleed into it.
var ignoreRE = regexp.MustCompile(`^//\s*dassalint:ignore\s+([a-z]+(?:\s*,\s*[a-z]+)*)`)

// Run loads patterns relative to dir and applies the selected analyzers
// (nil/empty only = all). Findings suppressed by a //dassalint:ignore
// comment on the same or preceding line are dropped.
func Run(dir string, patterns, only []string, opts Options) ([]Finding, error) {
	var pkgs []*loader.Package
	var err error
	if opts.IncludeTests {
		pkgs, err = loader.LoadWithTests(dir, patterns)
	} else {
		pkgs, err = loader.Load(dir, patterns)
	}
	if err != nil {
		return nil, err
	}
	analyzers := Analyzers()
	if len(only) > 0 {
		keep := map[string]bool{}
		for _, n := range only {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			return nil, fmt.Errorf("lint: no analyzer matches %v (have %v)", only, names(analyzers))
		}
		analyzers = sel
	}

	known := map[string]bool{"all": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, auditIgnores(pkg, known)...)
		ignores := CollectIgnores(pkg)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.Covers(pos, name) {
					return
				}
				out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// auditIgnores flags //dassalint:ignore directives naming analyzers that
// do not exist: a stale name suppresses nothing, which silently turns an
// intentional exemption into dead weight (or hides a typo that leaves
// the real finding unsuppressed). The audit runs against the full suite
// regardless of -only, so narrowing a run never invalidates directives.
func auditIgnores(pkg *loader.Package, known map[string]bool) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				for _, n := range strings.Split(m[1], ",") {
					n = strings.TrimSpace(n)
					if n != "" && !known[n] {
						out = append(out, Finding{
							Analyzer: "dassalint",
							Pos:      pkg.Fset.Position(c.Pos()),
							Message: fmt.Sprintf("ignore directive names unknown analyzer %q "+
								"(known: %s, or all)", n, strings.Join(names(Analyzers()), ", ")),
						})
					}
				}
			}
		}
	}
	return out
}

func names(as []*analysis.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// Ignores maps file → line → suppressed analyzer names ("all" = every).
// It is exported so the analysistest harness applies the same
// suppression semantics the real Run does.
type Ignores map[string]map[int]map[string]bool

// Covers reports whether an ignore directive on the finding's line, or
// the line above it, names the analyzer (or "all").
func (s Ignores) Covers(pos token.Position, analyzer string) bool {
	lines, ok := s[pos.Filename]
	if !ok {
		return false
	}
	// Same-line trailing comment, or a standalone comment on the line above.
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if m, ok := lines[ln]; ok && (m[analyzer] || m["all"]) {
			return true
		}
	}
	return false
}

// CollectIgnores parses every //dassalint:ignore directive in pkg.
func CollectIgnores(pkg *loader.Package) Ignores {
	out := Ignores{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines, ok := out[pos.Filename]
				if !ok {
					lines = map[int]map[string]bool{}
					out[pos.Filename] = lines
				}
				set, ok := lines[pos.Line]
				if !ok {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, n := range strings.Split(m[1], ",") {
					if n = strings.TrimSpace(n); n != "" {
						set[n] = true
					}
				}
			}
		}
	}
	return out
}
