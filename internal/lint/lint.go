// Package lint assembles DASSA's project-invariant analyzers into one
// runnable suite: load packages, run every analyzer, honor inline
// `//dassalint:ignore` suppressions, and hand back position-sorted
// findings. cmd/dassalint is the CLI veneer over Run; CI calls that.
package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"dassa/internal/lint/analysis"
	"dassa/internal/lint/closecheck"
	"dassa/internal/lint/cowopt"
	"dassa/internal/lint/loader"
	"dassa/internal/lint/lockio"
	"dassa/internal/lint/metriclabel"
	"dassa/internal/lint/spanclose"
	"dassa/internal/lint/wraperr"
)

// Analyzers returns the full suite in name order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		closecheck.Analyzer,
		cowopt.Analyzer,
		lockio.Analyzer,
		metriclabel.Analyzer,
		spanclose.Analyzer,
		wraperr.Analyzer,
	}
}

// Finding is one reported diagnostic with its source position resolved.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// ignoreRE matches `//dassalint:ignore name[,name] optional reason`. The
// name list is strictly comma-separated lowercase words so a lowercase
// reason clause ("startup-only path") cannot bleed into it.
var ignoreRE = regexp.MustCompile(`^//\s*dassalint:ignore\s+([a-z]+(?:\s*,\s*[a-z]+)*)`)

// Run loads patterns relative to dir and applies the selected analyzers
// (nil/empty only = all). Findings suppressed by a //dassalint:ignore
// comment on the same or preceding line are dropped.
func Run(dir string, patterns, only []string) ([]Finding, error) {
	pkgs, err := loader.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	analyzers := Analyzers()
	if len(only) > 0 {
		keep := map[string]bool{}
		for _, n := range only {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			return nil, fmt.Errorf("lint: no analyzer matches %v (have %v)", only, names(analyzers))
		}
		analyzers = sel
	}

	var out []Finding
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.covers(pos, name) {
					return
				}
				out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

func names(as []*analysis.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// ignoreSet maps file → line → suppressed analyzer names ("all" = every).
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) covers(pos token.Position, analyzer string) bool {
	lines, ok := s[pos.Filename]
	if !ok {
		return false
	}
	// Same-line trailing comment, or a standalone comment on the line above.
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if m, ok := lines[ln]; ok && (m[analyzer] || m["all"]) {
			return true
		}
	}
	return false
}

func collectIgnores(pkg *loader.Package) ignoreSet {
	out := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines, ok := out[pos.Filename]
				if !ok {
					lines = map[int]map[string]bool{}
					out[pos.Filename] = lines
				}
				set, ok := lines[pos.Line]
				if !ok {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, n := range strings.Split(m[1], ",") {
					if n = strings.TrimSpace(n); n != "" {
						set[n] = true
					}
				}
			}
		}
	}
	return out
}
