package loader_test

import (
	"go/token"
	"strings"
	"testing"

	"dassa/internal/lint/loader"
)

// moduleRoot is this package's position in the tree; tests shell out to
// `go list` from the repo root so ./... patterns resolve.
const moduleRoot = "../../.."

func fileNames(fset *token.FileSet, pkg *loader.Package) []string {
	var out []string
	for _, f := range pkg.Files {
		out = append(out, fset.Position(f.Pos()).Filename)
	}
	return out
}

func hasFileSuffix(names []string, suffix string) bool {
	for _, n := range names {
		if strings.HasSuffix(n, suffix) {
			return true
		}
	}
	return false
}

// TestLoadWithTestsVariants proves the loader's test-variant loading:
// a package with in-package tests arrives as its test variant (all
// sources + _test.go, typechecked together), its plain form is dropped
// as redundant, and external _test packages typecheck against the
// package under test.
func TestLoadWithTestsVariants(t *testing.T) {
	pkgs, err := loader.LoadWithTests(moduleRoot, []string{
		"./internal/lint",        // has in-package lint_test.go
		"./internal/lint/lockio", // has external lockio_test.go
	})
	if err != nil {
		t.Fatalf("LoadWithTests: %v", err)
	}
	byPath := map[string]*loader.Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}

	variant := byPath["dassa/internal/lint [dassa/internal/lint.test]"]
	if variant == nil {
		t.Fatalf("no test variant of dassa/internal/lint; have %v", keys(byPath))
	}
	if _, ok := byPath["dassa/internal/lint"]; ok {
		t.Errorf("plain dassa/internal/lint should be superseded by its test variant")
	}
	names := fileNames(variant.Fset, variant)
	if !hasFileSuffix(names, "lint.go") || !hasFileSuffix(names, "lint_test.go") {
		t.Errorf("variant files = %v, want lint.go and lint_test.go", names)
	}
	// The _test.go file typechecked against the non-test sources: its
	// test functions are in the variant's scope alongside lint.Run.
	if variant.Types.Scope().Lookup("TestIgnoreSuppression") == nil {
		t.Errorf("test-file symbol TestIgnoreSuppression missing from variant scope")
	}
	if variant.Types.Scope().Lookup("Run") == nil {
		t.Errorf("non-test symbol Run missing from variant scope")
	}

	// lockio has only external tests: the plain package stays, and the
	// lockio_test package loads as its own unit.
	if _, ok := byPath["dassa/internal/lint/lockio"]; !ok {
		t.Errorf("plain dassa/internal/lint/lockio missing (no in-package tests, so no variant)")
	}
	var ext *loader.Package
	for p, pkg := range byPath {
		if strings.HasPrefix(p, "dassa/internal/lint/lockio_test ") {
			ext = pkg
		}
	}
	if ext == nil {
		t.Fatalf("external test package lockio_test not loaded; have %v", keys(byPath))
	}
	if ext.Types.Name() != "lockio_test" {
		t.Errorf("external test package name = %q, want lockio_test", ext.Types.Name())
	}
	if ext.Types.Scope().Lookup("TestLockio") == nil {
		t.Errorf("TestLockio missing from external test package scope")
	}

	// No generated *.test mains may leak through.
	for p := range byPath {
		if strings.HasSuffix(p, ".test") {
			t.Errorf("generated test-binary main %q should be skipped", p)
		}
	}
}

// TestLoadWithoutTestsUnchanged pins the default path: no _test.go files
// and no bracketed variant import paths.
func TestLoadWithoutTestsUnchanged(t *testing.T) {
	pkgs, err := loader.Load(moduleRoot, []string{"./internal/lint"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "dassa/internal/lint" {
		t.Fatalf("Load = %v, want exactly dassa/internal/lint", keys2(pkgs))
	}
	if hasFileSuffix(fileNames(pkgs[0].Fset, pkgs[0]), "_test.go") {
		t.Errorf("plain Load must not include _test.go files")
	}
}

// TestLoadDirIncludesTestFiles proves the analysistest entry point feeds
// in-package _test.go fixtures through the typechecker (external _test
// package files are skipped, not an error).
func TestLoadDirIncludesTestFiles(t *testing.T) {
	pkg, err := loader.LoadDir("../goleak/testdata/src/a")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	names := fileNames(pkg.Fset, pkg)
	if !hasFileSuffix(names, "a.go") || !hasFileSuffix(names, "a_test.go") {
		t.Errorf("LoadDir files = %v, want a.go and a_test.go", names)
	}
	if pkg.Types.Scope().Lookup("TestSpawnLeaks") == nil {
		t.Errorf("in-package test symbol TestSpawnLeaks missing from LoadDir scope")
	}
}

func keys(m map[string]*loader.Package) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func keys2(pkgs []*loader.Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.ImportPath)
	}
	return out
}
