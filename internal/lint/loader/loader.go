// Package loader turns Go package patterns into parsed, typechecked
// packages without importing golang.org/x/tools. It shells out to
// `go list -export -deps -json` — the same mechanism the go command uses
// to drive vet — and feeds the resulting export data to the standard
// library's gc importer, so full types.Info is available even though the
// proxy-less build environment cannot fetch x/tools/go/packages.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and typechecked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` for args with the given
// working directory and decodes the package stream.
func goList(dir string, args []string) ([]listPkg, error) {
	cmdArgs := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,DepOnly,Error",
	}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint/loader: go list: %w\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint/loader: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that resolves every import path
// through the export-data files go list reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint/loader: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Load lists patterns (e.g. "./...") relative to dir, then parses and
// typechecks every matched package from source. Dependencies are imported
// via export data, so one Load of "./..." costs one build of the module.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint/loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Name != "" {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, g := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, g)
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses every non-test .go file directly inside dir as one
// package and typechecks it, resolving its imports with go list. This is
// the analysistest entry point: testdata packages live outside any build
// target, so they are loaded by directory rather than by pattern.
func LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint/loader: %w", err)
	}
	var files []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, n))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint/loader: no .go files in %s", dir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	parsed := make([]*ast.File, 0, len(files))
	imports := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint/loader: %w", err)
		}
		parsed = append(parsed, af)
		for _, im := range af.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("lint/loader: bad import in %s: %w", f, err)
			}
			if p != "unsafe" {
				imports[p] = true
			}
		}
	}

	exports := map[string]string{}
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("lint/loader: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	imp := exportImporter(fset, exports)
	return checkFiles(fset, imp, parsed[0].Name.Name, dir, files, parsed)
}

func check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	parsed := make([]*ast.File, 0, len(files))
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint/loader: %w", err)
		}
		parsed = append(parsed, af)
	}
	return checkFiles(fset, imp, importPath, dir, files, parsed)
}

func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string, parsed []*ast.File) (*Package, error) {
	conf := types.Config{Importer: imp}
	info := newInfo()
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint/loader: typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      parsed,
		Types:      tpkg,
		Info:       info,
	}, nil
}
