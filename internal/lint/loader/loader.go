// Package loader turns Go package patterns into parsed, typechecked
// packages without importing golang.org/x/tools. It shells out to
// `go list -export -deps -json` — the same mechanism the go command uses
// to drive vet — and feeds the resulting export data to the standard
// library's gc importer, so full types.Info is available even though the
// proxy-less build environment cannot fetch x/tools/go/packages.
//
// LoadWithTests additionally lists with -test, so every package's test
// variant (the package recompiled with its in-package _test.go files) and
// external _test package are parsed and typechecked too; the generated
// *.test main packages are skipped. External test packages resolve their
// import of the package under test to that package's test-variant export
// data, exactly as the go command links them.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and typechecked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	ForTest    string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` for args with the given
// working directory and decodes the package stream. With tests, -test is
// added so test variants, external test packages, and their deps (e.g.
// the testing package) are listed and built too.
func goList(dir string, args []string, tests bool) ([]listPkg, error) {
	cmdArgs := []string{"list", "-e", "-export", "-deps"}
	if tests {
		cmdArgs = append(cmdArgs, "-test")
	}
	cmdArgs = append(cmdArgs,
		"-json=Dir,ImportPath,Name,Export,GoFiles,DepOnly,ForTest,Error")
	cmdArgs = append(cmdArgs, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint/loader: go list: %w\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint/loader: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that resolves every import path
// through the export-data files go list reported. overrides maps an
// import path to a different export file (used to point an external test
// package's import of the package under test at the test variant's
// export data).
func exportImporter(fset *token.FileSet, exports, overrides map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if f, ok := overrides[path]; ok {
			return os.Open(f)
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint/loader: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Load lists patterns (e.g. "./...") relative to dir, then parses and
// typechecks every matched package from source. Dependencies are imported
// via export data, so one Load of "./..." costs one build of the module.
func Load(dir string, patterns []string) ([]*Package, error) {
	return load(dir, patterns, false)
}

// LoadWithTests is Load plus test variants: for every matched package
// with in-package test files, the test variant (all sources + _test.go)
// replaces the plain package in the result, and external _test packages
// are appended as packages of their own. The generated *.test test-binary
// mains are skipped — their only source file is machine-written.
func LoadWithTests(dir string, patterns []string) ([]*Package, error) {
	return load(dir, patterns, true)
}

// testVariantOf extracts the tested package's import path when p is an
// internal test variant: ImportPath "p [p.test]" with ForTest "p" and the
// package name of p itself (external test packages carry a _test name).
func (p *listPkg) isInternalTestVariant() bool {
	return p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" [") &&
		!strings.HasSuffix(p.Name, "_test")
}

func (p *listPkg) isExternalTestPkg() bool {
	return p.ForTest != "" && strings.HasSuffix(p.Name, "_test")
}

func load(dir string, patterns []string, tests bool) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns, tests)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}   // plain import path → export data
	variants := map[string]string{}  // tested import path → variant export data
	var targets []listPkg
	hasVariant := map[string]bool{} // tested import path → internal variant listed
	for _, p := range listed {
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test-binary main: machine-written source
		}
		if p.Error != nil {
			// Tolerate "no non-test Go files" shells: a directory like
			// cmd/clitest holds only an external test package, so the
			// plain package entry is an empty error stub while the real
			// sources arrive as the _test variant.
			if tests && len(p.GoFiles) == 0 && !p.DepOnly {
				continue
			}
			return nil, fmt.Errorf("lint/loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			if p.isInternalTestVariant() {
				variants[p.ForTest] = p.Export
			} else if p.ForTest == "" {
				exports[p.ImportPath] = p.Export
			}
		}
		if !p.DepOnly && p.Name != "" {
			if p.isInternalTestVariant() {
				hasVariant[p.ForTest] = true
			}
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	shared := exportImporter(fset, exports, nil)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		if t.ForTest == "" && hasVariant[t.ImportPath] {
			continue // the test variant supersedes: same files plus _test.go
		}
		imp := shared
		if t.isExternalTestPkg() {
			// p_test imports p compiled *with* its test files; give this
			// package its own importer so the variant export data cannot
			// leak into (or be shadowed by) the shared cache.
			overrides := map[string]string{}
			if v, ok := variants[t.ForTest]; ok {
				overrides[t.ForTest] = v
			}
			imp = exportImporter(fset, exports, overrides)
		}
		files := make([]string, len(t.GoFiles))
		for i, g := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, g)
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses every .go file directly inside dir that belongs to the
// directory's primary package — including in-package _test.go files — as
// one package and typechecks it, resolving imports with go list. This is
// the analysistest entry point: testdata packages live outside any build
// target, so they are loaded by directory rather than by pattern. Files
// of an external _test package (package name ending in _test) are
// skipped; testdata fixtures exercise in-package test files.
func LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint/loader: %w", err)
	}
	var files []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") {
			continue
		}
		files = append(files, filepath.Join(dir, n))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint/loader: no .go files in %s", dir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	type parsedFile struct {
		path string
		ast  *ast.File
	}
	all := make([]parsedFile, 0, len(files))
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint/loader: %w", err)
		}
		all = append(all, parsedFile{path: f, ast: af})
	}
	// The primary package is named by the first non-test file; a testdata
	// dir holding only _test.go files names it by its first file.
	pkgName := ""
	for _, p := range all {
		if !strings.HasSuffix(p.path, "_test.go") {
			pkgName = p.ast.Name.Name
			break
		}
	}
	if pkgName == "" {
		pkgName = all[0].ast.Name.Name
	}

	var kept []string
	var parsed []*ast.File
	imports := map[string]bool{}
	for _, p := range all {
		if p.ast.Name.Name != pkgName {
			continue
		}
		kept = append(kept, p.path)
		parsed = append(parsed, p.ast)
		for _, im := range p.ast.Imports {
			ip, err := strconv.Unquote(im.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("lint/loader: bad import in %s: %w", p.path, err)
			}
			if ip != "unsafe" {
				imports[ip] = true
			}
		}
	}

	exports := map[string]string{}
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(dir, paths, false)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("lint/loader: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	imp := exportImporter(fset, exports, nil)
	return checkFiles(fset, imp, pkgName, dir, kept, parsed)
}

func check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	parsed := make([]*ast.File, 0, len(files))
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint/loader: %w", err)
		}
		parsed = append(parsed, af)
	}
	return checkFiles(fset, imp, importPath, dir, files, parsed)
}

func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string, parsed []*ast.File) (*Package, error) {
	conf := types.Config{Importer: imp}
	info := newInfo()
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint/loader: typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      parsed,
		Types:      tpkg,
		Info:       info,
	}, nil
}
