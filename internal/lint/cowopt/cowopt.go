// Package cowopt enforces DASSA's copy-on-write option convention:
// `With*` methods that return their receiver's type (dass.View's
// WithSlabReader/WithSpans and friends) must build a modified copy, never
// mutate the receiver in place. Views are shared freely across request
// goroutines precisely because option application cannot alias-write them.
package cowopt

import (
	"go/ast"
	"go/types"
	"strings"

	"dassa/internal/lint/analysis"
	"dassa/internal/lint/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "cowopt",
	Doc: "With* option methods must copy-on-write: no assignment through a " +
		"pointer receiver, no writes into maps/slices reachable from the receiver",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if !strings.HasPrefix(fd.Name.Name, "With") {
				continue
			}
			if !returnsReceiverType(pass, fd) {
				continue
			}
			recvObj, ptrRecv := receiver(pass, fd)
			if recvObj == nil {
				continue
			}
			checkBody(pass, fd, recvObj, ptrRecv)
		}
	}
	return nil
}

// receiver returns the receiver variable's object and whether the
// receiver is a pointer.
func receiver(pass *analysis.Pass, fd *ast.FuncDecl) (types.Object, bool) {
	field := fd.Recv.List[0]
	_, ptr := field.Type.(*ast.StarExpr)
	if len(field.Names) == 0 {
		return nil, ptr // anonymous receiver cannot be mutated
	}
	return pass.TypesInfo.Defs[field.Names[0]], ptr
}

// returnsReceiverType reports whether any result of fd has the receiver's
// named type (by value or pointer) — the signature shape of an option.
func returnsReceiverType(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj := pass.TypesInfo.Defs[fd.Name]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	recvNamed := astutil.RecvNamed(fn)
	if recvNamed == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if astutil.NamedOf(sig.Results().At(i).Type()) == recvNamed {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object, ptrRecv bool) {
	check := func(lhs ast.Expr) {
		root, depth, sawIndex := astutil.Chain(lhs)
		if root == nil || pass.ObjectOf(root) != recv || depth == 0 {
			return
		}
		switch {
		case sawIndex:
			pass.Reportf(lhs.Pos(),
				"cowopt: %s writes into a map/slice reachable from the receiver; "+
					"even a copied receiver shares that storage — copy the container before writing",
				fd.Name.Name)
		case ptrRecv:
			pass.Reportf(lhs.Pos(),
				"cowopt: %s assigns to a field of its pointer receiver; "+
					"options must copy-on-write (cp := *%s; cp.field = ...; return &cp)",
				fd.Name.Name, root.Name)
		}
	}
	// Closures inside an option inherit the invariant: a captured receiver
	// mutated later is still a mutation the option arranged.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(x.X)
		}
		return true
	})
}
