package cowopt_test

import (
	"testing"

	"dassa/internal/lint/analysistest"
	"dassa/internal/lint/cowopt"
)

func TestCowopt(t *testing.T) {
	analysistest.Run(t, cowopt.Analyzer, analysistest.Testdata("a"))
}
