package a

type View struct {
	name  string
	count int
	tags  map[string]string
	ids   []int
}

// Clean: the canonical copy-on-write option.
func (v *View) WithName(n string) *View {
	cp := *v
	cp.name = n
	return &cp
}

// Bad: assigns through the pointer receiver.
func (v *View) WithBadName(n string) *View {
	v.name = n // want `cowopt: WithBadName assigns to a field of its pointer receiver`
	return v
}

// Bad: increments through the pointer receiver.
func (v *View) WithBump() *View {
	v.count++ // want `cowopt: WithBump assigns to a field of its pointer receiver`
	return v
}

// Bad: a value receiver copies the struct but still shares the map.
func (v View) WithTag(k, s string) View {
	v.tags[k] = s // want `cowopt: WithTag writes into a map/slice reachable from the receiver`
	return v
}

// Bad: slice element writes mutate the shared backing array.
func (v *View) WithID(i int) *View {
	v.ids[0] = i // want `cowopt: WithID writes into a map/slice reachable from the receiver`
	return v
}

// Clean: value receiver field assignment only touches the copy.
func (v View) WithNameValue(n string) View {
	v.name = n
	return v
}

// Clean: not an option shape (does not return the receiver type).
func (v *View) WithSideEffect(n string) string {
	v.name = n
	return n
}

// Clean: replacing a reference field on a copy is fine — the original's
// map is untouched.
func (v *View) WithFreshTags() *View {
	cp := *v
	cp.tags = map[string]string{}
	return &cp
}
