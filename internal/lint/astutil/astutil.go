// Package astutil holds the small set of syntax/type helpers the DASSA
// analyzers share: callee resolution, selector-chain unwrapping, and the
// "which function body am I in" queries a statement-level invariant needs.
package astutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the called function or method of call, or nil when the
// callee is dynamic (a func value, an interface method on an unknown
// object resolves fine — it is still a *types.Func).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// PkgPath returns the import path of the package declaring f ("" for
// builtins and error.Error).
func PkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// PkgPathEndsWith reports whether f's declaring package path is path or
// ends with "/"+path — so "dasf" matches both "dassa/internal/dasf" and a
// testdata stand-in package literally named "dasf".
func PkgPathEndsWith(f *types.Func, path string) bool {
	p := PkgPath(f)
	return p == path || strings.HasSuffix(p, "/"+path)
}

// RecvNamed returns the named type of f's receiver with pointers
// dereferenced, or nil for non-methods.
func RecvNamed(f *types.Func) *types.Named {
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return NamedOf(sig.Recv().Type())
}

// NamedOf unwraps pointers and aliases down to a *types.Named, or nil.
func NamedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return nil
		}
	}
}

// IsNamed reports whether t (possibly behind pointers) is the named type
// pkgPath.name. pkgPath matches by suffix like PkgPathEndsWith.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	p := n.Obj().Pkg().Path()
	return n.Obj().Name() == name && (p == pkgPath || strings.HasSuffix(p, "/"+pkgPath))
}

// Chain unwraps an lvalue expression into its root identifier, the number
// of field selections crossed, and whether any map/slice indexing was
// crossed on the way: `v.m[k]` → (v, 1, true).
func Chain(e ast.Expr) (root *ast.Ident, selDepth int, sawIndex bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			selDepth++
			e = x.X
		case *ast.IndexExpr:
			sawIndex = true
			e = x.X
		case *ast.Ident:
			return x, selDepth, sawIndex
		default:
			return nil, selDepth, sawIndex
		}
	}
}

// EnclosingFuncs returns, for every function body in file (declarations
// and literals), the body's node. Used by analyzers that treat each
// function — including closures — as an independent analysis unit.
type FuncUnit struct {
	// Decl is non-nil for declared functions, Lit for closures.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
}

// Name returns the declared name or "func literal".
func (u FuncUnit) Name() string {
	if u.Decl != nil {
		return u.Decl.Name.Name
	}
	return "func literal"
}

// Units collects every function unit in the file.
func Units(file *ast.File) []FuncUnit {
	var out []FuncUnit
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				out = append(out, FuncUnit{Decl: x, Body: x.Body})
			}
		case *ast.FuncLit:
			out = append(out, FuncUnit{Lit: x, Body: x.Body})
		}
		return true
	})
	return out
}

// WalkUnit walks the statements of a unit body in source order, skipping
// the bodies of nested function literals (they execute at another time,
// so statement-ordered invariants like "lock held" do not extend into
// them).
func WalkUnit(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false
		}
		if n == nil {
			return true
		}
		return fn(n)
	})
}

// ContainsReturnOrPanic reports whether any statement nested in n returns,
// branches out, or panics.
func ContainsReturnOrPanic(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// IsPanicCall reports whether stmt is a bare panic(...) call.
func IsPanicCall(stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
