package goleak_test

import (
	"testing"

	"dassa/internal/lint/analysistest"
	"dassa/internal/lint/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, goleak.Analyzer, analysistest.Testdata("a"))
}
