package a

import "testing"

// In-package test files are linted too: the loader's test-variant
// loading feeds them through the same analyzers, because chaos suites
// are exactly where leaked goroutines hide.
func TestSpawnJoins(t *testing.T) {
	done := make(chan struct{})
	go func() { // joined: close(done) hands control back to the test
		work()
		close(done)
	}()
	<-done
}

func TestSpawnLeaks(t *testing.T) {
	go work() // want `goleak: goroutine has no provable join/cancel path`
}
