package a

import (
	"context"
	"fmt"
	"sync"
)

// Clean: WaitGroup pairing — Done in the body, Wait at the join point.
func waitGroupJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// Clean: channel join — the spawner receives the result.
func channelJoin() int {
	ch := make(chan int)
	go func() { ch <- compute() }()
	return <-ch
}

// Clean: the body watches ctx.Done, so cancellation reaches it.
func ctxCancel(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Clean: a context threaded through the spawn arguments is a cancel path
// even when the callee lives in another package.
func ctxArg(ctx context.Context) {
	go watcher(ctx)
}

func watcher(ctx context.Context) { <-ctx.Done() }

// Clean, errgroup-shaped: a local group type whose Go method owns the
// Add/Done/Wait pairing on behalf of every task it spawns.
type group struct {
	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

func (g *group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

func (g *group) Wait() error {
	g.wg.Wait()
	return g.err
}

// Clean: one call level deep — the spawned method's own body holds the
// join (it closes its output channel when done).
type pump struct {
	out chan int
}

func (p *pump) loop() {
	for i := 0; i < 3; i++ {
		p.out <- i
	}
	close(p.out)
}

func methodSpawn(p *pump) {
	go p.loop()
}

// Bad: fire and forget — nothing can join or cancel these.
func fireAndForget() {
	go fmt.Println("gone") // want `goleak: goroutine has no provable join/cancel path`
	go work()              // want `goleak: goroutine has no provable join/cancel path`
	go func() {            // want `goleak: goroutine has no provable join/cancel path`
		work()
	}()
}

// Clean by directive: genuinely intentional fire-and-forget, justified
// inline where review can see it.
func intentional() {
	//dassalint:ignore goleak best-effort warmup, bounded by process life
	go work()
}

func work()        {}
func compute() int { return 1 }
