// Package goleak is the static half of DASSA's goroutine-leak defense:
// every `go` statement outside package main must carry a provable
// join/cancel path. The runtime half (internal/testutil/leakcheck) fails
// tests whose goroutines outlive them; this analyzer catches the
// fire-and-forget spawn before it ever runs. A spawn is considered
// joined when the goroutine body (or, one call level deep, a
// same-package callee's body) does any of:
//
//   - sync.WaitGroup Done/Wait (the Add..Wait pairing convention)
//   - a channel operation — send, receive, range, close, or select —
//     so some receiver/sender in scope can observe it finish
//   - references a context.Context (cancellation threaded in)
//
// or when the spawn expression itself threads a join primitive: any
// argument (or method receiver chain) typed as a channel, a
// context.Context, or a sync.WaitGroup. Spawns that are genuinely meant
// to be fire-and-forget carry `//dassalint:ignore goleak <reason>`.
//
// The callee check is one level deep by design (mirroring lockio's
// interprocedural summary): a join path buried two calls down is
// invisible and should be lifted or annotated.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"dassa/internal/lint/analysis"
	"dassa/internal/lint/astutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "every go statement needs a join/cancel path (WaitGroup pairing, " +
		"channel op, or context); fire-and-forget spawns outside package main are flagged",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Package main owns the process lifetime: daemon accept loops and
	// signal pumps legitimately live until exit.
	if pass.Pkg.Name() == "main" {
		return nil
	}
	decls := localDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !joined(pass, decls, g.Call) {
				pass.Reportf(g.Pos(),
					"goleak: goroutine has no provable join/cancel path "+
						"(no WaitGroup Done/Wait, channel op, or context in its body or arguments); "+
						"thread one in or annotate //dassalint:ignore goleak <reason>")
			}
			return true
		})
	}
	return nil
}

// localDecls indexes this package's function and method declarations so
// the one-level callee check can look inside `go helper()` spawns.
func localDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// joined reports whether the spawned call has a join/cancel path.
func joined(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) bool {
	// A join primitive threaded through the spawn expression: argument or
	// receiver chain typed chan/context.Context/sync.WaitGroup.
	for _, a := range call.Args {
		if joinType(typeOf(pass, a)) {
			return true
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return bodyJoins(pass, decls, fun.Body, 1)
	case *ast.SelectorExpr:
		// go w.loop(): the receiver may hold the primitive; if the method
		// is declared here, look one level into its body.
		if fn := astutil.Callee(pass.TypesInfo, call); fn != nil {
			if fd, ok := decls[fn]; ok {
				return bodyJoins(pass, decls, fd.Body, 1)
			}
		}
		return false
	default:
		if fn := astutil.Callee(pass.TypesInfo, call); fn != nil {
			if fd, ok := decls[fn]; ok {
				return bodyJoins(pass, decls, fd.Body, 1)
			}
		}
		return false
	}
}

// bodyJoins scans a function body for join/cancel signals. depth guards
// the one-level descent into same-package callees.
func bodyJoins(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true // receive: waiting on done/result/ctx
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if _, ok := underlying(typeOf(pass, x.X)).(*types.Chan); ok {
				found = true // drains until the channel closes
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, shadowed := pass.ObjectOf(id).(*types.Func); !shadowed {
					found = true // builtin close, not a shadowing func
					break
				}
			}
			fn := astutil.Callee(pass.TypesInfo, x)
			if fn == nil {
				break
			}
			if recv := astutil.RecvNamed(fn); recv != nil && recv.Obj().Pkg() != nil &&
				recv.Obj().Pkg().Path() == "sync" && recv.Obj().Name() == "WaitGroup" &&
				(fn.Name() == "Done" || fn.Name() == "Wait") {
				found = true
				break
			}
			if depth > 0 {
				if fd, ok := decls[fn]; ok && bodyJoins(pass, decls, fd.Body, depth-1) {
					found = true
				}
			}
		case *ast.Ident:
			// Any reference to a context.Context counts as cancellation
			// threaded in (covers ctx.Done, ctx.Err, passing ctx onward).
			if obj := pass.ObjectOf(x); obj != nil && isContext(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func underlying(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// joinType reports whether t is a primitive another goroutine can join
// or cancel through: a channel, a context.Context, or a sync.WaitGroup
// (possibly behind pointers).
func joinType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		if _, ok := p.Elem().Underlying().(*types.Chan); ok {
			return true
		}
	}
	if astutil.IsNamed(t, "sync", "WaitGroup") {
		return true
	}
	return isContext(t)
}

func isContext(t types.Type) bool {
	return astutil.IsNamed(t, "context", "Context")
}
