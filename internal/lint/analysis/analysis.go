// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface DASSA's custom analyzers need.
// The container this repo grows in has no module proxy access, so vendoring
// x/tools is not an option; the subset here (Analyzer, Pass, Diagnostic)
// keeps the analyzers source-compatible with the upstream API shape, so
// they can be ported onto the real framework — and run under
// `go vet -vettool` — the day the dependency becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name, what it enforces, and the
// function that runs it over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dassalint:ignore comments. Lowercase, no spaces.
	Name string
	// Doc is the invariant the analyzer encodes, first line = summary.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the analysis of a single package: its syntax, its type
// information, and the sink diagnostics go to. A Pass is created per
// (analyzer, package) pair; analyzers must not retain it.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// ObjectOf resolves an identifier through Uses then Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
